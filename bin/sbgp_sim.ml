(* Command-line driver: generate topologies, run deployment
   simulations, and regenerate the paper's tables and figures. *)

open Cmdliner

(* Uniform error surface: user mistakes (bad parameters, malformed
   files) print one line instead of a backtrace. *)
let guard f =
  try f () with
  | Invalid_argument m | Failure m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
  | Asgraph.Graph.Malformed m ->
      Printf.eprintf "error: malformed graph: %s\n" m;
      exit 2
  | Asgraph.Graph_io.Parse_error { line; message } ->
      Printf.eprintf "error: parse error at line %d: %s\n" line message;
      exit 2
  | Asgraph.Graph_io.Bin_error { path; message } ->
      Printf.eprintf "error: binary graph %s: %s\n" path message;
      exit 2
  | Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
  | Core.Checkpoint.Error e ->
      (* Each typed checkpoint error gets one actionable line: what is
         wrong with the snapshot and what to do about it. *)
      let hint =
        match e with
        | Core.Checkpoint.Io _ ->
            "check that the --checkpoint path exists and is readable/writable"
        | Core.Checkpoint.Bad_magic ->
            "this is not a checkpoint file; point --checkpoint at a snapshot \
             this tool wrote"
        | Core.Checkpoint.Unsupported_version _ ->
            "the snapshot was written by a newer build; rerun without --resume \
             to start over"
        | Core.Checkpoint.Unsupported_kind 1 ->
            "this is a churn-run snapshot; resume it through the evolution \
             runner ('exp evolution'), not 'run --resume'"
        | Core.Checkpoint.Unsupported_kind _ ->
            "the snapshot's record kind is unknown to this build; rerun \
             without --resume to start over"
        | Core.Checkpoint.Truncated ->
            "the file was cut short (full disk or interrupted copy?); rerun \
             without --resume to start over"
        | Core.Checkpoint.Corrupt ->
            "the integrity checksum does not match; the file was damaged \
             after writing — rerun without --resume to start over"
        | Core.Checkpoint.Config_mismatch _ ->
            "the snapshot belongs to a different run; pass exactly the \
             original -n/--seed/--theta/... parameters (and topology)"
      in
      Printf.eprintf "error: checkpoint: %s\nhint: %s\n"
        (Core.Checkpoint.error_to_string e) hint;
      exit 2
  | Parallel.Pool.Supervision_failed failures ->
      Printf.eprintf "error: %d worker slice(s) failed past the retry budget" (List.length failures);
      (match failures with
      | { Parallel.Pool.index; attempts; error } :: _ ->
          Printf.eprintf "; first: task %d after %d attempts: %s" index attempts error
      | [] -> ());
      prerr_newline ();
      exit 3

let n_arg =
  let doc = "Number of ASes in the synthetic topology." in
  Arg.(value & opt int (Experiments.Scenario.default_n ()) & info [ "n" ] ~doc)

let seed_arg =
  let doc = "Random seed (topologies and simulations are deterministic given it)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

(* gen: write a synthetic topology to a file. *)
let gen_cmd =
  let out =
    Arg.(
      value
      & opt string "topology.asrel"
      & info [ "o"; "output" ]
          ~doc:
            "Output path. A $(b,.sbg) extension selects the streaming binary \
             format (fixed-width records, loads at disk speed at 100K+ nodes); \
             anything else writes the CAIDA-style text format.")
  in
  let augmented =
    Arg.(value & flag & info [ "augmented" ] ~doc:"Apply the IXP/CP-peering augmentation.")
  in
  let run n seed out augmented =
    let params = { (Topology.Params.with_n Topology.Params.default n) with seed } in
    let built = Topology.Gen.generate params in
    let built =
      if augmented then Topology.Augment.augment_built built ~fraction:0.8 ~seed:(seed + 1)
      else built
    in
    if Filename.check_suffix out ".sbg" then Asgraph.Graph_io.save_bin built.graph out
    else Asgraph.Graph_io.save built.graph out;
    let report = Asgraph.Validate.run built.graph in
    Format.printf "wrote %s: %a@." out Asgraph.Metrics.pp_summary
      (Asgraph.Metrics.summary built.graph);
    if not (report.gr1_acyclic && report.connected) then begin
      Format.eprintf "warning: graph fails validation (gr1=%b connected=%b)@."
        report.gr1_acyclic report.connected;
      exit 1
    end
  in
  let doc = "Generate a synthetic Internet-like AS topology." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const (fun a b c d -> guard (fun () -> run a b c d)) $ n_arg $ seed_arg $ out $ augmented)

(* run: a deployment simulation with explicit parameters. *)
let run_cmd =
  let theta =
    Arg.(value & opt float 0.05 & info [ "theta" ] ~doc:"Deployment threshold (Eq. 3).")
  in
  let x =
    Arg.(
      value & opt float 0.10
      & info [ "x"; "cp-fraction" ] ~doc:"Fraction of traffic originated by the CPs.")
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("outgoing", Core.Config.Outgoing); ("incoming", Core.Config.Incoming) ])
          Core.Config.Outgoing
      & info [ "model" ] ~doc:"Utility model: outgoing (Eq. 1) or incoming (Eq. 2).")
  in
  let adopters =
    Arg.(
      value & opt string "cps+top5"
      & info [ "adopters" ]
          ~doc:
            "Early adopters: none, top<k>, 5cps, cps+top<k>, random<k>, or a \
             comma-separated node list.")
  in
  let no_stub_tiebreak =
    Arg.(value & flag & info [ "no-stub-tiebreak" ] ~doc:"Stubs ignore security (Sec. 6.7).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write per-round CSV here.")
  in
  let caida =
    Arg.(
      value
      & opt (some string) None
      & info [ "caida"; "graph" ]
          ~doc:
            "Run on an AS graph from a file instead of the synthetic topology. A \
             $(b,.sbg) extension loads the streaming binary format written by \
             $(b,gen -o *.sbg); anything else is parsed as CAIDA as-rel text, with \
             the paper's five content providers (15169, 32934, 8075, 20940, 22822) \
             marked as CPs when present.")
  in
  let workers =
    Arg.(
      value
      & opt int (Parallel.Pool.default_workers ())
      & info [ "workers" ]
          ~doc:
            "Worker domains for the per-round destination sweep. Results are identical \
             for any value (default: one per spare core, or \\$(b,SBGP_WORKERS)).")
  in
  let checkpoint_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:
            "Snapshot engine progress to this file (atomically replaced, \
             SHA-256-checksummed) so an interrupted run can be continued with \
             $(b,--resume).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~doc:"Rounds between snapshots (default every round).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the snapshot at $(b,--checkpoint) instead of starting over. \
             The snapshot is validated (checksum and config/topology digest) before \
             anything is trusted; results are identical to an uninterrupted run.")
  in
  let retries =
    Arg.(
      value
      & opt int Core.Config.default.retries
      & info [ "retries" ]
          ~doc:
            "Retry budget for failed worker slices in the per-round sweep (final attempt \
             runs serially). Never affects results, only survival.")
  in
  let task_timeout_ms =
    Arg.(
      value
      & opt int Core.Config.default.task_timeout_ms
      & info [ "task-timeout-ms" ]
          ~doc:
            "Hang watchdog: a sweep slice silent for this many milliseconds is \
             cancelled and retried under the $(b,--retries) budget. 0 disables \
             the watchdog. Never affects results, only survival. The default \
             honours \\$(b,SBGP_TASK_TIMEOUT_MS).")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Degrade gracefully instead of crashing: repeated supervision \
             failures and invalid statics records demote the affected \
             destinations to the full (reference) kernels, and failed \
             checkpoint writes are skipped with a warning. Results stay \
             bit-identical; demotion and skip counts are reported. Equivalent \
             to \\$(b,SBGP_DEGRADE=1).")
  in
  let flip_kernel =
    let kernel_conv =
      Arg.conv
        ( (fun s ->
            match Core.Config.flip_kernel_of_string s with
            | Some k -> Ok k
            | None -> Error (`Msg (Printf.sprintf "expected 'full' or 'delta', got %S" s))),
          fun fmt k -> Format.pp_print_string fmt (Core.Config.flip_kernel_to_string k) )
    in
    Arg.(
      value
      & opt kernel_conv Core.Config.default.flip_kernel
      & info [ "flip-kernel" ]
          ~doc:
            "Flip kernel for the per-candidate probes of the sweep: $(b,delta) repairs \
             the destination's base forest in place and undoes the repair after each \
             probe; $(b,full) recomputes the forest from scratch per probe. Results are \
             bit-identical either way; only speed changes. The default honours \
             \\$(b,SBGP_FLIP_KERNEL).")
  in
  let statics_mb =
    Arg.(
      value & opt int 0
      & info [ "statics-mb" ]
          ~doc:
            "Memory budget for the per-destination route-statics store, in MiB. Evicted \
             entries are recomputed on demand, so results are identical for any budget; \
             only speed and memory change. 0 (the default) defers to \
             $(b,SBGP_STATICS_MB), or unlimited if that is unset.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~doc:
            "Record a span trace of the run and write it here as Chrome trace-event \
             JSON (open in about:tracing or Perfetto). Equivalent to setting \
             $(b,SBGP_TRACE). Tracing never changes results.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ]
          ~doc:
            "Collect run metrics (rounds, flips, cache and statics-store traffic, pool \
             and checkpoint activity) and write them here as Prometheus-style text; a \
             summary table is also printed. Equivalent to $(b,SBGP_METRICS).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ]
          ~doc:
            "Append a structured JSONL run journal here (round start/end, \
             checkpoint and resilience events, timestamped): readable with \
             $(b,jq), crash-safe up to the last event, and the input of \
             $(b,--obs-report). Equivalent to $(b,SBGP_JOURNAL).")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ]
          ~doc:
            "Serve $(b,GET /metrics) (Prometheus exposition) and \
             $(b,GET /healthz) (round progress, uptime, degradation state) on \
             this loopback port while the run executes; 0 picks an ephemeral \
             port. Implies metrics collection. Equivalent to \
             $(b,SBGP_METRICS_PORT).")
  in
  let obs_report =
    Arg.(
      value & flag
      & info [ "obs-report" ]
          ~doc:
            "Print a one-screen run health report at the end (rounds/s trend, \
             p50/p99 phase latencies, resilience-event totals), folding the \
             journal — including history from interrupted attempts — with \
             this run's metrics.")
  in
  let parse_adopters g spec =
    let prefix p s =
      if String.length s >= String.length p && String.sub s 0 (String.length p) = p then
        int_of_string_opt (String.sub s (String.length p) (String.length s - String.length p))
      else None
    in
    match spec with
    | "none" -> Adopters.Strategy.select g Adopters.Strategy.None_
    | "5cps" -> Adopters.Strategy.select g Adopters.Strategy.Content_providers
    | s -> begin
        match (prefix "top" s, prefix "cps+top" s, prefix "random" s) with
        | _, Some k, _ -> Adopters.Strategy.select g (Adopters.Strategy.Cps_and_top k)
        | Some k, _, _ -> Adopters.Strategy.select g (Adopters.Strategy.Top_degree k)
        | _, _, Some k -> Adopters.Strategy.select g (Adopters.Strategy.Random_isps (k, 7))
        | None, None, None ->
            Adopters.Strategy.select g
              (Adopters.Strategy.Explicit
                 (List.filter_map int_of_string_opt (String.split_on_char ',' s)))
      end
  in
  let run n seed theta x model adopters_spec no_stub_tiebreak csv caida workers
      checkpoint_path checkpoint_every resume retries task_timeout_ms degrade flip_kernel
      statics_mb trace metrics journal metrics_port obs_report =
    Option.iter Nsobs.Control.set_trace trace;
    Option.iter Nsobs.Control.set_metrics metrics;
    Option.iter Nsobs.Control.set_journal journal;
    (* --obs-report wants quantiles; make sure histograms collect even
       when no --metrics file was named. *)
    if obs_report then Nsobs.Metrics.set_enabled true;
    (match metrics_port with
    | Some p ->
        Nsobs.Control.set_metrics_port p;
        Option.iter
          (fun bound ->
            Printf.printf "metrics: serving http://127.0.0.1:%d/metrics\n%!" bound)
          (Nsobs.Control.server_port ())
    | None -> ());
    let g =
      match caida with
      | None -> Experiments.Scenario.graph (Experiments.Scenario.create ~n ~seed ())
      | Some path ->
          let loaded =
            if Filename.check_suffix path ".sbg" then begin
              let g = Asgraph.Graph_io.load_bin path in
              Printf.printf "loaded %s: %d ASes (binary)\n%!" path (Asgraph.Graph.n g);
              g
            end
            else begin
              let imp =
                Asgraph.Graph_io.load_caida ~cps:[ 15169; 32934; 8075; 20940; 22822 ]
                  path
              in
              Printf.printf "loaded %s: %d ASes (%d records skipped)\n%!" path
                (Asgraph.Graph.n imp.graph) imp.skipped;
              imp.graph
            end
          in
          if not (Asgraph.Validate.gr1_acyclic loaded) then begin
            Printf.eprintf "graph has a customer-provider cycle; refusing\n";
            exit 1
          end;
          loaded
    in
    let early = parse_adopters g adopters_spec in
    let cfg =
      {
        Core.Config.default with
        theta;
        theta_off = theta;
        cp_fraction = x;
        model;
        stub_tiebreak = not no_stub_tiebreak;
        allow_turn_off = model = Core.Config.Incoming;
        workers = max 1 workers;
        retries = max 0 retries;
        task_timeout_ms = max 0 task_timeout_ms;
        degrade = degrade || Core.Config.default.degrade;
        flip_kernel;
      }
    in
    if resume && checkpoint_path = None then begin
      Printf.eprintf "error: --resume requires --checkpoint PATH\n";
      exit 2
    end;
    (* On resume, surface the interrupted run's history (the journal
       appends across attempts) before this attempt adds to it. *)
    if resume then (
      match Nsobs.Control.journal_path () with
      | Some jp when Sys.file_exists jp ->
          Printf.printf "-- history from %s --\n%s--\n%!" jp
            (Nsobs.Report.render ~journal_path:jp ())
      | _ -> ());
    let checkpoint =
      Option.map
        (fun path -> { Core.Engine.path; every = max 1 checkpoint_every })
        checkpoint_path
    in
    let t0 = Unix.gettimeofday () in
    let statics =
      if statics_mb > 0 then
        Bgp.Route_static.create ~budget_bytes:(statics_mb * 1024 * 1024) g
      else Bgp.Route_static.create g
    in
    let weight = Traffic.Weights.assign g ~cp_fraction:cfg.cp_fraction in
    let state = Core.State.create g ~early in
    let result =
      if resume then
        Core.Engine.resume ~from:(Option.get checkpoint_path) ?checkpoint cfg statics
          ~weight ~state
      else Core.Engine.run ?checkpoint cfg statics ~weight ~state
    in
    let dt = Unix.gettimeofday () -. t0 in
    let table =
      Nsutil.Table.create
        ~header:[ "round"; "turned on"; "turned off"; "secure ASes"; "secure ISPs" ]
    in
    List.iter
      (fun (r : Core.Engine.round_record) ->
        Nsutil.Table.add_row table
          [
            string_of_int r.round;
            string_of_int (List.length r.turned_on);
            string_of_int (List.length r.turned_off);
            string_of_int r.secure_as;
            string_of_int r.secure_isp;
          ])
      result.rounds;
    Nsutil.Table.print table;
    Option.iter (Nsutil.Table.save_csv table) csv;
    Printf.printf
      "termination: %s after %d rounds (%.1fs); secure: %.1f%% of ASes, %.1f%% of ISPs\n"
      (match result.termination with
      | Core.Engine.Stable -> "stable"
      | Core.Engine.Oscillation { first_round } ->
          Printf.sprintf "oscillation (back to round %d)" first_round
      | Core.Engine.Max_rounds -> "round cap")
      (Core.Engine.rounds_run result)
      dt
      (100.0 *. Core.Engine.secure_fraction result `As)
      (100.0 *. Core.Engine.secure_fraction result `Isp);
    Printf.printf "sweep: %d workers; %d destination recomputes, %d cache hits (%.1f%%)\n"
      cfg.workers result.dest_recomputed result.dest_reused
      (100.0 *. Core.Engine.cache_hit_rate result);
    if result.demotions > 0 || result.checkpoint_skips > 0 then
      Printf.printf
        "degraded: %d destination(s) demoted to the full kernels, %d checkpoint \
         write(s) skipped (results unaffected)\n"
        result.demotions result.checkpoint_skips;
    (* On a snapshot-restored resume the engine swaps in the store
       rebuilt from the checkpoint; report the store the run actually
       used, not the handle created above. *)
    let statics = result.Core.Engine.statics_store in
    let st = Bgp.Route_static.stats statics in
    if Bgp.Route_static.bounded statics then
      (* Counters are best-effort under parallel sweeps (racy
         increments), so they only appear for explicitly bounded
         stores — the unbounded line stays byte-identical across
         worker counts. *)
      Printf.printf
        "statics: %d MiB budget; %d cached at exit; %d hits, %d recomputes, %d \
         evictions (best-effort)\n"
        (st.budget_bytes / (1024 * 1024))
        st.cached result.statics_hits result.statics_misses result.statics_evictions
    else
      Printf.printf "statics: unbounded; %d destinations cached (%.1f MiB)\n" st.cached
        (float_of_int st.cached_bytes /. 1048576.0);
    (* Write telemetry now (rather than only at_exit) so the summary
       table below reflects the flushed registry, RSS included. *)
    Nsobs.Control.flush ();
    if Nsobs.Metrics.enabled () && Nsobs.Control.metrics_path () <> None then begin
      Printf.printf "\nmetrics:\n";
      Nsutil.Table.print (Nsobs.Metrics.summary ())
    end;
    if obs_report then begin
      print_newline ();
      print_string
        (Nsobs.Report.render ?journal_path:(Nsobs.Control.journal_path ()) ())
    end
  in
  let doc = "Run one S*BGP deployment simulation." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun a b c d e f g h i j k l m o p q r s t u v w x ->
          guard (fun () -> run a b c d e f g h i j k l m o p q r s t u v w x))
      $ n_arg $ seed_arg $ theta $ x $ model $ adopters $ no_stub_tiebreak $ csv $ caida
      $ workers $ checkpoint_path $ checkpoint_every $ resume $ retries $ task_timeout_ms
      $ degrade $ flip_kernel $ statics_mb $ trace $ metrics $ journal $ metrics_port
      $ obs_report)

(* exp: regenerate a table/figure. *)
let exp_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let csv_dir =
    Arg.(
      value & opt (some string) None & info [ "csv-dir" ] ~doc:"Also write one CSV per table.")
  in
  let statics_kernel =
    Arg.(
      value
      & opt (some (enum [ ("full", Bgp.Route_static.Full); ("delta", Bgp.Route_static.Delta) ])) None
      & info [ "statics-kernel" ]
          ~doc:
            "How the route-statics store is maintained across the topology-churn epochs \
             of the $(b,evolution) experiment: $(b,delta) migrates the warm store \
             through the growth delta, repairing only destinations the churn reaches; \
             $(b,full) rebuilds every destination each epoch. Results are bit-identical \
             either way; only epoch time changes. Equivalent to exporting \
             $(b,SBGP_STATICS_KERNEL); unset, that variable (default $(b,delta)) \
             applies.")
  in
  let run n seed ids csv_dir statics_kernel =
    Option.iter
      (fun k -> Unix.putenv "SBGP_STATICS_KERNEL" (Bgp.Route_static.kernel_to_string k))
      statics_kernel;
    let scenario = Experiments.Scenario.create ~n ~seed () in
    let only = if ids = [] then None else Some ids in
    let unknown =
      List.filter (fun id -> Experiments.Registry.find id = None) ids
    in
    if unknown <> [] then begin
      Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
        (String.concat ", " unknown)
        (String.concat ", " (Experiments.Registry.ids ()));
      exit 2
    end;
    Experiments.Registry.run_streaming ?only scenario (fun e table dt ->
        Printf.printf "== %s: %s  [%.1fs]\n%s\n%!" e.id e.title dt
          (Nsutil.Table.to_string table);
        Option.iter
          (fun dir -> Nsutil.Table.save_csv table (Filename.concat dir (e.id ^ ".csv")))
          csv_dir)
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "exp" ~doc)
    Term.(
      const (fun a b c d e -> guard (fun () -> run a b c d e))
      $ n_arg $ seed_arg $ ids $ csv_dir $ statics_kernel)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.experiment) -> Printf.printf "%-12s %s\n" e.id e.title)
      Experiments.Registry.all
  in
  let doc = "List available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* analyze: structural analyses of a topology. *)
let analyze_cmd =
  let run n seed =
    let scenario = Experiments.Scenario.create ~n ~seed () in
    let g = Experiments.Scenario.graph scenario in
    Format.printf "%a@." Asgraph.Metrics.pp_summary (Asgraph.Metrics.summary g);
    let report = Asgraph.Validate.run g in
    Printf.printf "gr1-acyclic=%b connected=%b tier1=%d orphans=%d\n" report.gr1_acyclic
      report.connected report.tier1_count report.orphan_count;
    Printf.printf "mean tiebreak set (all sources): %.3f; ISPs: %.3f; stubs: %.3f\n"
      (Bgp.Route_static.mean_tiebreak_size scenario.statics ~among:(fun _ -> true))
      (Bgp.Route_static.mean_tiebreak_size scenario.statics ~among:(Asgraph.Graph.is_isp g))
      (Bgp.Route_static.mean_tiebreak_size scenario.statics ~among:(Asgraph.Graph.is_stub g));
    List.iter
      (fun cp ->
        Printf.printf "CP %d mean path length: %.2f\n" cp
          (Bgp.Route_static.mean_path_length scenario.statics ~from:cp))
      (Experiments.Scenario.cps scenario)
  in
  let doc = "Structural analyses of the synthetic topology." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const (fun a b -> guard (fun () -> run a b)) $ n_arg $ seed_arg)

(* attack: simulate a prefix hijack against a deployment state. *)
let attack_cmd =
  let theta =
    Arg.(value & opt float 0.05 & info [ "theta" ] ~doc:"Deployment threshold for the state.")
  in
  let attacker =
    Arg.(value & opt (some int) None & info [ "attacker" ] ~doc:"Attacker AS (default: random sweep).")
  in
  let victim =
    Arg.(value & opt (some int) None & info [ "victim" ] ~doc:"Victim AS (default: random sweep).")
  in
  let position =
    Arg.(
      value
      & opt
          (enum
             [
               ("tiebreak", Bgp.Flexsim.Tiebreak_only);
               ("before-length", Bgp.Flexsim.Before_length);
               ("first", Bgp.Flexsim.Before_lp);
             ])
          Bgp.Flexsim.Tiebreak_only
      & info [ "secp-position" ] ~doc:"Rank of the security criterion.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "samples" ] ~doc:"Random pairs for the sweep.")
  in
  let run n seed theta attacker victim position samples =
    let scenario = Experiments.Scenario.create ~n ~seed () in
    let cfg = { Core.Config.default with theta; theta_off = theta } in
    let result = Experiments.Scenario.run scenario cfg in
    Printf.printf "deployment state: %.1f%% of ASes secure (theta = %.0f%%)\n"
      (100.0 *. Core.Engine.secure_fraction result `As)
      (100.0 *. theta);
    match (attacker, victim) with
    | Some a, Some v ->
        let o =
          Core.Resilience.simulate_attack_ranked scenario.statics result.final
            ~stub_tiebreak:cfg.stub_tiebreak ~tiebreak:cfg.tiebreak ~position ~attacker:a
            ~victim:v
        in
        Printf.printf "AS %d hijacking AS %d's prefix deceives %d of %d ASes (%.1f%%)\n"
          a v o.deceived o.total
          (100.0 *. float_of_int o.deceived /. float_of_int (max 1 o.total))
    | _ ->
        let f =
          Core.Resilience.mean_deceived_fraction_ranked scenario.statics result.final
            ~stub_tiebreak:cfg.stub_tiebreak ~tiebreak:cfg.tiebreak ~position ~samples
            ~seed:(seed + 1)
        in
        Printf.printf
          "mean deceived fraction over %d random (attacker, victim) pairs: %.1f%% \n\
           (SecP position: %s)\n"
          samples (100.0 *. f)
          (Bgp.Flexsim.position_to_string position)
  in
  let doc = "Simulate prefix hijacks against a deployment state." in
  Cmd.v (Cmd.info "attack" ~doc)
    Term.(const (fun a b c d e f g -> guard (fun () -> run a b c d e f g)) $ n_arg $ seed_arg $ theta $ attacker $ victim $ position $ samples)

(* tree: show the routing tree towards one destination. *)
let tree_cmd =
  let dest = Arg.(required & pos 0 (some int) None & info [] ~docv:"DEST") in
  let limit =
    Arg.(value & opt int 25 & info [ "limit" ] ~doc:"Max sources to print.")
  in
  let run n seed dest limit =
    let scenario = Experiments.Scenario.create ~n ~seed () in
    let g = Experiments.Scenario.graph scenario in
    if dest < 0 || dest >= Asgraph.Graph.n g then begin
      Printf.eprintf "destination %d out of range\n" dest;
      exit 2
    end;
    let cfg = Core.Config.default in
    let result = Experiments.Scenario.run scenario cfg in
    let info = Bgp.Route_static.get scenario.statics dest in
    let scratch = Bgp.Forest.make_scratch (Asgraph.Graph.n g) in
    let weight = Experiments.Scenario.weights scenario cfg in
    Bgp.Forest.compute info ~tiebreak:cfg.tiebreak
      ~secure:(Core.State.secure_bytes result.final)
      ~use_secp:(Core.State.use_secp_bytes result.final ~stub_tiebreak:cfg.stub_tiebreak)
      ~weight scratch;
    Printf.printf "routes to AS %d (%s) after the case-study deployment:\n" dest
      (Asgraph.As_class.to_string (Asgraph.Graph.klass g dest));
    let printed = ref 0 in
    for src = 0 to Asgraph.Graph.n g - 1 do
      if src <> dest && !printed < limit && Bgp.Route_static.reachable info src then begin
        incr printed;
        let path = Bgp.Forest.path_to_dest info scratch src in
        let secure_mark =
          if Bytes.get scratch.Bgp.Forest.sec_path src = '\001' then " [secure]" else ""
        in
        Printf.printf "  %s%s\n"
          (String.concat " -> " (List.map string_of_int path))
          secure_mark
      end
    done
  in
  let doc = "Print the (post-deployment) routing tree towards a destination." in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const (fun a b c d -> guard (fun () -> run a b c d)) $ n_arg $ seed_arg $ dest $ limit)

let () =
  Nsobs.Control.init ();
  let doc = "Market-driven S*BGP deployment simulator (Gill-Schapira-Goldberg, SIGCOMM'11)" in
  let info = Cmd.info "sbgp_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; run_cmd; exp_cmd; list_cmd; analyze_cmd; attack_cmd; tree_cmd ]))
