(* Churn differential suite for the incremental statics repair path:
   random GR1 graphs under random topology churn — stub attachment,
   edge insertion, edge withdrawal, edge class change, content-provider
   designation flips — with every repaired [Route_static.dest_info]
   checked bit-for-bit ([info_equal]) against a fresh
   [Route_static.compute] on the churned graph: class/length bytes,
   tie CSR offsets and pre-sorted rows, the reverse tiebreak CSR and
   the length-sorted order.

   The store-level [rebase] is exercised the way the engine uses it (a
   warm store migrated across each delta of a multi-delta churn
   sequence); its journal must undo to the physically identical
   pre-churn store, and destinations omitted from [rebase_changed]
   must keep physically shared records — the contract
   [Core.Incremental.note_churn] relies on to keep their cached
   forests.

   The case count per tiebreak policy comes from SBGP_CHURN_COUNT
   (default 150, so the two tiebreak suites together run >= 300
   cases). The churn-smoke alias in test/dune runs a pinned-seed
   regression corpus plus a fresh unseeded batch. *)

module Graph = Asgraph.Graph
module Policy = Bgp.Policy
module Route_static = Bgp.Route_static
module Gen = QCheck2.Gen

let check = Alcotest.check

let cases = Nsutil.Env.int_var ~name:"SBGP_CHURN_COUNT" ~min:1 ~default:150 ()

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:cases gen prop)

(* ------------------------------------------------------------------ *)
(* Churn generator *)

(* One random delta against [g]: 1-5 op slots, each drawing one of six
   churn kinds. A slot whose guards fail (no eligible node, pair
   already touched, ...) contributes nothing, so empty deltas occur —
   and exercise the all-shared rebase path. The guards keep every
   delta [apply_delta]-valid by construction: customer-provider
   additions point provider = lower index (preserving GR1 acyclicity,
   as in Testkit.Graphgen), providers are never CPs, removals name
   existing edges, each node pair is touched at most once per delta,
   and [Set_cp] only designates customer-free nodes. *)
let delta_gen g =
  let open Gen in
  let n = Graph.n g in
  let base_edges = Array.of_list (Graph.edges g) in
  let* nslots = int_range 1 5 in
  (* Fresh per-sample guard state, allocated inside the bind so
     re-running the generator (next case, shrinking) starts clean. *)
  let touched = Hashtbl.create 8 in (* pairs added or removed *)
  let got_customer = Hashtbl.create 8 in (* nodes gaining a customer *)
  let cp_toggled = Hashtbl.create 8 in (* nodes whose CP flag flips *)
  let touch lo hi = Hashtbl.replace touched (lo, hi) () in
  let free lo hi = not (Hashtbl.mem touched (lo, hi)) in
  let provider_ok v = (not (Graph.is_cp g v)) && not (Hashtbl.mem cp_toggled v) in
  let rec slots k grown acc =
    if k = 0 then return { Graph.base_n = n; grown; ops = List.rev acc }
    else
      let skip () = slots (k - 1) grown acc in
      let* kind = int_bound 5 in
      match kind with
      | 0 ->
          (* Attach a fresh stub to 1-2 existing providers — the
             surgical fast path. *)
          let s = n + grown in
          let* p1 = int_bound (n - 1) and* p2 = int_bound (n - 1) and* two = bool in
          if not (provider_ok p1) then skip ()
          else begin
            Hashtbl.replace got_customer p1 ();
            let acc = Graph.Edge_add ((p1, s), Graph.Customer) :: acc in
            let acc =
              if two && p2 <> p1 && provider_ok p2 then begin
                Hashtbl.replace got_customer p2 ();
                Graph.Edge_add ((p2, s), Graph.Customer) :: acc
              end
              else acc
            in
            slots (k - 1) (grown + 1) acc
          end
      | 1 ->
          (* New customer-provider edge between existing nodes. *)
          let* a = int_bound (n - 1) and* b = int_bound (n - 1) in
          let lo, hi = (min a b, max a b) in
          if lo = hi || Graph.rel g lo hi <> None || (not (free lo hi))
             || not (provider_ok lo)
          then skip ()
          else begin
            touch lo hi;
            Hashtbl.replace got_customer lo ();
            slots (k - 1) grown (Graph.Edge_add ((lo, hi), Graph.Customer) :: acc)
          end
      | 2 ->
          (* New peer edge between existing nodes. *)
          let* a = int_bound (n - 1) and* b = int_bound (n - 1) in
          let lo, hi = (min a b, max a b) in
          if lo = hi || Graph.rel g lo hi <> None || not (free lo hi) then skip ()
          else begin
            touch lo hi;
            slots (k - 1) grown (Graph.Edge_add ((lo, hi), Graph.Peer) :: acc)
          end
      | 3 ->
          (* Withdraw an existing edge. *)
          if Array.length base_edges = 0 then skip ()
          else
            let* i = int_bound (Array.length base_edges - 1) in
            let (lo, hi), rel_ = base_edges.(i) in
            if not (free lo hi) then skip ()
            else begin
              touch lo hi;
              slots (k - 1) grown (Graph.Edge_remove ((lo, hi), rel_) :: acc)
            end
      | 4 ->
          (* Class change: replace an existing edge by the other
             annotation in the same delta. *)
          if Array.length base_edges = 0 then skip ()
          else
            let* i = int_bound (Array.length base_edges - 1) in
            let (lo, hi), rel_ = base_edges.(i) in
            if not (free lo hi) then skip ()
            else begin
              match rel_ with
              | Graph.Customer ->
                  touch lo hi;
                  slots (k - 1) grown
                    (Graph.Edge_add ((lo, hi), Graph.Peer)
                    :: Graph.Edge_remove ((lo, hi), Graph.Customer)
                    :: acc)
              | Graph.Peer ->
                  if not (provider_ok lo) then skip ()
                  else begin
                    touch lo hi;
                    Hashtbl.replace got_customer lo ();
                    slots (k - 1) grown
                      (Graph.Edge_add ((lo, hi), Graph.Customer)
                      :: Graph.Edge_remove ((lo, hi), Graph.Peer)
                      :: acc)
                  end
              | Graph.Provider -> skip () (* [Graph.edges] never reports it *)
            end
      | _ ->
          (* Toggle a node's content-provider designation. *)
          let* v = int_bound (n - 1) in
          if Hashtbl.mem cp_toggled v then skip ()
          else if Graph.is_cp g v then begin
            Hashtbl.replace cp_toggled v ();
            slots (k - 1) grown (Graph.Set_cp (v, false) :: acc)
          end
          else if Graph.customer_degree g v = 0 && not (Hashtbl.mem got_customer v)
          then begin
            Hashtbl.replace cp_toggled v ();
            slots (k - 1) grown (Graph.Set_cp (v, true) :: acc)
          end
          else skip ()
  in
  slots nslots 0 []

(* A churn sequence: a base graph and 1-3 successive deltas, each
   generated against (and applied to) the previous graph. *)
let churn_case_gen =
  Gen.(
    let* g0 = Testkit.Graphgen.graph ~max_n:30 () in
    let* nsteps = int_range 1 3 in
    let rec go k g acc =
      if k = 0 then return (g0, List.rev acc)
      else
        let* d = delta_gen g in
        let g' = Graph.apply_delta g d in
        go (k - 1) g' ((d, g') :: acc)
    in
    go nsteps g0 [])

(* ------------------------------------------------------------------ *)
(* The differential property *)

(* Outcome tallies across all cases, asserted non-zero at the end so
   the suite provably exercised the surgical patch, the compute
   fallback AND the physically-shared path. *)
let shared_total = ref 0
let patched_total = ref 0
let dropped_total = ref 0

let repaired_matches_compute ~tiebreak (g0, steps) =
  let store = Route_static.create ~tiebreak g0 in
  Route_static.ensure_all ~workers:1 store;
  List.iter
    (fun (delta, g') ->
      let gb = Route_static.graph store in
      let nb = Graph.n gb in
      let before = Array.init nb (Route_static.get store) in
      (* rebase >> undo must restore the physically identical store. *)
      let j = Route_static.rebase ~kernel:Route_static.Delta ~workers:4 store ~delta g' in
      Route_static.undo_rebase store j;
      if Route_static.graph store != gb then
        QCheck2.Test.fail_reportf "undo_rebase did not restore the graph";
      for d = 0 to nb - 1 do
        if Route_static.get store d != before.(d) then
          QCheck2.Test.fail_reportf
            "undo_rebase lost the resident record of destination %d" d
      done;
      (* Redo, and this time keep it. *)
      let j = Route_static.rebase ~kernel:Route_static.Delta store ~delta g' in
      let st = Route_static.rebase_stats j in
      shared_total := !shared_total + st.Route_static.shared;
      patched_total := !patched_total + st.Route_static.patched;
      dropped_total := !dropped_total + st.Route_static.dropped;
      let changed = Hashtbl.create 16 in
      List.iter (fun d -> Hashtbl.replace changed d ()) (Route_static.rebase_changed j);
      for d = 0 to Graph.n g' - 1 do
        let want = Route_static.compute ~tiebreak g' d in
        let got = Route_static.get store d in
        if not (Route_static.info_equal got want) then
          QCheck2.Test.fail_reportf
            "rebased store: wrong record for destination %d (of %d, grown %d)" d
            (Graph.n g') delta.Graph.grown;
        if d < nb then begin
          (* The standalone repair API, including its compute
             fallback, must agree too. *)
          let rep = Route_static.repair g' ~delta before.(d) in
          if not (Route_static.info_equal rep want) then
            QCheck2.Test.fail_reportf "repair <> compute for destination %d" d;
          (* Destinations omitted from [rebase_changed] promised
             physically unchanged statics. *)
          if (not (Hashtbl.mem changed d)) && Route_static.get store d != before.(d)
          then
            QCheck2.Test.fail_reportf
              "destination %d omitted from rebase_changed but its record moved" d
        end
      done)
    steps;
  true

let test_churn_differential_sorted =
  qtest "repair/rebase = compute under churn (Lowest_id)" churn_case_gen
    (repaired_matches_compute ~tiebreak:Policy.Lowest_id)

let test_churn_differential_generic =
  qtest "repair/rebase = compute under churn (Hashed tiebreak)" churn_case_gen
    (repaired_matches_compute ~tiebreak:(Policy.Hashed 0x2f))

let test_outcome_coverage () =
  (* Runs after the two property suites (Alcotest executes this file's
     cases in registration order): all three migration outcomes must
     actually have occurred, else the differential proved less than it
     claims. *)
  Printf.printf "churn outcomes: shared=%d patched=%d dropped=%d\n%!" !shared_total
    !patched_total !dropped_total;
  check Alcotest.bool "surgical patches exercised" true (!patched_total > 0);
  check Alcotest.bool "compute fallbacks exercised" true (!dropped_total > 0);
  check Alcotest.bool "physically shared records exercised" true (!shared_total > 0)

(* ------------------------------------------------------------------ *)
(* Budgeted store: rebase must never leave a stale entry behind *)

let test_bounded_rebase_no_stale () =
  let params = { (Topology.Params.with_n Topology.Params.default 150) with seed = 21 } in
  let g = (Topology.Gen.generate params).graph in
  let n = Graph.n g in
  let per = Route_static.info_bytes (Route_static.compute g 0) in
  let budget = 25 * per in
  let store = Route_static.create ~budget_bytes:budget g in
  (* Touch every destination so the clock hand and eviction accounting
     are churned before the topology is. *)
  for d = 0 to n - 1 do
    ignore (Route_static.get store d)
  done;
  let st0 = Route_static.stats store in
  check Alcotest.bool "bounded store evicts under pressure" true
    (st0.Route_static.evictions > 0);
  let grown, delta =
    Topology.Evolve.grow_delta g ~new_stubs:20 ~secure_bias:1.0
      ~is_secure:(fun i -> i mod 3 = 0)
      ~seed:4
  in
  let j = Route_static.rebase store ~delta grown in
  let rs = Route_static.rebase_stats j in
  check Alcotest.bool "rebase saw resident entries" true
    (rs.Route_static.shared + rs.Route_static.patched + rs.Route_static.dropped > 0);
  let st1 = Route_static.stats store in
  check Alcotest.bool "store still bounded" true (Route_static.bounded store);
  check Alcotest.bool "byte budget carried over" true
    (st1.Route_static.budget_bytes > 0 && st1.Route_static.budget_bytes <= budget);
  check Alcotest.bool "eviction accounting within budget" true
    (st1.Route_static.cached_bytes <= st1.Route_static.budget_bytes);
  (* Every destination must now serve post-churn statics: the warm
     bounded store against a cold unbounded one. *)
  let cold = Route_static.create grown in
  for d = 0 to Graph.n grown - 1 do
    if not (Route_static.info_equal (Route_static.get store d) (Route_static.get cold d))
    then Alcotest.failf "bounded store serves stale statics for destination %d" d
  done;
  (* Same-node-count churn on top: withdraw an edge. Entries the
     rebase kept must be provably unaffected by the withdrawal. *)
  let (e_lo, e_hi), e_rel = List.hd (Graph.edges grown) in
  let delta2 =
    {
      Graph.base_n = Graph.n grown;
      grown = 0;
      ops = [ Graph.Edge_remove ((e_lo, e_hi), e_rel) ];
    }
  in
  let g2 = Graph.apply_delta grown delta2 in
  ignore (Route_static.rebase store ~delta:delta2 g2);
  let cold2 = Route_static.create g2 in
  for d = 0 to Graph.n g2 - 1 do
    if not (Route_static.info_equal (Route_static.get store d) (Route_static.get cold2 d))
    then
      Alcotest.failf
        "bounded store serves stale statics for destination %d after edge withdrawal" d
  done;
  let st2 = Route_static.stats store in
  check Alcotest.bool "still within budget after second rebase" true
    (st2.Route_static.cached_bytes <= st2.Route_static.budget_bytes)

(* ------------------------------------------------------------------ *)
(* Incremental cache: note_churn marks exactly the changed set *)

let test_note_churn_protocol () =
  let params = { (Topology.Params.with_n Topology.Params.default 60) with seed = 4 } in
  let g = (Topology.Gen.generate params).graph in
  let nn = Graph.n g in
  let cfg = Core.Config.default in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let statics = Route_static.create g in
  let state = Core.State.create g ~early:(Asgraph.Metrics.top_by_degree g 3) in
  let inc = Core.Incremental.create statics in
  let scratch = Bgp.Forest.make_scratch nn in
  let sweep () =
    Core.Incremental.begin_round inc state;
    let secure = Core.State.secure_bytes state in
    let use_secp = Core.State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
    for d = 0 to nn - 1 do
      if Core.Incremental.is_dirty inc d then begin
        let info = Route_static.get statics d in
        Bgp.Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight scratch;
        let pairs = Core.Utility.contribution_pairs cfg.model g info scratch ~weight in
        Core.Incremental.store inc d ~sec_path:scratch.Bgp.Forest.sec_path ~pairs
      end
    done;
    Core.Incremental.dirty_count inc
  in
  check Alcotest.int "first round recomputes everything" nn (sweep ());
  (* Same-node-count churn between rounds: withdraw one edge, rebase
     the cache's store, feed rebase_changed to note_churn. *)
  let (e_lo, e_hi), e_rel = List.hd (Graph.edges g) in
  let delta =
    { Graph.base_n = nn; grown = 0; ops = [ Graph.Edge_remove ((e_lo, e_hi), e_rel) ] }
  in
  let g2 = Graph.apply_delta g delta in
  let j = Route_static.rebase statics ~delta g2 in
  let changed = Route_static.rebase_changed j in
  Core.Incremental.note_churn inc ~changed;
  (* No deployment flips happened, so the next round's dirty set is
     exactly the churned destinations. *)
  check Alcotest.int "churn round recomputes exactly the changed set"
    (List.length changed) (sweep ());
  (* The replayed utility vector (churned destinations recomputed,
     clean ones replayed from cache) must match a from-scratch sweep
     on the churned graph. *)
  let incremental = Array.make nn 0.0 in
  for d = 0 to nn - 1 do
    Core.Incremental.add_pairs (Core.Incremental.entry inc d) ~into:incremental
  done;
  check
    Alcotest.(array (float 1e-9))
    "replayed utilities match from-scratch on the churned graph"
    (Core.Utility.all cfg (Route_static.create g2) state ~weight)
    incremental;
  (* A growing delta invalidates the cache's node count: note_churn
     must refuse it. *)
  let grow_delta = { Graph.base_n = nn; grown = 1; ops = [] } in
  let g3 = Graph.apply_delta g2 grow_delta in
  ignore (Route_static.rebase statics ~delta:grow_delta g3);
  Alcotest.check_raises "growing churn requires a fresh cache"
    (Invalid_argument "Incremental.note_churn: cache does not match the store's graph")
    (fun () -> Core.Incremental.note_churn inc ~changed:[])

let () =
  Alcotest.run "statics_churn"
    [
      ( "differential",
        [
          test_churn_differential_sorted;
          test_churn_differential_generic;
          Alcotest.test_case "all migration outcomes exercised" `Quick
            test_outcome_coverage;
        ] );
      ( "store",
        [
          Alcotest.test_case "bounded rebase serves no stale entry" `Quick
            test_bounded_rebase_no_stale;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "note_churn marks exactly the changed set" `Quick
            test_note_churn_protocol;
        ] );
    ]
