(* The deterministic chaos matrix: every fault site the resilience
   layer handles, swept across worker counts and kernels, each cell
   asserting BIT-IDENTITY with its fault-free baseline.

   The contract under test is the one the whole codebase is built on:
   contained faults — worker exceptions, hung slices, failed
   checkpoint writes, failed statics migrations, invalid statics
   records — change survival, never results. Full kernels are the
   reference the delta kernels are contracted to equal, so even
   per-destination demotion to the full kernels is result-invisible.

   Statics hit/miss/eviction counters are excluded from the
   comparisons where the recovery legitimately re-touches the store
   (retried slices recompute, dropped records recompute lazily);
   they are documented diagnostics, not results. *)

module Engine = Core.Engine
module State = Core.State
module Config = Core.Config
module Checkpoint = Core.Checkpoint
module Evolution_run = Experiments.Evolution_run
module Pool = Parallel.Pool
module Faults = Nsutil.Faults

let check = Alcotest.check
let exact = Alcotest.float 0.0

(* ------------------------------------------------------------------ *)
(* Engine-result equality, bit for bit, minus the statics counters. *)

let check_round_equal i (a : Engine.round_record) (b : Engine.round_record) =
  let lbl f = Printf.sprintf "round %d %s" i f in
  check Alcotest.(array exact) (lbl "utilities") a.utilities b.utilities;
  check Alcotest.(array exact) (lbl "projected") a.projected b.projected;
  check Alcotest.(list int) (lbl "turned_on") a.turned_on b.turned_on;
  check Alcotest.(list int) (lbl "turned_off") a.turned_off b.turned_off;
  check Alcotest.int (lbl "secure_as") a.secure_as b.secure_as;
  check Alcotest.int (lbl "secure_isp") a.secure_isp b.secure_isp

let check_result_equal (a : Engine.result) (b : Engine.result) =
  check Alcotest.(array exact) "baseline" a.baseline b.baseline;
  check Alcotest.int "round count" (List.length a.rounds) (List.length b.rounds);
  List.iteri
    (fun i (ra, rb) -> check_round_equal i ra rb)
    (List.combine a.rounds b.rounds);
  check Alcotest.bool "termination" true (a.termination = b.termination);
  check Alcotest.bool "final state" true (State.equal_full a.final b.final)

(* ------------------------------------------------------------------ *)
(* Inputs: one small synthetic topology, fresh mutable state per run. *)

let n = 120

let built =
  lazy
    (Topology.Gen.generate
       { (Topology.Params.with_n Topology.Params.default n) with seed = 11 })

let early () =
  let b = Lazy.force built in
  b.cps @ Asgraph.Metrics.top_by_degree b.graph 5

let cfg ~workers ~kernel ?(retries = 2) ?(timeout_ms = 0) ?(degrade = false) () =
  {
    Config.default with
    workers;
    retries;
    theta = 0.05;
    theta_off = 0.05;
    flip_kernel = kernel;
    task_timeout_ms = timeout_ms;
    degrade;
  }

let run_engine ?checkpoint ?faults cfg =
  let b = Lazy.force built in
  let g = b.graph in
  let statics = Bgp.Route_static.create g in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let state = State.create g ~early:(early ()) in
  Engine.run ?checkpoint ?faults cfg statics ~weight ~state

(* Fault-free baselines, one per (workers, kernel) cell. *)
let baseline_for = Hashtbl.create 4

let baseline ~workers ~kernel =
  match Hashtbl.find_opt baseline_for (workers, kernel) with
  | Some r -> r
  | None ->
      let r = run_engine (cfg ~workers ~kernel ()) in
      Hashtbl.add baseline_for (workers, kernel) r;
      r

let matrix = [ (1, Config.Flip_full); (1, Config.Flip_delta); (4, Config.Flip_full); (4, Config.Flip_delta) ]

let scoped site spec = Faults.of_plan [ (Some site, spec) ]

(* ------------------------------------------------------------------ *)
(* Cell 1: worker faults within the retry budget. *)

let test_pool_task_within_budget () =
  List.iter
    (fun (workers, kernel) ->
      let faults = Faults.create ~rate:0.02 ~budget:2 ~seed:3 () in
      let r = run_engine ~faults (cfg ~workers ~kernel ()) in
      check_result_equal (baseline ~workers ~kernel) r;
      check Alcotest.int
        (Printf.sprintf "faults fired (workers=%d)" workers)
        2 (Faults.fired faults))
    matrix

(* Cell 2: a hung slice, cancelled by the watchdog and retried. *)

let test_pool_hang_watchdog () =
  List.iter
    (fun (workers, kernel) ->
      let faults =
        scoped "pool.hang" { Faults.seed = 7; rate = 1.0; budget = 1; after = 40 }
      in
      let r = run_engine ~faults (cfg ~workers ~kernel ~timeout_ms:50 ()) in
      check_result_equal (baseline ~workers ~kernel) r;
      check Alcotest.int "the hang fired" 1 (Faults.fired faults))
    matrix

(* Cell 3: checkpoint writes failing under degradation — snapshots are
   skipped (and counted), results untouched. *)

let test_checkpoint_io_degraded () =
  List.iter
    (fun (workers, kernel) ->
      let path = Filename.temp_file "sbgp_chaos" ".snap" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let faults =
            scoped "checkpoint.io" { Faults.seed = 5; rate = 1.0; budget = 2; after = 0 }
          in
          let r =
            run_engine ~checkpoint:{ Engine.path; every = 1 } ~faults
              (cfg ~workers ~kernel ~degrade:true ())
          in
          check_result_equal (baseline ~workers ~kernel) r;
          check Alcotest.bool "writes were skipped" true (r.checkpoint_skips > 0)))
    matrix

(* Cell 4: forced kernel demotion. A zero retry budget turns the first
   injected fault into a supervision failure; under degradation the
   ladder demotes the failing destination to the full kernels and
   re-runs the sweep (the budget is spent, so the re-run is clean).
   Results must still be bit-identical — the full kernels ARE the
   reference. *)

let test_forced_demotion () =
  List.iter
    (fun (workers, kernel) ->
      (* [after] skips past the pre-loop baseline sweep (n tasks),
         which the ladder deliberately does not guard — demotion is a
         per-destination response to a per-destination failure, and
         the baseline phase has no demotion to offer. *)
      let faults = Faults.create ~rate:1.0 ~budget:1 ~seed:9 ~after:(3 * n) () in
      let r = run_engine ~faults (cfg ~workers ~kernel ~retries:0 ~degrade:true ()) in
      check_result_equal (baseline ~workers ~kernel) r;
      check Alcotest.bool "a destination was demoted" true (r.demotions > 0))
    matrix

(* ------------------------------------------------------------------ *)
(* Churn cells: faults inside the epoch migration. The statics kernel
   replaces the flip kernel as the swept axis; outcomes are compared
   without the miss diagnostic (recovery recomputes lazily). *)

let check_outcome_equal (a : Evolution_run.outcome) (b : Evolution_run.outcome) =
  check Alcotest.int "summary count" (List.length a.summaries) (List.length b.summaries);
  List.iteri
    (fun i ((sa : Evolution_run.epoch_summary), (sb : Evolution_run.epoch_summary)) ->
      let lbl f = Printf.sprintf "epoch %d %s" i f in
      check exact (lbl "e_secure_as") sa.e_secure_as sb.e_secure_as;
      check exact (lbl "e_secure_isp") sa.e_secure_isp sb.e_secure_isp;
      check
        Alcotest.(option (pair int int))
        (lbl "e_new_on_secure") sa.e_new_on_secure sb.e_new_on_secure;
      check Alcotest.int (lbl "e_rounds") sa.e_rounds sb.e_rounds)
    (List.combine a.summaries b.summaries);
  check Alcotest.bool "final state" true (State.equal_full a.final b.final);
  check Alcotest.int "final graph size" (Asgraph.Graph.n a.final_graph)
    (Asgraph.Graph.n b.final_graph);
  check Alcotest.bool "final graph edges" true
    (List.sort compare (Asgraph.Graph.edges a.final_graph)
    = List.sort compare (Asgraph.Graph.edges b.final_graph))

let churn_params = { Evolution_run.default_params with epochs = 2; growth_fraction = 0.1 }

let churn_cfg ~workers ~statics_kernel =
  { (cfg ~workers ~kernel:Config.Flip_delta ()) with statics_kernel }

let churn_baseline_for = Hashtbl.create 4

let churn_baseline ~workers ~statics_kernel =
  match Hashtbl.find_opt churn_baseline_for (workers, statics_kernel) with
  | Some o -> o
  | None ->
      let b = Lazy.force built in
      let o =
        Evolution_run.run churn_params
          (churn_cfg ~workers ~statics_kernel)
          b.graph ~early:(early ())
      in
      Hashtbl.add churn_baseline_for (workers, statics_kernel) o;
      o

let churn_matrix =
  [
    (1, Bgp.Route_static.Full);
    (1, Bgp.Route_static.Delta);
    (4, Bgp.Route_static.Full);
    (4, Bgp.Route_static.Delta);
  ]

(* Cell 5: invalid statics records surfaced during the rebase
   validation — dropped and recomputed, results unchanged. *)

let test_statics_repair_fault () =
  List.iter
    (fun (workers, statics_kernel) ->
      let b = Lazy.force built in
      let faults =
        scoped "statics.repair" { Faults.seed = 21; rate = 1.0; budget = 2; after = 0 }
      in
      let o =
        Evolution_run.run ~faults churn_params
          (churn_cfg ~workers ~statics_kernel)
          b.graph ~early:(early ())
      in
      check_outcome_equal (churn_baseline ~workers ~statics_kernel) o)
    churn_matrix

(* Cell 6: the epoch migration itself declared failed — the journal is
   rolled back and the store rebuilt cold. Bit-identical by the kernel
   parity contract. *)

let test_evolve_delta_fault () =
  List.iter
    (fun (workers, statics_kernel) ->
      let b = Lazy.force built in
      let faults =
        scoped "evolve.delta" { Faults.seed = 23; rate = 1.0; budget = 1; after = 0 }
      in
      let o =
        Evolution_run.run ~faults churn_params
          (churn_cfg ~workers ~statics_kernel)
          b.graph ~early:(early ())
      in
      check_outcome_equal (churn_baseline ~workers ~statics_kernel) o;
      if statics_kernel = Bgp.Route_static.Delta then
        check Alcotest.bool "the migration fault fired" true (Faults.fired faults >= 1))
    churn_matrix

let () =
  Alcotest.run "chaos"
    [
      ( "engine",
        [
          Alcotest.test_case "pool.task within budget" `Quick test_pool_task_within_budget;
          Alcotest.test_case "pool.hang + watchdog" `Quick test_pool_hang_watchdog;
          Alcotest.test_case "checkpoint.io under degrade" `Quick
            test_checkpoint_io_degraded;
          Alcotest.test_case "forced kernel demotion" `Quick test_forced_demotion;
        ] );
      ( "churn",
        [
          Alcotest.test_case "statics.repair recovery" `Quick test_statics_repair_fault;
          Alcotest.test_case "evolve.delta rollback" `Quick test_evolve_delta_fault;
        ] );
    ]
