(* Tests for the BGP routing substrate: the per-destination static
   computation, the state-dependent routing forest, and a differential
   check against the independent reference implementation
   (Testkit.Refbgp) on random graphs and states. *)

module Graph = Asgraph.Graph
module Policy = Bgp.Policy
module Route_static = Bgp.Route_static
module Forest = Bgp.Forest

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Policy *)

let test_policy_class_roundtrip () =
  List.iter
    (fun c ->
      check Alcotest.string "roundtrip"
        (Policy.class_to_string c)
        (Policy.class_to_string (Policy.class_of_char (Policy.class_to_char c))))
    [ Policy.Self; Policy.Via_customer; Policy.Via_peer; Policy.Via_provider; Policy.Unreachable ]

let test_policy_tiebreaks () =
  check Alcotest.int "lowest id is the id" 7 (Policy.tiebreak_key Policy.Lowest_id 3 7);
  check Alcotest.int "hash deterministic"
    (Policy.tiebreak_key (Policy.Hashed 5) 3 7)
    (Policy.tiebreak_key (Policy.Hashed 5) 3 7);
  check Alcotest.bool "hash depends on seed" true
    (Policy.tiebreak_key (Policy.Hashed 5) 3 7 <> Policy.tiebreak_key (Policy.Hashed 6) 3 7);
  check Alcotest.bool "preferred with no current" true
    (Policy.preferred Policy.Lowest_id 0 ~current:(-1) ~candidate:9);
  check Alcotest.bool "lower id preferred" true
    (Policy.preferred Policy.Lowest_id 0 ~current:5 ~candidate:2)

let test_policy_ranked () =
  let r = Policy.ranking_create () in
  Policy.set_rank r ~node:1 ~next_hop:9 0;
  Policy.set_rank r ~node:1 ~next_hop:2 1;
  let tb = Policy.Ranked r in
  check Alcotest.bool "explicit rank overrides id order" true
    (Policy.tiebreak_key tb 1 9 < Policy.tiebreak_key tb 1 2);
  check Alcotest.int "unranked pairs fall back to id" 4 (Policy.tiebreak_key tb 3 4)

(* The reference graph: tier1 (0), ISPs 1 and 2, CP 3 (peer of 0),
   stubs 4 (multihomed to 1, 2) and 5 (single-homed to 2). *)
let small () =
  Graph.build ~n:6
    ~cp_edges:[ (0, 1); (0, 2); (1, 4); (2, 4); (2, 5) ]
    ~peer_edges:[ (0, 3); (1, 2) ]
    ~cps:[ 3 ]

let klass info i = Policy.class_to_string (Route_static.class_of info i)

let test_static_small_dest_stub () =
  let info = Route_static.compute (small ()) 4 in
  check Alcotest.string "isp1 class" "customer" (klass info 1);
  check Alcotest.int "isp1 len" 1 (Route_static.length_of info 1);
  check Alcotest.(list int) "isp1 tie" [ 4 ] (Route_static.tie_list info 1);
  check Alcotest.string "tier1 class" "customer" (klass info 0);
  check Alcotest.int "tier1 len" 2 (Route_static.length_of info 0);
  check Alcotest.(list int) "tier1 tie is the diamond" [ 1; 2 ]
    (List.sort compare (Route_static.tie_list info 0));
  check Alcotest.string "cp class" "peer" (klass info 3);
  check Alcotest.int "cp len" 3 (Route_static.length_of info 3);
  check Alcotest.string "other stub class" "provider" (klass info 5);
  check Alcotest.int "other stub len" 2 (Route_static.length_of info 5);
  check Alcotest.string "dest class" "self" (klass info 4);
  check Alcotest.int "order head is dest" 4 (Route_static.order_get info 0)

let test_static_small_dest_tier1 () =
  let info = Route_static.compute (small ()) 0 in
  check Alcotest.string "isp1 routes up" "provider" (klass info 1);
  check Alcotest.string "cp peers" "peer" (klass info 3);
  check Alcotest.int "cp one hop" 1 (Route_static.length_of info 3);
  check Alcotest.string "stub4" "provider" (klass info 4);
  check Alcotest.int "stub4 len" 2 (Route_static.length_of info 4)

let test_static_peer_route_not_transitive () =
  (* x -- a (peer), a -- b (peer), d customer of b: a reaches d via its
     peer b, but must not export that peer route to x. *)
  let g =
    Graph.build ~n:4 ~cp_edges:[ (2, 3) ] ~peer_edges:[ (0, 1); (1, 2) ] ~cps:[]
  in
  let info = Route_static.compute g 3 in
  check Alcotest.bool "one peer hop ok" true (Route_static.reachable info 1);
  check Alcotest.string "peer class" "peer" (klass info 1);
  check Alcotest.bool "two peer hops filtered" false (Route_static.reachable info 0)

let test_static_lp_beats_length () =
  (* u has a 3-hop customer route and a 2-hop peer route; LP wins. *)
  let u = 0 and c1 = 1 and c2 = 2 and d = 3 and p = 4 in
  let g =
    Graph.build ~n:5
      ~cp_edges:[ (u, c1); (c1, c2); (c2, d); (p, d) ]
      ~peer_edges:[ (u, p) ]
      ~cps:[]
  in
  let info = Route_static.compute g d in
  check Alcotest.string "customer class despite longer path" "customer" (klass info u);
  check Alcotest.int "length 3" 3 (Route_static.length_of info u)

let test_static_unreachable () =
  let g = Graph.build ~n:3 ~cp_edges:[ (0, 1) ] ~peer_edges:[] ~cps:[] in
  let info = Route_static.compute g 0 in
  check Alcotest.bool "orphan unreachable" false (Route_static.reachable info 2);
  check Alcotest.int "order only reachable" 2 (Route_static.order_length info);
  Alcotest.check_raises "length_of raises"
    (Invalid_argument "Route_static.length_of: 2 unreachable") (fun () ->
      ignore (Route_static.length_of info 2))

let test_static_order_sorted_by_length () =
  let g = small () in
  for d = 0 to Graph.n g - 1 do
    let info = Route_static.compute g d in
    let last = ref (-1) in
    Route_static.iter_order info (fun i ->
        let l = Route_static.length_of info i in
        check Alcotest.bool "ascending" true (l >= !last);
        last := l)
  done

let test_static_cache () =
  let statics = Route_static.create (small ()) in
  let a = Route_static.get statics 4 in
  let b = Route_static.get statics 4 in
  check Alcotest.bool "cached instance reused" true (a == b)

let info_equal (a : Route_static.dest_info) (b : Route_static.dest_info) =
  a.dest = b.dest && Bytes.equal a.cls b.cls && Bytes.equal a.len b.len
  && Nsutil.I32.equal a.tie_off b.tie_off
  && Nsutil.I32.equal a.tie b.tie
  && Nsutil.I32.equal a.order b.order
  && a.max_len = b.max_len

(* Eviction property: a bounded store may drop and recompute entries
   at any time, but every [get] must return info bit-identical to a
   fresh [compute] — and the byte budget must hold. *)
let test_bounded_store_recompute_equals_cached () =
  let params = Topology.Params.with_n Topology.Params.default 100 in
  let built = Topology.Gen.generate { params with seed = 9 } in
  let g = built.graph in
  let n = Graph.n g in
  let statics = Route_static.create ~budget_bytes:100_000 g in
  check Alcotest.bool "store is bounded" true (Route_static.bounded statics);
  Route_static.ensure_all statics (* must be a no-op under a budget *);
  let rng = Nsutil.Prng.create ~seed:42 in
  for _ = 1 to 400 do
    let d = Nsutil.Prng.int rng n in
    let cached = Route_static.get statics d in
    let fresh = Route_static.compute g d in
    check Alcotest.bool "get equals fresh compute" true (info_equal cached fresh)
  done;
  let st = Route_static.stats statics in
  check Alcotest.bool "evictions occurred" true (st.evictions > 0);
  check Alcotest.bool "some hits" true (st.hits > 0);
  check Alcotest.bool "budget respected" true (st.cached_bytes <= st.budget_bytes);
  (* Shrinking the budget to nothing trims the store immediately. *)
  Route_static.set_budget_bytes statics 1;
  let st = Route_static.stats statics in
  check Alcotest.int "trimmed to empty" 0 st.cached;
  (* And an unbounded budget restores plain-cache behavior. *)
  Route_static.set_budget_bytes statics 0;
  Route_static.ensure_all statics;
  let st = Route_static.stats statics in
  check Alcotest.int "prefill fills everything" n st.cached

let test_ensure_tiebreak_drops_and_resorts () =
  let g = small () in
  let statics = Route_static.create g in
  let a = Route_static.get statics 4 in
  check Alcotest.bool "sorted for default" true
    (Route_static.sorted_for a Policy.Lowest_id);
  let tb = Policy.Hashed 0x5b9d in
  Route_static.ensure_tiebreak statics tb;
  let b = Route_static.get statics 4 in
  check Alcotest.bool "entries dropped on policy change" true (not (a == b));
  check Alcotest.bool "resorted for the new policy" true (Route_static.sorted_for b tb);
  Route_static.ensure_tiebreak statics tb;
  check Alcotest.bool "same policy keeps entries" true (b == Route_static.get statics 4)

(* The compact layout against its declarative spec: for every
   reachable non-destination node, the tiebreak row holds exactly the
   neighbors (in the relationship its route class dictates) that are
   one hop closer and export the required route class. *)
let tie_row_spec g info d =
  let ok = ref true in
  let exports_cust j =
    match Route_static.class_of info j with
    | Bgp.Policy.Self | Bgp.Policy.Via_customer -> true
    | _ -> false
  in
  for i = 0 to Graph.n g - 1 do
    if i <> d && Route_static.reachable info i then begin
      let want = Route_static.length_of info i - 1 in
      let eligible j =
        Route_static.reachable info j
        && Route_static.length_of info j = want
        &&
        match Route_static.class_of info i with
        | Bgp.Policy.Via_customer -> exports_cust j
        | Bgp.Policy.Via_peer -> exports_cust j
        | _ -> true
      in
      let expected = ref [] in
      (match Route_static.class_of info i with
      | Bgp.Policy.Via_customer ->
          Graph.iter_customers g i (fun j -> if eligible j then expected := j :: !expected)
      | Bgp.Policy.Via_peer ->
          Graph.iter_peers g i (fun j -> if eligible j then expected := j :: !expected)
      | _ ->
          Graph.iter_providers g i (fun j -> if eligible j then expected := j :: !expected));
      let expected = List.sort compare !expected in
      let actual = List.sort compare (Route_static.tie_list info i) in
      if expected <> actual then ok := false;
      if Route_static.tie_size info i = 0 then ok := false
    end
  done;
  !ok

let static_gen =
  QCheck2.Gen.(
    let* g = Testkit.Graphgen.graph ~max_n:30 () in
    let* d = int_bound (Graph.n g - 1) in
    return (g, d))

let test_tie_rows_match_spec =
  qtest ~count:300 "tie rows hold exactly the eligible equal-best neighbors"
    static_gen
    (fun (g, d) -> tie_row_spec g (Route_static.compute g d) d)

(* The pre-sorting invariant the fused forest kernel relies on: every
   row is non-decreasing in the static tiebreak key, under both the
   default and a hashed policy, and sorting never changes the
   membership. *)
let test_tie_rows_presorted =
  qtest ~count:300 "tie rows are sorted by the static tiebreak key" static_gen
    (fun (g, d) ->
      List.for_all
        (fun tb ->
          let info = Route_static.compute ~tiebreak:tb g d in
          Route_static.sorted_for info tb
          &&
          let ok = ref true in
          Route_static.iter_order info (fun i ->
              if i <> d then begin
                let row = Route_static.tie_size info i in
                for k = 1 to row - 1 do
                  let kp = Policy.tiebreak_key tb i (Route_static.tie_get info i (k - 1)) in
                  let kc = Policy.tiebreak_key tb i (Route_static.tie_get info i k) in
                  if kp > kc then ok := false
                done
              end);
          !ok)
        [ Policy.Lowest_id; Policy.Hashed 0x5b9d ])

let test_tie_sort_preserves_members =
  qtest ~count:200 "tiebreak policy permutes rows, never changes membership"
    static_gen
    (fun (g, d) ->
      let a = Route_static.compute ~tiebreak:Policy.Lowest_id g d in
      let b = Route_static.compute ~tiebreak:(Policy.Hashed 0x5b9d) g d in
      let ok = ref true in
      if Route_static.order_length a <> Route_static.order_length b then ok := false;
      for i = 0 to Graph.n g - 1 do
        if
          List.sort compare (Route_static.tie_list a i)
          <> List.sort compare (Route_static.tie_list b i)
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Forest *)

let forest_for g d ~secure_list ~secp_list ~weight =
  let n = Graph.n g in
  let info = Route_static.compute g d in
  let secure = Bytes.make n '\000' in
  let use_secp = Bytes.make n '\000' in
  List.iter (fun i -> Bytes.set secure i '\001') secure_list;
  List.iter (fun i -> Bytes.set use_secp i '\001') secp_list;
  let scratch = Forest.make_scratch n in
  Forest.compute info ~tiebreak:Policy.Lowest_id ~secure ~use_secp ~weight scratch;
  (info, scratch)

let test_forest_tiebreak_lowest_id () =
  let g = small () in
  let weight = Array.make 6 1.0 in
  let _, scratch = forest_for g 4 ~secure_list:[] ~secp_list:[] ~weight in
  check Alcotest.int "tier1 picks lowest id" 1 scratch.next.(0)

let test_forest_secp_restricts () =
  let g = small () in
  let weight = Array.make 6 1.0 in
  (* ISP 2 and stub 4 secure; tier1 secure and applying SecP: must
     choose 2 over the id-preferred 1. *)
  let _, scratch =
    forest_for g 4 ~secure_list:[ 0; 2; 4 ] ~secp_list:[ 0; 2 ] ~weight
  in
  check Alcotest.int "restricted to the secure next hop" 2 scratch.next.(0);
  check Alcotest.string "tier1 has a secure route" "\001"
    (String.make 1 (Bytes.get scratch.sec_path 0))

let test_forest_no_secp_no_restriction () =
  let g = small () in
  let weight = Array.make 6 1.0 in
  let _, scratch = forest_for g 4 ~secure_list:[ 0; 2; 4 ] ~secp_list:[] ~weight in
  check Alcotest.int "hash choice unaffected" 1 scratch.next.(0)

let test_forest_subtree_weights () =
  let g = small () in
  let weight = [| 1.0; 1.0; 1.0; 10.0; 1.0; 1.0 |] in
  let _, scratch = forest_for g 4 ~secure_list:[] ~secp_list:[] ~weight in
  (* Everyone reaches 4; total weight arriving at the destination is
     the sum over all reachable sources. *)
  check (Alcotest.float 1e-9) "conservation at the root" 15.0 scratch.sub.(4);
  (* ISP 1 carries tier1's subtree: itself (1) + tier1 (1) + cp (10). *)
  check (Alcotest.float 1e-9) "isp1 subtree" 12.0 scratch.sub.(1);
  check (Alcotest.float 1e-9) "transit weight excludes self" 11.0
    (Forest.transit_weight scratch ~weight 1)

let test_forest_path_to_dest () =
  let g = small () in
  let weight = Array.make 6 1.0 in
  let info, scratch = forest_for g 4 ~secure_list:[] ~secp_list:[] ~weight in
  check Alcotest.(list int) "path from cp" [ 3; 0; 1; 4 ] (Forest.path_to_dest info scratch 3);
  check Alcotest.(list int) "path from dest" [ 4 ] (Forest.path_to_dest info scratch 4)

(* ------------------------------------------------------------------ *)
(* Differential testing against the reference implementation. *)

let scenario_gen =
  QCheck2.Gen.(
    let* g = Testkit.Graphgen.graph ~max_n:30 () in
    let* secure, use_secp = Testkit.Graphgen.secure_state g in
    let* d = int_bound (Graph.n g - 1) in
    return (g, secure, use_secp, d))

let chosen_security (info : Route_static.dest_info) (scratch : Forest.scratch) ~secure =
  (* Security of the chosen route, walking next hops in ascending
     path-length order. *)
  let n = Array.length scratch.next in
  let cs = Bytes.make n '\000' in
  Bytes.set cs info.dest (Bytes.get secure info.dest);
  for k = 1 to Route_static.order_length info - 1 do
    let i = Route_static.order_get info k in
    let nh = scratch.next.(i) in
    if nh >= 0 && Bytes.get secure i = '\001' && Bytes.get cs nh = '\001' then
      Bytes.set cs i '\001'
  done;
  cs

let run_both (g, secure, use_secp, d) =
  let n = Graph.n g in
  let info = Route_static.compute g d in
  let scratch = Forest.make_scratch n in
  let weight = Array.make n 1.0 in
  Forest.compute info ~tiebreak:Policy.Lowest_id ~secure ~use_secp ~weight scratch;
  let rib = Testkit.Refbgp.route_to g ~dest:d ~secure ~use_secp ~tiebreak:Policy.Lowest_id in
  (info, scratch, rib)

let test_differential_reachability =
  qtest ~count:400 "forest and reference agree on reachability" scenario_gen
    (fun ((g, _, _, d) as sc) ->
      let info, _, rib = run_both sc in
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        if i <> d then begin
          let forest_reach = Route_static.reachable info i in
          let ref_reach = rib.(i) <> None in
          if forest_reach <> ref_reach then ok := false
        end
      done;
      !ok)

let test_differential_next_hops =
  qtest ~count:400 "forest and reference agree on chosen next hops" scenario_gen
    (fun ((g, _, _, d) as sc) ->
      let _, scratch, rib = run_both sc in
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        if i <> d then begin
          match rib.(i) with
          | Some r -> if scratch.next.(i) <> r.Testkit.Refbgp.next then ok := false
          | None -> if scratch.next.(i) <> -1 then ok := false
        end
      done;
      !ok)

let test_differential_lengths =
  qtest ~count:400 "reference path lengths equal the static lengths" scenario_gen
    (fun ((g, _, _, d) as sc) ->
      let info, _, rib = run_both sc in
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        if i <> d then begin
          match rib.(i) with
          | Some r ->
              if List.length r.Testkit.Refbgp.path - 1 <> Route_static.length_of info i
              then ok := false
          | None -> ()
        end
      done;
      !ok)

let test_differential_security =
  qtest ~count:400 "forest and reference agree on chosen-route security" scenario_gen
    (fun ((g, secure, _, d) as sc) ->
      let info, scratch, rib = run_both sc in
      let cs = chosen_security info scratch ~secure in
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        if i <> d then begin
          match rib.(i) with
          | Some r ->
              if (Bytes.get cs i = '\001') <> r.Testkit.Refbgp.secure then ok := false
          | None -> ()
        end
      done;
      !ok)

(* Observation C.1: class and length are independent of the state. *)
let test_static_state_independence =
  qtest ~count:200 "route class/length independent of deployment state"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:25 () in
      let* s1 = Testkit.Graphgen.secure_state g in
      let* s2 = Testkit.Graphgen.secure_state g in
      let* d = int_bound (Graph.n g - 1) in
      return (g, s1, s2, d))
    (fun (g, (sec1, secp1), (sec2, secp2), d) ->
      let rib1 = Testkit.Refbgp.route_to g ~dest:d ~secure:sec1 ~use_secp:secp1 ~tiebreak:Policy.Lowest_id in
      let rib2 = Testkit.Refbgp.route_to g ~dest:d ~secure:sec2 ~use_secp:secp2 ~tiebreak:Policy.Lowest_id in
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        match (rib1.(i), rib2.(i)) with
        | Some a, Some b ->
            if
              List.length a.Testkit.Refbgp.path <> List.length b.Testkit.Refbgp.path
              || a.Testkit.Refbgp.lp <> b.Testkit.Refbgp.lp
            then ok := false
        | None, None -> ()
        | Some _, None | None, Some _ -> ok := false
      done;
      !ok)

(* Valley-freeness of every chosen path. *)
let valley_free g path =
  (* Pattern: up* peer? down*. Walk consecutive relations. *)
  let rels =
    let rec walk = function
      | a :: (b :: _ as rest) -> begin
          match Graph.rel g a b with
          | Some r -> r :: walk rest
          | None -> [ Graph.Peer ] (* unreachable: fail below *)
        end
      | _ -> []
    in
    walk path
  in
  let rec up = function
    | Graph.Provider :: rest -> up rest
    | rest -> peer rest
  and peer = function Graph.Peer :: rest -> down rest | rest -> down rest
  and down = function
    | Graph.Customer :: rest -> down rest
    | [] -> true
    | _ -> false
  in
  up rels

let test_paths_valley_free =
  qtest ~count:300 "all chosen paths are valley-free" scenario_gen
    (fun ((g, _, _, _) as sc) ->
      let _, _, rib = run_both sc in
      Array.for_all
        (function None -> true | Some r -> valley_free g r.Testkit.Refbgp.path)
        rib)

let test_forest_paths_consistent =
  qtest ~count:200 "forest paths end at the destination with static length" scenario_gen
    (fun ((g, _, _, d) as sc) ->
      let info, scratch, _ = run_both sc in
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        if i <> d && Route_static.reachable info i then begin
          match Forest.path_to_dest info scratch i with
          | [] -> ok := false
          | path ->
              let len = List.length path - 1 in
              if
                List.hd path <> i
                || List.nth path len <> d
                || len <> Route_static.length_of info i
              then ok := false
        end
      done;
      !ok)

(* Security availability grows monotonically with the secure set. *)
let test_secpath_monotone =
  qtest ~count:200 "sec_path is monotone in the secure set"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:25 () in
      let* secure, use_secp = Testkit.Graphgen.secure_state g in
      let* extra = int_bound (Graph.n g - 1) in
      let* d = int_bound (Graph.n g - 1) in
      return (g, secure, use_secp, extra, d))
    (fun (g, secure, use_secp, extra, d) ->
      let n = Graph.n g in
      let info = Route_static.compute g d in
      let weight = Array.make n 1.0 in
      let s1 = Forest.make_scratch n in
      Forest.compute info ~tiebreak:Policy.Lowest_id ~secure ~use_secp ~weight s1;
      let before = Bytes.copy s1.sec_path in
      let secure2 = Bytes.copy secure in
      Bytes.set secure2 extra '\001';
      let use_secp2 = Bytes.copy use_secp in
      if not (Graph.is_stub g extra) then Bytes.set use_secp2 extra '\001';
      Forest.compute info ~tiebreak:Policy.Lowest_id ~secure:secure2 ~use_secp:use_secp2
        ~weight s1;
      let ok = ref true in
      Route_static.iter_order info (fun i ->
          if Bytes.get before i = '\001' && Bytes.get s1.sec_path i <> '\001' then
            ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Incremental repair: [Forest.repair] from the base forest must equal
   a from-scratch [Forest.compute] under the flipped bytes — parents,
   sec_path flags and subtree weights all bit-for-bit (subtree floats
   compared through their IEEE bits) — and [Forest.undo] must restore
   the base forest exactly. Each generated case drives a SEQUENCE of
   probe flips through one reused scratch + repairer, the way an
   engine worker does; with 150 cases per tiebreak path the two
   properties cover >= 300 (graph x flip-sequence) scenarios. *)

let scratch_bitwise_equal (a : Forest.scratch) (b : Forest.scratch) n =
  let ok = ref true in
  for i = 0 to n - 1 do
    if a.next.(i) <> b.next.(i) then ok := false;
    if Bytes.get a.sec_path i <> Bytes.get b.sec_path i then ok := false;
    if Int64.bits_of_float a.sub.(i) <> Int64.bits_of_float b.sub.(i) then ok := false
  done;
  !ok

let repair_case_gen =
  QCheck2.Gen.(
    let* g = Testkit.Graphgen.graph ~max_n:40 () in
    let* secure, use_secp = Testkit.Graphgen.secure_state g in
    let* d = int_bound (Graph.n g - 1) in
    let* flips =
      list_size (int_range 1 3) (list_size (int_range 1 4) (int_bound (Graph.n g - 1)))
    in
    return (g, secure, use_secp, d, flips))

(* [tiebreak = Lowest_id] exercises the pre-sorted fast path (the
   statics are built under Lowest_id); any other policy forces the
   generic key-scan path in both [compute] and [repair]. *)
let repair_matches_recompute ~tiebreak (g, secure0, use_secp0, d, flips) =
  let n = Graph.n g in
  let info = Route_static.compute g d in
  let weight = Array.init n (fun i -> 1.0 +. (0.25 *. float_of_int i)) in
  let secure = Bytes.copy secure0 in
  let use_secp = Bytes.copy use_secp0 in
  let live = Forest.make_scratch n in
  Forest.compute info ~tiebreak ~secure ~use_secp ~weight live;
  let base_next = Array.copy live.next in
  let base_sec = Bytes.copy live.sec_path in
  let base_sub = Array.copy live.sub in
  let rep = Forest.make_repairer n in
  let fresh = Forest.make_scratch n in
  let ok = ref true in
  let toggle b i =
    Bytes.set b i (if Bytes.get b i = '\001' then '\000' else '\001')
  in
  (* Deterministic pseudo-choice so the revert repeats the toggles. *)
  let apply_flip flip =
    List.iter
      (fun i ->
        toggle secure i;
        if i mod 3 <> 0 then toggle use_secp i)
      flip
  in
  List.iter
    (fun flip ->
      apply_flip flip;
      Forest.repair info ~tiebreak ~secure ~use_secp ~weight
        ~seeds:(Array.of_list flip) live rep;
      Forest.compute info ~tiebreak ~secure ~use_secp ~weight fresh;
      if not (scratch_bitwise_equal live fresh n) then ok := false;
      (* Contributions read only next/sub, so they must agree too —
         for every ISP, under both utility models. *)
      for i = 0 to n - 1 do
        if Graph.is_isp g i then
          List.iter
            (fun model ->
              let a = Core.Utility.contribution model g info live ~weight i in
              let b = Core.Utility.contribution model g info fresh ~weight i in
              if Int64.bits_of_float a <> Int64.bits_of_float b then ok := false)
            [ Core.Config.Outgoing; Core.Config.Incoming ]
      done;
      Forest.undo live rep;
      apply_flip flip;
      (* The undo must restore the base forest bit-for-bit. *)
      for i = 0 to n - 1 do
        if live.next.(i) <> base_next.(i) then ok := false;
        if Bytes.get live.sec_path i <> Bytes.get base_sec i then ok := false;
        if Int64.bits_of_float live.sub.(i) <> Int64.bits_of_float base_sub.(i) then
          ok := false
      done)
    flips;
  !ok

let test_repair_matches_recompute_sorted =
  qtest ~count:150 "repair = recompute (pre-sorted tie rows)" repair_case_gen
    (repair_matches_recompute ~tiebreak:Policy.Lowest_id)

let test_repair_matches_recompute_generic =
  qtest ~count:150 "repair = recompute (generic tiebreak path)" repair_case_gen
    (repair_matches_recompute ~tiebreak:(Policy.Hashed 0x2f))

let test_repair_noop_flip () =
  (* Seeding nodes whose bytes did NOT change must repair to the same
     forest and undo cleanly (the conservative-admission case). *)
  let g = small () in
  let n = Graph.n g in
  let info = Route_static.compute g 4 in
  let weight = Array.make n 1.0 in
  let secure = Bytes.make n '\000' in
  Bytes.set secure 0 '\001';
  Bytes.set secure 2 '\001';
  let use_secp = Bytes.copy secure in
  let live = Forest.make_scratch n in
  Forest.compute info ~tiebreak:Policy.Lowest_id ~secure ~use_secp ~weight live;
  let fresh = Forest.make_scratch n in
  Forest.compute info ~tiebreak:Policy.Lowest_id ~secure ~use_secp ~weight fresh;
  let rep = Forest.make_repairer n in
  Forest.repair info ~tiebreak:Policy.Lowest_id ~secure ~use_secp ~weight
    ~seeds:[| 0; 2; 5 |] live rep;
  check Alcotest.bool "no-op repair leaves the forest" true
    (scratch_bitwise_equal live fresh n);
  check Alcotest.bool "seeds were visited" true (Forest.touched_count rep > 0);
  Forest.undo live rep;
  check Alcotest.bool "undo after no-op" true (scratch_bitwise_equal live fresh n);
  check Alcotest.int "log drained" 0 (Forest.touched_count rep)

(* ------------------------------------------------------------------ *)
(* Flexsim: the configurable-SecP-position fixed point. *)

let test_flexsim_tiebreak_matches_forest =
  qtest ~count:200 "flexsim at tiebreak-only equals the forest" scenario_gen
    (fun ((g, secure, use_secp, d) as sc) ->
      let _, scratch, _ = run_both sc in
      let out =
        Bgp.Flexsim.route_to g ~dest:d ~secure ~use_secp ~tiebreak:Policy.Lowest_id
          ~position:Bgp.Flexsim.Tiebreak_only
      in
      out.converged
      &&
      let ok = ref true in
      for i = 0 to Graph.n g - 1 do
        if i <> d && scratch.next.(i) <> out.next.(i) then ok := false
      done;
      !ok)

let test_flexsim_secure_first_prefers_secure () =
  (* tier1 (0) has two equal routes to stub 4; only the one via 2 is
     secure. At every SecP position the secure ISP 0 must pick 2; an
     insecure chooser ignores security everywhere. *)
  let g = small () in
  let n = Graph.n g in
  let set l =
    let b = Bytes.make n '\000' in
    List.iter (fun i -> Bytes.set b i '\001') l;
    b
  in
  List.iter
    (fun position ->
      let out =
        Bgp.Flexsim.route_to g ~dest:4 ~secure:(set [ 0; 2; 4 ]) ~use_secp:(set [ 0; 2 ])
          ~tiebreak:Policy.Lowest_id ~position
      in
      check Alcotest.int
        (Bgp.Flexsim.position_to_string position)
        2 out.next.(0);
      check Alcotest.bool "secure flag" true out.secure.(0))
    [ Bgp.Flexsim.Tiebreak_only; Bgp.Flexsim.Before_length; Bgp.Flexsim.Before_lp ]

let test_flexsim_security_first_overrides_length () =
  (* u reaches d via a short insecure provider chain or a longer
     fully-secure one; Before_length flips the choice, Tiebreak_only
     does not. *)
  let u = 0 and a = 1 and b = 2 and c = 3 and d = 4 in
  (* u customer of a and b; a -> d direct; b -> c -> d. *)
  let g =
    Graph.build ~n:5
      ~cp_edges:[ (a, u); (b, u); (a, d); (b, c); (c, d) ]
      ~peer_edges:[] ~cps:[]
  in
  let n = Graph.n g in
  let set l =
    let bts = Bytes.make n '\000' in
    List.iter (fun i -> Bytes.set bts i '\001') l;
    bts
  in
  let secure = set [ u; b; c; d ] in
  let use_secp = set [ u; b; c ] in
  let next position =
    (Bgp.Flexsim.route_to g ~dest:d ~secure ~use_secp ~tiebreak:Policy.Lowest_id
       ~position)
      .next.(u)
  in
  check Alcotest.int "tiebreak-only takes the short route" a
    (next Bgp.Flexsim.Tiebreak_only);
  check Alcotest.int "before-length takes the secure route" b
    (next Bgp.Flexsim.Before_length);
  check Alcotest.int "security-first too" b (next Bgp.Flexsim.Before_lp)

let () =
  Alcotest.run "bgp"
    [
      ( "policy",
        [
          Alcotest.test_case "class roundtrip" `Quick test_policy_class_roundtrip;
          Alcotest.test_case "tiebreak keys" `Quick test_policy_tiebreaks;
          Alcotest.test_case "ranked tiebreak" `Quick test_policy_ranked;
        ] );
      ( "static",
        [
          Alcotest.test_case "small graph, stub dest" `Quick test_static_small_dest_stub;
          Alcotest.test_case "small graph, tier1 dest" `Quick test_static_small_dest_tier1;
          Alcotest.test_case "peer routes are one hop" `Quick
            test_static_peer_route_not_transitive;
          Alcotest.test_case "LP beats path length" `Quick test_static_lp_beats_length;
          Alcotest.test_case "unreachable nodes" `Quick test_static_unreachable;
          Alcotest.test_case "order sorted by length" `Quick test_static_order_sorted_by_length;
          Alcotest.test_case "cache reuses instances" `Quick test_static_cache;
          Alcotest.test_case "bounded store: get = fresh compute" `Quick
            test_bounded_store_recompute_equals_cached;
          Alcotest.test_case "ensure_tiebreak drops and resorts" `Quick
            test_ensure_tiebreak_drops_and_resorts;
          test_tie_rows_match_spec;
          test_tie_rows_presorted;
          test_tie_sort_preserves_members;
        ] );
      ( "forest",
        [
          Alcotest.test_case "lowest-id tiebreak" `Quick test_forest_tiebreak_lowest_id;
          Alcotest.test_case "SecP restricts to secure next hops" `Quick
            test_forest_secp_restricts;
          Alcotest.test_case "no SecP, no restriction" `Quick test_forest_no_secp_no_restriction;
          Alcotest.test_case "subtree weights" `Quick test_forest_subtree_weights;
          Alcotest.test_case "path reconstruction" `Quick test_forest_path_to_dest;
        ] );
      ( "differential",
        [
          test_differential_reachability;
          test_differential_next_hops;
          test_differential_lengths;
          test_differential_security;
          test_static_state_independence;
          test_paths_valley_free;
          test_forest_paths_consistent;
          test_secpath_monotone;
        ] );
      ( "repair",
        [
          test_repair_matches_recompute_sorted;
          test_repair_matches_recompute_generic;
          Alcotest.test_case "no-op flip repairs and undoes cleanly" `Quick
            test_repair_noop_flip;
        ] );
      ( "flexsim",
        [
          test_flexsim_tiebreak_matches_forest;
          Alcotest.test_case "secure choice at every position" `Quick
            test_flexsim_secure_first_prefers_secure;
          Alcotest.test_case "security overrides length when ranked higher" `Quick
            test_flexsim_security_first_overrides_length;
        ] );
    ]
