(* Tests for the AS graph: construction, classification, validation,
   serialization, metrics. *)

module Graph = Asgraph.Graph
module As_class = Asgraph.As_class
module Graph_io = Asgraph.Graph_io
module Validate = Asgraph.Validate
module Metrics = Asgraph.Metrics

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* A small reference graph: Tier 1 (0), two ISPs (1, 2), CP (3), two
   stubs (4 multihomed, 5 single-homed). *)
let small () =
  Graph.build ~n:6
    ~cp_edges:[ (0, 1); (0, 2); (1, 4); (2, 4); (2, 5) ]
    ~peer_edges:[ (0, 3); (1, 2) ]
    ~cps:[ 3 ]

let test_build_classes () =
  let g = small () in
  check Alcotest.string "tier1 is isp" "isp" (As_class.to_string (Graph.klass g 0));
  check Alcotest.string "cp" "cp" (As_class.to_string (Graph.klass g 3));
  check Alcotest.string "stub" "stub" (As_class.to_string (Graph.klass g 4));
  check Alcotest.int "isps" 3 (Graph.count_class g As_class.Isp);
  check Alcotest.int "stubs" 2 (Graph.count_class g As_class.Stub);
  check Alcotest.int "cps" 1 (Graph.count_class g As_class.Cp)

let test_build_relations () =
  let g = small () in
  check Alcotest.(option string) "customer" (Some "customer")
    (Option.map Graph.rel_to_string (Graph.rel g 0 1));
  check Alcotest.(option string) "provider" (Some "provider")
    (Option.map Graph.rel_to_string (Graph.rel g 1 0));
  check Alcotest.(option string) "peer" (Some "peer")
    (Option.map Graph.rel_to_string (Graph.rel g 1 2));
  check Alcotest.(option string) "not adjacent" None
    (Option.map Graph.rel_to_string (Graph.rel g 3 4))

let test_build_degrees () =
  let g = small () in
  check Alcotest.int "tier1 degree" 3 (Graph.degree g 0);
  check Alcotest.int "customer degree" 2 (Graph.customer_degree g 0);
  check Alcotest.int "peer degree" 1 (Graph.peer_degree g 0);
  check Alcotest.int "provider degree of stub" 2 (Graph.provider_degree g 4);
  check Alcotest.int "cp edges" 5 (Graph.cp_edge_count g);
  check Alcotest.int "peer edges" 2 (Graph.peer_edge_count g)

let test_build_duplicates_collapsed () =
  let g =
    Graph.build ~n:3 ~cp_edges:[ (0, 1); (0, 1) ] ~peer_edges:[ (1, 2); (2, 1) ] ~cps:[]
  in
  check Alcotest.int "cp deduped" 1 (Graph.cp_edge_count g);
  check Alcotest.int "peer deduped" 1 (Graph.peer_edge_count g)

let test_build_rejects_malformed () =
  let expect_malformed name f =
    match f () with
    | exception Graph.Malformed _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Malformed")
  in
  expect_malformed "self loop" (fun () ->
      Graph.build ~n:2 ~cp_edges:[ (0, 0) ] ~peer_edges:[] ~cps:[]);
  expect_malformed "conflicting annotation" (fun () ->
      Graph.build ~n:2 ~cp_edges:[ (0, 1) ] ~peer_edges:[ (0, 1) ] ~cps:[]);
  expect_malformed "reversed cp edge" (fun () ->
      Graph.build ~n:2 ~cp_edges:[ (0, 1); (1, 0) ] ~peer_edges:[] ~cps:[]);
  expect_malformed "out of range" (fun () ->
      Graph.build ~n:2 ~cp_edges:[ (0, 5) ] ~peer_edges:[] ~cps:[]);
  expect_malformed "cp with customers" (fun () ->
      Graph.build ~n:2 ~cp_edges:[ (0, 1) ] ~peer_edges:[] ~cps:[ 0 ])

let test_edges_listing () =
  let g = small () in
  let edges = Graph.edges g in
  check Alcotest.int "total edges" 7 (List.length edges);
  check Alcotest.bool "peer edge lower id first" true
    (List.exists (fun ((a, b), r) -> a = 1 && b = 2 && r = Graph.Peer) edges)

let test_nodes_of_class () =
  let g = small () in
  check Alcotest.(list int) "stubs" [ 4; 5 ] (Graph.nodes_of_class g As_class.Stub);
  check Alcotest.(list int) "cps" [ 3 ] (Graph.nodes_of_class g As_class.Cp)

(* ------------------------------------------------------------------ *)
(* Validation *)

let test_validate_clean () =
  let r = Validate.run (small ()) in
  check Alcotest.bool "gr1" true r.gr1_acyclic;
  check Alcotest.bool "connected" true r.connected;
  check Alcotest.int "tier1 count" 1 r.tier1_count;
  check Alcotest.int "orphans" 0 r.orphan_count

let test_validate_detects_cp_cycle () =
  let g = Graph.build ~n:3 ~cp_edges:[ (0, 1); (1, 2); (2, 0) ] ~peer_edges:[] ~cps:[] in
  check Alcotest.bool "cycle detected" false (Validate.gr1_acyclic g);
  match Validate.find_cp_cycle g with
  | None -> Alcotest.fail "expected a witness cycle"
  | Some cycle ->
      check Alcotest.int "cycle length" 3 (List.length (List.sort_uniq compare cycle))

let test_validate_disconnected () =
  let g = Graph.build ~n:4 ~cp_edges:[ (0, 1) ] ~peer_edges:[ (2, 3) ] ~cps:[] in
  check Alcotest.bool "disconnected" false (Validate.connected g)

let test_validate_orphans () =
  let g = Graph.build ~n:3 ~cp_edges:[ (0, 1) ] ~peer_edges:[] ~cps:[] in
  check Alcotest.int "one orphan" 1 (Validate.run g).orphan_count

(* ------------------------------------------------------------------ *)
(* Serialization *)

let test_io_roundtrip_small () =
  let g = small () in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  check Alcotest.int "n" (Graph.n g) (Graph.n g');
  check Alcotest.int "cp edges" (Graph.cp_edge_count g) (Graph.cp_edge_count g');
  check Alcotest.int "peer edges" (Graph.peer_edge_count g) (Graph.peer_edge_count g');
  for i = 0 to Graph.n g - 1 do
    check Alcotest.string "class preserved"
      (As_class.to_string (Graph.klass g i))
      (As_class.to_string (Graph.klass g' i))
  done

let test_io_parse_errors () =
  let expect_error s =
    match Graph_io.of_string s with
    | exception Graph_io.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ String.escaped s)
  in
  expect_error "0|1|-1\n";  (* missing !n *)
  expect_error "!n 2\n0|1|7\n";
  expect_error "!n 2\n0|x|-1\n";
  expect_error "!n x\n";
  expect_error "!n 2\nnot a line\n";
  expect_error "!n 2\n!cp y\n"

let test_io_parse_error_details () =
  (* Error paths carry the offending line number and a message naming
     the problem, so a bad file is diagnosable from the one-liner. *)
  let expect s ~line ~has =
    match Graph_io.of_string s with
    | exception Graph_io.Parse_error { line = l; message } ->
        check Alcotest.int ("line for " ^ String.escaped s) line l;
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool
          (Printf.sprintf "message %S mentions %S" message has)
          true (contains message has)
    | _ -> Alcotest.fail ("expected parse error for " ^ String.escaped s)
  in
  expect "!n 2\n0|1|7\n" ~line:2 ~has:"bad edge record";
  expect "!n 2\n0|x|-1\n" ~line:2 ~has:"bad edge record";
  expect "!n x\n" ~line:1 ~has:"bad !n";
  expect "!n -4\n" ~line:1 ~has:"bad !n";
  expect "# c\n!n 2\n!cp y\n" ~line:3 ~has:"bad !cp";
  expect "0|1|-1\n" ~line:0 ~has:"missing !n";
  (* A parseable file describing an impossible graph (node out of
     range) is rejected through the same typed exception. *)
  expect "!n 2\n0|5|-1\n" ~line:0 ~has:"malformed graph"

let test_io_load_error_paths () =
  (* [load] must raise cleanly — and close its fd — for both a missing
     file and a present-but-invalid one. *)
  (match Graph_io.load "/nonexistent/sbgp-no-such-file" with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "expected Sys_error for missing file");
  let path = Filename.temp_file "sbgp_bad_graph" ".asrel" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "!n 2\nnot a line\n";
      close_out oc;
      match Graph_io.load path with
      | exception Graph_io.Parse_error { line = 2; _ } -> ()
      | exception Graph_io.Parse_error { line; _ } ->
          Alcotest.failf "parse error attributed to line %d, expected 2" line
      | _ -> Alcotest.fail "expected parse error for invalid file")

let test_io_comments_and_blanks () =
  let g = Graph_io.of_string "# hi\n\n!n 2\n# more\n0|1|-1\n" in
  check Alcotest.int "parsed" 2 (Graph.n g);
  check Alcotest.int "one edge" 1 (Graph.cp_edge_count g)

(* Random graph generator for roundtrip property. *)
let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 2 30 in
    let* cp_edges =
      list_size (int_range 0 40)
        (map2 (fun a b -> (min a b mod n, ((max a b mod n) + 1) mod n)) (int_bound 1000) (int_bound 1000))
    in
    let cp_edges =
      (* provider index strictly below customer: acyclic, no self loops *)
      List.filter_map
        (fun (a, b) -> if a < b then Some (a, b) else if b < a then Some (b, a) else None)
        cp_edges
    in
    let taken = Hashtbl.create 16 in
    let cp_edges =
      List.filter
        (fun (a, b) ->
          if Hashtbl.mem taken (a, b) then false
          else begin
            Hashtbl.add taken (a, b) ();
            true
          end)
        cp_edges
    in
    let* peer_raw = list_size (int_range 0 20) (pair (int_bound 1000) (int_bound 1000)) in
    let peer_edges =
      List.filter_map
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          let a, b = (min a b, max a b) in
          if a = b || Hashtbl.mem taken (a, b) then None
          else begin
            Hashtbl.add taken (a, b) ();
            Some (a, b)
          end)
        peer_raw
    in
    return (Graph.build ~n ~cp_edges ~peer_edges ~cps:[]))

let test_io_roundtrip_qcheck =
  qtest "serialization round-trips random graphs" gen_graph (fun g ->
      let g' = Graph_io.of_string (Graph_io.to_string g) in
      Graph.n g = Graph.n g'
      && List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g'))

let test_random_graphs_acyclic_qcheck =
  qtest "index-ordered cp edges are GR1-acyclic" gen_graph Validate.gr1_acyclic

let test_caida_import () =
  let src =
    "# from CAIDA serial-1\n\
     3356|64500|-1\n\
     3356|1239|0\n\
     1239|64501|-1\n\
     64500|64501|0\n\
     15169|15169|-1\n\
     3356|garbage|-1\n\
     1239|3356|0\n\
     3356|15169|-1\n"
  in
  let imp = Graph_io.of_caida ~cps:[ 15169; 99999 ] src in
  let g = imp.graph in
  check Alcotest.int "distinct ASNs" 5 (Graph.n g);
  check Alcotest.int "cp edges" 3 (Graph.cp_edge_count g);
  check Alcotest.int "peer edges" 2 (Graph.peer_edge_count g);
  (* self-loop + unparsable record -> skipped; the reversed duplicate
     peer record is silently collapsed. *)
  check Alcotest.int "skipped records" 2 imp.skipped;
  let node asn = Hashtbl.find imp.node_of_asn asn in
  check Alcotest.int "asn round trip" 3356 imp.asn_of_node.(node 3356);
  check Alcotest.(option string) "relationship preserved" (Some "customer")
    (Option.map Graph.rel_to_string (Graph.rel g (node 3356) (node 64500)));
  check Alcotest.bool "google marked cp" true (Graph.is_cp g (node 15169));
  check Alcotest.bool "valid" true (Validate.gr1_acyclic g)

let test_caida_cp_with_customers_demoted () =
  (* A requested CP that has customers keeps its node but loses the
     marker (cf. Appendix D's removal of acquisition customers). *)
  let imp = Graph_io.of_caida ~cps:[ 10 ] "10|20|-1\n30|10|-1\n" in
  let node asn = Hashtbl.find imp.node_of_asn asn in
  check Alcotest.bool "not a cp" false (Graph.is_cp imp.graph (node 10));
  check Alcotest.bool "an isp instead" true (Graph.is_isp imp.graph (node 10))

let test_caida_roundtrip_through_native_format () =
  let b = Topology.Gen.generate (Topology.Params.with_n Topology.Params.default 120) in
  (* Render as bare CAIDA records (no headers) and re-import. *)
  let buf = Buffer.create 1024 in
  List.iter
    (fun ((a, bb), rel) ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%d|%s\n" (a + 10000) (bb + 10000)
           (match rel with Graph.Customer -> "-1" | _ -> "0")))
    (Graph.edges b.graph);
  let imp = Graph_io.of_caida (Buffer.contents buf) in
  check Alcotest.int "skipped none" 0 imp.skipped;
  check Alcotest.int "cp edges" (Graph.cp_edge_count b.graph)
    (Graph.cp_edge_count imp.graph);
  check Alcotest.int "peer edges" (Graph.peer_edge_count b.graph)
    (Graph.peer_edge_count imp.graph)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_summary () =
  let s = Metrics.summary (small ()) in
  check Alcotest.int "nodes" 6 s.nodes;
  check Alcotest.int "stubs" 2 s.stubs;
  check Alcotest.int "isps" 3 s.isps;
  check Alcotest.int "cps" 1 s.cps;
  check Alcotest.int "maxdeg" 4 s.max_degree

let test_metrics_top_by_degree () =
  let g = small () in
  (* Degrees: 0 -> 3, 1 -> 3, 2 -> 4 among ISPs. *)
  check Alcotest.(list int) "top2 isps" [ 2; 0 ] (Metrics.top_by_degree g 2);
  check Alcotest.(list int) "top includes everything" [ 2; 0; 1 ]
    (Metrics.top_by_degree g 10);
  check Alcotest.(list int) "among stubs" [ 4; 5 ]
    (Metrics.top_by_degree g ~among:(Graph.is_stub g) 2)

let test_metrics_stub_helpers () =
  let g = small () in
  check Alcotest.(list int) "multihomed stubs" [ 4 ] (Metrics.multi_homed_stubs g);
  check Alcotest.int "single-homed stub customers of 2" 1
    (Metrics.single_homed_stub_customers g 2)

let () =
  Alcotest.run "asgraph"
    [
      ( "build",
        [
          Alcotest.test_case "classes derived" `Quick test_build_classes;
          Alcotest.test_case "relations" `Quick test_build_relations;
          Alcotest.test_case "degrees and counts" `Quick test_build_degrees;
          Alcotest.test_case "duplicates collapsed" `Quick test_build_duplicates_collapsed;
          Alcotest.test_case "rejects malformed input" `Quick test_build_rejects_malformed;
          Alcotest.test_case "edges listing" `Quick test_edges_listing;
          Alcotest.test_case "nodes_of_class" `Quick test_nodes_of_class;
        ] );
      ( "validate",
        [
          Alcotest.test_case "clean graph" `Quick test_validate_clean;
          Alcotest.test_case "detects cp cycle" `Quick test_validate_detects_cp_cycle;
          Alcotest.test_case "detects disconnection" `Quick test_validate_disconnected;
          Alcotest.test_case "counts orphans" `Quick test_validate_orphans;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip small" `Quick test_io_roundtrip_small;
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
          Alcotest.test_case "parse error details" `Quick test_io_parse_error_details;
          Alcotest.test_case "load error paths" `Quick test_io_load_error_paths;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
          test_io_roundtrip_qcheck;
          test_random_graphs_acyclic_qcheck;
          Alcotest.test_case "caida import" `Quick test_caida_import;
          Alcotest.test_case "caida cp demotion" `Quick test_caida_cp_with_customers_demoted;
          Alcotest.test_case "caida roundtrip" `Quick test_caida_roundtrip_through_native_format;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "summary" `Quick test_metrics_summary;
          Alcotest.test_case "top by degree" `Quick test_metrics_top_by_degree;
          Alcotest.test_case "stub helpers" `Quick test_metrics_stub_helpers;
        ] );
    ]
