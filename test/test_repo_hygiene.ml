(* Repository hygiene: build artifacts must not be tracked.

   [dune runtest] executes from the build sandbox, so the test walks
   up to the checkout root (the directory holding [.git]) and asks git
   which files it tracks under [_build/]. Anything tracked there is a
   bug: artifacts churn on every build and bloat history. The test
   skips silently when not run from a git checkout (release tarball)
   or when git is unavailable. *)

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir ".git") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let git_lines root args =
  let cmd = Printf.sprintf "git -C %s %s 2>/dev/null" (Filename.quote root) args in
  let ic = Unix.open_process_in cmd in
  let rec collect acc =
    match input_line ic with
    | line -> collect (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = collect [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Some lines
  | _ -> None

let test_no_tracked_build_artifacts () =
  match find_root (Sys.getcwd ()) with
  | None -> () (* not a git checkout: nothing to enforce *)
  | Some root -> (
      match git_lines root "ls-files _build" with
      | None -> () (* git unavailable *)
      | Some files ->
          Alcotest.(check (list string)) "files tracked under _build/" [] files)

let test_gitignore_covers_build () =
  match find_root (Sys.getcwd ()) with
  | None -> ()
  | Some root ->
      let path = Filename.concat root ".gitignore" in
      if Sys.file_exists path then begin
        let ic = open_in path in
        let rec has_build () =
          match input_line ic with
          | line -> String.trim line = "_build/" || has_build ()
          | exception End_of_file -> false
        in
        let covered = has_build () in
        close_in ic;
        Alcotest.(check bool) ".gitignore lists _build/" true covered
      end

(* Run artifacts the binaries generate in place — checkpoints, bench
   JSON, telemetry traces and metrics dumps — must be ignored, never
   tracked: they differ per machine and per run. *)
let generated_patterns =
  [
    "ckpt.*"; "bench_smoke.json"; "*.prom"; "*.trace.json"; "*.jsonl"; "*.sbg";
    "scale_smoke.json";
  ]

let test_gitignore_covers_generated_artifacts () =
  match find_root (Sys.getcwd ()) with
  | None -> ()
  | Some root ->
      let path = Filename.concat root ".gitignore" in
      if Sys.file_exists path then begin
        let ic = open_in path in
        let rec lines acc =
          match input_line ic with
          | line -> lines (String.trim line :: acc)
          | exception End_of_file -> acc
        in
        let patterns = lines [] in
        close_in ic;
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf ".gitignore lists %s" p)
              true (List.mem p patterns))
          generated_patterns
      end

let test_no_tracked_generated_artifacts () =
  match find_root (Sys.getcwd ()) with
  | None -> ()
  | Some root -> (
      match
        git_lines root
          "ls-files -- 'ckpt.*' '*.prom' '*.trace.json' 'bench_smoke.json' \
           '*.bench' '*.jsonl' '*.sbg' 'scale_smoke.json'"
      with
      | None -> ()
      | Some files ->
          Alcotest.(check (list string)) "tracked generated artifacts" [] files)

let () =
  Alcotest.run "repo_hygiene"
    [
      ( "hygiene",
        [
          Alcotest.test_case "no tracked _build artifacts" `Quick
            test_no_tracked_build_artifacts;
          Alcotest.test_case ".gitignore covers _build/" `Quick
            test_gitignore_covers_build;
          Alcotest.test_case ".gitignore covers generated artifacts" `Quick
            test_gitignore_covers_generated_artifacts;
          Alcotest.test_case "no tracked generated artifacts" `Quick
            test_no_tracked_generated_artifacts;
        ] );
    ]
