(* Tests for the experiment registry: every table/figure driver runs
   on a small scenario and produces rows; scenario setup is
   deterministic. *)

module Registry = Experiments.Registry
module Scenario = Experiments.Scenario

let check = Alcotest.check

let scenario = lazy (Scenario.create ~n:150 ~seed:3 ())

let test_ids_unique () =
  let ids = Registry.ids () in
  check Alcotest.int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_find () =
  check Alcotest.bool "finds fig8" true (Registry.find "fig8" <> None);
  check Alcotest.bool "rejects unknown" true (Registry.find "fig99" = None)

let test_expected_ids_present () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> check Alcotest.bool id true (List.mem id ids))
    [
      "table1"; "table2"; "table3"; "table4"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
      "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "oscillation";
      "setcover"; "attacks"; "ablations"; "resilience"; "pricing"; "jitter";
      "evolution"; "selector"; "secpriority";
    ]

let test_every_experiment_produces_rows () =
  let s = Lazy.force scenario in
  List.iter
    (fun (e : Registry.experiment) ->
      let table = e.run s in
      check Alcotest.bool (e.id ^ " non-empty") true (Nsutil.Table.row_count table > 0))
    Registry.all

let test_scenario_deterministic () =
  let a = Scenario.create ~n:120 ~seed:5 () in
  let b = Scenario.create ~n:120 ~seed:5 () in
  check Alcotest.bool "same graphs" true
    (Asgraph.Graph.edges (Scenario.graph a) = Asgraph.Graph.edges (Scenario.graph b));
  let ra = Scenario.run a Core.Config.default in
  let rb = Scenario.run b Core.Config.default in
  check Alcotest.int "same dynamics" (Core.Engine.rounds_run ra) (Core.Engine.rounds_run rb);
  check Alcotest.int "same outcome" (Core.State.secure_count ra.final)
    (Core.State.secure_count rb.final)

let test_run_all_filter () =
  let s = Lazy.force scenario in
  let results = Registry.run_all ~only:[ "table2"; "attacks" ] s in
  check Alcotest.(list string) "filtered ids" [ "table2"; "attacks" ]
    (List.map (fun ((e : Registry.experiment), _, _) -> e.id) results)

let test_case_study_shape () =
  (* The headline result at miniature scale: with CPs + top-5 as early
     adopters and theta = 5%, a majority of ASes end up secure. *)
  let s = Lazy.force scenario in
  let r = Scenario.run s Core.Config.default in
  check Alcotest.bool "majority secure" true (Core.Engine.secure_fraction r `As > 0.5);
  check Alcotest.bool "stable" true (r.termination = Core.Engine.Stable)

let test_high_theta_weakens_deployment () =
  let s = Lazy.force scenario in
  let low = Scenario.run s { Core.Config.default with theta = 0.02; theta_off = 0.02 } in
  let high = Scenario.run s { Core.Config.default with theta = 0.6; theta_off = 0.6 } in
  check Alcotest.bool "higher cost, less deployment" true
    (Core.Engine.secure_fraction high `As <= Core.Engine.secure_fraction low `As)

let test_run_many_outcomes_contains_failures () =
  (* A sweep with a poisoned job (early adopter out of range): the
     other jobs still complete, the bad one surfaces as an [Error]
     with its index, and [run_many] turns that into an attributed
     [Failure]. *)
  let s = Lazy.force scenario in
  let cfg = Core.Config.default in
  let good = (cfg, Scenario.case_study_adopters s) in
  let bad = (cfg, [ 1_000_000 ]) in
  let outcomes = Scenario.run_many_outcomes s [ good; bad; good ] in
  check Alcotest.int "every job reported" 3 (List.length outcomes);
  (match outcomes with
  | [ Ok a; Error { Scenario.job = 1; _ }; Ok c ] ->
      check Alcotest.int "healthy jobs agree" (Core.Engine.rounds_run a)
        (Core.Engine.rounds_run c)
  | _ -> Alcotest.fail "expected [Ok; Error at job 1; Ok]");
  match Scenario.run_many s [ good; bad ] with
  | _ -> Alcotest.fail "run_many must raise on a failed job"
  | exception Failure m ->
      check Alcotest.bool "failure names the job" true
        (let rec find i =
           i + 5 <= String.length m && (String.sub m i 5 = "job 1" || find (i + 1))
         in
         find 0)

let test_run_many_matches_individual_runs () =
  let s = Lazy.force scenario in
  let cfg = Core.Config.default in
  let early = Scenario.case_study_adopters s in
  let jobs = [ (cfg, early); ({ cfg with theta = 0.3; theta_off = 0.3 }, early) ] in
  match Scenario.run_many s jobs with
  | [ a; b ] ->
      let ra = Scenario.run s cfg in
      let rb = Scenario.run s { cfg with theta = 0.3; theta_off = 0.3 } in
      check Alcotest.int "job 0 rounds" (Core.Engine.rounds_run ra) (Core.Engine.rounds_run a);
      check Alcotest.int "job 1 rounds" (Core.Engine.rounds_run rb) (Core.Engine.rounds_run b);
      check Alcotest.int "job 0 outcome" (Core.State.secure_count ra.final)
        (Core.State.secure_count a.final)
  | _ -> Alcotest.fail "expected two results"

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "all paper artifacts covered" `Quick test_expected_ids_present;
          Alcotest.test_case "run_all filter" `Quick test_run_all_filter;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "case-study shape" `Quick test_case_study_shape;
          Alcotest.test_case "theta monotonicity" `Quick test_high_theta_weakens_deployment;
          Alcotest.test_case "sweep contains failures" `Quick
            test_run_many_outcomes_contains_failures;
          Alcotest.test_case "sweep matches individual runs" `Quick
            test_run_many_matches_individual_runs;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "every experiment produces rows" `Slow
            test_every_experiment_produces_rows;
        ] );
    ]
