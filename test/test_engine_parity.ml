(* Differential tests for the parallel + incremental engine (Appendix
   C.3/C.4): a run's [result] must be STRUCTURALLY IDENTICAL — every
   float bit-for-bit — whatever the worker count, and the cross-round
   destination cache must be invisible except in the stats counters.

   Scenarios deliberately cover all three terminations: a synthetic
   Internet that converges (Stable), the CHICKEN gadget whose
   simultaneous dynamics repeat a state (Oscillation), and the same
   gadget under a round cap it cannot meet (Max_rounds). *)

module Engine = Core.Engine
module State = Core.State

let check = Alcotest.check

let exact = Alcotest.float 0.0 (* |a - b| <= 0.0: exact equality *)

let check_round_equal i (a : Engine.round_record) (b : Engine.round_record) =
  let lbl f = Printf.sprintf "round %d %s" i f in
  check Alcotest.int (lbl "round") a.round b.round;
  check Alcotest.(array exact) (lbl "utilities") a.utilities b.utilities;
  check Alcotest.(array exact) (lbl "projected") a.projected b.projected;
  check Alcotest.(list int) (lbl "turned_on") a.turned_on b.turned_on;
  check Alcotest.(list int) (lbl "turned_off") a.turned_off b.turned_off;
  check Alcotest.int (lbl "secure_as") a.secure_as b.secure_as;
  check Alcotest.int (lbl "secure_isp") a.secure_isp b.secure_isp;
  check Alcotest.int (lbl "secure_stub") a.secure_stub b.secure_stub

let termination_t =
  Alcotest.testable
    (fun fmt -> function
      | Engine.Stable -> Format.fprintf fmt "Stable"
      | Engine.Oscillation { first_round } ->
          Format.fprintf fmt "Oscillation(%d)" first_round
      | Engine.Max_rounds -> Format.fprintf fmt "Max_rounds")
    ( = )

let check_result_equal (a : Engine.result) (b : Engine.result) =
  check Alcotest.(array exact) "baseline" a.baseline b.baseline;
  check Alcotest.int "initial_secure_as" a.initial_secure_as b.initial_secure_as;
  check Alcotest.int "initial_secure_isp" a.initial_secure_isp b.initial_secure_isp;
  check Alcotest.int "round count" (List.length a.rounds) (List.length b.rounds);
  List.iteri (fun i (ra, rb) -> check_round_equal i ra rb)
    (List.combine a.rounds b.rounds);
  check termination_t "termination" a.termination b.termination;
  check Alcotest.bool "final state" true (State.equal_full a.final b.final);
  (* The cache is driven by the (identical) flip sequence, so even the
     stats must agree. *)
  check Alcotest.int "dest_recomputed" a.dest_recomputed b.dest_recomputed;
  check Alcotest.int "dest_reused" a.dest_reused b.dest_reused

(* Run the same scenario at workers=1 and workers=4 on fresh states.
   Fresh statics per run too: the lazy per-destination cache must not
   carry information between the two runs. *)
let parity ~expect scenario_name build_inputs =
  let run workers =
    let cfg, g, weight, early, frozen = build_inputs () in
    let statics = Bgp.Route_static.create g in
    let state = State.create g ~early ~frozen in
    Engine.run { cfg with Core.Config.workers } statics ~weight ~state
  in
  let r1 = run 1 in
  let r4 = run 4 in
  check_result_equal r1 r4;
  check termination_t (scenario_name ^ " termination") expect r1.termination;
  (* With >1 round, the cross-round cache must have actually reused
     something, else the test exercises nothing. *)
  if List.length r1.rounds > 1 then
    Alcotest.(check bool) "cache reused destinations" true (r1.dest_reused > 0)

let synthetic_outgoing_inputs () =
  let params = { (Topology.Params.with_n Topology.Params.default 120) with seed = 11 } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let early = built.cps @ Asgraph.Metrics.top_by_degree g 5 in
  (Core.Config.default, g, weight, early, [])

let test_parity_synthetic_outgoing () =
  parity ~expect:Engine.Stable "synthetic/outgoing" synthetic_outgoing_inputs

let synthetic_incoming_inputs () =
  let params = { (Topology.Params.with_n Topology.Params.default 120) with seed = 5 } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let early = built.cps @ Asgraph.Metrics.top_by_degree g 5 in
  let cfg =
    {
      Core.Config.default with
      model = Core.Config.Incoming;
      allow_turn_off = true;
      theta = 0.02;
      theta_off = 0.02;
    }
  in
  (cfg, g, weight, early, [])

let test_parity_synthetic_incoming () =
  parity ~expect:Engine.Stable "synthetic/incoming" synthetic_incoming_inputs

let chicken_oscillation_inputs () =
  let c = Gadgets.Chicken.build () in
  (Gadgets.Chicken.config, c.graph, c.weight, c.early, c.frozen)

let chicken_round_cap_inputs () =
  let c = Gadgets.Chicken.build () in
  ({ Gadgets.Chicken.config with max_rounds = 1 }, c.graph, c.weight, c.early, c.frozen)

let test_parity_chicken_oscillation () =
  parity
    ~expect:(Engine.Oscillation { first_round = 0 })
    "chicken/oscillation" chicken_oscillation_inputs

let test_parity_chicken_round_cap () =
  parity ~expect:Engine.Max_rounds "chicken/max-rounds" chicken_round_cap_inputs

(* ------------------------------------------------------------------ *)
(* Flip-kernel differential: the delta-repair probe kernel
   ([Forest.repair] from the destination's base forest) must produce
   results bit-identical to the full-recompute kernel, at both a
   serial and a parallel worker count, across all three terminations
   and both utility models. The workers=1/full run is the reference:
   it is the PR 1-3 code path. *)

let kernel_differential ~expect scenario_name build_inputs =
  let run workers flip_kernel =
    let cfg, g, weight, early, frozen = build_inputs () in
    let statics = Bgp.Route_static.create g in
    let state = State.create g ~early ~frozen in
    Engine.run { cfg with Core.Config.workers; flip_kernel } statics ~weight ~state
  in
  let reference = run 1 Core.Config.Flip_full in
  check termination_t (scenario_name ^ " termination") expect reference.termination;
  List.iter
    (fun workers ->
      List.iter
        (fun kernel -> check_result_equal reference (run workers kernel))
        [ Core.Config.Flip_full; Core.Config.Flip_delta ])
    [ 1; 4 ]

let test_kernel_differential_stable () =
  kernel_differential ~expect:Engine.Stable "kernel/synthetic-outgoing"
    synthetic_outgoing_inputs

let test_kernel_differential_incoming () =
  kernel_differential ~expect:Engine.Stable "kernel/synthetic-incoming"
    synthetic_incoming_inputs

let test_kernel_differential_oscillation () =
  kernel_differential
    ~expect:(Engine.Oscillation { first_round = 0 })
    "kernel/chicken-oscillation" chicken_oscillation_inputs

let test_kernel_differential_round_cap () =
  kernel_differential ~expect:Engine.Max_rounds "kernel/chicken-max-rounds"
    chicken_round_cap_inputs

(* ------------------------------------------------------------------ *)
(* Statics-kernel churn differential: an engine run on a churned graph
   must be bit-identical whether its statics store is created fresh on
   the churned graph (the reference) or migrated across the growth
   delta from a warm pre-churn store via [Route_static.rebase] — under
   both the [Full] and the [Delta] statics kernel, at a serial and a
   parallel worker count, across all three terminations. The appended
   stubs carry zero traffic weight, so the scenario keeps its expected
   termination: a zero-weight leaf only adds [+. 0.0] utility addends
   and no transit paths. *)

let churn_differential ~expect scenario_name build_inputs =
  let build_churned () =
    let cfg, g, weight, early, frozen = build_inputs () in
    let n = Asgraph.Graph.n g in
    let grown, delta =
      Topology.Evolve.grow_delta g
        ~new_stubs:(max 1 (n / 8))
        ~secure_bias:1.5
        ~is_secure:(fun i -> i mod 2 = 0)
        ~seed:9
    in
    let weight' = Array.make (Asgraph.Graph.n grown) 0.0 in
    Array.blit weight 0 weight' 0 n;
    (cfg, g, delta, grown, weight', early, frozen)
  in
  let run_fresh workers =
    let cfg, _, _, grown, weight, early, frozen = build_churned () in
    let statics = Bgp.Route_static.create grown in
    let state = State.create grown ~early ~frozen in
    Engine.run { cfg with Core.Config.workers } statics ~weight ~state
  in
  let run_rebased workers kernel =
    let cfg, g, delta, grown, weight, early, frozen = build_churned () in
    let statics = Bgp.Route_static.create g in
    (* Warm the store on the PRE-churn graph, then migrate it. *)
    Bgp.Route_static.ensure_all statics;
    ignore (Bgp.Route_static.rebase ~kernel statics ~delta grown);
    let state = State.create grown ~early ~frozen in
    Engine.run { cfg with Core.Config.workers } statics ~weight ~state
  in
  let reference = run_fresh 1 in
  check termination_t (scenario_name ^ " termination") expect reference.termination;
  List.iter
    (fun workers ->
      List.iter
        (fun kernel -> check_result_equal reference (run_rebased workers kernel))
        [ Bgp.Route_static.Full; Bgp.Route_static.Delta ])
    [ 1; 4 ]

let test_churn_differential_stable () =
  churn_differential ~expect:Engine.Stable "churn/synthetic-outgoing"
    synthetic_outgoing_inputs

let test_churn_differential_oscillation () =
  churn_differential
    ~expect:(Engine.Oscillation { first_round = 0 })
    "churn/chicken-oscillation" chicken_oscillation_inputs

let test_churn_differential_round_cap () =
  churn_differential ~expect:Engine.Max_rounds "churn/chicken-max-rounds"
    chicken_round_cap_inputs

(* ------------------------------------------------------------------ *)
(* Statics byte budget: a bounded store streams missing records
   through per-worker builders ([Route_static.stream_get]) instead of
   caching them, and [Route_static.compute_with] is pure — so any
   budget must be result-invisible, for any worker count and all three
   terminations. The statics counters in [result] are deliberately NOT
   compared: they are the one field that legitimately depends on the
   budget. *)

let budget_parity ~expect ?(check_streaming = false) ~budget_bytes scenario_name
    build_inputs =
  let run ~workers ~budget_bytes =
    let cfg, g, weight, early, frozen = build_inputs () in
    let statics = Bgp.Route_static.create ~budget_bytes g in
    let state = State.create g ~early ~frozen in
    Engine.run { cfg with Core.Config.workers } statics ~weight ~state
  in
  let reference = run ~workers:1 ~budget_bytes:0 in
  check termination_t (scenario_name ^ " termination") expect reference.termination;
  List.iter
    (fun workers ->
      let bounded = run ~workers ~budget_bytes in
      check_result_equal reference bounded;
      if check_streaming && workers = 1 then begin
        (* The tight budget must have actually been felt: destinations
           past the cached prefix streamed (misses exceed a full
           store's one-miss-per-destination), and the resident bytes
           stayed within budget — the stable-prefix store never holds
           more than it may. *)
        Alcotest.(check bool)
          (scenario_name ^ " tiny budget actually streams")
          true
          (bounded.statics_misses > reference.statics_misses);
        let stats = Bgp.Route_static.stats bounded.statics_store in
        Alcotest.(check bool)
          (scenario_name ^ " resident bytes within budget")
          true
          (stats.Bgp.Route_static.cached_bytes <= budget_bytes)
      end)
    [ 1; 4 ]

let test_budget_parity_stable () =
  budget_parity ~expect:Engine.Stable ~check_streaming:true ~budget_bytes:100_000
    "budget/synthetic-outgoing" synthetic_outgoing_inputs

let test_budget_parity_oscillation () =
  budget_parity
    ~expect:(Engine.Oscillation { first_round = 0 })
    ~budget_bytes:4_096 "budget/chicken-oscillation" chicken_oscillation_inputs

let test_budget_parity_round_cap () =
  budget_parity ~expect:Engine.Max_rounds ~budget_bytes:4_096
    "budget/chicken-max-rounds" chicken_round_cap_inputs

(* ------------------------------------------------------------------ *)
(* Property: the incremental per-destination cache equals from-scratch
   recomputation after arbitrary flip sequences. Random rounds of
   enables/disables drive [Incremental]; after each round the replayed
   utility vector must match [Utility.all] computed on a FRESH
   [Route_static.create] (no shared state with the incremental path). *)

let incremental_matches_scratch ~seed ~rounds ~n () =
  let params = { (Topology.Params.with_n Topology.Params.default n) with seed } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let nn = Asgraph.Graph.n g in
  let cfg = { Core.Config.default with model = Core.Config.Incoming } in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let statics = Bgp.Route_static.create g in
  let state = State.create g ~early:[] in
  let inc = Core.Incremental.create statics in
  let scratch = Bgp.Forest.make_scratch nn in
  let isps =
    Array.of_list
      (List.filter (Asgraph.Graph.is_isp g) (List.init nn (fun i -> i)))
  in
  let rng = Nsutil.Prng.create ~seed:(seed * 7919) in
  for round = 1 to rounds do
    (* Random flips since the previous round: 0..3 ISPs toggle. *)
    let flips = Nsutil.Prng.int rng 4 in
    for _ = 1 to flips do
      let nc = Nsutil.Prng.pick rng isps in
      if State.full state nc then State.disable state nc
      else ignore (State.enable state nc)
    done;
    Core.Incremental.begin_round inc state;
    let secure = State.secure_bytes state in
    let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
    for d = 0 to nn - 1 do
      if Core.Incremental.is_dirty inc d then begin
        let info = Bgp.Route_static.get statics d in
        Bgp.Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight
          scratch;
        let pairs = Core.Utility.contribution_pairs cfg.model g info scratch ~weight in
        Core.Incremental.store inc d ~sec_path:scratch.Bgp.Forest.sec_path ~pairs
      end
    done;
    let incremental = Array.make nn 0.0 in
    for d = 0 to nn - 1 do
      Core.Incremental.add_pairs (Core.Incremental.entry inc d) ~into:incremental
    done;
    let fresh = Bgp.Route_static.create g in
    let expected = Core.Utility.all cfg fresh state ~weight in
    check
      Alcotest.(array (float 1e-9))
      (Printf.sprintf "round %d (flips=%d, dirty=%d)" round flips
         (Core.Incremental.dirty_count inc))
      expected incremental
  done

let test_incremental_random_flips () =
  incremental_matches_scratch ~seed:1 ~rounds:10 ~n:80 ();
  incremental_matches_scratch ~seed:2 ~rounds:8 ~n:60 ()

let test_incremental_no_flips_all_clean () =
  (* A round with zero flips must mark nothing dirty and still replay
     the full utility vector. *)
  let params = { (Topology.Params.with_n Topology.Params.default 60) with seed = 4 } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let nn = Asgraph.Graph.n g in
  let cfg = Core.Config.default in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let statics = Bgp.Route_static.create g in
  let state = State.create g ~early:(Asgraph.Metrics.top_by_degree g 3) in
  let inc = Core.Incremental.create statics in
  let scratch = Bgp.Forest.make_scratch nn in
  let sweep () =
    Core.Incremental.begin_round inc state;
    let secure = State.secure_bytes state in
    let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
    for d = 0 to nn - 1 do
      if Core.Incremental.is_dirty inc d then begin
        let info = Bgp.Route_static.get statics d in
        Bgp.Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight
          scratch;
        let pairs = Core.Utility.contribution_pairs cfg.model g info scratch ~weight in
        Core.Incremental.store inc d ~sec_path:scratch.Bgp.Forest.sec_path ~pairs
      end
    done;
    Core.Incremental.dirty_count inc
  in
  check Alcotest.int "first round recomputes everything" nn (sweep ());
  check Alcotest.int "idle round is a full cache hit" 0 (sweep ());
  let incremental = Array.make nn 0.0 in
  for d = 0 to nn - 1 do
    Core.Incremental.add_pairs (Core.Incremental.entry inc d) ~into:incremental
  done;
  check
    Alcotest.(array (float 1e-9))
    "replayed utilities"
    (Core.Utility.all cfg (Bgp.Route_static.create g) state ~weight)
    incremental

let () =
  Alcotest.run "engine_parity"
    [
      ( "parity",
        [
          Alcotest.test_case "synthetic outgoing (stable)" `Quick
            test_parity_synthetic_outgoing;
          Alcotest.test_case "synthetic incoming + turn-off (stable)" `Quick
            test_parity_synthetic_incoming;
          Alcotest.test_case "chicken gadget (oscillation)" `Quick
            test_parity_chicken_oscillation;
          Alcotest.test_case "chicken gadget (round cap)" `Quick
            test_parity_chicken_round_cap;
        ] );
      ( "flip-kernel",
        [
          Alcotest.test_case "full = delta (stable)" `Quick
            test_kernel_differential_stable;
          Alcotest.test_case "full = delta (incoming + turn-off)" `Quick
            test_kernel_differential_incoming;
          Alcotest.test_case "full = delta (oscillation)" `Quick
            test_kernel_differential_oscillation;
          Alcotest.test_case "full = delta (round cap)" `Quick
            test_kernel_differential_round_cap;
        ] );
      ( "statics-churn",
        [
          Alcotest.test_case "fresh = rebased store (stable)" `Quick
            test_churn_differential_stable;
          Alcotest.test_case "fresh = rebased store (oscillation)" `Quick
            test_churn_differential_oscillation;
          Alcotest.test_case "fresh = rebased store (round cap)" `Quick
            test_churn_differential_round_cap;
        ] );
      ( "statics-budget",
        [
          Alcotest.test_case "tiny budget = unbounded (stable)" `Quick
            test_budget_parity_stable;
          Alcotest.test_case "tiny budget = unbounded (oscillation)" `Quick
            test_budget_parity_oscillation;
          Alcotest.test_case "tiny budget = unbounded (round cap)" `Quick
            test_budget_parity_round_cap;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "random flip sequences = from scratch" `Quick
            test_incremental_random_flips;
          Alcotest.test_case "idle round is a full cache hit" `Quick
            test_incremental_no_flips_all_clean;
        ] );
    ]
