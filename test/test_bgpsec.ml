(* Tests for the message-level S*BGP: S-BGP attestations, soBGP link
   certificates, attack detection, and the cross-validation of the
   message-level simulator against the abstract routing model. *)

module Graph = Asgraph.Graph
module Mode = Bgpsec.Mode
module Sbgp = Bgpsec.Sbgp
module Sobgp = Bgpsec.Sobgp
module Netsim = Bgpsec.Netsim
module Attack = Bgpsec.Attack
module Registry = Rpki.Registry

let check = Alcotest.check
let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let registry_with asns =
  let reg = Registry.create ~seed:11 in
  List.iter
    (fun asn ->
      match Registry.enroll reg ~asn ~prefixes:[ Bgpsec.Netsim_prefix.of_as asn ] with
      | Ok _ -> ()
      | Error e -> failwith e)
    asns;
  reg

(* ------------------------------------------------------------------ *)
(* Modes *)

let test_modes () =
  check Alcotest.bool "off signs nothing" false (Mode.signs_origination Mode.Off);
  check Alcotest.bool "simplex signs own" true (Mode.signs_origination Mode.Simplex);
  check Alcotest.bool "simplex no transit" false (Mode.signs_transit Mode.Simplex);
  check Alcotest.bool "simplex no validation" false (Mode.validates Mode.Simplex);
  check Alcotest.bool "full does all" true
    (Mode.signs_origination Mode.Full && Mode.signs_transit Mode.Full
   && Mode.validates Mode.Full)

(* ------------------------------------------------------------------ *)
(* S-BGP *)

let test_sbgp_two_hop_chain () =
  let reg = registry_with [ 1; 2; 3 ] in
  let prefix = Bgpsec.Netsim_prefix.of_as 1 in
  let ann = Result.get_ok (Sbgp.originate reg ~origin:1 ~prefix ~target:2 ~signed:true) in
  let fwd = Result.get_ok (Sbgp.forward reg ~sender:2 ~target:3 ~signed:true ann) in
  check Alcotest.(list int) "path sender-first" [ 2; 1 ] fwd.Sbgp.path;
  check Alcotest.bool "fully signed" true (Sbgp.fully_signed fwd);
  check Alcotest.bool "validates" true (Result.is_ok (Sbgp.validate reg ~receiver:3 fwd))

let test_sbgp_unsigned_passthrough () =
  let reg = registry_with [ 1; 2; 3 ] in
  let prefix = Bgpsec.Netsim_prefix.of_as 1 in
  let ann = Result.get_ok (Sbgp.originate reg ~origin:1 ~prefix ~target:2 ~signed:false) in
  check Alcotest.bool "unsigned" false (Sbgp.fully_signed ann);
  let fwd = Result.get_ok (Sbgp.forward reg ~sender:2 ~target:3 ~signed:true ann) in
  (* A signing AS must not fabricate security onto an unsigned path. *)
  check Alcotest.bool "stays unsigned" false (Sbgp.fully_signed fwd);
  match Sbgp.validate reg ~receiver:3 fwd with
  | Error (Sbgp.Unsigned_hop _) -> ()
  | Error e -> Alcotest.fail (Sbgp.error_to_string e)
  | Ok () -> Alcotest.fail "should not validate"

let test_sbgp_tamper_prefix () =
  let reg = registry_with [ 1; 2 ] in
  let prefix = Bgpsec.Netsim_prefix.of_as 1 in
  let ann = Result.get_ok (Sbgp.originate reg ~origin:1 ~prefix ~target:2 ~signed:true) in
  (* Replay the announcement under a different (also ROA'd) prefix:
     AS 2 also holds a prefix, forge with its bytes. *)
  let forged = Sbgp.forge ~prefix:(Bgpsec.Netsim_prefix.of_as 2) ~path:ann.Sbgp.path ~target:2 in
  check Alcotest.bool "forged prefix does not validate" true
    (Result.is_error (Sbgp.validate reg ~receiver:2 forged))

let test_sbgp_error_strings () =
  List.iter
    (fun e -> check Alcotest.bool "nonempty rendering" true (Sbgp.error_to_string e <> ""))
    [
      Sbgp.Not_enrolled 5;
      Sbgp.Unsigned_hop 5;
      Sbgp.Bad_signature 5;
      Sbgp.Wrong_target { signer = 1; expected = 2 };
      Sbgp.Misdirected { target = 1; receiver = 2 };
      Sbgp.Origin_invalid Rpki.Roa.Unknown;
      Sbgp.Empty_path;
    ]

let test_sbgp_enrolled_hops () =
  let reg = registry_with [ 1; 2 ] in
  let ann = Sbgp.forge ~prefix:(Bgpsec.Netsim_prefix.of_as 1) ~path:[ 9; 2; 1 ] ~target:0 in
  check Alcotest.int "counts enrolled" 2 (Sbgp.enrolled_hops reg ann)

(* ------------------------------------------------------------------ *)
(* soBGP *)

let test_sobgp_link_lifecycle () =
  let reg = registry_with [ 1; 2; 3 ] in
  let db = Sobgp.create_db () in
  check Alcotest.bool "initially uncertified" false (Sobgp.link_certified reg db 1 2);
  ignore (Result.get_ok (Sobgp.certify_link reg db 1 2));
  check Alcotest.bool "certified" true (Sobgp.link_certified reg db 1 2);
  check Alcotest.bool "order irrelevant" true (Sobgp.link_certified reg db 2 1);
  check Alcotest.int "idempotent" 1
    (let _ = Sobgp.certify_link reg db 2 1 in
     Sobgp.cert_count db)

let test_sobgp_path_validation () =
  let reg = registry_with [ 1; 2; 3 ] in
  let db = Sobgp.create_db () in
  ignore (Sobgp.certify_link reg db 1 2);
  ignore (Sobgp.certify_link reg db 2 3);
  check Alcotest.bool "certified path" true (Sobgp.path_valid reg db [ 1; 2; 3 ]);
  check Alcotest.bool "uncertified link breaks it" false (Sobgp.path_valid reg db [ 1; 3 ]);
  check Alcotest.bool "single node trivially valid" true (Sobgp.path_valid reg db [ 1 ])

let test_sobgp_requires_enrollment () =
  let reg = registry_with [ 1 ] in
  let db = Sobgp.create_db () in
  match Sobgp.certify_link reg db 1 99 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unenrolled endpoint must fail"

(* ------------------------------------------------------------------ *)
(* Attacks *)

let test_attacks_detected () =
  check Alcotest.bool "origin hijack" true (Attack.origin_hijack_detected ());
  check Alcotest.bool "path forgery" true (Attack.path_forgery_detected ());
  check Alcotest.bool "replay" true (Attack.replay_to_wrong_neighbor_detected ())

let test_appendix_b () =
  let sound = Attack.appendix_b ~prefer_partial:false in
  check Alcotest.bool "sound rule keeps true route" false sound.chose_false_path;
  check Alcotest.int "via r" 3 sound.next_hop;
  let unsound = Attack.appendix_b ~prefer_partial:true in
  check Alcotest.bool "partial preference is fooled" true unsound.chose_false_path;
  check Alcotest.int "via q" 4 unsound.next_hop

(* ------------------------------------------------------------------ *)
(* Wire encoding *)

let sample_announcement () =
  let reg = registry_with [ 1; 2; 3 ] in
  let prefix = Bgpsec.Netsim_prefix.of_as 1 in
  let ann = Result.get_ok (Sbgp.originate reg ~origin:1 ~prefix ~target:2 ~signed:true) in
  (reg, Result.get_ok (Sbgp.forward reg ~sender:2 ~target:3 ~signed:true ann))

let test_wire_roundtrip_signed () =
  let reg, ann = sample_announcement () in
  let bytes = Bgpsec.Wire.encode ann in
  match Bgpsec.Wire.decode bytes with
  | Error e -> Alcotest.fail (Bgpsec.Wire.error_to_string e)
  | Ok ann' ->
      check Alcotest.(list int) "path survives" ann.Sbgp.path ann'.Sbgp.path;
      check Alcotest.int "target survives" ann.Sbgp.target ann'.Sbgp.target;
      check Alcotest.bool "prefix survives" true
        (Netaddr.Prefix.equal ann.Sbgp.prefix ann'.Sbgp.prefix);
      (* The decoded announcement still validates: the signatures came
         through bit-exact. *)
      check Alcotest.bool "still validates" true
        (Result.is_ok (Sbgp.validate reg ~receiver:3 ann'))

let test_wire_rejects_garbage () =
  List.iter
    (fun s ->
      check Alcotest.bool (String.escaped s) true (Result.is_error (Bgpsec.Wire.decode s)))
    [ ""; "SBG"; "XXXX"; "SBG1"; "SBG1\x00\x00" ]

let test_wire_truncation_fuzz () =
  let _, ann = sample_announcement () in
  let bytes = Bgpsec.Wire.encode ann in
  (* Every strict prefix must fail cleanly, never raise. *)
  for len = 0 to String.length bytes - 1 do
    match Bgpsec.Wire.decode (String.sub bytes 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" len
  done;
  (* Trailing garbage must also fail. *)
  check Alcotest.bool "trailing bytes rejected" true
    (Result.is_error (Bgpsec.Wire.decode (bytes ^ "x")))

let test_wire_bad_prefix () =
  let _, ann = sample_announcement () in
  let bytes = Bytes.of_string (Bgpsec.Wire.encode ann) in
  (* Corrupt the prefix length byte (offset 4 + 4). *)
  Bytes.set bytes 8 '\xff';
  check Alcotest.bool "bad prefix length rejected" true
    (Result.is_error (Bgpsec.Wire.decode (Bytes.to_string bytes)))

let test_wire_fuzz_qcheck =
  qtest ~count:300 "random bytes never crash the decoder"
    QCheck2.Gen.(string_size (int_range 0 120))
    (fun s ->
      match Bgpsec.Wire.decode s with Ok _ -> true | Error _ -> true)

let test_wire_tamper_breaks_validation =
  qtest ~count:100 "flipping any encoded byte breaks decode or validation"
    QCheck2.Gen.(int_bound 10_000)
    (fun raw ->
      let reg, ann = sample_announcement () in
      let bytes = Bytes.of_string (Bgpsec.Wire.encode ann) in
      let pos = raw mod Bytes.length bytes in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x01));
      match Bgpsec.Wire.decode (Bytes.to_string bytes) with
      | Error _ -> true
      | Ok ann' ->
          (* Structure survived; then either the content changed (so
             validation fails) or the flipped bit was outside any
             meaningful field — impossible in this strict format. *)
          Result.is_error (Sbgp.validate reg ~receiver:3 ann'))

let test_wire_decode_prefix_field () =
  let encoded = Bgpsec.Wire.encode (Sbgp.forge ~prefix:(Netaddr.Prefix.of_string_exn "10.1.2.0/24") ~path:[ 1 ] ~target:2) in
  (* The prefix field sits right after the 4-byte magic. *)
  (match Bgpsec.Wire.decode_prefix encoded ~pos:4 with
  | Ok (p, next) ->
      check Alcotest.string "value" "10.1.2.0/24" (Netaddr.Prefix.to_string p);
      check Alcotest.int "cursor" 9 next
  | Error e -> Alcotest.fail (Bgpsec.Wire.error_to_string e));
  check Alcotest.bool "short read" true
    (Result.is_error (Bgpsec.Wire.decode_prefix "SBG1\x0a" ~pos:4))

let test_session_insecure_destination () =
  (* A destination running plain BGP: routes propagate but nothing
     validates. *)
  let g = Graph.build ~n:3 ~cp_edges:[ (1, 0); (2, 1) ] ~peer_edges:[] ~cps:[] in
  let modes = [| Mode.Off; Mode.Full; Mode.Full |] in
  let s = Bgpsec.Session.create g ~modes in
  Bgpsec.Session.announce s ~origin:0;
  check Alcotest.(list int) "route installed" [ 2; 1; 0 ]
    (Bgpsec.Session.selected_path s ~node:2 ~origin:0);
  check Alcotest.bool "but not validated" false
    (Bgpsec.Session.route_validated s ~node:2 ~origin:0)

(* ------------------------------------------------------------------ *)
(* Key delegation (Section 2.2.1 footnote) *)

let test_delegation_risk () =
  let with_delegation, without_delegation = Attack.delegation_risk () in
  check Alcotest.bool "delegated key forges undetectably" true with_delegation;
  check Alcotest.bool "no delegation, no forgery" false without_delegation

(* ------------------------------------------------------------------ *)
(* Netsim vs the abstract model *)

let modes_gen g =
  QCheck2.Gen.(
    let n = Graph.n g in
    let* bits = list_repeat n (int_bound 2) in
    return
      (Array.of_list
         (List.mapi
            (fun i b ->
              if Graph.is_stub g i then (if b = 0 then Mode.Off else Mode.Simplex)
              else if b = 0 then Mode.Off
              else Mode.Full)
            bits)))

let crosscheck_gen =
  QCheck2.Gen.(
    let* g = Testkit.Graphgen.graph ~max_n:20 () in
    let* modes = modes_gen g in
    let* d = int_bound (Graph.n g - 1) in
    let* protocol = oneofl [ Netsim.S_bgp; Netsim.So_bgp ] in
    return (g, modes, d, protocol))

let abstract_routes g ~modes ~d =
  let n = Graph.n g in
  let secure = Bytes.make n '\000' in
  let use_secp = Bytes.make n '\000' in
  Array.iteri
    (fun i m ->
      if not (Mode.equal m Mode.Off) then Bytes.set secure i '\001';
      if Mode.equal m Mode.Full then Bytes.set use_secp i '\001')
    modes;
  let info = Bgp.Route_static.compute g d in
  let scratch = Bgp.Forest.make_scratch n in
  Bgp.Forest.compute info ~tiebreak:Bgp.Policy.Lowest_id ~secure ~use_secp
    ~weight:(Array.make n 1.0) scratch;
  (info, scratch, secure)

let test_netsim_matches_forest_paths =
  qtest ~count:80 "message-level and abstract chosen paths agree" crosscheck_gen
    (fun (g, modes, d, protocol) ->
      let setup = Netsim.prepare ~protocol g ~modes in
      let outcome = Netsim.route_to setup ~dest:d in
      let info, scratch, _ = abstract_routes g ~modes ~d in
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        if u <> d then begin
          match outcome.chosen.(u) with
          | None -> if Bgp.Route_static.reachable info u then ok := false
          | Some ann ->
              let message_path = u :: ann.Sbgp.path in
              let abstract_path = Bgp.Forest.path_to_dest info scratch u in
              if message_path <> abstract_path then ok := false
        end
      done;
      !ok)

let test_netsim_matches_forest_security =
  qtest ~count:80 "message-level validation agrees with abstract path security"
    crosscheck_gen
    (fun (g, modes, d, protocol) ->
      let setup = Netsim.prepare ~protocol g ~modes in
      let outcome = Netsim.route_to setup ~dest:d in
      let info, scratch, secure = abstract_routes g ~modes ~d in
      (* Chosen-route security, abstractly. *)
      let n = Graph.n g in
      let cs = Bytes.make n '\000' in
      Bytes.set cs d (Bytes.get secure d);
      for k = 1 to Bgp.Route_static.order_length info - 1 do
        let i = Bgp.Route_static.order_get info k in
        let nh = scratch.Bgp.Forest.next.(i) in
        if nh >= 0 && Bytes.get secure i = '\001' && Bytes.get cs nh = '\001' then
          Bytes.set cs i '\001'
      done;
      let ok = ref true in
      for u = 0 to n - 1 do
        if u <> d && Bgp.Route_static.reachable info u then
          if outcome.secure.(u) <> (Bytes.get cs u = '\001') then ok := false
      done;
      !ok)

let test_netsim_converges_quickly () =
  let params = Topology.Params.with_n Topology.Params.default 100 in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let modes =
    Array.init (Graph.n g) (fun i ->
        if Graph.is_stub g i then Mode.Simplex else Mode.Full)
  in
  let setup = Netsim.prepare g ~modes in
  let outcome = Netsim.route_to setup ~dest:(Graph.n g - 1) in
  check Alcotest.bool "iterations bounded by diameter-ish" true (outcome.iterations < 20);
  (* Everyone participates, so every chosen route must validate. *)
  let reachable = ref 0 and secured = ref 0 in
  Array.iteri
    (fun u ann ->
      if u <> Graph.n g - 1 && ann <> None then begin
        incr reachable;
        if outcome.secure.(u) then incr secured
      end)
    outcome.chosen;
  check Alcotest.int "all validated under full deployment" !reachable !secured

(* ------------------------------------------------------------------ *)
(* Sessions: the event-driven wire-level protocol. *)

let test_session_matches_netsim =
  qtest ~count:50 "session fixed point equals netsim's" crosscheck_gen
    (fun (g, modes, d, protocol) ->
      let setup = Netsim.prepare ~protocol g ~modes in
      let net_out = Netsim.route_to setup ~dest:d in
      let session = Bgpsec.Session.create ~protocol g ~modes in
      Bgpsec.Session.announce session ~origin:d;
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        if u <> d then begin
          let net_path =
            match net_out.chosen.(u) with
            | Some ann -> u :: ann.Sbgp.path
            | None -> []
          in
          let ses_path = Bgpsec.Session.selected_path session ~node:u ~origin:d in
          if net_path <> ses_path then ok := false;
          if
            net_out.chosen.(u) <> None
            && net_out.secure.(u) <> Bgpsec.Session.route_validated session ~node:u ~origin:d
          then ok := false
        end
      done;
      !ok)

let test_session_multi_prefix_independent () =
  let params = Topology.Params.with_n Topology.Params.default 80 in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let n = Graph.n g in
  let modes =
    Array.init n (fun i -> if Graph.is_stub g i then Mode.Simplex else Mode.Full)
  in
  (* Announcing several prefixes through one session network must give
     per-origin routes identical to announcing each alone. *)
  let together = Bgpsec.Session.create g ~modes in
  let origins = [ 0; n / 2; n - 1 ] in
  List.iter (fun o -> Bgpsec.Session.announce together ~origin:o) origins;
  List.iter
    (fun o ->
      let alone = Bgpsec.Session.create g ~modes in
      Bgpsec.Session.announce alone ~origin:o;
      for u = 0 to n - 1 do
        if u <> o then
          check Alcotest.(list int)
            (Printf.sprintf "origin %d node %d" o u)
            (Bgpsec.Session.selected_path alone ~node:u ~origin:o)
            (Bgpsec.Session.selected_path together ~node:u ~origin:o)
      done)
    origins;
  check Alcotest.bool "messages flowed" true
    (Bgpsec.Session.messages_processed together > n);
  check Alcotest.bool "bytes flowed" true (Bgpsec.Session.bytes_on_wire together > 0)

let test_session_announce_idempotent () =
  let params = Topology.Params.with_n Topology.Params.default 60 in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let modes = Array.make (Graph.n g) Mode.Full in
  let s = Bgpsec.Session.create g ~modes in
  Bgpsec.Session.announce s ~origin:0;
  let m1 = Bgpsec.Session.messages_processed s in
  Bgpsec.Session.announce s ~origin:0;
  check Alcotest.int "no extra messages" m1 (Bgpsec.Session.messages_processed s)

let test_session_rejects_bad_origin () =
  let g = Graph.build ~n:2 ~cp_edges:[ (0, 1) ] ~peer_edges:[] ~cps:[] in
  let s = Bgpsec.Session.create g ~modes:[| Mode.Full; Mode.Full |] in
  Alcotest.check_raises "out of range" (Invalid_argument "Session.announce") (fun () ->
      Bgpsec.Session.announce s ~origin:7)

let () =
  Alcotest.run "bgpsec"
    [
      ("modes", [ Alcotest.test_case "mode capabilities" `Quick test_modes ]);
      ( "sbgp",
        [
          Alcotest.test_case "two-hop signed chain" `Quick test_sbgp_two_hop_chain;
          Alcotest.test_case "unsigned passthrough" `Quick test_sbgp_unsigned_passthrough;
          Alcotest.test_case "forged prefix rejected" `Quick test_sbgp_tamper_prefix;
          Alcotest.test_case "error rendering" `Quick test_sbgp_error_strings;
          Alcotest.test_case "enrolled hop counting" `Quick test_sbgp_enrolled_hops;
        ] );
      ( "sobgp",
        [
          Alcotest.test_case "link lifecycle" `Quick test_sobgp_link_lifecycle;
          Alcotest.test_case "path validation" `Quick test_sobgp_path_validation;
          Alcotest.test_case "requires enrollment" `Quick test_sobgp_requires_enrollment;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "detections" `Quick test_attacks_detected;
          Alcotest.test_case "appendix B" `Quick test_appendix_b;
          Alcotest.test_case "delegation risk" `Quick test_delegation_risk;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip signed" `Quick test_wire_roundtrip_signed;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
          Alcotest.test_case "truncation fuzz" `Quick test_wire_truncation_fuzz;
          Alcotest.test_case "bad prefix byte" `Quick test_wire_bad_prefix;
          Alcotest.test_case "decode_prefix field" `Quick test_wire_decode_prefix_field;
          test_wire_fuzz_qcheck;
          test_wire_tamper_breaks_validation;
        ] );
      ( "netsim",
        [
          test_netsim_matches_forest_paths;
          test_netsim_matches_forest_security;
          Alcotest.test_case "full deployment validates everything" `Quick
            test_netsim_converges_quickly;
        ] );
      ( "session",
        [
          test_session_matches_netsim;
          Alcotest.test_case "multi-prefix independence" `Quick
            test_session_multi_prefix_independent;
          Alcotest.test_case "announce idempotent" `Quick test_session_announce_idempotent;
          Alcotest.test_case "rejects bad origin" `Quick test_session_rejects_bad_origin;
          Alcotest.test_case "insecure destination" `Quick test_session_insecure_destination;
        ] );
    ]
