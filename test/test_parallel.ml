(* Tests for the domain pool (the DryadLINQ stand-in): results must be
   identical regardless of worker count. *)

module Pool = Parallel.Pool

let check = Alcotest.check

let test_map_reduce_sum () =
  let tasks = 1000 in
  let expected = tasks * (tasks - 1) / 2 in
  List.iter
    (fun workers ->
      let total =
        Pool.map_reduce ~workers ~tasks
          ~init:(fun () -> ref 0)
          ~task:(fun acc i -> acc := !acc + i)
          ~combine:(fun a b ->
            a := !a + !b;
            a)
      in
      check Alcotest.int (Printf.sprintf "workers=%d" workers) expected !total)
    [ 1; 2; 4; 7 ]

let test_map_reduce_order_deterministic () =
  (* The reduction is a left fold over worker index: collecting slices
     must give task order regardless of worker count. *)
  let tasks = 97 in
  let collect workers =
    !(Pool.map_reduce ~workers ~tasks
        ~init:(fun () -> ref [])
        ~task:(fun acc i -> acc := !acc @ [ i ])
        ~combine:(fun a b ->
          a := !a @ !b;
          a))
  in
  check Alcotest.(list int) "identity order" (List.init tasks (fun i -> i)) (collect 1);
  check Alcotest.(list int) "same with 4 workers" (collect 1) (collect 4)

let test_map_array () =
  let sq = Pool.map_array ~workers:3 ~tasks:50 (fun i -> i * i) in
  check Alcotest.(array int) "equals Array.init" (Array.init 50 (fun i -> i * i)) sq;
  check Alcotest.(array int) "empty" [||] (Pool.map_array ~workers:3 ~tasks:0 (fun i -> i))

let test_more_workers_than_tasks () =
  let r = Pool.map_array ~workers:16 ~tasks:3 (fun i -> i + 1) in
  check Alcotest.(array int) "clamped" [| 1; 2; 3 |] r

let test_zero_tasks () =
  (* tasks = 0 must return the bare initial accumulator, for any
     worker count, without touching [task]. *)
  List.iter
    (fun workers ->
      let r =
        Pool.map_reduce ~workers ~tasks:0
          ~init:(fun () -> ref 0)
          ~task:(fun _ _ -> Alcotest.fail "task called with zero tasks")
          ~combine:(fun a b ->
            a := !a + !b;
            a)
      in
      check Alcotest.int (Printf.sprintf "workers=%d" workers) 0 !r;
      let rc =
        Pool.map_reduce_chunked ~workers ~tasks:0 ~grain:4
          ~init:(fun () -> ref 0)
          ~task:(fun _ _ -> Alcotest.fail "task called with zero tasks")
          ~combine:(fun a b ->
            a := !a + !b;
            a)
      in
      check Alcotest.int (Printf.sprintf "chunked workers=%d" workers) 0 !rc)
    [ 1; 3 ]

let test_chunked_matches_unchunked () =
  (* The grain only reshapes scheduling: for every (workers, grain)
     the chunked entry point must equal map_reduce at workers=1. *)
  let tasks = 101 in
  let collect f =
    !(f
        ~init:(fun () -> ref [])
        ~task:(fun acc i -> acc := i :: !acc)
        ~combine:(fun a b ->
          a := !b @ !a;
          a))
  in
  let reference = collect (Pool.map_reduce ~workers:1 ~tasks) in
  List.iter
    (fun (workers, grain) ->
      check
        Alcotest.(list int)
        (Printf.sprintf "workers=%d grain=%d" workers grain)
        reference
        (collect (Pool.map_reduce_chunked ~workers ~tasks ~grain)))
    [ (1, 1); (4, 1); (4, 8); (4, 50); (4, 1000); (16, 7) ]

let test_chunked_combine_order () =
  (* Worker-index order must survive the grain-derived worker clamp:
     collecting slices gives ascending task order. *)
  let tasks = 64 in
  let r =
    !(Pool.map_reduce_chunked ~workers:4 ~tasks ~grain:8
        ~init:(fun () -> ref [])
        ~task:(fun acc i -> acc := !acc @ [ i ])
        ~combine:(fun a b ->
          a := !a @ !b;
          a))
  in
  check Alcotest.(list int) "ascending" (List.init tasks (fun i -> i)) r

let test_recommended_workers_positive () =
  check Alcotest.bool "at least one" true (Pool.recommended_workers () >= 1);
  (* The clamp itself, independent of this host's core count: a
     single-core count (and degenerate inputs) still yields one
     worker, more cores leave one for the coordinating domain. *)
  check Alcotest.int "1 core -> 1 worker" 1 (Pool.workers_of_domain_count 1);
  check Alcotest.int "0 cores -> 1 worker" 1 (Pool.workers_of_domain_count 0);
  check Alcotest.int "-3 cores -> 1 worker" 1 (Pool.workers_of_domain_count (-3));
  check Alcotest.int "8 cores -> 7 workers" 7 (Pool.workers_of_domain_count 8);
  check Alcotest.bool "default is positive" true (Pool.default_workers () >= 1)

let test_parallel_utility_matches_sequential () =
  (* The real use: per-destination utility accumulation partitioned
     across workers must equal the sequential computation. *)
  let params = Topology.Params.with_n Topology.Params.default 150 in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let n = Asgraph.Graph.n g in
  let statics = Bgp.Route_static.create g in
  (* Prime the per-destination cache sequentially: the cache itself is
     not thread-safe, which is exactly why workers get local scratch. *)
  for d = 0 to n - 1 do
    ignore (Bgp.Route_static.get statics d)
  done;
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let state = Core.State.create g ~early:(Asgraph.Metrics.top_by_degree g 3) in
  let secure = Core.State.secure_bytes state in
  let use_secp = Core.State.use_secp_bytes state ~stub_tiebreak:true in
  let compute workers =
    let acc =
      Pool.map_reduce ~workers ~tasks:n
        ~init:(fun () -> (Bgp.Forest.make_scratch n, Array.make n 0.0))
        ~task:(fun (scratch, into) d ->
          let info = Bgp.Route_static.get statics d in
          Bgp.Forest.compute info ~tiebreak:Bgp.Policy.Lowest_id ~secure ~use_secp
            ~weight scratch;
          Core.Utility.accumulate Core.Config.Outgoing g info scratch ~weight ~into)
        ~combine:(fun (s, a) (_, b) ->
          Array.iteri (fun i v -> a.(i) <- a.(i) +. v) b;
          (s, a))
    in
    snd acc
  in
  let seq = compute 1 in
  let par = compute 4 in
  check Alcotest.(array (float 1e-9)) "bit-identical utilities" seq par

(* ------------------------------------------------------------------ *)
(* Supervision *)

let sum_supervised sv workers tasks =
  !(Pool.map_reduce_supervised sv ~workers ~tasks
      ~init:(fun () -> ref 0)
      ~task:(fun acc i -> acc := !acc + i)
      ~combine:(fun a b ->
        a := !a + !b;
        a))

let test_supervised_matches_unsupervised () =
  let tasks = 513 in
  let expected = tasks * (tasks - 1) / 2 in
  List.iter
    (fun workers ->
      check Alcotest.int
        (Printf.sprintf "workers=%d" workers)
        expected
        (sum_supervised Pool.no_supervision workers tasks))
    [ 1; 2; 4; 7 ];
  check Alcotest.int "chunked" expected
    !(Pool.map_reduce_chunked_supervised Pool.no_supervision ~workers:4 ~tasks ~grain:16
        ~init:(fun () -> ref 0)
        ~task:(fun acc i -> acc := !acc + i)
        ~combine:(fun a b ->
          a := !a + !b;
          a))

let test_supervised_zero_tasks () =
  let r =
    Pool.map_reduce_supervised Pool.no_supervision ~workers:3 ~tasks:0
      ~init:(fun () -> ref 0)
      ~task:(fun _ _ -> Alcotest.fail "task called with zero tasks")
      ~combine:(fun a b ->
        a := !a + !b;
        a)
  in
  check Alcotest.int "bare accumulator" 0 !r

let test_supervised_retries_recover () =
  (* Injected faults within the budget are invisible: same sum, and
     the retry callback saw the contained failures. *)
  let tasks = 200 in
  let expected = tasks * (tasks - 1) / 2 in
  let faults = Nsutil.Faults.create ~rate:1.0 ~budget:2 ~seed:3 () in
  let retried = ref 0 in
  let sv =
    Pool.supervision ~retries:2 ~backoff:0.0 ~faults
      ~on_retry:(fun ~attempt:_ ~index:_ ~error:_ -> incr retried)
      ()
  in
  check Alcotest.int "sum unchanged" expected (sum_supervised sv 4 tasks);
  check Alcotest.bool "faults actually fired" true (Nsutil.Faults.fired faults = 2);
  check Alcotest.bool "retries happened" true (!retried > 0)

let test_supervised_serial_fallback () =
  (* retries = 1 means the single retry IS the final serial attempt:
     the injected failure must be absorbed by the calling domain's
     re-execution, with the sum unchanged. *)
  let faults = Nsutil.Faults.create ~rate:1.0 ~budget:1 ~seed:5 ~after:10 () in
  let sv = Pool.supervision ~retries:1 ~backoff:0.0 ~faults () in
  let r = sum_supervised sv 4 100 in
  check Alcotest.int "one injection absorbed by the serial retry" (100 * 99 / 2) r;
  check Alcotest.int "the injection fired" 1 (Nsutil.Faults.fired faults)

let test_supervised_failure_attribution () =
  (* A deterministic always-failing task index: supervision must name
     it, with the attempt count, after exhausting the budget. *)
  let attempts = ref [] in
  let sv =
    Pool.supervision ~retries:2 ~backoff:0.0
      ~on_retry:(fun ~attempt ~index ~error:_ -> attempts := (attempt, index) :: !attempts)
      ()
  in
  match
    Pool.map_reduce_supervised sv ~workers:4 ~tasks:64
      ~init:(fun () -> ref 0)
      ~task:(fun acc i -> if i = 37 then failwith "task 37 is cursed" else acc := !acc + i)
      ~combine:(fun a b ->
        a := !a + !b;
        a)
  with
  | _ -> Alcotest.fail "expected Supervision_failed"
  | exception Pool.Supervision_failed [ { Pool.index; attempts = n; error } ] ->
      check Alcotest.int "failing index" 37 index;
      (* initial attempt + 2 retries, the last serial *)
      check Alcotest.int "attempts" 3 n;
      check Alcotest.bool "error preserved" true
        (String.length error > 0
        &&
        let rec find i =
          i + 6 <= String.length error && (String.sub error i 6 = "cursed" || find (i + 1))
        in
        find 0);
      check Alcotest.bool "on_retry saw the index" true
        (List.for_all (fun (_, i) -> i = 37) !attempts && List.length !attempts = 2)
  | exception Pool.Supervision_failed l ->
      Alcotest.failf "expected exactly one failure, got %d" (List.length l)

let test_supervised_multiple_failures_aggregated () =
  (* Failures in distinct slices are all reported, sorted by task
     index, not just the first one. *)
  match
    Pool.map_reduce_supervised
      (Pool.supervision ~retries:0 ~backoff:0.0 ())
      ~workers:4 ~tasks:100
      ~init:(fun () -> ref 0)
      ~task:(fun acc i -> if i mod 30 = 7 then failwith "boom" else acc := !acc + i)
      ~combine:(fun a b ->
        a := !a + !b;
        a)
  with
  | _ -> Alcotest.fail "expected Supervision_failed"
  | exception Pool.Supervision_failed failures ->
      let indices = List.map (fun f -> f.Pool.index) failures in
      (* one failure per slice, attributed to the first failing task *)
      check Alcotest.bool "ascending indices" true
        (List.sort compare indices = indices);
      check Alcotest.bool "several slices failed" true (List.length failures > 1);
      List.iter
        (fun i -> check Alcotest.int "first failing task of its slice" 7 (i mod 30))
        indices

let test_supervised_engine_parity_under_faults () =
  (* The real integration: an engine-shaped accumulation with faults
     injected and retried must equal the fault-free run bit for bit. *)
  let tasks = 300 in
  let run sv =
    Pool.map_reduce_chunked_supervised sv ~workers:4 ~tasks ~grain:8
      ~init:(fun () -> Array.make 4 0.0)
      ~task:(fun acc i -> acc.(i mod 4) <- acc.(i mod 4) +. (1.0 /. float_of_int (i + 1)))
      ~combine:(fun a b ->
        Array.iteri (fun k v -> a.(k) <- a.(k) +. v) b;
        a)
  in
  let clean = run Pool.no_supervision in
  let faults = Nsutil.Faults.create ~rate:0.05 ~budget:2 ~seed:11 () in
  let faulted = run (Pool.supervision ~retries:2 ~backoff:0.0 ~faults ()) in
  check Alcotest.(array (float 0.0)) "bit-identical floats" clean faulted;
  check Alcotest.int "faults fired" 2 (Nsutil.Faults.fired faults)

(* ------------------------------------------------------------------ *)
(* Dynamic (self-scheduled) map/reduce *)

(* The dynamic scheduler's determinism contract is narrower: chunk->
   worker assignment is nondeterministic, so these tests exercise the
   two sanctioned usage patterns — per-index slot publication (the
   engine sweep's shape) and regrouping-invariant reductions. *)

let dynamic_slots sv workers tasks grain f =
  let out = Array.make (max tasks 1) 0 in
  ignore
    (Pool.map_reduce_dynamic_supervised sv ~workers ~tasks ~grain
       ~init:(fun () -> ())
       ~task:(fun () i -> out.(i) <- f i)
       ~combine:(fun () () -> ()));
  out

let test_dynamic_per_index_slots () =
  (* Per-index slot publication must equal Array.init for every
     (workers, tasks, grain) shape, including uneven tails where the
     last chunk is shorter than the grain. *)
  let f i = (i * 7) + 3 in
  List.iter
    (fun (workers, tasks, grain) ->
      let expected = Array.init (max tasks 1) (fun i -> if i < tasks then f i else 0) in
      check
        Alcotest.(array int)
        (Printf.sprintf "workers=%d tasks=%d grain=%d" workers tasks grain)
        expected
        (dynamic_slots Pool.no_supervision workers tasks grain f))
    [ (1, 100, 8); (3, 17, 4); (4, 100, 8); (4, 3, 8); (7, 97, 1); (2, 64, 64) ]

let test_dynamic_sum_regrouping_invariant () =
  (* An integer sum is invariant under regrouping of tasks into
     accumulators, so it is safe under dynamic scheduling and must
     match the closed form for any worker count. *)
  let tasks = 500 in
  let expected = tasks * (tasks - 1) / 2 in
  List.iter
    (fun workers ->
      let total =
        !(Pool.map_reduce_dynamic_supervised Pool.no_supervision ~workers ~tasks ~grain:8
            ~init:(fun () -> ref 0)
            ~task:(fun acc i -> acc := !acc + i)
            ~combine:(fun a b ->
              a := !a + !b;
              a))
      in
      check Alcotest.int (Printf.sprintf "workers=%d" workers) expected total)
    [ 1; 2; 4; 7 ]

let test_dynamic_workers1_in_order () =
  (* workers = 1 degrades to the serial supervised fold: tasks run in
     ascending index order, so even order-sensitive accumulators are
     safe there. *)
  let tasks = 53 in
  let r =
    !(Pool.map_reduce_dynamic_supervised Pool.no_supervision ~workers:1 ~tasks ~grain:4
        ~init:(fun () -> ref [])
        ~task:(fun acc i -> acc := !acc @ [ i ])
        ~combine:(fun a b ->
          a := !a @ !b;
          a))
  in
  check Alcotest.(list int) "ascending" (List.init tasks (fun i -> i)) r

let test_dynamic_zero_tasks () =
  let r =
    Pool.map_reduce_dynamic_supervised Pool.no_supervision ~workers:4 ~tasks:0 ~grain:8
      ~init:(fun () -> ref 0)
      ~task:(fun _ _ -> Alcotest.fail "task called with zero tasks")
      ~combine:(fun a b ->
        a := !a + !b;
        a)
  in
  check Alcotest.int "bare accumulator" 0 !r

let test_dynamic_failure_attribution () =
  (* With a zero retry budget a deterministically cursed index must
     surface in Supervision_failed, attributed by task index. *)
  match
    Pool.map_reduce_dynamic_supervised
      (Pool.supervision ~retries:0 ~backoff:0.0 ())
      ~workers:4 ~tasks:64 ~grain:8
      ~init:(fun () -> ref 0)
      ~task:(fun acc i -> if i = 42 then failwith "task 42 is cursed" else acc := !acc + i)
      ~combine:(fun a b ->
        a := !a + !b;
        a)
  with
  | _ -> Alcotest.fail "expected Supervision_failed"
  | exception Pool.Supervision_failed [ { Pool.index; error; _ } ] ->
      check Alcotest.int "failing index" 42 index;
      check Alcotest.bool "error preserved" true
        (String.length error > 0
        &&
        let rec find i =
          i + 6 <= String.length error && (String.sub error i 6 = "cursed" || find (i + 1))
        in
        find 0)
  | exception Pool.Supervision_failed l ->
      Alcotest.failf "expected exactly one failure, got %d" (List.length l)

let test_dynamic_retries_recover () =
  (* A transient failure — fails on first execution of index 19, then
     succeeds on re-execution — must be absorbed by chunk retries, with
     every slot still correct. *)
  let first = Atomic.make true in
  let out = Array.make 64 (-1) in
  ignore
    (Pool.map_reduce_dynamic_supervised
       (Pool.supervision ~retries:2 ~backoff:0.0 ())
       ~workers:4 ~tasks:64 ~grain:8
       ~init:(fun () -> ())
       ~task:(fun () i ->
         if i = 19 && Atomic.compare_and_set first true false then
           failwith "transient fault at 19";
         out.(i) <- i * 2)
       ~combine:(fun () () -> ()));
  check Alcotest.(array int) "all slots published" (Array.init 64 (fun i -> i * 2)) out;
  check Alcotest.bool "the fault actually fired" true (not (Atomic.get first))

let test_dynamic_float_parity_under_faults () =
  (* Per-index float slots are bit-identical between a clean run and a
     fault-injected run with retries: re-running an index overwrites
     its slot with the same value. *)
  let run sv =
    let out = Array.make 300 0.0 in
    ignore
      (Pool.map_reduce_dynamic_supervised sv ~workers:4 ~tasks:300 ~grain:8
         ~init:(fun () -> ())
         ~task:(fun () i -> out.(i) <- 1.0 /. float_of_int (i + 1))
         ~combine:(fun () () -> ()));
    out
  in
  let clean = run Pool.no_supervision in
  let faults = Nsutil.Faults.create ~rate:0.05 ~budget:3 ~seed:17 () in
  let faulted = run (Pool.supervision ~retries:2 ~backoff:0.0 ~faults ()) in
  check Alcotest.(array (float 0.0)) "bit-identical floats" clean faulted;
  check Alcotest.int "faults fired" 3 (Nsutil.Faults.fired faults)

(* ------------------------------------------------------------------ *)
(* Watchdog: hang detection, cancellation, and the backoff schedule *)

let hang_plan ~after =
  (* [pool.hang] is a scoped-only site: it must be named to fire, so a
     plan for it can never disturb the [pool.task] shot schedule. *)
  Nsutil.Faults.of_plan
    [ (Some "pool.hang", { Nsutil.Faults.seed = 7; rate = 1.0; budget = 1; after }) ]

let test_watchdog_recovers_hung_task () =
  (* One injected hang stalls a slice until the watchdog cancels it;
     the retry re-executes the slice and the sum is unchanged. *)
  let tasks = 100 in
  let expected = tasks * (tasks - 1) / 2 in
  let faults = hang_plan ~after:20 in
  let retried = ref [] in
  let sv =
    Pool.supervision ~retries:2 ~backoff:0.0 ~timeout_ms:50 ~faults
      ~on_retry:(fun ~attempt:_ ~index:_ ~error -> retried := error :: !retried)
      ()
  in
  check Alcotest.int "sum unchanged" expected (sum_supervised sv 4 tasks);
  check Alcotest.int "the hang fired" 1 (Nsutil.Faults.fired faults);
  check Alcotest.bool "a retry absorbed the cancelled slice" true (!retried <> [])

let test_watchdog_unarmed_hang_degrades () =
  (* With no timeout armed the injected hang must degrade to an
     immediate raise — never a deadlock — and the retry machinery
     absorbs it like any other fault. *)
  let tasks = 64 in
  let sv = Pool.supervision ~retries:2 ~backoff:0.0 ~faults:(hang_plan ~after:5) () in
  check Alcotest.int "sum unchanged" (tasks * (tasks - 1) / 2) (sum_supervised sv 4 tasks)

let test_watchdog_dynamic_drain () =
  (* The self-scheduled path: a hang in one chunk is cancelled, the
     calling domain drains the chunks the cancelled worker never
     claimed, and the retry republishes the failed chunk's slots — no
     index lost, every slot correct (per-index slots, the engine
     sweep's contract). *)
  let tasks = 120 in
  let out = Array.make tasks (-1) in
  let sv =
    Pool.supervision ~retries:2 ~backoff:0.0 ~timeout_ms:50 ~faults:(hang_plan ~after:30) ()
  in
  ignore
    (Pool.map_reduce_dynamic_supervised sv ~workers:4 ~tasks ~grain:8
       ~init:(fun () -> ())
       ~task:(fun () i -> out.(i) <- i * 3)
       ~combine:(fun () () -> ()));
  check Alcotest.(array int) "all slots published" (Array.init tasks (fun i -> i * 3)) out

let test_backoff_delay_schedule () =
  (* The retry sleep schedule is a pure function of (jitter_seed,
     attempt, index): reproducible run to run, capped, and decorrelated
     across indices. *)
  let mk () = Pool.supervision ~retries:5 ~backoff:0.1 ~backoff_cap:0.3 ~jitter_seed:42 () in
  let a = mk () and b = mk () in
  for attempt = 1 to 6 do
    for index = 0 to 3 do
      check (Alcotest.float 0.0)
        (Printf.sprintf "deterministic attempt=%d index=%d" attempt index)
        (Pool.backoff_delay a ~attempt ~index)
        (Pool.backoff_delay b ~attempt ~index)
    done
  done;
  (* Exponential base: attempt 2 doubles to attempt 3 before the cap
     bites; the jitter factor lives in [0.5, 1.0]. *)
  let d2 = Pool.backoff_delay a ~attempt:2 ~index:0 in
  check Alcotest.bool "positive" true (d2 > 0.0);
  check Alcotest.bool "within base" true (d2 >= 0.05 && d2 <= 0.1);
  (* Far attempts saturate at the cap (times the jitter factor). *)
  let d9 = Pool.backoff_delay a ~attempt:9 ~index:0 in
  check Alcotest.bool "capped" true (d9 <= 0.3 && d9 >= 0.15);
  (* Distinct indices draw distinct jitter: retrying slices never
     synchronize their sleeps. *)
  check Alcotest.bool "decorrelated across indices" true
    (Pool.backoff_delay a ~attempt:4 ~index:1 <> Pool.backoff_delay a ~attempt:4 ~index:2);
  (* backoff = 0 disables sleeping entirely. *)
  check (Alcotest.float 0.0) "zero backoff" 0.0
    (Pool.backoff_delay (Pool.supervision ~retries:2 ~backoff:0.0 ()) ~attempt:5 ~index:0)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_reduce sums" `Quick test_map_reduce_sum;
          Alcotest.test_case "deterministic reduction order" `Quick
            test_map_reduce_order_deterministic;
          Alcotest.test_case "map_array" `Quick test_map_array;
          Alcotest.test_case "more workers than tasks" `Quick test_more_workers_than_tasks;
          Alcotest.test_case "zero tasks" `Quick test_zero_tasks;
          Alcotest.test_case "chunked = unchunked" `Quick test_chunked_matches_unchunked;
          Alcotest.test_case "chunked combine order" `Quick test_chunked_combine_order;
          Alcotest.test_case "recommended workers" `Quick test_recommended_workers_positive;
          Alcotest.test_case "parallel utility = sequential" `Quick
            test_parallel_utility_matches_sequential;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "supervised = unsupervised" `Quick
            test_supervised_matches_unsupervised;
          Alcotest.test_case "zero tasks" `Quick test_supervised_zero_tasks;
          Alcotest.test_case "retries recover" `Quick test_supervised_retries_recover;
          Alcotest.test_case "serial fallback" `Quick test_supervised_serial_fallback;
          Alcotest.test_case "failure attribution" `Quick
            test_supervised_failure_attribution;
          Alcotest.test_case "multiple failures aggregated" `Quick
            test_supervised_multiple_failures_aggregated;
          Alcotest.test_case "float parity under faults" `Quick
            test_supervised_engine_parity_under_faults;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "hung task recovered" `Quick test_watchdog_recovers_hung_task;
          Alcotest.test_case "unarmed hang degrades" `Quick
            test_watchdog_unarmed_hang_degrades;
          Alcotest.test_case "dynamic drain under hang" `Quick test_watchdog_dynamic_drain;
          Alcotest.test_case "backoff schedule" `Quick test_backoff_delay_schedule;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "per-index slots = Array.init" `Quick
            test_dynamic_per_index_slots;
          Alcotest.test_case "regrouping-invariant sum" `Quick
            test_dynamic_sum_regrouping_invariant;
          Alcotest.test_case "workers=1 is in-order serial" `Quick
            test_dynamic_workers1_in_order;
          Alcotest.test_case "zero tasks" `Quick test_dynamic_zero_tasks;
          Alcotest.test_case "failure attribution" `Quick test_dynamic_failure_attribution;
          Alcotest.test_case "retries recover" `Quick test_dynamic_retries_recover;
          Alcotest.test_case "float parity under faults" `Quick
            test_dynamic_float_parity_under_faults;
        ] );
    ]
