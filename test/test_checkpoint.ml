(* Tests for checksummed checkpoint/resume (Core.Checkpoint +
   Engine.resume) and the fault-injection harness around them.

   The two differential properties that matter:
   - kill-and-resume: a run killed mid-flight by an injected worker
     fault, then resumed from its last snapshot, yields an
     [Engine.result] STRUCTURALLY IDENTICAL — float for float,
     including the incremental-cache counters — to the uninterrupted
     run;
   - fault-and-retry: a run whose worker faults stay within the retry
     budget is bit-identical to the fault-free run.

   Everything that can go wrong with a snapshot file (corruption,
   truncation, wrong inputs, wrong magic/version, missing file) must
   surface as a typed [Checkpoint.error] — never a crash and never a
   silently wrong resume. *)

module Engine = Core.Engine
module State = Core.State
module Checkpoint = Core.Checkpoint
module Faults = Nsutil.Faults

let check = Alcotest.check
let exact = Alcotest.float 0.0

(* ------------------------------------------------------------------ *)
(* Result equality, bit for bit (mirrors the engine-parity suite). *)

let check_round_equal i (a : Engine.round_record) (b : Engine.round_record) =
  let lbl f = Printf.sprintf "round %d %s" i f in
  check Alcotest.int (lbl "round") a.round b.round;
  check Alcotest.(array exact) (lbl "utilities") a.utilities b.utilities;
  check Alcotest.(array exact) (lbl "projected") a.projected b.projected;
  check Alcotest.(list int) (lbl "turned_on") a.turned_on b.turned_on;
  check Alcotest.(list int) (lbl "turned_off") a.turned_off b.turned_off;
  check Alcotest.int (lbl "secure_as") a.secure_as b.secure_as;
  check Alcotest.int (lbl "secure_isp") a.secure_isp b.secure_isp;
  check Alcotest.int (lbl "secure_stub") a.secure_stub b.secure_stub

let check_result_equal (a : Engine.result) (b : Engine.result) =
  check Alcotest.(array exact) "baseline" a.baseline b.baseline;
  check Alcotest.int "initial_secure_as" a.initial_secure_as b.initial_secure_as;
  check Alcotest.int "initial_secure_isp" a.initial_secure_isp b.initial_secure_isp;
  check Alcotest.int "round count" (List.length a.rounds) (List.length b.rounds);
  List.iteri (fun i (ra, rb) -> check_round_equal i ra rb)
    (List.combine a.rounds b.rounds);
  check Alcotest.bool "termination" true (a.termination = b.termination);
  check Alcotest.bool "final state" true (State.equal_full a.final b.final);
  check Alcotest.int "dest_recomputed" a.dest_recomputed b.dest_recomputed;
  check Alcotest.int "dest_reused" a.dest_reused b.dest_reused

(* Statics-store counters match too — meaningful for the resume
   differentials at workers = 1 (v2 snapshots restore the warm store),
   but NOT for fault-retry runs, where re-executed slices legitimately
   re-touch the store. *)
let check_statics_counters_equal (a : Engine.result) (b : Engine.result) =
  check Alcotest.int "statics_hits" a.statics_hits b.statics_hits;
  check Alcotest.int "statics_misses" a.statics_misses b.statics_misses;
  check Alcotest.int "statics_evictions" a.statics_evictions b.statics_evictions

(* ------------------------------------------------------------------ *)
(* Framing unit tests. *)

let with_temp f =
  let path = Filename.temp_file "sbgp_ckpt" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let digest_a = Scrypto.Sha256.digest_string "inputs A"
let digest_b = Scrypto.Sha256.digest_string "inputs B"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let expect_error name expected = function
  | Ok _ -> Alcotest.fail (name ^ ": expected a typed error")
  | Error e ->
      check Alcotest.bool
        (Printf.sprintf "%s: got %s" name (Checkpoint.error_to_string e))
        true (expected e)

let test_frame_roundtrip () =
  with_temp (fun path ->
      let payload = "the quick brown payload \x00\x01\x02" in
      Checkpoint.write ~path ~digest:digest_a ~round:42 payload;
      (match Checkpoint.load ~path ~digest:digest_a with
      | Ok f ->
          check Alcotest.int "round" 42 f.Checkpoint.round;
          check Alcotest.string "payload" payload f.Checkpoint.payload;
          check Alcotest.int "version" 3 f.Checkpoint.version;
          check Alcotest.bool "kind" true (f.Checkpoint.kind = Checkpoint.Engine)
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
      (* Overwrite with a later snapshot: load sees only the newest. *)
      Checkpoint.write ~path ~digest:digest_a ~round:43 "later";
      (match Checkpoint.load_exn ~path ~digest:digest_a with
      | { Checkpoint.round = 43; payload = "later"; _ } -> ()
      | f -> Alcotest.failf "unexpected (%d, %S)" f.Checkpoint.round f.Checkpoint.payload);
      check Alcotest.bool "no tmp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_load_missing_file () =
  expect_error "missing file"
    (function Checkpoint.Io _ -> true | _ -> false)
    (Checkpoint.load ~path:"/nonexistent/sbgp.snap" ~digest:digest_a)

let test_load_bad_magic () =
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:1 "payload";
      let bytes = Bytes.of_string (read_file path) in
      Bytes.set bytes 0 'X';
      write_file path (Bytes.to_string bytes);
      expect_error "bad magic"
        (function Checkpoint.Bad_magic -> true | _ -> false)
        (Checkpoint.load ~path ~digest:digest_a);
      (* And a file that is not a checkpoint at all. *)
      write_file path "!n 120\n0|1|-1\n";
      expect_error "not a checkpoint"
        (function Checkpoint.Bad_magic -> true | _ -> false)
        (Checkpoint.load ~path ~digest:digest_a))

let test_load_unsupported_version () =
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:1 "payload";
      let bytes = Bytes.of_string (read_file path) in
      (* Version is a big-endian u16 right after the 8-byte magic. *)
      Bytes.set bytes 8 '\xff';
      Bytes.set bytes 9 '\xff';
      write_file path (Bytes.to_string bytes);
      expect_error "future version"
        (function Checkpoint.Unsupported_version 65535 -> true | _ -> false)
        (Checkpoint.load ~path ~digest:digest_a))

let test_load_truncated () =
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:1 (String.make 256 'p');
      let full = read_file path in
      List.iter
        (fun keep ->
          write_file path (String.sub full 0 keep);
          expect_error
            (Printf.sprintf "truncated to %d bytes" keep)
            (function Checkpoint.Truncated -> true | _ -> false)
            (Checkpoint.load ~path ~digest:digest_a))
        [ String.length full - 1; String.length full - 40; 60 ])

let test_load_corrupt () =
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:7 (String.make 128 'q');
      let full = read_file path in
      (* Flip one bit in the payload region, and separately in the
         footer itself: both must fail closed. *)
      List.iter
        (fun pos ->
          let bytes = Bytes.of_string full in
          Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
          write_file path (Bytes.to_string bytes);
          expect_error
            (Printf.sprintf "bit flip at %d" pos)
            (function Checkpoint.Corrupt -> true | _ -> false)
            (Checkpoint.load ~path ~digest:digest_a))
        [ 60; String.length full - 5 ])

let test_load_config_mismatch () =
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:3 "payload";
      expect_error "different inputs"
        (function
          | Checkpoint.Config_mismatch { expected; found } ->
              expected <> found && String.length expected = 64
          | _ -> false)
        (Checkpoint.load ~path ~digest:digest_b))

let test_injected_corruption_detected () =
  (* The harness's own corruption site: a plan firing at
     checkpoint.corrupt damages the file after checksumming, and load
     must reject it as Corrupt. *)
  with_temp (fun path ->
      let faults = Faults.create ~rate:1.0 ~budget:1 ~seed:3 () in
      Checkpoint.write ~faults ~path ~digest:digest_a ~round:1 (String.make 64 'z');
      check Alcotest.int "corruption fired" 1 (Faults.fired faults);
      expect_error "deliberately corrupted"
        (function Checkpoint.Corrupt -> true | _ -> false)
        (Checkpoint.load ~path ~digest:digest_a);
      (* Budget spent: the next write is clean and loads fine. *)
      Checkpoint.write ~faults ~path ~digest:digest_a ~round:2 "clean";
      match Checkpoint.load_exn ~path ~digest:digest_a with
      | { Checkpoint.round = 2; payload = "clean"; _ } -> ()
      | f -> Alcotest.failf "unexpected (%d, %S)" f.Checkpoint.round f.Checkpoint.payload)

let test_churn_kind_roundtrip () =
  with_temp (fun path ->
      Checkpoint.write ~kind:Checkpoint.Churn ~path ~digest:digest_a ~round:5 "epochs";
      match Checkpoint.load_exn ~path ~digest:digest_a with
      | { Checkpoint.kind = Checkpoint.Churn; round = 5; payload = "epochs"; version = 3 }
        -> ()
      | f ->
          Alcotest.failf "unexpected %s frame (%d, %S)"
            (Checkpoint.kind_to_string f.Checkpoint.kind)
            f.Checkpoint.round f.Checkpoint.payload)

(* A version-1 frame, byte for byte as the pre-churn code wrote it:
   no kind field between version and digest. *)
let v1_frame ~digest ~round payload =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SBGPCKP1";
  Buffer.add_uint16_be buf 1;
  Buffer.add_string buf digest;
  Buffer.add_int32_be buf (Int32.of_int round);
  Buffer.add_int64_be buf (Int64.of_int (String.length payload));
  Buffer.add_string buf payload;
  let body = Buffer.contents buf in
  body ^ Scrypto.Sha256.digest_string body

let test_v1_frame_still_loads () =
  with_temp (fun path ->
      write_file path (v1_frame ~digest:digest_a ~round:9 "old payload");
      (match Checkpoint.load ~path ~digest:digest_a with
      | Ok f ->
          check Alcotest.int "round" 9 f.Checkpoint.round;
          check Alcotest.string "payload" "old payload" f.Checkpoint.payload;
          check Alcotest.int "version" 1 f.Checkpoint.version;
          check Alcotest.bool "v1 implies engine" true
            (f.Checkpoint.kind = Checkpoint.Engine)
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
      (* The v1 checks still fail closed. *)
      write_file path (v1_frame ~digest:digest_b ~round:9 "old payload");
      expect_error "v1 digest mismatch"
        (function Checkpoint.Config_mismatch _ -> true | _ -> false)
        (Checkpoint.load ~path ~digest:digest_a))

let test_unknown_kind_rejected () =
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:1 "payload";
      let bytes = Bytes.of_string (read_file path) in
      (* Kind is a big-endian u16 right after the version. *)
      Bytes.set bytes 10 '\x00';
      Bytes.set bytes 11 '\x07';
      write_file path (Bytes.to_string bytes);
      expect_error "unknown record kind"
        (function Checkpoint.Unsupported_kind 7 -> true | _ -> false)
        (Checkpoint.load ~path ~digest:digest_a))

let test_injected_io_failure () =
  (* Site checkpoint.io: the write raises a typed Io error before
     touching the filesystem, so the previous snapshot survives. *)
  with_temp (fun path ->
      Checkpoint.write ~path ~digest:digest_a ~round:1 "survivor";
      let faults =
        Faults.of_plan
          [ (Some "checkpoint.io", { Faults.seed = 3; rate = 1.0; budget = 1; after = 0 }) ]
      in
      (match Checkpoint.write ~faults ~path ~digest:digest_a ~round:2 "doomed" with
      | _ -> Alcotest.fail "expected the injected I/O fault to raise"
      | exception Checkpoint.Error (Checkpoint.Io _) -> ());
      check Alcotest.int "io fault fired" 1 (Faults.fired faults);
      match Checkpoint.load_exn ~path ~digest:digest_a with
      | { Checkpoint.round = 1; payload = "survivor"; _ } -> ()
      | f -> Alcotest.failf "unexpected (%d, %S)" f.Checkpoint.round f.Checkpoint.payload)

(* ------------------------------------------------------------------ *)
(* Engine-level differentials. *)

let n = 120

let build_inputs ?(theta = 0.05) ?(retries = 0) () =
  let params = { (Topology.Params.with_n Topology.Params.default n) with seed = 11 } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let early = built.cps @ Asgraph.Metrics.top_by_degree g 5 in
  let cfg = { Core.Config.default with workers = 1; retries; theta; theta_off = theta } in
  let statics = Bgp.Route_static.create g in
  let state = State.create g ~early in
  (cfg, statics, weight, state)

let clean_run () =
  let cfg, statics, weight, state = build_inputs () in
  Engine.run cfg statics ~weight ~state

let test_kill_and_resume_identical () =
  let reference = clean_run () in
  let rounds = Engine.rounds_run reference in
  check Alcotest.bool "multi-round scenario" true (rounds >= 2);
  (* Kill mid-round k+1 (for an early and the latest possible k): with
     workers = 1 the shot counter is sequential — n baseline shots,
     then n per round — so [after] lands the injection halfway through
     round k+1, after the round-k snapshot was written. *)
  List.iter
    (fun k ->
      with_temp (fun path ->
          let cfg, statics, weight, state = build_inputs () in
          let faults =
            Faults.create ~rate:1.0 ~budget:1 ~after:((n * (1 + k)) + (n / 2)) ~seed:1 ()
          in
          (match
             Engine.run
               ~checkpoint:{ Engine.path; every = 1 }
               ~faults cfg statics ~weight ~state
           with
          | _ -> Alcotest.fail "expected the injected fault to kill the run"
          | exception Parallel.Pool.Supervision_failed _ -> ());
          check Alcotest.int "exactly one injection" 1 (Faults.fired faults);
          check Alcotest.bool "a snapshot survives the crash" true (Sys.file_exists path);
          let cfg, statics, weight, state = build_inputs () in
          let resumed = Engine.resume ~from:path cfg statics ~weight ~state in
          check_result_equal reference resumed;
          check_statics_counters_equal reference resumed))
    (List.sort_uniq compare [ 1; rounds - 1 ])

let test_resume_from_completed_run_tail () =
  (* A run that completed while checkpointing leaves its last
     pre-termination snapshot behind; resuming from it replays the
     tail and lands on the identical result. *)
  let reference = clean_run () in
  with_temp (fun path ->
      let cfg, statics, weight, state = build_inputs () in
      let first =
        Engine.run ~checkpoint:{ Engine.path; every = 1 } cfg statics ~weight ~state
      in
      check_result_equal reference first;
      let cfg, statics, weight, state = build_inputs () in
      let resumed = Engine.resume ~from:path cfg statics ~weight ~state in
      check_result_equal reference resumed;
      check_statics_counters_equal reference resumed)

let test_faulted_retried_run_identical () =
  let reference = clean_run () in
  let cfg, statics, weight, state = build_inputs ~retries:2 () in
  let faults = Faults.create ~rate:0.01 ~budget:2 ~seed:13 () in
  let faulted = Engine.run ~faults cfg statics ~weight ~state in
  check Alcotest.bool "faults actually fired" true (Faults.fired faults > 0);
  check_result_equal reference faulted

let test_resume_rejects_corrupt_snapshot () =
  with_temp (fun path ->
      let cfg, statics, weight, state = build_inputs () in
      ignore (Engine.run ~checkpoint:{ Engine.path; every = 1 } cfg statics ~weight ~state);
      let full = read_file path in
      let bytes = Bytes.of_string full in
      let pos = String.length full / 2 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x10));
      write_file path (Bytes.to_string bytes);
      let cfg, statics, weight, state = build_inputs () in
      match Engine.resume ~from:path cfg statics ~weight ~state with
      | _ -> Alcotest.fail "corrupt snapshot must not resume"
      | exception Checkpoint.Error Checkpoint.Corrupt -> ()
      | exception Checkpoint.Error e ->
          Alcotest.failf "expected Corrupt, got %s" (Checkpoint.error_to_string e))

let test_resume_rejects_mismatched_inputs () =
  with_temp (fun path ->
      let cfg, statics, weight, state = build_inputs () in
      ignore (Engine.run ~checkpoint:{ Engine.path; every = 1 } cfg statics ~weight ~state);
      (* Same topology, different threshold: the digest must refuse. *)
      let cfg, statics, weight, state = build_inputs ~theta:0.3 () in
      match Engine.resume ~from:path cfg statics ~weight ~state with
      | _ -> Alcotest.fail "mismatched inputs must not resume"
      | exception Checkpoint.Error (Checkpoint.Config_mismatch _) -> ()
      | exception Checkpoint.Error e ->
          Alcotest.failf "expected Config_mismatch, got %s" (Checkpoint.error_to_string e))

let test_resume_rejects_missing_snapshot () =
  let cfg, statics, weight, state = build_inputs () in
  match Engine.resume ~from:"/nonexistent/sbgp.snap" cfg statics ~weight ~state with
  | _ -> Alcotest.fail "missing snapshot must not resume"
  | exception Checkpoint.Error (Checkpoint.Io _) -> ()

let test_input_digest_scope () =
  (* The digest covers everything that shapes results — and nothing
     that doesn't: worker count and retry budget must not pin a
     snapshot to the machine that wrote it. *)
  let cfg, statics, weight, state = build_inputs () in
  let d0 = Engine.input_digest cfg statics ~weight ~state in
  check Alcotest.int "raw sha256" 32 (String.length d0);
  check Alcotest.string "workers ignored"
    d0
    (Engine.input_digest { cfg with workers = 7 } statics ~weight ~state);
  check Alcotest.string "retries ignored"
    d0
    (Engine.input_digest { cfg with retries = 9 } statics ~weight ~state);
  check Alcotest.bool "theta matters" true
    (d0 <> Engine.input_digest { cfg with theta = 0.2 } statics ~weight ~state);
  let weight' = Array.copy weight in
  weight'.(0) <- weight'.(0) +. 1.0;
  check Alcotest.bool "weights matter" true
    (d0 <> Engine.input_digest cfg statics ~weight:weight' ~state)

let () =
  Alcotest.run "checkpoint"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip + atomic replace" `Quick test_frame_roundtrip;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
          Alcotest.test_case "bad magic" `Quick test_load_bad_magic;
          Alcotest.test_case "unsupported version" `Quick test_load_unsupported_version;
          Alcotest.test_case "truncated" `Quick test_load_truncated;
          Alcotest.test_case "corrupt" `Quick test_load_corrupt;
          Alcotest.test_case "config mismatch" `Quick test_load_config_mismatch;
          Alcotest.test_case "injected corruption detected" `Quick
            test_injected_corruption_detected;
          Alcotest.test_case "churn kind roundtrip" `Quick test_churn_kind_roundtrip;
          Alcotest.test_case "v1 frame still loads" `Quick test_v1_frame_still_loads;
          Alcotest.test_case "unknown kind rejected" `Quick test_unknown_kind_rejected;
          Alcotest.test_case "injected io failure" `Quick test_injected_io_failure;
        ] );
      ( "engine",
        [
          Alcotest.test_case "kill and resume = uninterrupted" `Quick
            test_kill_and_resume_identical;
          Alcotest.test_case "resume replays the tail" `Quick
            test_resume_from_completed_run_tail;
          Alcotest.test_case "faulted + retried = fault-free" `Quick
            test_faulted_retried_run_identical;
          Alcotest.test_case "rejects corrupt snapshot" `Quick
            test_resume_rejects_corrupt_snapshot;
          Alcotest.test_case "rejects mismatched inputs" `Quick
            test_resume_rejects_mismatched_inputs;
          Alcotest.test_case "rejects missing snapshot" `Quick
            test_resume_rejects_missing_snapshot;
          Alcotest.test_case "input_digest scope" `Quick test_input_digest_scope;
        ] );
    ]
