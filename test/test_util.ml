(* Tests for the nsutil substrate: PRNG, CSR, bitsets, statistics,
   bucket queue, counting sort, tables. *)

module Prng = Nsutil.Prng
module Csr = Nsutil.Csr
module Bitset = Nsutil.Bitset
module Stats = Nsutil.Stats
module Bucketq = Nsutil.Bucketq
module Order = Nsutil.Order
module Table = Nsutil.Table

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let rng = Prng.create ~seed:6 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check Alcotest.bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_int_roughly_uniform () =
  let rng = Prng.create ~seed:7 in
  let counts = Array.make 10 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let v = Prng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      check Alcotest.bool "bucket within 20% of expectation" true
        (abs (c - (draws / 10)) < draws / 50))
    counts

let test_prng_split_independent () =
  let rng = Prng.create ~seed:8 in
  let forked = Prng.split rng in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 rng = Prng.int64 forked then incr same
  done;
  check Alcotest.bool "split stream differs" true (!same < 4)

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:9 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_sample_without_replacement () =
  let rng = Prng.create ~seed:10 in
  List.iter
    (fun (k, from) ->
      let s = Prng.sample_without_replacement rng k ~from in
      check Alcotest.int "count" k (Array.length s);
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun v ->
          check Alcotest.bool "in range" true (v >= 0 && v < from);
          check Alcotest.bool "distinct" false (Hashtbl.mem tbl v);
          Hashtbl.add tbl v ())
        s)
    [ (5, 10); (10, 10); (3, 1000); (0, 4) ]

let test_prng_mix2_stable () =
  check Alcotest.int "mix2 deterministic" (Prng.mix2 3 7) (Prng.mix2 3 7);
  check Alcotest.bool "mix2 nonneg" true (Prng.mix2 1234 4321 >= 0);
  check Alcotest.bool "argument order matters" true (Prng.mix2 3 7 <> Prng.mix2 7 3)

let test_prng_pareto_positive () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 100 do
    check Alcotest.bool "pareto >= xmin" true (Prng.pareto rng ~alpha:2.0 ~xmin:1.5 >= 1.5)
  done

(* ------------------------------------------------------------------ *)
(* Csr *)

let test_csr_roundtrip () =
  let lists = [| [ 1; 2; 3 ]; []; [ 7 ]; [ 9; 8 ] |] in
  let csr = Csr.of_lists lists in
  check Alcotest.int "rows" 4 (Csr.rows csr);
  check Alcotest.int "total" 6 (Csr.total csr);
  Array.iteri
    (fun i expected -> check Alcotest.(list int) "row" expected (Csr.row_to_list csr i))
    lists

let test_csr_of_rev_lists () =
  let csr = Csr.of_rev_lists [| [ 3; 2; 1 ]; [ 5 ] |] in
  check Alcotest.(list int) "row reversed back" [ 1; 2; 3 ] (Csr.row_to_list csr 0);
  check Alcotest.(list int) "singleton" [ 5 ] (Csr.row_to_list csr 1)

let test_csr_queries () =
  let csr = Csr.of_lists [| [ 4; 5; 6 ]; [] |] in
  check Alcotest.int "row_length" 3 (Csr.row_length csr 0);
  check Alcotest.int "get" 5 (Csr.get csr 0 1);
  check Alcotest.bool "mem" true (Csr.mem_row csr 0 6);
  check Alcotest.bool "not mem" false (Csr.mem_row csr 0 7);
  check Alcotest.bool "exists" true (Csr.exists_row csr 0 (fun v -> v > 5));
  check Alcotest.bool "exists empty row" false (Csr.exists_row csr 1 (fun _ -> true));
  check Alcotest.int "fold sum" 15 (Csr.fold_row csr 0 ( + ) 0)

let csr_gen =
  QCheck2.Gen.(array_size (int_range 0 20) (list_size (int_range 0 8) (int_bound 100)))

let test_csr_qcheck =
  qtest "csr round-trips arbitrary rows" csr_gen (fun rows ->
      let csr = Csr.of_lists rows in
      Csr.rows csr = Array.length rows
      && Array.for_all
           (fun i -> Csr.row_to_list csr i = rows.(i))
           (Array.init (Array.length rows) (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  check Alcotest.int "empty cardinal" 0 (Bitset.cardinal b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  check Alcotest.int "cardinal" 3 (Bitset.cardinal b);
  check Alcotest.bool "mem" true (Bitset.mem b 63);
  Bitset.clear b 63;
  check Alcotest.bool "cleared" false (Bitset.mem b 63);
  check Alcotest.(list int) "to_list sorted" [ 0; 99 ] (Bitset.to_list b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "negative index" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem b 10))

let test_bitset_copy_independent () =
  let a = Bitset.create 16 in
  Bitset.set a 3;
  let b = Bitset.copy a in
  Bitset.set b 5;
  check Alcotest.bool "copy has original bit" true (Bitset.mem b 3);
  check Alcotest.bool "original unaffected" false (Bitset.mem a 5)

let test_bitset_equal_hash () =
  let a = Bitset.of_list 32 [ 1; 7; 31 ] in
  let b = Bitset.of_list 32 [ 31; 1; 7 ] in
  check Alcotest.bool "equal" true (Bitset.equal a b);
  check Alcotest.int "hash agrees" (Bitset.hash a) (Bitset.hash b);
  Bitset.set b 2;
  check Alcotest.bool "not equal after change" false (Bitset.equal a b)

let test_bitset_reset () =
  let b = Bitset.of_list 20 [ 0; 5; 19 ] in
  Bitset.reset b;
  check Alcotest.int "reset clears" 0 (Bitset.cardinal b)

let test_bitset_qcheck =
  qtest "bitset cardinal matches distinct inserts"
    QCheck2.Gen.(list_size (int_range 0 50) (int_bound 199))
    (fun elts ->
      let b = Bitset.of_list 200 elts in
      Bitset.cardinal b = List.length (List.sort_uniq compare elts))

(* ------------------------------------------------------------------ *)
(* Stats *)

let feq = Alcotest.float 1e-9

let test_stats_mean_median () =
  check feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check feq "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check feq "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  check feq "empty mean" 0.0 (Stats.mean [||]);
  check feq "empty median" 0.0 (Stats.median [||])

let test_stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check feq "p0" 10.0 (Stats.percentile a 0.0);
  check feq "p100" 50.0 (Stats.percentile a 100.0);
  check feq "p50" 30.0 (Stats.percentile a 50.0);
  check feq "p25 interpolates" 20.0 (Stats.percentile a 25.0)

let test_stats_stddev () =
  check feq "known stddev" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] *. sqrt (7.0 /. 8.0));
  check feq "constant" 0.0 (Stats.stddev [| 3.0; 3.0; 3.0 |])

let test_stats_histogram () =
  let counts = Stats.histogram ~bounds:[| 1.0; 2.0; 5.0 |] [| 0.5; 1.0; 1.5; 3.0; 9.0 |] in
  check Alcotest.(array int) "buckets" [| 2; 1; 1; 1 |] counts

let test_stats_ccdf () =
  let c = Stats.ccdf [| 1.0; 1.0; 2.0; 3.0 |] in
  check Alcotest.(list (pair (float 1e-9) (float 1e-9))) "ccdf"
    [ (1.0, 1.0); (2.0, 0.5); (3.0, 0.25) ] c

let test_stats_fraction () =
  check feq "fraction" 0.4 (Stats.fraction (fun x -> x > 3) [| 1; 2; 4; 5; 3 |]);
  check feq "empty" 0.0 (Stats.fraction (fun _ -> true) [||])

let test_stats_median_does_not_mutate () =
  let a = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median a);
  check Alcotest.(array (float 0.0)) "unchanged" [| 3.0; 1.0; 2.0 |] a

let test_stats_qcheck_percentile_bounds =
  qtest "percentile stays within min..max"
    QCheck2.Gen.(
      pair (list_size (int_range 1 50) (float_bound_inclusive 100.0)) (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let a = Array.of_list l in
      let v = Stats.percentile a p in
      v >= Stats.minimum a -. 1e-9 && v <= Stats.maximum a +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Bucketq *)

let test_bucketq_fifo_within_key () =
  let q = Bucketq.create ~max_key:10 in
  Bucketq.push q ~key:2 100;
  Bucketq.push q ~key:2 200;
  Bucketq.push q ~key:1 50;
  check Alcotest.(option (pair int int)) "min key first" (Some (1, 50)) (Bucketq.pop q);
  check Alcotest.(option (pair int int)) "fifo" (Some (2, 100)) (Bucketq.pop q);
  check Alcotest.(option (pair int int)) "fifo 2" (Some (2, 200)) (Bucketq.pop q);
  check Alcotest.(option (pair int int)) "empty" None (Bucketq.pop q)

let test_bucketq_monotone_push () =
  let q = Bucketq.create ~max_key:10 in
  Bucketq.push q ~key:3 1;
  ignore (Bucketq.pop q);
  Alcotest.check_raises "push below cursor"
    (Invalid_argument "Bucketq.push: non-monotone key") (fun () -> Bucketq.push q ~key:2 9)

let test_bucketq_interleaved () =
  let q = Bucketq.create ~max_key:20 in
  Bucketq.push q ~key:0 0;
  let out = ref [] in
  let rec drain () =
    match Bucketq.pop q with
    | None -> ()
    | Some (key, v) ->
        out := v :: !out;
        if key < 5 then Bucketq.push q ~key:(key + 1) (v + 1);
        drain ()
  in
  drain ();
  check Alcotest.(list int) "bfs chain" [ 0; 1; 2; 3; 4; 5 ] (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Order *)

let test_order_sorts_by_key () =
  let keys = [| 3; 1; 2; 1; 0 |] in
  let order = Order.by_small_key ~key:(fun i -> keys.(i)) ~max_key:3 5 in
  check Alcotest.(array int) "stable counting sort" [| 4; 1; 3; 2; 0 |] order

let test_order_out_of_range_last () =
  let keys = [| 1; -5; 0; 99 |] in
  let order = Order.by_small_key ~key:(fun i -> keys.(i)) ~max_key:2 4 in
  check Alcotest.(array int) "out of range last" [| 2; 0; 1; 3 |] order

let test_order_qcheck =
  qtest "order is a stable sort"
    QCheck2.Gen.(list_size (int_range 0 60) (int_bound 10))
    (fun keys ->
      let a = Array.of_list keys in
      let n = Array.length a in
      let order = Order.by_small_key ~key:(fun i -> a.(i)) ~max_key:10 n in
      let sorted_pairs = List.map (fun i -> (a.(i), i)) (Array.to_list order) in
      sorted_pairs = List.sort compare sorted_pairs)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_alignment () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.to_string t in
  check Alcotest.bool "has rule line" true (String.length s > 0 && String.contains s '-');
  check Alcotest.int "rows" 2 (Table.row_count t)

let test_table_csv_quoting () =
  let t = Table.create ~header:[ "x" ] in
  Table.add_row t [ "has,comma" ];
  Table.add_row t [ "has\"quote" ];
  let csv = Table.to_csv t in
  check Alcotest.bool "comma quoted" true
    (String.length csv > 0
    &&
    let lines = String.split_on_char '\n' csv in
    List.nth lines 1 = "\"has,comma\"" && List.nth lines 2 = "\"has\"\"quote\"")

let test_table_cells () =
  check Alcotest.string "int-like float" "42" (Table.cell_f 42.0);
  check Alcotest.string "pct" "12.5%" (Table.cell_pct 0.125)

(* ------------------------------------------------------------------ *)
(* Env *)

let test_env_parse_int_accepts () =
  let p s = Nsutil.Env.parse_int ~name:"SBGP_X" ~min:1 ~default:7 s in
  check Alcotest.(result int string) "unset -> default" (Ok 7) (p None);
  check Alcotest.(result int string) "plain int" (Ok 12) (p (Some "12"));
  check Alcotest.(result int string) "at the minimum" (Ok 1) (p (Some "1"));
  check Alcotest.(result int string) "whitespace trimmed" (Ok 3) (p (Some " 3 "))

let test_env_parse_int_rejects () =
  (* One check per malformed form: each must produce a warning that
     names the variable, never a silent fallback or a crash. *)
  List.iter
    (fun raw ->
      match Nsutil.Env.parse_int ~name:"SBGP_X" ~min:1 ~default:7 (Some raw) with
      | Ok v -> Alcotest.failf "%S accepted as %d" raw v
      | Error warning ->
          check Alcotest.bool
            (Printf.sprintf "warning for %S names the variable" raw)
            true
            (String.length warning > 0
            &&
            let rec find i =
              i + 6 <= String.length warning
              && (String.sub warning i 6 = "SBGP_X" || find (i + 1))
            in
            find 0))
    [ "0"; "-3"; "abc"; ""; "1.5"; "2x"; "9999999999999999999999" ]

let test_env_int_var_fallback () =
  (* End to end through the environment: malformed values fall back to
     the default (warning goes to stderr), valid ones are used. *)
  let read () = Nsutil.Env.int_var ~name:"SBGP_TEST_VAR" ~min:50 ~default:500 () in
  Unix.putenv "SBGP_TEST_VAR" "120";
  check Alcotest.int "valid value used" 120 (read ());
  List.iter
    (fun bad ->
      Unix.putenv "SBGP_TEST_VAR" bad;
      check Alcotest.int (Printf.sprintf "%S falls back" bad) 500 (read ()))
    [ "0"; "-3"; "abc"; "49"; "1.5" ];
  Unix.putenv "SBGP_TEST_VAR" ""

(* ------------------------------------------------------------------ *)
(* Faults *)

module Faults = Nsutil.Faults

let test_faults_deterministic () =
  (* Two plans with the same parameters fire on exactly the same shots
     (serial execution). *)
  let schedule () =
    let t = Faults.create ~rate:0.3 ~budget:1000 ~seed:42 () in
    List.init 200 (fun _ -> Option.is_some (Faults.fires t "site"))
  in
  check Alcotest.(list bool) "same schedule" (schedule ()) (schedule ());
  check Alcotest.bool "some shots fire" true (List.exists Fun.id (schedule ()));
  check Alcotest.bool "some shots pass" true (List.exists not (schedule ()))

let test_faults_budget_bound () =
  let t = Faults.create ~rate:1.0 ~budget:3 ~seed:1 () in
  let fired = ref 0 in
  for _ = 1 to 100 do
    if Option.is_some (Faults.fires t "s") then incr fired
  done;
  check Alcotest.int "stops at the budget" 3 !fired;
  check Alcotest.int "fired counter agrees" 3 (Faults.fired t);
  check Alcotest.int "all shots counted" 100 (Faults.shots t)

let test_faults_after_arming () =
  let t = Faults.create ~rate:1.0 ~budget:100 ~after:10 ~seed:1 () in
  let fires = List.init 30 (fun _ -> Option.is_some (Faults.fires t "s")) in
  List.iteri
    (fun i f ->
      check Alcotest.bool
        (Printf.sprintf "shot %d %s" i (if i < 10 then "disarmed" else "armed"))
        (i >= 10) f)
    fires

let test_faults_trip_raises () =
  let t = Faults.create ~rate:1.0 ~budget:1 ~seed:9 () in
  (match Faults.trip t "worker" with
  | exception Faults.Injected { site = "worker"; shot = 0 } -> ()
  | exception Faults.Injected { site; shot } ->
      Alcotest.failf "unexpected injection at %s/%d" site shot
  | () -> Alcotest.fail "expected an injection");
  Faults.trip t "worker" (* budget spent: must not raise *)

let test_faults_parse_spec () =
  let ok s expected =
    match Faults.parse_spec s with
    | Ok spec -> check Alcotest.bool (Printf.sprintf "%S parses" s) true (spec = expected)
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  ok "7" { Faults.seed = 7; rate = 1.0; budget = 1; after = 0 };
  ok "7:0.5" { Faults.seed = 7; rate = 0.5; budget = 1; after = 0 };
  ok "7:0.5:3" { Faults.seed = 7; rate = 0.5; budget = 3; after = 0 };
  ok "7:0.5:3:100" { Faults.seed = 7; rate = 0.5; budget = 3; after = 100 };
  List.iter
    (fun s ->
      match Faults.parse_spec s with
      | Ok _ -> Alcotest.failf "%S accepted" s
      | Error e -> check Alcotest.bool "message non-empty" true (String.length e > 0))
    [ ""; "x"; "7:"; "7:2.0"; "7:-0.1"; "7:0.5:-1"; "7:0.5:1:-2"; "7:0.5:1:2:3" ]

let test_faults_parse_plan () =
  (* Multi-site grammar: [site=]seed:rate[:budget[:after]], semicolons
     between cells, at most one default (unscoped) cell. *)
  (match Faults.parse_plan "3:0.5;pool.hang=7:1.0:1:40" with
  | Ok
      [
        (None, { Faults.seed = 3; rate = 0.5; budget = 1; after = 0 });
        (Some "pool.hang", { Faults.seed = 7; rate = 1.0; budget = 1; after = 40 });
      ] ->
      ()
  | Ok cells -> Alcotest.failf "unexpected plan shape (%d cells)" (List.length cells)
  | Error e -> Alcotest.failf "plan rejected: %s" e);
  List.iter
    (fun s ->
      match Faults.parse_plan s with
      | Ok _ -> Alcotest.failf "%S accepted" s
      | Error e -> check Alcotest.bool "message non-empty" true (String.length e > 0))
    [ ""; ";;"; "=7"; "pool.hang="; "pool.hang=oops"; "3:0.5;bad" ]

let test_faults_scoped_only_sites () =
  (* The default cell arms every legacy and ad-hoc site, but NEVER the
     destructive post-legacy sites — those fire only when named, so an
     old single-cell plan's shot schedule cannot shift. *)
  let t = Faults.of_plan [ (None, { Faults.seed = 1; rate = 1.0; budget = 8; after = 0 }) ] in
  check Alcotest.bool "ad-hoc site uses the default cell" true
    (Option.is_some (Faults.fires t "anything"));
  List.iter
    (fun site ->
      check Alcotest.bool (site ^ " never falls back") false
        (Option.is_some (Faults.fires t site)))
    [ "pool.hang"; "checkpoint.io"; "statics.repair"; "evolve.delta" ];
  (* A scoped cell fires for its site and nothing else. *)
  let s =
    Faults.of_plan [ (Some "pool.hang", { Faults.seed = 1; rate = 1.0; budget = 1; after = 0 }) ]
  in
  check Alcotest.bool "other sites silent" false (Option.is_some (Faults.fires s "pool.task"));
  check Alcotest.bool "named site fires" true (Option.is_some (Faults.fires s "pool.hang"))

let test_faults_unknown_site_warns () =
  let captured = ref [] in
  Nsutil.Warnings.set_handler (fun m -> captured := m :: !captured);
  Fun.protect
    ~finally:(fun () ->
      Nsutil.Warnings.set_handler prerr_endline;
      Unix.putenv "SBGP_FAULTS" "")
    (fun () ->
      Unix.putenv "SBGP_FAULTS" "nosuchsite=1:1.0";
      (match Faults.of_env () with
      | Some _ -> ()
      | None -> Alcotest.fail "a typo'd site must still build the plan");
      check Alcotest.bool "warned about the unknown site" true
        (List.exists
           (fun m ->
             let has sub =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
               in
               go 0
             in
             has "unknown fault site" && has "nosuchsite")
           !captured))

let test_faults_of_env () =
  Unix.putenv "SBGP_FAULTS" "5:1.0:2";
  (match Faults.of_env () with
  | Some t ->
      check Alcotest.int "fresh plan, no shots" 0 (Faults.shots t);
      ignore (Faults.fires t "s");
      ignore (Faults.fires t "s");
      check Alcotest.int "budget honoured" 2 (Faults.fired t)
  | None -> Alcotest.fail "expected a plan from SBGP_FAULTS");
  Unix.putenv "SBGP_FAULTS" "not-a-spec";
  (match Faults.of_env () with
  | None -> ()
  | Some _ -> Alcotest.fail "malformed spec must yield None");
  Unix.putenv "SBGP_FAULTS" ""

(* ------------------------------------------------------------------ *)
(* I32: compact int32 vectors. *)

let test_i32_roundtrip () =
  let src = [| 0; 1; 5; 1073741823; -1073741824; -7 |] in
  let v = Nsutil.I32.of_array src in
  check Alcotest.int "length" (Array.length src) (Nsutil.I32.length v);
  check Alcotest.(array int) "to_array round-trips" src (Nsutil.I32.to_array v);
  Array.iteri (fun i x -> check Alcotest.int "get" x (Nsutil.I32.get v i)) src;
  Nsutil.I32.set v 2 42;
  check Alcotest.int "set visible" 42 (Nsutil.I32.get v 2)

let test_i32_fill_blit_sub () =
  let v = Nsutil.I32.create 8 in
  Nsutil.I32.fill v (-1);
  check Alcotest.(array int) "fill" (Array.make 8 (-1)) (Nsutil.I32.to_array v);
  Nsutil.I32.blit_array [| 10; 20; 30 |] v ~pos:2;
  check
    Alcotest.(array int)
    "blit_array at pos"
    [| -1; -1; 10; 20; 30; -1; -1; -1 |]
    (Nsutil.I32.to_array v);
  check
    Alcotest.(array int)
    "sub_to_array" [| 20; 30; -1 |]
    (Nsutil.I32.sub_to_array v ~pos:3 ~len:3)

let test_i32_iter_bytes_equal () =
  let v = Nsutil.I32.of_array [| 3; 1; 4; 1; 5 |] in
  check Alcotest.int "byte_size = 4 * length" 20 (Nsutil.I32.byte_size v);
  let sum = ref 0 in
  Nsutil.I32.iter (fun x -> sum := !sum + x) v;
  check Alcotest.int "iter visits all" 14 !sum;
  let idx_dot = ref 0 in
  Nsutil.I32.iteri (fun i x -> idx_dot := !idx_dot + (i * x)) v;
  check Alcotest.int "iteri indices" 32 !idx_dot;
  let w = Nsutil.I32.of_array (Nsutil.I32.to_array v) in
  check Alcotest.bool "equal copies" true (Nsutil.I32.equal v w);
  Nsutil.I32.set w 4 6;
  check Alcotest.bool "content difference detected" false (Nsutil.I32.equal v w);
  check Alcotest.bool "length difference detected" false
    (Nsutil.I32.equal v (Nsutil.I32.create 4))

let test_i32_qcheck_roundtrip =
  qtest "i32 of_array/to_array round-trips"
    QCheck2.Gen.(array_size (int_range 0 64) (int_range (-1000000) 1000000))
    (fun src -> Nsutil.I32.to_array (Nsutil.I32.of_array src) = src)

let () =
  Alcotest.run "nsutil"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "roughly uniform" `Quick test_prng_int_roughly_uniform;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sampling without replacement" `Quick
            test_prng_sample_without_replacement;
          Alcotest.test_case "mix2 stable" `Quick test_prng_mix2_stable;
          Alcotest.test_case "pareto positive" `Quick test_prng_pareto_positive;
        ] );
      ( "csr",
        [
          Alcotest.test_case "roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "of_rev_lists" `Quick test_csr_of_rev_lists;
          Alcotest.test_case "queries" `Quick test_csr_queries;
          test_csr_qcheck;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          Alcotest.test_case "equal and hash" `Quick test_bitset_equal_hash;
          Alcotest.test_case "reset" `Quick test_bitset_reset;
          test_bitset_qcheck;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and median" `Quick test_stats_mean_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "ccdf" `Quick test_stats_ccdf;
          Alcotest.test_case "fraction" `Quick test_stats_fraction;
          Alcotest.test_case "median does not mutate" `Quick test_stats_median_does_not_mutate;
          test_stats_qcheck_percentile_bounds;
        ] );
      ( "bucketq",
        [
          Alcotest.test_case "fifo within key" `Quick test_bucketq_fifo_within_key;
          Alcotest.test_case "monotone push enforced" `Quick test_bucketq_monotone_push;
          Alcotest.test_case "interleaved push/pop" `Quick test_bucketq_interleaved;
        ] );
      ( "order",
        [
          Alcotest.test_case "sorts by key" `Quick test_order_sorts_by_key;
          Alcotest.test_case "out of range last" `Quick test_order_out_of_range_last;
          test_order_qcheck;
        ] );
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "csv quoting" `Quick test_table_csv_quoting;
          Alcotest.test_case "cell renderers" `Quick test_table_cells;
        ] );
      ( "env",
        [
          Alcotest.test_case "parse_int accepts" `Quick test_env_parse_int_accepts;
          Alcotest.test_case "parse_int rejects" `Quick test_env_parse_int_rejects;
          Alcotest.test_case "int_var falls back" `Quick test_env_int_var_fallback;
        ] );
      ( "i32",
        [
          Alcotest.test_case "roundtrip and get/set" `Quick test_i32_roundtrip;
          Alcotest.test_case "fill, blit, sub" `Quick test_i32_fill_blit_sub;
          Alcotest.test_case "iter, byte_size, equal" `Quick test_i32_iter_bytes_equal;
          test_i32_qcheck_roundtrip;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_faults_deterministic;
          Alcotest.test_case "budget bound" `Quick test_faults_budget_bound;
          Alcotest.test_case "after arming" `Quick test_faults_after_arming;
          Alcotest.test_case "trip raises" `Quick test_faults_trip_raises;
          Alcotest.test_case "parse_spec" `Quick test_faults_parse_spec;
          Alcotest.test_case "parse_plan" `Quick test_faults_parse_plan;
          Alcotest.test_case "scoped-only sites" `Quick test_faults_scoped_only_sites;
          Alcotest.test_case "unknown site warns" `Quick test_faults_unknown_site_warns;
          Alcotest.test_case "of_env" `Quick test_faults_of_env;
        ] );
    ]
