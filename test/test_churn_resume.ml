(* Kill/resume differentials for the checkpointable churn runner
   (Experiments.Evolution_run): an evolution run killed at an epoch
   boundary OR in the middle of an epoch's engine run, then resumed
   from its last snapshot, must produce an outcome float-identical to
   the uninterrupted run — summaries (minus the wall-clock diagnostic),
   final deployment state and final graph — at any worker count.

   Statics hit/miss counters are compared at workers = 1 only: they
   are best-effort under concurrent workers (racy increments under
   dynamic scheduling), documented as diagnostics.

   The kill is an injected worker fault (site [pool.task], scoped so
   the shot never leaks into other sites) with a zero retry budget:
   the first shot raises [Pool.Supervision_failed] out of whatever
   sweep or rebase it lands in, leaving the snapshot file at whatever
   frame was written last — a mid-epoch frame (engine progress wrapped
   in churn context) or an epoch-boundary frame, depending on where
   the shot fell. The property randomizes that kill point.

   The case count comes from SBGP_CHURN_RESUME_COUNT (default 6). *)

module Evolution_run = Experiments.Evolution_run
module State = Core.State
module Checkpoint = Core.Checkpoint
module Pool = Parallel.Pool
module Faults = Nsutil.Faults
module Gen = QCheck2.Gen

let check = Alcotest.check
let cases = Nsutil.Env.int_var ~name:"SBGP_CHURN_RESUME_COUNT" ~min:1 ~default:6 ()

(* ------------------------------------------------------------------ *)
(* Shared inputs: a small synthetic topology and a short evolution. *)

let n = 120

let inputs =
  lazy
    (let p = { (Topology.Params.with_n Topology.Params.default n) with seed = 11 } in
     let built = Topology.Gen.generate p in
     let early = built.cps @ Asgraph.Metrics.top_by_degree built.graph 5 in
     (built.graph, early))

let params = { Evolution_run.default_params with epochs = 2; growth_fraction = 0.1 }

let cfg workers =
  {
    Core.Config.default with
    workers;
    retries = 0;
    theta = 0.05;
    theta_off = 0.05;
  }

(* ------------------------------------------------------------------ *)
(* Outcome equality, float for float. [counters] additionally compares
   the per-epoch statics-miss diagnostic (workers = 1 only). *)

let check_summary_equal ~counters i (a : Evolution_run.epoch_summary)
    (b : Evolution_run.epoch_summary) =
  let lbl f = Printf.sprintf "epoch %d %s" i f in
  check Alcotest.int (lbl "e_epoch") a.e_epoch b.e_epoch;
  check Alcotest.int (lbl "e_nodes") a.e_nodes b.e_nodes;
  check (Alcotest.float 0.0) (lbl "e_secure_as") a.e_secure_as b.e_secure_as;
  check (Alcotest.float 0.0) (lbl "e_secure_isp") a.e_secure_isp b.e_secure_isp;
  check
    Alcotest.(option (pair int int))
    (lbl "e_new_on_secure") a.e_new_on_secure b.e_new_on_secure;
  check Alcotest.int (lbl "e_rounds") a.e_rounds b.e_rounds;
  check Alcotest.int (lbl "e_demotions") a.e_demotions b.e_demotions;
  if counters then
    check Alcotest.int (lbl "e_statics_misses") a.e_statics_misses b.e_statics_misses

(* Graphs restored from a snapshot list their edges in a different
   order than the in-memory grown graph (the text format round-trip
   does not preserve it); equality is over the canonical edge set and
   the CP marking, which is what determines behavior. *)
let check_graph_equal a b =
  check Alcotest.int "graph size" (Asgraph.Graph.n a) (Asgraph.Graph.n b);
  check Alcotest.bool "graph edges" true
    (List.sort compare (Asgraph.Graph.edges a)
    = List.sort compare (Asgraph.Graph.edges b));
  check Alcotest.(list int) "graph cps"
    (List.sort compare (Asgraph.Graph.nodes_of_class a Asgraph.As_class.Cp))
    (List.sort compare (Asgraph.Graph.nodes_of_class b Asgraph.As_class.Cp))

let check_outcome_equal ~counters (a : Evolution_run.outcome)
    (b : Evolution_run.outcome) =
  check Alcotest.int "summary count" (List.length a.summaries) (List.length b.summaries);
  List.iteri
    (fun i (sa, sb) -> check_summary_equal ~counters i sa sb)
    (List.combine a.summaries b.summaries);
  check Alcotest.bool "final state" true (State.equal_full a.final b.final);
  check_graph_equal a.final_graph b.final_graph

let baseline_for = Hashtbl.create 4

let baseline workers =
  match Hashtbl.find_opt baseline_for workers with
  | Some o -> o
  | None ->
      let g, early = Lazy.force inputs in
      let o = Evolution_run.run params (cfg workers) g ~early in
      Hashtbl.add baseline_for workers o;
      o

let with_temp f =
  let path = Filename.temp_file "sbgp_churn" ".snap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Deterministic boundary resume: after a COMPLETED run the snapshot
   file still holds the last epoch-boundary frame; resuming it re-runs
   the final epoch and must reproduce the baseline. *)

let test_boundary_resume workers () =
  let g, early = Lazy.force inputs in
  with_temp (fun path ->
      let checkpoint = { Evolution_run.path; every_rounds = 0 } in
      let full = Evolution_run.run ~checkpoint params (cfg workers) g ~early in
      check_outcome_equal ~counters:(workers = 1) (baseline workers) full;
      let resumed = Evolution_run.resume ~from:path params (cfg workers) g ~early in
      check_outcome_equal ~counters:(workers = 1) (baseline workers) resumed)

(* ------------------------------------------------------------------ *)
(* Randomized kill points: an injected fault kills the run after a
   random number of sweep shots; mid-epoch frames (every round) mean
   the last snapshot lands inside or between epochs depending on where
   the shot fell. Resume must match the uninterrupted baseline. *)

let kill_plan ~after =
  Faults.of_plan
    [ (Some "pool.task", { Faults.seed = 13; rate = 1.0; budget = 1; after }) ]

let test_kill_and_resume workers =
  let name = Printf.sprintf "kill anywhere, resume identical (workers=%d)" workers in
  let gen = Gen.int_range 0 150 in
  let prop after =
    let g, early = Lazy.force inputs in
    with_temp (fun path ->
        let checkpoint = { Evolution_run.path; every_rounds = 1 } in
        let outcome =
          match
            Evolution_run.run ~checkpoint ~faults:(kill_plan ~after) params
              (cfg workers) g ~early
          with
          | o ->
              (* The budget outlived the run (kill point past its
                 end): nothing was interrupted, the outcome stands. *)
              o
          | exception Pool.Supervision_failed _ ->
              (* [temp_file] pre-creates the file empty; only a
                 non-empty file holds a complete frame (writes are
                 atomic whole-frame replacements). *)
              let have_snapshot =
                Sys.file_exists path && (Unix.stat path).Unix.st_size > 0
              in
              if have_snapshot then
                Evolution_run.resume ~from:path params (cfg workers) g ~early
              else
                (* Killed before the first snapshot: start over, like
                   an operator without a snapshot would. *)
                Evolution_run.run params (cfg workers) g ~early
        in
        check_outcome_equal ~counters:(workers = 1) (baseline workers) outcome;
        true)
  in
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:cases gen prop)

(* ------------------------------------------------------------------ *)
(* Typed rejections: wrong frame kind and wrong inputs never resume. *)

let test_engine_frame_rejected () =
  let g, early = Lazy.force inputs in
  with_temp (fun path ->
      let digest = Evolution_run.input_digest params (cfg 1) g ~early in
      Checkpoint.write ~kind:Checkpoint.Engine ~path ~digest ~round:1 "not churn";
      match Evolution_run.resume ~from:path params (cfg 1) g ~early with
      | _ -> Alcotest.fail "expected Unsupported_kind"
      | exception Checkpoint.Error (Checkpoint.Unsupported_kind 0) -> ())

let test_params_mismatch_rejected () =
  let g, early = Lazy.force inputs in
  with_temp (fun path ->
      let checkpoint = { Evolution_run.path; every_rounds = 0 } in
      ignore (Evolution_run.run ~checkpoint params (cfg 1) g ~early);
      let other = { params with growth_seed = params.growth_seed + 1 } in
      match Evolution_run.resume ~from:path other (cfg 1) g ~early with
      | _ -> Alcotest.fail "expected Config_mismatch"
      | exception Checkpoint.Error (Checkpoint.Config_mismatch _) -> ())

let () =
  Alcotest.run "churn_resume"
    [
      ( "boundary",
        [
          Alcotest.test_case "completed-run tail (workers=1)" `Quick
            (test_boundary_resume 1);
          Alcotest.test_case "completed-run tail (workers=4)" `Quick
            (test_boundary_resume 4);
        ] );
      ("kill", [ test_kill_and_resume 1; test_kill_and_resume 4 ]);
      ( "rejection",
        [
          Alcotest.test_case "engine frame rejected" `Quick test_engine_frame_rejected;
          Alcotest.test_case "params mismatch rejected" `Quick
            test_params_mismatch_rejected;
        ] );
    ]
