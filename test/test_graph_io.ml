(* Tests for the graph loaders: the streaming binary (.sbg) format on
   a 36K-scale fixture (round-trip identity plus every typed error
   path) and the CAIDA/Cyclops importer (ASN remapping, CP marking,
   malformed-record accounting). *)

module Graph = Asgraph.Graph
module As_class = Asgraph.As_class
module Graph_io = Asgraph.Graph_io

let check = Alcotest.check

(* A 36K-node paper-scale fixture, built directly (no generator run:
   the point is the serialization path, not topology statistics).
   Providers all sit below 1000, so nodes >= 1000 have no customers
   and a few of them can carry the CP marker. *)
let big_n = 36_000

let big_fixture =
  lazy
    (let cp_edges = ref [] in
     for i = 1 to big_n - 1 do
       let p1 = i * 7919 mod min i 1000 in
       cp_edges := (p1, i) :: !cp_edges;
       if i land 3 = 0 then begin
         let p2 = i * 104729 mod min i 1000 in
         if p2 <> p1 then cp_edges := (p2, i) :: !cp_edges
       end
     done;
     (* Peers live in [2000, 3000): both endpoints sit above every
        provider index, so no pair can also carry a customer-provider
        annotation. *)
     let peer_edges = ref [] in
     for i = 0 to 499 do
       peer_edges := (2000 + i, 2500 + i) :: !peer_edges
     done;
     Graph.build ~n:big_n ~cp_edges:!cp_edges ~peer_edges:!peer_edges
       ~cps:[ 1000; 1001; 1002; 1003; 1004 ])

let with_tmp f =
  let path = Filename.temp_file "sbgp_test_graph" ".sbg" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_bin_roundtrip_36k () =
  let g = Lazy.force big_fixture in
  with_tmp (fun path ->
      Graph_io.save_bin g path;
      let g' = Graph_io.load_bin path in
      check Alcotest.int "nodes" (Graph.n g) (Graph.n g');
      check Alcotest.int "cp edges" (Graph.cp_edge_count g) (Graph.cp_edge_count g');
      check Alcotest.int "peer edges" (Graph.peer_edge_count g) (Graph.peer_edge_count g');
      check Alcotest.int "cps" (Graph.count_class g As_class.Cp)
        (Graph.count_class g' As_class.Cp);
      (* The text serialization is canonical (sorted adjacency), so
         string equality is structural identity of the whole graph. *)
      check Alcotest.bool "identical serialization" true
        (String.equal (Graph_io.to_string g) (Graph_io.to_string g')))

let small () =
  Graph.build ~n:6
    ~cp_edges:[ (0, 1); (0, 2); (1, 4); (2, 4); (2, 5) ]
    ~peer_edges:[ (0, 3); (1, 2) ]
    ~cps:[ 3 ]

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let expect_bin_error what f =
  match f () with
  | (_ : Graph.t) -> Alcotest.failf "%s: expected Bin_error" what
  | exception Graph_io.Bin_error { path = _; message } ->
      if message = "" then Alcotest.failf "%s: empty Bin_error message" what

let test_bin_truncated () =
  let g = small () in
  with_tmp (fun path ->
      Graph_io.save_bin g path;
      let full = read_bytes path in
      (* Every strict prefix must fail typed, never crash or return a
         graph: mid-magic, mid-header, mid-edge-record, and the whole
         file minus the end marker. *)
      List.iter
        (fun len ->
          write_bytes path (String.sub full 0 len);
          expect_bin_error
            (Printf.sprintf "prefix of %d bytes" len)
            (fun () -> Graph_io.load_bin path))
        [ 0; 4; 8; 10; 20; 30; String.length full - 4; String.length full - 1 ])

let test_bin_bad_magic () =
  let g = small () in
  with_tmp (fun path ->
      Graph_io.save_bin g path;
      let full = read_bytes path in
      write_bytes path ("XXGPbin9" ^ String.sub full 8 (String.length full - 8));
      expect_bin_error "bad magic" (fun () -> Graph_io.load_bin path))

let test_bin_bad_end_marker () =
  let g = small () in
  with_tmp (fun path ->
      Graph_io.save_bin g path;
      let full = Bytes.of_string (read_bytes path) in
      Bytes.set full (Bytes.length full - 1) '\xff';
      write_bytes path (Bytes.to_string full);
      expect_bin_error "bad end marker" (fun () -> Graph_io.load_bin path))

let test_bin_trailing_bytes () =
  let g = small () in
  with_tmp (fun path ->
      Graph_io.save_bin g path;
      write_bytes path (read_bytes path ^ "x");
      expect_bin_error "trailing bytes" (fun () -> Graph_io.load_bin path))

let test_bin_malformed_records () =
  (* Hand-framed files: the loader must reject out-of-range node ids
     and negative counts before ever reaching Graph.build. *)
  let frame ints =
    let buf = Buffer.create 64 in
    Buffer.add_string buf "SBGPbin1";
    List.iter
      (fun v ->
        Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
        Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
        Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
        Buffer.add_char buf (Char.chr (v land 0xff)))
      ints;
    Buffer.contents buf
  in
  let marker = 0x53424727 in
  with_tmp (fun path ->
      (* n=2, one cp edge whose endpoint 5 is out of [0, 2). *)
      write_bytes path (frame [ 2; 0; 1; 0; 5; 0; marker ]);
      expect_bin_error "node out of range" (fun () -> Graph_io.load_bin path);
      (* negative cp-edge count in the header *)
      write_bytes path (frame [ 2; 0; -1; 0; marker ]);
      expect_bin_error "negative count" (fun () -> Graph_io.load_bin path);
      (* structurally valid frame, graph-invalid content: a
         customer-provider self-cycle via duplicate reversed edges. *)
      write_bytes path (frame [ 2; 0; 2; 0; 0; 1; 1; 0; marker ]);
      expect_bin_error "malformed graph" (fun () -> Graph_io.load_bin path))

let caida_snapshot =
  String.concat "\n"
    [
      "# a Cyclops-style snapshot with arbitrary ASNs";
      "100|200|-1";
      "200|300|-1";
      "100|400|0";
      "7|7|-1";          (* self-loop: skipped *)
      "100|200|-1";      (* duplicate: folded, not skipped *)
      "100|400|-1";      (* conflicts with the peer record: skipped *)
      "abc|def|xyz";     (* malformed fields: skipped *)
      "1|2";             (* missing relation column: skipped *)
      "";
    ]

let test_of_caida () =
  let imp = Graph_io.of_caida ~cps:[ 300; 999 ] caida_snapshot in
  (* 100, 200, 300, 400 and the interned self-loop ASN 7. *)
  check Alcotest.int "nodes" 5 (Graph.n imp.graph);
  check Alcotest.int "skipped" 4 imp.skipped;
  check Alcotest.int "cp edges" 2 (Graph.cp_edge_count imp.graph);
  check Alcotest.int "peer edges" 1 (Graph.peer_edge_count imp.graph);
  (* Dense remap preserves first-appearance order. *)
  check Alcotest.(array int) "asn_of_node" [| 100; 200; 300; 400; 7 |] imp.asn_of_node;
  let node asn = Hashtbl.find imp.node_of_asn asn in
  check Alcotest.(option string) "provider edge" (Some "customer")
    (Option.map Graph.rel_to_string (Graph.rel imp.graph (node 100) (node 200)));
  (* ASN 300 has no customers, so its CP marker sticks; 999 is not in
     the file and is ignored. *)
  check Alcotest.string "cp marked" "cp" (As_class.to_string (Graph.klass imp.graph (node 300)));
  check Alcotest.int "one cp" 1 (Graph.count_class imp.graph As_class.Cp)

let test_of_caida_cp_with_customers () =
  (* A CP candidate that has customers loses the marker (the node
     stays), mirroring the paper's Appendix D cleanup. *)
  let imp = Graph_io.of_caida ~cps:[ 100 ] "100|200|-1\n200|300|-1" in
  check Alcotest.int "no cps" 0 (Graph.count_class imp.graph As_class.Cp);
  check Alcotest.int "nodes kept" 3 (Graph.n imp.graph)

let test_load_caida () =
  let path = Filename.temp_file "sbgp_test_caida" ".asrel" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_bytes path caida_snapshot;
      let imp = Graph_io.load_caida ~cps:[ 300 ] path in
      check Alcotest.int "nodes" 5 (Graph.n imp.graph);
      check Alcotest.int "skipped" 4 imp.skipped)

let () =
  Alcotest.run "graph_io"
    [
      ( "binary",
        [
          Alcotest.test_case "36K round-trip identity" `Quick test_bin_roundtrip_36k;
          Alcotest.test_case "truncated prefixes" `Quick test_bin_truncated;
          Alcotest.test_case "bad magic" `Quick test_bin_bad_magic;
          Alcotest.test_case "bad end marker" `Quick test_bin_bad_end_marker;
          Alcotest.test_case "trailing bytes" `Quick test_bin_trailing_bytes;
          Alcotest.test_case "malformed records" `Quick test_bin_malformed_records;
        ] );
      ( "caida",
        [
          Alcotest.test_case "import remaps and accounts" `Quick test_of_caida;
          Alcotest.test_case "cp with customers unmarked" `Quick
            test_of_caida_cp_with_customers;
          Alcotest.test_case "load from file" `Quick test_load_caida;
        ] );
    ]
