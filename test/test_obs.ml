(* The observability layer (Nsobs): metrics registry semantics,
   span recording across domains, exporter well-formedness — and the
   differential guarantee the whole design rests on: instrumentation
   enabled or disabled, an engine run's results are bit-identical. *)

module Metrics = Nsobs.Metrics
module Trace = Nsobs.Trace
module Jsonv = Nsobs.Jsonv

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = (i + nn <= nh) && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* Each test leaves the collectors as it found them: off and empty. *)
let scrubbed f () =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Metrics.set_enabled false;
      Trace.reset ();
      Metrics.reset ();
      Nsobs.Journal.close ();
      Nsobs.Journal.reset ();
      Nsobs.Log.reset_sink ();
      Nsobs.Log.set_level Nsobs.Log.Warn)
    f

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_counter_basics () =
  Metrics.set_enabled true;
  let c = Metrics.counter "obs_test_total" in
  Metrics.inc c;
  Metrics.add c 4;
  check Alcotest.int "counter value" 5 (Metrics.counter_value c);
  (* Creation is idempotent by name: the second handle is the same
     underlying counter. *)
  let c' = Metrics.counter "obs_test_total" in
  Metrics.inc c';
  check Alcotest.int "shared by name" 6 (Metrics.counter_value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: counters only go up") (fun () -> Metrics.add c (-1));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: obs_test_total already registered as another kind (wanted gauge)")
    (fun () -> ignore (Metrics.gauge "obs_test_total"));
  Alcotest.check_raises "invalid name rejected"
    (Invalid_argument "Metrics: invalid metric name \"9bad name\"") (fun () ->
      ignore (Metrics.counter "9bad name"))

let test_histogram_buckets () =
  Metrics.set_enabled true;
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "obs_test_hist" in
  (* le semantics: an observation lands in the FIRST bucket whose
     bound is >= the value; past the last bound it lands in +Inf. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 10.0 ];
  check Alcotest.(array int) "per-bucket counts" [| 2; 2; 1; 1 |]
    (Metrics.histogram_counts h);
  check Alcotest.int "count" 6 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "sum" 18.0 (Metrics.histogram_sum h);
  Alcotest.check_raises "buckets must ascend"
    (Invalid_argument "Metrics.histogram: bucket bounds must be strictly ascending")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 2.0; 1.0 |] "obs_test_bad"))

let test_disabled_is_inert () =
  (* With the registry off, handles exist but updates are dropped —
     the contract instrumented code relies on. *)
  Metrics.set_enabled false;
  let c = Metrics.counter "obs_test_off_total" in
  let h = Metrics.histogram ~buckets:[| 1.0 |] "obs_test_off_hist" in
  Metrics.inc c;
  Metrics.add c 7;
  Metrics.observe h 0.5;
  check Alcotest.int "counter stayed zero" 0 (Metrics.counter_value c);
  check Alcotest.int "histogram stayed empty" 0 (Metrics.histogram_count h)

let test_prometheus_exposition () =
  Metrics.set_enabled true;
  let c = Metrics.counter ~help:"a test counter" "obs_exp_total" in
  Metrics.add c 3;
  let g = Metrics.gauge "obs_exp_gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] "obs_exp_hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 100.0 ];
  let text = Metrics.to_prometheus () in
  let has needle =
    let nh = String.length text and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub text i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun line -> check Alcotest.bool line true (has line))
    [
      "# TYPE obs_exp_total counter";
      "obs_exp_total 3";
      "# HELP obs_exp_total a test counter";
      "obs_exp_gauge 2.5";
      "# TYPE obs_exp_hist histogram";
      (* Cumulative buckets: 1 at le=1, 2 at le=10, 3 at +Inf. *)
      "obs_exp_hist_bucket{le=\"1\"} 1";
      "obs_exp_hist_bucket{le=\"10\"} 2";
      "obs_exp_hist_bucket{le=\"+Inf\"} 3";
      "obs_exp_hist_sum 105.5";
      "obs_exp_hist_count 3";
    ];
  (* The summary table carries one row per metric. *)
  check Alcotest.int "summary rows" 3 (Nsutil.Table.row_count (Metrics.summary ()))

(* Byte-for-byte against the committed golden: a fixed registry
   (counter with help, bare gauge, histogram with an overflow
   observation) must serialize with label-free names, cumulative [le]
   counts, the [+Inf] bucket and [_sum]/[_count] rows, sorted by
   name. Any drift in the exposition writer shows up as a diff
   against test/golden_metrics.prom. *)
let test_prometheus_golden () =
  Metrics.reset ();
  Metrics.set_enabled true;
  let c = Metrics.counter ~help:"a golden counter" "obs_golden_requests_total" in
  Metrics.add c 3;
  let g = Metrics.gauge "obs_golden_temperature" in
  Metrics.set g 2.5;
  let h =
    Metrics.histogram ~help:"a golden histogram" ~buckets:[| 1.0; 5.0; 10.0 |]
      "obs_golden_latency_ms"
  in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 100.0 ];
  let golden =
    (* The dune sandbox copies the golden next to the test binary; a
       bare `./test_obs.exe` from the repo root finds it in test/. *)
    if Sys.file_exists "golden_metrics.prom" then "golden_metrics.prom"
    else "test/golden_metrics.prom"
  in
  let expected = In_channel.with_open_text golden In_channel.input_all in
  check Alcotest.string "exposition matches golden" expected (Metrics.to_prometheus ())

let test_quantile () =
  Metrics.set_enabled true;
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "obs_test_quant" in
  check Alcotest.(option (float 0.0)) "empty histogram" None (Metrics.quantile h 0.5);
  for _ = 1 to 10 do Metrics.observe h 0.5 done;
  for _ = 1 to 10 do Metrics.observe h 1.5 done;
  (* Rank 10 of 20 exhausts the first bucket exactly: p50 = its bound. *)
  check Alcotest.(option (float 1e-9)) "p50 at bucket seam" (Some 1.0)
    (Metrics.quantile h 0.5);
  check Alcotest.(option (float 1e-9)) "p100 = last occupied bound" (Some 2.0)
    (Metrics.quantile h 1.0);
  (* Rank 5, halfway through the 10 observations of bucket (0,1]. *)
  check Alcotest.(option (float 1e-9)) "p25 interpolates inside a bucket" (Some 0.5)
    (Metrics.quantile h 0.25);
  Metrics.observe h 100.0;
  (* A rank in the overflow bucket clamps to the largest finite bound. *)
  check Alcotest.(option (float 1e-9)) "overflow clamps" (Some 5.0)
    (Metrics.quantile h 1.0);
  Alcotest.check_raises "quantile outside 0..1"
    (Invalid_argument "Metrics.quantile") (fun () ->
      ignore (Metrics.quantile h 1.5))

(* ------------------------------------------------------------------ *)
(* Span tracing. *)

let test_span_disabled_passthrough () =
  Trace.set_enabled false;
  let r = Trace.span "untraced" (fun () -> 41 + 1) in
  check Alcotest.int "result" 42 r;
  check Alcotest.int "no events recorded" 0 (Trace.event_count ())

let test_span_nesting_across_domains () =
  Trace.set_enabled true;
  (* Four domains, each recording outer > middle > inner nested spans:
     the merged view must keep every domain's spans properly nested
     and globally ordered by start time. *)
  let work tag () =
    Trace.span ~cat:"test" ("outer." ^ tag) (fun () ->
        Trace.span ~cat:"test" ("middle." ^ tag) (fun () ->
            Trace.span ~cat:"test" ("inner." ^ tag) (fun () -> Sys.opaque_identity 0)))
  in
  let domains = List.init 3 (fun i -> Domain.spawn (work (string_of_int (i + 1)))) in
  ignore (work "0" ());
  List.iter (fun d -> ignore (Domain.join d)) domains;
  let events = Trace.events () in
  check Alcotest.int "3 spans x 4 domains" 12 (List.length events);
  (* Sorted by start time, parents before children on ties. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && sorted rest
    | _ -> true
  in
  check Alcotest.bool "events sorted by start" true (sorted events);
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events)
  in
  check Alcotest.int "4 distinct recording domains" 4 (List.length tids);
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let contains outer inner =
    outer.Trace.ts_us <= inner.Trace.ts_us
    && outer.ts_us +. outer.dur_us >= inner.ts_us +. inner.dur_us
    && outer.tid = inner.tid
  in
  List.iter
    (fun tag ->
      let o = find ("outer." ^ tag)
      and m = find ("middle." ^ tag)
      and i = find ("inner." ^ tag) in
      check Alcotest.bool ("outer contains middle " ^ tag) true (contains o m);
      check Alcotest.bool ("middle contains inner " ^ tag) true (contains m i))
    [ "0"; "1"; "2"; "3" ]

let test_span_records_on_raise () =
  Trace.set_enabled true;
  (match Trace.span "raising" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  check Alcotest.int "span recorded despite raise" 1 (Trace.event_count ())

let test_trace_json_well_formed () =
  Trace.set_enabled true;
  Trace.span ~cat:"test" ~args:[ ("k", "v\"with\\escapes") ] "json.span" (fun () -> ());
  Trace.span ~cat:"test" "json.other" (fun () -> ());
  let json = Jsonv.parse_exn (Trace.to_json ()) in
  let events = Option.get (Option.bind (Jsonv.member "traceEvents" json) Jsonv.to_list) in
  check Alcotest.int "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      check Alcotest.(option string) "complete event" (Some "X")
        (Option.bind (Jsonv.member "ph" ev) Jsonv.to_string);
      List.iter
        (fun field ->
          check Alcotest.bool (field ^ " is numeric") true
            (Option.is_some (Option.bind (Jsonv.member field ev) Jsonv.to_float)))
        [ "ts"; "dur"; "pid"; "tid" ])
    events;
  let named = List.find (fun ev ->
      Option.bind (Jsonv.member "name" ev) Jsonv.to_string = Some "json.span") events in
  let args = Option.get (Jsonv.member "args" named) in
  check Alcotest.(option string) "args round-trip" (Some "v\"with\\escapes")
    (Option.bind (Jsonv.member "k" args) Jsonv.to_string)

(* ------------------------------------------------------------------ *)
(* RSS sampling. *)

let test_rss_parse () =
  let text = "Name:\tsim\nVmHWM:\t  12345 kB\nVmRSS:\t   6789 kB\n" in
  check Alcotest.(option int) "VmHWM" (Some 12345)
    (Nsobs.Rss.parse_status_kb ~key:"VmHWM" text);
  check Alcotest.(option int) "VmRSS" (Some 6789)
    (Nsobs.Rss.parse_status_kb ~key:"VmRSS" text);
  check Alcotest.(option int) "missing key" None
    (Nsobs.Rss.parse_status_kb ~key:"VmPeak" text)

let test_rss_publish () =
  Metrics.set_enabled true;
  Nsobs.Rss.publish ();
  (* On Linux both gauges are live; elsewhere they exist and hold 0. *)
  match Metrics.value "process_peak_rss_kb" with
  | None -> Alcotest.fail "process_peak_rss_kb not registered"
  | Some v ->
      if Sys.file_exists "/proc/self/status" then
        check Alcotest.bool "peak RSS positive" true (v > 0.0)

let test_rss_fallback () =
  (* Hosts without procfs: the probe answers [None], no exception. *)
  check
    Alcotest.(option int)
    "missing status file reads as None" None
    (Nsobs.Rss.status_kb_of_file ~path:"/nonexistent/sbgp-no-such-status"
       ~key:"VmHWM")

(* ------------------------------------------------------------------ *)
(* Leveled logging. *)

let test_log_levels () =
  let buf = Buffer.create 64 in
  Nsobs.Log.set_sink (fun _level msg -> Buffer.add_string buf (msg ^ "\n"));
  Nsobs.Log.set_level Nsobs.Log.Warn;
  Nsobs.Log.debug "dropped %d" 1;
  Nsobs.Log.info "dropped too";
  Nsobs.Log.warn "kept %s" "warn";
  Nsobs.Log.err "kept err";
  check Alcotest.string "warn level output" "kept warn\nkept err\n" (Buffer.contents buf);
  Buffer.clear buf;
  (* SBGP_LOG_LEVEL=quiet maps to errors only. *)
  check Alcotest.bool "quiet parses" true
    (Nsobs.Log.level_of_string "quiet" = Some Nsobs.Log.Error);
  Nsobs.Log.set_level Nsobs.Log.Error;
  Nsobs.Log.warn "silenced";
  Nsobs.Log.err "alarm";
  check Alcotest.string "quiet keeps errors" "alarm\n" (Buffer.contents buf)

let test_warning_hook_routes_to_log () =
  let buf = Buffer.create 64 in
  Nsobs.Log.set_sink (fun _ msg -> Buffer.add_string buf msg);
  Nsobs.Log.set_level Nsobs.Log.Warn;
  Nsobs.Log.install_warning_hook ();
  Nsutil.Warnings.emit "util-layer warning";
  check Alcotest.string "routed" "util-layer warning" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Jsonv. *)

let test_jsonv () =
  let ok s = match Jsonv.parse s with Ok v -> v | Error e -> Alcotest.fail e in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}|} with
  | Jsonv.Obj fields ->
      check Alcotest.int "fields" 4 (List.length fields);
      check Alcotest.(option (float 0.0)) "number" (Some 2.5)
        (Option.bind (List.assoc "a" fields |> Jsonv.to_list) (fun l ->
             Jsonv.to_float (List.nth l 1)))
  | _ -> Alcotest.fail "expected object");
  List.iter
    (fun bad ->
      match Jsonv.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "[1] trailing"; "\"unterminated"; "nul" ]

let test_jsonv_escape () =
  (* The shared emitter-side escape must round-trip every byte string
     through this parser: quotes, backslashes, whitespace escapes and
     raw control bytes (emitted as \u00XX). *)
  List.iter
    (fun s ->
      match Jsonv.parse_exn ("\"" ^ Jsonv.escape s ^ "\"") with
      | Jsonv.Str s' -> check Alcotest.string (Printf.sprintf "round-trip %S" s) s s'
      | _ -> Alcotest.fail "expected a string")
    [
      "";
      "plain text";
      "quote\" and backslash\\";
      "newline\n tab\t cr\r";
      "ctrl\x01\x1f bytes\x00";
      "trailing\\";
    ]

(* ------------------------------------------------------------------ *)
(* The run journal. *)

let test_journal_encode () =
  let line =
    Nsobs.Journal.encode_line ~ts:12.5 "unit_test"
      [
        ("s", Nsobs.Journal.Str "a\"b\\c\nd");
        ("i", Nsobs.Journal.Int 42);
        ("f", Nsobs.Journal.Float 2.5);
        ("b", Nsobs.Journal.Bool true);
        ("bad", Nsobs.Journal.Float Float.nan);
      ]
  in
  let j = Jsonv.parse_exn line in
  let mem k = Jsonv.member k j in
  check Alcotest.(option (float 0.0)) "ts" (Some 12.5)
    (Option.bind (mem "ts") Jsonv.to_float);
  check Alcotest.(option string) "ev" (Some "unit_test")
    (Option.bind (mem "ev") Jsonv.to_string);
  check Alcotest.(option string) "string field escapes" (Some "a\"b\\c\nd")
    (Option.bind (mem "s") Jsonv.to_string);
  check Alcotest.(option (float 0.0)) "int field" (Some 42.0)
    (Option.bind (mem "i") Jsonv.to_float);
  check Alcotest.(option (float 0.0)) "float field" (Some 2.5)
    (Option.bind (mem "f") Jsonv.to_float);
  check Alcotest.bool "bool field" true (mem "b" = Some (Jsonv.Bool true));
  (* Non-finite floats must not produce unparseable JSON. *)
  check Alcotest.bool "nan encodes as null" true (mem "bad" = Some Jsonv.Null)

let test_journal_cycle () =
  let path = Filename.temp_file "sbgp_test_journal" ".jsonl" in
  (match Nsobs.Journal.open_path path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "enabled after open" true (Nsobs.Journal.enabled ());
  (* Same-path reopen is a no-op; a second destination is refused. *)
  (match Nsobs.Journal.open_path path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Nsobs.Journal.open_path "/tmp/sbgp-other-journal.jsonl" with
  | Ok () -> Alcotest.fail "second journal path accepted"
  | Error _ -> ());
  Nsobs.Journal.event "alpha" [ ("k", Nsobs.Journal.Int 1) ];
  (* Another domain records through its own buffer. *)
  Domain.join
    (Domain.spawn (fun () ->
         Nsobs.Journal.event "beta" [ ("k", Nsobs.Journal.Int 2) ]));
  check Alcotest.int "events recorded" 2 (Nsobs.Journal.events_recorded ());
  Nsobs.Journal.flush ();
  Nsobs.Journal.close ();
  check Alcotest.bool "disabled after close" false (Nsobs.Journal.enabled ());
  Nsobs.Journal.close ();
  (* Closed journal drops events silently. *)
  Nsobs.Journal.event "gamma" [];
  let content = In_channel.with_open_text path In_channel.input_all in
  let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' content) in
  check Alcotest.int "two lines on disk" 2 (List.length lines);
  List.iter
    (fun l ->
      match Jsonv.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "unparseable line %S: %s" l e))
    lines;
  check Alcotest.bool "both events flushed" true
    (contains content "\"ev\":\"alpha\"" && contains content "\"ev\":\"beta\"");
  Sys.remove path

let test_journal_truncated_tail () =
  (* A journal as a killed run leaves it: complete lines, one damaged
     interior line, and an append cut mid-event. The scanner must keep
     every parseable event, count the interior damage, and flag the
     tail rather than fail. *)
  let path = Filename.temp_file "sbgp_test_journal" ".jsonl" in
  let oc = open_out path in
  output_string oc
    (Nsobs.Journal.encode_line ~ts:1.0 "run_start" [ ("n", Nsobs.Journal.Int 10) ] ^ "\n");
  output_string oc
    (Nsobs.Journal.encode_line ~ts:2.0 "round_end"
       [ ("round", Nsobs.Journal.Int 0); ("wall_ms", Nsobs.Journal.Float 1.5) ]
    ^ "\n");
  output_string oc "### not json ###\n";
  output_string oc
    (Nsobs.Journal.encode_line ~ts:3.0 "round_end"
       [ ("round", Nsobs.Journal.Int 1); ("wall_ms", Nsobs.Journal.Float 1.0) ]
    ^ "\n");
  output_string oc "{\"ts\":4.0,\"ev\":\"round_e";
  close_out oc;
  (match Nsobs.Report.scan path with
  | Error e -> Alcotest.fail e
  | Ok st ->
      check Alcotest.int "parsed events" 3 st.Nsobs.Report.events;
      check Alcotest.int "interior damage counted" 1 st.bad_lines;
      check Alcotest.bool "tail flagged" true st.truncated_tail;
      check Alcotest.int "runs" 1 st.runs;
      check Alcotest.int "rounds survive damage" 2 st.rounds;
      check Alcotest.(option int) "per-type totals" (Some 2)
        (List.assoc_opt "round_end" st.ev_counts));
  let report = Nsobs.Report.render ~journal_path:path () in
  check Alcotest.bool "report header" true (contains report "== run health report ==");
  check Alcotest.bool "report flags the kill" true
    (contains report "truncated tail (killed run)");
  check Alcotest.bool "report counts bad lines" true (contains report "1 bad line");
  Sys.remove path

let result_equal (a : Core.Engine.result) (b : Core.Engine.result) =
  check Alcotest.bool "baseline bit-identical" true (a.baseline = b.baseline);
  check Alcotest.int "round count" (List.length a.rounds) (List.length b.rounds);
  List.iter2
    (fun (ra : Core.Engine.round_record) (rb : Core.Engine.round_record) ->
      check Alcotest.bool
        (Printf.sprintf "round %d bit-identical" ra.round)
        true
        (ra.round = rb.round && ra.utilities = rb.utilities
        && ra.projected = rb.projected && ra.turned_on = rb.turned_on
        && ra.turned_off = rb.turned_off && ra.secure_as = rb.secure_as
        && ra.secure_isp = rb.secure_isp && ra.secure_stub = rb.secure_stub))
    a.rounds b.rounds;
  check Alcotest.bool "termination" true (a.termination = b.termination);
  check Alcotest.bool "final state" true (Core.State.equal_full a.final b.final);
  check Alcotest.int "dest_recomputed" a.dest_recomputed b.dest_recomputed;
  check Alcotest.int "dest_reused" a.dest_reused b.dest_reused

(* The same synthetic scenario as test_engine_parity, at both worker
   counts the tier-1 suite pins. *)
let engine_run ~workers () =
  let params = { (Topology.Params.with_n Topology.Params.default 120) with seed = 11 } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let early = built.cps @ Asgraph.Metrics.top_by_degree g 5 in
  let statics = Bgp.Route_static.create g in
  let state = Core.State.create g ~early in
  Core.Engine.run { Core.Config.default with workers } statics ~weight ~state

(* Both worker counts in ONE test case: the engine's metric handles
   are process-lifetime (forced lazily on first use), so the registry
   must not be reset between the two instrumented runs. *)
let test_engine_parity_instrumented () =
  List.iter
    (fun workers ->
      Trace.set_enabled false;
      Metrics.set_enabled false;
      let plain = engine_run ~workers () in
      let rounds0 =
        Option.value ~default:0.0 (Metrics.value "engine_rounds_total")
      in
      Trace.set_enabled true;
      Metrics.set_enabled true;
      let traced = engine_run ~workers () in
      Trace.set_enabled false;
      Metrics.set_enabled false;
      result_equal plain traced;
      (* And the telemetry side actually observed the run. *)
      check Alcotest.bool "spans recorded" true (Trace.event_count () > 0);
      let rounds1 =
        Option.value ~default:0.0 (Metrics.value "engine_rounds_total")
      in
      check (Alcotest.float 0.0)
        (Printf.sprintf "rounds counted (workers %d)" workers)
        (float_of_int (List.length traced.rounds))
        (rounds1 -. rounds0))
    [ 1; 4 ]

(* The acceptance-criterion differential: the FULL pipeline — metrics
   with phase histograms, tracing, journal, live scrape endpoint —
   enabled at once must leave an engine run bit-identical to a bare
   one, and the journal left behind must be schema-clean. *)
let test_engine_parity_full_pipeline () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let plain = engine_run ~workers:1 () in
  let jpath = Filename.temp_file "sbgp_test_journal" ".jsonl" in
  (match Nsobs.Journal.open_path jpath with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Metrics.set_enabled true;
  Trace.set_enabled true;
  let server =
    match Nsobs.Serve.start ~port:0 () with
    | Ok s -> Some s
    | Error _ -> None (* no loopback in this sandbox; the rest still runs *)
  in
  let piped = engine_run ~workers:1 () in
  Option.iter Nsobs.Serve.stop server;
  Metrics.set_enabled false;
  Trace.set_enabled false;
  Nsobs.Journal.close ();
  result_equal plain piped;
  (match Nsobs.Report.scan jpath with
  | Error e -> Alcotest.fail e
  | Ok st ->
      check Alcotest.bool "journal observed the run" true (st.Nsobs.Report.events > 0);
      check Alcotest.int "no damaged lines" 0 st.bad_lines;
      check Alcotest.bool "clean tail" false st.truncated_tail;
      check Alcotest.int "one run_start" 1 st.runs;
      check Alcotest.int "every round journaled" (List.length piped.rounds) st.rounds);
  Sys.remove jpath

(* ------------------------------------------------------------------ *)
(* The scrape endpoint. Placed after the differential group: these
   tests run the engine with metrics enabled, which forces the
   engine's process-lifetime metric handles — the parity tests above
   must see those handles un-forced or freshly forced, never orphaned
   by a registry reset in between. *)

let http_request ~port req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let http_get ~port path =
  http_request ~port
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
       path)

let status_of resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> ( try int_of_string (String.sub code 0 3) with _ -> 0)
  | _ -> 0

let body_of resp =
  let n = String.length resp in
  let rec find i =
    if i + 3 >= n then n
    else if
      resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r'
      && resp.[i + 3] = '\n'
    then i + 4
    else find (i + 1)
  in
  let b = find 0 in
  String.sub resp b (n - b)

let test_serve_routes () =
  Metrics.set_enabled true;
  let c = Metrics.counter ~help:"served" "obs_serve_test_total" in
  Metrics.add c 7;
  match Nsobs.Serve.start ~port:0 () with
  | Error e -> Alcotest.fail e
  | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Nsobs.Serve.stop srv)
        (fun () ->
          let port = Nsobs.Serve.port srv in
          check Alcotest.bool "ephemeral port assigned" true (port > 0);
          let m = http_get ~port "/metrics" in
          check Alcotest.int "metrics 200" 200 (status_of m);
          check Alcotest.bool "exposition body served" true
            (contains m "obs_serve_test_total 7");
          let hz = http_get ~port "/healthz" in
          check Alcotest.int "healthz 200" 200 (status_of hz);
          (match Jsonv.parse (body_of hz) with
          | Ok (Jsonv.Obj fields) ->
              check Alcotest.(option string) "status ok" (Some "ok")
                (Option.bind (List.assoc_opt "status" fields) Jsonv.to_string);
              check Alcotest.bool "uptime present" true
                (List.mem_assoc "uptime_s" fields);
              check Alcotest.bool "resilience present" true
                (List.mem_assoc "resilience" fields)
          | Ok _ -> Alcotest.fail "healthz: expected a JSON object"
          | Error e -> Alcotest.fail ("healthz: " ^ e));
          check Alcotest.int "unknown path is 404" 404
            (status_of (http_get ~port "/nope"));
          check Alcotest.int "non-GET is 405" 405
            (status_of
               (http_request ~port "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")));
      (* stop is idempotent. *)
      Nsobs.Serve.stop srv

(* The mid-run acceptance property: the endpoint answers WHILE the
   engine computes in-process. The engine loops in a systhread
   (sharing the domain's runtime lock with the server thread, exactly
   the production arrangement); the worker only stops after the
   scrape has landed, so a 200 here is by construction a mid-run
   answer. *)
let test_serve_mid_run () =
  Metrics.set_enabled true;
  (* Scrapes assert on a counter registered HERE: the engine's own
     handles may be orphaned by earlier registry resets (they are
     process-lifetime lazies), but the mid-run property — the endpoint
     answers while the engine computes — doesn't depend on which
     names the body carries. *)
  let c = Metrics.counter ~help:"mid-run scrape marker" "obs_serve_mid_total" in
  Metrics.inc c;
  match Nsobs.Serve.start ~port:0 () with
  | Error e -> Alcotest.fail e
  | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Nsobs.Serve.stop srv)
        (fun () ->
          let port = Nsobs.Serve.port srv in
          let stop_flag = Atomic.make false in
          let runs = Atomic.make 0 in
          let worker =
            Thread.create
              (fun () ->
                while not (Atomic.get stop_flag) do
                  ignore (engine_run ~workers:1 ());
                  Atomic.incr runs
                done)
              ()
          in
          let scraped = ref false and attempts = ref 0 in
          while (not !scraped) && !attempts < 500 do
            incr attempts;
            let resp = http_get ~port "/metrics" in
            if status_of resp = 200 && contains resp "obs_serve_mid_total 1" then
              scraped := true
          done;
          Atomic.set stop_flag true;
          Thread.join worker;
          check Alcotest.bool "scrape answered while the engine computed" true
            !scraped;
          check Alcotest.bool "engine actually ran meanwhile" true
            (Atomic.get runs > 0))

let () =
  let tc name f = Alcotest.test_case name `Quick (scrubbed f) in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          tc "counter basics" test_counter_basics;
          tc "histogram bucket boundaries" test_histogram_buckets;
          tc "disabled registry is inert" test_disabled_is_inert;
          tc "prometheus exposition" test_prometheus_exposition;
          tc "prometheus exposition golden file" test_prometheus_golden;
          tc "bucket-interpolated quantiles" test_quantile;
        ] );
      ( "trace",
        [
          tc "disabled span is passthrough" test_span_disabled_passthrough;
          tc "nesting and order across 4 domains" test_span_nesting_across_domains;
          tc "span survives raise" test_span_records_on_raise;
          tc "chrome JSON well-formed" test_trace_json_well_formed;
        ] );
      ( "rss",
        [
          tc "proc status parsing" test_rss_parse;
          tc "publish gauges" test_rss_publish;
          tc "portable fallback on missing procfs" test_rss_fallback;
        ] );
      ( "log",
        [
          tc "level filtering" test_log_levels;
          tc "warning hook routes util warnings" test_warning_hook_routes_to_log;
        ] );
      ( "jsonv",
        [
          tc "parse and reject" test_jsonv;
          tc "escape round-trips through the parser" test_jsonv_escape;
        ] );
      ( "journal",
        [
          tc "event line schema" test_journal_encode;
          tc "open, record across domains, flush, close" test_journal_cycle;
          tc "killed-run journal scans cleanly" test_journal_truncated_tail;
        ] );
      ( "differential",
        [
          tc "engine bit-identical, instrumentation on/off (workers 1 and 4)"
            test_engine_parity_instrumented;
          tc "engine bit-identical under the full telemetry pipeline"
            test_engine_parity_full_pipeline;
        ] );
      (* Last: these force the engine's process-lifetime metric
         handles (see the comment above [http_request]). *)
      ( "serve",
        [
          tc "routes: metrics, healthz, 404, 405" test_serve_routes;
          tc "scrape answered mid-run on an ephemeral port" test_serve_mid_run;
        ] );
    ]
