(* The observability layer (Nsobs): metrics registry semantics,
   span recording across domains, exporter well-formedness — and the
   differential guarantee the whole design rests on: instrumentation
   enabled or disabled, an engine run's results are bit-identical. *)

module Metrics = Nsobs.Metrics
module Trace = Nsobs.Trace
module Jsonv = Nsobs.Jsonv

let check = Alcotest.check

(* Each test leaves the collectors as it found them: off and empty. *)
let scrubbed f () =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Metrics.set_enabled false;
      Trace.reset ();
      Metrics.reset ();
      Nsobs.Log.reset_sink ();
      Nsobs.Log.set_level Nsobs.Log.Warn)
    f

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_counter_basics () =
  Metrics.set_enabled true;
  let c = Metrics.counter "obs_test_total" in
  Metrics.inc c;
  Metrics.add c 4;
  check Alcotest.int "counter value" 5 (Metrics.counter_value c);
  (* Creation is idempotent by name: the second handle is the same
     underlying counter. *)
  let c' = Metrics.counter "obs_test_total" in
  Metrics.inc c';
  check Alcotest.int "shared by name" 6 (Metrics.counter_value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: counters only go up") (fun () -> Metrics.add c (-1));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: obs_test_total already registered as another kind (wanted gauge)")
    (fun () -> ignore (Metrics.gauge "obs_test_total"));
  Alcotest.check_raises "invalid name rejected"
    (Invalid_argument "Metrics: invalid metric name \"9bad name\"") (fun () ->
      ignore (Metrics.counter "9bad name"))

let test_histogram_buckets () =
  Metrics.set_enabled true;
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "obs_test_hist" in
  (* le semantics: an observation lands in the FIRST bucket whose
     bound is >= the value; past the last bound it lands in +Inf. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 10.0 ];
  check Alcotest.(array int) "per-bucket counts" [| 2; 2; 1; 1 |]
    (Metrics.histogram_counts h);
  check Alcotest.int "count" 6 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "sum" 18.0 (Metrics.histogram_sum h);
  Alcotest.check_raises "buckets must ascend"
    (Invalid_argument "Metrics.histogram: bucket bounds must be strictly ascending")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 2.0; 1.0 |] "obs_test_bad"))

let test_disabled_is_inert () =
  (* With the registry off, handles exist but updates are dropped —
     the contract instrumented code relies on. *)
  Metrics.set_enabled false;
  let c = Metrics.counter "obs_test_off_total" in
  let h = Metrics.histogram ~buckets:[| 1.0 |] "obs_test_off_hist" in
  Metrics.inc c;
  Metrics.add c 7;
  Metrics.observe h 0.5;
  check Alcotest.int "counter stayed zero" 0 (Metrics.counter_value c);
  check Alcotest.int "histogram stayed empty" 0 (Metrics.histogram_count h)

let test_prometheus_exposition () =
  Metrics.set_enabled true;
  let c = Metrics.counter ~help:"a test counter" "obs_exp_total" in
  Metrics.add c 3;
  let g = Metrics.gauge "obs_exp_gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0 |] "obs_exp_hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 100.0 ];
  let text = Metrics.to_prometheus () in
  let has needle =
    let nh = String.length text and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub text i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun line -> check Alcotest.bool line true (has line))
    [
      "# TYPE obs_exp_total counter";
      "obs_exp_total 3";
      "# HELP obs_exp_total a test counter";
      "obs_exp_gauge 2.5";
      "# TYPE obs_exp_hist histogram";
      (* Cumulative buckets: 1 at le=1, 2 at le=10, 3 at +Inf. *)
      "obs_exp_hist_bucket{le=\"1\"} 1";
      "obs_exp_hist_bucket{le=\"10\"} 2";
      "obs_exp_hist_bucket{le=\"+Inf\"} 3";
      "obs_exp_hist_sum 105.5";
      "obs_exp_hist_count 3";
    ];
  (* The summary table carries one row per metric. *)
  check Alcotest.int "summary rows" 3 (Nsutil.Table.row_count (Metrics.summary ()))

(* ------------------------------------------------------------------ *)
(* Span tracing. *)

let test_span_disabled_passthrough () =
  Trace.set_enabled false;
  let r = Trace.span "untraced" (fun () -> 41 + 1) in
  check Alcotest.int "result" 42 r;
  check Alcotest.int "no events recorded" 0 (Trace.event_count ())

let test_span_nesting_across_domains () =
  Trace.set_enabled true;
  (* Four domains, each recording outer > middle > inner nested spans:
     the merged view must keep every domain's spans properly nested
     and globally ordered by start time. *)
  let work tag () =
    Trace.span ~cat:"test" ("outer." ^ tag) (fun () ->
        Trace.span ~cat:"test" ("middle." ^ tag) (fun () ->
            Trace.span ~cat:"test" ("inner." ^ tag) (fun () -> Sys.opaque_identity 0)))
  in
  let domains = List.init 3 (fun i -> Domain.spawn (work (string_of_int (i + 1)))) in
  ignore (work "0" ());
  List.iter (fun d -> ignore (Domain.join d)) domains;
  let events = Trace.events () in
  check Alcotest.int "3 spans x 4 domains" 12 (List.length events);
  (* Sorted by start time, parents before children on ties. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.ts_us <= b.Trace.ts_us && sorted rest
    | _ -> true
  in
  check Alcotest.bool "events sorted by start" true (sorted events);
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events)
  in
  check Alcotest.int "4 distinct recording domains" 4 (List.length tids);
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let contains outer inner =
    outer.Trace.ts_us <= inner.Trace.ts_us
    && outer.ts_us +. outer.dur_us >= inner.ts_us +. inner.dur_us
    && outer.tid = inner.tid
  in
  List.iter
    (fun tag ->
      let o = find ("outer." ^ tag)
      and m = find ("middle." ^ tag)
      and i = find ("inner." ^ tag) in
      check Alcotest.bool ("outer contains middle " ^ tag) true (contains o m);
      check Alcotest.bool ("middle contains inner " ^ tag) true (contains m i))
    [ "0"; "1"; "2"; "3" ]

let test_span_records_on_raise () =
  Trace.set_enabled true;
  (match Trace.span "raising" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  check Alcotest.int "span recorded despite raise" 1 (Trace.event_count ())

let test_trace_json_well_formed () =
  Trace.set_enabled true;
  Trace.span ~cat:"test" ~args:[ ("k", "v\"with\\escapes") ] "json.span" (fun () -> ());
  Trace.span ~cat:"test" "json.other" (fun () -> ());
  let json = Jsonv.parse_exn (Trace.to_json ()) in
  let events = Option.get (Option.bind (Jsonv.member "traceEvents" json) Jsonv.to_list) in
  check Alcotest.int "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      check Alcotest.(option string) "complete event" (Some "X")
        (Option.bind (Jsonv.member "ph" ev) Jsonv.to_string);
      List.iter
        (fun field ->
          check Alcotest.bool (field ^ " is numeric") true
            (Option.is_some (Option.bind (Jsonv.member field ev) Jsonv.to_float)))
        [ "ts"; "dur"; "pid"; "tid" ])
    events;
  let named = List.find (fun ev ->
      Option.bind (Jsonv.member "name" ev) Jsonv.to_string = Some "json.span") events in
  let args = Option.get (Jsonv.member "args" named) in
  check Alcotest.(option string) "args round-trip" (Some "v\"with\\escapes")
    (Option.bind (Jsonv.member "k" args) Jsonv.to_string)

(* ------------------------------------------------------------------ *)
(* RSS sampling. *)

let test_rss_parse () =
  let text = "Name:\tsim\nVmHWM:\t  12345 kB\nVmRSS:\t   6789 kB\n" in
  check Alcotest.(option int) "VmHWM" (Some 12345)
    (Nsobs.Rss.parse_status_kb ~key:"VmHWM" text);
  check Alcotest.(option int) "VmRSS" (Some 6789)
    (Nsobs.Rss.parse_status_kb ~key:"VmRSS" text);
  check Alcotest.(option int) "missing key" None
    (Nsobs.Rss.parse_status_kb ~key:"VmPeak" text)

let test_rss_publish () =
  Metrics.set_enabled true;
  Nsobs.Rss.publish ();
  (* On Linux both gauges are live; elsewhere they exist and hold 0. *)
  match Metrics.value "process_peak_rss_kb" with
  | None -> Alcotest.fail "process_peak_rss_kb not registered"
  | Some v ->
      if Sys.file_exists "/proc/self/status" then
        check Alcotest.bool "peak RSS positive" true (v > 0.0)

(* ------------------------------------------------------------------ *)
(* Leveled logging. *)

let test_log_levels () =
  let buf = Buffer.create 64 in
  Nsobs.Log.set_sink (fun _level msg -> Buffer.add_string buf (msg ^ "\n"));
  Nsobs.Log.set_level Nsobs.Log.Warn;
  Nsobs.Log.debug "dropped %d" 1;
  Nsobs.Log.info "dropped too";
  Nsobs.Log.warn "kept %s" "warn";
  Nsobs.Log.err "kept err";
  check Alcotest.string "warn level output" "kept warn\nkept err\n" (Buffer.contents buf);
  Buffer.clear buf;
  (* SBGP_LOG_LEVEL=quiet maps to errors only. *)
  check Alcotest.bool "quiet parses" true
    (Nsobs.Log.level_of_string "quiet" = Some Nsobs.Log.Error);
  Nsobs.Log.set_level Nsobs.Log.Error;
  Nsobs.Log.warn "silenced";
  Nsobs.Log.err "alarm";
  check Alcotest.string "quiet keeps errors" "alarm\n" (Buffer.contents buf)

let test_warning_hook_routes_to_log () =
  let buf = Buffer.create 64 in
  Nsobs.Log.set_sink (fun _ msg -> Buffer.add_string buf msg);
  Nsobs.Log.set_level Nsobs.Log.Warn;
  Nsobs.Log.install_warning_hook ();
  Nsutil.Warnings.emit "util-layer warning";
  check Alcotest.string "routed" "util-layer warning" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Jsonv. *)

let test_jsonv () =
  let ok s = match Jsonv.parse s with Ok v -> v | Error e -> Alcotest.fail e in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}|} with
  | Jsonv.Obj fields ->
      check Alcotest.int "fields" 4 (List.length fields);
      check Alcotest.(option (float 0.0)) "number" (Some 2.5)
        (Option.bind (List.assoc "a" fields |> Jsonv.to_list) (fun l ->
             Jsonv.to_float (List.nth l 1)))
  | _ -> Alcotest.fail "expected object");
  List.iter
    (fun bad ->
      match Jsonv.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "[1] trailing"; "\"unterminated"; "nul" ]

(* ------------------------------------------------------------------ *)
(* The differential guarantee: instrumentation cannot change results. *)

let result_equal (a : Core.Engine.result) (b : Core.Engine.result) =
  check Alcotest.bool "baseline bit-identical" true (a.baseline = b.baseline);
  check Alcotest.int "round count" (List.length a.rounds) (List.length b.rounds);
  List.iter2
    (fun (ra : Core.Engine.round_record) (rb : Core.Engine.round_record) ->
      check Alcotest.bool
        (Printf.sprintf "round %d bit-identical" ra.round)
        true
        (ra.round = rb.round && ra.utilities = rb.utilities
        && ra.projected = rb.projected && ra.turned_on = rb.turned_on
        && ra.turned_off = rb.turned_off && ra.secure_as = rb.secure_as
        && ra.secure_isp = rb.secure_isp && ra.secure_stub = rb.secure_stub))
    a.rounds b.rounds;
  check Alcotest.bool "termination" true (a.termination = b.termination);
  check Alcotest.bool "final state" true (Core.State.equal_full a.final b.final);
  check Alcotest.int "dest_recomputed" a.dest_recomputed b.dest_recomputed;
  check Alcotest.int "dest_reused" a.dest_reused b.dest_reused

(* The same synthetic scenario as test_engine_parity, at both worker
   counts the tier-1 suite pins. *)
let engine_run ~workers () =
  let params = { (Topology.Params.with_n Topology.Params.default 120) with seed = 11 } in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let early = built.cps @ Asgraph.Metrics.top_by_degree g 5 in
  let statics = Bgp.Route_static.create g in
  let state = Core.State.create g ~early in
  Core.Engine.run { Core.Config.default with workers } statics ~weight ~state

(* Both worker counts in ONE test case: the engine's metric handles
   are process-lifetime (forced lazily on first use), so the registry
   must not be reset between the two instrumented runs. *)
let test_engine_parity_instrumented () =
  List.iter
    (fun workers ->
      Trace.set_enabled false;
      Metrics.set_enabled false;
      let plain = engine_run ~workers () in
      let rounds0 =
        Option.value ~default:0.0 (Metrics.value "engine_rounds_total")
      in
      Trace.set_enabled true;
      Metrics.set_enabled true;
      let traced = engine_run ~workers () in
      Trace.set_enabled false;
      Metrics.set_enabled false;
      result_equal plain traced;
      (* And the telemetry side actually observed the run. *)
      check Alcotest.bool "spans recorded" true (Trace.event_count () > 0);
      let rounds1 =
        Option.value ~default:0.0 (Metrics.value "engine_rounds_total")
      in
      check (Alcotest.float 0.0)
        (Printf.sprintf "rounds counted (workers %d)" workers)
        (float_of_int (List.length traced.rounds))
        (rounds1 -. rounds0))
    [ 1; 4 ]

let () =
  let tc name f = Alcotest.test_case name `Quick (scrubbed f) in
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          tc "counter basics" test_counter_basics;
          tc "histogram bucket boundaries" test_histogram_buckets;
          tc "disabled registry is inert" test_disabled_is_inert;
          tc "prometheus exposition" test_prometheus_exposition;
        ] );
      ( "trace",
        [
          tc "disabled span is passthrough" test_span_disabled_passthrough;
          tc "nesting and order across 4 domains" test_span_nesting_across_domains;
          tc "span survives raise" test_span_records_on_raise;
          tc "chrome JSON well-formed" test_trace_json_well_formed;
        ] );
      ( "rss",
        [ tc "proc status parsing" test_rss_parse; tc "publish gauges" test_rss_publish ] );
      ( "log",
        [
          tc "level filtering" test_log_levels;
          tc "warning hook routes util warnings" test_warning_hook_routes_to_log;
        ] );
      ("jsonv", [ tc "parse and reject" test_jsonv ]);
      ( "differential",
        [
          tc "engine bit-identical, instrumentation on/off (workers 1 and 4)"
            test_engine_parity_instrumented;
        ] );
    ]
