(* The benchmark harness, in two parts:

   1. Regenerate every table and figure of the paper's evaluation on
      the synthetic Internet (scale with SBGP_N; default 500) —
      rows/series in paper order, recorded against the paper in
      EXPERIMENTS.md.

   2. Bechamel microbenchmarks: one [Test.make] per table/figure,
      timing that artifact's computational kernel at a small fixed
      scale so regressions in the routing/engine hot paths are
      visible.

   3. --json PATH: a machine-readable engine-kernel suite written as
      BENCH_engine.json (schema "sbgp-bench-v1"): the per-round
      kernels the engine's wall clock is made of (statics build,
      fused forest sweep, flip probe) at workers 1 and the configured
      count, one full engine run (rounds/s), a statics-budget
      differential (bounded store must match the unbounded run), and
      peak RSS. Runs instead of parts 1-2. --smoke shrinks the graph
      and time quotas to seconds-scale so the suite can gate
      [dune runtest] via the [bench-smoke] alias.

   Flags: --bench-only skips part 1, --no-bench skips part 2,
   --workers N pins the engine sweep's worker-domain count (default:
   Parallel.Pool.default_workers, i.e. SBGP_WORKERS or one per spare
   core). The engine kernels additionally time a fixed workers=1 run
   so the parallel overhead/speedup at the chosen count is visible. *)

let flag name = Array.exists (String.equal name) Sys.argv

let int_flag name default =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      Option.value ~default (int_of_string_opt Sys.argv.(i + 1))
    else scan (i + 1)
  in
  scan 1

let str_flag name =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let workers = max 1 (int_flag "--workers" (Parallel.Pool.default_workers ()))

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures. *)

let run_experiments () =
  let n = Experiments.Scenario.default_n () in
  Printf.printf
    "=== Reproducing the paper's evaluation (synthetic Internet, N = %d; set SBGP_N to \
     rescale) ===\n\n%!"
    n;
  let scenario = Experiments.Scenario.create ~n () in
  Experiments.Registry.run_streaming scenario (fun e table dt ->
      Printf.printf "== %s: %s  [%.1fs]\n%s\n%!" e.id e.title dt
        (Nsutil.Table.to_string table))

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel kernels. *)

let kernels () =
  let open Bechamel in
  (* Small fixed-scale setup shared by the kernels (prepared outside
     the staged functions; per-destination caches are primed so the
     kernels measure steady-state work). *)
  let scenario = Experiments.Scenario.create ~n:120 ~seed:3 () in
  let g = Experiments.Scenario.graph scenario in
  let statics = scenario.statics in
  let n = Asgraph.Graph.n g in
  for d = 0 to n - 1 do
    ignore (Bgp.Route_static.get statics d)
  done;
  let aug_statics = Lazy.force scenario.statics_aug in
  for d = 0 to n - 1 do
    ignore (Bgp.Route_static.get aug_statics d)
  done;
  let early = Experiments.Scenario.case_study_adopters scenario in
  let cfg_case = { Core.Config.default with workers } in
  let weight = Experiments.Scenario.weights scenario cfg_case in
  let engine_run ?(augmented = false) cfg early =
    let stats = if augmented then aug_statics else statics in
    let graph = Bgp.Route_static.graph stats in
    let state =
      Core.State.create graph ~early ~simplex:(not cfg.Core.Config.disable_simplex)
        ~secp:(not cfg.Core.Config.disable_secp)
    in
    Core.Engine.run cfg stats ~weight ~state
  in
  let remorse = Gadgets.Remorse.build () in
  let remorse_statics = Bgp.Route_static.create remorse.graph in
  let chicken = Gadgets.Chicken.build () in
  let chicken_statics = Bgp.Route_static.create chicken.graph in
  let setcover =
    Gadgets.Setcover.build
      Gadgets.Setcover.
        { universe = 6; subsets = [ [| 0; 1; 2 |]; [| 2; 3 |]; [| 3; 4; 5 |] ] }
  in
  let scratch = Bgp.Forest.make_scratch n in
  let zeros = Bytes.make n '\000' in
  [
    Test.make ~name:"table1/diamond-scan"
      (Staged.stage (fun () -> Core.Analyses.diamonds statics ~early));
    Test.make ~name:"table2/graph-summary"
      (Staged.stage (fun () -> Asgraph.Metrics.summary g));
    Test.make ~name:"table3/cp-path-lengths"
      (Staged.stage (fun () ->
           List.map
             (fun cp -> Bgp.Route_static.mean_path_length statics ~from:cp)
             (Experiments.Scenario.cps scenario)));
    Test.make ~name:"table4/degrees"
      (Staged.stage (fun () -> Asgraph.Metrics.degree_array g));
    Test.make ~name:"fig3-7/case-study-run"
      (Staged.stage (fun () -> engine_run cfg_case early));
    (* The same run pinned to one worker: the gap against the row
       above is the sweep's parallel speedup (or overhead). *)
    Test.make ~name:"engine/sweep-workers-1"
      (Staged.stage (fun () -> engine_run { cfg_case with workers = 1 } early));
    Test.make
      ~name:(Printf.sprintf "engine/sweep-workers-%d" workers)
      (Staged.stage (fun () -> engine_run cfg_case early));
    Test.make ~name:"fig8/theta-30pc-run"
      (Staged.stage (fun () ->
           engine_run { cfg_case with theta = 0.3; theta_off = 0.3 } early));
    Test.make ~name:"fig9/secure-path-count"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Analyses.secure_path_stats cfg_case statics state ~weight));
    Test.make ~name:"fig10/tiebreak-distribution"
      (Staged.stage (fun () ->
           Core.Analyses.tiebreak_distribution statics ~among:(fun _ -> true)));
    Test.make ~name:"fig11/no-stub-tiebreak-run"
      (Staged.stage (fun () -> engine_run { cfg_case with stub_tiebreak = false } early));
    Test.make ~name:"fig12/augmented-graph-run"
      (Staged.stage (fun () -> engine_run ~augmented:true cfg_case early));
    Test.make ~name:"fig13/remorse-dynamics"
      (Staged.stage (fun () ->
           let state = Gadgets.Remorse.initial_state remorse in
           Core.Engine.run Gadgets.Remorse.config remorse_statics ~weight:remorse.weight
             ~state));
    Test.make ~name:"fig14/theta-0-run"
      (Staged.stage (fun () -> engine_run { cfg_case with theta = 0.0 } early));
    Test.make ~name:"oscillation/chicken-dynamics"
      (Staged.stage (fun () ->
           let state =
             Core.State.create chicken.graph ~early:chicken.early ~frozen:chicken.frozen
           in
           Core.Engine.run Gadgets.Chicken.config chicken_statics ~weight:chicken.weight
             ~state));
    Test.make ~name:"setcover/reduction-run"
      (Staged.stage (fun () ->
           Gadgets.Setcover.secure_after setcover ~early:[ setcover.s1.(0) ]));
    Test.make ~name:"attacks/appendix-b"
      (Staged.stage (fun () ->
           ( Bgpsec.Attack.appendix_b ~prefer_partial:false,
             Bgpsec.Attack.appendix_b ~prefer_partial:true )));
    Test.make ~name:"ablations/no-secp-run"
      (Staged.stage (fun () -> engine_run { cfg_case with disable_secp = true } early));
    Test.make ~name:"resilience/one-hijack"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Resilience.simulate_attack statics state ~stub_tiebreak:true
             ~tiebreak:cfg_case.tiebreak ~attacker:0 ~victim:(n - 1)));
    Test.make ~name:"secpriority/security-first-hijack"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Resilience.simulate_attack_ranked statics state ~stub_tiebreak:true
             ~tiebreak:cfg_case.tiebreak ~position:Bgp.Flexsim.Before_lp ~attacker:0
             ~victim:(n - 1)));
    Test.make ~name:"pricing/customer-volumes"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Utility.customer_volumes
             { cfg_case with model = Core.Config.Incoming }
             statics state ~weight));
    Test.make ~name:"jitter/jittered-run"
      (Staged.stage (fun () -> engine_run { cfg_case with theta_jitter = 1.0 } early));
    Test.make ~name:"evolution/grow-15pc"
      (Staged.stage (fun () ->
           Topology.Evolve.grow g ~new_stubs:(n / 7) ~secure_bias:2.0
             ~is_secure:(fun i -> i mod 2 = 0)
             ~seed:3));
    Test.make ~name:"selector/k3-single-on"
      (Staged.stage
         (let sel = Gadgets.Selector.build ~k:3 () in
          fun () -> Gadgets.Selector.run_from sel ~on:[ 0 ]));
    (* Kernel primitives under everything above. *)
    Test.make ~name:"kernel/route-static-one-dest"
      (Staged.stage (fun () -> Bgp.Route_static.compute g (n - 1)));
    Test.make ~name:"kernel/forest-one-dest"
      (Staged.stage (fun () ->
           Bgp.Forest.compute
             (Bgp.Route_static.get statics (n - 1))
             ~tiebreak:cfg_case.tiebreak ~secure:zeros ~use_secp:zeros ~weight scratch));
    Test.make ~name:"kernel/sha256-1KiB"
      (Staged.stage
         (let buf = String.make 1024 'x' in
          fun () -> Scrypto.Sha256.digest_string buf));
    Test.make ~name:"kernel/checkpoint-write-load-32KiB"
      (Staged.stage
         (let digest = Scrypto.Sha256.digest_string "bench" in
          let payload = String.make 32768 'p' in
          fun () ->
            Core.Checkpoint.write ~path:"ckpt.bench" ~digest ~round:1 payload;
            Core.Checkpoint.load_exn ~path:"ckpt.bench" ~digest));
  ]

let run_bechamel () =
  let open Bechamel in
  Printf.printf "=== Bechamel kernels (one per table/figure; N = 120) ===\n\n%!";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let table = Nsutil.Table.create ~header:[ "kernel"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          let time_ns =
            match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
          in
          let pretty =
            if Float.is_nan time_ns then "-"
            else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
            else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.0f ns" time_ns
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Nsutil.Table.add_row table [ name; pretty; r2 ])
        ols)
    (kernels ());
  Nsutil.Table.print table

(* One case-study run per worker count, with the incremental sweep's
   cache effectiveness — complements the Bechamel rows with the stats
   the timing numbers depend on. *)
let report_engine_sweep () =
  let scenario = Experiments.Scenario.create ~n:120 ~seed:3 () in
  let g = Experiments.Scenario.graph scenario in
  let early = Experiments.Scenario.case_study_adopters scenario in
  let weight = Experiments.Scenario.weights scenario Core.Config.default in
  Printf.printf "=== Engine sweep: workers x incremental cache (N = 120) ===\n\n%!";
  List.iter
    (fun theta ->
      List.iter
        (fun w ->
          let cfg = { Core.Config.default with workers = w; theta; theta_off = theta } in
          let state = Core.State.create g ~early in
          let t0 = Unix.gettimeofday () in
          let result = Core.Engine.run cfg scenario.statics ~weight ~state in
          let dt = Unix.gettimeofday () -. t0 in
          Printf.printf
            "theta=%.2f workers=%d: %.3fs, %d rounds; %d dest recomputes, %d cache \
             hits (%.1f%% hit rate)\n%!"
            theta w dt
            (Core.Engine.rounds_run result)
            result.dest_recomputed result.dest_reused
            (100.0 *. Core.Engine.cache_hit_rate result))
        (if workers = 1 then [ 1 ] else [ 1; workers ]))
    [ 0.05; 0.30 ];
  print_newline ()

(* Fault tolerance: the case-study run with injected worker faults and
   the default retry budget, against the clean run — the supervision
   layer must absorb the faults without changing a single float. *)
let report_fault_tolerance () =
  let scenario = Experiments.Scenario.create ~n:120 ~seed:3 () in
  let g = Experiments.Scenario.graph scenario in
  let early = Experiments.Scenario.case_study_adopters scenario in
  let weight = Experiments.Scenario.weights scenario Core.Config.default in
  let cfg = { Core.Config.default with workers } in
  let run ?faults () =
    let state = Core.State.create g ~early in
    let t0 = Unix.gettimeofday () in
    let r = Core.Engine.run ?faults cfg scenario.statics ~weight ~state in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "=== Fault tolerance: injected worker faults vs clean run (N = 120) ===\n\n%!";
  let clean, dt_clean = run () in
  let faults = Nsutil.Faults.create ~rate:0.02 ~budget:cfg.retries ~seed:11 () in
  let faulted, dt_faulted = run ~faults () in
  let identical =
    clean.Core.Engine.rounds = faulted.Core.Engine.rounds
    && clean.baseline = faulted.baseline
    && clean.termination = faulted.termination
    && clean.dest_recomputed = faulted.dest_recomputed
    && clean.dest_reused = faulted.dest_reused
  in
  Printf.printf
    "clean: %.3fs; faulted: %.3fs (%d of %d shots fired, retry budget %d); identical \
     results: %b\n\n%!"
    dt_clean dt_faulted
    (Nsutil.Faults.fired faults)
    (Nsutil.Faults.shots faults)
    cfg.retries identical;
  if not identical then begin
    prerr_endline "bench: faulted run diverged from clean run";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 3: machine-readable engine-kernel suite (--json PATH). *)

let smoke = flag "--smoke"

(* Warm up once, then repeat until both floors are met; returns
   (total seconds, repetitions). Hand-rolled rather than Bechamel so
   each repetition is a full sweep-scale kernel, not a staged
   nanosecond probe. *)
let time_kernel ~min_time ~min_reps f =
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  while !reps < min_reps || Unix.gettimeofday () -. t0 < min_time do
    ignore (Sys.opaque_identity (f ()));
    incr reps
  done;
  (Unix.gettimeofday () -. t0, !reps)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = (i + nn <= nh) && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("bench: " ^ m);
      exit 1)
    fmt

(* Telemetry self-checks, gating [bench-smoke]: when --trace /
   --metrics are active, the artifacts this very process emits must
   hold up — parseable JSON, the engine's span names all present, the
   traced engine runs decomposing into their phase spans, and registry
   counters that only ever moved up. *)
let validate_trace path =
  let content = In_channel.with_open_text path In_channel.input_all in
  let json =
    match Nsobs.Jsonv.parse content with
    | Ok j -> j
    | Error e -> die "trace %s is not valid JSON (%s)" path e
  in
  let events =
    match Option.bind (Nsobs.Jsonv.member "traceEvents" json) Nsobs.Jsonv.to_list with
    | Some evs -> evs
    | None -> die "trace %s has no traceEvents array" path
  in
  let name_of ev = Option.bind (Nsobs.Jsonv.member "name" ev) Nsobs.Jsonv.to_string in
  let dur_of ev =
    Option.value ~default:0.0
      (Option.bind (Nsobs.Jsonv.member "dur" ev) Nsobs.Jsonv.to_float)
  in
  let total name =
    List.fold_left
      (fun acc ev -> if name_of ev = Some name then acc +. dur_of ev else acc)
      0.0 events
  in
  List.iter
    (fun required ->
      if not (List.exists (fun ev -> name_of ev = Some required) events) then
        die "trace %s is missing span %S" path required)
    [
      "engine.run"; "engine.round"; "engine.probe"; "engine.sweep"; "engine.reduce";
      "engine.decide"; "statics.prefill";
    ];
  (* The pool and statics kernels trace outside any engine.run; within
     the engine runs, the phase spans must account for (almost) all of
     the wall clock — untraced gaps mean a hot section lost its span. *)
  let run_us = total "engine.run" in
  let phases_us =
    total "engine.round" +. total "statics.prefill" +. total "engine.baseline"
  in
  let coverage = if run_us > 0.0 then phases_us /. run_us else 0.0 in
  if run_us > 0.0 && coverage < 0.90 then
    die "trace %s: phase spans cover %.1f%% of engine.run (< 90%%)" path
      (100.0 *. coverage);
  Printf.printf "trace self-check: %d events, phase coverage %.1f%% of engine.run\n%!"
    (List.length events) (100.0 *. coverage)

let validate_metrics path ~mid =
  let after = Nsobs.Metrics.counters () in
  List.iter
    (fun (name, v0) ->
      match List.assoc_opt name after with
      | Some v1 when v1 >= v0 -> ()
      | Some v1 -> die "metrics: counter %s went backwards (%d then %d)" name v0 v1
      | None -> die "metrics: counter %s disappeared from the registry" name)
    mid;
  let content = In_channel.with_open_text path In_channel.input_all in
  List.iter
    (fun key ->
      if not (contains content key) then die "metrics %s is missing %s" path key)
    ([
       "engine_rounds_total"; "engine_flips_per_round_bucket"; "engine_dirty_set_size";
       "statics_hit_total"; "statics_miss_total"; "statics_eviction_total";
       "process_peak_rss_kb";
     ]
    @ if workers > 1 then [ "pool_domain_spawn_total" ] else []);
  Printf.printf "metrics self-check: %d counters, all monotone\n%!" (List.length after)

(* --compare PATH: regression gate against a committed
   BENCH_engine.json. ns_per_op is scale-normalized, so a seconds-scale
   smoke run can be diffed against the committed full-scale numbers;
   kernels present in only one file (the w4 rows when the smoke run
   uses fewer workers, say) are skipped. A fresh kernel slower than
   tolerance x committed fails the run; SBGP_BENCH_TOLERANCE overrides
   the default 2.0. *)
let kernel_ns ~path json =
  match Option.bind (Nsobs.Jsonv.member "kernels" json) Nsobs.Jsonv.to_list with
  | None -> die "%s has no kernels array" path
  | Some ks ->
      List.filter_map
        (fun k ->
          match
            ( Option.bind (Nsobs.Jsonv.member "name" k) Nsobs.Jsonv.to_string,
              Option.bind (Nsobs.Jsonv.member "ns_per_op" k) Nsobs.Jsonv.to_float )
          with
          | Some name, Some ns -> Some (name, ns)
          | _ -> None)
        ks

let compare_bench ~fresh_path ~committed_path =
  let tolerance =
    match Option.bind (Sys.getenv_opt "SBGP_BENCH_TOLERANCE") float_of_string_opt with
    | Some t when t > 0.0 -> t
    | _ -> 2.0
  in
  let parse path =
    let content = In_channel.with_open_text path In_channel.input_all in
    match Nsobs.Jsonv.parse content with
    | Ok j -> j
    | Error e -> die "cannot parse %s: %s" path e
  in
  let fresh_json = parse fresh_path and committed_json = parse committed_path in
  let fresh = kernel_ns ~path:fresh_path fresh_json in
  let committed = kernel_ns ~path:committed_path committed_json in
  let checked = ref 0 and failed = ref [] in
  List.iter
    (fun (name, ns) ->
      match List.assoc_opt name committed with
      | None -> ()
      | Some ns0 ->
          incr checked;
          let ratio = if ns0 > 0.0 then ns /. ns0 else 0.0 in
          Printf.printf "compare %-16s %12.1f vs committed %12.1f ns/op (%.2fx)\n%!" name
            ns ns0 ratio;
          if ratio > tolerance then failed := (name, ratio) :: !failed)
    fresh;
  if !checked = 0 then
    die "no kernels in common between %s and %s" fresh_path committed_path;
  (* Peak-RSS gate: memory regressions (a dense buffer sneaking back
     into the sweep, a store that stops evicting) do not show up in
     ns/op, so the high-water mark is gated like a kernel, under its
     own tolerance. Only meaningful when both runs are the same shape;
     a smoke run against a committed full-scale file sits far below
     1.0x and passes trivially. *)
  let rss_tolerance =
    match Option.bind (Sys.getenv_opt "SBGP_RSS_TOLERANCE") float_of_string_opt with
    | Some t when t > 0.0 -> t
    | _ -> 2.0
  in
  let rss_of json =
    Option.bind (Nsobs.Jsonv.member "peak_rss_kb" json) Nsobs.Jsonv.to_float
  in
  (match (rss_of fresh_json, rss_of committed_json) with
  | Some fresh_kb, Some committed_kb when fresh_kb > 0.0 && committed_kb > 0.0 ->
      let ratio = fresh_kb /. committed_kb in
      Printf.printf "compare %-16s %12.0f vs committed %12.0f kb (%.2fx)\n%!"
        "peak_rss" fresh_kb committed_kb ratio;
      if ratio > rss_tolerance then begin
        Printf.eprintf "bench: peak RSS regressed %.2fx (> %.1fx) vs %s\n" ratio
          rss_tolerance committed_path;
        exit 1
      end
  | _ -> ());
  match !failed with
  | [] ->
      Printf.printf "bench compare: %d kernels within %.1fx of %s\n%!" !checked tolerance
        committed_path
  | l ->
      List.iter
        (fun (name, r) ->
          Printf.eprintf "bench: %s regressed %.2fx (> %.1fx) vs %s\n" name r tolerance
            committed_path)
        l;
      exit 1

(* ------------------------------------------------------------------ *)
(* N-scaling series: paper-shape graphs (Params.with_n on the default
   Cyclops+IXP shape) at growing N, through the binary graph format
   and — at 36K — the streaming statics store, whose budget keeps the
   warm store a fraction of the ~23 KiB/destination all-cached
   footprint. --scale appends the series to the --json suite, so the
   committed BENCH_engine.json carries the datapoints and --compare
   gates them; --scale-smoke is the runtest-sized slice (N = 10K,
   bit-identity across workers and budgets, wall and RSS ceilings). *)

let scale_rounds =
  match Option.bind (Sys.getenv_opt "SBGP_SCALE_ROUNDS") int_of_string_opt with
  | Some r when r > 0 -> r
  | _ -> 2

let scale_seed = 5

let scale_gen n =
  Topology.Gen.generate
    { (Topology.Params.with_n Topology.Params.default n) with seed = scale_seed }

let scale_early (built : Topology.Gen.built) =
  built.cps @ Asgraph.Metrics.top_by_degree built.graph 5

(* One capped engine run at paper shape: [max_rounds = scale_rounds]
   keeps each datapoint to a fixed number of full sweeps, which is
   what the per-destination-round ns/op normalizes over. *)
let scale_engine ?budget_mb ~w g ~early =
  let cfg = { Core.Config.default with workers = w; max_rounds = scale_rounds } in
  let statics =
    match budget_mb with
    | Some mb ->
        Bgp.Route_static.create ~budget_bytes:(mb * 1024 * 1024) ~tiebreak:cfg.tiebreak g
    | None -> Bgp.Route_static.create ~tiebreak:cfg.tiebreak g
  in
  let weight = Traffic.Weights.assign g ~cp_fraction:cfg.cp_fraction in
  let state = Core.State.create g ~early in
  Core.Engine.run cfg statics ~weight ~state

let scale_identical (a : Core.Engine.result) (b : Core.Engine.result) =
  a.Core.Engine.rounds = b.Core.Engine.rounds
  && a.baseline = b.baseline
  && a.termination = b.termination

let run_scale_smoke ~path =
  let n = 10_000 in
  let w2 = max 2 workers in
  Printf.printf "=== Scale smoke (N = %d paper shape, %d rounds per run) ===\n\n%!" n
    scale_rounds;
  let t_all = Unix.gettimeofday () in
  let built = scale_gen n in
  let g = built.Topology.Gen.graph in
  let early = scale_early built in
  (* Two arms that must not differ in a single float: serial against a
     roomy budget, parallel against a tight one — one comparison
     covers both the worker-count and the budget axis of the
     bit-identity contract. *)
  let t0 = Unix.gettimeofday () in
  let a = scale_engine ~budget_mb:512 ~w:1 g ~early in
  let wall_a = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let b_res = scale_engine ~budget_mb:128 ~w:w2 g ~early in
  let wall_b = Unix.gettimeofday () -. t0 in
  let identical = scale_identical a b_res in
  let wall = Unix.gettimeofday () -. t_all in
  let rss_kb = Option.value ~default:0 (Nsobs.Rss.peak_kb ()) in
  let wall_budget =
    match Option.bind (Sys.getenv_opt "SBGP_SCALE_WALL_S") float_of_string_opt with
    | Some t when t > 0.0 -> t
    | _ -> 600.0
  in
  let rss_budget_mb =
    match Option.bind (Sys.getenv_opt "SBGP_SCALE_RSS_MB") int_of_string_opt with
    | Some m when m > 0 -> m
    | _ -> 4096
  in
  Printf.printf
    "w1/512MiB: %.1fs; w%d/128MiB: %.1fs; identical: %b; total %.1fs (budget %.0fs); \
     peak RSS %.1f MiB (ceiling %d MiB)\n%!"
    wall_a w2 wall_b identical wall wall_budget
    (float_of_int rss_kb /. 1024.0)
    rss_budget_mb;
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"sbgp-scale-smoke-v1\",\n  \"n\": %d,\n  \"rounds_cap\": %d,\n\
    \  \"arms\": [\n\
    \    {\"workers\": 1, \"statics_mb\": 512, \"wall_s\": %.3f},\n\
    \    {\"workers\": %d, \"statics_mb\": 128, \"wall_s\": %.3f}\n\
    \  ],\n\
    \  \"identical\": %b,\n  \"wall_s\": %.3f,\n  \"peak_rss_kb\": %d\n}\n"
    n scale_rounds wall_a w2 wall_b identical wall rss_kb;
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  if not identical then
    die "scale smoke: n=%d run diverged across workers 1/%d and budgets 512/128 MiB" n w2;
  if wall > wall_budget then
    die "scale smoke: %.1fs exceeds the %.0fs wall budget (SBGP_SCALE_WALL_S)" wall
      wall_budget;
  if rss_kb > rss_budget_mb * 1024 then
    die "scale smoke: peak RSS %.1f MiB exceeds the %d MiB ceiling (SBGP_SCALE_RSS_MB)"
      (float_of_int rss_kb /. 1024.0)
      rss_budget_mb

let run_json_bench ~path =
  let n = int_flag "--n" (if smoke then 120 else 1000) in
  let seed = 3 in
  let min_time = if smoke then 0.05 else 1.0 in
  let min_reps = 3 in
  let cfg =
    { Core.Config.default with workers; max_rounds = (if smoke then 4 else 100) }
  in
  let tiebreak = cfg.tiebreak in
  Printf.printf "=== Engine kernel suite (N = %d, seed = %d, workers = %d%s) ===\n\n%!" n
    seed workers
    (if smoke then ", smoke" else "");
  let scenario = Experiments.Scenario.create ~n ~seed () in
  let g = Experiments.Scenario.graph scenario in
  let statics = scenario.Experiments.Scenario.statics in
  (* Serial prefill: the statics_build kernel below must be measured
     in the single-domain regime a real run starts in (the worker bank
     only comes to life at the first parallel kernel). *)
  Bgp.Route_static.ensure_all statics;
  let early = Experiments.Scenario.case_study_adopters scenario in
  let weight = Experiments.Scenario.weights scenario cfg in
  let probe_state = Core.State.create g ~early in
  let secure = Core.State.secure_bytes probe_state in
  let use_secp = Core.State.use_secp_bytes probe_state ~stub_tiebreak:cfg.stub_tiebreak in
  let kernels = ref [] in
  let record name ~ops f =
    let total, reps = time_kernel ~min_time ~min_reps f in
    let per_rep = total /. float_of_int reps in
    let ns = per_rep *. 1e9 /. float_of_int (max 1 ops) in
    Printf.printf "%-20s %10.3f ms/rep %12.1f ns/op  (%d reps)\n%!" name
      (per_rep *. 1e3) ns reps;
    kernels := (name, ops, reps, per_rep, ns) :: !kernels
  in
  (* Statics build: the full three-stage static-route construction for
     every destination, fresh store each repetition. *)
  record "statics_build" ~ops:n (fun () ->
      let s = Bgp.Route_static.create ~tiebreak g in
      Bgp.Route_static.ensure_all s;
      s);
  (* Statics repair: migrate the warm store across a growth delta and
     undo, so every repetition sees the same warm pre-churn store.
     ns/op is per churned edge; against statics_build's
     per-destination cost this is the full-rebuild-vs-repair gap per
     unit of churn. The batch is deliberately large (2n fresh
     stubs): every patched entry pays an O(n) fixed rewrite of its
     offset arrays no matter how small the delta, so per-edge cost
     only reflects the repair kernel once the stub-linear work
     dominates that floor. Small-batch behaviour (the ~15% Section 8.4
     epoch shape) is covered by the churn differential suite and the
     evolution experiment's epoch timings, where one repair still
     replaces a full per-epoch rebuild. *)
  let grown, delta =
    Topology.Evolve.grow_delta g
      ~new_stubs:(max 1 (2 * n))
      ~secure_bias:2.0
      ~is_secure:(fun i -> i mod 2 = 0)
      ~seed:7
  in
  record "statics_repair" ~ops:(Asgraph.Graph.delta_edge_count delta) (fun () ->
      let j = Bgp.Route_static.rebase ~kernel:Bgp.Route_static.Delta ~workers statics ~delta grown in
      Bgp.Route_static.undo_rebase statics j;
      j);
  (* Bitwise cross-check, one kept rebase: every destination of the
     churned graph must serve a record info_equal to a fresh compute,
     then the undo hands the sections below their warm pre-churn
     store back. *)
  let crosscheck = Bgp.Route_static.rebase ~kernel:Bgp.Route_static.Delta ~workers statics ~delta grown in
  for d = 0 to Asgraph.Graph.n grown - 1 do
    if
      not
        (Bgp.Route_static.info_equal
           (Bgp.Route_static.get statics d)
           (Bgp.Route_static.compute ~tiebreak grown d))
    then die "statics_repair diverges from compute at destination %d" d
  done;
  Bgp.Route_static.undo_rebase statics crosscheck;
  Printf.printf "statics repair differential: %d destinations bit-identical\n%!"
    (Asgraph.Graph.n grown);
  (* Checkpoint churn: what one epoch boundary pays for durability —
     snapshot the warm store, frame and write it as a churn record
     through the checksummed checkpoint protocol, then load it back
     and restore a store from it (the resume half). ns/op is per
     snapshotted destination, which keeps the smoke-vs-committed
     compare roughly scale-normalized (each record also grows with n,
     so the per-destination figure still rises with scale — compare
     ratios sit below 1 like statics_build's). *)
  let ckpt_path = Filename.temp_file "sbgp_bench_ckpt" ".snap" in
  let ckpt_digest = Scrypto.Sha256.digest_string "bench-churn-checkpoint" in
  record "checkpoint_churn" ~ops:n (fun () ->
      Core.Checkpoint.write ~kind:Core.Checkpoint.Churn ~path:ckpt_path
        ~digest:ckpt_digest ~round:1
        (Bgp.Route_static.snapshot statics);
      let frame = Core.Checkpoint.load_exn ~path:ckpt_path ~digest:ckpt_digest in
      Bgp.Route_static.of_snapshot g frame.Core.Checkpoint.payload);
  Sys.remove ckpt_path;
  (* Forest sweep: one full per-round sweep (all destinations) through
     the fused kernel, per-worker scratch — the shape of the engine's
     inner loop. *)
  let sweep w () =
    Parallel.Pool.map_reduce_chunked ~workers:w ~tasks:n ~grain:8
      ~init:(fun () -> (Bgp.Forest.make_scratch n, ref 0.0))
      ~task:(fun (scratch, acc) d ->
        let info = Bgp.Route_static.get statics d in
        Bgp.Forest.compute info ~tiebreak ~secure ~use_secp ~weight scratch;
        acc := !acc +. scratch.Bgp.Forest.sub.(d))
      ~combine:(fun (s, a) (_, b) ->
        a := !a +. !b;
        (s, a))
  in
  record "forest_sweep_w1" ~ops:n (sweep 1);
  if workers > 1 then
    record (Printf.sprintf "forest_sweep_w%d" workers) ~ops:n (sweep workers);
  (* Fan-out proof: the multi-worker rows above are only honest if
     distinct domains actually run chunks (on a single-core host the
     timings are near-identical either way, which is expected hardware
     behavior, not a scheduling bug). Each worker's [init] CAS-pushes
     its domain id; claiming workers > 1 with every chunk on one
     domain is turned into a hard failure. The sweep goes through the
     dynamic scheduler here because that is the engine's path. *)
  let fanout_domains =
    let ids = Atomic.make [] in
    let note () =
      let id = (Domain.self () :> int) in
      let rec push () =
        let cur = Atomic.get ids in
        if (not (List.mem id cur)) && not (Atomic.compare_and_set ids cur (id :: cur))
        then push ()
      in
      push ()
    in
    ignore
      (Parallel.Pool.map_reduce_dynamic_supervised Parallel.Pool.no_supervision ~workers
         ~tasks:n ~grain:8
         ~init:(fun () ->
           note ();
           (Bgp.Forest.make_scratch n, ref 0.0))
         ~task:(fun (scratch, acc) d ->
           let info = Bgp.Route_static.get statics d in
           Bgp.Forest.compute info ~tiebreak ~secure ~use_secp ~weight scratch;
           acc := !acc +. scratch.Bgp.Forest.sub.(d))
         ~combine:(fun (s, a) (_, b) ->
           a := !a +. !b;
           (s, a)));
    List.length (Atomic.get ids)
  in
  Printf.printf "sweep fan-out: %d workers -> %d distinct domains\n%!" workers
    fanout_domains;
  if workers > 1 && fanout_domains < 2 then
    die "sweep claims %d workers but only %d domain participated" workers fanout_domains;
  (* Flip probe: for every destination, would any of <= 64 candidate
     ISPs' flips change the routing — a scan of the candidate's tie
     row for a secure member, as in the engine's incremental
     invalidation. *)
  let candidates =
    let acc = ref [] and c = ref 0 in
    for i = 0 to n - 1 do
      if !c < 64 && Asgraph.Graph.is_isp g i then begin
        incr c;
        acc := i :: !acc
      end
    done;
    Array.of_list (List.rev !acc)
  in
  let ncand = Array.length candidates in
  (* Written as allocation-free loops: a per-candidate closure would
     drag stop-the-world minor GCs into the measurement. *)
  let probe_dest hits d =
    let info = Bgp.Route_static.get statics d in
    let tie_off = info.Bgp.Route_static.tie_off in
    let tie = info.Bgp.Route_static.tie in
    let j = ref 0 and found = ref false in
    for k = 0 to ncand - 1 do
      let nc = Array.unsafe_get candidates k in
      if Bgp.Route_static.reachable info nc then begin
        let hi = Nsutil.I32.unsafe_get tie_off (nc + 1) in
        j := Nsutil.I32.unsafe_get tie_off nc;
        found := false;
        while (not !found) && !j < hi do
          if Bytes.unsafe_get secure (Nsutil.I32.unsafe_get tie !j) = '\001' then
            found := true
          else incr j
        done;
        if !found then incr hits
      end
    done
  in
  let flip w () =
    Parallel.Pool.map_reduce_chunked ~workers:w ~tasks:n ~grain:8
      ~init:(fun () -> ref 0)
      ~task:probe_dest
      ~combine:(fun a b ->
        a := !a + !b;
        a)
  in
  let pairs = n * ncand in
  record "flip_probe_w1" ~ops:pairs (flip 1);
  if workers > 1 then record (Printf.sprintf "flip_probe_w%d" workers) ~ops:pairs (flip workers);
  (* Flip kernels: the engine's per-candidate probe, both ways. Up to
     32 insecure ISP candidates; each probe flips the candidate's
     secure/use_secp bytes, evaluates its utility contribution under
     the flipped forest, and reverts. [flip_full] recomputes the
     forest from scratch per probe (the engine's Flip_full fallback);
     [flip_repair] computes one base forest per destination and
     repairs/undoes it per probe (Flip_delta). Destinations are
     strided so the full-recompute arm stays seconds-scale; both arms
     walk the identical (destination, candidate) set, so the ratio is
     honest, and their contributions must agree bit for bit. *)
  let flip_cands =
    let acc = ref [] and c = ref 0 in
    for i = 0 to n - 1 do
      if !c < 32 && Asgraph.Graph.is_isp g i && Bytes.get secure i = '\000' then begin
        incr c;
        acc := i :: !acc
      end
    done;
    Array.of_list (List.rev !acc)
  in
  let nfc = Array.length flip_cands in
  let stride = max 1 (n / 125) in
  let flip_dests =
    Array.of_list (List.filter (fun d -> d mod stride = 0) (List.init n (fun d -> d)))
  in
  let nfd = Array.length flip_dests in
  let fsec = Bytes.copy secure and fsecp = Bytes.copy use_secp in
  let toggle nc =
    Bytes.set fsec nc (if Bytes.get fsec nc = '\000' then '\001' else '\000');
    Bytes.set fsecp nc (if Bytes.get fsecp nc = '\000' then '\001' else '\000')
  in
  let base = Bgp.Forest.make_scratch n in
  let probe_scratch = Bgp.Forest.make_scratch n in
  let rep = Bgp.Forest.make_repairer n in
  let seeds = Array.make 1 0 in
  let model = cfg.Core.Config.model in
  let flip_full out () =
    for di = 0 to nfd - 1 do
      let d = flip_dests.(di) in
      let info = Bgp.Route_static.get statics d in
      for k = 0 to nfc - 1 do
        let nc = flip_cands.(k) in
        toggle nc;
        Bgp.Forest.compute info ~tiebreak ~secure:fsec ~use_secp:fsecp ~weight
          probe_scratch;
        out.((di * nfc) + k) <-
          Core.Utility.contribution model g info probe_scratch ~weight nc;
        toggle nc
      done
    done
  in
  let flip_repair out () =
    for di = 0 to nfd - 1 do
      let d = flip_dests.(di) in
      let info = Bgp.Route_static.get statics d in
      Bgp.Forest.compute info ~tiebreak ~secure:fsec ~use_secp:fsecp ~weight base;
      for k = 0 to nfc - 1 do
        let nc = flip_cands.(k) in
        toggle nc;
        seeds.(0) <- nc;
        Bgp.Forest.repair info ~tiebreak ~secure:fsec ~use_secp:fsecp ~weight ~seeds base
          rep;
        out.((di * nfc) + k) <- Core.Utility.contribution model g info base ~weight nc;
        Bgp.Forest.undo base rep;
        toggle nc
      done
    done
  in
  let probes = nfd * nfc in
  let out_full = Array.make (max 1 probes) 0.0 in
  let out_repair = Array.make (max 1 probes) 0.0 in
  record "flip_full_w1" ~ops:probes (fun () -> flip_full out_full ());
  record "flip_repair_w1" ~ops:probes (fun () -> flip_repair out_repair ());
  for p = 0 to probes - 1 do
    if Int64.bits_of_float out_full.(p) <> Int64.bits_of_float out_repair.(p) then
      die "flip kernels diverge at probe %d: full=%.17g repair=%.17g" p out_full.(p)
        out_repair.(p)
  done;
  Printf.printf "flip differential: %d probes, full = repair bit-for-bit\n%!" probes;
  (* One full engine run at the configured worker count. *)
  let t0 = Unix.gettimeofday () in
  let result =
    let state = Core.State.create g ~early in
    Core.Engine.run cfg statics ~weight ~state
  in
  let engine_wall = Unix.gettimeofday () -. t0 in
  (* Counter snapshot between the two engine runs: the final snapshot
     taken by the self-check below must dominate it everywhere. *)
  let counters_mid = Nsobs.Metrics.counters () in
  let rounds = Core.Engine.rounds_run result in
  let rounds_per_s = float_of_int rounds /. engine_wall in
  Printf.printf "\nengine run: %.3f s, %d rounds (%.3f rounds/s)\n%!" engine_wall rounds
    rounds_per_s;
  (* Statics-budget differential: the same run against a bounded store
     must produce identical dynamics. *)
  let budget_bytes = if smoke then 65_536 else 4 * 1024 * 1024 in
  let bounded =
    let bstatics = Bgp.Route_static.create ~budget_bytes ~tiebreak g in
    let state = Core.State.create g ~early in
    Core.Engine.run cfg bstatics ~weight ~state
  in
  let identical =
    result.Core.Engine.rounds = bounded.Core.Engine.rounds
    && result.baseline = bounded.baseline
    && result.termination = bounded.termination
  in
  Printf.printf
    "budget differential: %d-byte store, %d evictions, identical dynamics: %b\n%!"
    budget_bytes bounded.statics_evictions identical;
  (* Telemetry overhead: the identical engine scenario with the full
     observability pipeline live — metrics registry, phase histograms,
     journal to a scratch file, loopback scrape endpoint — against
     everything off. The instrumented run's per-round ns lands in the
     kernels array, so --compare tracks it like any other kernel; the
     on-vs-off ratio is additionally hard-gated at full scale (< 3%,
     SBGP_OBS_TOLERANCE overrides). Best-of-k walls on both arms keep
     scheduler noise out of a percent-level comparison, and the two
     arms must agree on rounds, baseline and termination: telemetry
     is observational or it is a bug. *)
  let obs_engine () =
    let state = Core.State.create g ~early in
    Core.Engine.run cfg statics ~weight ~state
  in
  let best_of k f =
    ignore (Sys.opaque_identity (f ()));
    let best = ref infinity in
    for _ = 1 to k do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let obs_reps = 3 in
  let metrics_were = Nsobs.Metrics.enabled () in
  Nsobs.Metrics.set_enabled false;
  let result_off = obs_engine () in
  let wall_off = best_of obs_reps obs_engine in
  let journal_tmp, journal_opened =
    if Nsobs.Journal.enabled () then ("", false)
    else begin
      let p = Filename.temp_file "sbgp_bench_journal" ".jsonl" in
      (match Nsobs.Journal.open_path p with
      | Ok () -> ()
      | Error e -> die "obs_overhead: cannot open journal %s: %s" p e);
      (p, true)
    end
  in
  Nsobs.Metrics.set_enabled true;
  let server =
    match Nsobs.Serve.start ~port:0 () with
    | Ok s -> Some s
    | Error e ->
        Printf.eprintf "bench: obs_overhead runs without a scrape endpoint (%s)\n%!" e;
        None
  in
  let result_on = obs_engine () in
  let wall_on = best_of obs_reps obs_engine in
  Option.iter Nsobs.Serve.stop server;
  if journal_opened then begin
    Nsobs.Journal.close ();
    Sys.remove journal_tmp
  end;
  Nsobs.Metrics.set_enabled metrics_were;
  if
    not
      (result_off.Core.Engine.rounds = result_on.Core.Engine.rounds
      && result_off.baseline = result_on.baseline
      && result_off.termination = result_on.termination)
  then die "obs_overhead: telemetry-on engine run diverged from telemetry-off";
  let obs_rounds = max 1 (Core.Engine.rounds_run result_on) in
  let ns_on = wall_on *. 1e9 /. float_of_int obs_rounds in
  Printf.printf "%-20s %10.3f ms/rep %12.1f ns/op  (%d reps)\n%!" "obs_overhead"
    (wall_on *. 1e3) ns_on obs_reps;
  kernels := ("obs_overhead", obs_rounds, obs_reps, wall_on, ns_on) :: !kernels;
  let overhead = (wall_on -. wall_off) /. wall_off in
  let obs_tolerance =
    match Option.bind (Sys.getenv_opt "SBGP_OBS_TOLERANCE") float_of_string_opt with
    | Some t when t > 0.0 -> t
    | _ -> 0.03
  in
  Printf.printf
    "telemetry overhead: %.3f s off vs %.3f s on (%+.2f%%), identical dynamics\n%!"
    wall_off wall_on (100.0 *. overhead);
  if (not smoke) && overhead > obs_tolerance then
    die "telemetry overhead %.2f%% exceeds %.1f%% budget" (100.0 *. overhead)
      (100.0 *. obs_tolerance);
  (* --scale: the N-scaling series. Every datapoint lands in the
     kernels array under a scale_* name (single repetition — these are
     minutes-scale kernels), so --compare gates them exactly like the
     fixed-scale rows; the scale section below adds the per-N context
     (rounds, wall, RSS high-water mark after the run). *)
  let scale_rows = ref [] in
  if flag "--scale" then begin
    Printf.printf "\n=== N-scaling series (paper shape, %d rounds per engine run) ===\n\n%!"
      scale_rounds;
    let record_once name ~ops f =
      let t0 = Unix.gettimeofday () in
      let v = f () in
      let dt = Unix.gettimeofday () -. t0 in
      let ns = dt *. 1e9 /. float_of_int (max 1 ops) in
      Printf.printf "%-24s %10.3f ms/rep %12.1f ns/op  (1 rep)\n%!" name (dt *. 1e3) ns;
      kernels := (name, ops, 1, dt, ns) :: !kernels;
      v
    in
    let roundtrip sn sg =
      let tmp = Filename.temp_file "sbgp_scale" ".sbg" in
      ignore
        (record_once (Printf.sprintf "scale_save_bin_n%d" sn) ~ops:sn (fun () ->
             Asgraph.Graph_io.save_bin sg tmp));
      let loaded =
        record_once (Printf.sprintf "scale_load_bin_n%d" sn) ~ops:sn (fun () ->
            Asgraph.Graph_io.load_bin tmp)
      in
      Sys.remove tmp;
      if Asgraph.Graph.n loaded <> sn then
        die "scale: binary round-trip lost nodes at n=%d" sn
    in
    List.iter
      (fun (sn, budget_mb) ->
        let built =
          record_once (Printf.sprintf "scale_gen_n%d" sn) ~ops:sn (fun () -> scale_gen sn)
        in
        let sg = built.Topology.Gen.graph in
        roundtrip sn sg;
        let early = scale_early built in
        let t0 = Unix.gettimeofday () in
        let r = scale_engine ?budget_mb ~w:workers sg ~early in
        let wall = Unix.gettimeofday () -. t0 in
        let rr = max 1 (Core.Engine.rounds_run r) in
        let name = Printf.sprintf "scale_engine_n%d" sn in
        let ns = wall *. 1e9 /. float_of_int (sn * rr) in
        Printf.printf "%-24s %10.3f ms/rep %12.1f ns/op  (1 rep)\n%!" name (wall *. 1e3)
          ns;
        kernels := (name, sn * rr, 1, wall, ns) :: !kernels;
        (* Identity slice at the cheapest size: the same destinations
           under workers 1 and under workers 4 + a budget tight enough
           to stream must not move a float. The 36K identity run is
           sbgp_sim's acceptance pass, not repeated here — it would
           triple the series' dominant datapoint. *)
        let ident =
          if sn > 1_000 then None
          else begin
            let r1 = scale_engine ~w:1 sg ~early in
            let r4b = scale_engine ~budget_mb:8 ~w:4 sg ~early in
            Some (scale_identical r r1 && scale_identical r r4b)
          end
        in
        (match ident with
        | Some false ->
            die "scale: n=%d engine run not bit-identical across workers/budgets" sn
        | _ -> ());
        scale_rows :=
          (sn, rr, wall, Option.value ~default:0 (Nsobs.Rss.peak_kb ()), ident)
          :: !scale_rows)
      [ (1_000, None); (10_000, None); (36_000, Some 2048) ];
    (* 100K: the survive-scale datapoint — generate, stream through
       the binary format, and compute a statics sample (per-destination
       build cost); a full engine run at 100K is out of a bench's
       budget. *)
    let n100 = 100_000 in
    let built =
      record_once (Printf.sprintf "scale_gen_n%d" n100) ~ops:n100 (fun () ->
          scale_gen n100)
    in
    let sg = built.Topology.Gen.graph in
    roundtrip n100 sg;
    ignore
      (record_once (Printf.sprintf "scale_statics_n%d" n100) ~ops:8 (fun () ->
           let sample = ref 0.0 in
           for d = 0 to 7 do
             let info = Bgp.Route_static.compute ~tiebreak sg d in
             sample :=
               !sample +. float_of_int (Nsutil.I32.get info.Bgp.Route_static.tie_off n100)
           done;
           !sample));
    scale_rows :=
      (n100, 0, 0.0, Option.value ~default:0 (Nsobs.Rss.peak_kb ()), None) :: !scale_rows
  end;
  let buf = Buffer.create 2048 in
  let b fmt = Printf.bprintf buf fmt in
  b "{\n";
  b "  \"schema\": \"sbgp-bench-v1\",\n";
  b "  \"n\": %d,\n" n;
  b "  \"seed\": %d,\n" seed;
  b "  \"workers\": %d,\n" workers;
  b "  \"smoke\": %b,\n" smoke;
  b "  \"kernels\": [\n";
  let ordered = List.rev !kernels in
  let nk = List.length ordered in
  List.iteri
    (fun i (name, ops, reps, per_rep, ns) ->
      b
        "    {\"name\": \"%s\", \"ops_per_rep\": %d, \"reps\": %d, \"s_per_rep\": \
         %.6f, \"ns_per_op\": %.1f}%s\n"
        name ops reps per_rep ns
        (if i = nk - 1 then "" else ","))
    ordered;
  b "  ],\n";
  b "  \"sweep_fanout\": {\"workers\": %d, \"domains\": %d},\n" workers fanout_domains;
  b
    "  \"engine\": {\"workers\": %d, \"rounds\": %d, \"wall_s\": %.3f, \
     \"rounds_per_s\": %.3f, \"statics_hits\": %d, \"statics_misses\": %d, \
     \"statics_evictions\": %d},\n"
    workers rounds engine_wall rounds_per_s result.statics_hits result.statics_misses
    result.statics_evictions;
  b
    "  \"budget_differential\": {\"budget_bytes\": %d, \"evictions\": %d, \
     \"identical\": %b},\n"
    budget_bytes bounded.statics_evictions identical;
  (match List.rev !scale_rows with
  | [] -> ()
  | rows ->
      b "  \"scale\": {\"rounds_cap\": %d, \"series\": [\n" scale_rounds;
      let nr = List.length rows in
      List.iteri
        (fun i (sn, rr, wall, rss_kb, ident) ->
          b
            "    {\"n\": %d, \"rounds\": %d, \"wall_s\": %.3f, \"peak_rss_kb_after\": \
             %d, \"identity_checked\": %s}%s\n"
            sn rr wall rss_kb
            (match ident with
            | None -> "null"
            | Some v -> string_of_bool v)
            (if i = nr - 1 then "" else ","))
        rows;
      b "  ]},\n");
  b "  \"peak_rss_kb\": %d\n" (Option.value ~default:0 (Nsobs.Rss.peak_kb ()));
  b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path;
  (* Schema self-check: re-read the file and require every key a
     consumer depends on, so the JSON can't silently rot. *)
  let content = In_channel.with_open_text path In_channel.input_all in
  List.iter
    (fun key ->
      if not (contains content key) then begin
        Printf.eprintf "bench: %s is missing required key %s\n" path key;
        exit 1
      end)
    ([
      "\"schema\": \"sbgp-bench-v1\"";
      "\"statics_build\"";
      "\"statics_repair\"";
      "\"checkpoint_churn\"";
      "\"forest_sweep_w1\"";
      "\"flip_probe_w1\"";
      "\"flip_full_w1\"";
      "\"flip_repair_w1\"";
      "\"obs_overhead\"";
      "\"sweep_fanout\"";
      "\"ns_per_op\"";
      "\"rounds_per_s\"";
      "\"budget_differential\"";
      "\"peak_rss_kb\"";
    ]
    @
    if flag "--scale" then
      [
        "\"scale\"";
        "\"scale_gen_n36000\"";
        "\"scale_engine_n36000\"";
        "\"scale_load_bin_n100000\"";
        "\"scale_statics_n100000\"";
      ]
    else []);
  if not identical then begin
    prerr_endline "bench: bounded-statics run diverged from the unbounded run";
    exit 1
  end;
  (match (Nsobs.Control.trace_path (), Nsobs.Control.metrics_path ()) with
  | None, None -> ()
  | t, m ->
      Nsobs.Control.flush ();
      Option.iter validate_trace t;
      Option.iter (validate_metrics ~mid:counters_mid) m);
  Option.iter
    (fun committed -> compare_bench ~fresh_path:path ~committed_path:committed)
    (str_flag "--compare")

let () =
  Nsobs.Control.init ();
  Option.iter Nsobs.Control.set_trace (str_flag "--trace");
  Option.iter Nsobs.Control.set_metrics (str_flag "--metrics");
  let t0 = Unix.gettimeofday () in
  (match str_flag "--json" with
  | Some path -> if flag "--scale-smoke" then run_scale_smoke ~path else run_json_bench ~path
  | None ->
      if not (flag "--bench-only") then run_experiments ();
      if not (flag "--no-bench") then begin
        report_engine_sweep ();
        report_fault_tolerance ();
        run_bechamel ()
      end);
  Printf.printf "\ntotal wall clock: %.1fs\n" (Unix.gettimeofday () -. t0)
