(** The routing-policy model of Appendix A.

    Ranking, applied per destination:
    + LP: prefer routes whose next hop is a customer over peer over
      provider (Gao-Rexford local preference);
    + SP: among those, prefer shortest AS paths;
    + SecP: a *secure* AS prefers fully-secure routes among
      equally-good ones (the paper's proposed tie-break step);
    + TB: finally, a deterministic intradomain tie break.

    Export (GR2): an AS announces a route to a neighbor iff the
    neighbor or the route's next hop is its customer; own prefixes are
    announced to everyone. *)

(** Route class = local-preference class = relationship of the chosen
    next hop. The numeric encodings are part of the wire/scratch
    representation used by {!Route_static} and {!Forest}. *)
type route_class =
  | Self  (** the destination itself; encoded 0 *)
  | Via_customer  (** encoded 1 *)
  | Via_peer  (** encoded 2 *)
  | Via_provider  (** encoded 3 *)
  | Unreachable  (** encoded 4 *)

val class_to_char : route_class -> char
val class_of_char : char -> route_class
val class_to_string : route_class -> string

(** The TB step. [Lowest_id] matches the gadget constructions of the
    appendices ("break ties in favor of the lowest AS number");
    [Hashed seed] is the paper's [H(a,b)] hash tie break; [Ranked]
    consults an explicit per-(node, next hop) rank table (used by the
    Appendix-K constructions, whose correctness rests on specific
    tie-break preferences), falling back to lowest-id. *)
type ranking

type tiebreak = Lowest_id | Hashed of int | Ranked of ranking

val ranking_create : unit -> ranking
val set_rank : ranking -> node:int -> next_hop:int -> int -> unit
(** Lower rank wins. Unranked pairs fall back to the next hop's id. *)

val tiebreak_key : tiebreak -> int -> int -> int
(** [tiebreak_key tb a b] is the rank of next-hop [b] as seen by [a];
    the neighbor with the smallest key wins. *)

val preferred : tiebreak -> int -> current:int -> candidate:int -> bool
(** [preferred tb a ~current ~candidate] is true when [candidate]
    beats [current] ([current = -1] means no choice yet). *)

val tiebreak_equal : tiebreak -> tiebreak -> bool
(** Do two tie-break policies compute the same keys? [Ranked] tables
    compare by identity (they are mutable). *)
