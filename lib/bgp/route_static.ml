module Csr = Nsutil.Csr
module I32 = Nsutil.I32
module Graph = Asgraph.Graph

type dest_info = {
  dest : int;
  cls : Bytes.t;
  len : Bytes.t;
  tie_off : I32.t;
  tie : I32.t;
  tie_rev_off : I32.t;
  tie_rev : I32.t;
  order : I32.t;
  tb : Policy.tiebreak;
  max_len : int;
}

let inf = max_int
let max_path_len = 254

(* Direct element primitives over [I32] Bigarrays, used by every hot
   loop in this file. The classic (non-flambda) compiler does not
   inline the [I32] accessors across modules, and the three-stage
   compute and the repair kernels touch enough int32 elements that
   out-of-line calls triple their cost; same-unit helpers specialize
   down to single loads and stores. *)
let ba_get (a : I32.t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)
let ba_set (a : I32.t) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let c_self = Policy.class_to_char Policy.Self
let c_cust = Policy.class_to_char Policy.Via_customer
let c_peer = Policy.class_to_char Policy.Via_peer
let c_prov = Policy.class_to_char Policy.Via_provider
let c_unreach = Policy.class_to_char Policy.Unreachable

(* Stable insertion sort of one tie row by static tiebreak key: among
   equal keys the earlier-inserted member stays first, so taking the
   row head reproduces exactly the legacy strictly-less minimum scan
   over insertion order. Rows are tiny (mean 1-3 members); insertion
   sort beats anything with allocation here. *)
let sort_row tb i members keys len =
  for a = 0 to len - 1 do
    keys.(a) <- Policy.tiebreak_key tb i members.(a)
  done;
  for a = 1 to len - 1 do
    let m = members.(a) and k = keys.(a) in
    let b = ref a in
    while !b > 0 && keys.(!b - 1) > k do
      members.(!b) <- members.(!b - 1);
      keys.(!b) <- keys.(!b - 1);
      decr b
    done;
    members.(!b) <- m;
    keys.(!b) <- k
  done

(* All scratch the three-stage computation touches, hoisted into a
   reusable builder: a streaming store computes tens of thousands of
   records per engine round at 36K+ nodes, and per-call allocation of
   the O(n) temporaries would make the sweep GC-bound. A builder is
   single-domain state — the engine keeps one per worker. In transient
   mode the *output* record also lives in builder-owned buffers (valid
   only until the builder's next transient compute, and must never be
   inserted into a store); persistent mode allocates the record fresh
   and reuses only the scratch. *)
type builder = {
  bd_n : int;
  bd_l1 : int array;
  bd_bl : int array;
  bd_queue : int array;  (* stage-1 BFS ring; each node enqueues once *)
  bd_bq : Nsutil.Bucketq.t;
  bd_done : Bytes.t;
  bd_tie_count : int array;
  bd_rev_count : int array;
  bd_counts : int array;  (* counting-sort buckets over path lengths *)
  bd_starts : int array;
  bd_order_full : int array;
  mutable bd_members : int array;  (* tie-row sort buffers, grown on demand *)
  mutable bd_keys : int array;
  (* Transient-record output buffers. *)
  bd_cls : Bytes.t;
  bd_len : Bytes.t;
  bd_tie_off : I32.t;  (* n + 1 *)
  bd_tie_rev_off : I32.t;  (* n + 1 *)
  mutable bd_tie : I32.t;  (* grown on demand *)
  mutable bd_tie_rev : I32.t;
  bd_order : I32.t;  (* n *)
}

let order_buckets = max_path_len + 2

let make_builder n =
  {
    bd_n = n;
    bd_l1 = Array.make n inf;
    bd_bl = Array.make n inf;
    bd_queue = Array.make (max 1 n) 0;
    bd_bq = Nsutil.Bucketq.create ~max_key:(max_path_len + 1);
    bd_done = Bytes.make n '\000';
    bd_tie_count = Array.make n 0;
    bd_rev_count = Array.make n 0;
    bd_counts = Array.make order_buckets 0;
    bd_starts = Array.make order_buckets 0;
    bd_order_full = Array.make n 0;
    bd_members = [||];
    bd_keys = [||];
    bd_cls = Bytes.make n c_unreach;
    bd_len = Bytes.make n '\000';
    bd_tie_off = I32.create (n + 1);
    bd_tie_rev_off = I32.create (n + 1);
    bd_tie = I32.create 0;
    bd_tie_rev = I32.create 0;
    bd_order = I32.create n;
  }

(* Three-stage Gao-Rexford route computation (Appendix A / [15]):
   customer routes climb provider links from d; peer routes add one
   peering hop onto a customer route; provider routes descend customer
   links from any already-routed node, in ascending length order. The
   adjacency CSR arrays are walked by direct offset-range loops — no
   per-node closures on this path. *)
let compute_with ?(tiebreak = Policy.Lowest_id) ?(transient = false) bd g d =
  let n = Graph.n g in
  if bd.bd_n <> n then
    invalid_arg
      (Printf.sprintf "Route_static.compute_with: builder for %d nodes, graph has %d"
         bd.bd_n n);
  let cust_off = g.Graph.customers.Csr.offsets and cust_dat = g.Graph.customers.Csr.data in
  let prov_off = g.Graph.providers.Csr.offsets and prov_dat = g.Graph.providers.Csr.data in
  let peer_off = g.Graph.peers.Csr.offsets and peer_dat = g.Graph.peers.Csr.data in
  let l1 = bd.bd_l1 in
  let bl = bd.bd_bl in
  Array.fill l1 0 n inf;
  Array.fill bl 0 n inf;
  let cls =
    if transient then begin
      Bytes.fill bd.bd_cls 0 n c_unreach;
      bd.bd_cls
    end
    else Bytes.make n c_unreach
  in
  (* Stage 1: customer-route lengths. *)
  l1.(d) <- 0;
  let queue = bd.bd_queue in
  queue.(0) <- d;
  let q_head = ref 0 and q_tail = ref 1 in
  while !q_head < !q_tail do
    let x = queue.(!q_head) in
    incr q_head;
    for k = ba_get prov_off x to ba_get prov_off (x + 1) - 1 do
      let p = ba_get prov_dat k in
      if l1.(p) = inf then begin
        l1.(p) <- l1.(x) + 1;
        queue.(!q_tail) <- p;
        incr q_tail
      end
    done
  done;
  Bytes.set cls d c_self;
  bl.(d) <- 0;
  for i = 0 to n - 1 do
    if i <> d && l1.(i) < inf then begin
      bl.(i) <- l1.(i);
      Bytes.set cls i c_cust
    end
  done;
  (* Stage 2: peer routes for nodes without a customer route. *)
  for i = 0 to n - 1 do
    if bl.(i) = inf then begin
      let best = ref inf in
      for k = ba_get peer_off i to ba_get peer_off (i + 1) - 1 do
        let p = ba_get peer_dat k in
        if l1.(p) < !best then best := l1.(p)
      done;
      if !best < inf then begin
        bl.(i) <- !best + 1;
        Bytes.set cls i c_peer
      end
    end
  done;
  (* Stage 3: provider routes, in ascending final length. *)
  let bq = bd.bd_bq in
  Nsutil.Bucketq.reset bq;
  let done_ = bd.bd_done in
  Bytes.fill done_ 0 n '\000';
  for i = 0 to n - 1 do
    if bl.(i) < inf then Nsutil.Bucketq.push bq ~key:bl.(i) i
  done;
  let rec drain () =
    match Nsutil.Bucketq.pop bq with
    | None -> ()
    | Some (key, x) ->
        if Bytes.get done_ x = '\000' then begin
          Bytes.set done_ x '\001';
          if bl.(x) = inf then begin
            bl.(x) <- key;
            Bytes.set cls x c_prov
          end;
          let next_key = key + 1 in
          if next_key <= max_path_len then
            for k = ba_get cust_off x to ba_get cust_off (x + 1) - 1 do
              let c = ba_get cust_dat k in
              if Bytes.get done_ c = '\000' && bl.(c) = inf then
                Nsutil.Bucketq.push bq ~key:next_key c
            done
        end;
        drain ()
  in
  drain ();
  (* Tiebreak sets, two-pass counting layout: count members per node,
     prefix-sum into offsets, then fill — no cons-list churn. *)
  let exports_customer_route j =
    let c = Bytes.unsafe_get cls j in
    c = c_self || c = c_cust
  in
  let tie_count = bd.bd_tie_count in
  Array.fill tie_count 0 n 0;
  let count_tie i =
    let want = bl.(i) - 1 in
    let cl = Bytes.unsafe_get cls i in
    let acc = ref 0 in
    if cl = c_cust then
      for k = ba_get cust_off i to ba_get cust_off (i + 1) - 1 do
        let c = ba_get cust_dat k in
        if bl.(c) = want && exports_customer_route c then incr acc
      done
    else if cl = c_peer then
      for k = ba_get peer_off i to ba_get peer_off (i + 1) - 1 do
        let p = ba_get peer_dat k in
        if bl.(p) = want && exports_customer_route p then incr acc
      done
    else
      for k = ba_get prov_off i to ba_get prov_off (i + 1) - 1 do
        if bl.(ba_get prov_dat k) = want then incr acc
      done;
    !acc
  in
  for i = 0 to n - 1 do
    if i <> d && bl.(i) < inf then tie_count.(i) <- count_tie i
  done;
  let tie_off = if transient then bd.bd_tie_off else I32.create (n + 1) in
  let total = ref 0 in
  for i = 0 to n - 1 do
    I32.unsafe_set tie_off i !total;
    total := !total + tie_count.(i)
  done;
  I32.unsafe_set tie_off n !total;
  let tie =
    if transient then begin
      if I32.length bd.bd_tie < !total then
        bd.bd_tie <- I32.create (max !total (2 * I32.length bd.bd_tie));
      Bigarray.Array1.sub bd.bd_tie 0 !total
    end
    else I32.create !total
  in
  let fill_tie i =
    let want = bl.(i) - 1 in
    let cl = Bytes.unsafe_get cls i in
    let w = ref (I32.unsafe_get tie_off i) in
    let put v =
      I32.unsafe_set tie !w v;
      incr w
    in
    if cl = c_cust then
      for k = ba_get cust_off i to ba_get cust_off (i + 1) - 1 do
        let c = ba_get cust_dat k in
        if bl.(c) = want && exports_customer_route c then put c
      done
    else if cl = c_peer then
      for k = ba_get peer_off i to ba_get peer_off (i + 1) - 1 do
        let p = ba_get peer_dat k in
        if bl.(p) = want && exports_customer_route p then put p
      done
    else
      for k = ba_get prov_off i to ba_get prov_off (i + 1) - 1 do
        let p = ba_get prov_dat k in
        if bl.(p) = want then put p
      done
  in
  for i = 0 to n - 1 do
    if tie_count.(i) > 0 then fill_tie i
  done;
  (* Pre-sort each row by static tiebreak key (stable), so the forest
     kernel's Pass 1 takes the first eligible member instead of
     running a key-compare chain per member. *)
  let max_row = Array.fold_left max 0 tie_count in
  if max_row > 1 then begin
    if Array.length bd.bd_members < max_row then begin
      bd.bd_members <- Array.make (max max_row (2 * Array.length bd.bd_members)) 0;
      bd.bd_keys <- Array.make (Array.length bd.bd_members) 0
    end;
    let members = bd.bd_members in
    let keys = bd.bd_keys in
    for i = 0 to n - 1 do
      let row = tie_count.(i) in
      if row > 1 then begin
        let off = I32.unsafe_get tie_off i in
        for k = 0 to row - 1 do
          members.(k) <- I32.unsafe_get tie (off + k)
        done;
        sort_row tiebreak i members keys row;
        for k = 0 to row - 1 do
          I32.unsafe_set tie (off + k) members.(k)
        done
      end
    done
  end;
  (* Stable counting sort by length ({!Nsutil.Order.by_small_key}
     inlined over the builder's bucket scratch): reachable nodes in
     ascending (length, id), unreachable ones in the overflow bucket
     at the end. *)
  let order_full = bd.bd_order_full in
  let counts = bd.bd_counts and starts = bd.bd_starts in
  let bucket i =
    let v = bl.(i) in
    if v >= 0 && v <= max_path_len then v else order_buckets - 1
  in
  Array.fill counts 0 order_buckets 0;
  for i = 0 to n - 1 do
    counts.(bucket i) <- counts.(bucket i) + 1
  done;
  starts.(0) <- 0;
  for b = 1 to order_buckets - 1 do
    starts.(b) <- starts.(b - 1) + counts.(b - 1)
  done;
  for i = 0 to n - 1 do
    let b = bucket i in
    order_full.(starts.(b)) <- i;
    starts.(b) <- starts.(b) + 1
  done;
  (* Trim unreachable nodes (sorted last) off the order. *)
  let reachable_count =
    Array.fold_left (fun acc v -> if v < inf then acc + 1 else acc) 0 bl
  in
  let order =
    if transient then Bigarray.Array1.sub bd.bd_order 0 reachable_count
    else I32.create reachable_count
  in
  for k = 0 to reachable_count - 1 do
    I32.unsafe_set order k order_full.(k)
  done;
  (* Reverse tiebreak adjacency: row [j] lists every node whose tie
     set contains [j], ordered by DESCENDING position in [order] — the
     exact order Pass 2 of the forest kernel folds child subtrees into
     parents, so an incremental repair that re-sums one parent's
     subtree walks the same addends in the same order (bit-identical
     floats). *)
  let rev_count = bd.bd_rev_count in
  Array.fill rev_count 0 n 0;
  for k = 0 to !total - 1 do
    let j = I32.unsafe_get tie k in
    rev_count.(j) <- rev_count.(j) + 1
  done;
  let tie_rev_off = if transient then bd.bd_tie_rev_off else I32.create (n + 1) in
  let rt = ref 0 in
  for i = 0 to n - 1 do
    I32.unsafe_set tie_rev_off i !rt;
    rt := !rt + rev_count.(i)
  done;
  I32.unsafe_set tie_rev_off n !rt;
  let tie_rev =
    if transient then begin
      (* [!rt = !total]: the reverse CSR is a permutation of the tie
         CSR's members. *)
      if I32.length bd.bd_tie_rev < !rt then
        bd.bd_tie_rev <- I32.create (max !rt (2 * I32.length bd.bd_tie_rev));
      Bigarray.Array1.sub bd.bd_tie_rev 0 !rt
    end
    else I32.create !rt
  in
  let cursor = rev_count in
  for i = 0 to n - 1 do
    cursor.(i) <- I32.unsafe_get tie_rev_off i
  done;
  for k = reachable_count - 1 downto 1 do
    let i = order_full.(k) in
    for p = I32.unsafe_get tie_off i to I32.unsafe_get tie_off (i + 1) - 1 do
      let j = I32.unsafe_get tie p in
      I32.unsafe_set tie_rev cursor.(j) i;
      cursor.(j) <- cursor.(j) + 1
    done
  done;
  let max_len = Array.fold_left (fun acc v -> if v < inf then max acc v else acc) 0 bl in
  let len =
    if transient then begin
      Bytes.fill bd.bd_len 0 n '\000';
      bd.bd_len
    end
    else Bytes.make n '\000'
  in
  for i = 0 to n - 1 do
    if bl.(i) < inf then Bytes.set len i (Char.chr bl.(i))
  done;
  { dest = d; cls; len; tie_off; tie; tie_rev_off; tie_rev; order; tb = tiebreak; max_len }

let compute ?tiebreak g d = compute_with ?tiebreak (make_builder (Graph.n g)) g d

(* Deep copy, for promoting a transient record into a store slot. *)
let info_copy info =
  let i32_copy (a : I32.t) =
    let c = I32.create (I32.length a) in
    I32.blit ~src:a ~src_pos:0 ~dst:c ~dst_pos:0 ~len:(I32.length a);
    c
  in
  {
    info with
    cls = Bytes.copy info.cls;
    len = Bytes.copy info.len;
    tie_off = i32_copy info.tie_off;
    tie = i32_copy info.tie;
    tie_rev_off = i32_copy info.tie_rev_off;
    tie_rev = i32_copy info.tie_rev;
    order = i32_copy info.order;
  }

let class_of info i = Policy.class_of_char (Bytes.get info.cls i)

let reachable info i = Bytes.get info.cls i <> c_unreach

let length_of info i =
  if not (reachable info i) then
    invalid_arg (Printf.sprintf "Route_static.length_of: %d unreachable" i)
  else Char.code (Bytes.get info.len i)

let sorted_for info tiebreak = Policy.tiebreak_equal info.tb tiebreak

(* ------------------------------------------------------------------ *)
(* Per-destination accessors over the compact layout. *)

let order_length info = I32.length info.order
let order_get info k = I32.get info.order k

let iter_order info f =
  for k = 0 to I32.length info.order - 1 do
    f (I32.unsafe_get info.order k)
  done

let tie_size info i = I32.get info.tie_off (i + 1) - I32.get info.tie_off i

let tie_get info i k = I32.get info.tie (I32.get info.tie_off i + k)

let tie_list info i =
  let lo = I32.get info.tie_off i and hi = I32.get info.tie_off (i + 1) in
  let acc = ref [] in
  for k = hi - 1 downto lo do
    acc := I32.get info.tie k :: !acc
  done;
  !acc

let tie_exists info i p =
  let hi = I32.get info.tie_off (i + 1) in
  let rec loop k = k < hi && (p (I32.unsafe_get info.tie k) || loop (k + 1)) in
  loop (I32.get info.tie_off i)

let tie_fold info i f init =
  let acc = ref init in
  for k = I32.get info.tie_off i to I32.get info.tie_off (i + 1) - 1 do
    acc := f !acc (I32.unsafe_get info.tie k)
  done;
  !acc

let tie_mem info i v = tie_exists info i (fun x -> x = v)

let info_bytes info =
  Bytes.length info.cls + Bytes.length info.len
  + I32.byte_size info.tie_off
  + I32.byte_size info.tie
  + I32.byte_size info.tie_rev_off
  + I32.byte_size info.tie_rev
  + I32.byte_size info.order + 128

let info_equal a b =
  a.dest = b.dest
  && Policy.tiebreak_equal a.tb b.tb
  && a.max_len = b.max_len
  && Bytes.equal a.cls b.cls
  && Bytes.equal a.len b.len
  && I32.equal a.tie_off b.tie_off
  && I32.equal a.tie b.tie
  && I32.equal a.tie_rev_off b.tie_rev_off
  && I32.equal a.tie_rev b.tie_rev
  && I32.equal a.order b.order

(* ------------------------------------------------------------------ *)
(* Incremental repair under topology churn (DESIGN.md section 10).

   [repair_surgical] patches one destination's statics across a
   {!Graph.delta} without rerunning the three-stage computation,
   whenever the delta provably cannot alter any existing node's class,
   length or tie row for this destination. Two facts carry the proof:

   - An appended stub (a new node that only becomes the *customer* of
     existing providers) has no customers and no peers, so it exports
     no customer route and is nobody's provider or peer: stage 1's
     provider-link BFS and stage 2's peer scans never read it, and in
     stage 3 it is a leaf of the bucket queue — its own best length is
     [min provider length + 1] and it pushes nothing. Every existing
     byte of the statics is untouched; the stub only appends CSR rows
     and splices into the order and the reverse-tiebreak layout.

   - Routes to [d] propagate exclusively through nodes that already
     hold a route to [d]. An edge op whose endpoints are both
     unreachable (in the pre-delta statics) can therefore never create
     or destroy a route for anyone: the reachable set's adjacency is
     unchanged, so the fixed point is unchanged. (This argument is
     joint across the delta's ops: it holds because *every* non-stub
     op in a surgical delta has only unreachable endpoints, and stub
     attachments never extend reachability among existing nodes.)

   Everything else — an insert or withdrawal touching a reachable
   node, class/participation toggles aside (the statics never read
   [Graph.klass]), edges among new nodes — falls back to a full
   {!compute} via {!repair}. The frontier of the delta is thus exact:
   destinations whose trees the churn cannot reach share their statics
   physically; reached ones are either patched in O(copy) or rebuilt. *)

type kernel = Full | Delta

let kernel_to_string = function Full -> "full" | Delta -> "delta"

let kernel_of_string = function
  | "full" -> Some Full
  | "delta" -> Some Delta
  | _ -> None

let kernel_of_env () =
  match Sys.getenv_opt "SBGP_STATICS_KERNEL" with
  | None | Some "" -> Delta
  | Some s -> (
      match kernel_of_string (String.lowercase_ascii (String.trim s)) with
      | Some k -> k
      | None ->
          Printf.eprintf
            "sbgp: invalid SBGP_STATICS_KERNEL=%S (expected full|delta); using delta\n%!" s;
          Delta)

(* Bump allocator over large slab chunks. The GC paces major work on
   custom-block bytes, so allocating each migrated entry's arrays as
   its own Bigarray makes a store-wide rebase allocation-dominated —
   the per-entry blocks cost an order of magnitude more than the
   patch work they hold. A slab hands out sub-slices of multi-MB
   chunks instead. Entries allocated from a slab share the chunks'
   lifetime, so [rebase] only uses one for unbounded stores, where
   nothing is ever evicted and the chunks die exactly when the next
   rebase (or drop) releases the migrated entries; bounded stores
   keep per-entry arenas so eviction keeps releasing real memory. *)
type slab = { mutable s_chunk : I32.t; mutable s_pos : int }

let slab_chunk_words = 1 lsl 20 (* 4 MB of int32 per chunk *)
let slab_create () = { s_chunk = I32.create 0; s_pos = 0 }

let slab_alloc sl len =
  if sl.s_pos + len > I32.length sl.s_chunk then begin
    sl.s_chunk <- I32.create (max slab_chunk_words len);
    sl.s_pos <- 0
  end;
  let s = Bigarray.Array1.sub sl.s_chunk sl.s_pos len in
  sl.s_pos <- sl.s_pos + len;
  s

(* Per-delta repair context: everything that does not depend on the
   destination — op classification and reusable scratch buffers — is
   hoisted here so a store [rebase] pays for it once, not once per
   resident entry (the per-entry patch must stay within a small
   multiple of its memcpy floor for repair to beat rebuild per unit of
   churn). The scratch is only valid within one [repair_with_ctx]
   call; [rebase] is single-threaded by contract, and the public
   [repair]/[repair_surgical] build a fresh context per call. *)
type repair_ctx = {
  rx_g : Graph.t;  (* the churned graph *)
  rx_delta : Graph.delta;
  rx_eligible : bool;
      (* false: some op (an edge among new nodes, say) disqualifies
         the surgical path for every destination *)
  rx_endpoints : int array;
      (* base-graph endpoints of the non-stub-attach edge ops: a
         destination is surgical iff none of them is reachable *)
  (* scratch, reused across calls *)
  rx_s_len : int array;  (* grown: appended-node length, 0 = unreachable *)
  rx_stubs : int array;  (* grown: reachable stubs, ascending (length, id) *)
  rx_cnt : int array;  (* 256 counting-sort buckets over lengths *)
  rx_row_off : int array;  (* grown + 1: per-stub tie-row offsets *)
  rx_row : int array;  (* flattened stub tie rows *)
  rx_slot_stub : int array;  (* owning stub of each flattened tie slot *)
  rx_row_buf : int array;  (* tie-row sort buffers, max new-node degree *)
  rx_key_buf : int array;
  rx_ex_count : int array;  (* base_n: appended rev-row members per provider *)
  rx_ex_head : int array;  (* base_n: provider's extras head slot, -1 = none *)
  rx_ex_next : int array;  (* next slot in a provider's extras list *)
  rx_pdat : int array;
      (* appended slice of the provider CSR, each stub's row pre-sorted
         by (tiebreak key, CSR position) — a filtered subset of a row
         is then already in stable tiebreak order, so per-destination
         tie rows need no sorting at all *)
  rx_sorted_for : Policy.tiebreak option ref;  (* policy [rx_pdat] is sorted under *)
  rx_alloc : int -> I32.t;  (* arena allocator for patched entries *)
}

(* Tiebreak-policy equality at the only granularity that matters here:
   rank tables compare by identity (they are mutable). *)
let tb_same a b =
  match (a, b) with
  | Policy.Lowest_id, Policy.Lowest_id -> true
  | Policy.Hashed x, Policy.Hashed y -> x = y
  | Policy.Ranked r1, Policy.Ranked r2 -> r1 == r2
  | _ -> false

let make_repair_ctx g' (delta : Graph.delta) =
  let base_n = delta.Graph.base_n in
  let n' = Graph.n g' in
  if n' <> base_n + delta.Graph.grown then
    invalid_arg "Route_static.repair: graph does not match delta";
  let eligible = ref true in
  let endpoints = ref [] in
  List.iter
    (fun op ->
      match op with
      | Graph.Set_cp _ -> () (* classes are never read by [compute] *)
      | Graph.Edge_add ((p, c), Graph.Customer) when p < base_n && c >= base_n ->
          () (* stub attach: recovered from the provider CSR below *)
      | Graph.Edge_add ((c, p), Graph.Provider) when p < base_n && c >= base_n -> ()
      | Graph.Edge_add ((a, b), _) | Graph.Edge_remove ((a, b), _) ->
          if a >= base_n || b >= base_n then eligible := false
          else endpoints := a :: b :: !endpoints)
    delta.Graph.ops;
  let grown = delta.Graph.grown in
  let prov_off = g'.Graph.providers.Csr.offsets in
  let cap = ba_get prov_off n' - ba_get prov_off base_n in
  let maxdeg = ref 1 in
  for s = base_n to n' - 1 do
    maxdeg := max !maxdeg (ba_get prov_off (s + 1) - ba_get prov_off s)
  done;
  {
    rx_g = g';
    rx_delta = delta;
    rx_eligible = !eligible;
    rx_endpoints = Array.of_list !endpoints;
    rx_s_len = Array.make (max 1 grown) 0;
    rx_stubs = Array.make (max 1 grown) 0;
    rx_cnt = Array.make 256 0;
    rx_row_off = Array.make (grown + 1) 0;
    rx_row = Array.make (max 1 cap) 0;
    rx_slot_stub = Array.make (max 1 cap) 0;
    rx_row_buf = Array.make !maxdeg 0;
    rx_key_buf = Array.make !maxdeg 0;
    rx_ex_count = Array.make (max 1 base_n) 0;
    rx_ex_head = Array.make (max 1 base_n) (-1);
    rx_ex_next = Array.make (max 1 cap) (-1);
    rx_pdat = Array.make (max 1 cap) 0;
    rx_sorted_for = ref None;
    rx_alloc = I32.create;
  }

(* Sort every appended stub's provider row once per (context,
   policy): [sort_row] is stable over CSR position, so any subset of a
   pre-sorted row — the providers achieving the minimum length for one
   destination — is exactly the row the per-destination sort used to
   produce. This hoists all tiebreak-key evaluation out of the
   per-destination patch loop. *)
let rx_prepare_rows rx tb =
  match !(rx.rx_sorted_for) with
  | Some tb0 when tb_same tb0 tb -> ()
  | _ ->
      let g' = rx.rx_g in
      let base_n = rx.rx_delta.Graph.base_n in
      let n' = Graph.n g' in
      let prov_off = g'.Graph.providers.Csr.offsets
      and prov_dat = g'.Graph.providers.Csr.data in
      let pbase = ba_get prov_off base_n in
      let pdat = rx.rx_pdat in
      for st = base_n to n' - 1 do
        let lo = ba_get prov_off st - pbase in
        let c = ba_get prov_off (st + 1) - pbase - lo in
        if c > 0 then begin
          for k = 0 to c - 1 do
            rx.rx_row_buf.(k) <- ba_get prov_dat (lo + pbase + k)
          done;
          if c > 1 then sort_row tb st rx.rx_row_buf rx.rx_key_buf c;
          Array.blit rx.rx_row_buf 0 pdat lo c
        end
      done;
      rx.rx_sorted_for := Some tb

let repair_with_ctx rx info =
  let delta = rx.rx_delta in
  let base_n = delta.Graph.base_n in
  if Bytes.length info.cls <> base_n then
    invalid_arg "Route_static.repair: dest_info does not match delta.base_n";
  let reach i = i < base_n && Bytes.unsafe_get info.cls i <> c_unreach in
  let surgical = ref rx.rx_eligible in
  let ep = rx.rx_endpoints in
  let ne = Array.length ep in
  let i = ref 0 in
  while !surgical && !i < ne do
    if reach (Array.unsafe_get ep !i) then surgical := false;
    incr i
  done;
  if not !surgical then None
  else if delta.Graph.grown = 0 then Some info (* nothing the tree can see changed *)
  else begin
    let g' = rx.rx_g in
    let n' = Graph.n g' in
    let grown = delta.Graph.grown in
    rx_prepare_rows rx info.tb;
    let prov_off = g'.Graph.providers.Csr.offsets in
    let pbase = ba_get prov_off base_n in
    let pdat = rx.rx_pdat in
    (* One pass over the appended stubs fuses three jobs: each stub's
       class/length (min reachable provider + 1 — exactly the key at
       which stage 3's bucket queue would first pop it), the new
       cls/len bytes, and the stub's tiebreak row (the providers that
       achieve the minimum, in provider-CSR order, tiebreak-sorted
       like every other row). Every provider of an appended stub is an
       existing node (make_repair_ctx routed anything else to the
       fallback), so reachability is one byte read. *)
    let s_len = rx.rx_s_len in
    let cls = Bytes.make n' c_unreach in
    Bytes.blit info.cls 0 cls 0 base_n;
    let len = Bytes.make n' '\000' in
    Bytes.blit info.len 0 len 0 base_n;
    let row_off = rx.rx_row_off
    and row = rx.rx_row
    and slot_stub = rx.rx_slot_stub in
    let olen = info.len in
    let w = ref 0 in
    row_off.(0) <- 0;
    let d0 = info.dest in
    for s = base_n to n' - 1 do
      let klo = ba_get prov_off s - pbase and khi = ba_get prov_off (s + 1) - pbase in
      (* One argmin-collect pass: a strictly shorter provider resets
         the row, an equal one appends — [pdat] rows are pre-sorted, so
         the surviving row is born in stable tiebreak order with no
         per-destination sort. Reachability is one byte: an unwritten
         length byte is 0, and the only reachable node of length 0 is
         the destination itself. *)
      let first = !w in
      let best = ref inf in
      for k = klo to khi - 1 do
        let p = Array.unsafe_get pdat k in
        let l = Char.code (Bytes.unsafe_get olen p) in
        if l > 0 || p = d0 then
          if l < !best then begin
            best := l;
            w := first;
            row.(first) <- p;
            slot_stub.(first) <- s;
            w := first + 1
          end
          else if l = !best then begin
            row.(!w) <- p;
            slot_stub.(!w) <- s;
            incr w
          end
      done;
      let j = s - base_n in
      if !best < inf && !best + 1 <= max_path_len then begin
        s_len.(j) <- !best + 1;
        Bytes.unsafe_set cls s c_prov;
        Bytes.unsafe_set len s (Char.unsafe_chr (!best + 1))
      end
      else begin
        s_len.(j) <- 0;
        w := first
      end;
      row_off.(j + 1) <- !w
    done;
    (* Reachable stubs in ascending (length, id): their relative order
       in the new [order], where each sits after every existing node of
       equal length ([Order.by_small_key] is stable by id and all
       appended ids exceed all existing ids). Counting sort over the
       one-byte lengths; filling in ascending id keeps equal lengths
       id-sorted. *)
    let cnt = rx.rx_cnt in
    Array.fill cnt 0 256 0;
    for j = 0 to grown - 1 do
      let l = s_len.(j) in
      if l > 0 then cnt.(l) <- cnt.(l) + 1
    done;
    let acc = ref 0 in
    for l = 1 to 255 do
      let c = cnt.(l) in
      cnt.(l) <- !acc;
      acc := !acc + c
    done;
    let nstub = !acc in
    let stubs = rx.rx_stubs in
    for j = 0 to grown - 1 do
      let l = s_len.(j) in
      if l > 0 then begin
        stubs.(cnt.(l)) <- base_n + j;
        cnt.(l) <- cnt.(l) + 1
      end
    done;
    let extra_total = !w in
    let old_total = I32.length info.tie in
    let old_reach = I32.length info.order in
    let old_rev_total = I32.length info.tie_rev in
    (* The five int32 arrays come from the context's allocator: plain
       [I32.create] for one-off repairs and bounded stores (eviction
       keeps releasing real memory), slab sub-slices for store-wide
       rebases (see [slab]). *)
    let sz_off = n' + 1 in
    let sz_tie = old_total + extra_total in
    let sz_rev = old_rev_total + extra_total in
    let sz_order = old_reach + nstub in
    let tie_off = rx.rx_alloc sz_off in
    let tie = rx.rx_alloc sz_tie in
    let tie_rev_off = rx.rx_alloc sz_off in
    let tie_rev = rx.rx_alloc sz_rev in
    let order = rx.rx_alloc sz_order in
    I32.blit ~src:info.tie_off ~src_pos:0 ~dst:tie_off ~dst_pos:0 ~len:(base_n + 1);
    for j = 1 to grown do
      ba_set tie_off (base_n + j) (old_total + row_off.(j))
    done;
    I32.blit ~src:info.tie ~src_pos:0 ~dst:tie ~dst_pos:0 ~len:old_total;
    for k = 0 to extra_total - 1 do
      ba_set tie (old_total + k) row.(k)
    done;
    (* Order: splice the stubs in after the existing nodes of their
       length. Stubs share few distinct lengths, so the merge runs one
       binary search and one wholesale chunk copy per distinct length,
       then appends that length's run of stubs. *)
    let cursor = ref 0 and out = ref 0 in
    let idx = ref 0 in
    while !idx < nstub do
      let l = s_len.(stubs.(!idx) - base_n) in
      let stop = ref (!idx + 1) in
      while !stop < nstub && s_len.(stubs.(!stop) - base_n) = l do incr stop done;
      let lo = ref !cursor and hi = ref old_reach in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Char.code (Bytes.unsafe_get info.len (ba_get info.order mid)) <= l then lo := mid + 1 else hi := mid
      done;
      let ins = !lo in
      I32.blit ~src:info.order ~src_pos:!cursor ~dst:order ~dst_pos:!out
        ~len:(ins - !cursor);
      out := !out + (ins - !cursor);
      cursor := ins;
      for k = !idx to !stop - 1 do
        ba_set order !out stubs.(k);
        incr out
      done;
      idx := !stop
    done;
    I32.blit ~src:info.order ~src_pos:!cursor ~dst:order ~dst_pos:!out
      ~len:(old_reach - !cursor);
    (* Reverse tiebreak CSR: only the stub providers' rows gain
       members. Rows are ordered by descending order position, which
       over the new order is descending (length, id) — appended ids
       exceed existing ones, so a stub sorts after (= higher position
       than) every existing node of its length. Walking the stubs in
       ascending position and pushing each onto its providers' linked
       extras leaves every list descending; one pass over the
       providers then copies unchanged row ranges wholesale and merges
       the changed rows in place. *)
    let ex_count = rx.rx_ex_count
    and ex_head = rx.rx_ex_head
    and ex_next = rx.rx_ex_next in
    for idx = 0 to nstub - 1 do
      let j = stubs.(idx) - base_n in
      for k = row_off.(j) to row_off.(j + 1) - 1 do
        let p = row.(k) in
        ex_count.(p) <- ex_count.(p) + 1;
        ex_next.(k) <- ex_head.(p);
        ex_head.(p) <- k
      done
    done;
    let pos_gt a b =
      let la = Char.code (Bytes.unsafe_get len a)
      and lb = Char.code (Bytes.unsafe_get len b) in
      la > lb || (la = lb && a > b)
    in
    let sh = ref 0 in
    let prev_end = ref 0 in
    for p = 0 to base_n - 1 do
      ba_set tie_rev_off p (ba_get info.tie_rev_off p + !sh);
      if ex_count.(p) > 0 then begin
        let p_lo = ba_get info.tie_rev_off p
        and p_hi = ba_get info.tie_rev_off (p + 1) in
        let sh0 = !sh in
        for i = !prev_end to p_lo - 1 do
          Bigarray.Array1.unsafe_set tie_rev (i + sh0)
            (Bigarray.Array1.unsafe_get info.tie_rev i)
        done;
        let wr = ref (p_lo + !sh) in
        let ex = ref ex_head.(p) in
        let k = ref p_lo in
        while !k < p_hi || !ex >= 0 do
          let take_stub =
            !ex >= 0
            && (!k >= p_hi
               || pos_gt slot_stub.(!ex) (ba_get info.tie_rev !k))
          in
          if take_stub then begin
            ba_set tie_rev !wr slot_stub.(!ex);
            ex := ex_next.(!ex)
          end
          else begin
            ba_set tie_rev !wr (ba_get info.tie_rev !k);
            incr k
          end;
          incr wr
        done;
        sh := !sh + ex_count.(p);
        prev_end := p_hi
      end
    done;
    I32.blit ~src:info.tie_rev ~src_pos:!prev_end ~dst:tie_rev
      ~dst_pos:(!prev_end + !sh) ~len:(old_rev_total - !prev_end);
    let tail = old_rev_total + extra_total in
    for i = base_n to n' do
      ba_set tie_rev_off i tail
    done;
    (* Reset the provider-indexed scratch for the next call; [ex_next]
       may stay stale, it is only read behind a live head. *)
    for k = 0 to extra_total - 1 do
      let p = row.(k) in
      ex_count.(p) <- 0;
      ex_head.(p) <- -1
    done;
    let max_len = ref info.max_len in
    for j = 0 to grown - 1 do
      if s_len.(j) > !max_len then max_len := s_len.(j)
    done;
    Some
      {
        dest = info.dest;
        cls;
        len;
        tie_off;
        tie;
        tie_rev_off;
        tie_rev;
        order;
        tb = info.tb;
        max_len = !max_len;
      }
  end

let repair_surgical g' ~delta info = repair_with_ctx (make_repair_ctx g' delta) info

let repair g' ~delta info =
  match repair_surgical g' ~delta info with
  | Some info' -> info'
  | None -> compute ~tiebreak:info.tb g' info.dest

(* ------------------------------------------------------------------ *)
(* CSR invariant self-checks: cheap structural validation of one
   record — the probe of the engine's graceful-degradation ladder and
   of the post-repair boundary in [rebase]. A record that passes is
   structurally sound: offsets monotone and bounded, the order a
   duplicate-free ascending-length permutation of exactly the
   reachable nodes, every row member in range, and the reverse
   tiebreak CSR holding exactly the transposed multiset of the forward
   rows (sum and xor of a pairwise hash — a corrupted member or a
   shifted row boundary perturbs at least one accumulator). It does
   NOT prove the record equals a fresh [compute] — that is the churn
   differential suite's job — but every in-tree corruption
   (bit-flipped offsets, truncated rows, spliced members) lands
   here. Cost: O(record size), the same order as copying it. *)

exception Invariant of string

let check_info g info =
  let n = Graph.n g in
  let fail fmt = Printf.ksprintf (fun m -> raise (Invariant m)) fmt in
  match
    if info.dest < 0 || info.dest >= n then
      fail "dest %d out of range [0, %d)" info.dest n;
    if Bytes.length info.cls <> n then
      fail "cls length %d, expected %d" (Bytes.length info.cls) n;
    if Bytes.length info.len <> n then
      fail "len length %d, expected %d" (Bytes.length info.len) n;
    if I32.length info.tie_off <> n + 1 then
      fail "tie_off length %d, expected %d" (I32.length info.tie_off) (n + 1);
    if I32.length info.tie_rev_off <> n + 1 then
      fail "tie_rev_off length %d, expected %d" (I32.length info.tie_rev_off) (n + 1);
    let total = I32.length info.tie in
    let rev_total = I32.length info.tie_rev in
    if ba_get info.tie_off 0 <> 0 then
      fail "tie_off.(0) = %d, expected 0" (ba_get info.tie_off 0);
    for i = 0 to n - 1 do
      if ba_get info.tie_off (i + 1) < ba_get info.tie_off i then
        fail "tie_off not monotone at row %d" i
    done;
    if ba_get info.tie_off n <> total then
      fail "tie_off.(%d) = %d, expected %d" n (ba_get info.tie_off n) total;
    if ba_get info.tie_rev_off 0 <> 0 then
      fail "tie_rev_off.(0) = %d, expected 0" (ba_get info.tie_rev_off 0);
    for i = 0 to n - 1 do
      if ba_get info.tie_rev_off (i + 1) < ba_get info.tie_rev_off i then
        fail "tie_rev_off not monotone at row %d" i
    done;
    if ba_get info.tie_rev_off n <> rev_total then
      fail "tie_rev_off.(%d) = %d, expected %d" n (ba_get info.tie_rev_off n) rev_total;
    let nreach = I32.length info.order in
    if nreach > n then fail "order length %d exceeds n = %d" nreach n;
    let reach_count = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.unsafe_get info.cls i <> c_unreach then incr reach_count
    done;
    if nreach <> !reach_count then
      fail "order length %d, but %d reachable nodes" nreach !reach_count;
    if nreach > 0 && ba_get info.order 0 <> info.dest then
      fail "order.(0) = %d, expected dest %d" (ba_get info.order 0) info.dest;
    let seen = Bytes.make n '\000' in
    let prev_len = ref 0 in
    for k = 0 to nreach - 1 do
      let i = ba_get info.order k in
      if i < 0 || i >= n then fail "order.(%d) = %d out of range" k i;
      if Bytes.get seen i = '\001' then fail "order repeats node %d" i;
      Bytes.set seen i '\001';
      if Bytes.unsafe_get info.cls i = c_unreach then
        fail "order lists unreachable node %d" i;
      let l = Char.code (Bytes.unsafe_get info.len i) in
      if l < !prev_len then fail "order not ascending in length at position %d" k;
      prev_len := l
    done;
    if nreach > 0 && info.max_len <> !prev_len then
      fail "max_len = %d, expected %d" info.max_len !prev_len;
    let sum_f = ref 0 and xor_f = ref 0 in
    for i = 0 to n - 1 do
      for k = ba_get info.tie_off i to ba_get info.tie_off (i + 1) - 1 do
        let j = ba_get info.tie k in
        if j < 0 || j >= n then fail "tie row %d holds out-of-range member %d" i j;
        let h = Nsutil.Prng.mix2 i j in
        sum_f := !sum_f + h;
        xor_f := !xor_f lxor h
      done
    done;
    let sum_r = ref 0 and xor_r = ref 0 in
    for p = 0 to n - 1 do
      for k = ba_get info.tie_rev_off p to ba_get info.tie_rev_off (p + 1) - 1 do
        let m = ba_get info.tie_rev k in
        if m < 0 || m >= n then fail "tie_rev row %d holds out-of-range member %d" p m;
        let h = Nsutil.Prng.mix2 m p in
        sum_r := !sum_r + h;
        xor_r := !xor_r lxor h
      done
    done;
    if !sum_f <> !sum_r || !xor_f <> !xor_r then
      fail "tie/tie_rev permutation digests disagree"
  with
  | () -> Ok ()
  | exception Invariant m -> Error m

(* ------------------------------------------------------------------ *)
(* The whole-graph statics store: lazily filled, optionally bounded.

   Memory is governed by a byte budget ([SBGP_STATICS_MB], --statics-mb
   or {!set_budget_bytes}); the slot space is striped into shards, each
   with its own clock hand, byte account and counters, aligned with the
   contiguous destination slices the engine hands to workers — so
   concurrent worker domains touch mostly disjoint shard state. Under a
   budget, a missed [get] recomputes (pure, so results never change)
   and inserts under clock (second-chance) eviction. Counter updates
   from concurrent domains are plain writes: a lost increment skews the
   stats by a hair but can never corrupt results. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  cached : int;
  cached_bytes : int;
  budget_bytes : int;
}

type shard = {
  lo : int;
  hi : int;  (** slot range [lo, hi) *)
  mutable budget : int;  (** bytes; [max_int] = unbounded *)
  mutable used : int;
  mutable hand : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
}

type t = {
  mutable g : Graph.t;
  mutable slots : dest_info option array;
  mutable ref_bits : Bytes.t;
  mutable shards : shard array;
  mutable shard_idx : Bytes.t;  (** destination -> owning shard (≤ 16 shards) *)
  mutable tiebreak : Policy.tiebreak;
}

let shard_of t d = t.shards.(Char.code (Bytes.unsafe_get t.shard_idx d))

let num_shards n = max 1 (min 16 n)

let default_budget_bytes () =
  let mb = Nsutil.Env.int_var ~name:"SBGP_STATICS_MB" ~min:0 ~default:0 () in
  if mb <= 0 then max_int else mb * 1024 * 1024

(* Fresh slot space, shard stripes and counters for an [n]-node graph;
   shared between [create] and [rebase]. *)
let skeleton ~budget n =
  let s = num_shards n in
  let per_shard = if budget = max_int then max_int else max 1 (budget / s) in
  let shards =
    Array.init s (fun k ->
        let lo = k * n / s and hi = (k + 1) * n / s in
        {
          lo;
          hi;
          budget = per_shard;
          used = 0;
          hand = lo;
          s_hits = 0;
          s_misses = 0;
          s_evictions = 0;
        })
  in
  let shard_idx = Bytes.make n '\000' in
  Array.iteri
    (fun k sh ->
      for d = sh.lo to sh.hi - 1 do
        Bytes.set shard_idx d (Char.chr k)
      done)
    shards;
  (Array.make n None, Bytes.make n '\000', shards, shard_idx)

let create ?budget_bytes ?(tiebreak = Policy.Lowest_id) g =
  let budget =
    match budget_bytes with
    | Some b -> if b <= 0 then max_int else b
    | None -> default_budget_bytes ()
  in
  let slots, ref_bits, shards, shard_idx = skeleton ~budget (Graph.n g) in
  { g; slots; ref_bits; shards; shard_idx; tiebreak }

let graph t = t.g

let stats t =
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let used = ref 0 in
  Array.iter
    (fun s ->
      hits := !hits + s.s_hits;
      misses := !misses + s.s_misses;
      evictions := !evictions + s.s_evictions;
      used := !used + s.used)
    t.shards;
  let cached = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 t.slots in
  let budget =
    Array.fold_left
      (fun a s -> if s.budget = max_int || a = max_int then max_int else a + s.budget)
      0 t.shards
  in
  {
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    cached;
    cached_bytes = !used;
    budget_bytes = budget;
  }

let bounded t = Array.exists (fun s -> s.budget <> max_int) t.shards

(* Clock (second-chance) eviction within one shard until [need] bytes
   fit; gives up (and skips caching) if a full double scan frees
   nothing, which can only happen when every resident entry was
   re-referenced concurrently. *)
let make_room t shard need =
  if need > shard.budget then false
  else begin
    let span = shard.hi - shard.lo in
    let steps = ref (2 * span) in
    while shard.used + need > shard.budget && !steps > 0 do
      let d = shard.hand in
      shard.hand <- (if d + 1 >= shard.hi then shard.lo else d + 1);
      decr steps;
      match t.slots.(d) with
      | None -> ()
      | Some info ->
          if Bytes.get t.ref_bits d = '\001' then Bytes.set t.ref_bits d '\000'
          else begin
            t.slots.(d) <- None;
            shard.used <- shard.used - info_bytes info;
            shard.s_evictions <- shard.s_evictions + 1
          end
    done;
    shard.used + need <= shard.budget
  end

let insert t d info =
  let shard = shard_of t d in
  if shard.budget = max_int then begin
    t.slots.(d) <- Some info;
    shard.used <- shard.used + info_bytes info
  end
  else begin
    let size = info_bytes info in
    if make_room t shard size then begin
      t.slots.(d) <- Some info;
      shard.used <- shard.used + size;
      Bytes.set t.ref_bits d '\000'
    end
  end

let get t d =
  match t.slots.(d) with
  | Some info ->
      let shard = shard_of t d in
      shard.s_hits <- shard.s_hits + 1;
      Bytes.unsafe_set t.ref_bits d '\001';
      info
  | None ->
      let shard = shard_of t d in
      shard.s_misses <- shard.s_misses + 1;
      let info = compute ~tiebreak:t.tiebreak t.g d in
      insert t d info;
      info

(* The streaming read path for whole-graph sweeps under a budget.
   Where {!get} evicts to make room — right for random-access reads
   with locality — a sweep touches every destination once per round,
   so clock eviction degenerates to churning the entire store every
   round while serving almost no hits. [stream_get] instead keeps a
   *stable cached prefix*: a miss recomputes into the caller's builder
   (transient, zero record allocation) and promotes the record into
   the store only when it fits the shard's remaining headroom without
   evicting anything. The cached set therefore converges to whatever
   the budget holds and stays put; every other destination streams
   through the builder with no resident footprint at all. Results are
   bit-identical to {!get} at any budget because {!compute_with} is
   pure. The returned record is only valid until the builder's next
   transient compute when it was not promoted — callers must finish
   with it before their next [stream_get] on the same builder. *)
let stream_get t bd d =
  match t.slots.(d) with
  | Some info ->
      let shard = shard_of t d in
      shard.s_hits <- shard.s_hits + 1;
      Bytes.unsafe_set t.ref_bits d '\001';
      info
  | None ->
      let shard = shard_of t d in
      shard.s_misses <- shard.s_misses + 1;
      if shard.budget = max_int then begin
        let info = compute_with ~tiebreak:t.tiebreak bd t.g d in
        t.slots.(d) <- Some info;
        shard.used <- shard.used + info_bytes info;
        info
      end
      else begin
        let info = compute_with ~tiebreak:t.tiebreak ~transient:true bd t.g d in
        let size = info_bytes info in
        if shard.used + size <= shard.budget then begin
          let promoted = info_copy info in
          t.slots.(d) <- Some promoted;
          shard.used <- shard.used + size;
          Bytes.set t.ref_bits d '\000';
          promoted
        end
        else info
      end

(* Destinations per dynamically-claimed chunk for a whole-graph sweep
   over this store: large enough that one worker stays inside one
   shard stripe for a while (shard counters and clock state then see
   mostly single-writer traffic, and promoted entries cluster), small
   enough that dynamic claiming can rebalance shards whose
   destinations run hot. Floors at the engine's gadget-scale grain. *)
let batch_grain t ~workers ~tasks =
  let span =
    if Array.length t.shards = 0 then tasks else t.shards.(0).hi - t.shards.(0).lo
  in
  max 8 (min (max 1 span) (tasks / max 1 (workers * 16)))

let drop_all t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Bytes.fill t.ref_bits 0 (Bytes.length t.ref_bits) '\000';
  Array.iter
    (fun s ->
      s.used <- 0;
      s.hand <- s.lo)
    t.shards

let set_budget_bytes t budget =
  let s = Array.length t.shards in
  let budget = if budget <= 0 then max_int else budget in
  let per_shard = if budget = max_int then max_int else max 1 (budget / s) in
  Array.iter
    (fun shard ->
      shard.budget <- per_shard;
      (* Trim immediately so a shrunk budget takes effect now. *)
      if shard.used > per_shard then ignore (make_room t shard 0))
    t.shards

let set_budget_mb t mb = set_budget_bytes t (if mb <= 0 then 0 else mb * 1024 * 1024)

let ensure_tiebreak t tiebreak =
  if not (Policy.tiebreak_equal t.tiebreak tiebreak) then begin
    (* Cached rows are sorted under the old policy; recomputing them
       lazily under the new one keeps the sort invariant exact
       (including insertion-order stability on key ties). *)
    t.tiebreak <- tiebreak;
    drop_all t
  end

let ensure_all ?(workers = 1) t =
  if not (bounded t) then begin
    let n = Graph.n t.g in
    let missing = ref [] in
    for d = n - 1 downto 0 do
      if t.slots.(d) = None then missing := d :: !missing
    done;
    match !missing with
    | [] -> ()
    | missing ->
        let miss = Array.of_list missing in
        let tiebreak = t.tiebreak in
        (* [compute_with] is pure, so filling the store fans out
           safely; each worker reuses one builder's scratch across its
           chunk, and the output slots are written one per task. *)
        let infos = Array.make (Array.length miss) None in
        ignore
          (Parallel.Pool.map_reduce_chunked ~workers ~tasks:(Array.length miss) ~grain:8
             ~init:(fun () -> make_builder n)
             ~task:(fun bd i -> infos.(i) <- Some (compute_with ~tiebreak bd t.g miss.(i)))
             ~combine:(fun a _ -> a));
        Array.iteri
          (fun i info ->
            match info with
            | None -> ()
            | Some info ->
                let d = miss.(i) in
                let shard = shard_of t d in
                shard.s_misses <- shard.s_misses + 1;
                insert t d info)
          infos
  end
(* Under a budget, prefilling would only evict what it just built:
   leave the store to fill lazily, trading recompute for memory. *)

(* ------------------------------------------------------------------ *)
(* Rebasing the store across a topology delta. The store swaps in a
   fresh slot space sized for the new graph and, under the [Delta]
   kernel, migrates every resident entry through [repair_surgical]:
   shared and patched entries are re-inserted through the normal
   budget accounting (so eviction state stays exact), entries the
   churn actually reaches are dropped for lazy recompute against the
   new graph. The returned journal snapshots the pre-rebase store —
   slots, reference bits, shards and shard map are never mutated after
   the swap, so [undo_rebase] is an O(1) pointer restore, mirroring
   the once-per-node undo log of [Forest.repair] one level up. *)

type rebase_stats = { shared : int; patched : int; dropped : int; invalid : int }

type journal = {
  j_g : Graph.t;
  j_slots : dest_info option array;
  j_ref_bits : Bytes.t;
  j_shards : shard array;
  j_shard_idx : Bytes.t;
  j_tiebreak : Policy.tiebreak;
  j_stats : rebase_stats;
  j_changed : int list;
}

(* Fault injection, site [statics.repair]: hand back a corrupted copy
   of a freshly patched record (never a physically shared one — that
   would mutate live data) with its first CSR offset smashed, which
   the post-repair validation in phase 2 is guaranteed to catch. *)
let maybe_corrupt faults ~old info' =
  match faults with
  | Some f when info' != old -> (
      match Nsutil.Faults.fires f "statics.repair" with
      | Some _ ->
          let len = I32.length info'.tie_off in
          let bad = I32.create len in
          I32.blit ~src:info'.tie_off ~src_pos:0 ~dst:bad ~dst_pos:0 ~len;
          ba_set bad 0 (-1);
          { info' with tie_off = bad }
      | None -> info')
  | _ -> info'

let rebase ?kernel ?(workers = 1) ?faults t ~delta g' =
  let kernel = match kernel with Some k -> k | None -> kernel_of_env () in
  let base_n = delta.Graph.base_n in
  if Graph.n t.g <> base_n then
    invalid_arg "Route_static.rebase: store does not match delta.base_n";
  if Graph.n g' <> base_n + delta.Graph.grown then
    invalid_arg "Route_static.rebase: graph does not match delta";
  let old_g = t.g
  and old_slots = t.slots
  and old_ref = t.ref_bits
  and old_shards = t.shards
  and old_idx = t.shard_idx in
  let budget =
    if bounded t then
      Array.fold_left
        (fun a s -> if s.budget = max_int then a else a + s.budget)
        0 t.shards
    else max_int
  in
  let slots, ref_bits, shards, shard_idx = skeleton ~budget (Graph.n g') in
  t.g <- g';
  t.slots <- slots;
  t.ref_bits <- ref_bits;
  t.shards <- shards;
  t.shard_idx <- shard_idx;
  let shared = ref 0
  and patched = ref 0
  and dropped = ref 0
  and invalid = ref 0
  and changed = ref [] in
  (match kernel with
  | Full ->
      (* Everything rebuilds lazily; conservatively report every
         destination as changed. *)
      for d = base_n - 1 downto 0 do
        (match old_slots.(d) with Some _ -> incr dropped | None -> ());
        changed := d :: !changed
      done
  | Delta ->
      (* Phase 1, parallel: pure per-entry repair — the migration is
         memory-bound (each resident entry is read and its patched
         copy written), so it fans out across domains; each worker
         slice builds its own context (op classification + patch
         scratch, per-delta not per-entry). Phase 2, serial: inserts
         in the same fixed order as a serial rebase, so budget
         accounting, eviction state and stats are bit-identical at
         any worker count. Every freshly patched record is validated
         ({!check_info}) before insertion — the post-repair boundary
         of the degradation ladder: a record the surgery (or an
         injected [statics.repair] fault) corrupted is dropped for
         lazy recompute instead of poisoning the delta kernels, so
         results stay bit-identical even under corruption. *)
      let results = Array.make (max 1 base_n) None in
      if base_n > 0 then
        Parallel.Pool.map_reduce_chunked ~workers ~tasks:base_n ~grain:32
          ~init:(fun () ->
            let rx = make_repair_ctx g' delta in
            if bounded t then rx else { rx with rx_alloc = slab_alloc (slab_create ()) })
          ~task:(fun rx d ->
            match old_slots.(d) with
            | None -> ()
            | Some info ->
                results.(d) <-
                  Some
                    (Option.map
                       (fun info' -> maybe_corrupt faults ~old:info info')
                       (repair_with_ctx rx info)))
          ~combine:(fun rx _ -> rx)
        |> ignore;
      for d = base_n - 1 downto 0 do
        match results.(d) with
        | None ->
            (* Never computed: nothing to migrate, and nothing proves
               it unchanged either. *)
            changed := d :: !changed
        | Some (Some info') ->
            if (match old_slots.(d) with Some info -> info' == info | None -> false)
            then begin
              insert t d info';
              incr shared
            end
            else begin
              (match check_info g' info' with
              | Ok () ->
                  insert t d info';
                  incr patched
              | Error reason ->
                  incr invalid;
                  Nsutil.Warnings.emit
                    (Printf.sprintf
                       "sbgp: statics rebase: dropping invalid patched record for \
                        destination %d (%s); it will recompute lazily"
                       d reason));
              changed := d :: !changed
            end
        | Some None ->
            incr dropped;
            changed := d :: !changed
      done);
  {
    j_g = old_g;
    j_slots = old_slots;
    j_ref_bits = old_ref;
    j_shards = old_shards;
    j_shard_idx = old_idx;
    j_tiebreak = t.tiebreak;
    j_stats =
      { shared = !shared; patched = !patched; dropped = !dropped; invalid = !invalid };
    j_changed = !changed;
  }

let undo_rebase t j =
  t.g <- j.j_g;
  t.slots <- j.j_slots;
  t.ref_bits <- j.j_ref_bits;
  t.shards <- j.j_shards;
  t.shard_idx <- j.j_shard_idx;
  t.tiebreak <- j.j_tiebreak

let rebase_stats j = j.j_stats
let rebase_changed j = j.j_changed

(* Checkpoint-boundary sweep of the degradation ladder: re-run the
   structural checks over every resident record and drop (for lazy
   recompute — the Full-kernel behavior for that destination) any
   record that fails, returning the violations. Results after a drop
   are bit-identical because [compute] is the reference the repaired
   records are contracted to equal. *)
let revalidate t =
  let bad = ref [] in
  for d = Array.length t.slots - 1 downto 0 do
    match t.slots.(d) with
    | None -> ()
    | Some info -> (
        match check_info t.g info with
        | Ok () -> ()
        | Error reason ->
            t.slots.(d) <- None;
            let shard = shard_of t d in
            shard.used <- shard.used - info_bytes info;
            bad := (d, reason) :: !bad)
  done;
  !bad

(* ------------------------------------------------------------------ *)
(* Store snapshots for churn-consistent checkpoints. The image holds
   everything but the graph (graphs serialize separately through
   {!Asgraph.Graph_io}): slot contents, reference bits, shard accounts
   *including the hit/miss/eviction counters* — so a resumed run
   reports the same statics statistics as an uninterrupted one — and
   the tiebreak policy. [Marshal] round-trips the int32 bigarray CSRs
   by value; slab-allocated records come back as plain copies, which
   only costs memory compactness, not correctness. *)

type store_image = {
  im_n : int;
  im_tiebreak : Policy.tiebreak;
  im_slots : dest_info option array;
  im_ref_bits : Bytes.t;
  im_shards : shard array;
  im_shard_idx : Bytes.t;
}

let snapshot t =
  Marshal.to_string
    {
      im_n = Graph.n t.g;
      im_tiebreak = t.tiebreak;
      im_slots = t.slots;
      im_ref_bits = t.ref_bits;
      im_shards = t.shards;
      im_shard_idx = t.shard_idx;
    }
    []

let of_snapshot g s =
  let im : store_image = Marshal.from_string s 0 in
  if im.im_n <> Graph.n g then
    invalid_arg "Route_static.of_snapshot: graph does not match the snapshot";
  {
    g;
    slots = im.im_slots;
    ref_bits = im.im_ref_bits;
    shards = im.im_shards;
    shard_idx = im.im_shard_idx;
    tiebreak = im.im_tiebreak;
  }

module Dirty = struct
  type statics = t

  type t = { statics : statics; flags : Bytes.t }

  let create statics =
    { statics; flags = Bytes.make (Graph.n statics.g) '\001' }

  let is_dirty t d = Bytes.get t.flags d = '\001'
  let mark t d = Bytes.set t.flags d '\001'

  let invalidate t ~changed ~secure =
    if changed <> [] then begin
      let n = Graph.n t.statics.g in
      let in_changed = Bytes.make n '\000' in
      let changed_count = List.length changed in
      List.iter (fun c -> Bytes.set in_changed c '\001') changed;
      (* Under a byte budget, evicted records stream through a local
         builder ([get] would compute-and-insert, churning the very
         budget the caller set); forced lazily — unbounded stores and
         all-resident scans never build it. *)
      let bd = lazy (make_builder n) in
      for d = 0 to n - 1 do
        if Bytes.get t.flags d = '\000' then
          if Bytes.get in_changed d = '\001' then Bytes.set t.flags d '\001'
          else if Bytes.get secure d = '\001' then begin
            (* The origin participates, so routes towards it can be
               secure: any reachable changed byte may flip a route's
               security or a security tie-break. An origin that does
               not participate (and whose own bytes are unchanged) has
               no secure routes before or after — its tree only reads
               static preferences, so it stays clean. Scan whichever
               of the changed set and the destination's reachable
               order is smaller. *)
            let info =
              if bounded t.statics then stream_get t.statics (Lazy.force bd) d
              else get t.statics d
            in
            let nreach = I32.length info.order in
            let hit =
              if changed_count <= nreach then
                List.exists (fun c -> reachable info c) changed
              else begin
                let rec scan k =
                  k < nreach
                  && (Bytes.unsafe_get in_changed (I32.unsafe_get info.order k)
                      = '\001'
                     || scan (k + 1))
                in
                scan 0
              end
            in
            if hit then Bytes.set t.flags d '\001'
          end
      done
    end

  let reset t = Bytes.fill t.flags 0 (Bytes.length t.flags) '\000'

  let dirty_count t =
    let acc = ref 0 in
    Bytes.iter (fun c -> if c = '\001' then incr acc) t.flags;
    !acc
end

let mean_tiebreak_size t ~among =
  let n = Graph.n t.g in
  let total = ref 0 in
  let count = ref 0 in
  for d = 0 to n - 1 do
    let info = get t d in
    iter_order info (fun i ->
        if i <> d && among i then begin
          total := !total + tie_size info i;
          incr count
        end)
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

let mean_path_length t ~from =
  let n = Graph.n t.g in
  let total = ref 0 in
  let count = ref 0 in
  for d = 0 to n - 1 do
    if d <> from then begin
      let info = get t d in
      if reachable info from then begin
        total := !total + length_of info from;
        incr count
      end
    end
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count
