module Csr = Nsutil.Csr
module I32 = Nsutil.I32
module Graph = Asgraph.Graph

type dest_info = {
  dest : int;
  cls : Bytes.t;
  len : Bytes.t;
  tie_off : I32.t;
  tie : I32.t;
  tie_rev_off : I32.t;
  tie_rev : I32.t;
  order : I32.t;
  tb : Policy.tiebreak;
  max_len : int;
}

let inf = max_int
let max_path_len = 254

let c_self = Policy.class_to_char Policy.Self
let c_cust = Policy.class_to_char Policy.Via_customer
let c_peer = Policy.class_to_char Policy.Via_peer
let c_prov = Policy.class_to_char Policy.Via_provider
let c_unreach = Policy.class_to_char Policy.Unreachable

(* Stable insertion sort of one tie row by static tiebreak key: among
   equal keys the earlier-inserted member stays first, so taking the
   row head reproduces exactly the legacy strictly-less minimum scan
   over insertion order. Rows are tiny (mean 1-3 members); insertion
   sort beats anything with allocation here. *)
let sort_row tb i members keys len =
  for a = 0 to len - 1 do
    keys.(a) <- Policy.tiebreak_key tb i members.(a)
  done;
  for a = 1 to len - 1 do
    let m = members.(a) and k = keys.(a) in
    let b = ref a in
    while !b > 0 && keys.(!b - 1) > k do
      members.(!b) <- members.(!b - 1);
      keys.(!b) <- keys.(!b - 1);
      decr b
    done;
    members.(!b) <- m;
    keys.(!b) <- k
  done

(* Three-stage Gao-Rexford route computation (Appendix A / [15]):
   customer routes climb provider links from d; peer routes add one
   peering hop onto a customer route; provider routes descend customer
   links from any already-routed node, in ascending length order. The
   adjacency CSR arrays are walked by direct offset-range loops — no
   per-node closures on this path. *)
let compute ?(tiebreak = Policy.Lowest_id) g d =
  let n = Graph.n g in
  let cust_off = g.Graph.customers.Csr.offsets and cust_dat = g.Graph.customers.Csr.data in
  let prov_off = g.Graph.providers.Csr.offsets and prov_dat = g.Graph.providers.Csr.data in
  let peer_off = g.Graph.peers.Csr.offsets and peer_dat = g.Graph.peers.Csr.data in
  let l1 = Array.make n inf in
  let bl = Array.make n inf in
  let cls = Bytes.make n c_unreach in
  (* Stage 1: customer-route lengths. *)
  l1.(d) <- 0;
  let queue = Queue.create () in
  Queue.add d queue;
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    for k = prov_off.(x) to prov_off.(x + 1) - 1 do
      let p = Array.unsafe_get prov_dat k in
      if l1.(p) = inf then begin
        l1.(p) <- l1.(x) + 1;
        Queue.add p queue
      end
    done
  done;
  Bytes.set cls d c_self;
  bl.(d) <- 0;
  for i = 0 to n - 1 do
    if i <> d && l1.(i) < inf then begin
      bl.(i) <- l1.(i);
      Bytes.set cls i c_cust
    end
  done;
  (* Stage 2: peer routes for nodes without a customer route. *)
  for i = 0 to n - 1 do
    if bl.(i) = inf then begin
      let best = ref inf in
      for k = peer_off.(i) to peer_off.(i + 1) - 1 do
        let p = Array.unsafe_get peer_dat k in
        if l1.(p) < !best then best := l1.(p)
      done;
      if !best < inf then begin
        bl.(i) <- !best + 1;
        Bytes.set cls i c_peer
      end
    end
  done;
  (* Stage 3: provider routes, in ascending final length. *)
  let bq = Nsutil.Bucketq.create ~max_key:(max_path_len + 1) in
  let done_ = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if bl.(i) < inf then Nsutil.Bucketq.push bq ~key:bl.(i) i
  done;
  let rec drain () =
    match Nsutil.Bucketq.pop bq with
    | None -> ()
    | Some (key, x) ->
        if Bytes.get done_ x = '\000' then begin
          Bytes.set done_ x '\001';
          if bl.(x) = inf then begin
            bl.(x) <- key;
            Bytes.set cls x c_prov
          end;
          let next_key = key + 1 in
          if next_key <= max_path_len then
            for k = cust_off.(x) to cust_off.(x + 1) - 1 do
              let c = Array.unsafe_get cust_dat k in
              if Bytes.get done_ c = '\000' && bl.(c) = inf then
                Nsutil.Bucketq.push bq ~key:next_key c
            done
        end;
        drain ()
  in
  drain ();
  (* Tiebreak sets, two-pass counting layout: count members per node,
     prefix-sum into offsets, then fill — no cons-list churn. *)
  let exports_customer_route j =
    let c = Bytes.unsafe_get cls j in
    c = c_self || c = c_cust
  in
  let tie_count = Array.make n 0 in
  let count_tie i =
    let want = bl.(i) - 1 in
    let cl = Bytes.unsafe_get cls i in
    let acc = ref 0 in
    if cl = c_cust then
      for k = cust_off.(i) to cust_off.(i + 1) - 1 do
        let c = Array.unsafe_get cust_dat k in
        if bl.(c) = want && exports_customer_route c then incr acc
      done
    else if cl = c_peer then
      for k = peer_off.(i) to peer_off.(i + 1) - 1 do
        let p = Array.unsafe_get peer_dat k in
        if bl.(p) = want && exports_customer_route p then incr acc
      done
    else
      for k = prov_off.(i) to prov_off.(i + 1) - 1 do
        if bl.(Array.unsafe_get prov_dat k) = want then incr acc
      done;
    !acc
  in
  for i = 0 to n - 1 do
    if i <> d && bl.(i) < inf then tie_count.(i) <- count_tie i
  done;
  let tie_off = I32.create (n + 1) in
  let total = ref 0 in
  for i = 0 to n - 1 do
    I32.unsafe_set tie_off i !total;
    total := !total + tie_count.(i)
  done;
  I32.unsafe_set tie_off n !total;
  let tie = I32.create !total in
  let fill_tie i =
    let want = bl.(i) - 1 in
    let cl = Bytes.unsafe_get cls i in
    let w = ref (I32.unsafe_get tie_off i) in
    let put v =
      I32.unsafe_set tie !w v;
      incr w
    in
    if cl = c_cust then
      for k = cust_off.(i) to cust_off.(i + 1) - 1 do
        let c = Array.unsafe_get cust_dat k in
        if bl.(c) = want && exports_customer_route c then put c
      done
    else if cl = c_peer then
      for k = peer_off.(i) to peer_off.(i + 1) - 1 do
        let p = Array.unsafe_get peer_dat k in
        if bl.(p) = want && exports_customer_route p then put p
      done
    else
      for k = prov_off.(i) to prov_off.(i + 1) - 1 do
        let p = Array.unsafe_get prov_dat k in
        if bl.(p) = want then put p
      done
  in
  for i = 0 to n - 1 do
    if tie_count.(i) > 0 then fill_tie i
  done;
  (* Pre-sort each row by static tiebreak key (stable), so the forest
     kernel's Pass 1 takes the first eligible member instead of
     running a key-compare chain per member. *)
  let max_row = Array.fold_left max 0 tie_count in
  if max_row > 1 then begin
    let members = Array.make max_row 0 in
    let keys = Array.make max_row 0 in
    for i = 0 to n - 1 do
      let row = tie_count.(i) in
      if row > 1 then begin
        let off = I32.unsafe_get tie_off i in
        for k = 0 to row - 1 do
          members.(k) <- I32.unsafe_get tie (off + k)
        done;
        sort_row tiebreak i members keys row;
        for k = 0 to row - 1 do
          I32.unsafe_set tie (off + k) members.(k)
        done
      end
    done
  end;
  let order_full =
    Nsutil.Order.by_small_key
      ~key:(fun i -> if bl.(i) = inf then -1 else bl.(i))
      ~max_key:max_path_len n
  in
  (* Trim unreachable nodes (sorted last) off the order. *)
  let reachable_count =
    Array.fold_left (fun acc v -> if v < inf then acc + 1 else acc) 0 bl
  in
  let order = I32.create reachable_count in
  for k = 0 to reachable_count - 1 do
    I32.unsafe_set order k order_full.(k)
  done;
  (* Reverse tiebreak adjacency: row [j] lists every node whose tie
     set contains [j], ordered by DESCENDING position in [order] — the
     exact order Pass 2 of the forest kernel folds child subtrees into
     parents, so an incremental repair that re-sums one parent's
     subtree walks the same addends in the same order (bit-identical
     floats). *)
  let rev_count = Array.make n 0 in
  for k = 0 to !total - 1 do
    let j = I32.unsafe_get tie k in
    rev_count.(j) <- rev_count.(j) + 1
  done;
  let tie_rev_off = I32.create (n + 1) in
  let rt = ref 0 in
  for i = 0 to n - 1 do
    I32.unsafe_set tie_rev_off i !rt;
    rt := !rt + rev_count.(i)
  done;
  I32.unsafe_set tie_rev_off n !rt;
  let tie_rev = I32.create !rt in
  let cursor = rev_count in
  for i = 0 to n - 1 do
    cursor.(i) <- I32.unsafe_get tie_rev_off i
  done;
  for k = reachable_count - 1 downto 1 do
    let i = order_full.(k) in
    for p = I32.unsafe_get tie_off i to I32.unsafe_get tie_off (i + 1) - 1 do
      let j = I32.unsafe_get tie p in
      I32.unsafe_set tie_rev cursor.(j) i;
      cursor.(j) <- cursor.(j) + 1
    done
  done;
  let max_len = Array.fold_left (fun acc v -> if v < inf then max acc v else acc) 0 bl in
  let len = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if bl.(i) < inf then Bytes.set len i (Char.chr bl.(i))
  done;
  { dest = d; cls; len; tie_off; tie; tie_rev_off; tie_rev; order; tb = tiebreak; max_len }

let class_of info i = Policy.class_of_char (Bytes.get info.cls i)

let reachable info i = Bytes.get info.cls i <> c_unreach

let length_of info i =
  if not (reachable info i) then
    invalid_arg (Printf.sprintf "Route_static.length_of: %d unreachable" i)
  else Char.code (Bytes.get info.len i)

let sorted_for info tiebreak = Policy.tiebreak_equal info.tb tiebreak

(* ------------------------------------------------------------------ *)
(* Per-destination accessors over the compact layout. *)

let order_length info = I32.length info.order
let order_get info k = I32.get info.order k

let iter_order info f =
  for k = 0 to I32.length info.order - 1 do
    f (I32.unsafe_get info.order k)
  done

let tie_size info i = I32.get info.tie_off (i + 1) - I32.get info.tie_off i

let tie_get info i k = I32.get info.tie (I32.get info.tie_off i + k)

let tie_list info i =
  let lo = I32.get info.tie_off i and hi = I32.get info.tie_off (i + 1) in
  let acc = ref [] in
  for k = hi - 1 downto lo do
    acc := I32.get info.tie k :: !acc
  done;
  !acc

let tie_exists info i p =
  let hi = I32.get info.tie_off (i + 1) in
  let rec loop k = k < hi && (p (I32.unsafe_get info.tie k) || loop (k + 1)) in
  loop (I32.get info.tie_off i)

let tie_fold info i f init =
  let acc = ref init in
  for k = I32.get info.tie_off i to I32.get info.tie_off (i + 1) - 1 do
    acc := f !acc (I32.unsafe_get info.tie k)
  done;
  !acc

let tie_mem info i v = tie_exists info i (fun x -> x = v)

let info_bytes info =
  Bytes.length info.cls + Bytes.length info.len
  + I32.byte_size info.tie_off
  + I32.byte_size info.tie
  + I32.byte_size info.tie_rev_off
  + I32.byte_size info.tie_rev
  + I32.byte_size info.order + 128

(* ------------------------------------------------------------------ *)
(* The whole-graph statics store: lazily filled, optionally bounded.

   Memory is governed by a byte budget ([SBGP_STATICS_MB], --statics-mb
   or {!set_budget_bytes}); the slot space is striped into shards, each
   with its own clock hand, byte account and counters, aligned with the
   contiguous destination slices the engine hands to workers — so
   concurrent worker domains touch mostly disjoint shard state. Under a
   budget, a missed [get] recomputes (pure, so results never change)
   and inserts under clock (second-chance) eviction. Counter updates
   from concurrent domains are plain writes: a lost increment skews the
   stats by a hair but can never corrupt results. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  cached : int;
  cached_bytes : int;
  budget_bytes : int;
}

type shard = {
  lo : int;
  hi : int;  (** slot range [lo, hi) *)
  mutable budget : int;  (** bytes; [max_int] = unbounded *)
  mutable used : int;
  mutable hand : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
}

type t = {
  g : Graph.t;
  slots : dest_info option array;
  ref_bits : Bytes.t;
  shards : shard array;
  shard_idx : Bytes.t;  (** destination -> owning shard (≤ 16 shards) *)
  mutable tiebreak : Policy.tiebreak;
}

let shard_of t d = t.shards.(Char.code (Bytes.unsafe_get t.shard_idx d))

let num_shards n = max 1 (min 16 n)

let default_budget_bytes () =
  let mb = Nsutil.Env.int_var ~name:"SBGP_STATICS_MB" ~min:0 ~default:0 () in
  if mb <= 0 then max_int else mb * 1024 * 1024

let create ?budget_bytes ?(tiebreak = Policy.Lowest_id) g =
  let n = Graph.n g in
  let s = num_shards n in
  let budget =
    match budget_bytes with
    | Some b -> if b <= 0 then max_int else b
    | None -> default_budget_bytes ()
  in
  let per_shard = if budget = max_int then max_int else max 1 (budget / s) in
  let shards =
    Array.init s (fun k ->
        let lo = k * n / s and hi = (k + 1) * n / s in
        {
          lo;
          hi;
          budget = per_shard;
          used = 0;
          hand = lo;
          s_hits = 0;
          s_misses = 0;
          s_evictions = 0;
        })
  in
  let shard_idx = Bytes.make n '\000' in
  Array.iteri
    (fun k sh ->
      for d = sh.lo to sh.hi - 1 do
        Bytes.set shard_idx d (Char.chr k)
      done)
    shards;
  { g; slots = Array.make n None; ref_bits = Bytes.make n '\000'; shards; shard_idx; tiebreak }

let graph t = t.g

let stats t =
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let used = ref 0 in
  Array.iter
    (fun s ->
      hits := !hits + s.s_hits;
      misses := !misses + s.s_misses;
      evictions := !evictions + s.s_evictions;
      used := !used + s.used)
    t.shards;
  let cached = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 t.slots in
  let budget =
    Array.fold_left
      (fun a s -> if s.budget = max_int || a = max_int then max_int else a + s.budget)
      0 t.shards
  in
  {
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    cached;
    cached_bytes = !used;
    budget_bytes = budget;
  }

let bounded t = Array.exists (fun s -> s.budget <> max_int) t.shards

(* Clock (second-chance) eviction within one shard until [need] bytes
   fit; gives up (and skips caching) if a full double scan frees
   nothing, which can only happen when every resident entry was
   re-referenced concurrently. *)
let make_room t shard need =
  if need > shard.budget then false
  else begin
    let span = shard.hi - shard.lo in
    let steps = ref (2 * span) in
    while shard.used + need > shard.budget && !steps > 0 do
      let d = shard.hand in
      shard.hand <- (if d + 1 >= shard.hi then shard.lo else d + 1);
      decr steps;
      match t.slots.(d) with
      | None -> ()
      | Some info ->
          if Bytes.get t.ref_bits d = '\001' then Bytes.set t.ref_bits d '\000'
          else begin
            t.slots.(d) <- None;
            shard.used <- shard.used - info_bytes info;
            shard.s_evictions <- shard.s_evictions + 1
          end
    done;
    shard.used + need <= shard.budget
  end

let insert t d info =
  let shard = shard_of t d in
  if shard.budget = max_int then begin
    t.slots.(d) <- Some info;
    shard.used <- shard.used + info_bytes info
  end
  else begin
    let size = info_bytes info in
    if make_room t shard size then begin
      t.slots.(d) <- Some info;
      shard.used <- shard.used + size;
      Bytes.set t.ref_bits d '\000'
    end
  end

let get t d =
  match t.slots.(d) with
  | Some info ->
      let shard = shard_of t d in
      shard.s_hits <- shard.s_hits + 1;
      Bytes.unsafe_set t.ref_bits d '\001';
      info
  | None ->
      let shard = shard_of t d in
      shard.s_misses <- shard.s_misses + 1;
      let info = compute ~tiebreak:t.tiebreak t.g d in
      insert t d info;
      info

let drop_all t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  Bytes.fill t.ref_bits 0 (Bytes.length t.ref_bits) '\000';
  Array.iter
    (fun s ->
      s.used <- 0;
      s.hand <- s.lo)
    t.shards

let set_budget_bytes t budget =
  let s = Array.length t.shards in
  let budget = if budget <= 0 then max_int else budget in
  let per_shard = if budget = max_int then max_int else max 1 (budget / s) in
  Array.iter
    (fun shard ->
      shard.budget <- per_shard;
      (* Trim immediately so a shrunk budget takes effect now. *)
      if shard.used > per_shard then ignore (make_room t shard 0))
    t.shards

let set_budget_mb t mb = set_budget_bytes t (if mb <= 0 then 0 else mb * 1024 * 1024)

let ensure_tiebreak t tiebreak =
  if not (Policy.tiebreak_equal t.tiebreak tiebreak) then begin
    (* Cached rows are sorted under the old policy; recomputing them
       lazily under the new one keeps the sort invariant exact
       (including insertion-order stability on key ties). *)
    t.tiebreak <- tiebreak;
    drop_all t
  end

let ensure_all ?(workers = 1) t =
  if not (bounded t) then begin
    let n = Graph.n t.g in
    let missing = ref [] in
    for d = n - 1 downto 0 do
      if t.slots.(d) = None then missing := d :: !missing
    done;
    match !missing with
    | [] -> ()
    | missing ->
        let miss = Array.of_list missing in
        let tiebreak = t.tiebreak in
        (* [compute] is pure, so filling the store fans out safely; the
           slots array itself is only written here, one slot per task. *)
        let infos =
          Parallel.Pool.map_array ~workers ~tasks:(Array.length miss) (fun i ->
              compute ~tiebreak t.g miss.(i))
        in
        Array.iteri
          (fun i info ->
            let d = miss.(i) in
            let shard = shard_of t d in
            shard.s_misses <- shard.s_misses + 1;
            insert t d info)
          infos
  end
(* Under a budget, prefilling would only evict what it just built:
   leave the store to fill lazily, trading recompute for memory. *)

module Dirty = struct
  type statics = t

  type t = { statics : statics; flags : Bytes.t }

  let create statics =
    { statics; flags = Bytes.make (Graph.n statics.g) '\001' }

  let is_dirty t d = Bytes.get t.flags d = '\001'

  let invalidate t ~changed ~secure =
    if changed <> [] then begin
      let n = Graph.n t.statics.g in
      let in_changed = Bytes.make n '\000' in
      let changed_count = List.length changed in
      List.iter (fun c -> Bytes.set in_changed c '\001') changed;
      for d = 0 to n - 1 do
        if Bytes.get t.flags d = '\000' then
          if Bytes.get in_changed d = '\001' then Bytes.set t.flags d '\001'
          else if Bytes.get secure d = '\001' then begin
            (* The origin participates, so routes towards it can be
               secure: any reachable changed byte may flip a route's
               security or a security tie-break. An origin that does
               not participate (and whose own bytes are unchanged) has
               no secure routes before or after — its tree only reads
               static preferences, so it stays clean. Scan whichever
               of the changed set and the destination's reachable
               order is smaller. *)
            let info = get t.statics d in
            let nreach = I32.length info.order in
            let hit =
              if changed_count <= nreach then
                List.exists (fun c -> reachable info c) changed
              else begin
                let rec scan k =
                  k < nreach
                  && (Bytes.unsafe_get in_changed (I32.unsafe_get info.order k)
                      = '\001'
                     || scan (k + 1))
                in
                scan 0
              end
            in
            if hit then Bytes.set t.flags d '\001'
          end
      done
    end

  let reset t = Bytes.fill t.flags 0 (Bytes.length t.flags) '\000'

  let dirty_count t =
    let acc = ref 0 in
    Bytes.iter (fun c -> if c = '\001' then incr acc) t.flags;
    !acc
end

let mean_tiebreak_size t ~among =
  let n = Graph.n t.g in
  let total = ref 0 in
  let count = ref 0 in
  for d = 0 to n - 1 do
    let info = get t d in
    iter_order info (fun i ->
        if i <> d && among i then begin
          total := !total + tie_size info i;
          incr count
        end)
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

let mean_path_length t ~from =
  let n = Graph.n t.g in
  let total = ref 0 in
  let count = ref 0 in
  for d = 0 to n - 1 do
    if d <> from then begin
      let info = get t d in
      if reachable info from then begin
        total := !total + length_of info from;
        incr count
      end
    end
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count
