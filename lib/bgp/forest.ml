module I32 = Nsutil.I32

type scratch = { next : int array; sec_path : Bytes.t; sub : float array; size : int }

let make_scratch n =
  { next = Array.make n (-1); sec_path = Bytes.make n '\000'; sub = Array.make n 0.0; size = n }

(* Pass 1 visits reachable nodes in ascending path length. Every
   tiebreak-set member of a node has length exactly one less, hence
   appears strictly earlier in [order]: its [sec_path] byte is already
   refreshed when read, so the reset sweep can be fused into the visit
   (each visit writes the node's own [next]/[sec_path]/[sub]
   unconditionally).

   Fast path, when the tie rows are pre-sorted under the run's
   tiebreak: the first member of a row is the TB winner and the first
   member holding a secure route is the SecP+TB winner — the inner
   loop is one first-match scan, with no key computations, closures or
   allocation. The generic path (statics sorted under a different
   policy) recomputes keys with the legacy strictly-less minimum scan,
   still over direct offset ranges. *)
let compute (info : Route_static.dest_info) ~tiebreak ~secure ~use_secp ~weight scratch =
  let { next; sec_path; sub; size = n } = scratch in
  ignore n;
  let order = info.Route_static.order in
  let tie_off = info.Route_static.tie_off in
  let tie = info.Route_static.tie in
  let d = info.Route_static.dest in
  next.(d) <- -1;
  Bytes.unsafe_set sec_path d (Bytes.unsafe_get secure d);
  sub.(d) <- weight.(d);
  let nreach = I32.length order in
  if Route_static.sorted_for info tiebreak then
    for k = 1 to nreach - 1 do
      let i = I32.unsafe_get order k in
      let lo = I32.unsafe_get tie_off i in
      let hi = I32.unsafe_get tie_off (i + 1) in
      (* First member with a fully secure route, if any. *)
      let first_sec = ref (-1) in
      let p = ref lo in
      while !first_sec < 0 && !p < hi do
        let j = I32.unsafe_get tie !p in
        if Bytes.unsafe_get sec_path j = '\001' then first_sec := j;
        incr p
      done;
      if !first_sec >= 0 then begin
        Bytes.unsafe_set sec_path i (Bytes.unsafe_get secure i);
        next.(i) <-
          (if Bytes.unsafe_get use_secp i = '\001' then !first_sec
           else I32.unsafe_get tie lo)
      end
      else begin
        Bytes.unsafe_set sec_path i '\000';
        next.(i) <- (if hi > lo then I32.unsafe_get tie lo else -1)
      end;
      sub.(i) <- weight.(i)
    done
  else
    for k = 1 to nreach - 1 do
      let i = I32.unsafe_get order k in
      let lo = I32.unsafe_get tie_off i in
      let hi = I32.unsafe_get tie_off (i + 1) in
      let secure_exists = ref false in
      for p = lo to hi - 1 do
        if Bytes.unsafe_get sec_path (I32.unsafe_get tie p) = '\001' then
          secure_exists := true
      done;
      Bytes.unsafe_set sec_path i
        (if !secure_exists then Bytes.unsafe_get secure i else '\000');
      let restrict = !secure_exists && Bytes.unsafe_get use_secp i = '\001' in
      let best = ref (-1) in
      let best_key = ref max_int in
      for p = lo to hi - 1 do
        let j = I32.unsafe_get tie p in
        if (not restrict) || Bytes.unsafe_get sec_path j = '\001' then begin
          let key = Policy.tiebreak_key tiebreak i j in
          if !best < 0 || key < !best_key then begin
            best := j;
            best_key := key
          end
        end
      done;
      next.(i) <- !best;
      sub.(i) <- weight.(i)
    done;
  (* Pass 2, descending path length: accumulate subtree weights. *)
  for k = nreach - 1 downto 1 do
    let i = I32.unsafe_get order k in
    let nh = next.(i) in
    if nh >= 0 then sub.(nh) <- sub.(nh) +. sub.(i)
  done

let path_to_dest (info : Route_static.dest_info) scratch src =
  if not (Route_static.reachable info src) then []
  else begin
    let rec walk v acc =
      if v = info.Route_static.dest then List.rev (v :: acc)
      else begin
        let nh = scratch.next.(v) in
        if nh < 0 then [] else walk nh (v :: acc)
      end
    in
    walk src []
  end

let transit_weight scratch ~weight i = scratch.sub.(i) -. weight.(i)
