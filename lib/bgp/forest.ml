module I32 = Nsutil.I32

type scratch = { next : int array; sec_path : Bytes.t; sub : float array; size : int }

let make_scratch n =
  { next = Array.make n (-1); sec_path = Bytes.make n '\000'; sub = Array.make n 0.0; size = n }

(* Pass 1 visits reachable nodes in ascending path length. Every
   tiebreak-set member of a node has length exactly one less, hence
   appears strictly earlier in [order]: its [sec_path] byte is already
   refreshed when read, so the reset sweep can be fused into the visit
   (each visit writes the node's own [next]/[sec_path]/[sub]
   unconditionally).

   Fast path, when the tie rows are pre-sorted under the run's
   tiebreak: the first member of a row is the TB winner and the first
   member holding a secure route is the SecP+TB winner — the inner
   loop is one first-match scan, with no key computations, closures or
   allocation. The generic path (statics sorted under a different
   policy) recomputes keys with the legacy strictly-less minimum scan,
   still over direct offset ranges. *)
let compute (info : Route_static.dest_info) ~tiebreak ~secure ~use_secp ~weight scratch =
  let { next; sec_path; sub; size = n } = scratch in
  ignore n;
  let order = info.Route_static.order in
  let tie_off = info.Route_static.tie_off in
  let tie = info.Route_static.tie in
  let d = info.Route_static.dest in
  next.(d) <- -1;
  Bytes.unsafe_set sec_path d (Bytes.unsafe_get secure d);
  sub.(d) <- weight.(d);
  let nreach = I32.length order in
  if Route_static.sorted_for info tiebreak then
    for k = 1 to nreach - 1 do
      let i = I32.unsafe_get order k in
      let lo = I32.unsafe_get tie_off i in
      let hi = I32.unsafe_get tie_off (i + 1) in
      (* First member with a fully secure route, if any. *)
      let first_sec = ref (-1) in
      let p = ref lo in
      while !first_sec < 0 && !p < hi do
        let j = I32.unsafe_get tie !p in
        if Bytes.unsafe_get sec_path j = '\001' then first_sec := j;
        incr p
      done;
      if !first_sec >= 0 then begin
        Bytes.unsafe_set sec_path i (Bytes.unsafe_get secure i);
        next.(i) <-
          (if Bytes.unsafe_get use_secp i = '\001' then !first_sec
           else I32.unsafe_get tie lo)
      end
      else begin
        Bytes.unsafe_set sec_path i '\000';
        next.(i) <- (if hi > lo then I32.unsafe_get tie lo else -1)
      end;
      sub.(i) <- weight.(i)
    done
  else
    for k = 1 to nreach - 1 do
      let i = I32.unsafe_get order k in
      let lo = I32.unsafe_get tie_off i in
      let hi = I32.unsafe_get tie_off (i + 1) in
      let secure_exists = ref false in
      for p = lo to hi - 1 do
        if Bytes.unsafe_get sec_path (I32.unsafe_get tie p) = '\001' then
          secure_exists := true
      done;
      Bytes.unsafe_set sec_path i
        (if !secure_exists then Bytes.unsafe_get secure i else '\000');
      let restrict = !secure_exists && Bytes.unsafe_get use_secp i = '\001' in
      let best = ref (-1) in
      let best_key = ref max_int in
      for p = lo to hi - 1 do
        let j = I32.unsafe_get tie p in
        if (not restrict) || Bytes.unsafe_get sec_path j = '\001' then begin
          let key = Policy.tiebreak_key tiebreak i j in
          if !best < 0 || key < !best_key then begin
            best := j;
            best_key := key
          end
        end
      done;
      next.(i) <- !best;
      sub.(i) <- weight.(i)
    done;
  (* Pass 2, descending path length: accumulate subtree weights. *)
  for k = nreach - 1 downto 1 do
    let i = I32.unsafe_get order k in
    let nh = next.(i) in
    if nh >= 0 then sub.(nh) <- sub.(nh) +. sub.(i)
  done

(* ------------------------------------------------------------------ *)
(* Incremental repair (the delta flip kernel).

   A probe flips the participation bytes of a handful of nodes; almost
   all of the forest is unchanged. [repair] starts from a scratch that
   holds the *base* forest (computed under the pre-flip bytes), seeds a
   frontier at exactly the flipped nodes, and re-runs the two passes
   only over nodes whose decision can actually change:

   Pass 1 (ascending path length). A node's decision reads only its own
   [secure]/[use_secp] bytes and the [sec_path] flags of its tiebreak
   members (all at length - 1). So a node needs re-deciding iff it was
   flipped itself, or a tie member's [sec_path] changed — which the
   member discovers when *it* is re-decided, pushing its dependents via
   the reverse tie CSR one level up. Level buckets (intrusive linked
   lists) keep the visit order ascending, matching [compute]'s Pass 1.

   Pass 2 (descending path length). When a node's [next] changes, both
   the old and the new parent's subtree sums change; a changed sum
   propagates to that node's own parent. Instead of accumulating float
   deltas (not associativity-safe), each affected parent's [sub] is
   re-summed from scratch as weight + children, walking its reverse tie
   row — whose members are stored in descending [order] position, the
   exact order [compute]'s Pass 2 folded them in. Same addends, same
   order: bit-identical floats.

   Every touched node's prior [next]/[sec_path]/[sub] is recorded once
   in an undo log, so [undo] restores the base forest exactly and the
   scratch can serve many probes per destination. *)

type repairer = {
  lvl_head1 : int array;  (* per-level list heads, pass 1; -1 = empty *)
  lvl_head2 : int array;
  link1 : int array;  (* per-node intrusive next pointers *)
  link2 : int array;
  inq1 : Bytes.t;  (* membership flags, cleared by [undo] *)
  inq2 : Bytes.t;
  logged : Bytes.t;
  mutable log_node : int array;
  mutable log_next : int array;
  mutable log_sub : float array;
  mutable log_sec : Bytes.t;
  mutable log_len : int;
}

let make_repairer n =
  let levels = Route_static.max_path_len + 2 in
  {
    lvl_head1 = Array.make levels (-1);
    lvl_head2 = Array.make levels (-1);
    link1 = Array.make n (-1);
    link2 = Array.make n (-1);
    inq1 = Bytes.make n '\000';
    inq2 = Bytes.make n '\000';
    logged = Bytes.make n '\000';
    log_node = Array.make 64 0;
    log_next = Array.make 64 0;
    log_sub = Array.make 64 0.0;
    log_sec = Bytes.make 64 '\000';
    log_len = 0;
  }

let grow_log r =
  let cap = Array.length r.log_node in
  let cap' = 2 * cap in
  let node' = Array.make cap' 0 in
  Array.blit r.log_node 0 node' 0 cap;
  r.log_node <- node';
  let next' = Array.make cap' 0 in
  Array.blit r.log_next 0 next' 0 cap;
  r.log_next <- next';
  let sub' = Array.make cap' 0.0 in
  Array.blit r.log_sub 0 sub' 0 cap;
  r.log_sub <- sub';
  let sec' = Bytes.make cap' '\000' in
  Bytes.blit r.log_sec 0 sec' 0 cap;
  r.log_sec <- sec'

let log_once r scratch i =
  if Bytes.unsafe_get r.logged i = '\000' then begin
    Bytes.unsafe_set r.logged i '\001';
    let len = r.log_len in
    if len = Array.length r.log_node then grow_log r;
    Array.unsafe_set r.log_node len i;
    Array.unsafe_set r.log_next len scratch.next.(i);
    Array.unsafe_set r.log_sub len scratch.sub.(i);
    Bytes.unsafe_set r.log_sec len (Bytes.unsafe_get scratch.sec_path i);
    r.log_len <- len + 1
  end

let touched_count r = r.log_len

let push1 r len i =
  if Bytes.unsafe_get r.inq1 i = '\000' then begin
    Bytes.unsafe_set r.inq1 i '\001';
    let l = Char.code (Bytes.unsafe_get len i) in
    r.link1.(i) <- r.lvl_head1.(l);
    r.lvl_head1.(l) <- i
  end

let push2 r len i =
  if Bytes.unsafe_get r.inq2 i = '\000' then begin
    Bytes.unsafe_set r.inq2 i '\001';
    let l = Char.code (Bytes.unsafe_get len i) in
    r.link2.(i) <- r.lvl_head2.(l);
    r.lvl_head2.(l) <- i
  end

let repair (info : Route_static.dest_info) ~tiebreak ~secure ~use_secp ~weight
    ~seeds scratch r =
  let tie_off = info.Route_static.tie_off in
  let tie = info.Route_static.tie in
  let rev_off = info.Route_static.tie_rev_off in
  let rev = info.Route_static.tie_rev in
  let len = info.Route_static.len in
  let d = info.Route_static.dest in
  let { next; sec_path; sub; _ } = scratch in
  let sorted = Route_static.sorted_for info tiebreak in
  Array.iter
    (fun s -> if Route_static.reachable info s then push1 r len s)
    seeds;
  (* Pass 1, ascending: re-decide each frontier node; a [sec_path]
     change enqueues its reverse-tie dependents (one level deeper), a
     [next] change enqueues old and new parent for Pass 2. *)
  for l = 0 to info.Route_static.max_len do
    let node = ref r.lvl_head1.(l) in
    r.lvl_head1.(l) <- -1;
    while !node >= 0 do
      let i = !node in
      log_once r scratch i;
      if i = d then begin
        let ns = Bytes.unsafe_get secure d in
        if Bytes.unsafe_get sec_path d <> ns then begin
          Bytes.unsafe_set sec_path d ns;
          for k = I32.unsafe_get rev_off d to I32.unsafe_get rev_off (d + 1) - 1 do
            push1 r len (I32.unsafe_get rev k)
          done
        end
      end
      else begin
        let lo = I32.unsafe_get tie_off i in
        let hi = I32.unsafe_get tie_off (i + 1) in
        (* Decide [i] exactly as [compute]'s Pass 1 does. *)
        let new_sec = ref '\000' in
        let new_next = ref (-1) in
        if sorted then begin
          let first_sec = ref (-1) in
          let p = ref lo in
          while !first_sec < 0 && !p < hi do
            let j = I32.unsafe_get tie !p in
            if Bytes.unsafe_get sec_path j = '\001' then first_sec := j;
            incr p
          done;
          if !first_sec >= 0 then begin
            new_sec := Bytes.unsafe_get secure i;
            new_next :=
              (if Bytes.unsafe_get use_secp i = '\001' then !first_sec
               else I32.unsafe_get tie lo)
          end
          else new_next := (if hi > lo then I32.unsafe_get tie lo else -1)
        end
        else begin
          let secure_exists = ref false in
          for p = lo to hi - 1 do
            if Bytes.unsafe_get sec_path (I32.unsafe_get tie p) = '\001' then
              secure_exists := true
          done;
          if !secure_exists then new_sec := Bytes.unsafe_get secure i;
          let restrict = !secure_exists && Bytes.unsafe_get use_secp i = '\001' in
          let best = ref (-1) in
          let best_key = ref max_int in
          for p = lo to hi - 1 do
            let j = I32.unsafe_get tie p in
            if (not restrict) || Bytes.unsafe_get sec_path j = '\001' then begin
              let key = Policy.tiebreak_key tiebreak i j in
              if !best < 0 || key < !best_key then begin
                best := j;
                best_key := key
              end
            end
          done;
          new_next := !best
        end;
        if Bytes.unsafe_get sec_path i <> !new_sec then begin
          Bytes.unsafe_set sec_path i !new_sec;
          for k = I32.unsafe_get rev_off i to I32.unsafe_get rev_off (i + 1) - 1 do
            push1 r len (I32.unsafe_get rev k)
          done
        end;
        if next.(i) <> !new_next then begin
          let old = next.(i) in
          next.(i) <- !new_next;
          if old >= 0 then push2 r len old;
          if !new_next >= 0 then push2 r len !new_next
        end
      end;
      node := r.link1.(i)
    done
  done;
  (* Pass 2, descending: re-sum each affected parent's subtree from
     scratch (weight + children via the reverse tie row, which is in
     descending order position — [compute]'s exact fold order); a
     changed sum propagates to the parent's own parent. *)
  for l = info.Route_static.max_len downto 0 do
    let node = ref r.lvl_head2.(l) in
    r.lvl_head2.(l) <- -1;
    while !node >= 0 do
      let p = !node in
      log_once r scratch p;
      let s = ref (Array.unsafe_get weight p) in
      for k = I32.unsafe_get rev_off p to I32.unsafe_get rev_off (p + 1) - 1 do
        let j = I32.unsafe_get rev k in
        if next.(j) = p then s := !s +. Array.unsafe_get sub j
      done;
      if !s <> sub.(p) then begin
        sub.(p) <- !s;
        if p <> d then begin
          let q = next.(p) in
          if q >= 0 then push2 r len q
        end
      end;
      node := r.link2.(p)
    done
  done

let undo scratch r =
  for k = 0 to r.log_len - 1 do
    let i = Array.unsafe_get r.log_node k in
    scratch.next.(i) <- Array.unsafe_get r.log_next k;
    Bytes.unsafe_set scratch.sec_path i (Bytes.unsafe_get r.log_sec k);
    scratch.sub.(i) <- Array.unsafe_get r.log_sub k;
    Bytes.unsafe_set r.logged i '\000';
    Bytes.unsafe_set r.inq1 i '\000';
    Bytes.unsafe_set r.inq2 i '\000'
  done;
  r.log_len <- 0

let path_to_dest (info : Route_static.dest_info) scratch src =
  if not (Route_static.reachable info src) then []
  else begin
    let rec walk v acc =
      if v = info.Route_static.dest then List.rev (v :: acc)
      else begin
        let nh = scratch.next.(v) in
        if nh < 0 then [] else walk nh (v :: acc)
      end
    in
    walk src []
  end

let transit_weight scratch ~weight i = scratch.sub.(i) -. weight.(i)
