(** The fast routing tree algorithm (Appendix C.2).

    Given one destination's static info and a deployment state, this
    computes every node's chosen next hop (applying the SecP and TB
    steps), whether each node holds a fully secure route, and the
    traffic weight transiting each node — all in O(t * N) with zero
    allocation when reusing a scratch buffer. *)

type scratch = private {
  next : int array;  (** chosen next hop; [-1] for the destination / unreachable *)
  sec_path : Bytes.t;  (** 1 iff the node's best routes include a fully secure one *)
  sub : float array;  (** subtree weight: own weight + all traffic routed through *)
  size : int;
}

val make_scratch : int -> scratch
(** Scratch for graphs of [n] nodes; reusable across calls. *)

val compute :
  Route_static.dest_info ->
  tiebreak:Policy.tiebreak ->
  secure:Bytes.t ->
  use_secp:Bytes.t ->
  weight:float array ->
  scratch ->
  unit
(** Fill [scratch] for this destination and state. [secure.(i) = 1]
    iff AS [i] participates in S*BGP (full or simplex): it signs, so
    paths through it can be fully secure. [use_secp.(i) = 1] iff [i]
    applies the SecP tie-break (secure ISPs/CPs always; secure stubs
    only when the stubs-break-ties assumption is on). A path is secure
    iff every AS on it is secure, including both endpoints. *)

(** {2 Incremental repair (the delta flip kernel)}

    A probe flips the participation bytes of a handful of nodes; the
    forest is almost entirely unchanged. {!repair} starts from a
    scratch holding the {e base} forest (as produced by {!compute}
    under the pre-flip bytes), seeds a frontier at exactly the flipped
    nodes, and re-decides a node iff it was flipped itself or a
    tiebreak member's [sec_path] flag changed — propagating outward by
    level via the reverse tie CSR. Subtree sums of affected parents
    are re-summed from scratch in {!compute}'s exact Pass-2 addition
    order (the reverse tie rows are stored in descending order
    position), so the repaired scratch is bit-identical to a full
    recompute under the flipped bytes. An undo log records each
    touched node's prior values once; {!undo} restores the base
    forest exactly, so one scratch serves many probes. *)

type repairer
(** Reusable frontier + undo-log workspace; one per worker. *)

val make_repairer : int -> repairer
(** Workspace for graphs of [n] nodes. *)

val repair :
  Route_static.dest_info ->
  tiebreak:Policy.tiebreak ->
  secure:Bytes.t ->
  use_secp:Bytes.t ->
  weight:float array ->
  seeds:int array ->
  scratch ->
  repairer ->
  unit
(** Repair [scratch] — which must hold the base forest for this
    destination — into the forest for the current [secure]/[use_secp]
    bytes. [seeds] are the nodes whose bytes differ from the base
    (unreachable seeds are ignored). The repairer must be quiescent
    (fresh, or after {!undo}). *)

val undo : scratch -> repairer -> unit
(** Restore [scratch] to the base forest it held before {!repair} and
    reset the repairer for the next probe. *)

val touched_count : repairer -> int
(** Number of nodes the last {!repair} touched (valid until {!undo}). *)

val path_to_dest : Route_static.dest_info -> scratch -> int -> int list
(** The chosen AS path [src; ...; dest], empty if unreachable. *)

val transit_weight : scratch -> weight:float array -> int -> float
(** Traffic from other ASes that the node forwards towards this
    destination: [sub - own weight]. *)
