(** Per-destination *static* routing information, in a compact layout.

    Observation C.1: under the Appendix-A policies, the class and
    length of every node's best route to a destination do not depend
    on the deployment state. This module computes, once per
    destination, each node's route class, path length and *tiebreak
    set* (the equally-good next hops among which SecP and TB choose).
    The per-state routing tree is then derived by {!Forest} in
    O(t * N) per destination.

    The tiebreak CSR and the length-sorted order are stored as int32
    bigarrays ({!Nsutil.I32}): half the footprint of [int array]s, out
    of the OCaml heap (never GC-scanned), and shareable across worker
    domains without copying. Each tiebreak row is pre-sorted by the
    static {!Policy.tiebreak_key} (stable, so insertion order breaks
    key collisions exactly as the legacy minimum scan did): the first
    eligible member of a row *is* the winner, which lets the forest
    kernel drop all key computations from its inner loop. *)

type dest_info = private {
  dest : int;
  cls : Bytes.t;  (** route class per node, {!Policy.class_to_char} encoding *)
  len : Bytes.t;  (** path length per node, valid when reachable; capped at 254 *)
  tie_off : Nsutil.I32.t;  (** CSR offsets, length [n + 1] *)
  tie : Nsutil.I32.t;
      (** CSR data: tiebreak-set members, each row sorted ascending by
          [Policy.tiebreak_key tb i] *)
  tie_rev_off : Nsutil.I32.t;  (** reverse-CSR offsets, length [n + 1] *)
  tie_rev : Nsutil.I32.t;
      (** reverse tiebreak adjacency: row [j] lists every node whose
          tie set contains [j], in {e descending} [order] position —
          the order Pass 2 of {!Forest.compute} folds child subtrees
          into parents, so {!Forest.repair} re-sums a parent's subtree
          with bit-identical float addition order *)
  order : Nsutil.I32.t;
      (** reachable nodes in ascending path length; [order.(0) = dest] *)
  tb : Policy.tiebreak;  (** the policy the tie rows are sorted under *)
  max_len : int;
}

val max_path_len : int
(** Upper bound on any stored path length (254 — lengths live in one
    byte). *)

val compute : ?tiebreak:Policy.tiebreak -> Asgraph.Graph.t -> int -> dest_info
(** Static info for one destination; O(V + E). Tie rows are sorted
    under [tiebreak] (default [Lowest_id]). *)

(** {2 Reusable computation scratch} *)

type builder
(** All O(n) scratch one three-stage computation touches, hoisted so a
    caller computing many records (a streaming sweep at 36K+ nodes)
    allocates nothing per destination. Single-domain state: keep one
    builder per worker, never share one across domains. *)

val make_builder : int -> builder
(** A builder for [n]-node graphs; {!compute_with} raises
    [Invalid_argument] on a node-count mismatch. *)

val compute_with :
  ?tiebreak:Policy.tiebreak ->
  ?transient:bool ->
  builder ->
  Asgraph.Graph.t ->
  int ->
  dest_info
(** {!compute} through a builder's scratch — bit-identical output.
    With [~transient:true] the record itself also lives in
    builder-owned buffers: it is only valid until the builder's next
    transient compute, and must never outlive the builder or be
    retained (the store's {!stream_get} promotes by deep copy). *)

val class_of : dest_info -> int -> Policy.route_class
val length_of : dest_info -> int -> int
(** Path length of the node's best route; raises if unreachable. *)

val reachable : dest_info -> int -> bool

val sorted_for : dest_info -> Policy.tiebreak -> bool
(** Are this info's tie rows sorted under the given policy (so the
    row head is the TB winner)? *)

(** {2 Accessors over the compact layout} *)

val order_length : dest_info -> int
val order_get : dest_info -> int -> int
val iter_order : dest_info -> (int -> unit) -> unit

val tie_size : dest_info -> int -> int
val tie_get : dest_info -> int -> int -> int
(** [tie_get info i k] is the [k]-th member of node [i]'s row. *)

val tie_list : dest_info -> int -> int list
val tie_exists : dest_info -> int -> (int -> bool) -> bool
val tie_fold : dest_info -> int -> ('a -> int -> 'a) -> 'a -> 'a
val tie_mem : dest_info -> int -> int -> bool

val info_bytes : dest_info -> int
(** Approximate resident size of one record, in bytes — the unit of
    the statics byte budget. *)

val info_equal : dest_info -> dest_info -> bool
(** Bit-for-bit equality of two records: destination, tiebreak policy,
    class and length bytes, tie CSR (offsets and pre-sorted rows),
    reverse tiebreak CSR, and the length-sorted order. The contract of
    the incremental repair path: [repair] must be [info_equal] to a
    fresh {!compute} on the churned graph. *)

(** {2 Incremental repair under topology churn} *)

type kernel = Full | Delta
(** Statics maintenance strategy across a {!Asgraph.Graph.delta}:
    [Full] rebuilds from scratch, [Delta] patches per-destination
    records surgically where the churn provably cannot reach the
    destination's routing tree and falls back to {!compute} elsewhere.
    Both produce bit-identical results; selected by
    [SBGP_STATICS_KERNEL] / [--statics-kernel]. *)

val kernel_of_env : unit -> kernel
(** Reads [SBGP_STATICS_KERNEL] ([full] or [delta]); defaults to
    [Delta], warning once on an invalid value. *)

val kernel_of_string : string -> kernel option
val kernel_to_string : kernel -> string

val repair : Asgraph.Graph.t -> delta:Asgraph.Graph.delta -> dest_info -> dest_info
(** [repair g' ~delta info] is the statics of [info.dest] on the
    churned graph [g' = apply_delta g delta], given the statics on the
    pre-churn graph [g]. Bit-identical ({!info_equal}) to
    [compute ~tiebreak:info.tb g' info.dest]. Destinations whose
    routing tree the delta cannot reach are patched in O(copy) —
    appended stubs are spliced into the CSR rows, tie permutation,
    reverse CSR and length order without recomputation — otherwise the
    record is rebuilt by {!compute}. The input [info] is never
    mutated. Raises [Invalid_argument] if [info] or [g'] do not match
    [delta]. *)

val repair_surgical :
  Asgraph.Graph.t -> delta:Asgraph.Graph.delta -> dest_info -> dest_info option
(** The patch-only half of {!repair}: [None] when the delta reaches
    the destination's tree and a full rebuild is required. [Some info]
    (physically shared) when the delta provably cannot affect this
    destination at all. *)

val check_info : Asgraph.Graph.t -> dest_info -> (unit, string) result
(** Cheap structural self-check of one record against its graph — the
    degradation ladder's invariant probe. Verifies, in O(record size):
    CSR offset monotonicity and bounds for both tie CSRs, that [order]
    is a duplicate-free ascending-length permutation of exactly the
    reachable nodes starting at [dest], that [max_len] matches the
    last order entry, that every tie member is in range, and that
    [tie_rev] is the exact transpose of [tie] (compared as a multiset
    of (row, member) pairs via an order-insensitive sum/xor digest —
    collisions are possible in principle but not constructible by the
    single-byte corruptions the fault harness injects). [Error reason]
    names the first violated invariant. *)

(** {2 The whole-graph store} *)

type t
(** Whole-graph store of per-destination info, filled lazily, with an
    optional byte budget. Unbounded (the default) it is a plain cache:
    {!ensure_all} prefills it in parallel and {!get} is afterwards a
    read-only lookup, safe from any domain. Bounded, {!get} recomputes
    on miss and inserts under clock (second-chance) eviction; the
    store is striped into shards with per-shard budgets, hands and
    counters, aligned with the contiguous destination slices the
    engine hands to workers. Because {!compute} is pure and slot
    updates are single pointer stores, concurrent [get]s from several
    domains always return correct (bit-identical) info — only the
    {!stats} counters are best-effort under concurrency. *)

type stats = {
  hits : int;
  misses : int;  (** includes initial fills *)
  evictions : int;
  cached : int;  (** destinations currently resident *)
  cached_bytes : int;
  budget_bytes : int;  (** [max_int] when unbounded *)
}

val create : ?budget_bytes:int -> ?tiebreak:Policy.tiebreak -> Asgraph.Graph.t -> t
(** [budget_bytes <= 0] means unbounded. Default comes from the
    [SBGP_STATICS_MB] environment variable (megabytes; unset or [0] =
    unbounded). *)

val graph : t -> Asgraph.Graph.t
val get : t -> int -> dest_info
(** [get t d] returns the info for destination [d], computing it (and
    caching it, budget permitting) on miss. *)

val stream_get : t -> builder -> int -> dest_info
(** The whole-graph-sweep read path. Hit: same as {!get}. Miss:
    recompute through the caller's builder; under a budget the record
    is transient unless it fits the owning shard's remaining headroom
    without evicting anything, in which case a deep copy is promoted
    into the store. The cached set thus converges to a stable prefix
    of the budget instead of churning every round (clock eviction
    degenerates to 100% turnover when a sweep touches every
    destination once). A non-promoted return value is only valid until
    the builder's next transient compute. Bit-identical to {!get} at
    any budget and worker count ({!compute_with} is pure). *)

val batch_grain : t -> workers:int -> tasks:int -> int
(** Destinations per dynamically-claimed chunk for a whole-graph sweep
    over this store: keeps one worker inside one shard stripe long
    enough that shard state sees mostly single-writer traffic, while
    leaving enough chunks for dynamic claiming to rebalance. Floors at
    the gadget-scale grain of 8. *)

val stats : t -> stats
val bounded : t -> bool

val set_budget_bytes : t -> int -> unit
(** [<= 0] means unbounded. Shrinking trims the store immediately. *)

val set_budget_mb : t -> int -> unit

val ensure_tiebreak : t -> Policy.tiebreak -> unit
(** Make the store serve info whose tie rows are sorted under the
    given policy, dropping all cached entries if it differs from the
    current one. Call before handing the store to an engine run. *)

val ensure_all : ?workers:int -> t -> unit
(** Unbounded store: force every destination's info, fanning the
    (pure, per-destination) computations out over [workers] domains;
    after this call {!get} is a read-only lookup. Bounded store: no-op
    — prefilling would only evict what it just built; workers fill
    shards lazily through {!get}. *)

(** {2 Rebasing across topology churn} *)

type rebase_stats = {
  shared : int;  (** resident entries untouched by the delta, kept as-is *)
  patched : int;  (** resident entries repaired surgically *)
  dropped : int;  (** resident entries the churn reached, left for lazy recompute *)
  invalid : int;
      (** patched entries that failed the {!check_info} structural
          validation and were dropped for lazy recompute instead of
          being inserted — the degradation ladder's per-destination
          [delta -> full] statics demotion. Always [0] unless a fault
          plan (site [statics.repair]) or a real repair bug corrupts a
          patched record. *)
}

type journal
(** Snapshot of the pre-rebase store, for {!undo_rebase}. O(1) — the
    rebase never mutates the superseded slot space. *)

val rebase :
  ?kernel:kernel ->
  ?workers:int ->
  ?faults:Nsutil.Faults.t ->
  t ->
  delta:Asgraph.Graph.delta ->
  Asgraph.Graph.t ->
  journal
(** [rebase t ~delta g'] retargets the store at the churned graph
    [g' = apply_delta (graph t) delta] in place: fresh slot space and
    shard stripes sized for [g'] (the total byte budget is preserved),
    then — under the [Delta] kernel (default {!kernel_of_env}) — every
    resident entry is migrated through {!repair_surgical}, re-inserted
    through the normal budget accounting so eviction state stays
    exact. The migration itself fans out over [workers] domains
    (default 1); inserts stay serial in a fixed order, so the
    resulting store is bit-identical at any worker count. Entries the
    churn reaches are dropped and recompute lazily
    against [g'] on their next {!get}, as do entries under [Full].
    Every surgically patched record is structurally validated
    ({!check_info}) before insertion; a record that fails — possible
    only under fault injection (site [statics.repair], which corrupts
    a freshly patched, never shared, record) or a repair bug — is
    dropped for lazy recompute and counted in [rebase_stats.invalid]:
    the outcome stays bit-identical because {!compute} is the
    reference the patch is contracted to equal.
    After a rebase the store never serves pre-churn info. Hit/miss/
    eviction counters restart from zero. Not thread-safe: call between
    engine runs, never concurrently with {!get}. Raises
    [Invalid_argument] when store or graph do not match [delta]. *)

val undo_rebase : t -> journal -> unit
(** Restore the store to its exact pre-rebase state (slots, reference
    bits, shard accounts, graph, tiebreak). Only meaningful with the
    journal of the store's most recent rebase. *)

val rebase_stats : journal -> rebase_stats

val revalidate : t -> (int * string) list
(** Checkpoint-boundary rung of the degradation ladder: run
    {!check_info} over every resident record, drop the ones that fail
    (their destinations recompute lazily — the [Full]-kernel behavior)
    and return [(dest, reason)] for each drop, ascending. Results stay
    bit-identical because {!compute} is the reference. Empty on a
    healthy store. Not thread-safe. *)

(** {3 Snapshots for churn-consistent checkpoints} *)

val snapshot : t -> string
(** Serialize the store's full warm state — resident records,
    reference bits, shard budgets/hands and the hit/miss/eviction
    counters, and the tiebreak policy — as an opaque blob, so a churn
    run resumed from a checkpoint reports byte-identical statics
    statistics to an uninterrupted one. The graph is {e not} included;
    pair the blob with however the caller persists/recomputes its
    graph. *)

val of_snapshot : Asgraph.Graph.t -> string -> t
(** Rebuild a store from {!snapshot} output onto [g], which must have
    the node count the snapshot was taken under (raises
    [Invalid_argument] otherwise). The blob is a [Marshal] image:
    callers must gate it behind an integrity check
    ({!Core.Checkpoint} does) before handing it here. *)

val rebase_changed : journal -> int list
(** Destinations (of the pre-churn graph, ascending) whose static info
    is not provably unchanged by the delta: patched or dropped
    entries, plus destinations that were not resident at rebase time.
    The complement — destinations omitted here — kept physically
    identical info, so any per-destination derived cache (forests,
    utility contributions) remains valid for them; feed this list to
    {!Core.Incremental.note_churn}. *)

(** Cross-round dirty-destination tracking for deployment-state
    caches. A consumer that caches *per-destination* derived data
    (routing forests, utility contributions) keyed on the deployment
    state can, after a state change, invalidate only the destinations
    whose security-aware routing tree can actually change: destination
    [d]'s tree reads the participation bytes of reachable nodes only
    (every node in [order], [d] itself, and all tiebreak-set members —
    which are themselves reachable), so a flip at a node that is
    unreachable in [d]'s static info cannot alter the tree; and if the
    origin [d] itself does not participate, no route towards it is
    ever fully secure, so flips elsewhere cannot alter the tree
    either. *)
module Dirty : sig
  type statics := t

  type t

  val create : statics -> t
  (** All destinations start dirty (nothing cached yet). *)

  val invalidate : t -> changed:int list -> secure:Bytes.t -> unit
  (** Mark every destination [d] with [d] itself in [changed] (a list
      of nodes whose participation or tie-break byte flipped), or with
      a participating origin ([secure.[d] = '\001'], the post-change
      participation bytes) and some node of [changed] reachable.
      Conservative: may mark a destination whose tree happens not to
      change, never misses one that does. Reads the statics store (and
      may force entries); per destination it scans the smaller of the
      changed set and the reachable order. *)

  val reset : t -> unit
  (** Mark every destination clean (call once the consumer has
      recomputed its cache for the current state). *)

  val mark : t -> int -> unit
  (** Mark one destination dirty unconditionally — used for topology
      churn, where the destination's static info (not just the
      deployment state) changed. *)

  val is_dirty : t -> int -> bool
  val dirty_count : t -> int
end

val mean_tiebreak_size : t -> among:(int -> bool) -> float
(** Mean tiebreak-set size over all (source satisfying [among],
    destination) pairs with a reachable route (Section 6.6). Forces
    every destination. *)

val mean_path_length : t -> from:int -> float
(** Mean best-path length from [from] to all other reachable
    destinations (Table 3). *)
