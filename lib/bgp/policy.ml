type route_class = Self | Via_customer | Via_peer | Via_provider | Unreachable

let class_to_char = function
  | Self -> '\000'
  | Via_customer -> '\001'
  | Via_peer -> '\002'
  | Via_provider -> '\003'
  | Unreachable -> '\004'

let class_of_char = function
  | '\000' -> Self
  | '\001' -> Via_customer
  | '\002' -> Via_peer
  | '\003' -> Via_provider
  | '\004' -> Unreachable
  | c -> invalid_arg (Printf.sprintf "Policy.class_of_char: %d" (Char.code c))

let class_to_string = function
  | Self -> "self"
  | Via_customer -> "customer"
  | Via_peer -> "peer"
  | Via_provider -> "provider"
  | Unreachable -> "unreachable"

type ranking = (int * int, int) Hashtbl.t

type tiebreak = Lowest_id | Hashed of int | Ranked of ranking

let ranking_create () : ranking = Hashtbl.create 64

let set_rank (r : ranking) ~node ~next_hop rank = Hashtbl.replace r (node, next_hop) rank

let tiebreak_key tb a b =
  match tb with
  | Lowest_id -> b
  | Hashed seed -> Nsutil.Prng.mix2 (seed lxor a) b
  | Ranked r -> ( match Hashtbl.find_opt r (a, b) with Some rank -> rank | None -> b)

let preferred tb a ~current ~candidate =
  current < 0 || tiebreak_key tb a candidate < tiebreak_key tb a current

(* Rank tables compare by identity: two distinct tables yield distinct
   key functions even when their current contents coincide (they are
   mutable). *)
let tiebreak_equal a b =
  match (a, b) with
  | Lowest_id, Lowest_id -> true
  | Hashed s1, Hashed s2 -> s1 = s2
  | Ranked r1, Ranked r2 -> r1 == r2
  | _ -> false
