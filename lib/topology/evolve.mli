(** AS-graph evolution (Section 8.4: "extensions might also model the
    evolution of the AS graph with time, and possibly incorporate ...
    the addition of new edges if secure ASes manage to sign up new
    customers").

    Growth adds stub ASes that multihome to existing ISPs chosen by
    preferential attachment, optionally biased towards ISPs that
    already deployed S*BGP — the market reward the paper
    hypothesizes. *)

val grow :
  Asgraph.Graph.t ->
  new_stubs:int ->
  secure_bias:float ->
  is_secure:(int -> bool) ->
  seed:int ->
  Asgraph.Graph.t
(** [grow g ~new_stubs ~secure_bias ~is_secure ~seed] returns a graph
    with [new_stubs] fresh stubs appended (existing ids unchanged).
    Each new stub takes 1-2 providers; an ISP's attachment weight is
    [(customer_degree + 1) * (1 + secure_bias)] if [is_secure] holds
    for it, [(customer_degree + 1)] otherwise. [secure_bias = 0]
    recovers plain preferential attachment. *)

val grow_delta :
  Asgraph.Graph.t ->
  new_stubs:int ->
  secure_bias:float ->
  is_secure:(int -> bool) ->
  seed:int ->
  Asgraph.Graph.t * Asgraph.Graph.delta
(** Like {!grow}, but also returns the explicit {!Asgraph.Graph.delta}
    (stub-attachment [Edge_add] ops) relating the grown graph to [g] —
    the input to {!Bgp.Route_static.rebase}, which migrates a warm
    statics store across the epoch instead of rebuilding it. *)
