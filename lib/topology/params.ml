type t = {
  n : int;
  tier1 : int;
  isp_fraction : float;
  cps : int;
  max_providers_isp : int;
  stub_multihoming : float array;
  pa_bias : float;
  isp_peer_degree : float;
  ixps : int;
  ixp_members : int;
  ixp_peer_prob : float;
  cp_providers : int;
  cp_peers : int;
  seed : int;
}

let default =
  {
    n = 1000;
    tier1 = 5;
    isp_fraction = 0.15;
    cps = 5;
    max_providers_isp = 3;
    (* 1..4 providers; mean ~1.65, most stubs single- or dual-homed,
       matching the empirical skew the paper leans on. *)
    stub_multihoming = [| 0.55; 0.30; 0.10; 0.05 |];
    pa_bias = 0.75;
    isp_peer_degree = 1.5;
    ixps = 4;
    ixp_members = 25;
    ixp_peer_prob = 0.35;
    cp_providers = 3;
    cp_peers = 8;
    seed = 42;
  }

let with_n t n =
  let scale = sqrt (float_of_int n /. float_of_int t.n) in
  {
    t with
    n;
    ixps = max 1 (int_of_float (float_of_int t.ixps *. scale));
    ixp_members = max 5 (int_of_float (float_of_int t.ixp_members *. scale));
  }

let paper = with_n default 36_000
