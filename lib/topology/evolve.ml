module Graph = Asgraph.Graph
module Prng = Nsutil.Prng

let grow_delta g ~new_stubs ~secure_bias ~is_secure ~seed =
  if secure_bias < 0.0 then invalid_arg "Evolve.grow: negative bias";
  let n = Graph.n g in
  let rng = Prng.create ~seed in
  let isps = Array.of_list (Graph.nodes_of_class g Asgraph.As_class.Isp) in
  if Array.length isps = 0 then invalid_arg "Evolve.grow: no ISPs to attach to";
  let weight_of i =
    let base = float_of_int (Graph.customer_degree g i + 1) in
    if is_secure i then base *. (1.0 +. secure_bias) else base
  in
  let weights = Array.map weight_of isps in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let pick () =
    let r = Prng.float rng total in
    let rec scan k acc =
      if k >= Array.length isps - 1 then isps.(Array.length isps - 1)
      else begin
        let acc = acc +. weights.(k) in
        if r < acc then isps.(k) else scan (k + 1) acc
      end
    in
    scan 0 0.0
  in
  let ops = ref [] in
  for s = n to n + new_stubs - 1 do
    let wanted = 1 + (if Prng.float rng 1.0 < 0.4 then 1 else 0) in
    let first = pick () in
    ops := Graph.Edge_add ((first, s), Graph.Customer) :: !ops;
    if wanted = 2 then begin
      let second = pick () in
      if second <> first then
        ops := Graph.Edge_add ((second, s), Graph.Customer) :: !ops
    end
  done;
  let delta = { Graph.base_n = n; grown = new_stubs; ops = List.rev !ops } in
  (Graph.apply_delta g delta, delta)

let grow g ~new_stubs ~secure_bias ~is_secure ~seed =
  fst (grow_delta g ~new_stubs ~secure_bias ~is_secure ~seed)
