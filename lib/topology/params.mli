(** Parameters of the synthetic Internet-like AS topology.

    The generator replaces the paper's empirical Cyclops+IXP graph
    (Section 4). The deployment dynamics depend on the graph's *shape*
    — extreme degree skew, ~85% stubs, short valley-free paths, small
    tiebreak sets, a Tier-1 clique at the top — and the defaults below
    are tuned so the generated graphs match those statistics at
    laptop-scale N (verified by tests and the Table 2/3 benches). *)

type t = {
  n : int;  (** total ASes *)
  tier1 : int;  (** size of the Tier-1 peer clique *)
  isp_fraction : float;  (** fraction of ASes that are transit ISPs (incl. Tier 1) *)
  cps : int;  (** content providers *)
  max_providers_isp : int;  (** provider multihoming cap for ISPs *)
  stub_multihoming : float array;
      (** distribution of stub provider counts: index k holds P(k+1 providers) *)
  pa_bias : float;  (** preferential-attachment strength in [0, 1] *)
  isp_peer_degree : float;  (** mean number of extra peering links per ISP *)
  ixps : int;  (** number of IXP peering meshes *)
  ixp_members : int;  (** ISPs per IXP *)
  ixp_peer_prob : float;  (** probability two co-located members peer *)
  cp_providers : int;  (** transit providers per CP *)
  cp_peers : int;  (** initial peering links per CP (pre-augmentation) *)
  seed : int;
}

val default : t
(** A 1000-AS Internet: 5 Tier 1s, 15% ISPs, 5 CPs, ~58% single-homed
    stubs. *)

val with_n : t -> int -> t
(** Same shape scaled to a different AS count (IXP count and members
    scale with sqrt N). *)

val paper : t
(** [with_n default 36_000]: the scale of the paper's empirical
    Cyclops+IXP snapshot (~36K ASes), the reference point of the
    N-scaling bench series. *)
