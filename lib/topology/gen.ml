module Graph = Asgraph.Graph
module Prng = Nsutil.Prng

type built = {
  graph : Graph.t;
  tier1 : int list;
  cps : int list;
  ixp_present : int list;
}

module Itbl = Hashtbl.Make (Int)

(* Edge bookkeeping: reject duplicates and conflicting annotations up
   front so Graph.build never raises. Keys pack the unordered pair
   into one int (min * n + max); at 100K nodes the generator would
   otherwise spend most of its time polymorphic-hashing boxed pairs. *)
type edges = {
  mutable cp : (int * int) list;  (* (provider, customer) *)
  mutable peer : (int * int) list;
  seen : unit Itbl.t;
  e_n : int;
}

let edges_create ~n = { cp = []; peer = []; seen = Itbl.create 4096; e_n = n }

let key e a b = if a < b then (a * e.e_n) + b else (b * e.e_n) + a

let try_add_cp e ~provider ~customer =
  if provider <> customer then begin
    let k = key e provider customer in
    if not (Itbl.mem e.seen k) then begin
      Itbl.add e.seen k ();
      e.cp <- (provider, customer) :: e.cp;
      true
    end
    else false
  end
  else false

let try_add_peer e a b =
  if a <> b then begin
    let k = key e a b in
    if not (Itbl.mem e.seen k) then begin
      Itbl.add e.seen k ();
      e.peer <- (a, b) :: e.peer;
      true
    end
    else false
  end
  else false

(* Draw from a discrete distribution given as per-index probabilities
   (index i -> value i+1); falls back to 1 on rounding gaps. *)
let draw_count rng dist =
  let r = Prng.float rng 1.0 in
  let rec loop i acc =
    if i >= Array.length dist then 1
    else begin
      let acc = acc +. dist.(i) in
      if r < acc then i + 1 else loop (i + 1) acc
    end
  in
  loop 0 0.0

let generate (p : Params.t) =
  if p.tier1 < 1 then invalid_arg "Gen.generate: need at least one Tier 1";
  let n_isp = max (p.tier1 + 1) (int_of_float (p.isp_fraction *. float_of_int p.n)) in
  if n_isp + p.cps >= p.n then invalid_arg "Gen.generate: no room for stubs";
  let rng = Prng.create ~seed:p.seed in
  let e = edges_create ~n:p.n in
  let cp_lo = n_isp in
  let stub_lo = n_isp + p.cps in
  (* Preferential-attachment pool over transit ISPs: an ISP appears
     once per customer it has gained, plus one base entry. *)
  let pool = ref [||] in
  let pool_len = ref 0 in
  let pool_push v =
    if !pool_len >= Array.length !pool then begin
      let bigger = Array.make (max 64 (2 * Array.length !pool)) 0 in
      Array.blit !pool 0 bigger 0 !pool_len;
      pool := bigger
    end;
    !pool.(!pool_len) <- v;
    incr pool_len
  in
  (* Tier-1 clique. *)
  let tier1 = List.init p.tier1 (fun i -> i) in
  List.iter
    (fun a -> List.iter (fun b -> if a < b then ignore (try_add_peer e a b)) tier1)
    tier1;
  List.iter pool_push tier1;
  (* Pick a provider among ISPs with index < [limit]. *)
  let pick_provider limit =
    if Prng.float rng 1.0 < p.pa_bias && !pool_len > 0 then begin
      (* Rejection: pool entries are always < current ISP index during
         the ISP phase, but may need the limit for safety. *)
      let rec try_pool attempts =
        if attempts = 0 then Prng.int rng limit
        else begin
          let v = !pool.(Prng.int rng !pool_len) in
          if v < limit then v else try_pool (attempts - 1)
        end
      in
      try_pool 8
    end
    else Prng.int rng limit
  in
  (* Transit ISPs multihome to earlier ISPs (GR1 by construction). *)
  let isp_provider_dist = [| 0.6; 0.3; 0.1 |] in
  for i = p.tier1 to n_isp - 1 do
    let wanted = min p.max_providers_isp (draw_count rng isp_provider_dist) in
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < wanted && !attempts < 20 do
      incr attempts;
      let prov = pick_provider i in
      if try_add_cp e ~provider:prov ~customer:i then begin
        pool_push prov;
        incr added
      end
    done;
    (* Guarantee connectivity: fall back to a deterministic Tier 1. *)
    if !added = 0 && try_add_cp e ~provider:(i mod p.tier1) ~customer:i then
      pool_push (i mod p.tier1)
  done;
  (* Private peering between ISPs. *)
  for i = p.tier1 to n_isp - 1 do
    let base = int_of_float p.isp_peer_degree in
    let frac = p.isp_peer_degree -. float_of_int base in
    let count = base + (if Prng.float rng 1.0 < frac then 1 else 0) in
    for _ = 1 to count do
      let j = Prng.int rng n_isp in
      ignore (try_add_peer e i j)
    done
  done;
  (* IXP meshes. *)
  let ixp_present = Hashtbl.create 64 in
  for _ = 1 to p.ixps do
    let members =
      Prng.sample_without_replacement rng (min p.ixp_members n_isp) ~from:n_isp
    in
    Array.iter (fun m -> Hashtbl.replace ixp_present m ()) members;
    let k = Array.length members in
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        if Prng.float rng 1.0 < p.ixp_peer_prob then
          ignore (try_add_peer e members.(a) members.(b))
      done
    done
  done;
  (* Content providers: a couple of transit providers plus light
     peering with IXP members. *)
  let ixp_list = Hashtbl.fold (fun m () acc -> m :: acc) ixp_present [] in
  let ixp_arr = Array.of_list (List.sort compare ixp_list) in
  let cps = List.init p.cps (fun i -> cp_lo + i) in
  (* ISP customers of an ISP, for the reseller chains below. *)
  let isp_customers_tbl = Hashtbl.create 256 in
  List.iter
    (fun (prov, cust) ->
      if cust < n_isp then
        Hashtbl.replace isp_customers_tbl prov
          (cust :: Option.value ~default:[] (Hashtbl.find_opt isp_customers_tbl prov)))
    e.cp;
  let isp_customers v = Option.value ~default:[] (Hashtbl.find_opt isp_customers_tbl v) in
  List.iter
    (fun cp ->
      let added = ref 0 in
      let attempts = ref 0 in
      let first_provider = ref None in
      while !added < p.cp_providers && !attempts < 20 do
        incr attempts;
        (* One big transit carrier, then regional providers — with a
           bias towards resellers of the main carrier (a CP buying
           local transit downstream of its own carrier is the
           structure behind the paper's Figure 13: Akamai behind both
           NTT and NTT's transitive customer AS 9498). *)
        let prov =
          match !first_provider with
          | None -> pick_provider n_isp
          | Some big ->
              let reseller () =
                match isp_customers big with
                | [] -> None
                | mids -> begin
                    let mid = List.nth mids (Prng.int rng (List.length mids)) in
                    match isp_customers mid with
                    | [] -> Some mid
                    | smalls -> Some (List.nth smalls (Prng.int rng (List.length smalls)))
                  end
              in
              if Prng.bool rng then
                Option.value (reseller ())
                  ~default:(p.tier1 + Prng.int rng (max 1 (n_isp - p.tier1)))
              else p.tier1 + Prng.int rng (max 1 (n_isp - p.tier1))
        in
        if try_add_cp e ~provider:prov ~customer:cp then begin
          if !first_provider = None then first_provider := Some prov;
          incr added
        end
      done;
      if !added = 0 then ignore (try_add_cp e ~provider:(cp mod p.tier1) ~customer:cp);
      let peers = ref 0 in
      let attempts = ref 0 in
      while !peers < p.cp_peers && !attempts < 40 && Array.length ixp_arr > 0 do
        incr attempts;
        let partner = Prng.pick rng ixp_arr in
        if try_add_peer e cp partner then incr peers
      done)
    cps;
  (* Stubs. *)
  for s = stub_lo to p.n - 1 do
    let wanted = draw_count rng p.stub_multihoming in
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < wanted && !attempts < 20 do
      incr attempts;
      let prov = pick_provider n_isp in
      if try_add_cp e ~provider:prov ~customer:s then begin
        pool_push prov;
        incr added
      end
    done;
    if !added = 0 && try_add_cp e ~provider:(s mod p.tier1) ~customer:s then
      pool_push (s mod p.tier1)
  done;
  let graph = Graph.build ~n:p.n ~cp_edges:e.cp ~peer_edges:e.peer ~cps in
  { graph; tier1; cps; ixp_present = List.sort compare ixp_list }
