exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# AS relationship graph\n";
  Buffer.add_string buf (Printf.sprintf "!n %d\n" (Graph.n g));
  List.iter
    (fun cp -> Buffer.add_string buf (Printf.sprintf "!cp %d\n" cp))
    (Graph.nodes_of_class g As_class.Cp);
  List.iter
    (fun ((a, b), rel) ->
      match rel with
      | Graph.Customer -> Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" a b)
      | Graph.Peer -> Buffer.add_string buf (Printf.sprintf "%d|%d|0\n" a b)
      | Graph.Provider -> assert false)
    (Graph.edges g);
  Buffer.contents buf

let of_string s =
  let n = ref (-1) in
  let cps = ref [] in
  let cp_edges = ref [] in
  let peer_edges = ref [] in
  let parse_line idx line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else if String.length line > 3 && String.sub line 0 3 = "!n " then begin
      match int_of_string_opt (String.sub line 3 (String.length line - 3)) with
      | Some v when v >= 0 -> n := v
      | _ -> fail idx "bad !n directive: %s" line
    end
    else if String.length line > 4 && String.sub line 0 4 = "!cp " then begin
      match int_of_string_opt (String.sub line 4 (String.length line - 4)) with
      | Some v -> cps := v :: !cps
      | None -> fail idx "bad !cp directive: %s" line
    end
    else begin
      match String.split_on_char '|' line with
      | [ a; b; r ] -> begin
          match (int_of_string_opt a, int_of_string_opt b, String.trim r) with
          | Some a, Some b, "-1" -> cp_edges := (a, b) :: !cp_edges
          | Some a, Some b, "0" -> peer_edges := (a, b) :: !peer_edges
          | _ -> fail idx "bad edge record: %s" line
        end
      | _ -> fail idx "unrecognized line: %s" line
    end
  in
  List.iteri (fun i l -> parse_line (i + 1) l) (String.split_on_char '\n' s);
  if !n < 0 then fail 0 "missing !n directive";
  try Graph.build ~n:!n ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps:!cps
  with Graph.Malformed m -> fail 0 "malformed graph: %s" m

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (read_file path)

(* ------------------------------------------------------------------ *)
(* Streaming binary format (.sbg). The textual round-trip above costs
   ~25 bytes and an int_of_string per edge; at 100K+ nodes that is
   hundreds of MB of intermediate strings and minutes of parsing. The
   binary frame is fixed-width big-endian 32-bit records streamed
   through the channel buffer — no intermediate whole-file string in
   either direction:

     magic   "SBGPbin1"                     (8 bytes)
     n, ncps, ncp_edges, npeer_edges        (4 x i32)
     cps                                    (ncps x i32)
     cp_edges as (provider, customer)       (ncp_edges x 2 x i32)
     peer_edges as (a, b)                   (npeer_edges x 2 x i32)
     end marker 0x53424727                  (i32)

   The end marker catches silent truncation at a record boundary;
   truncation mid-record surfaces as End_of_file. Either way the
   loader raises [Bin_error] with a typed message. *)

exception Bin_error of { path : string; message : string }

let bin_magic = "SBGPbin1"
let bin_end_marker = 0x53424727

let bin_fail path fmt =
  Printf.ksprintf (fun message -> raise (Bin_error { path; message })) fmt

let save_bin g path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc bin_magic;
      let cps = Graph.nodes_of_class g As_class.Cp in
      let n = Graph.n g in
      output_binary_int oc n;
      output_binary_int oc (List.length cps);
      output_binary_int oc (Graph.cp_edge_count g);
      output_binary_int oc (Graph.peer_edge_count g);
      List.iter (output_binary_int oc) cps;
      for i = 0 to n - 1 do
        Graph.iter_customers g i (fun c ->
            output_binary_int oc i;
            output_binary_int oc c)
      done;
      for i = 0 to n - 1 do
        Graph.iter_peers g i (fun p ->
            if i < p then begin
              output_binary_int oc i;
              output_binary_int oc p
            end)
      done;
      output_binary_int oc bin_end_marker)

let load_bin path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let read_int what =
        try input_binary_int ic
        with End_of_file -> bin_fail path "truncated file: missing %s" what
      in
      let magic =
        try really_input_string ic (String.length bin_magic)
        with End_of_file -> bin_fail path "truncated file: missing magic"
      in
      if magic <> bin_magic then
        bin_fail path "bad magic %S (expected %S): not an .sbg graph" magic bin_magic;
      let n = read_int "node count" in
      let ncps = read_int "cp count" in
      let ncp = read_int "cp-edge count" in
      let npeer = read_int "peer-edge count" in
      if n < 0 || ncps < 0 || ncp < 0 || npeer < 0 then
        bin_fail path "negative count in header (n=%d cps=%d cp=%d peer=%d)" n ncps ncp
          npeer;
      let read_node what =
        let v = read_int what in
        if v < 0 || v >= n then bin_fail path "%s %d out of range [0, %d)" what v n;
        v
      in
      let cps = List.init ncps (fun _ -> read_node "cp node") in
      let read_edges count what =
        let acc = ref [] in
        for _ = 1 to count do
          let a = read_node what in
          let b = read_node what in
          acc := (a, b) :: !acc
        done;
        List.rev !acc
      in
      let cp_edges = read_edges ncp "cp-edge endpoint" in
      let peer_edges = read_edges npeer "peer-edge endpoint" in
      let marker = read_int "end marker" in
      if marker <> bin_end_marker then
        bin_fail path "bad end marker 0x%x: file corrupt or truncated" marker;
      (match try Some (input_char ic) with End_of_file -> None with
      | Some _ -> bin_fail path "trailing bytes after end marker"
      | None -> ());
      try Graph.build ~n ~cp_edges ~peer_edges ~cps
      with Graph.Malformed m -> bin_fail path "malformed graph: %s" m)

type caida_import = {
  graph : Graph.t;
  asn_of_node : int array;
  node_of_asn : (int, int) Hashtbl.t;
  skipped : int;
}

let of_caida ?(cps = []) s =
  let node_of_asn = Hashtbl.create 4096 in
  let rev = ref [] in
  let count = ref 0 in
  let intern asn =
    match Hashtbl.find_opt node_of_asn asn with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        Hashtbl.add node_of_asn asn id;
        rev := asn :: !rev;
        id
  in
  let seen = Hashtbl.create 4096 in
  let key a b = if a < b then (a, b) else (b, a) in
  let cp_edges = ref [] in
  let peer_edges = ref [] in
  let skipped = ref 0 in
  let record a b tag add =
    if a = b then incr skipped
    else begin
      let k = key a b in
      match Hashtbl.find_opt seen k with
      | Some prev when prev = tag -> () (* duplicate *)
      | Some _ -> incr skipped (* conflicting annotation *)
      | None ->
          Hashtbl.add seen k tag;
          add ()
    end
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char '|' line with
        | a :: b :: rel :: _ -> begin
            match (int_of_string_opt a, int_of_string_opt b, String.trim rel) with
            | Some a, Some b, "-1" ->
                let a = intern a and b = intern b in
                record a b (if a < b then `Cp_lo else `Cp_hi) (fun () ->
                    cp_edges := (a, b) :: !cp_edges)
            | Some a, Some b, "0" ->
                let a = intern a and b = intern b in
                record a b `Peer (fun () -> peer_edges := (a, b) :: !peer_edges)
            | _ -> incr skipped
          end
        | _ -> incr skipped
      end)
    (String.split_on_char '\n' s);
  let asn_of_node = Array.of_list (List.rev !rev) in
  (* CPs must have no customers in this model; drop the marker (not
     the node) otherwise, like the paper removes the CPs'
     acquisition customers (Appendix D). *)
  let has_customer = Hashtbl.create 1024 in
  List.iter (fun (p, _) -> Hashtbl.replace has_customer p ()) !cp_edges;
  let cp_nodes =
    List.filter_map
      (fun asn ->
        match Hashtbl.find_opt node_of_asn asn with
        | Some id when not (Hashtbl.mem has_customer id) -> Some id
        | Some _ | None -> None)
      cps
  in
  let graph =
    Graph.build ~n:!count ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps:cp_nodes
  in
  { graph; asn_of_node; node_of_asn; skipped = !skipped }

let load_caida ?cps path = of_caida ?cps (read_file path)
