module Csr = Nsutil.Csr

type rel = Customer | Peer | Provider

type t = {
  n : int;
  customers : Csr.t;
  providers : Csr.t;
  peers : Csr.t;
  klass : As_class.t array;
}

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

module Itbl = Hashtbl.Make (Int)

let build ~n ~cp_edges ~peer_edges ~cps =
  let check_node v =
    if v < 0 || v >= n then malformed "node %d out of range [0, %d)" v n
  in
  (* Deduplicate and detect conflicting annotations. Keys are the
     unordered pair packed into one int (min * n + max) through an
     int-keyed table: at 100K nodes the tuple-keyed polymorphic
     Hashtbl spends more time hashing boxed pairs than the CSR pack
     spends building the graph. Tags: 0/1 = customer-provider edge
     with the lower/higher id as provider, 2 = peer. *)
  let seen = Itbl.create (4 * (List.length cp_edges + List.length peer_edges)) in
  let key a b = if a < b then (a * n) + b else (b * n) + a in
  let record a b tag =
    check_node a;
    check_node b;
    if a = b then malformed "self-loop at node %d" a;
    let k = key a b in
    match Itbl.find_opt seen k with
    | None ->
        Itbl.add seen k tag;
        true
    | Some prev when prev = tag -> false (* duplicate, drop *)
    | Some _ -> malformed "edge (%d, %d) has conflicting annotations" a b
  in
  let customers_acc = Array.make n [] in
  let providers_acc = Array.make n [] in
  let peers_acc = Array.make n [] in
  List.iter
    (fun (prov, cust) ->
      (* Tag customer-provider edges by direction so that an edge
         declared in both directions is flagged as conflicting. *)
      let tag = if prov < cust then 0 else 1 in
      if record prov cust tag then begin
        customers_acc.(prov) <- cust :: customers_acc.(prov);
        providers_acc.(cust) <- prov :: providers_acc.(cust)
      end)
    cp_edges;
  List.iter
    (fun (a, b) ->
      if record a b 2 then begin
        peers_acc.(a) <- b :: peers_acc.(a);
        peers_acc.(b) <- a :: peers_acc.(b)
      end)
    peer_edges;
  let klass = Array.make n As_class.Stub in
  List.iter
    (fun cp ->
      check_node cp;
      if customers_acc.(cp) <> [] then
        malformed "content provider %d must not have customers" cp;
      klass.(cp) <- As_class.Cp)
    cps;
  for i = 0 to n - 1 do
    if klass.(i) <> As_class.Cp && customers_acc.(i) <> [] then
      klass.(i) <- As_class.Isp
  done;
  {
    n;
    customers = Csr.of_rev_lists customers_acc;
    providers = Csr.of_rev_lists providers_acc;
    peers = Csr.of_rev_lists peers_acc;
    klass;
  }

let n t = t.n
let klass t i = t.klass.(i)
let is_stub t i = t.klass.(i) = As_class.Stub
let is_isp t i = t.klass.(i) = As_class.Isp
let is_cp t i = t.klass.(i) = As_class.Cp

let rel t a b =
  if Csr.mem_row t.customers a b then Some Customer
  else if Csr.mem_row t.providers a b then Some Provider
  else if Csr.mem_row t.peers a b then Some Peer
  else None

let customer_degree t i = Csr.row_length t.customers i
let provider_degree t i = Csr.row_length t.providers i
let peer_degree t i = Csr.row_length t.peers i
let degree t i = customer_degree t i + provider_degree t i + peer_degree t i

let iter_customers t i f = Csr.iter_row t.customers i f
let iter_providers t i f = Csr.iter_row t.providers i f
let iter_peers t i f = Csr.iter_row t.peers i f
let customers_list t i = Csr.row_to_list t.customers i
let providers_list t i = Csr.row_to_list t.providers i
let peers_list t i = Csr.row_to_list t.peers i

let cp_edge_count t = Csr.total t.customers
let peer_edge_count t = Csr.total t.peers / 2

let nodes_of_class t c =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if As_class.equal t.klass.(i) c then acc := i :: !acc
  done;
  !acc

let count_class t c =
  Array.fold_left (fun acc k -> if As_class.equal k c then acc + 1 else acc) 0 t.klass

let edges t =
  let acc = ref [] in
  for i = 0 to t.n - 1 do
    iter_customers t i (fun c -> acc := ((i, c), Customer) :: !acc);
    iter_peers t i (fun p -> if i < p then acc := ((i, p), Peer) :: !acc)
  done;
  List.rev !acc

let rel_to_string = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

(* ------------------------------------------------------------------ *)
(* Topology deltas (Section 8.4 churn). *)

type op =
  | Edge_add of (int * int) * rel
  | Edge_remove of (int * int) * rel
  | Set_cp of int * bool

type delta = { base_n : int; grown : int; ops : op list }

let delta_edge_count d =
  List.fold_left
    (fun acc op -> match op with Edge_add _ | Edge_remove _ -> acc + 1 | Set_cp _ -> acc)
    0 d.ops

(* Normalize an op's (a, b) pair to a (provider, customer) pair for
   customer-provider edges; peer pairs stay as given. *)
let cp_pair (a, b) rel_ =
  match rel_ with
  | Customer -> (a, b)
  | Provider -> (b, a)
  | Peer -> invalid_arg "Graph.cp_pair: peer edge"

let apply_delta t (d : delta) =
  if d.base_n <> t.n then
    malformed "delta base_n %d does not match graph of %d nodes" d.base_n t.n;
  if d.grown < 0 then malformed "delta grown is negative";
  let n' = t.n + d.grown in
  let key a b = if a < b then (a, b) else (b, a) in
  let removed = Hashtbl.create 16 in
  let cp_adds = ref [] and peer_adds = ref [] in
  let cp_flag = Array.make n' false in
  List.iter (fun cp -> cp_flag.(cp) <- true) (nodes_of_class t As_class.Cp);
  List.iter
    (fun op ->
      match op with
      | Edge_add ((a, b), Peer) -> peer_adds := (a, b) :: !peer_adds
      | Edge_add (pair, rel_) -> cp_adds := cp_pair pair rel_ :: !cp_adds
      | Edge_remove ((a, b), rel_) ->
          if a < 0 || a >= t.n || b < 0 || b >= t.n then
            malformed "removal (%d, %d) references a node outside the base graph" a b;
          if rel t a b <> Some rel_ then
            malformed "removal (%d, %d) does not match an existing %s edge" a b
              (rel_to_string rel_);
          Hashtbl.replace removed (key a b) ()
      | Set_cp (v, flag) ->
          if v < 0 || v >= n' then malformed "Set_cp node %d out of range [0, %d)" v n';
          cp_flag.(v) <- flag)
    d.ops;
  let keep (a, b) = not (Hashtbl.mem removed (key a b)) in
  let base_cp = ref [] and base_peer = ref [] in
  List.iter
    (fun (pair, rel_) ->
      match rel_ with
      | Customer -> if keep pair then base_cp := pair :: !base_cp
      | Peer -> if keep pair then base_peer := pair :: !base_peer
      | Provider -> assert false)
    (edges t);
  let cps = ref [] in
  for v = n' - 1 downto 0 do
    if cp_flag.(v) then cps := v :: !cps
  done;
  build ~n:n'
    ~cp_edges:(List.rev !base_cp @ List.rev !cp_adds)
    ~peer_edges:(List.rev !base_peer @ List.rev !peer_adds)
    ~cps:!cps
