(** The annotated AS-level graph G(V,E) of Section 3.1.

    Nodes are dense integers [0 .. n-1]. Edges carry the standard
    business-relationship annotation: customer-provider (directed by
    money: the customer pays) or peer-to-peer. Adjacency is stored in
    CSR form for the O(N^3)-scale routing computations. *)

type rel =
  | Customer  (** the neighbor is my customer *)
  | Peer
  | Provider  (** the neighbor is my provider *)

type t = private {
  n : int;
  customers : Nsutil.Csr.t;  (** row [i]: the customers of [i] *)
  providers : Nsutil.Csr.t;  (** row [i]: the providers of [i] *)
  peers : Nsutil.Csr.t;  (** row [i]: the peers of [i] *)
  klass : As_class.t array;
}

exception Malformed of string

val build :
  n:int ->
  cp_edges:(int * int) list ->
  peer_edges:(int * int) list ->
  cps:int list ->
  t
(** [build ~n ~cp_edges ~peer_edges ~cps] constructs a graph.
    [cp_edges] are [(provider, customer)] pairs; [peer_edges] are
    unordered. Duplicate edges are collapsed; an edge present with two
    different annotations, a self-loop, an out-of-range endpoint, or a
    node listed in [cps] that has customers raises {!Malformed}.
    Classes are derived: nodes in [cps] are [Cp]; other nodes with no
    customers are [Stub]; the rest are [Isp]. *)

val n : t -> int
val klass : t -> int -> As_class.t
val is_stub : t -> int -> bool
val is_isp : t -> int -> bool
val is_cp : t -> int -> bool

val rel : t -> int -> int -> rel option
(** [rel g a b] is the relationship of [b] to [a] ([Customer] when [b]
    pays [a]), or [None] if not adjacent. O(degree a). *)

val degree : t -> int -> int
(** Total neighbor count. *)

val customer_degree : t -> int -> int
val provider_degree : t -> int -> int
val peer_degree : t -> int -> int

val iter_customers : t -> int -> (int -> unit) -> unit
val iter_providers : t -> int -> (int -> unit) -> unit
val iter_peers : t -> int -> (int -> unit) -> unit
val customers_list : t -> int -> int list
val providers_list : t -> int -> int list
val peers_list : t -> int -> int list

val cp_edge_count : t -> int
(** Number of customer-provider edges. *)

val peer_edge_count : t -> int

val nodes_of_class : t -> As_class.t -> int list
val count_class : t -> As_class.t -> int

val edges : t -> ((int * int) * rel) list
(** Every edge once: customer-provider edges as
    [((provider, customer), Customer)] and peer edges (lower id first)
    as [((a, b), Peer)]. *)

val rel_to_string : rel -> string

(** {2 Topology deltas}

    A [delta] is a small, explicit description of topology churn
    relative to a base graph: edges inserted or withdrawn, nodes
    appended at the end of the id space, and content-provider
    participation toggles. Deltas drive the Section 8.4 evolution
    epochs and the incremental statics repair in
    {!Bgp.Route_static}. *)

type op =
  | Edge_add of (int * int) * rel
      (** [Edge_add ((a, b), r)]: [b] becomes [r] of [a] — [Customer]
          pairs are [(provider, customer)], [Provider] pairs the
          reverse, [Peer] pairs unordered. *)
  | Edge_remove of (int * int) * rel
      (** Withdraw an existing base-graph edge; the pair and
          annotation must match ({!rel}[ g a b = Some r]), else
          {!apply_delta} raises {!Malformed}. *)
  | Set_cp of int * bool
      (** Toggle content-provider participation. The node must have no
          customers in the resulting graph. *)

type delta = {
  base_n : int;  (** node count of the graph the delta applies to *)
  grown : int;  (** new nodes appended: ids [base_n .. base_n + grown - 1] *)
  ops : op list;
}

val delta_edge_count : delta -> int
(** Number of edge insertions plus withdrawals in the delta (the
    "churned edge" count used by the bench harness). *)

val apply_delta : t -> delta -> t
(** [apply_delta g d] is the graph after the churn described by [d]:
    [n g + d.grown] nodes, base edges minus removals plus additions
    (appended after the surviving base edges, so existing CSR row
    order is preserved and new members sit at row ends), and classes
    re-derived from the updated customer sets and CP flags. Raises
    {!Malformed} under the same conditions as {!build}, or when a
    removal does not name an existing edge, or when [d.base_n] does
    not match [g]. New nodes with no ops mentioning them are isolated
    stubs. *)
