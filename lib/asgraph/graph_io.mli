(** Serialization of AS graphs in a CAIDA-style relationship format.

    Line grammar (one record per line):
    - [# ...] comment
    - [!n <count>] node-count header (first non-comment line)
    - [!cp <node>] declares a content provider
    - [<provider>|<customer>|-1] customer-provider edge
    - [<a>|<b>|0] peer-to-peer edge

    This mirrors the public CAIDA/Cyclops "as-rel" format closely
    enough that a real Internet snapshot can be converted by adding
    the two header directives. *)

exception Parse_error of { line : int; message : string }

val to_string : Graph.t -> string
val of_string : string -> Graph.t

val save : Graph.t -> string -> unit
val load : string -> Graph.t

(** {2 Streaming binary format (.sbg)}

    Fixed-width 32-bit records streamed through the channel buffer —
    no whole-file intermediate string in either direction, so 100K+
    node graphs load in one pass at disk speed. The frame is
    [magic, n, counts, cps, cp edges, peer edges, end marker];
    truncation and corruption raise {!Bin_error} with the offending
    path and a description. *)

exception Bin_error of { path : string; message : string }

val save_bin : Graph.t -> string -> unit
val load_bin : string -> Graph.t
(** Raise {!Bin_error} on bad magic, counts or node ids out of range,
    truncation (including mid-record), a wrong end marker, or trailing
    bytes. *)

(** {2 Importing real CAIDA / Cyclops snapshots} *)

type caida_import = {
  graph : Graph.t;
  asn_of_node : int array;  (** dense node id -> original ASN *)
  node_of_asn : (int, int) Hashtbl.t;
  skipped : int;  (** malformed / conflicting records dropped *)
}

val of_caida : ?cps:int list -> string -> caida_import
(** Parse the standard CAIDA "as-rel" serialization
    ([<a>|<b>|-1] provider-to-customer, [<a>|<b>|0] peer, [#] comments)
    with arbitrary AS numbers, remapping them to dense node ids.
    [cps] lists original ASNs to mark as content providers (e.g. the
    paper's 15169, 32934, 8075, 20940, 22822); ASNs not present in the
    file are ignored. Records that are self-loops or conflict with an
    earlier annotation are counted in [skipped] rather than fatal —
    real snapshots contain a few. Cycles in the customer-provider
    relation are not checked here; run {!Validate.gr1_acyclic}. *)

val load_caida : ?cps:int list -> string -> caida_import
(** [of_caida] on a file's contents. *)
