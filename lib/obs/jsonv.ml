(* A minimal recursive-descent JSON reader. The repo's exporters
   (trace JSON, bench JSON) self-validate their output and the tests
   check well-formedness; none of that justifies an external JSON
   dependency, so this is the small subset we need: full parsing of
   values we emit, strict enough to reject truncation and structural
   damage. \uXXXX escapes decode to '?' outside ASCII — the emitters
   only produce ASCII. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Fail (Printf.sprintf "at byte %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected %c, found %c" c d)
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
                let hex = String.sub st.s st.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> error st (Printf.sprintf "bad \\u escape %S" hex)
                in
                st.pos <- st.pos + 4;
                Buffer.add_char buf (if code < 128 then Char.chr code else '?')
            | c -> error st (Printf.sprintf "bad escape \\%c" c));
            loop ())
    | Some c when Char.code c < 0x20 -> error st "raw control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec run () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        run ()
    | _ -> ()
  in
  run ();
  if st.pos = start then error st "expected a number";
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some v -> Num v
  | None -> error st (Printf.sprintf "malformed number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((key, v) :: acc))
          | _ -> error st "expected , or } in object"
        in
        members []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> error st "expected , or ] in array"
        in
        elements []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then error st "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith ("Jsonv.parse: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_string = function Str s -> Some s | _ -> None

(* The matching emitter-side escape, shared by every JSON writer in
   the layer (trace, journal, healthz). Inverse of [parse_string] for
   the byte values we can produce: everything below 0x20 goes out as
   an escape this parser decodes back to the same byte. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
