(** Resident-set-size sampling (Linux [/proc/self/status]).

    Returns 0 where the proc file is unavailable, so callers can
    report the value unconditionally. *)

val peak_kb : unit -> int
(** Peak RSS ([VmHWM]) in KiB; 0 if unknown. *)

val current_kb : unit -> int
(** Current RSS ([VmRSS]) in KiB; 0 if unknown. *)

val parse_status_kb : key:string -> string -> int option
(** Extract the KiB figure for [key] (e.g. ["VmHWM"]) from a
    [/proc/<pid>/status]-formatted text. Exposed for unit testing. *)

val publish : unit -> unit
(** Record {!peak_kb} and {!current_kb} as the registry gauges
    [process_peak_rss_kb] / [process_rss_kb]. *)
