(** Resident-set-size sampling (Linux [/proc/self/status]).

    Where the proc file is absent (non-Linux, hidden procfs) every
    probe returns [None] cleanly — no exception and no garbage value;
    callers decide how to report "unknown". *)

val peak_kb : unit -> int option
(** Peak RSS ([VmHWM]) in KiB; [None] if unknown. *)

val current_kb : unit -> int option
(** Current RSS ([VmRSS]) in KiB; [None] if unknown. *)

val parse_status_kb : key:string -> string -> int option
(** Extract the KiB figure for [key] (e.g. ["VmHWM"]) from a
    [/proc/<pid>/status]-formatted text. Exposed for unit testing. *)

val status_kb_of_file : path:string -> key:string -> int option
(** {!parse_status_kb} against an arbitrary status file; [None] when
    the file cannot be read. The portable-fallback unit test points
    this at a nonexistent path. *)

val publish : unit -> unit
(** Register the gauges [process_peak_rss_kb] / [process_rss_kb] and
    set each one only when its sample is available. *)
