type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

(* Warn by default: pre-observability stderr warnings stay visible,
   progress chatter (info) and diagnostics (debug) are opt-in. *)
let current = ref Warn

let set_level l = current := l
let level () = !current

let enabled l = severity l <= severity !current

(* One whole line per sink call, under a mutex: interleaved lines from
   concurrent domains stay readable. *)
let sink_mutex = Mutex.create ()

let default_sink l msg =
  Mutex.lock sink_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink_mutex)
    (fun () ->
      output_string stderr
        (Printf.sprintf "[sbgp][%s] %s\n" (level_to_string l) msg);
      flush stderr)

let sink = ref default_sink

let set_sink f = sink := f
let reset_sink () = sink := default_sink

let msg l s = if enabled l then !sink l s

let logf l fmt = Printf.ksprintf (msg l) fmt

let err fmt = logf Error fmt
let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt

let env_var = "SBGP_LOG_LEVEL"

let set_level_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some s -> (
      match level_of_string s with
      | Some l -> set_level l
      | None ->
          warn "ignoring %s=%S: expected quiet|error|warn|info|debug" env_var s)

let install_warning_hook () =
  Nsutil.Warnings.set_handler (fun s -> msg Warn s)
