(* The scrape endpoint: a minimal HTTP/1.1 server on a dedicated
   systhread, loopback only, answering GET /metrics (Prometheus
   exposition straight from the registry) and GET /healthz (run
   progress as JSON). Plain Unix + Thread — no web framework.

   Why a systhread works here: OCaml systhreads share one runtime
   lock per domain, but [Unix.accept]/[read]/[write] release it for
   the syscall's duration, and the tick thread preempts a computing
   engine every ~50 ms. So a scrape issued mid-round is answered
   within a tick or two while the engine keeps its domains; the
   endpoint adds an idle thread, not a competing core. Requests are
   served serially — Prometheus scrapes one target at a time, and the
   responses are a few KiB. *)

type t = {
  fd : Unix.file_descr;
  port : int;
  started_at : float;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let port t = t.port

let fmt_float v =
  if not (Float.is_finite v) then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Registry probe for healthz: absent metrics read as 0 so the
   document shape is stable whether or not the engine registered its
   instruments yet. *)
let v name = Option.value ~default:0.0 (Metrics.value name)

let healthz_body t =
  let uptime = Unix.gettimeofday () -. t.started_at in
  let demotions = v "engine_demotions_total"
  and skips = v "engine_checkpoint_skips_total"
  and cancels = v "pool_watchdog_cancel_total"
  and retries = v "pool_retry_total" in
  let degraded = demotions +. skips +. cancels +. retries > 0.0 in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "{\"status\":\"ok\",\"uptime_s\":%s" (fmt_float uptime);
  Printf.bprintf buf ",\"round\":%s,\"rounds_total\":%s"
    (fmt_float (v "engine_current_round"))
    (fmt_float (v "engine_rounds_total"));
  Printf.bprintf buf ",\"degraded\":%b" degraded;
  Printf.bprintf buf
    ",\"resilience\":{\"demotions\":%s,\"checkpoint_skips\":%s,\"watchdog_cancels\":%s,\"retries\":%s}"
    (fmt_float demotions) (fmt_float skips) (fmt_float cancels)
    (fmt_float retries);
  Printf.bprintf buf ",\"metrics_enabled\":%b" (Metrics.enabled ());
  (match Journal.path () with
  | Some p ->
      Printf.bprintf buf ",\"journal\":\"%s\",\"journal_events\":%d"
        (Jsonv.escape p)
        (Journal.events_recorded ())
  | None -> Buffer.add_string buf ",\"journal\":null");
  Buffer.add_char buf '}';
  Buffer.contents buf

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let route t ~meth ~target =
  let path =
    match String.index_opt target '?' with
    | Some i -> String.sub target 0 i
    | None -> target
  in
  if meth <> "GET" then
    response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
      "only GET is supported\n"
  else
    match path with
    | "/metrics" ->
        (* Fresh RSS sample per scrape, so dashboards see live memory. *)
        if Metrics.enabled () then Rss.publish ();
        response ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Metrics.to_prometheus ())
    | "/healthz" ->
        response ~status:"200 OK" ~content_type:"application/json"
          (healthz_body t)
    | _ ->
        response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"

(* Read until the blank line ending the request head (we ignore any
   body — both routes are GETs), bounded so a misbehaving client
   cannot grow the buffer. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec find i =
          if i + 3 >= String.length s then None
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
          then Some ()
          else find (i + 1)
        in
        match find 0 with Some () -> s | None -> go ()
      end
  in
  go ()

let write_all fd s =
  let data = Bytes.of_string s in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      let n = Unix.write fd data off (len - off) in
      go (off + n)
  in
  go 0

let handle t conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float conn Unix.SO_RCVTIMEO 2.0;
      Unix.setsockopt_float conn Unix.SO_SNDTIMEO 2.0;
      let head = read_head conn in
      let first_line =
        match String.index_opt head '\r' with
        | Some i -> String.sub head 0 i
        | None -> head
      in
      match String.split_on_char ' ' first_line with
      | meth :: target :: _ -> write_all conn (route t ~meth ~target)
      | _ ->
          write_all conn
            (response ~status:"400 Bad Request" ~content_type:"text/plain"
               "bad request\n"))

let accept_loop t () =
  while t.running do
    match Unix.accept t.fd with
    | conn, _ -> (
        try handle t conn with Unix.Unix_error _ | Sys_error _ -> ())
    | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* Listening socket gone — normal shutdown path ([stop] closes
           it under us) or something fatal; either way, wind down. *)
        t.running <- false
  done

let start ?(addr = "127.0.0.1") ~port:req_port () =
  match
    let inet = Unix.inet_addr_of_string addr in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (inet, req_port));
       Unix.listen fd 16
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> req_port
    in
    let t =
      { fd; port; started_at = Unix.gettimeofday (); running = true; thread = None }
    in
    t.thread <- Some (Thread.create (accept_loop t) ());
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> Error msg

let stop t =
  if t.running then begin
    t.running <- false;
    (* A thread parked in [accept] is NOT woken by [close] on Linux;
       shut the listening socket down instead (the accept returns
       EINVAL), with a throwaway self-connect as a portable nudge for
       kernels where shutdown on a listening socket is refused. Only
       after the server thread is joined is the fd actually closed —
       closing first would race a reused descriptor number into the
       still-running accept. *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try
       let sa =
         match Unix.getsockname t.fd with
         | Unix.ADDR_INET (a, p) when a = Unix.inet_addr_any ->
             Unix.ADDR_INET (Unix.inet_addr_loopback, p)
         | sa -> sa
       in
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () -> Unix.connect fd sa)
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.thread;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end
