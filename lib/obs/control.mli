(** Process-level observability wiring.

    Binaries call {!init} once at startup: it routes the utility
    layer's warnings through {!Log}, applies [SBGP_LOG_LEVEL], and —
    when [SBGP_TRACE] / [SBGP_METRICS] name destination files —
    enables the corresponding collector and registers an [at_exit]
    {!flush} so telemetry survives crashes and early exits. CLI flags
    ([--trace FILE], [--metrics FILE]) call {!set_trace} /
    {!set_metrics} on top. With none of these set, {!init} leaves
    every collector off: hot paths then pay only their static
    [enabled] checks. *)

val trace_env : string
(** ["SBGP_TRACE"]. *)

val metrics_env : string
(** ["SBGP_METRICS"]. *)

val init : unit -> unit
(** Idempotent. *)

val set_trace : string -> unit
(** Enable tracing, to be written to this file at {!flush}. *)

val set_metrics : string -> unit
(** Enable the metrics registry, exposition written at {!flush}. *)

val trace_path : unit -> string option
val metrics_path : unit -> string option

val flush : ?quiet:bool -> unit -> unit
(** Write enabled collectors to their destinations (metrics flush
    also samples RSS into the registry). Safe to call repeatedly;
    [quiet] suppresses the info-level "wrote ..." lines (used by the
    [at_exit] re-flush). *)
