(** Process-level observability wiring.

    Binaries call {!init} once at startup: it routes the utility
    layer's warnings through {!Log}, applies [SBGP_LOG_LEVEL], and —
    when [SBGP_TRACE] / [SBGP_METRICS] / [SBGP_JOURNAL] /
    [SBGP_METRICS_PORT] are set — enables the corresponding
    collector, journal or scrape endpoint and registers an [at_exit]
    {!flush} so telemetry survives crashes and early exits. CLI
    flags ([--trace FILE], [--metrics FILE], [--journal FILE],
    [--metrics-port P]) call the matching setters on top. With none
    of these set, {!init} leaves every collector off: hot paths then
    pay only their static [enabled] checks.

    Telemetry output failures never take the run down: every sink
    write is wrapped in warn-and-continue with a typed
    {!sink_error}, counted in [obs_sink_failures_total]. *)

val trace_env : string
(** ["SBGP_TRACE"]. *)

val metrics_env : string
(** ["SBGP_METRICS"]. *)

val journal_env : string
(** ["SBGP_JOURNAL"]. *)

val metrics_port_env : string
(** ["SBGP_METRICS_PORT"]. *)

val init : unit -> unit
(** Idempotent. *)

val set_trace : string -> unit
(** Enable tracing, to be written to this file at {!flush}. *)

val set_metrics : string -> unit
(** Enable the metrics registry, exposition written at {!flush}. *)

val set_journal : string -> unit
(** Open the run journal on this file (append) and start its flusher
    thread. An unopenable destination warns and continues. *)

val set_metrics_port : int -> unit
(** Enable metrics and start the loopback scrape endpoint ({!Serve})
    on this port (0 = ephemeral, see {!server_port}). A bind failure
    warns and continues. No-op if an endpoint is already up. *)

val trace_path : unit -> string option
val metrics_path : unit -> string option
val journal_path : unit -> string option

val server_port : unit -> int option
(** The bound scrape-endpoint port, when one is serving. *)

val stop_server : unit -> unit
(** Stop the scrape endpoint (tests; normal runs let it live until
    process exit). *)

type sink = Trace_sink | Metrics_sink | Journal_sink | Endpoint_sink

type sink_error = { sink : sink; dest : string; reason : string }
(** One dropped telemetry write: which sink, where it was writing,
    and the underlying OS reason. *)

val sink_error_message : sink_error -> string
(** The rendered warning, e.g. ["obs: dropped metrics output to
    /bad/path: No such file or directory (run results
    unaffected)"]. *)

val sink_failures : unit -> sink_error list
(** Every failure absorbed so far, oldest first. *)

val flush : ?quiet:bool -> unit -> unit
(** Write enabled collectors to their destinations (metrics flush
    also samples RSS into the registry; the journal's buffers are
    drained). Output failures warn and continue. Safe to call
    repeatedly; [quiet] suppresses the info-level "wrote ..." lines
    (used by the [at_exit] re-flush). *)
