/* Monotonic clock for span tracing: CLOCK_MONOTONIC nanoseconds as a
   float. A double's 53-bit mantissa holds ~104 days of nanoseconds
   exactly, and far longer at the sub-microsecond precision spans
   care about, so a float return keeps the OCaml side allocation-
   simple (one boxed double) without an int64 box. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value nsobs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_double((double)ts.tv_sec * 1e9 + (double)ts.tv_nsec);
}
