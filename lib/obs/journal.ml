(* The structured run journal: timestamped JSONL events appended to a
   file while the run executes, so an operator (or the health report)
   can replay what the engine did — and a killed run leaves its
   history behind.

   Shape mirrors Trace: recording is per-domain (a domain-local
   buffer, no cross-domain memory traffic on the hot path) and a
   background systhread drains every buffer to the file on a short
   period. Events are pre-encoded to their final JSON line at record
   time, so draining is just ordering and writing. Each drained line
   is appended with a single O_APPEND write — a kill can at worst
   truncate the line in flight, never interleave or damage earlier
   lines, which keeps the journal parseable up to the last complete
   event. *)

type value = Str of string | Int of int | Float of float | Bool of bool

let fmt_float v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let encode_line ~ts ev fields =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"ts\":%.6f,\"ev\":\"%s\"" ts (Jsonv.escape ev);
  List.iter
    (fun (k, v) ->
      Printf.bprintf buf ",\"%s\":" (Jsonv.escape k);
      match v with
      | Str s -> Printf.bprintf buf "\"%s\"" (Jsonv.escape s)
      | Int i -> Printf.bprintf buf "%d" i
      | Float f -> Buffer.add_string buf (fmt_float f)
      | Bool b -> Buffer.add_string buf (if b then "true" else "false"))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-domain buffers. Unlike Trace these take a tiny per-buffer
   mutex: events are round-granularity (tens per second, not
   millions), and the mutex lets the flusher thread drain a buffer
   that another domain is still appending to. *)

type buf = { bm : Mutex.t; mutable lines : (float * string) list (* reversed *) }

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b = { bm = Mutex.create (); lines = [] } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let enabled_flag = ref false
let enabled () = !enabled_flag

let recorded = Atomic.make 0
let events_recorded () = Atomic.get recorded

let event ev fields =
  if !enabled_flag then begin
    let ts = Unix.gettimeofday () in
    let line = encode_line ~ts ev fields in
    let b = Domain.DLS.get buf_key in
    Mutex.lock b.bm;
    b.lines <- (ts, line) :: b.lines;
    Mutex.unlock b.bm;
    Atomic.incr recorded
  end

(* ------------------------------------------------------------------ *)
(* Sink + flusher thread. *)

type sink = {
  fd : Unix.file_descr;
  s_path : string;
  mutable running : bool;
  mutable thread : Thread.t option;
}

let sink : sink option ref = ref None
let sink_mutex = Mutex.create ()

let path () =
  Mutex.lock sink_mutex;
  let p = Option.map (fun s -> s.s_path) !sink in
  Mutex.unlock sink_mutex;
  p

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      let n = Unix.write fd data off (len - off) in
      go (off + n)
  in
  go 0

let drain_into fd =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let batch =
    List.concat_map
      (fun b ->
        Mutex.lock b.bm;
        let taken = b.lines in
        b.lines <- [];
        Mutex.unlock b.bm;
        List.rev taken)
      bufs
  in
  (* Near-chronological on disk: order the batch by record time. Lines
     from different flush periods can still straddle slightly, which
     readers (the report, jq) tolerate — every line is self-stamped. *)
  let batch = List.sort (fun (a, _) (b, _) -> compare a b) batch in
  List.iter (fun (_, line) -> write_line fd line) batch

let flush () =
  Mutex.lock sink_mutex;
  let s = !sink in
  Mutex.unlock sink_mutex;
  match s with
  | Some s -> ( try drain_into s.fd with Unix.Unix_error _ | Sys_error _ -> ())
  | None -> ()

let flusher s () =
  while s.running do
    Thread.delay 0.2;
    (try drain_into s.fd with Unix.Unix_error _ | Sys_error _ -> ())
  done

let open_path p =
  Mutex.lock sink_mutex;
  let r =
    match !sink with
    | Some s when s.s_path = p -> Ok () (* idempotent re-open *)
    | Some s -> Error (Printf.sprintf "journal already open on %s" s.s_path)
    | None -> (
        match Unix.openfile p [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 with
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | fd ->
            let s = { fd; s_path = p; running = true; thread = None } in
            s.thread <- Some (Thread.create (flusher s) ());
            sink := Some s;
            enabled_flag := true;
            Ok ())
  in
  Mutex.unlock sink_mutex;
  r

let close () =
  Mutex.lock sink_mutex;
  let s = !sink in
  sink := None;
  Mutex.unlock sink_mutex;
  match s with
  | None -> ()
  | Some s ->
      enabled_flag := false;
      s.running <- false;
      Option.iter Thread.join s.thread;
      (try drain_into s.fd with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close s.fd with Unix.Unix_error _ -> ())

(* Testing hook: forget buffered-but-unflushed events (e.g. recorded
   while no sink was open in a scrubbed test). *)
let reset () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun b ->
      Mutex.lock b.bm;
      b.lines <- [];
      Mutex.unlock b.bm)
    bufs;
  Atomic.set recorded 0
