type counter = { c_name : string; c_help : string; c_v : int Atomic.t }

type gauge = { g_name : string; g_help : string; mutable g_v : float }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (** ascending upper bucket bounds; +inf implicit *)
  counts : int array;  (** length = Array.length bounds + 1 *)
  mutable sum : float;
  h_mutex : Mutex.t;
}

type metric = C of counter | G of gauge | H of histogram

(* The process-global registry. Creation is idempotent by name (the
   same call site can re-request its metric) and mutex-guarded;
   updates touch only the metric's own cells. *)
let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let table_mutex = Mutex.create ()

let enabled_flag = ref false

let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       n
  && not (String.get n 0 >= '0' && String.get n 0 <= '9')

let register name build cast kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  Mutex.lock table_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock table_mutex)
    (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> (
          match cast m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered as another kind (wanted %s)"
                   name kind))
      | None ->
          let v = build () in
          v)

let counter ?(help = "") name =
  register name
    (fun () ->
      let c = { c_name = name; c_help = help; c_v = Atomic.make 0 } in
      Hashtbl.replace table name (C c);
      c)
    (function C c -> Some c | _ -> None)
    "counter"

let gauge ?(help = "") name =
  register name
    (fun () ->
      let g = { g_name = name; g_help = help; g_v = 0.0 } in
      Hashtbl.replace table name (G g);
      g)
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram ?(help = "") ~buckets name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: at least one bucket bound required";
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > buckets.(i - 1)) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly ascending")
    buckets;
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_help = help;
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.0;
          h_mutex = Mutex.create ();
        }
      in
      Hashtbl.replace table name (H h);
      h)
    (function H h -> Some h | _ -> None)
    "histogram"

(* Updates are inert while collection is off: the [enabled] checks at
   instrumentation sites are an optimization (skip argument
   computation), not the only gate. *)
let inc c = if !enabled_flag then ignore (Atomic.fetch_and_add c.c_v 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  if !enabled_flag then ignore (Atomic.fetch_and_add c.c_v n)

let counter_value c = Atomic.get c.c_v

let set g v = if !enabled_flag then g.g_v <- v
let gauge_value g = g.g_v

(* First bucket whose bound is >= v, Prometheus [le] semantics; the
   overflow bucket is the implicit +inf. Bucket arrays are small
   (fixed at registration), so a linear scan wins over bisection. *)
let bucket_index h v =
  let nb = Array.length h.bounds in
  let rec find i = if i >= nb || v <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  if !enabled_flag then begin
    Mutex.lock h.h_mutex;
    let i = bucket_index h v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    Mutex.unlock h.h_mutex
  end

let histogram_count h =
  Mutex.lock h.h_mutex;
  let c = Array.fold_left ( + ) 0 h.counts in
  Mutex.unlock h.h_mutex;
  c

let histogram_sum h =
  Mutex.lock h.h_mutex;
  let s = h.sum in
  Mutex.unlock h.h_mutex;
  s

let histogram_counts h =
  Mutex.lock h.h_mutex;
  let c = Array.copy h.counts in
  Mutex.unlock h.h_mutex;
  c

let snapshot () =
  Mutex.lock table_mutex;
  let ms = Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [] in
  Mutex.unlock table_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) ms

let counters () =
  List.filter_map
    (function name, C c -> Some (name, counter_value c) | _ -> None)
    (snapshot ())

let value name =
  Mutex.lock table_mutex;
  let m = Hashtbl.find_opt table name in
  Mutex.unlock table_mutex;
  match m with
  | None -> None
  | Some (C c) -> Some (float_of_int (counter_value c))
  | Some (G g) -> Some g.g_v
  | Some (H h) -> Some (float_of_int (histogram_count h))

let find_histogram name =
  Mutex.lock table_mutex;
  let m = Hashtbl.find_opt table name in
  Mutex.unlock table_mutex;
  match m with Some (H h) -> Some h | _ -> None

let reset () =
  Mutex.lock table_mutex;
  Hashtbl.reset table;
  Mutex.unlock table_mutex

(* ------------------------------------------------------------------ *)
(* Exposition. *)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prom_bound b = if b = Float.infinity then "+Inf" else fmt_float b

let to_prometheus () =
  let buf = Buffer.create 4096 in
  let header name help kind =
    if help <> "" then Printf.bprintf buf "# HELP %s %s\n" name help;
    Printf.bprintf buf "# TYPE %s %s\n" name kind
  in
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
          header name c.c_help "counter";
          Printf.bprintf buf "%s %d\n" name (counter_value c)
      | G g ->
          header name g.g_help "gauge";
          Printf.bprintf buf "%s %s\n" name (fmt_float g.g_v)
      | H h ->
          header name h.h_help "histogram";
          let counts = histogram_counts h in
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + counts.(i);
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" name (prom_bound b) !cum)
            h.bounds;
          cum := !cum + counts.(Array.length counts - 1);
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name !cum;
          Printf.bprintf buf "%s_sum %s\n" name (fmt_float (histogram_sum h));
          Printf.bprintf buf "%s_count %d\n" name !cum)
    (snapshot ());
  Buffer.contents buf

let summary () =
  let table = Nsutil.Table.create ~header:[ "metric"; "kind"; "value"; "detail" ] in
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
          Nsutil.Table.add_row table
            [ name; "counter"; string_of_int (counter_value c); c.c_help ]
      | G g ->
          Nsutil.Table.add_row table
            [ name; "gauge"; Nsutil.Table.cell_f g.g_v; g.g_help ]
      | H h ->
          let count = histogram_count h in
          let sum = histogram_sum h in
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          let counts = histogram_counts h in
          let buckets =
            String.concat " "
              (List.filteri
                 (fun _ s -> s <> "")
                 (Array.to_list
                    (Array.mapi
                       (fun i c ->
                         if c = 0 then ""
                         else if i < Array.length h.bounds then
                           Printf.sprintf "le%s:%d" (prom_bound h.bounds.(i)) c
                         else Printf.sprintf "inf:%d" c)
                       counts)))
          in
          Nsutil.Table.add_row table
            [
              name;
              "histogram";
              Printf.sprintf "n=%d mean=%s" count (Nsutil.Table.cell_f mean);
              buckets;
            ])
    (snapshot ());
  table

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_prometheus ()))

(* ------------------------------------------------------------------ *)
(* Derived helpers. *)

external monotonic_ns : unit -> float = "nsobs_monotonic_ns"

let timed h f =
  if not !enabled_flag then f ()
  else begin
    let t0 = monotonic_ns () in
    Fun.protect
      ~finally:(fun () -> observe h ((monotonic_ns () -. t0) /. 1e6))
      f
  end

(* Bucket-interpolated quantile, same estimate Prometheus's
   histogram_quantile() computes server-side: find the bucket holding
   the rank, assume uniform spread inside it. The overflow bucket has
   no upper bound, so a rank landing there reports the largest finite
   bound — an underestimate, by construction, never garbage. *)
let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile";
  let counts = histogram_counts h in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let rank = q *. float_of_int total in
    let nb = Array.length h.bounds in
    let rec find i cum =
      let cum' = cum +. float_of_int counts.(i) in
      if cum' >= rank || i = nb then (i, cum)
      else find (i + 1) cum'
    in
    let i, below = find 0 0.0 in
    if i >= nb then Some h.bounds.(nb - 1)
    else begin
      let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
      let hi = h.bounds.(i) in
      let in_bucket = float_of_int counts.(i) in
      if in_bucket <= 0.0 then Some hi
      else Some (lo +. ((hi -. lo) *. ((rank -. below) /. in_bucket)))
    end
  end
