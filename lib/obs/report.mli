(** The run health report: journal + registry folded into a
    one-screen, end-of-run summary (rounds/s trend, p50/p99 phase
    latencies, resilience-event totals).

    The journal — when one exists — is the durable view: it spans
    kills and resumes, so an interrupted run's history shows up on
    the next attempt. The registry contributes whatever the current
    process measured. *)

type journal_stats = {
  events : int;
  bad_lines : int;  (** unparseable non-final lines *)
  truncated_tail : bool;  (** final line unparseable (killed mid-append) *)
  runs : int;  (** [run_start] events seen *)
  resumes : int;
  rounds : int;  (** [round_end] events seen *)
  ev_counts : (string * int) list;  (** per-type totals, sorted *)
  round_ts : float array;  (** timestamps of [round_end], in order *)
  round_wall_ms : float array;  (** wall_ms of [round_end], in order *)
}

val scan : string -> (journal_stats, string) result
(** Parse a journal file. A damaged final line (the signature of a
    killed run) sets [truncated_tail] rather than failing; damaged
    interior lines are counted in [bad_lines]. [Error] only when the
    file cannot be read at all. *)

val render : ?journal_path:string -> unit -> string
(** The report text. Without a journal path (or with an unreadable
    one) it degrades to registry-only content. *)
