(** The structured run journal: timestamped JSONL events.

    Each event is one line — [{"ts":<unix seconds>,"ev":"<type>",
    ...fields}] — appended to the journal file by a background
    flusher thread. Recording buffers per domain (like {!Trace}) and
    pre-encodes the line immediately, so the hot-path cost while
    enabled is one small allocation plus a per-domain mutex, and
    exactly one load+branch while disabled. Appends are line-atomic:
    a killed run's journal stays parseable up to the last complete
    event. *)

type value = Str of string | Int of int | Float of float | Bool of bool

val enabled : unit -> bool
(** True between a successful {!open_path} and {!close}. *)

val open_path : string -> (unit, string) result
(** Open (append mode) the journal file, start the flusher thread and
    enable recording. Re-opening the same path is a no-op; a
    different path while open is an error, as is an unwritable
    destination — callers are expected to warn and continue. *)

val close : unit -> unit
(** Stop the flusher, drain every buffer, close the file, disable
    recording. Idempotent. *)

val path : unit -> string option

val event : string -> (string * value) list -> unit
(** Record one event (no-op while disabled). Safe from any domain. *)

val flush : unit -> unit
(** Drain all per-domain buffers to the file now (the flusher thread
    does this every ~200 ms on its own). *)

val events_recorded : unit -> int
(** Events accepted since start (or {!reset}), flushed or not. *)

val encode_line : ts:float -> string -> (string * value) list -> string
(** The line encoder, exposed for schema tests. Non-finite floats
    encode as [null]. *)

val reset : unit -> unit
(** Testing hook: drop buffered (unflushed) events and zero the
    recorded count. Does not touch an open sink. *)
