external monotonic_ns : unit -> float = "nsobs_monotonic_ns"

let now_us () = monotonic_ns () /. 1e3

type event = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * string) list;
}

let dummy = { name = ""; cat = ""; ts_us = 0.0; dur_us = 0.0; tid = 0; args = [] }

(* One append-only buffer per domain, reached through domain-local
   state: recording a span never takes a lock and never touches
   another domain's memory. The global registry mutex is held only
   when a domain records its first event ever and at merge time. *)
type buf = { btid : int; mutable events : event array; mutable len : int }

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { btid = (Domain.self () :> int); events = Array.make 256 dummy; len = 0 }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

(* The master switch. A plain bool ref: it is flipped before any
   parallel section starts and only read (never written) on hot
   paths, so a potentially stale read costs at most one span. *)
let enabled_flag = ref false

let enabled () = !enabled_flag
let set_enabled v = enabled_flag := v

let add ~name ~cat ~ts_us ~dur_us ~args =
  let b = Domain.DLS.get buf_key in
  if b.len = Array.length b.events then begin
    let bigger = Array.make (2 * b.len) dummy in
    Array.blit b.events 0 bigger 0 b.len;
    b.events <- bigger
  end;
  b.events.(b.len) <- { name; cat; ts_us; dur_us; tid = b.btid; args };
  b.len <- b.len + 1

let span ?(cat = "sbgp") ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () -> add ~name ~cat ~ts_us:t0 ~dur_us:(now_us () -. t0) ~args)
      f
  end

(* ------------------------------------------------------------------ *)
(* Merge + export. Only safe to call while no other domain is
   recording (between parallel sections / at end of run), which is
   when flushing happens in practice. *)

let events () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let all =
    List.concat_map (fun b -> Array.to_list (Array.sub b.events 0 b.len)) bufs
  in
  (* Chronological; on equal start the longer (enclosing) span first,
     so stack-based consumers see parents before children. *)
  List.sort
    (fun a b ->
      match compare a.ts_us b.ts_us with
      | 0 -> compare b.dur_us a.dur_us
      | c -> c)
    all

let event_count () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.fold_left (fun acc b -> acc + b.len) 0 bufs

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_mutex

let escape = Jsonv.escape

(* Chrome trace_event JSON (the "JSON Array Format" wrapped in an
   object), complete events only: nesting is implied by timestamp
   containment on the same (pid, tid) track, which is exactly how the
   spans were recorded. Opens directly in about:tracing / Perfetto. *)
let to_json () =
  let evs = events () in
  let buf = Buffer.create (4096 + (128 * List.length evs)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (escape e.name) (escape e.cat) e.ts_us e.dur_us e.tid);
      if e.args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
          e.args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ()))
