(** Span tracing: where does a run's wall clock go?

    A span is one timed section — name, category, monotonic start,
    duration, recording domain. Spans land in per-domain append-only
    buffers (recording is lock-free and allocation-light; roughly a
    clock read and one record per span) and are merged at flush into
    Chrome [trace_event] JSON, which opens directly in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto}. Nesting
    is implicit: a span whose [ts, ts+dur] interval contains
    another's on the same domain is its parent, which is exactly how
    nested {!span} calls record themselves.

    Tracing is off by default. Every hook is behind a single static
    {!enabled} check, so an untraced run pays one load+branch per
    potential span — the differential tests in [test_obs] prove
    results are bit-identical with tracing on, off, or absent. *)

val now_us : unit -> float
(** Monotonic clock in microseconds (CLOCK_MONOTONIC). Usable on its
    own for duration metrics even when tracing is disabled. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Flip tracing. Enable before the work of interest; flipping inside
    a parallel section may lose that section's first spans. *)

val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is enabled, records a
    complete event covering [f]'s execution on the calling domain
    (recorded even if [f] raises, with the exception re-raised).
    [args] are free-form key/values shown in the trace viewer. When
    disabled this is exactly [f ()]. *)

type event = {
  name : string;
  cat : string;
  ts_us : float;  (** monotonic start, microseconds *)
  dur_us : float;
  tid : int;  (** recording domain id *)
  args : (string * string) list;
}

val events : unit -> event list
(** Merge every domain's buffer, sorted by start time (ties: longer
    span first, so parents precede children). Call only while no
    other domain is recording. *)

val event_count : unit -> int

val to_json : unit -> string
(** The merged events as Chrome trace JSON
    ([{"traceEvents": [...]}], complete events, microsecond
    timestamps). *)

val write : string -> unit
(** {!to_json} to a file. *)

val reset : unit -> unit
(** Drop all recorded events (buffers stay registered, so domains
    that already traced keep working). Testing hook. *)
