(* The run health report: fold the journal (the run's history,
   including previous interrupted attempts) and the live metrics
   registry into one screen a human can read at end of run — rate
   trend, phase latency quantiles, resilience-event totals.

   The journal is the source of truth when present (it survives
   kills and spans resumes); the registry fills in whatever the
   current process measured (histogram quantiles, statics counters).
   A truncated final line — the signature of a killed run — is
   reported, not treated as corruption. *)

type journal_stats = {
  events : int;
  bad_lines : int;  (** unparseable non-final lines *)
  truncated_tail : bool;  (** final line unparseable (killed mid-append) *)
  runs : int;  (** [run_start] events seen *)
  resumes : int;
  rounds : int;  (** [round_end] events seen *)
  ev_counts : (string * int) list;  (** per-type totals, sorted *)
  round_ts : float array;  (** timestamps of [round_end], in order *)
  round_wall_ms : float array;  (** wall_ms of [round_end], in order *)
}

let scan path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          let lines = List.rev !lines in
          let n_lines = List.length lines in
          let events = ref 0
          and bad = ref 0
          and truncated = ref false
          and runs = ref 0
          and resumes = ref 0
          and counts = Hashtbl.create 16
          and round_ts = ref []
          and round_wall = ref [] in
          List.iteri
            (fun i line ->
              if String.trim line <> "" then
                match Jsonv.parse line with
                | Error _ ->
                    if i = n_lines - 1 then truncated := true else incr bad
                | Ok v ->
                    incr events;
                    let ev =
                      Option.value ~default:"?"
                        (Option.bind (Jsonv.member "ev" v) Jsonv.to_string)
                    in
                    Hashtbl.replace counts ev
                      (1 + Option.value ~default:0 (Hashtbl.find_opt counts ev));
                    (match ev with
                    | "run_start" -> incr runs
                    | "run_resume" -> incr resumes
                    | "round_end" ->
                        let f key =
                          Option.bind (Jsonv.member key v) Jsonv.to_float
                        in
                        Option.iter
                          (fun ts -> round_ts := ts :: !round_ts)
                          (f "ts");
                        Option.iter
                          (fun w -> round_wall := w :: !round_wall)
                          (f "wall_ms")
                    | _ -> ()))
            lines;
          Ok
            {
              events = !events;
              bad_lines = !bad;
              truncated_tail = !truncated;
              runs = !runs;
              resumes = !resumes;
              rounds =
                Option.value ~default:0 (Hashtbl.find_opt counts "round_end");
              ev_counts =
                List.sort compare
                  (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []);
              round_ts = Array.of_list (List.rev !round_ts);
              round_wall_ms = Array.of_list (List.rev !round_wall);
            })

let ev_count st name =
  Option.value ~default:0 (List.assoc_opt name st.ev_counts)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let fmt v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

(* Exact quantile of a sample array (journal-side, where we have the
   raw values rather than buckets). *)
let sample_quantile xs q =
  let n = Array.length xs in
  if n = 0 then None
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    Some sorted.(max 0 (min (n - 1) idx))
  end

(* p50/p99 of a named registry histogram, falling back to a raw
   sample array (from the journal) when the registry is empty. *)
let p50_p99 ?(samples = [||]) name =
  let from_hist =
    match Metrics.find_histogram name with
    | Some h when Metrics.histogram_count h > 0 ->
        Some (Metrics.quantile h 0.5, Metrics.quantile h 0.99)
    | _ -> None
  in
  match from_hist with
  | Some (Some p50, Some p99) -> Some (p50, p99)
  | _ -> (
      match (sample_quantile samples 0.5, sample_quantile samples 0.99) with
      | Some p50, Some p99 -> Some (p50, p99)
      | _ -> None)

let rate_line st =
  let n = Array.length st.round_ts in
  if n < 2 then None
  else begin
    let span = st.round_ts.(n - 1) -. st.round_ts.(0) in
    if span <= 0.0 then None
    else begin
      let overall = float_of_int (n - 1) /. span in
      let half i j =
        let k = j - i in
        let s = st.round_ts.(j) -. st.round_ts.(i) in
        if k >= 1 && s > 0.0 then Some (float_of_int k /. s) else None
      in
      let mid = n / 2 in
      let trend =
        match (half 0 mid, half mid (n - 1)) with
        | Some a, Some b -> Printf.sprintf ", trend %s -> %s" (fmt a) (fmt b)
        | _ -> ""
      in
      Some (Printf.sprintf "%s rounds/s overall%s" (fmt overall) trend)
    end
  end

(* Resilience totals: the journal spans the whole run history, the
   registry only this process — take the larger of the two views. *)
let resilience_total st_opt metric journal_ev =
  let reg = int_of_float (Option.value ~default:0.0 (Metrics.value metric)) in
  let jl =
    match st_opt with Some st -> ev_count st journal_ev | None -> 0
  in
  max reg jl

let render ?journal_path () =
  let buf = Buffer.create 1024 in
  let line f = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) f in
  line "== run health report ==";
  let st =
    match journal_path with
    | None -> None
    | Some p -> (
        match scan p with
        | Error msg ->
            line "journal: %s (unreadable: %s)" p msg;
            None
        | Ok st ->
            line "journal: %s -- %d events, %d run(s), %d resume(s)%s%s" p
              st.events st.runs st.resumes
              (if st.truncated_tail then ", truncated tail (killed run)" else "")
              (if st.bad_lines > 0 then
                 Printf.sprintf ", %d bad line(s)" st.bad_lines
               else "");
            Some st)
  in
  let rounds =
    let reg =
      int_of_float (Option.value ~default:0.0 (Metrics.value "engine_rounds_total"))
    in
    match st with Some st when st.rounds > 0 -> st.rounds | _ -> reg
  in
  (match st with
  | Some st -> (
      match rate_line st with
      | Some r -> line "rounds: %d (%s)" rounds r
      | None -> line "rounds: %d" rounds)
  | None -> line "rounds: %d" rounds);
  let phases =
    [
      ("round", "engine_round_ms", Option.map (fun s -> s.round_wall_ms) st);
      ("probe", "engine_probe_ms", None);
      ("sweep", "engine_sweep_ms", None);
      ("reduce", "engine_reduce_ms", None);
      ("statics build", "statics_build_ms", None);
      ("statics repair", "statics_rebase_ms", None);
      ("ckpt write", "checkpoint_write_ms", None);
      ("ckpt load", "checkpoint_load_ms", None);
    ]
  in
  let cells =
    List.filter_map
      (fun (label, metric, samples) ->
        match p50_p99 ?samples metric with
        | Some (p50, p99) ->
            Some (Printf.sprintf "%s %s/%s" label (fmt p50) (fmt p99))
        | None -> None)
      phases
  in
  if cells <> [] then line "phase p50/p99 ms: %s" (String.concat " | " cells);
  line "resilience: demotions %d | checkpoint skips %d | watchdog fires %d | retries %d"
    (resilience_total st "engine_demotions_total" "demotion")
    (resilience_total st "engine_checkpoint_skips_total" "checkpoint_skip")
    (resilience_total st "pool_watchdog_cancel_total" "watchdog_fire")
    (resilience_total st "pool_retry_total" "pool_retry");
  let stat name =
    int_of_float (Option.value ~default:0.0 (Metrics.value name))
  in
  let hits = stat "statics_hit_total"
  and misses = stat "statics_miss_total"
  and evictions = stat "statics_eviction_total" in
  if hits + misses + evictions > 0 then
    line "statics: hits %d | misses %d | evictions %d" hits misses evictions;
  Buffer.contents buf
