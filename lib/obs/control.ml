let trace_env = "SBGP_TRACE"
let metrics_env = "SBGP_METRICS"

let trace_dest = ref None
let metrics_dest = ref None

let trace_path () = !trace_dest
let metrics_path () = !metrics_dest

let set_trace path =
  trace_dest := Some path;
  Trace.set_enabled true

let set_metrics path =
  metrics_dest := Some path;
  Metrics.set_enabled true

let flush ?(quiet = false) () =
  (match !trace_dest with
  | Some path when Trace.enabled () ->
      Trace.write path;
      if not quiet then
        Log.info "wrote trace (%d events) to %s" (Trace.event_count ()) path
  | _ -> ());
  match !metrics_dest with
  | Some path when Metrics.enabled () ->
      Rss.publish ();
      Metrics.write path;
      if not quiet then Log.info "wrote metrics to %s" path
  | _ -> ()

let initialized = ref false

let init () =
  if not !initialized then begin
    initialized := true;
    Log.install_warning_hook ();
    Log.set_level_from_env ();
    (match Sys.getenv_opt trace_env with
    | Some path when path <> "" -> set_trace path
    | _ -> ());
    (match Sys.getenv_opt metrics_env with
    | Some path when path <> "" -> set_metrics path
    | _ -> ());
    (* Flush on any exit path: a crashed or interrupted run still
       leaves its telemetry behind. Re-flushing after an explicit
       flush just rewrites the same files (silently, to keep the
       normal-exit log free of duplicates). *)
    at_exit (fun () -> flush ~quiet:true ())
  end
