let trace_env = "SBGP_TRACE"
let metrics_env = "SBGP_METRICS"
let journal_env = "SBGP_JOURNAL"
let metrics_port_env = "SBGP_METRICS_PORT"

let trace_dest = ref None
let metrics_dest = ref None

let trace_path () = !trace_dest
let metrics_path () = !metrics_dest

let set_trace path =
  trace_dest := Some path;
  Trace.set_enabled true

let set_metrics path =
  metrics_dest := Some path;
  Metrics.set_enabled true

(* --------------------------------------------------------------- *)
(* Output-sink failures are telemetry problems, not run problems:
   the policy everywhere below is warn-and-continue (the same
   skip-and-count spirit as checkpoint Io degradation), with a typed
   record so tests and callers can see exactly what was dropped. *)

type sink = Trace_sink | Metrics_sink | Journal_sink | Endpoint_sink

type sink_error = { sink : sink; dest : string; reason : string }

let sink_name = function
  | Trace_sink -> "trace"
  | Metrics_sink -> "metrics"
  | Journal_sink -> "journal"
  | Endpoint_sink -> "metrics endpoint"

let sink_error_message e =
  Printf.sprintf "obs: dropped %s output to %s: %s (run results unaffected)"
    (sink_name e.sink) e.dest e.reason

let failures : sink_error list ref = ref []

let sink_failures () = List.rev !failures

let m_sink_failures =
  lazy
    (Metrics.counter ~help:"telemetry sink writes dropped (warn-and-continue)"
       "obs_sink_failures_total")

let report_sink_error e =
  failures := e :: !failures;
  Metrics.inc (Lazy.force m_sink_failures);
  Log.warn "%s" (sink_error_message e)

(* Run a sink write; absorb and report anything the filesystem can
   throw at us instead of crashing the run at exit. *)
let attempt sink dest f =
  try f () with
  | Sys_error reason -> report_sink_error { sink; dest; reason }
  | Unix.Unix_error (err, fn, _) ->
      report_sink_error
        { sink; dest; reason = Printf.sprintf "%s: %s" fn (Unix.error_message err) }

(* --------------------------------------------------------------- *)
(* Journal + scrape endpoint. *)

let set_journal path =
  match Journal.open_path path with
  | Ok () -> ()
  | Error reason -> report_sink_error { sink = Journal_sink; dest = path; reason }

let journal_path () = Journal.path ()

let server : Serve.t option ref = ref None

let server_port () = Option.map Serve.port !server

let set_metrics_port port =
  Metrics.set_enabled true;
  match !server with
  | Some _ -> ()
  | None -> (
      match Serve.start ~port () with
      | Ok t ->
          server := Some t;
          Log.info "obs: serving /metrics and /healthz on 127.0.0.1:%d"
            (Serve.port t)
      | Error reason ->
          report_sink_error
            { sink = Endpoint_sink; dest = Printf.sprintf "port %d" port; reason })

let stop_server () =
  Option.iter Serve.stop !server;
  server := None

let flush ?(quiet = false) () =
  (match !trace_dest with
  | Some path when Trace.enabled () ->
      attempt Trace_sink path (fun () ->
          Trace.write path;
          if not quiet then
            Log.info "wrote trace (%d events) to %s" (Trace.event_count ()) path)
  | _ -> ());
  (match !metrics_dest with
  | Some path when Metrics.enabled () ->
      attempt Metrics_sink path (fun () ->
          Rss.publish ();
          Metrics.write path;
          if not quiet then Log.info "wrote metrics to %s" path)
  | _ -> ());
  if Journal.enabled () then Journal.flush ()

let initialized = ref false

let init () =
  if not !initialized then begin
    initialized := true;
    Log.install_warning_hook ();
    Log.set_level_from_env ();
    (match Sys.getenv_opt trace_env with
    | Some path when path <> "" -> set_trace path
    | _ -> ());
    (match Sys.getenv_opt metrics_env with
    | Some path when path <> "" -> set_metrics path
    | _ -> ());
    (match Sys.getenv_opt journal_env with
    | Some path when path <> "" -> set_journal path
    | _ -> ());
    (match Sys.getenv_opt metrics_port_env with
    | Some s when s <> "" -> (
        match int_of_string_opt s with
        | Some p when p >= 0 && p < 65536 -> set_metrics_port p
        | _ ->
            Log.warn "obs: ignoring %s=%s (want a port number)" metrics_port_env
              s)
    | _ -> ());
    (* Flush on any exit path: a crashed or interrupted run still
       leaves its telemetry behind. Re-flushing after an explicit
       flush just rewrites the same files (silently, to keep the
       normal-exit log free of duplicates). The journal is closed for
       good here — its flusher thread must not outlive the process
       teardown. *)
    at_exit (fun () ->
        flush ~quiet:true ();
        Journal.close ())
  end
