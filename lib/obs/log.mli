(** Leveled logging for the whole simulator.

    One process-global level and sink; call sites use printf-style
    [err]/[warn]/[info]/[debug]. Messages below the current level are
    dropped before reaching the sink (the format arguments are still
    evaluated — guard genuinely hot call sites with {!enabled}). The
    default sink writes ["[sbgp][warn] ..."] lines to stderr, one
    whole line per call under a mutex so concurrent domains cannot
    interleave partial lines.

    The level defaults to [Warn] and is settable from the
    [SBGP_LOG_LEVEL] environment variable ([quiet]/[error], [warn],
    [info], [debug]); [quiet] keeps only errors. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Would a message at this level currently be emitted? *)

val level_of_string : string -> level option
(** Case-insensitive; ["quiet"] maps to [Error]. *)

val level_to_string : level -> string

val err : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a

val env_var : string
(** ["SBGP_LOG_LEVEL"]. *)

val set_level_from_env : unit -> unit
(** Apply [SBGP_LOG_LEVEL] if set; a malformed value warns and leaves
    the level unchanged. *)

val install_warning_hook : unit -> unit
(** Route {!Nsutil.Warnings} (the utility layer's fallback warnings,
    e.g. malformed [SBGP_N]) through this logger at [Warn]. *)

val set_sink : (level -> string -> unit) -> unit
(** Replace the output sink (testing; capturing). The sink only sees
    messages that passed the level filter. *)

val reset_sink : unit -> unit
(** Restore the stderr sink. *)
