(** A minimal JSON reader for self-validation.

    The trace and bench exporters check their own output and the
    tests assert well-formedness; this covers exactly that need
    without an external dependency. Strict on structure (rejects
    truncation, trailing garbage, raw control characters); [\uXXXX]
    escapes outside ASCII decode to ['?'] since the emitters only
    produce ASCII. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val parse_exn : string -> t

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_string : t -> string option

val escape : string -> string
(** Escape a byte string for inclusion inside a JSON string literal
    (no surrounding quotes). Round-trips through {!parse} for any
    input: quotes, backslashes and control bytes become the standard
    escapes. Shared by the trace and journal emitters. *)
