(** A process-global metrics registry: named counters, gauges and
    fixed-bucket histograms, dumped as Prometheus-style exposition
    text and as a human summary table ({!Nsutil.Table}) at end of
    run.

    Creation is idempotent by name — requesting an existing metric
    returns it; requesting it as a different kind is an error.
    Counters are atomic (safe from any domain), histograms take a
    per-histogram mutex per observation, gauges are plain writes.
    Like tracing, collection is off by default: updates are inert
    while disabled, and instrumented code additionally guards update
    batches with a single static {!enabled} check, so a run with
    metrics off pays one load+branch per hook site. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

val counter : ?help:string -> string -> counter
(** Find or create. Names are Prometheus-ish: [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val gauge : ?help:string -> string -> gauge

val histogram : ?help:string -> buckets:float array -> string -> histogram
(** [buckets] are strictly ascending upper bounds; an overflow (+Inf)
    bucket is implicit. An observation lands in the first bucket
    whose bound is [>=] the value (Prometheus [le] semantics). *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative delta: counters only go up. *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_counts : histogram -> int array
(** Per-bucket (non-cumulative) counts; last entry is the overflow
    bucket. *)

val value : string -> float option
(** Lookup by name: counter value, gauge value, or histogram
    observation count. *)

val find_histogram : string -> histogram option
(** Lookup an already-registered histogram by name (the health
    report reads quantiles without registering anything). *)

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name —
    the monotonicity probe used by the bench self-check. *)

val to_prometheus : unit -> string
(** Exposition text: [# TYPE] lines, cumulative [_bucket{le="..."}]
    rows, [_sum]/[_count] per histogram, metrics sorted by name. *)

val summary : unit -> Nsutil.Table.t
(** Human-readable end-of-run table: one row per metric. *)

val write : string -> unit
(** {!to_prometheus} to a file. *)

val timed : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall time in milliseconds (recorded
    even if the thunk raises). While collection is disabled this is
    exactly the thunk: no clock reads. *)

val quantile : histogram -> float -> float option
(** Bucket-interpolated quantile estimate (same construction as
    PromQL's [histogram_quantile]): [quantile h 0.99] is the p99 in
    the histogram's own unit. [None] when no observations; ranks
    falling in the overflow bucket clamp to the largest finite
    bound. Raises [Invalid_argument] outside [0..1]. *)

val reset : unit -> unit
(** Drop every registration and value (testing hook). Metric handles
    obtained before a reset must not be used afterwards. *)
