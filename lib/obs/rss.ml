(* Resident-set sampling from /proc/self/status (Linux). Moved here
   from the bench harness so any layer (bench JSON, --metrics) can
   report it through one tested helper. Off-Linux (or in a container
   that hides procfs) every probe returns None — no exception, no
   made-up zero pretending to be a measurement. *)

(* Parse one "Key:   12345 kB" line set: the first line starting with
   [key ^ ":"] yields the concatenation of its digits. *)
let parse_status_kb ~key text =
  let prefix = key ^ ":" in
  let plen = String.length prefix in
  let lines = String.split_on_char '\n' text in
  List.find_map
    (fun line ->
      if String.length line >= plen && String.sub line 0 plen = prefix then begin
        let acc = ref 0 and seen = ref false in
        String.iter
          (fun c ->
            if c >= '0' && c <= '9' then begin
              seen := true;
              acc := (!acc * 10) + (Char.code c - Char.code '0')
            end)
          (String.sub line plen (String.length line - plen));
        if !seen then Some !acc else None
      end
      else None)
    lines

let read_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let buf = Buffer.create 2048 in
          (try
             while true do
               Buffer.add_channel buf ic 1
             done
           with End_of_file -> ());
          Some (Buffer.contents buf))

let status_kb_of_file ~path ~key =
  match read_file path with
  | None -> None
  | Some text -> parse_status_kb ~key text

let status_path = "/proc/self/status"

let peak_kb () = status_kb_of_file ~path:status_path ~key:"VmHWM"
let current_kb () = status_kb_of_file ~path:status_path ~key:"VmRSS"

let publish () =
  let peak =
    Metrics.gauge ~help:"peak resident set size (VmHWM), KiB" "process_peak_rss_kb"
  and current =
    Metrics.gauge ~help:"current resident set size (VmRSS), KiB" "process_rss_kb"
  in
  (* Gauges are registered either way (the exposition shape does not
     depend on the platform) but only set from real samples: a
     missing procfs leaves them at their last value, not a fake 0. *)
  Option.iter (fun v -> Metrics.set peak (float_of_int v)) (peak_kb ());
  Option.iter (fun v -> Metrics.set current (float_of_int v)) (current_kb ())
