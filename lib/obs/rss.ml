(* Resident-set sampling from /proc/self/status (Linux). Moved here
   from the bench harness so any layer (bench JSON, --metrics) can
   report it through one tested helper. *)

(* Parse one "Key:   12345 kB" line set: the first line starting with
   [key ^ ":"] yields the concatenation of its digits. *)
let parse_status_kb ~key text =
  let prefix = key ^ ":" in
  let plen = String.length prefix in
  let lines = String.split_on_char '\n' text in
  List.find_map
    (fun line ->
      if String.length line >= plen && String.sub line 0 plen = prefix then begin
        let acc = ref 0 and seen = ref false in
        String.iter
          (fun c ->
            if c >= '0' && c <= '9' then begin
              seen := true;
              acc := (!acc * 10) + (Char.code c - Char.code '0')
            end)
          (String.sub line plen (String.length line - plen));
        if !seen then Some !acc else None
      end
      else None)
    lines

let read_status () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let buf = Buffer.create 2048 in
          (try
             while true do
               Buffer.add_channel buf ic 1
             done
           with End_of_file -> ());
          Some (Buffer.contents buf))

let status_kb key =
  match read_status () with
  | None -> 0
  | Some text -> Option.value ~default:0 (parse_status_kb ~key text)

let peak_kb () = status_kb "VmHWM"
let current_kb () = status_kb "VmRSS"

let publish () =
  Metrics.set
    (Metrics.gauge ~help:"peak resident set size (VmHWM), KiB" "process_peak_rss_kb")
    (float_of_int (peak_kb ()));
  Metrics.set
    (Metrics.gauge ~help:"current resident set size (VmRSS), KiB" "process_rss_kb")
    (float_of_int (current_kb ()))
