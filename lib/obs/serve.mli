(** The live scrape endpoint: a loopback HTTP server on a dedicated
    systhread.

    Routes: [GET /metrics] returns the registry in Prometheus
    exposition format (with a fresh RSS sample when metrics are
    enabled); [GET /healthz] returns a small JSON document with run
    progress (current round, rounds total), uptime, degradation
    state (demotions, checkpoint skips, watchdog cancels, retries)
    and journal status. Anything else is a 404.

    Requests are served serially; responses close the connection.
    The server thread spends its life blocked in [accept], which
    releases the OCaml runtime lock, so it costs the engine
    nothing while idle. *)

type t

val start : ?addr:string -> port:int -> unit -> (t, string) result
(** Bind [addr] (default loopback) on [port] — 0 picks an ephemeral
    port, see {!port} — and start answering. Errors (port in use,
    bad address) come back as [Error], never an exception. *)

val port : t -> int
(** The bound port (the kernel's choice when started with port 0). *)

val stop : t -> unit
(** Close the listening socket and join the server thread. Idempotent. *)

val healthz_body : t -> string
(** The /healthz JSON document (exposed for tests). *)
