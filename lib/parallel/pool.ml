(* Observability: slice spans show per-worker busy periods (gaps =
   idle/parked), park spans show bank waits, and the counters expose
   how calls are served. Every hook hides behind a static
   [Trace.enabled]/[Metrics.enabled] check, so unobserved runs pay a
   load+branch per call, not per task. *)
let m_spawns =
  lazy
    (Nsobs.Metrics.counter ~help:"helper domains spawned (bank growth + fallback)"
       "pool_domain_spawn_total")

let m_parks =
  lazy (Nsobs.Metrics.counter ~help:"bank worker park events" "pool_park_total")

let m_leases =
  lazy
    (Nsobs.Metrics.counter ~help:"parallel calls served by the parked worker bank"
       "pool_bank_lease_total")

let m_fallbacks =
  lazy
    (Nsobs.Metrics.counter
       ~help:"parallel calls that fell back to fresh Domain.spawn"
       "pool_spawn_fallback_total")

let m_retries =
  lazy
    (Nsobs.Metrics.counter ~help:"supervised slice re-executions" "pool_retry_total")

let m_slice_failures =
  lazy
    (Nsobs.Metrics.counter ~help:"supervised slice attempts that raised"
       "pool_slice_fail_total")

let m_bank_size =
  lazy
    (Nsobs.Metrics.gauge ~help:"helper domains parked in the bank" "pool_bank_workers")

let slice_span f = Nsobs.Trace.span ~cat:"pool" "pool.slice" f

let workers_of_domain_count c = max 1 (c - 1)

let recommended_workers () = workers_of_domain_count (Domain.recommended_domain_count ())

let default_workers () =
  Nsutil.Env.int_var ~name:"SBGP_WORKERS" ~min:1 ~default:(recommended_workers ()) ()

let slice ~workers ~tasks w =
  let base = tasks / workers in
  let extra = tasks mod workers in
  let lo = (w * base) + min w extra in
  let hi = lo + base + (if w < extra then 1 else 0) in
  (lo, hi)

let run_slice ~init ~task lo hi =
  let acc = init () in
  for i = lo to hi - 1 do
    task acc i
  done;
  acc

(* ------------------------------------------------------------------ *)
(* Persistent worker bank.

   [Domain.spawn] costs milliseconds on a loaded host — comparable to
   an entire per-round sweep at Internet scale — so spawning fresh
   domains per [map_reduce] call would be overhead-dominated for the
   engine's per-round kernels. Instead, helper domains are spawned
   once on first parallel use and then parked on a condition variable;
   a call leases the whole bank, hands each worker its slice closure,
   runs slice 0 itself and waits for the helpers to park again.

   The bank is a pure execution strategy: slices and the left-fold
   combine order are fixed by (workers, tasks) alone, so results are
   bit-identical whether slices run on the bank, on freshly spawned
   domains, or sequentially. Calls that cannot take the lease — a
   nested call from inside a worker, a concurrent caller from another
   domain, or a worker count beyond the bank cap — fall back to
   spawning, preserving liveness. *)

type bank_worker = {
  wm : Mutex.t;
  wcv : Condition.t;
  mutable wjob : (unit -> unit) option; (* parked <-> pending *)
  mutable wbusy : bool; (* set by the leaser, cleared by the worker *)
}

let max_bank_workers = 15
let bank : bank_worker array ref = ref [||]
let bank_leased = Atomic.make false
let inside_bank_worker = Domain.DLS.new_key (fun () -> false)

let bank_worker_loop w =
  Mutex.lock w.wm;
  while true do
    match w.wjob with
    | None ->
        if Nsobs.Metrics.enabled () then Nsobs.Metrics.inc (Lazy.force m_parks);
        (* The span covers the parked wait, so the trace shows each
           worker's idle periods between leases. *)
        Nsobs.Trace.span ~cat:"pool" "pool.park" (fun () -> Condition.wait w.wcv w.wm)
    | Some job ->
        w.wjob <- None;
        Mutex.unlock w.wm;
        job ();
        (* [job] captures its own exceptions; it never raises. *)
        Mutex.lock w.wm;
        w.wbusy <- false;
        Condition.broadcast w.wcv
  done

(* Called only under the bank lease. *)
let ensure_bank k =
  let cur = !bank in
  if Array.length cur >= k then cur
  else begin
    let grown =
      Array.init k (fun i ->
          if i < Array.length cur then cur.(i)
          else begin
            let w =
              { wm = Mutex.create (); wcv = Condition.create (); wjob = None; wbusy = false }
            in
            if Nsobs.Metrics.enabled () then Nsobs.Metrics.inc (Lazy.force m_spawns);
            ignore
              (Domain.spawn (fun () ->
                   Domain.DLS.set inside_bank_worker true;
                   bank_worker_loop w));
            w
          end)
    in
    bank := grown;
    if Nsobs.Metrics.enabled () then
      Nsobs.Metrics.set (Lazy.force m_bank_size) (float_of_int (Array.length grown));
    grown
  end

(* Hand [run 0 .. run (k-1)] to parked workers. Returns false without
   doing anything when the bank is unavailable; on true, the caller
   owns the lease and must [bank_wait] to release it. *)
let bank_try_submit k run =
  if k > max_bank_workers || Domain.DLS.get inside_bank_worker then false
  else if not (Atomic.compare_and_set bank_leased false true) then false
  else begin
    let ws = ensure_bank k in
    for i = 0 to k - 1 do
      let w = ws.(i) in
      Mutex.lock w.wm;
      w.wbusy <- true;
      w.wjob <- Some (fun () -> run i);
      Condition.broadcast w.wcv;
      Mutex.unlock w.wm
    done;
    true
  end

(* Wait for the k submitted slices to finish and release the lease. *)
let bank_wait k =
  let ws = !bank in
  for i = 0 to k - 1 do
    let w = ws.(i) in
    Mutex.lock w.wm;
    while w.wbusy do
      Condition.wait w.wcv w.wm
    done;
    Mutex.unlock w.wm
  done;
  Atomic.set bank_leased false

let map_reduce ~workers ~tasks ~init ~task ~combine =
  if workers <= 1 || tasks <= 1 then run_slice ~init ~task 0 tasks
  else begin
    let workers = min workers tasks in
    let k = workers - 1 in
    let results = Array.make k None in
    let run i =
      slice_span (fun () ->
          let lo, hi = slice ~workers ~tasks (i + 1) in
          results.(i) <-
            Some
              (match run_slice ~init ~task lo hi with
              | acc -> Ok acc
              | exception e -> Error e))
    in
    let on_bank = bank_try_submit k run in
    if Nsobs.Metrics.enabled () then
      if on_bank then Nsobs.Metrics.inc (Lazy.force m_leases)
      else begin
        Nsobs.Metrics.inc (Lazy.force m_fallbacks);
        Nsobs.Metrics.add (Lazy.force m_spawns) k
      end;
    let spawned =
      if on_bank then [||] else Array.init k (fun i -> Domain.spawn (fun () -> run i))
    in
    let first =
      slice_span (fun () ->
          match
            run_slice ~init ~task
              (fst (slice ~workers ~tasks 0))
              (snd (slice ~workers ~tasks 0))
          with
          | acc -> Ok acc
          | exception e -> Error e)
    in
    (* Always drain the helpers (and release the bank lease) before
       propagating any failure. *)
    if on_bank then bank_wait k else Array.iter Domain.join spawned;
    let get = function
      | Ok acc -> acc
      | Error e -> raise e
    in
    let acc = ref (get first) in
    for i = 0 to k - 1 do
      match results.(i) with
      | Some r -> acc := combine !acc (get r)
      | None -> invalid_arg "Pool.map_reduce: missing slice result"
    done;
    !acc
  end

let map_reduce_chunked ~workers ~tasks ~grain ~init ~task ~combine =
  let grain = max 1 grain in
  (* Cap the worker count so every worker gets at least [grain]
     contiguous tasks; slices stay contiguous, so the left-fold
     reduction visits tasks in index order exactly as [map_reduce]. *)
  let workers = max 1 (min workers (tasks / grain)) in
  map_reduce ~workers ~tasks ~init ~task ~combine

let map_array ~workers ~tasks f =
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    let acc =
      map_reduce ~workers ~tasks
        ~init:(fun () -> [])
        ~task:(fun _ i -> results.(i) <- Some (f i))
        ~combine:(fun a _ -> a)
    in
    ignore acc;
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map_array: missing result")
      results
  end

(* ------------------------------------------------------------------ *)
(* Supervision: worker-domain exceptions are contained, attributed to
   the task index that raised, and the failed slice is re-executed —
   spawned retries with exponential backoff first, then one final
   serial attempt in the calling domain. Because each slice folds from
   a fresh accumulator and the reduction stays a left fold in worker
   order, a re-executed slice contributes bit-identical results. *)

type failure = { index : int; attempts : int; error : string }

exception Supervision_failed of failure list

let () =
  Printexc.register_printer (function
    | Supervision_failed fs ->
        Some
          (Printf.sprintf "Pool.Supervision_failed [%s]"
             (String.concat "; "
                (List.map
                   (fun f ->
                     Printf.sprintf "task %d after %d attempts: %s" f.index f.attempts
                       f.error)
                   fs)))
    | _ -> None)

type supervision = {
  retries : int;
  backoff : float;
  faults : Nsutil.Faults.t option;
  on_retry : (attempt:int -> index:int -> error:string -> unit) option;
}

let supervision ?(retries = 2) ?(backoff = 0.005) ?faults ?on_retry () =
  { retries = max 0 retries; backoff = Float.max 0.0 backoff; faults; on_retry }

let no_supervision = supervision ~retries:0 ~backoff:0.0 ()

(* One guarded slice execution: trips the fault plan before each task,
   converts any exception into the failing index. The partially-built
   accumulator is discarded; tasks may have published per-index side
   results, which re-execution overwrites with identical values. *)
let run_slice_guarded ~sv ~init ~task lo hi =
  let acc = init () in
  let i = ref lo in
  try
    while !i < hi do
      (match sv.faults with Some f -> Nsutil.Faults.trip f "pool.task" | None -> ());
      task acc !i;
      incr i
    done;
    Ok acc
  with e -> Error (!i, Printexc.to_string e)

let map_reduce_supervised sv ~workers ~tasks ~init ~task ~combine =
  if tasks <= 0 then init ()
  else begin
    let workers = max 1 (min workers tasks) in
    let results = Array.make workers None in
    let attempt w =
      slice_span (fun () ->
          run_slice_guarded ~sv ~init ~task
            (fst (slice ~workers ~tasks w))
            (snd (slice ~workers ~tasks w)))
    in
    let record failed w = function
      | Ok acc -> results.(w) <- Some acc
      | Error (index, error) ->
          if Nsobs.Metrics.enabled () then
            Nsobs.Metrics.inc (Lazy.force m_slice_failures);
          failed := (w, index, error) :: !failed
    in
    (* First attempt: the usual fan-out (slice 0 in the caller). *)
    let failed = ref [] in
    if Nsobs.Metrics.enabled () && workers > 1 then
      Nsobs.Metrics.add (Lazy.force m_spawns) (workers - 1);
    let spawned =
      Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> attempt (w + 1)))
    in
    record failed 0 (attempt 0);
    Array.iteri (fun w d -> record failed (w + 1) (Domain.join d)) spawned;
    (* Retry failed slices, attempt by attempt; the last allowed
       attempt runs serially in the calling domain. *)
    let rec retry attempt_no failed =
      if failed = [] then []
      else if attempt_no > sv.retries + 1 then
        List.map (fun (_, index, error) -> { index; attempts = sv.retries + 1; error }) failed
      else begin
        List.iter
          (fun (_, index, error) ->
            if Nsobs.Metrics.enabled () then
              Nsobs.Metrics.inc (Lazy.force m_retries);
            Nsobs.Log.warn "pool: retrying slice (task %d, attempt %d): %s"
              index attempt_no error;
            match sv.on_retry with
            | Some f -> f ~attempt:attempt_no ~index ~error
            | None -> ())
          failed;
        if sv.backoff > 0.0 then
          Thread.delay (sv.backoff *. Float.of_int (1 lsl (attempt_no - 2)));
        let still = ref [] in
        if attempt_no <= sv.retries then begin
          (* Spawned re-execution, all failed slices concurrently. *)
          if Nsobs.Metrics.enabled () then
            Nsobs.Metrics.add (Lazy.force m_spawns) (List.length failed);
          let redo =
            List.map (fun (w, _, _) -> (w, Domain.spawn (fun () -> attempt w))) failed
          in
          List.iter (fun (w, d) -> record still w (Domain.join d)) redo
        end
        else
          (* Final attempt: serial, in the calling domain. *)
          List.iter (fun (w, _, _) -> record still w (attempt w)) failed;
        retry (attempt_no + 1) !still
      end
    in
    let dead = retry 2 (List.rev !failed) in
    if dead <> [] then
      raise
        (Supervision_failed (List.sort (fun a b -> compare a.index b.index) dead));
    (* Deterministic left fold in worker order, as [map_reduce]. *)
    let get w =
      match results.(w) with
      | Some acc -> acc
      | None -> invalid_arg "Pool.map_reduce_supervised: missing slice result"
    in
    let acc = ref (get 0) in
    for w = 1 to workers - 1 do
      acc := combine !acc (get w)
    done;
    !acc
  end

let map_reduce_chunked_supervised sv ~workers ~tasks ~grain ~init ~task ~combine =
  let grain = max 1 grain in
  let workers = max 1 (min workers (tasks / grain)) in
  map_reduce_supervised sv ~workers ~tasks ~init ~task ~combine

(* ------------------------------------------------------------------ *)
(* Dynamic (self-scheduled) distribution: workers repeatedly claim the
   next [grain]-sized contiguous chunk off a shared atomic counter, so
   a heavy-tailed task — one destination with many admitted candidate
   probes — delays only the worker that drew it instead of the whole
   static slice behind it. Which worker runs which chunk (and hence
   how tasks partition into accumulators) is nondeterministic, so the
   deterministic-results contract is narrower than [map_reduce]'s:
   callers must either publish per-task side results keyed by index
   (and ignore the accumulators, as the engine sweep and [map_array]
   do) or use a reduction that is invariant under task regrouping.

   Supervision is chunk-grained: an exception is attributed to the
   failing task index, the chunk is re-executed (spawned retries, then
   one final serial attempt) from a fresh accumulator, and surviving
   failures aggregate into [Supervision_failed]. A re-executed chunk
   overwrites its per-index results with identical values. *)

let run_chunk_guarded ~sv ~task acc lo hi =
  let i = ref lo in
  try
    while !i < hi do
      (match sv.faults with Some f -> Nsutil.Faults.trip f "pool.task" | None -> ());
      task acc !i;
      incr i
    done;
    None
  with e -> Some (!i, Printexc.to_string e)

let map_reduce_dynamic_supervised sv ~workers ~tasks ~grain ~init ~task ~combine =
  if tasks <= 0 then init ()
  else begin
    let grain = max 1 grain in
    let nchunks = (tasks + grain - 1) / grain in
    let workers = max 1 (min workers nchunks) in
    if workers = 1 then map_reduce_supervised sv ~workers:1 ~tasks ~init ~task ~combine
    else begin
      let next_chunk = Atomic.make 0 in
      let accs = Array.make workers None in
      let failures = Array.make workers [] in
      let worker w =
        slice_span (fun () ->
            let acc = init () in
            let continue = ref true in
            while !continue do
              let c = Atomic.fetch_and_add next_chunk 1 in
              if c >= nchunks then continue := false
              else begin
                let lo = c * grain in
                let hi = min tasks (lo + grain) in
                match run_chunk_guarded ~sv ~task acc lo hi with
                | None -> ()
                | Some (index, error) ->
                    if Nsobs.Metrics.enabled () then
                      Nsobs.Metrics.inc (Lazy.force m_slice_failures);
                    failures.(w) <- (lo, hi, index, error) :: failures.(w)
              end
            done;
            accs.(w) <- Some acc)
      in
      let k = workers - 1 in
      let on_bank = bank_try_submit k (fun i -> worker (i + 1)) in
      if Nsobs.Metrics.enabled () then
        if on_bank then Nsobs.Metrics.inc (Lazy.force m_leases)
        else begin
          Nsobs.Metrics.inc (Lazy.force m_fallbacks);
          Nsobs.Metrics.add (Lazy.force m_spawns) k
        end;
      let spawned =
        if on_bank then [||]
        else Array.init k (fun i -> Domain.spawn (fun () -> worker (i + 1)))
      in
      worker 0;
      if on_bank then bank_wait k else Array.iter Domain.join spawned;
      (* Chunk-grained retries; each re-execution folds into a fresh
         accumulator appended after the worker accumulators. *)
      let retry_accs = ref [] in
      let attempt_chunk (lo, hi) =
        let acc = init () in
        match run_chunk_guarded ~sv ~task acc lo hi with
        | None -> Ok acc
        | Some (index, error) -> Error (lo, hi, index, error)
      in
      let record still = function
        | Ok acc -> retry_accs := acc :: !retry_accs
        | Error ((_, _, _, _) as f) ->
            if Nsobs.Metrics.enabled () then
              Nsobs.Metrics.inc (Lazy.force m_slice_failures);
            still := f :: !still
      in
      let rec retry attempt_no failed =
        if failed = [] then []
        else if attempt_no > sv.retries + 1 then
          List.map
            (fun (_, _, index, error) ->
              { index; attempts = sv.retries + 1; error })
            failed
        else begin
          List.iter
            (fun (_, _, index, error) ->
              if Nsobs.Metrics.enabled () then
                Nsobs.Metrics.inc (Lazy.force m_retries);
              Nsobs.Log.warn "pool: retrying chunk (task %d, attempt %d): %s"
                index attempt_no error;
              match sv.on_retry with
              | Some f -> f ~attempt:attempt_no ~index ~error
              | None -> ())
            failed;
          if sv.backoff > 0.0 then
            Thread.delay (sv.backoff *. Float.of_int (1 lsl (attempt_no - 2)));
          let still = ref [] in
          if attempt_no <= sv.retries then begin
            if Nsobs.Metrics.enabled () then
              Nsobs.Metrics.add (Lazy.force m_spawns) (List.length failed);
            let redo =
              List.map
                (fun (lo, hi, _, _) -> Domain.spawn (fun () -> attempt_chunk (lo, hi)))
                failed
            in
            List.iter (fun d -> record still (Domain.join d)) redo
          end
          else
            List.iter (fun (lo, hi, _, _) -> record still (attempt_chunk (lo, hi))) failed;
          retry (attempt_no + 1) !still
        end
      in
      let failed0 = List.concat_map List.rev (Array.to_list failures) in
      let dead = retry 2 failed0 in
      if dead <> [] then
        raise
          (Supervision_failed (List.sort (fun a b -> compare a.index b.index) dead));
      let get w =
        match accs.(w) with
        | Some acc -> acc
        | None -> invalid_arg "Pool.map_reduce_dynamic_supervised: missing accumulator"
      in
      let acc = ref (get 0) in
      for w = 1 to workers - 1 do
        acc := combine !acc (get w)
      done;
      List.iter (fun a -> acc := combine !acc a) (List.rev !retry_accs);
      !acc
    end
  end
