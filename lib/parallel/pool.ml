(* Observability: slice spans show per-worker busy periods (gaps =
   idle/parked), park spans show bank waits, and the counters expose
   how calls are served. Every hook hides behind a static
   [Trace.enabled]/[Metrics.enabled] check, so unobserved runs pay a
   load+branch per call, not per task. *)
let m_spawns =
  lazy
    (Nsobs.Metrics.counter ~help:"helper domains spawned (bank growth + fallback)"
       "pool_domain_spawn_total")

let m_parks =
  lazy (Nsobs.Metrics.counter ~help:"bank worker park events" "pool_park_total")

let m_leases =
  lazy
    (Nsobs.Metrics.counter ~help:"parallel calls served by the parked worker bank"
       "pool_bank_lease_total")

let m_fallbacks =
  lazy
    (Nsobs.Metrics.counter
       ~help:"parallel calls that fell back to fresh Domain.spawn"
       "pool_spawn_fallback_total")

let m_retries =
  lazy
    (Nsobs.Metrics.counter ~help:"supervised slice re-executions" "pool_retry_total")

let m_slice_failures =
  lazy
    (Nsobs.Metrics.counter ~help:"supervised slice attempts that raised"
       "pool_slice_fail_total")

let m_bank_size =
  lazy
    (Nsobs.Metrics.gauge ~help:"helper domains parked in the bank" "pool_bank_workers")

let m_watchdog_cancels =
  lazy
    (Nsobs.Metrics.counter ~help:"stalled slices cancelled by the watchdog"
       "pool_watchdog_cancel_total")

let m_backoff_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"supervised retry backoff sleeps (ms)"
       ~buckets:[| 1.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. |]
       "pool_backoff_delay_ms")

let slice_span f = Nsobs.Trace.span ~cat:"pool" "pool.slice" f

let workers_of_domain_count c = max 1 (c - 1)

let recommended_workers () = workers_of_domain_count (Domain.recommended_domain_count ())

let default_workers () =
  Nsutil.Env.int_var ~name:"SBGP_WORKERS" ~min:1 ~default:(recommended_workers ()) ()

let slice ~workers ~tasks w =
  let base = tasks / workers in
  let extra = tasks mod workers in
  let lo = (w * base) + min w extra in
  let hi = lo + base + (if w < extra then 1 else 0) in
  (lo, hi)

let run_slice ~init ~task lo hi =
  let acc = init () in
  for i = lo to hi - 1 do
    task acc i
  done;
  acc

(* ------------------------------------------------------------------ *)
(* Persistent worker bank.

   [Domain.spawn] costs milliseconds on a loaded host — comparable to
   an entire per-round sweep at Internet scale — so spawning fresh
   domains per [map_reduce] call would be overhead-dominated for the
   engine's per-round kernels. Instead, helper domains are spawned
   once on first parallel use and then parked on a condition variable;
   a call leases the whole bank, hands each worker its slice closure,
   runs slice 0 itself and waits for the helpers to park again.

   The bank is a pure execution strategy: slices and the left-fold
   combine order are fixed by (workers, tasks) alone, so results are
   bit-identical whether slices run on the bank, on freshly spawned
   domains, or sequentially. Calls that cannot take the lease — a
   nested call from inside a worker, a concurrent caller from another
   domain, or a worker count beyond the bank cap — fall back to
   spawning, preserving liveness. *)

type bank_worker = {
  wm : Mutex.t;
  wcv : Condition.t;
  mutable wjob : (unit -> unit) option; (* parked <-> pending *)
  mutable wbusy : bool; (* set by the leaser, cleared by the worker *)
}

let max_bank_workers = 15
let bank : bank_worker array ref = ref [||]
let bank_leased = Atomic.make false
let inside_bank_worker = Domain.DLS.new_key (fun () -> false)

let bank_worker_loop w =
  Mutex.lock w.wm;
  while true do
    match w.wjob with
    | None ->
        if Nsobs.Metrics.enabled () then Nsobs.Metrics.inc (Lazy.force m_parks);
        (* The span covers the parked wait, so the trace shows each
           worker's idle periods between leases. *)
        Nsobs.Trace.span ~cat:"pool" "pool.park" (fun () -> Condition.wait w.wcv w.wm)
    | Some job ->
        w.wjob <- None;
        Mutex.unlock w.wm;
        job ();
        (* [job] captures its own exceptions; it never raises. *)
        Mutex.lock w.wm;
        w.wbusy <- false;
        Condition.broadcast w.wcv
  done

(* Called only under the bank lease. *)
let ensure_bank k =
  let cur = !bank in
  if Array.length cur >= k then cur
  else begin
    let grown =
      Array.init k (fun i ->
          if i < Array.length cur then cur.(i)
          else begin
            let w =
              { wm = Mutex.create (); wcv = Condition.create (); wjob = None; wbusy = false }
            in
            if Nsobs.Metrics.enabled () then Nsobs.Metrics.inc (Lazy.force m_spawns);
            ignore
              (Domain.spawn (fun () ->
                   Domain.DLS.set inside_bank_worker true;
                   bank_worker_loop w));
            w
          end)
    in
    bank := grown;
    if Nsobs.Metrics.enabled () then
      Nsobs.Metrics.set (Lazy.force m_bank_size) (float_of_int (Array.length grown));
    grown
  end

(* Hand [run 0 .. run (k-1)] to parked workers. Returns false without
   doing anything when the bank is unavailable; on true, the caller
   owns the lease and must [bank_wait] to release it. *)
let bank_try_submit k run =
  if k > max_bank_workers || Domain.DLS.get inside_bank_worker then false
  else if not (Atomic.compare_and_set bank_leased false true) then false
  else begin
    let ws = ensure_bank k in
    for i = 0 to k - 1 do
      let w = ws.(i) in
      Mutex.lock w.wm;
      w.wbusy <- true;
      w.wjob <- Some (fun () -> run i);
      Condition.broadcast w.wcv;
      Mutex.unlock w.wm
    done;
    true
  end

(* Wait for the k submitted slices to finish and release the lease. *)
let bank_wait k =
  let ws = !bank in
  for i = 0 to k - 1 do
    let w = ws.(i) in
    Mutex.lock w.wm;
    while w.wbusy do
      Condition.wait w.wcv w.wm
    done;
    Mutex.unlock w.wm
  done;
  Atomic.set bank_leased false

let map_reduce ~workers ~tasks ~init ~task ~combine =
  if workers <= 1 || tasks <= 1 then run_slice ~init ~task 0 tasks
  else begin
    let workers = min workers tasks in
    let k = workers - 1 in
    let results = Array.make k None in
    let run i =
      slice_span (fun () ->
          let lo, hi = slice ~workers ~tasks (i + 1) in
          results.(i) <-
            Some
              (match run_slice ~init ~task lo hi with
              | acc -> Ok acc
              | exception e -> Error e))
    in
    let on_bank = bank_try_submit k run in
    if Nsobs.Metrics.enabled () then
      if on_bank then Nsobs.Metrics.inc (Lazy.force m_leases)
      else begin
        Nsobs.Metrics.inc (Lazy.force m_fallbacks);
        Nsobs.Metrics.add (Lazy.force m_spawns) k
      end;
    let spawned =
      if on_bank then [||] else Array.init k (fun i -> Domain.spawn (fun () -> run i))
    in
    let first =
      slice_span (fun () ->
          match
            run_slice ~init ~task
              (fst (slice ~workers ~tasks 0))
              (snd (slice ~workers ~tasks 0))
          with
          | acc -> Ok acc
          | exception e -> Error e)
    in
    (* Always drain the helpers (and release the bank lease) before
       propagating any failure. *)
    if on_bank then bank_wait k else Array.iter Domain.join spawned;
    let get = function
      | Ok acc -> acc
      | Error e -> raise e
    in
    let acc = ref (get first) in
    for i = 0 to k - 1 do
      match results.(i) with
      | Some r -> acc := combine !acc (get r)
      | None -> invalid_arg "Pool.map_reduce: missing slice result"
    done;
    !acc
  end

let map_reduce_chunked ~workers ~tasks ~grain ~init ~task ~combine =
  let grain = max 1 grain in
  (* Cap the worker count so every worker gets at least [grain]
     contiguous tasks; slices stay contiguous, so the left-fold
     reduction visits tasks in index order exactly as [map_reduce]. *)
  let workers = max 1 (min workers (tasks / grain)) in
  map_reduce ~workers ~tasks ~init ~task ~combine

let map_array ~workers ~tasks f =
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    let acc =
      map_reduce ~workers ~tasks
        ~init:(fun () -> [])
        ~task:(fun _ i -> results.(i) <- Some (f i))
        ~combine:(fun a _ -> a)
    in
    ignore acc;
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map_array: missing result")
      results
  end

(* ------------------------------------------------------------------ *)
(* Supervision: worker-domain exceptions are contained, attributed to
   the task index that raised, and the failed slice is re-executed —
   spawned retries with exponential backoff first, then one final
   serial attempt in the calling domain. Because each slice folds from
   a fresh accumulator and the reduction stays a left fold in worker
   order, a re-executed slice contributes bit-identical results. *)

type failure = { index : int; attempts : int; error : string }

exception Supervision_failed of failure list

let () =
  Printexc.register_printer (function
    | Supervision_failed fs ->
        Some
          (Printf.sprintf "Pool.Supervision_failed [%s]"
             (String.concat "; "
                (List.map
                   (fun f ->
                     Printf.sprintf "task %d after %d attempts: %s" f.index f.attempts
                       f.error)
                   fs)))
    | _ -> None)

type supervision = {
  retries : int;
  backoff : float;
  backoff_cap : float;
  jitter_seed : int;
  timeout_ms : int;
  faults : Nsutil.Faults.t option;
  on_retry : (attempt:int -> index:int -> error:string -> unit) option;
}

let supervision ?(retries = 2) ?(backoff = 0.005) ?(backoff_cap = 0.25)
    ?(jitter_seed = 0) ?(timeout_ms = 0) ?faults ?on_retry () =
  {
    retries = max 0 retries;
    backoff = Float.max 0.0 backoff;
    backoff_cap = Float.max 0.0 backoff_cap;
    jitter_seed;
    timeout_ms = max 0 timeout_ms;
    faults;
    on_retry;
  }

let no_supervision = supervision ~retries:0 ~backoff:0.0 ()

(* Capped exponential backoff with deterministic jitter: the k-th
   re-attempt of the slice owning task [index] sleeps
   [min cap (backoff * 2^(k-2)) * (0.5 + 0.5 * u)], where [u] is a
   pure hash of (jitter_seed, attempt, index). Retrying slices
   therefore never synchronize their sleeps (each index draws its own
   jitter) while the schedule stays reproducible run to run. *)
let backoff_delay sv ~attempt ~index =
  if sv.backoff <= 0.0 then 0.0
  else begin
    let exp =
      Float.min sv.backoff_cap
        (sv.backoff *. Float.of_int (1 lsl min 20 (max 0 (attempt - 2))))
    in
    let u =
      float_of_int (Nsutil.Prng.mix2 (Nsutil.Prng.mix2 sv.jitter_seed attempt) index)
      /. 4.611686018427387904e18 (* 2^62 *)
    in
    exp *. (0.5 +. (0.5 *. u))
  end

let sleep_before_retry sv ~attempt ~index =
  let d = backoff_delay sv ~attempt ~index in
  if d > 0.0 then begin
    if Nsobs.Metrics.enabled () then
      Nsobs.Metrics.observe (Lazy.force m_backoff_ms) (d *. 1000.0);
    if Nsobs.Journal.enabled () then
      Nsobs.Journal.event "pool_backoff"
        [
          ("index", Nsobs.Journal.Int index);
          ("attempt", Nsobs.Journal.Int attempt);
          ("delay_ms", Nsobs.Journal.Float (d *. 1000.0));
        ];
    Thread.delay d
  end

(* ------------------------------------------------------------------ *)
(* Watchdog: per-slice-execution heartbeat words, polled by a monitor
   thread. A domain cannot be killed, so cancellation is cooperative:
   the guarded loops increment their tracker's heartbeat before every
   task and abandon the slice (raising {!Watchdog_timeout}) once the
   monitor flags it cancelled, feeding the ordinary retry machinery.
   The one in-tree hang — the [pool.hang] fault site — polls its
   tracker's cancel flag while "hung", so even a mid-task stall
   unwinds as soon as the watchdog fires. Real (non-injected) mid-task
   hangs that never reach a task boundary cannot be reclaimed; the
   timeout must exceed the worst single-task latency. *)

exception Watchdog_timeout

let () =
  Printexc.register_printer (function
    | Watchdog_timeout ->
        Some "Pool.Watchdog_timeout (watchdog cancelled a stalled slice)"
    | _ -> None)

type tracker = {
  t_hb : int Atomic.t;  (* incremented before every task *)
  t_cancel : bool Atomic.t;  (* set by the monitor, read by the worker *)
  t_done : bool Atomic.t;  (* slice finished; monitor stops watching *)
  mutable t_last : int;  (* monitor-private: last heartbeat seen *)
  mutable t_since : float;  (* monitor-private: when it was seen *)
}

let tracker_cancelled = function
  | Some t -> Atomic.get t.t_cancel
  | None -> false

let tracker_finish = function Some t -> Atomic.set t.t_done true | None -> ()

(* Runs [f mk] under a monitor thread when the policy arms a timeout;
   [mk ()] registers a fresh tracker for one slice execution. With no
   timeout, [mk] yields no tracker and the guarded loops skip all
   heartbeat work. The monitor scans every few milliseconds (cheap: a
   handful of atomic loads), so joining it at the end adds bounded
   latency to the call. *)
let with_watchdog sv f =
  if sv.timeout_ms <= 0 then f (fun () -> None)
  else begin
    let timeout = float_of_int sv.timeout_ms /. 1000.0 in
    let reg_m = Mutex.create () in
    let reg = ref [] in
    let stop = Atomic.make false in
    let mk () =
      let t =
        {
          t_hb = Atomic.make 0;
          t_cancel = Atomic.make false;
          t_done = Atomic.make false;
          t_last = 0;
          t_since = Unix.gettimeofday ();
        }
      in
      Mutex.lock reg_m;
      reg := t :: !reg;
      Mutex.unlock reg_m;
      Some t
    in
    let period = Float.max 0.001 (Float.min 0.005 (timeout /. 4.0)) in
    let monitor =
      Thread.create
        (fun () ->
          while not (Atomic.get stop) do
            Thread.delay period;
            let now = Unix.gettimeofday () in
            Mutex.lock reg_m;
            List.iter
              (fun t ->
                if not (Atomic.get t.t_done || Atomic.get t.t_cancel) then begin
                  let hb = Atomic.get t.t_hb in
                  if hb <> t.t_last then begin
                    t.t_last <- hb;
                    t.t_since <- now
                  end
                  else if now -. t.t_since > timeout then begin
                    Atomic.set t.t_cancel true;
                    if Nsobs.Metrics.enabled () then
                      Nsobs.Metrics.inc (Lazy.force m_watchdog_cancels);
                    Nsobs.Log.warn "pool: watchdog cancelled a stalled slice (> %d ms)"
                      sv.timeout_ms;
                    if Nsobs.Journal.enabled () then
                      Nsobs.Journal.event "watchdog_fire"
                        [ ("timeout_ms", Nsobs.Journal.Int sv.timeout_ms) ]
                  end
                end)
              !reg;
            Mutex.unlock reg_m
          done)
        ()
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join monitor)
      (fun () -> f mk)
  end

(* The [pool.hang] fault: stall (polling our own cancel flag) until
   the watchdog fires, then unwind like any injected fault. With no
   watchdog armed the hang degrades to an immediate raise — it must
   never deadlock a run that cannot cancel it. *)
let simulate_hang tracker ~shot =
  (match tracker with
  | Some t ->
      while not (Atomic.get t.t_cancel) do
        Thread.delay 0.001
      done
  | None -> ());
  raise (Nsutil.Faults.Injected { site = "pool.hang"; shot })

let check_task_boundary ~sv ~tracker =
  (match tracker with
  | Some t ->
      if Atomic.get t.t_cancel then raise Watchdog_timeout;
      Atomic.incr t.t_hb
  | None -> ());
  match sv.faults with
  | Some f -> (
      Nsutil.Faults.trip f "pool.task";
      match Nsutil.Faults.fires f "pool.hang" with
      | Some shot -> simulate_hang tracker ~shot
      | None -> ())
  | None -> ()

(* One guarded slice execution: checks cancellation and trips the
   fault plan before each task, converts any exception into the
   failing index. The partially-built accumulator is discarded; tasks
   may have published per-index side results, which re-execution
   overwrites with identical values. *)
let run_slice_guarded ~sv ~tracker ~init ~task lo hi =
  let acc = init () in
  let i = ref lo in
  match
    while !i < hi do
      check_task_boundary ~sv ~tracker;
      task acc !i;
      incr i
    done
  with
  | () ->
      tracker_finish tracker;
      Ok acc
  | exception e ->
      tracker_finish tracker;
      Error (!i, Printexc.to_string e)

let map_reduce_supervised sv ~workers ~tasks ~init ~task ~combine =
  if tasks <= 0 then init ()
  else
    with_watchdog sv @@ fun mk_tracker ->
    let workers = max 1 (min workers tasks) in
    let results = Array.make workers None in
    let attempt w =
      slice_span (fun () ->
          run_slice_guarded ~sv ~tracker:(mk_tracker ()) ~init ~task
            (fst (slice ~workers ~tasks w))
            (snd (slice ~workers ~tasks w)))
    in
    let record failed w = function
      | Ok acc -> results.(w) <- Some acc
      | Error (index, error) ->
          if Nsobs.Metrics.enabled () then
            Nsobs.Metrics.inc (Lazy.force m_slice_failures);
          failed := (w, index, error) :: !failed
    in
    (* First attempt: the usual fan-out (slice 0 in the caller). *)
    let failed = ref [] in
    if Nsobs.Metrics.enabled () && workers > 1 then
      Nsobs.Metrics.add (Lazy.force m_spawns) (workers - 1);
    let spawned =
      Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> attempt (w + 1)))
    in
    record failed 0 (attempt 0);
    Array.iteri (fun w d -> record failed (w + 1) (Domain.join d)) spawned;
    (* Retry failed slices, attempt by attempt; the last allowed
       attempt runs serially in the calling domain. *)
    let rec retry attempt_no failed =
      if failed = [] then []
      else if attempt_no > sv.retries + 1 then
        List.map (fun (_, index, error) -> { index; attempts = sv.retries + 1; error }) failed
      else begin
        List.iter
          (fun (_, index, error) ->
            if Nsobs.Metrics.enabled () then
              Nsobs.Metrics.inc (Lazy.force m_retries);
            Nsobs.Log.warn "pool: retrying slice (task %d, attempt %d): %s"
              index attempt_no error;
            if Nsobs.Journal.enabled () then
              Nsobs.Journal.event "pool_retry"
                [
                  ("index", Nsobs.Journal.Int index);
                  ("attempt", Nsobs.Journal.Int attempt_no);
                  ("error", Nsobs.Journal.Str error);
                ];
            match sv.on_retry with
            | Some f -> f ~attempt:attempt_no ~index ~error
            | None -> ())
          failed;
        let still = ref [] in
        if attempt_no <= sv.retries then begin
          (* Spawned re-execution, all failed slices concurrently; each
             retry domain sleeps its own jittered backoff first, so
             retry storms cannot synchronize across slices. *)
          if Nsobs.Metrics.enabled () then
            Nsobs.Metrics.add (Lazy.force m_spawns) (List.length failed);
          let redo =
            List.map
              (fun (w, index, _) ->
                ( w,
                  Domain.spawn (fun () ->
                      sleep_before_retry sv ~attempt:attempt_no ~index;
                      attempt w) ))
              failed
          in
          List.iter (fun (w, d) -> record still w (Domain.join d)) redo
        end
        else
          (* Final attempt: serial, in the calling domain. *)
          List.iter
            (fun (w, index, _) ->
              sleep_before_retry sv ~attempt:attempt_no ~index;
              record still w (attempt w))
            failed;
        retry (attempt_no + 1) !still
      end
    in
    let dead = retry 2 (List.rev !failed) in
    if dead <> [] then
      raise
        (Supervision_failed (List.sort (fun a b -> compare a.index b.index) dead));
    (* Deterministic left fold in worker order, as [map_reduce]. *)
    let get w =
      match results.(w) with
      | Some acc -> acc
      | None -> invalid_arg "Pool.map_reduce_supervised: missing slice result"
    in
    let acc = ref (get 0) in
    for w = 1 to workers - 1 do
      acc := combine !acc (get w)
    done;
    !acc

let map_reduce_chunked_supervised sv ~workers ~tasks ~grain ~init ~task ~combine =
  let grain = max 1 grain in
  let workers = max 1 (min workers (tasks / grain)) in
  map_reduce_supervised sv ~workers ~tasks ~init ~task ~combine

(* ------------------------------------------------------------------ *)
(* Dynamic (self-scheduled) distribution: workers repeatedly claim the
   next [grain]-sized contiguous chunk off a shared atomic counter, so
   a heavy-tailed task — one destination with many admitted candidate
   probes — delays only the worker that drew it instead of the whole
   static slice behind it. Which worker runs which chunk (and hence
   how tasks partition into accumulators) is nondeterministic, so the
   deterministic-results contract is narrower than [map_reduce]'s:
   callers must either publish per-task side results keyed by index
   (and ignore the accumulators, as the engine sweep and [map_array]
   do) or use a reduction that is invariant under task regrouping.

   Supervision is chunk-grained: an exception is attributed to the
   failing task index, the chunk is re-executed (spawned retries, then
   one final serial attempt) from a fresh accumulator, and surviving
   failures aggregate into [Supervision_failed]. A re-executed chunk
   overwrites its per-index results with identical values.

   A watchdog-cancelled worker stops claiming chunks and exits; the
   chunk it was executing joins the failure list like any raising
   chunk, and any chunks left unclaimed (every live worker may have
   been cancelled) are drained by the calling domain after the join —
   no task index is ever silently skipped. *)

let run_chunk_guarded ~sv ~tracker ~task acc lo hi =
  let i = ref lo in
  try
    while !i < hi do
      check_task_boundary ~sv ~tracker;
      task acc !i;
      incr i
    done;
    None
  with e -> Some (!i, Printexc.to_string e)

let map_reduce_dynamic_supervised sv ~workers ~tasks ~grain ~init ~task ~combine =
  if tasks <= 0 then init ()
  else begin
    let grain = max 1 grain in
    let nchunks = (tasks + grain - 1) / grain in
    let workers = max 1 (min workers nchunks) in
    if workers = 1 then
      (* Serial in-order fold; {!map_reduce_supervised} arms its own
         watchdog when the policy has a timeout. *)
      map_reduce_supervised sv ~workers:1 ~tasks ~init ~task ~combine
    else
      with_watchdog sv @@ fun mk_tracker ->
      let next_chunk = Atomic.make 0 in
      let accs = Array.make workers None in
      let failures = Array.make workers [] in
      let worker w =
        slice_span (fun () ->
            let tracker = mk_tracker () in
            let acc = init () in
            let continue = ref true in
            while !continue do
              if tracker_cancelled tracker then continue := false
              else begin
                let c = Atomic.fetch_and_add next_chunk 1 in
                if c >= nchunks then continue := false
                else begin
                  let lo = c * grain in
                  let hi = min tasks (lo + grain) in
                  match run_chunk_guarded ~sv ~tracker ~task acc lo hi with
                  | None -> ()
                  | Some (index, error) ->
                      if Nsobs.Metrics.enabled () then
                        Nsobs.Metrics.inc (Lazy.force m_slice_failures);
                      failures.(w) <- (lo, hi, index, error) :: failures.(w)
                end
              end
            done;
            tracker_finish tracker;
            accs.(w) <- Some acc)
      in
      let k = workers - 1 in
      let on_bank = bank_try_submit k (fun i -> worker (i + 1)) in
      if Nsobs.Metrics.enabled () then
        if on_bank then Nsobs.Metrics.inc (Lazy.force m_leases)
        else begin
          Nsobs.Metrics.inc (Lazy.force m_fallbacks);
          Nsobs.Metrics.add (Lazy.force m_spawns) k
        end;
      let spawned =
        if on_bank then [||]
        else Array.init k (fun i -> Domain.spawn (fun () -> worker (i + 1)))
      in
      worker 0;
      if on_bank then bank_wait k else Array.iter Domain.join spawned;
      (* Chunk-grained retries; each re-execution folds into a fresh
         accumulator appended after the worker accumulators. *)
      let retry_accs = ref [] in
      let attempt_chunk (lo, hi) =
        let tracker = mk_tracker () in
        let acc = init () in
        let r =
          match run_chunk_guarded ~sv ~tracker ~task acc lo hi with
          | None -> Ok acc
          | Some (index, error) -> Error (lo, hi, index, error)
        in
        tracker_finish tracker;
        r
      in
      let record still = function
        | Ok acc -> retry_accs := acc :: !retry_accs
        | Error ((_, _, _, _) as f) ->
            if Nsobs.Metrics.enabled () then
              Nsobs.Metrics.inc (Lazy.force m_slice_failures);
            still := f :: !still
      in
      (* Cancelled workers may have exited with the chunk counter short
         of the end: drain the leftovers in the calling domain (through
         the same accumulator/failure machinery) before retrying, so no
         index is silently dropped. *)
      let drained = ref [] in
      let rec drain () =
        let c = Atomic.fetch_and_add next_chunk 1 in
        if c < nchunks then begin
          let lo = c * grain in
          record drained (attempt_chunk (lo, min tasks (lo + grain)));
          drain ()
        end
      in
      drain ();
      let rec retry attempt_no failed =
        if failed = [] then []
        else if attempt_no > sv.retries + 1 then
          List.map
            (fun (_, _, index, error) ->
              { index; attempts = sv.retries + 1; error })
            failed
        else begin
          List.iter
            (fun (_, _, index, error) ->
              if Nsobs.Metrics.enabled () then
                Nsobs.Metrics.inc (Lazy.force m_retries);
              Nsobs.Log.warn "pool: retrying chunk (task %d, attempt %d): %s"
                index attempt_no error;
              if Nsobs.Journal.enabled () then
                Nsobs.Journal.event "pool_retry"
                  [
                    ("index", Nsobs.Journal.Int index);
                    ("attempt", Nsobs.Journal.Int attempt_no);
                    ("error", Nsobs.Journal.Str error);
                  ];
              match sv.on_retry with
              | Some f -> f ~attempt:attempt_no ~index ~error
              | None -> ())
            failed;
          let still = ref [] in
          if attempt_no <= sv.retries then begin
            if Nsobs.Metrics.enabled () then
              Nsobs.Metrics.add (Lazy.force m_spawns) (List.length failed);
            let redo =
              List.map
                (fun (lo, hi, index, _) ->
                  Domain.spawn (fun () ->
                      sleep_before_retry sv ~attempt:attempt_no ~index;
                      attempt_chunk (lo, hi)))
                failed
            in
            List.iter (fun d -> record still (Domain.join d)) redo
          end
          else
            List.iter
              (fun (lo, hi, index, _) ->
                sleep_before_retry sv ~attempt:attempt_no ~index;
                record still (attempt_chunk (lo, hi)))
              failed;
          retry (attempt_no + 1) !still
        end
      in
      let failed0 =
        List.concat_map List.rev (Array.to_list failures) @ List.rev !drained
      in
      let dead = retry 2 failed0 in
      if dead <> [] then
        raise
          (Supervision_failed (List.sort (fun a b -> compare a.index b.index) dead));
      let get w =
        match accs.(w) with
        | Some acc -> acc
        | None -> invalid_arg "Pool.map_reduce_dynamic_supervised: missing accumulator"
      in
      let acc = ref (get 0) in
      for w = 1 to workers - 1 do
        acc := combine !acc (get w)
      done;
      List.iter (fun a -> acc := combine !acc a) (List.rev !retry_accs);
      !acc
  end
