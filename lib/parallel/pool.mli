(** Multicore map/reduce over integer task indices.

    This is the stand-in for the paper's 200-node DryadLINQ cluster
    (Appendix C.3): simulations parallelize by mapping per-destination
    computations across workers, each with worker-local scratch, and
    reducing the partial utility vectors. Workers are OCaml 5 domains;
    with [workers = 1] (the default on a single-core host) everything
    runs in the calling domain and results are bit-identical to the
    parallel runs, because the reduction is a deterministic left
    fold over worker index.

    Helper domains are spawned once on first parallel use and then
    parked between calls (a persistent bank), so a per-round sweep
    pays a condition-variable wakeup instead of a multi-millisecond
    [Domain.spawn] per call. The bank is purely an execution strategy:
    slices and the reduction order depend only on [(workers, tasks)],
    so results are identical whether slices run on the bank, on
    freshly spawned domains (the fallback for nested or concurrent
    calls), or serially. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 (clamped so a
    single-core host still gets one worker). *)

val workers_of_domain_count : int -> int
(** The clamp behind {!recommended_workers}: [max 1 (count - 1)].
    Exposed so the "at least 1" guarantee is testable without
    depending on the host's core count. *)

val default_workers : unit -> int
(** Worker count for components that take no explicit setting: the
    [SBGP_WORKERS] environment variable when it parses as a positive
    integer, else {!recommended_workers}. *)

val map_reduce :
  workers:int ->
  tasks:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** [map_reduce ~workers ~tasks ~init ~task ~combine] partitions task
    indices [0 .. tasks-1] into [workers] contiguous slices; each
    worker folds [task] over its slice using its own accumulator from
    [init]; accumulators are combined left-to-right by worker index.
    [task] must only mutate its own accumulator. *)

val map_reduce_chunked :
  workers:int ->
  tasks:int ->
  grain:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** {!map_reduce} with a scheduling grain: the worker count is capped
    at [tasks / grain] (at least 1) so no domain is spawned for fewer
    than [grain] tasks — tiny task sets run sequentially instead of
    drowning in spawn overhead. Slices remain contiguous and the
    reduction remains a left fold by worker index, so results are
    identical to [map_reduce] (and to [workers = 1]) for any grain. *)

val map_array : workers:int -> tasks:int -> (int -> 'a) -> 'a array
(** Pure per-task map collected into an array ([map_array f] is
    equivalent to [Array.init tasks f]). The closure must be safe to
    call from any domain. *)

(** {1 Supervision}

    The paper's cluster treats worker failure as routine (Appendix
    C.3); so do we. Under a supervision policy, an exception raised by
    a worker domain is caught and attributed to the task index that
    raised instead of tearing down the run; the failed slice is
    re-executed from a fresh accumulator — spawned retries with
    exponential backoff first, then one final serial attempt in the
    calling domain. Because every slice folds from a fresh accumulator
    over its own contiguous index range and the reduction remains a
    left fold in worker order, re-execution is invisible: results stay
    bit-identical to a fault-free run for any worker count. Tasks that
    publish per-index side results (arrays indexed by task) are safe
    as long as re-running an index overwrites the slot with the same
    value, which deterministic tasks do by construction. *)

type failure = { index : int; attempts : int; error : string }
(** One task slot that kept failing: the raising task index of the
    last attempt, the number of attempts made, and the printed
    exception. *)

exception Supervision_failed of failure list
(** Raised (in the calling domain) when slices still fail after the
    retry budget; carries every dead slice, sorted by task index. *)

exception Watchdog_timeout
(** Raised {e inside} a guarded slice when the watchdog cancelled it;
    callers never see it directly — it surfaces as the [error] string
    of a {!failure} once the retry budget is spent. *)

type supervision

val supervision :
  ?retries:int ->
  ?backoff:float ->
  ?backoff_cap:float ->
  ?jitter_seed:int ->
  ?timeout_ms:int ->
  ?faults:Nsutil.Faults.t ->
  ?on_retry:(attempt:int -> index:int -> error:string -> unit) ->
  unit ->
  supervision
(** A supervision policy: up to [retries] re-attempts per failed slice
    (default 2) beyond the first; the last allowed attempt always runs
    serially in the calling domain. Before the k-th re-attempt of the
    slice owning task [index], the retrying domain sleeps a capped
    exponential backoff with deterministic jitter —
    [min backoff_cap (backoff * 2^(k-2)) * (0.5 + 0.5 * u)] with [u] a
    pure hash of [(jitter_seed, k, index)] (defaults: 5ms base, 250ms
    cap, seed 0) — so concurrent retries never synchronize into a
    storm yet replay identically run to run.

    [timeout_ms > 0] arms the watchdog (default off): a monitor thread
    polls per-slice heartbeat words and cancels any slice that makes
    no progress for longer than the timeout; the cancelled slice
    unwinds cooperatively (at its next task boundary, or immediately
    for the [pool.hang] fault) and re-executes through the ordinary
    retry machinery, preserving bit-identical results. The timeout
    must exceed the worst single-task latency: heartbeats tick once
    per task, so a slow-but-live task is indistinguishable from a
    hang between boundaries.

    [faults] is tripped before every task — the deterministic
    fault-injection hook (sites [pool.task], raising, and [pool.hang],
    stalling until cancelled — or raising immediately when no watchdog
    is armed). [on_retry] observes each re-attempt (logging,
    counters). *)

val no_supervision : supervision
(** Zero retries, no faults, no watchdog: failures raise
    {!Supervision_failed} after the first attempt, with attribution. *)

val backoff_delay : supervision -> attempt:int -> index:int -> float
(** The exact pre-retry sleep (seconds) the policy prescribes for the
    given attempt number and task index — exposed so the
    backoff/jitter schedule is testable. *)

val map_reduce_supervised :
  supervision ->
  workers:int ->
  tasks:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** {!map_reduce} under a supervision policy. *)

val map_reduce_chunked_supervised :
  supervision ->
  workers:int ->
  tasks:int ->
  grain:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** {!map_reduce_chunked} under a supervision policy. *)

val map_reduce_dynamic_supervised :
  supervision ->
  workers:int ->
  tasks:int ->
  grain:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Dynamic (self-scheduled) variant: workers repeatedly claim the
    next [grain]-sized contiguous chunk off a shared atomic counter
    until the index space is exhausted, so one heavy-tailed task — a
    destination with many admitted candidate probes, say — delays
    only the worker that drew it, not the whole static slice behind
    it. Which worker runs which chunk is {e nondeterministic}; the
    deterministic-results contract is therefore narrower than
    {!map_reduce}'s: the caller must either publish per-task side
    results keyed by index and ignore the accumulators (as the engine
    sweep does), or use a reduction invariant under regrouping of
    tasks into accumulators. With [workers = 1] this degrades to
    {!map_reduce_supervised}, i.e. a serial in-order fold.
    Supervision is chunk-grained: failed chunks re-execute from fresh
    accumulators (appended after the worker accumulators in the final
    fold), and failures surviving the budget raise
    {!Supervision_failed}. Under an armed watchdog a cancelled worker
    stops claiming chunks; the calling domain drains any chunks left
    unclaimed after the join, so every task index is executed exactly
    as in a fault-free run. *)
