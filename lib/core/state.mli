(** Deployment state S (Section 3.2): which ASes run S*BGP.

    Full deployment is the ISPs'/early adopters' action. Simplex
    deployment at stubs is *sticky*: when an ISP becomes secure it
    upgrades all its stub customers, and they keep signing even if the
    ISP later turns S*BGP off (in Figure 13 AS 4755's stubs stay
    simplex; only paths through 4755 lose their security). *)

type t

val create :
  ?frozen:int list -> ?simplex:bool -> ?secp:bool -> Asgraph.Graph.t -> early:int list -> t
(** Initial state: exactly the early adopters run full S*BGP; the stub
    customers of early-adopter ISPs run simplex (Section 3.2).
    [frozen] nodes are pinned to their initial (insecure) action —
    used by the gadget constructions of the appendices, whose "fixed
    nodes" never flip. [simplex:false] disables stub upgrades and
    [secp:false] makes {!use_secp_bytes} all-zero — the ablation
    switches of {!Config}. *)

val graph : t -> Asgraph.Graph.t
val full : t -> int -> bool
(** Runs full S*BGP. *)

val simplex : t -> int -> bool
(** Stub running simplex S*BGP (and not full). *)

val secure : t -> int -> bool
(** Participates at all: [full || simplex]. Paths through the node
    can be fully secure. *)

val pinned : t -> int -> bool
(** Early adopters and frozen nodes never flip. *)

val enable : t -> int -> int list
(** Deploy full S*BGP at a node and simplex S*BGP at its stub
    customers; returns the stubs newly upgraded (for {!undo_enable}).
    Raises [Invalid_argument] on a pinned node. *)

val undo_enable : t -> int -> added:int list -> unit
(** Exactly reverse a prior {!enable} (used when projecting
    (~S_n, S_{-n}) in the engine). *)

val disable : t -> int -> unit
(** Turn full S*BGP off. Stub upgrades are sticky and remain. *)

val set_full : t -> int -> bool -> unit
(** [set_full t i true] = [ignore (enable t i)];
    [set_full t i false] = [disable t i]. *)

val secure_count : t -> int
(** Number of secure ASes (full + simplex). *)

val secure_isp_count : t -> int
val secure_stub_count : t -> int

val copy : t -> t
val signature : t -> int
(** Hash of the deployment sets, for oscillation detection. *)

val equal_full : t -> t -> bool

type fingerprint
(** The deployment sets alone (full + simplex bitsets, n/4 bytes) —
    everything oscillation detection compares, at a fraction of a full
    {!copy}. *)

val fingerprint : t -> fingerprint
(** Snapshot the current deployment sets. *)

val fp_signature : fingerprint -> int
(** Equals {!signature} of the state the fingerprint was taken from. *)

val fp_matches : fingerprint -> t -> bool
(** Equals {!equal_full} against the state the fingerprint was taken
    from: do the state's deployment sets match the snapshot? *)

val fp_serialize : fingerprint -> string
(** Opaque serialization for {!Checkpoint} snapshots. *)

val fp_restore : string -> fingerprint
(** Inverse of {!fp_serialize}. The bytes must come from
    [fp_serialize] over the same topology (checkpoint digest checks
    enforce provenance). *)

val secure_bytes : t -> Bytes.t
(** Per-node participation flags in the {!Bgp.Forest} encoding. The
    returned buffer is owned by the state and mutated by
    {!enable}/{!disable}. *)

val use_secp_bytes : t -> stub_tiebreak:bool -> Bytes.t
(** Per-node "applies the SecP step" flags: secure ISPs and CPs
    always; secure stubs only when [stub_tiebreak]. Owned by the
    state and kept in sync (the [stub_tiebreak] value of the most
    recent call is used). *)

val mark : t -> unit
(** Snapshot the participation bytes ([secure]/[use_secp]) for
    {!changed_since_mark}. Engines call this once per round to learn,
    next round, which nodes' routing-relevant bits actually flipped. *)

val marked : t -> bool

val changed_since_mark : t -> int list
(** Nodes whose [secure] or [use_secp] byte differs from the last
    {!mark} (ascending). Raises [Invalid_argument] if never marked. *)

val secure_list : t -> int list

val serialize : t -> string
(** Opaque byte serialization of everything but the graph (deployment
    sets, participation bytes, ablation switches, the {!mark}
    snapshot), for {!Checkpoint} snapshots. *)

val restore : Asgraph.Graph.t -> string -> t
(** Rebuild a state from {!serialize} output over the given graph.
    The bytes must come from a state over a graph of the same size
    (checkpoint integrity/digest checks enforce provenance before
    this is reached); raises [Invalid_argument] on a size mismatch. *)
