(** The deployment process (Sections 3.2-3.3).

    Rounds of simultaneous myopic best response: in each round every
    unpinned ISP computes its utility in the current state S and its
    projected utility in (~S_n, S_{-n}) — the state where only it
    flips — and flips iff the projection exceeds (1 + θ) times its
    current utility (Eq. 3). Newly secure ISPs upgrade their stub
    customers to simplex S*BGP. The process ends at a stable state, on
    a detected oscillation (a repeated deployment state), or at the
    round cap.

    Projection uses the Appendix C.4 optimizations: destinations that
    are insecure even after the candidate's flip are skipped; under
    the outgoing model secure ISPs are never candidates (Theorem 6.2);
    and a (candidate, destination) pair is only recomputed when the
    flip can actually alter that destination's routing tree. *)

type round_record = {
  round : int;  (** 1-based *)
  utilities : float array;  (** every node's utility in the state at round start *)
  projected : float array;
      (** projected utility per node; equals [utilities] for
          non-candidates *)
  turned_on : int list;  (** ISPs that deployed at the end of this round *)
  turned_off : int list;
  secure_as : int;  (** counts after the round's flips *)
  secure_isp : int;
  secure_stub : int;
}

type termination = Stable | Oscillation of { first_round : int } | Max_rounds

type result = {
  baseline : float array;
      (** per-node utility before deployment began (nobody secure) *)
  initial_secure_as : int;
  initial_secure_isp : int;
  rounds : round_record list;  (** chronological *)
  final : State.t;
  termination : termination;
  dest_recomputed : int;
      (** across all rounds, destinations whose routing forest was
          recomputed (cross-round cache misses) *)
  dest_reused : int;  (** destinations served from the cross-round cache *)
  statics_hits : int;
      (** statics-store lookups served from cache during this run.
          Unlike every other field, the three statics counters are
          diagnostics: they depend on the store's byte budget and are
          best-effort under concurrent workers, so equal runs may
          report (slightly) different values. *)
  statics_misses : int;  (** statics-store recomputes (incl. the initial fill) *)
  statics_evictions : int;  (** statics entries evicted to stay in budget *)
  demotions : int;
      (** destinations the degradation ladder pinned to the full
          flip/statics kernels during this process's run — after
          repeated supervision failure of their sweep slice, or after
          their statics record failed the checkpoint-boundary
          {!Bgp.Route_static.check_info} validation. Always [0] when
          [Config.degrade] is off (those conditions raise instead).
          Diagnostics like the statics counters: demotions change
          robustness, never results (the full kernels are the
          bit-identical reference). *)
  checkpoint_skips : int;
      (** checkpoint writes that failed with an I/O error and were
          skipped under [Config.degrade] (the previous snapshot
          survives); [0] otherwise — without degradation the error
          propagates. *)
  statics_store : Bgp.Route_static.t;
      (** the store the run actually used: the caller's, except on a
          snapshot-restored resume, where it is the store rebuilt from
          the checkpoint — callers that carry the warm store forward
          (the churn runner, across epochs) must take it from here. *)
}

type checkpoint_spec = {
  path : string;  (** snapshot file, atomically replaced *)
  every : int;  (** snapshot every K completed rounds (clamped to >= 1) *)
}

type snapshot_sink = {
  s_every : int;  (** hand progress over every K completed rounds *)
  s_save : round:int -> payload:string -> unit;
      (** receives the serialized engine progress; the sink owns
          framing and persistence. The churn runner wraps the payload
          (plus its epoch cursor) into a [Checkpoint.Churn] frame, so
          one snapshot file covers a whole evolution run, including
          mid-epoch engine state. *)
}

val input_digest :
  Config.t -> Bgp.Route_static.t -> weight:float array -> state:State.t -> string
(** SHA-256 (32 raw bytes) over every run input that determines
    results: the config (minus [workers] and [retries], which never
    affect results), the topology, the traffic weights and the
    initial deployment state. {!resume} accepts only snapshots
    written under an equal digest. *)

val run :
  ?checkpoint:checkpoint_spec ->
  ?sink:snapshot_sink ->
  ?faults:Nsutil.Faults.t ->
  Config.t ->
  Bgp.Route_static.t ->
  weight:float array ->
  state:State.t ->
  result
(** Run to termination, mutating and returning [state] as [final].

    The per-round sweep fans destinations out over
    [Config.workers] domains ({!Parallel.Pool}) and reuses each
    destination's routing forest across rounds when no flip could
    have changed it ({!Incremental}). Both are transparent: the
    result is structurally identical — float-for-float — for any
    worker count, because workers compute pure per-destination
    values and all float accumulation happens in one serial pass in
    destination order.

    The sweeps run supervised: a worker exception is contained and
    its slice retried up to [Config.retries] times (final attempt
    serial in the calling domain); since re-executing a slice
    recomputes identical per-destination values, contained faults
    never change results. {!Parallel.Pool.Supervision_failed}
    escapes only when a slice keeps failing beyond the budget.

    [checkpoint] snapshots the engine's complete cross-round memory
    (state, oscillation table, round records, counters, incremental
    cache, {e and} the warm statics store with its hit/miss counters)
    to [path] every [every] completed rounds, whenever another round
    is still coming — see {!Checkpoint} for the file format. [sink]
    receives the same serialized progress on its own cadence, for
    callers (the churn runner) that frame and persist it themselves.

    With [Config.task_timeout_ms > 0] the sweeps also run under the
    {!Parallel.Pool} hang watchdog; with [Config.degrade] the
    degradation ladder turns repeated supervision failures, invalid
    statics records and checkpoint I/O errors into per-destination
    kernel demotions / skipped snapshots (counted in the result)
    instead of exceptions.

    [faults] is the fault-injection plan threaded into the sweeps and
    the checkpoint writer; it defaults to the [SBGP_FAULTS]
    environment variable ({!Nsutil.Faults.of_env}). *)

val resume :
  from:string ->
  ?checkpoint:checkpoint_spec ->
  ?sink:snapshot_sink ->
  ?faults:Nsutil.Faults.t ->
  Config.t ->
  Bgp.Route_static.t ->
  weight:float array ->
  state:State.t ->
  result
(** Continue a checkpointed run from the snapshot at [from] and run
    to termination. The caller passes the same config, statics,
    weights and a freshly created initial [state] — exactly as the
    original {!run} — and the snapshot is validated against their
    {!input_digest} before any of it is trusted: corrupt, truncated
    or config/topology-mismatched files raise {!Checkpoint.Error}
    with the corresponding typed {!Checkpoint.error}, never a crash
    or a silently wrong resume.

    Because the snapshot restores the full cross-round memory —
    including, in version-2 frames, the warm statics store — the
    result is structurally identical — float-for-float, including
    the cache {e and} statics counters — to the uninterrupted run,
    for any worker count. Version-1 frames (no statics snapshot)
    still resume with the caller's store, as before. A
    [Checkpoint.Churn]-kind snapshot is rejected with
    {!Checkpoint.Error} [(Unsupported_kind _)] — resume those with
    the evolution runner. Pass [checkpoint] to keep snapshotting the
    resumed run (possibly to the same path). *)

val resume_of_payload :
  payload:string ->
  ?checkpoint:checkpoint_spec ->
  ?sink:snapshot_sink ->
  ?faults:Nsutil.Faults.t ->
  Config.t ->
  Bgp.Route_static.t ->
  weight:float array ->
  state:State.t ->
  result
(** {!resume} from a progress payload a {!snapshot_sink} captured
    earlier, instead of a framed file. The caller is responsible for
    having authenticated the bytes (the churn runner's frames go
    through {!Checkpoint.load} first): the payload is a [Marshal]
    blob and unmarshaling untrusted bytes is unsafe. *)

val secure_fraction : result -> [ `As | `Isp ] -> float
(** Fraction of ASes (resp. ISPs) secure at termination. *)

val rounds_run : result -> int

val cache_hit_rate : result -> float
(** [dest_reused / (dest_recomputed + dest_reused)]; 0 if no rounds ran. *)
