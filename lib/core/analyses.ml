module Graph = Asgraph.Graph
module Route_static = Bgp.Route_static
module Forest = Bgp.Forest

type secure_path_stats = {
  secure_pairs : int;
  reachable_pairs : int;
  fraction : float;
  f_squared : float;
}

let secure_path_stats (cfg : Config.t) statics state ~weight =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let scratch = Forest.make_scratch n in
  let secure = State.secure_bytes state in
  let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
  let chosen_sec = Bytes.make n '\000' in
  let secure_pairs = ref 0 in
  let reachable_pairs = ref 0 in
  for d = 0 to n - 1 do
    let info = Route_static.get statics d in
    Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight scratch;
    (* Security of the *chosen* route, following actual next hops in
       ascending length order. *)
    Bytes.set chosen_sec d (Bytes.get secure d);
    let nreach = Route_static.order_length info in
    for k = 1 to nreach - 1 do
      let i = Route_static.order_get info k in
      let nh = scratch.next.(i) in
      let ok =
        nh >= 0 && Bytes.get secure i = '\001' && Bytes.get chosen_sec nh = '\001'
      in
      Bytes.set chosen_sec i (if ok then '\001' else '\000')
    done;
    reachable_pairs := !reachable_pairs + (nreach - 1);
    for k = 1 to nreach - 1 do
      if Bytes.get chosen_sec (Route_static.order_get info k) = '\001' then
        incr secure_pairs
    done
  done;
  let all_pairs = n * (n - 1) in
  let f = float_of_int (State.secure_count state) /. float_of_int (max 1 n) in
  {
    secure_pairs = !secure_pairs;
    reachable_pairs = !reachable_pairs;
    fraction = float_of_int !secure_pairs /. float_of_int (max 1 all_pairs);
    f_squared = f *. f;
  }

let tiebreak_distribution statics ~among =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let counts = Hashtbl.create 16 in
  let bump size = Hashtbl.replace counts size (1 + Option.value ~default:0 (Hashtbl.find_opt counts size)) in
  for d = 0 to n - 1 do
    let info = Route_static.get statics d in
    Route_static.iter_order info (fun i ->
        if i <> d && among i then bump (Route_static.tie_size info i))
  done;
  Hashtbl.fold (fun size count acc -> (size, count) :: acc) counts []
  |> List.sort compare

let diamonds statics ~early =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let per_adopter = List.map (fun a -> (a, ref 0)) early in
  for d = 0 to n - 1 do
    if Graph.is_stub g d then begin
      let info = Route_static.get statics d in
      List.iter
        (fun (a, count) ->
          if a <> d && Route_static.reachable info a then begin
            let isps =
              Route_static.tie_fold info a
                (fun acc j -> if Graph.is_isp g j then acc + 1 else acc)
                0
            in
            if isps >= 2 then count := !count + (isps * (isps - 1) / 2)
          end)
        per_adopter
    end
  done;
  List.map (fun (a, count) -> (a, !count)) per_adopter

let turnoff_incentives (cfg : Config.t) statics state ~weight =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let base = Forest.make_scratch n in
  let flip = Forest.make_scratch n in
  let secure = State.secure_bytes state in
  let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
  let model = Config.Incoming in
  let counts = Array.make n 0 in
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if Graph.is_isp g i && State.full state i && not (State.pinned state i) then
      candidates := i :: !candidates
  done;
  for d = 0 to n - 1 do
    if Bytes.get secure d = '\001' then begin
      let info = Route_static.get statics d in
      Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight base;
      List.iter
        (fun nc ->
          (* Turning off can only matter if nc currently holds or
             offers a secure route to d. *)
          if Bytes.get base.Forest.sec_path nc = '\001' then begin
            let cur = Utility.contribution model g info base ~weight nc in
            State.set_full state nc false;
            Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight flip;
            let alt = Utility.contribution model g info flip ~weight nc in
            State.set_full state nc true;
            if alt > cur +. 1e-9 then counts.(nc) <- counts.(nc) + 1
          end)
        !candidates
    end
  done;
  List.filter_map
    (fun nc -> if counts.(nc) > 0 then Some (nc, counts.(nc)) else None)
    !candidates

let turnoff_incentive_search (cfg : Config.t) statics ~weight =
  (* For every ISP n, test the Figure-13 witness state: the content
     providers, n itself and n's (transitive) providers secure,
     everything else insecure. This is exactly the sparse state of the
     paper's example (Akamai + NTT + AS 4755). *)
  let g = Route_static.graph statics in
  let cps = Graph.nodes_of_class g Asgraph.As_class.Cp in
  let found = ref [] in
  let examined = ref 0 in
  List.iter
    (fun n ->
      incr examined;
      (* Collect n's transitive providers (they play NTT's role). *)
      let ancestors = Hashtbl.create 16 in
      let rec climb v =
        Graph.iter_providers g v (fun p ->
            if not (Hashtbl.mem ancestors p) then begin
              Hashtbl.replace ancestors p ();
              climb p
            end)
      in
      climb n;
      let pinned = cps @ Hashtbl.fold (fun k () acc -> k :: acc) ancestors [] in
      let pinned = List.filter (fun v -> v <> n) pinned in
      let state = State.create g ~early:pinned in
      if not (State.pinned state n) then begin
        State.set_full state n true;
        match turnoff_incentives cfg statics state ~weight with
        | [] -> ()
        | incentives ->
            if List.exists (fun (isp, _) -> isp = n) incentives then
              found := n :: !found
      end)
    (Graph.nodes_of_class g Asgraph.As_class.Isp);
  (!examined, !found)

let chain_reactions (result : Engine.result) g =
  let rec walk acc = function
    | (r1 : Engine.round_record) :: (r2 : Engine.round_record) :: rest ->
        let pairs =
          List.concat_map
            (fun n ->
              List.filter_map
                (fun m -> if Graph.rel g n m <> None then Some (n, m) else None)
                r2.turned_on)
            r1.turned_on
        in
        walk (List.rev_append pairs acc) (r2 :: rest)
    | _ -> List.rev acc
  in
  walk [] result.rounds

let never_secure_isps (result : Engine.result) =
  let state = result.final in
  let g = State.graph state in
  let acc = ref [] in
  for i = Graph.n g - 1 downto 0 do
    if Graph.is_isp g i && not (State.secure state i) then acc := i :: !acc
  done;
  !acc

let mean_utility_change (result : Engine.result) ~among =
  match List.rev result.rounds with
  | [] -> 1.0
  | last :: _ ->
      let total = ref 0.0 in
      let count = ref 0 in
      Array.iteri
        (fun i u0 ->
          if among i && u0 > 0.0 then begin
            total := !total +. (last.utilities.(i) /. u0);
            incr count
          end)
        result.baseline;
      if !count = 0 then 1.0 else !total /. float_of_int !count
