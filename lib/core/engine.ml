module Graph = Asgraph.Graph
module Csr = Nsutil.Csr
module Route_static = Bgp.Route_static
module Forest = Bgp.Forest
module Pool = Parallel.Pool

(* Observability hooks. Every hook sits behind Nsobs's static
   [enabled] checks and only observes — spans time existing sections,
   counters publish at round or end-of-run granularity — so an
   instrumented run is bit-identical to an uninstrumented one
   (test_obs proves it). *)
let m_rounds =
  lazy (Nsobs.Metrics.counter ~help:"deployment-game rounds executed" "engine_rounds_total")
let m_flips_on =
  lazy
    (Nsobs.Metrics.counter ~help:"candidates that turned secure routing on"
       "engine_flips_on_total")
let m_flips_off =
  lazy
    (Nsobs.Metrics.counter ~help:"candidates that turned secure routing off"
       "engine_flips_off_total")
let m_flips_hist =
  lazy
    (Nsobs.Metrics.histogram ~help:"simultaneous flips per round"
       ~buckets:[| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]
       "engine_flips_per_round")
let m_dirty_hist =
  lazy
    (Nsobs.Metrics.histogram
       ~help:"incremental dirty-set size per round (destinations recomputed)"
       ~buckets:[| 0.; 10.; 100.; 1000.; 10000.; 100000. |]
       "engine_dirty_set_size")
let m_round_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"wall time per round (ms)"
       ~buckets:[| 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]
       "engine_round_ms")
let m_statics_hits =
  lazy (Nsobs.Metrics.counter ~help:"route-statics store hits" "statics_hit_total")
let m_statics_misses =
  lazy
    (Nsobs.Metrics.counter ~help:"route-statics store misses (rows built)"
       "statics_miss_total")
let m_statics_evictions =
  lazy
    (Nsobs.Metrics.counter ~help:"route-statics rows evicted by the byte budget"
       "statics_eviction_total")
let m_statics_bytes =
  lazy
    (Nsobs.Metrics.gauge ~help:"route-statics bytes cached at end of run"
       "statics_cached_bytes")
let m_dest_recomputed =
  lazy
    (Nsobs.Metrics.counter ~help:"destination forests recomputed"
       "engine_dest_recomputed_total")
let m_dest_reused =
  lazy
    (Nsobs.Metrics.counter ~help:"destination forests served from the incremental cache"
       "engine_dest_reused_total")
let m_demotions =
  lazy
    (Nsobs.Metrics.counter
       ~help:"destinations demoted delta->full by the degradation ladder"
       "engine_demotions_total")
let m_checkpoint_skips =
  lazy
    (Nsobs.Metrics.counter
       ~help:"checkpoint writes skipped on I/O failure under the degradation ladder"
       "engine_checkpoint_skips_total")

(* Per-phase wall-time histograms (tentpole c): observed around the
   existing trace spans, same sites, same guard discipline. Bucket
   grid shared across phases so dashboards can overlay them. *)
let phase_buckets = [| 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]

let m_probe_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"flip byte-delta capture per round (ms)"
       ~buckets:phase_buckets "engine_probe_ms")
let m_sweep_ms =
  lazy
    (Nsobs.Metrics.histogram
       ~help:"parallel sweep (dirty recompute + flip repair) per round (ms)"
       ~buckets:phase_buckets "engine_sweep_ms")
let m_reduce_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"serial deterministic reduction per round (ms)"
       ~buckets:phase_buckets "engine_reduce_ms")
let m_statics_build_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"statics store prefill (ms)"
       ~buckets:phase_buckets "statics_build_ms")
let m_current_round =
  lazy
    (Nsobs.Metrics.gauge ~help:"round currently executing" "engine_current_round")

(* Time a section into [h] when metrics are on; otherwise exactly the
   thunk (no clock reads, no lazy forcing). *)
let timed h f =
  if Nsobs.Metrics.enabled () then Nsobs.Metrics.timed (Lazy.force h) f else f ()

type round_record = {
  round : int;
  utilities : float array;
  projected : float array;
  turned_on : int list;
  turned_off : int list;
  secure_as : int;
  secure_isp : int;
  secure_stub : int;
}

type termination = Stable | Oscillation of { first_round : int } | Max_rounds

type result = {
  baseline : float array;
  initial_secure_as : int;
  initial_secure_isp : int;
  rounds : round_record list;
  final : State.t;
  termination : termination;
  dest_recomputed : int;
  dest_reused : int;
  statics_hits : int;
  statics_misses : int;
  statics_evictions : int;
  demotions : int;
  checkpoint_skips : int;
  statics_store : Route_static.t;
}

let sec_of bytes i = Bytes.unsafe_get bytes i = '\001'

(* Bit test over the incremental cache's packed secure-route flags
   ([Incremental.sec_bit], inlined locally: the call would not inline
   across modules on the non-flambda compiler and this runs per tie
   element in the flip probes). *)
let[@inline] bit_get bits i =
  Char.code (Bytes.unsafe_get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* Does node [i]'s tiebreak set offer a fully secure route, per the
   bit-packed forest flags [sec_bits]? Direct offset-range scan over
   the compact tie CSR — this runs per (destination, candidate) pair
   in the flip probes, so it must not allocate. *)
let tie_has_secure (info : Route_static.dest_info) sec_bits i =
  let tie_off = info.Route_static.tie_off in
  let tie = info.Route_static.tie in
  let hi = Nsutil.I32.unsafe_get tie_off (i + 1) in
  let rec loop k =
    k < hi && (bit_get sec_bits (Nsutil.I32.unsafe_get tie k) || loop (k + 1))
  in
  loop (Nsutil.I32.unsafe_get tie_off i)

(* Would flipping candidate [nc] change the routing tree of
   destination [d]? Conservative (may say yes needlessly), never
   wrongly says no; see the C.4 discussion in the interface. Split in
   two stages so the statics record — which a byte-budgeted store may
   have to recompute — is only fetched when the answer actually
   depends on it: [flip_cheap] decides from the graph, the round-start
   participation [secure] and the cached forest bits [sec_bits] alone,
   and returns [`Need_info] only when the tiebreak sets must be
   consulted. *)
let flip_cheap ~g ~secure ~sec_bits ~was_on ~d nc =
  if was_on then begin
    (* Turning off removes only nc's own participation (stub upgrades
       are sticky): routing can change only where nc currently holds
       or offers a fully secure route — including d = nc itself, for
       which sec_bits nc = secure nc = 1. *)
    if sec_of secure d && bit_get sec_bits nc then `Admit else `Skip
  end
  else begin
    let d_gets_secured =
      d = nc || (Graph.is_stub g d && (not (sec_of secure d)) && Csr.mem_row g.providers d nc)
    in
    if not (sec_of secure d || d_gets_secured) then `Skip
    else if d_gets_secured then `Admit
    else `Need_info
  end

(* The [`Need_info] continuation: does the flip reach [d]'s routing
   through a tiebreak set — the candidate's own, or (under the stub
   tiebreak) that of a stub customer the flip newly secures? *)
let flip_with_info ~cfg ~secure ~(info : Route_static.dest_info) ~sec_bits
    ~(stubs : Csr.t) nc =
  tie_has_secure info sec_bits nc
  || cfg.Config.stub_tiebreak
     && begin
          (* [nc]'s stub customers, straight off the CSR row: this
             scan runs per (destination, candidate) pair, so no boxed
             lists or closures. *)
          let off = stubs.Csr.offsets and dat = stubs.Csr.data in
          let hi = Nsutil.I32.unsafe_get off (nc + 1) in
          let rec loop k =
            k < hi
            && ((let s = Nsutil.I32.unsafe_get dat k in
                 (not (sec_of secure s))
                 && Route_static.reachable info s
                 && tie_has_secure info sec_bits s)
               || loop (k + 1))
          in
          loop (Nsutil.I32.unsafe_get off nc)
        end

(* The byte-level effect of flipping one candidate: participation
   bytes after the flip and at round start, for exactly the nodes the
   flip touches (the candidate plus any newly simplex stubs). Workers
   apply/revert these on their local byte copies, so the shared state
   is never mutated during a sweep. *)
type flip_delta = {
  after : (int * char * char) array;
  before : (int * char * char) array;
}

let probe_deltas state ~secure ~use_secp ~was_on candidates_arr =
  let snap nodes =
    Array.map (fun i -> (i, Bytes.get secure i, Bytes.get use_secp i)) nodes
  in
  Array.mapi
    (fun ci nc ->
      if was_on.(ci) then begin
        let nodes = [| nc |] in
        let before = snap nodes in
        State.disable state nc;
        let after = snap nodes in
        ignore (State.enable state nc);
        { after; before }
      end
      else begin
        let added = State.enable state nc in
        let nodes = Array.of_list (nc :: added) in
        let after = snap nodes in
        State.undo_enable state nc ~added;
        let before = snap nodes in
        { after; before }
      end)
    candidates_arr

let apply_delta bytes_sec bytes_secp edits =
  Array.iter
    (fun (i, s, u) ->
      Bytes.set bytes_sec i s;
      Bytes.set bytes_secp i u)
    edits

(* Per-worker sweep workspace. [ws_base] holds the base (round-start)
   forest of destination [ws_have_base], lazily (re)computed — under
   the delta kernel one base compute is amortized over every admitted
   candidate probe of that destination; [ws_flip] is the full kernel's
   probe target; [ws_sec]/[ws_secp] are the worker's private
   participation byte copies the probe deltas are applied to.
   [ws_bd] is the worker's statics builder: a byte-budgeted store
   streams missing records through it ({!Route_static.stream_get})
   with no per-miss allocation; [ws_rs] the incremental cache's
   store scratch; [ws_ci]/[ws_c] collect the destination's admitted
   (candidate, contribution) probes before they are published as one
   compact row. *)
type sweep_ws = {
  ws_base : Forest.scratch;
  ws_flip : Forest.scratch;
  ws_rep : Forest.repairer;
  ws_sec : Bytes.t;
  ws_secp : Bytes.t;
  ws_bd : Route_static.builder;
  ws_rs : Incremental.scratch;
  ws_ci : int array;
  ws_c : float array;
  mutable ws_have_base : int;  (* destination resident in ws_base; -1 = none *)
}

type checkpoint_spec = { path : string; every : int }

(* A checkpoint consumer that frames and persists the payload itself —
   the churn runner wraps engine progress into [Checkpoint.Churn]
   frames together with its epoch cursor, so one file covers the whole
   evolution run. *)
type snapshot_sink = { s_every : int; s_save : round:int -> payload:string -> unit }

(* The full cross-round memory of a run, as checkpointed every K
   rounds: the deployment state (with its mark snapshot), the
   oscillation table in insertion order, the round records and stats
   counters, and the incremental cache's entries. Restoring all of it
   makes a resumed run replay the uninterrupted run bit-for-bit —
   including the cache-hit counters. Serialized with [Marshal]
   (exact for floats/bytes); {!Checkpoint} authenticates the frame
   before any unmarshaling happens. *)
type progress = {
  p_round : int;
  p_state : string;
  p_seen : (int * string) list;
      (** oscillation table, round ascending ({!State.fp_serialize}
          fingerprints — the table never needs more than the
          deployment sets) *)
  p_rounds_rev : round_record list;
  p_recomputed : int;
  p_reused : int;
  p_baseline : float array;
  p_initial_secure_as : int;
  p_initial_secure_isp : int;
  p_inc : string;
  p_statics : string option;
      (** {!Route_static.snapshot} of the warm statics store at
          checkpoint time — resuming restores the store (resident
          records, eviction state {e and} hit/miss counters), so a
          resumed run reports statistics byte-identical to an
          uninterrupted one. *)
  p_statics_base : (int * int * int) option;
      (** (hits, misses, evictions) of the store when the original run
          started — the baseline the run's reported statics deltas are
          taken against, which the restored store's counters alone
          cannot recover. *)
}

(* SHA-256 over every input that determines results: config fields
   (except [workers]/[retries]/[flip_kernel]/[statics_kernel], which
   provably do not affect results — the parity suite holds
   full-vs-delta flip kernels and full-vs-delta statics maintenance
   bit-identical, and the statics byte budget is likewise excluded,
   since a bounded store only trades recompute for memory), topology,
   traffic weights and the initial deployment state. A checkpoint
   resumes only against the digest it was written under. *)
let input_digest (cfg : Config.t) statics ~weight ~state =
  let g = Route_static.graph statics in
  let ctx = Scrypto.Sha256.init () in
  let feed = Scrypto.Sha256.feed ctx in
  let ff x = feed (Printf.sprintf "%Lx;" (Int64.bits_of_float x)) in
  feed "sbgp-engine-ckpt-v1\n";
  ff cfg.theta;
  ff cfg.theta_off;
  feed (Config.utility_model_to_string cfg.model);
  feed (Printf.sprintf ";%b;" cfg.stub_tiebreak);
  feed
    (match cfg.tiebreak with
    | Bgp.Policy.Lowest_id -> "tb:lowest"
    | Bgp.Policy.Hashed seed -> Printf.sprintf "tb:hashed:%d" seed
    | Bgp.Policy.Ranked _ -> "tb:ranked");
  ff cfg.cp_fraction;
  feed
    (Printf.sprintf ";%d;%b;%b;%b;" cfg.max_rounds cfg.allow_turn_off cfg.disable_secp
       cfg.disable_simplex);
  ff cfg.theta_jitter;
  feed (Printf.sprintf "%d\ngraph\n" cfg.jitter_seed);
  feed (Asgraph.Graph_io.to_string g);
  feed "weights\n";
  Array.iter ff weight;
  feed "\nstate\n";
  feed (State.serialize state);
  Scrypto.Sha256.finalize ctx

let run_internal ~checkpoint ~sink ~faults ~digest ~resume_from (cfg : Config.t)
    statics ~weight ~state =
  let g = Route_static.graph statics in
  (* Churn-consistent resume: version-2 snapshots carry the warm
     statics store; rebind [statics] to the restored store so the
     resumed run serves exactly the residency — and reports exactly
     the hit/miss counters — the interrupted run would have. *)
  let statics, statics_restored, resumed_base =
    match resume_from with
    | Some p -> (
        match p.p_statics with
        | Some s -> (Route_static.of_snapshot g s, true, p.p_statics_base)
        | None -> (statics, false, p.p_statics_base))
    | None -> (statics, false, None)
  in
  let n = Graph.n g in
  let tiebreak = cfg.tiebreak in
  let workers = max 1 (min cfg.workers n) in
  (* Supervision for the engine's fan-outs: worker failures retry per
     slice ([Config.retries], capped-exponential backoff with jitter)
     and degrade to serial re-execution; [Config.task_timeout_ms] arms
     the hang watchdog on top. Re-running a slice recomputes identical
     per-destination values, so faults never change results. *)
  let sv =
    Pool.supervision ~retries:(max 0 cfg.retries) ~jitter_seed:cfg.jitter_seed
      ~timeout_ms:cfg.task_timeout_ms ?faults ()
  in
  (* Statics hit/miss/eviction counters are reported as per-run
     deltas. They are best-effort under concurrent workers (racy
     increments) and depend on the byte budget — diagnostics, not part
     of the deterministic result. *)
  let stats0 = Route_static.stats statics in
  (* The baseline the result's statics deltas are reported against: on
     a snapshot-restored resume it is the counters the *original* run
     started from, so the resumed result equals the uninterrupted
     one. *)
  let base_hits, base_misses, base_evictions =
    match resumed_base with
    | Some (h, m, e) -> (h, m, e)
    | None ->
        ( stats0.Route_static.hits,
          stats0.Route_static.misses,
          stats0.Route_static.evictions )
  in
  (* The store must serve tie rows sorted under this run's tiebreak
     (dropping stale entries if a previous run used another policy),
     and — when unbounded — be complete before any fan-out: workers
     then only read it. Under a byte budget the prefill is a no-op and
     workers fill their shards lazily through [get]. A snapshot-
     restored store already went through both at the original run's
     start (the digest pins the tiebreak), and re-running the prefill
     would skew the restored hit counters. *)
  if not statics_restored then
    timed m_statics_build_ms (fun () ->
        Nsobs.Trace.span ~cat:"engine" "statics.prefill" (fun () ->
            Route_static.ensure_tiebreak statics cfg.tiebreak;
            Route_static.ensure_all ~workers statics));
  (* Stub customers per ISP, for projection filters; packed into a CSR
     so the per-(destination, candidate) admission scan walks a flat
     row instead of a boxed list. *)
  let stubs =
    let acc = Array.make n [] in
    for i = 0 to n - 1 do
      if Graph.is_isp g i then
        Graph.iter_customers g i (fun c ->
            if Graph.is_stub g c then acc.(i) <- c :: acc.(i))
    done;
    Csr.of_rev_lists acc
  in
  (* Destination-chunk size for the engine's fan-outs: shard-stripe
     batches over the statics store (floored at the gadget-scale grain
     of 8, so tiny graphs stay in the calling domain). *)
  let grain = Route_static.batch_grain statics ~workers ~tasks:n in
  (* Baseline: utilities before deployment began (empty state). The
     parallel phase computes per-destination addend streams; the
     serial replay in destination order performs the same float
     additions as a sequential sweep, for any worker count.
     Processed in destination blocks so the transient boxed streams
     of at most one block are live at a time — at paper scale the
     full per-destination set would dwarf the statics store. *)
  let compute_baseline () =
    let zeros = Bytes.make n '\000' in
    let into = Array.make n 0.0 in
    let block = max 1 (min n 4096) in
    let pairs = Array.make block ([||], [||]) in
    let lo = ref 0 in
    while !lo < n do
      let len = min block (n - !lo) in
      let base = !lo in
      ignore
        (Pool.map_reduce_chunked_supervised sv ~workers ~tasks:len ~grain
           ~init:(fun () -> (Forest.make_scratch n, Route_static.make_builder n))
           ~task:(fun ((scratch, bd) as ws) i ->
             let d = base + i in
             let info = Route_static.stream_get statics bd d in
             Forest.compute info ~tiebreak ~secure:zeros ~use_secp:zeros ~weight
               scratch;
             pairs.(i) <- Utility.contribution_pairs cfg.model g info scratch ~weight;
             ignore ws)
           ~combine:(fun a _ -> a));
      (* Serial replay in ascending destination order — blocks ascend,
         so the addition order equals the unblocked serial sweep's. *)
      for i = 0 to len - 1 do
        Utility.add_pairs pairs.(i) ~into;
        pairs.(i) <- ([||], [||])
      done;
      lo := !lo + len
    done;
    into
  in
  (* Per-ISP threshold heterogeneity (Section 8.2 extension). *)
  let theta_factor =
    let rng = Nsutil.Prng.create ~seed:cfg.jitter_seed in
    Array.init n (fun _ ->
        if cfg.theta_jitter = 0.0 then 1.0
        else
          Float.max 0.0
            (1.0 +. (cfg.theta_jitter *. ((2.0 *. Nsutil.Prng.float rng 1.0) -. 1.0))))
  in
  (* Oscillation detection: hash-bucketed fingerprints (deployment
     sets only, n/4 bytes each — not full state copies) of every
     visited state, with exact comparison on hash hits. The
     insertion-order list serializes the table for checkpoints;
     replaying insertions rebuilds identical buckets. *)
  let seen_states : (int, (int * State.fingerprint) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let seen_order = ref [] in
  let insert_seen round fp =
    let signature = State.fp_signature fp in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen_states signature) in
    Hashtbl.replace seen_states signature ((round, fp) :: bucket);
    seen_order := (round, fp) :: !seen_order
  in
  let inc = Incremental.create statics in
  let recomputed = ref 0 in
  let reused = ref 0 in
  let rounds = ref [] in
  let round = ref 0 in
  (* Degradation-ladder state (process-local diagnostics, not part of
     checkpoints: a fault-free resumed run re-derives zero of both).
     [demoted.(d) = '\001'] pins destination [d] to the full flip
     kernel for the rest of the run — bit-identical by the kernel
     parity contract, so a demotion changes robustness, never
     results. *)
  let demoted = Bytes.make n '\000' in
  let demotions = ref 0 in
  let checkpoint_skips = ref 0 in
  let demote d reason =
    if Bytes.get demoted d <> '\001' then begin
      Bytes.set demoted d '\001';
      incr demotions;
      if Nsobs.Metrics.enabled () then Nsobs.Metrics.inc (Lazy.force m_demotions);
      if Nsobs.Journal.enabled () then
        Nsobs.Journal.event "demotion"
          [ ("dest", Nsobs.Journal.Int d); ("reason", Nsobs.Journal.Str reason) ];
      Nsutil.Warnings.emit
        (Printf.sprintf
           "sbgp: engine: demoting destination %d to the full kernels (%s)" d reason)
    end
  in
  (* Fresh start or checkpoint restore. *)
  let baseline, initial_secure_as, initial_secure_isp, state =
    match resume_from with
    | None ->
        let baseline = Nsobs.Trace.span ~cat:"engine" "engine.baseline" compute_baseline in
        let init_as = State.secure_count state in
        let init_isp = State.secure_isp_count state in
        insert_seen 0 (State.fingerprint state);
        (baseline, init_as, init_isp, state)
    | Some p ->
        let state = State.restore g p.p_state in
        List.iter (fun (r, s) -> insert_seen r (State.fp_restore s)) p.p_seen;
        Incremental.restore inc p.p_inc;
        round := p.p_round;
        rounds := p.p_rounds_rev;
        recomputed := p.p_recomputed;
        reused := p.p_reused;
        (p.p_baseline, p.p_initial_secure_as, p.p_initial_secure_isp, state)
  in
  (* Metrics report what THIS process did: a resumed run publishes
     deltas over the restored counters, not the checkpoint's totals. *)
  let recomputed0 = !recomputed and reused0 = !reused in
  if Nsobs.Journal.enabled () then
    Nsobs.Journal.event
      (if resume_from = None then "run_start" else "run_resume")
      [
        ("n", Nsobs.Journal.Int n);
        ("workers", Nsobs.Journal.Int workers);
        ("round", Nsobs.Journal.Int !round);
        ("max_rounds", Nsobs.Journal.Int cfg.max_rounds);
      ];
  let remember round =
    let signature = State.signature state in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen_states signature) in
    match List.find_opt (fun (_, old) -> State.fp_matches old state) bucket with
    | Some (first_round, _) -> Some first_round
    | None ->
        insert_seen round (State.fingerprint state);
        None
  in
  let write_checkpoint () =
    let due every = !round mod max 1 every = 0 in
    let checkpoint_due =
      match checkpoint with Some { every; _ } -> due every | None -> false
    in
    let sink_due =
      match sink with Some { s_every; _ } -> due s_every | None -> false
    in
    if checkpoint_due || sink_due then begin
      (* Checkpoint-boundary rung of the degradation ladder: validate
         every resident statics record before snapshotting it, so a
         corrupt record can neither persist into the snapshot nor keep
         serving the run — its destination recomputes lazily (the full
         statics kernel for that destination). *)
      if cfg.degrade then
        List.iter
          (fun (d, reason) -> demote d ("invalid statics record: " ^ reason))
          (Route_static.revalidate statics);
      let p =
        {
          p_round = !round;
          p_state = State.serialize state;
          p_seen = List.rev_map (fun (r, fp) -> (r, State.fp_serialize fp)) !seen_order;
          p_rounds_rev = !rounds;
          p_recomputed = !recomputed;
          p_reused = !reused;
          p_baseline = baseline;
          p_initial_secure_as = initial_secure_as;
          p_initial_secure_isp = initial_secure_isp;
          p_inc = Incremental.snapshot inc;
          p_statics = Some (Route_static.snapshot statics);
          p_statics_base = Some (base_hits, base_misses, base_evictions);
        }
      in
      let payload = Marshal.to_string p [] in
      (match checkpoint with
      | Some { path; _ } when checkpoint_due -> (
          try Checkpoint.write ?faults ~path ~digest ~round:!round payload with
          | Checkpoint.Error (Checkpoint.Io m) when cfg.degrade ->
              (* The tmp+rename protocol left the previous snapshot
                 intact; losing one snapshot interval is strictly
                 better than losing the run. *)
              incr checkpoint_skips;
              if Nsobs.Metrics.enabled () then
                Nsobs.Metrics.inc (Lazy.force m_checkpoint_skips);
              if Nsobs.Journal.enabled () then
                Nsobs.Journal.event "checkpoint_skip"
                  [ ("round", Nsobs.Journal.Int !round);
                    ("error", Nsobs.Journal.Str m) ];
              Nsutil.Warnings.emit
                (Printf.sprintf
                   "sbgp: engine: checkpoint write failed (%s); continuing on the \
                    previous snapshot"
                   m))
      | _ -> ());
      match sink with
      | Some { s_save; _ } when sink_due -> s_save ~round:!round ~payload
      | _ -> ()
    end
  in
  let termination = ref Max_rounds in
  let continue = ref true in
  while !continue && !round < cfg.max_rounds do
    incr round;
    let round_args =
      if Nsobs.Trace.enabled () then Some [ ("round", string_of_int !round) ] else None
    in
    let round_t0 =
      if Nsobs.Metrics.enabled () || Nsobs.Journal.enabled () then
        Nsobs.Trace.now_us ()
      else 0.0
    in
    if Nsobs.Metrics.enabled () then
      Nsobs.Metrics.set (Lazy.force m_current_round) (float_of_int !round);
    if Nsobs.Journal.enabled () then
      Nsobs.Journal.event "round_start" [ ("round", Nsobs.Journal.Int !round) ];
    (* The span covers the whole round body — through the checkpoint,
       if one is due — so traced wall time decomposes into rounds. *)
    Nsobs.Trace.span ~cat:"engine" ?args:round_args "engine.round" @@ fun () ->
    let secure = State.secure_bytes state in
    let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
    Incremental.begin_round inc state;
    (* Candidates: insecure ISPs may turn on; under the incoming
       model with turn-off allowed, secure ISPs may turn off. *)
    let candidates = ref [] in
    for i = n - 1 downto 0 do
      if Graph.is_isp g i && not (State.pinned state i) then begin
        if State.full state i then begin
          if cfg.allow_turn_off && cfg.model = Config.Incoming then
            candidates := i :: !candidates
        end
        else candidates := i :: !candidates
      end
    done;
    let candidates = !candidates in
    let candidates_arr = Array.of_list candidates in
    let is_candidate = Array.make n false in
    List.iter (fun nc -> is_candidate.(nc) <- true) candidates;
    let was_on = Array.map (fun nc -> State.full state nc) candidates_arr in
    let deltas =
      timed m_probe_ms (fun () ->
          Nsobs.Trace.span ~cat:"engine" "engine.probe" (fun () ->
              probe_deltas state ~secure ~use_secp ~was_on candidates_arr))
    in
    (* Round-start snapshots: workers get private copies to flip. *)
    let sec0 = Bytes.copy secure in
    let secp0 = Bytes.copy use_secp in
    let model = cfg.model in
    let kernel = cfg.flip_kernel in
    (* The repair frontier seeds: exactly the nodes each candidate's
       byte delta touches. *)
    let seed_nodes =
      Array.map (fun dl -> Array.map (fun (i, _, _) -> i) dl.after) deltas
    in
    let ncand = Array.length candidates_arr in
    (* Per-destination probe rows: slot [d] holds the destination's
       admitted (candidate index, changed contribution) pairs, sorted
       by candidate index (the sweep admits in candidate order).
       Sparse on purpose — the dense (destination × candidate) buffer
       this replaces is n × ncand floats, ~1.5 GB at paper scale,
       while admitted probes are a thin sliver of that. Workers write
       disjoint slots, one plain assignment per destination. *)
    let rows : (int array * float array) option array = Array.make n None in
    (* Parallel sweep over destinations: recompute dirty forests
       (updating the cache) and evaluate the candidate flips whose
       routing tree actually changes. Dynamically scheduled — workers
       claim destination chunks off an atomic counter, so a
       destination with many admitted probes delays only the worker
       that drew it. All sweep outputs are per-destination slots and
       the accumulators are ignored, so the nondeterministic
       chunk→worker assignment is result-invisible; the serial
       reduction below stays in destination order. *)
    let run_sweep () =
    ignore
      (Pool.map_reduce_dynamic_supervised sv ~workers ~tasks:n ~grain
         ~init:(fun () ->
           {
             ws_base = Forest.make_scratch n;
             ws_flip = Forest.make_scratch n;
             ws_rep = Forest.make_repairer n;
             ws_sec = Bytes.copy sec0;
             ws_secp = Bytes.copy secp0;
             ws_bd = Route_static.make_builder n;
             ws_rs = Incremental.make_scratch inc;
             ws_ci = Array.make (max 1 ncand) 0;
             ws_c = Array.make (max 1 ncand) 0.0;
             ws_have_base = -1;
           })
         ~task:(fun ws d ->
           (* The statics record is fetched lazily: a clean destination
              whose probes all resolve from the graph and the cached
              forest bits never touches the store — which, under a
              byte budget, means never recomputing an evicted row.
              [stream_get] may return a transient record (valid until
              this worker's next fetch, i.e. for the rest of this
              task), so the fetch must happen at most once per task. *)
           let info_slot = ref None in
           let fetch_info () =
             match !info_slot with
             | Some info -> info
             | None ->
                 let info = Route_static.stream_get statics ws.ws_bd d in
                 info_slot := Some info;
                 info
           in
           let e =
             if Incremental.is_dirty inc d then begin
               let info = fetch_info () in
               Forest.compute info ~tiebreak ~secure:ws.ws_sec ~use_secp:ws.ws_secp
                 ~weight ws.ws_base;
               ws.ws_have_base <- d;
               let pairs = Utility.contribution_pairs model g info ws.ws_base ~weight in
               Incremental.store inc ~scratch:ws.ws_rs d
                 ~sec_path:ws.ws_base.Forest.sec_path ~pairs;
               Incremental.entry inc d
             end
             else Incremental.entry inc d
           in
           let count = ref 0 in
           Array.iteri
             (fun ci nc ->
               let admit =
                 match
                   flip_cheap ~g ~secure:sec0 ~sec_bits:e.Incremental.sec_bits
                     ~was_on:was_on.(ci) ~d nc
                 with
                 | `Admit -> true
                 | `Skip -> false
                 | `Need_info ->
                     flip_with_info ~cfg ~secure:sec0 ~info:(fetch_info ())
                       ~sec_bits:e.Incremental.sec_bits ~stubs nc
               in
               if admit then begin
                 let info = fetch_info () in
                 (* The ladder pins demoted destinations to the full
                    kernel; identical values either way (kernel
                    parity), so a demotion is result-invisible. *)
                 let kernel =
                   if Bytes.unsafe_get demoted d = '\001' then Config.Flip_full
                   else kernel
                 in
                 let c =
                   match kernel with
                   | Config.Flip_full ->
                       apply_delta ws.ws_sec ws.ws_secp deltas.(ci).after;
                       Forest.compute info ~tiebreak ~secure:ws.ws_sec
                         ~use_secp:ws.ws_secp ~weight ws.ws_flip;
                       let c =
                         Utility.contribution model g info ws.ws_flip ~weight nc
                       in
                       apply_delta ws.ws_sec ws.ws_secp deltas.(ci).before;
                       c
                   | Config.Flip_delta ->
                       (* One base forest per destination, amortized
                          over its admitted probes; clean destinations
                          compute it lazily on the first hit (the
                          cache stores addend streams, not forests). *)
                       if ws.ws_have_base <> d then begin
                         Forest.compute info ~tiebreak ~secure:ws.ws_sec
                           ~use_secp:ws.ws_secp ~weight ws.ws_base;
                         ws.ws_have_base <- d
                       end;
                       apply_delta ws.ws_sec ws.ws_secp deltas.(ci).after;
                       Forest.repair info ~tiebreak ~secure:ws.ws_sec
                         ~use_secp:ws.ws_secp ~weight ~seeds:seed_nodes.(ci)
                         ws.ws_base ws.ws_rep;
                       let c =
                         Utility.contribution model g info ws.ws_base ~weight nc
                       in
                       Forest.undo ws.ws_base ws.ws_rep;
                       apply_delta ws.ws_sec ws.ws_secp deltas.(ci).before;
                       c
                 in
                 ws.ws_ci.(!count) <- ci;
                 ws.ws_c.(!count) <- c;
                 incr count
               end)
             candidates_arr;
           rows.(d) <-
             (if !count = 0 then None
              else Some (Array.sub ws.ws_ci 0 !count, Array.sub ws.ws_c 0 !count)))
         ~combine:(fun a _ -> a))
    in
    (* Sweep rung of the degradation ladder: when supervision fails
       beyond the retry budget and degradation is on, demote the dead
       destinations to the full kernels and re-run the sweep (at most
       twice) instead of crashing. Re-running overwrites the same
       per-destination slots with the same values — idempotent by
       construction — so a rescued sweep is bit-identical to an
       undisturbed one. *)
    let rec sweep_ladder attempt =
      try run_sweep () with
      | Pool.Supervision_failed fs when cfg.degrade && attempt < 2 ->
          List.iter
            (fun (f : Pool.failure) ->
              if f.Pool.index >= 0 && f.Pool.index < n then
                demote f.Pool.index ("supervision failure: " ^ f.Pool.error))
            fs;
          Array.fill rows 0 n None;
          sweep_ladder (attempt + 1)
    in
    timed m_sweep_ms (fun () ->
        Nsobs.Trace.span ~cat:"engine" "engine.sweep" (fun () -> sweep_ladder 0));
    let dc = Incremental.dirty_count inc in
    recomputed := !recomputed + dc;
    reused := !reused + (n - dc);
    (* Deterministic serial reduction, in destination order: replay
       the cached addend streams and fold the projections. *)
    let utilities = Array.make n 0.0 in
    let projected = Array.make n 0.0 in
    let cand_slot = Array.map (fun nc -> Incremental.isp_slot inc nc) candidates_arr in
    timed m_reduce_ms (fun () ->
    Nsobs.Trace.span ~cat:"engine" "engine.reduce" (fun () ->
    for d = 0 to n - 1 do
      let e = Incremental.entry inc d in
      Incremental.add_pairs e ~into:utilities;
      (* Unchanged (destination, candidate) slots take the cached base
         contribution; the destination's sparse probe row is sorted by
         candidate index, so one merge cursor walks it while ci scans
         all candidates — the same per-destination candidate order as
         the sweep, and the same float additions as the dense buffer
         this replaces. *)
      (match Array.unsafe_get rows d with
      | None ->
          for ci = 0 to ncand - 1 do
            let nc = Array.unsafe_get candidates_arr ci in
            projected.(nc) <-
              projected.(nc)
              +. Incremental.row_value e (Array.unsafe_get cand_slot ci)
          done
      | Some (cis, cs) ->
          let len = Array.length cis in
          let p = ref 0 in
          for ci = 0 to ncand - 1 do
            let nc = Array.unsafe_get candidates_arr ci in
            let c =
              if !p < len && Array.unsafe_get cis !p = ci then begin
                let c = Array.unsafe_get cs !p in
                incr p;
                c
              end
              else Incremental.row_value e (Array.unsafe_get cand_slot ci)
            in
            projected.(nc) <- projected.(nc) +. c
          done)
    done;
    (* Non-candidates project their current utility. *)
    for i = 0 to n - 1 do
      if not is_candidate.(i) then projected.(i) <- utilities.(i)
    done));
    (* Simultaneous flips per Eq. 3. *)
    let turned_on = ref [] in
    let turned_off = ref [] in
    Nsobs.Trace.span ~cat:"engine" "engine.decide" (fun () ->
    List.iter
      (fun nc ->
        let threshold =
          theta_factor.(nc)
          *. (if State.full state nc then cfg.theta_off else cfg.theta)
        in
        if projected.(nc) > (1.0 +. threshold) *. utilities.(nc) then begin
          if State.full state nc then turned_off := nc :: !turned_off
          else turned_on := nc :: !turned_on
        end)
      candidates;
    List.iter (fun nc -> ignore (State.enable state nc)) !turned_on;
    List.iter (fun nc -> State.disable state nc) !turned_off);
    let record =
      {
        round = !round;
        utilities;
        projected;
        turned_on = List.rev !turned_on;
        turned_off = List.rev !turned_off;
        secure_as = State.secure_count state;
        secure_isp = State.secure_isp_count state;
        secure_stub = State.secure_stub_count state;
      }
    in
    rounds := record :: !rounds;
    if Nsobs.Metrics.enabled () then begin
      Nsobs.Metrics.inc (Lazy.force m_rounds);
      let on = List.length record.turned_on and off = List.length record.turned_off in
      Nsobs.Metrics.add (Lazy.force m_flips_on) on;
      Nsobs.Metrics.add (Lazy.force m_flips_off) off;
      Nsobs.Metrics.observe (Lazy.force m_flips_hist) (float_of_int (on + off));
      Nsobs.Metrics.observe (Lazy.force m_dirty_hist) (float_of_int dc);
      Nsobs.Metrics.observe (Lazy.force m_round_ms)
        ((Nsobs.Trace.now_us () -. round_t0) /. 1000.0)
    end;
    if Nsobs.Journal.enabled () then
      Nsobs.Journal.event "round_end"
        [
          ("round", Nsobs.Journal.Int !round);
          ("on", Nsobs.Journal.Int (List.length record.turned_on));
          ("off", Nsobs.Journal.Int (List.length record.turned_off));
          ("dirty", Nsobs.Journal.Int dc);
          ("secure_as", Nsobs.Journal.Int record.secure_as);
          ("wall_ms", Nsobs.Journal.Float ((Nsobs.Trace.now_us () -. round_t0) /. 1000.0));
        ];
    if !turned_on = [] && !turned_off = [] then begin
      termination := Stable;
      continue := false
    end
    else begin
      match remember !round with
      | Some first_round ->
          termination := Oscillation { first_round };
          continue := false
      | None -> ()
    end;
    (* Snapshot only when another round is coming: a checkpoint always
       represents a run with work left to do, so a resume re-enters
       the loop exactly where the interrupted run would have. *)
    if !continue && !round < cfg.max_rounds then write_checkpoint ()
  done;
  let stats1 = Route_static.stats statics in
  if Nsobs.Metrics.enabled () then begin
    (* Store counters are racy under concurrent workers (diagnostics,
       not results); clamp so a lost increment can't make a "delta"
       negative and trip the counter invariant. *)
    let delta a b = max 0 (a - b) in
    Nsobs.Metrics.add (Lazy.force m_statics_hits)
      (delta stats1.Route_static.hits stats0.Route_static.hits);
    Nsobs.Metrics.add (Lazy.force m_statics_misses)
      (delta stats1.Route_static.misses stats0.Route_static.misses);
    Nsobs.Metrics.add (Lazy.force m_statics_evictions)
      (delta stats1.Route_static.evictions stats0.Route_static.evictions);
    Nsobs.Metrics.set (Lazy.force m_statics_bytes)
      (float_of_int stats1.Route_static.cached_bytes);
    Nsobs.Metrics.add (Lazy.force m_dest_recomputed) (delta !recomputed recomputed0);
    Nsobs.Metrics.add (Lazy.force m_dest_reused) (delta !reused reused0)
  end;
  if Nsobs.Journal.enabled () then
    Nsobs.Journal.event "run_end"
      [
        ( "termination",
          Nsobs.Journal.Str
            (match !termination with
            | Stable -> "stable"
            | Oscillation { first_round } ->
                Printf.sprintf "oscillation@%d" first_round
            | Max_rounds -> "max_rounds") );
        ("rounds", Nsobs.Journal.Int !round);
        (* Statics store deltas for this run (hit/miss/eviction). *)
        ("statics_hits", Nsobs.Journal.Int (stats1.Route_static.hits - base_hits));
        ( "statics_misses",
          Nsobs.Journal.Int (stats1.Route_static.misses - base_misses) );
        ( "statics_evictions",
          Nsobs.Journal.Int (stats1.Route_static.evictions - base_evictions) );
        ("demotions", Nsobs.Journal.Int !demotions);
        ("checkpoint_skips", Nsobs.Journal.Int !checkpoint_skips);
      ];
  {
    baseline;
    initial_secure_as;
    initial_secure_isp;
    rounds = List.rev !rounds;
    final = state;
    termination = !termination;
    dest_recomputed = !recomputed;
    dest_reused = !reused;
    statics_hits = stats1.Route_static.hits - base_hits;
    statics_misses = stats1.Route_static.misses - base_misses;
    statics_evictions = stats1.Route_static.evictions - base_evictions;
    demotions = !demotions;
    checkpoint_skips = !checkpoint_skips;
    statics_store = statics;
  }

let null_digest = String.make 32 '\000'

let resolve_faults = function
  | Some _ as f -> f
  | None -> Nsutil.Faults.of_env ()

let run ?checkpoint ?sink ?faults (cfg : Config.t) statics ~weight ~state =
  let faults = resolve_faults faults in
  (* The input digest walks the whole topology; only pay for it when
     snapshots will actually be written. Sink payloads are framed (and
     digest-bound) by the sink's owner. *)
  let digest =
    match checkpoint with
    | None -> null_digest
    | Some _ -> input_digest cfg statics ~weight ~state
  in
  Nsobs.Trace.span ~cat:"engine" "engine.run" (fun () ->
      run_internal ~checkpoint ~sink ~faults ~digest ~resume_from:None cfg statics
        ~weight ~state)

let resume ~from ?checkpoint ?sink ?faults (cfg : Config.t) statics ~weight ~state =
  let faults = resolve_faults faults in
  let digest = input_digest cfg statics ~weight ~state in
  let frame = Checkpoint.load_exn ~path:from ~digest in
  (match frame.Checkpoint.kind with
  | Checkpoint.Engine -> ()
  | Checkpoint.Churn ->
      (* A churn-run snapshot (kind code 1) belongs to the evolution
         runner, not the engine — reject it with the typed error the
         CLI turns into a hint. *)
      raise (Checkpoint.Error (Checkpoint.Unsupported_kind 1)));
  (* The progress payload changed layout at frame version 3 (packed
     incremental-cache entries, fingerprint oscillation table);
     [Marshal] encodes layout, not meaning, so unmarshaling an older
     payload under the current types would be memory-unsafe. Reject
     with the typed error instead. *)
  if frame.Checkpoint.version < 3 then
    raise (Checkpoint.Error (Checkpoint.Unsupported_version frame.Checkpoint.version));
  let p = (Marshal.from_string frame.Checkpoint.payload 0 : progress) in
  if p.p_round <> frame.Checkpoint.round then
    raise (Checkpoint.Error Checkpoint.Corrupt);
  Nsobs.Trace.span ~cat:"engine" "engine.run" (fun () ->
      run_internal ~checkpoint ~sink ~faults ~digest ~resume_from:(Some p) cfg statics
        ~weight ~state)

let resume_of_payload ~payload ?checkpoint ?sink ?faults (cfg : Config.t) statics
    ~weight ~state =
  let faults = resolve_faults faults in
  let digest =
    match checkpoint with
    | None -> null_digest
    | Some _ -> input_digest cfg statics ~weight ~state
  in
  let p = (Marshal.from_string payload 0 : progress) in
  Nsobs.Trace.span ~cat:"engine" "engine.run" (fun () ->
      run_internal ~checkpoint ~sink ~faults ~digest ~resume_from:(Some p) cfg statics
        ~weight ~state)

let secure_fraction result kind =
  let state = result.final in
  let g = State.graph state in
  let n = Graph.n g in
  match kind with
  | `As -> float_of_int (State.secure_count state) /. float_of_int (max 1 n)
  | `Isp ->
      let isps = Graph.count_class g Asgraph.As_class.Isp in
      float_of_int (State.secure_isp_count state) /. float_of_int (max 1 isps)

let rounds_run result = List.length result.rounds

let cache_hit_rate result =
  let total = result.dest_recomputed + result.dest_reused in
  if total = 0 then 0.0 else float_of_int result.dest_reused /. float_of_int total
