type utility_model = Outgoing | Incoming

type flip_kernel = Flip_full | Flip_delta

type t = {
  theta : float;
  theta_off : float;
  model : utility_model;
  stub_tiebreak : bool;
  tiebreak : Bgp.Policy.tiebreak;
  cp_fraction : float;
  max_rounds : int;
  allow_turn_off : bool;
  disable_secp : bool;
  disable_simplex : bool;
  theta_jitter : float;
  jitter_seed : int;
  workers : int;
  retries : int;
  flip_kernel : flip_kernel;
  statics_kernel : Bgp.Route_static.kernel;
  task_timeout_ms : int;
  degrade : bool;
}

let flip_kernel_of_env () =
  match Sys.getenv_opt "SBGP_FLIP_KERNEL" with
  | None | Some "" -> Flip_delta
  | Some s -> (
      match String.lowercase_ascii s with
      | "delta" -> Flip_delta
      | "full" -> Flip_full
      | _ ->
          Printf.eprintf
            "sbgp: warning: SBGP_FLIP_KERNEL=%s is neither \"full\" nor \
             \"delta\"; using delta\n\
             %!"
            s;
          Flip_delta)

let default =
  {
    theta = 0.05;
    theta_off = 0.05;
    model = Outgoing;
    stub_tiebreak = true;
    tiebreak = Bgp.Policy.Hashed 0x5b9d;
    cp_fraction = 0.10;
    max_rounds = 100;
    allow_turn_off = false;
    disable_secp = false;
    disable_simplex = false;
    theta_jitter = 0.0;
    jitter_seed = 1;
    workers = Parallel.Pool.default_workers ();
    retries = 2;
    flip_kernel = flip_kernel_of_env ();
    statics_kernel = Bgp.Route_static.kernel_of_env ();
    task_timeout_ms =
      Nsutil.Env.int_var ~name:"SBGP_TASK_TIMEOUT_MS" ~min:0 ~default:0 ();
    degrade = false;
  }

let incoming = { default with model = Incoming; allow_turn_off = true }

let utility_model_to_string = function
  | Outgoing -> "outgoing"
  | Incoming -> "incoming"

let flip_kernel_to_string = function
  | Flip_full -> "full"
  | Flip_delta -> "delta"

let flip_kernel_of_string s =
  match String.lowercase_ascii s with
  | "full" -> Some Flip_full
  | "delta" -> Some Flip_delta
  | _ -> None
