(** Simulation parameters (Sections 3.2-3.3, 6.2). *)

type utility_model =
  | Outgoing  (** Eq. 1: traffic forwarded *to* customers *)
  | Incoming  (** Eq. 2: traffic received *from* customers *)

type flip_kernel =
  | Flip_full
      (** probe each admitted candidate with a full O(t·N)
          {!Bgp.Forest.compute} (the PR 1–3 behavior; kept as a
          reference/fallback path) *)
  | Flip_delta
      (** probe with {!Bgp.Forest.repair}: start from the
          destination's base forest and re-decide only the frontier
          the flip actually reaches — bit-identical results, an order
          of magnitude less work per probe *)

type t = {
  theta : float;  (** deployment threshold of Eq. 3, e.g. 0.05 *)
  theta_off : float;  (** threshold for disabling (same rule, flip down) *)
  model : utility_model;
  stub_tiebreak : bool;  (** do simplex stubs apply the SecP step (§6.7) *)
  tiebreak : Bgp.Policy.tiebreak;
  cp_fraction : float;  (** x: share of traffic originated by the CPs *)
  max_rounds : int;
  allow_turn_off : bool;
      (** consider disabling S*BGP; pointless under [Outgoing]
          (Theorem 6.2) and on by default under [Incoming] *)
  disable_secp : bool;
      (** ablation: security never influences route selection
          (removes the Section 2.2.2 requirement) *)
  disable_simplex : bool;
      (** ablation: secure ISPs do not upgrade their stub customers
          (removes simplex S*BGP, Section 2.2.1) *)
  theta_jitter : float;
      (** Section 8.2 extension: per-ISP heterogeneity in the
          deployment threshold. Each ISP i uses
          theta_i = theta * (1 + theta_jitter * u_i) with
          u_i ~ U[-1, 1] drawn from [jitter_seed]; 0 recovers the
          paper's uniform-theta sweeps. *)
  jitter_seed : int;
  workers : int;
      (** domains for the per-destination engine sweeps
          ({!Parallel.Pool}); results are identical for every value.
          Defaults to [Parallel.Pool.default_workers ()] (the
          [SBGP_WORKERS] environment variable when set). *)
  retries : int;
      (** per-slice retry budget for the supervised engine sweeps
          (see {!Parallel.Pool.supervision}); like [workers], has no
          effect on results — only on whether a faulty run survives. *)
  flip_kernel : flip_kernel;
      (** which candidate-probe kernel the sweep uses; results are
          bit-identical for both (enforced by the parity suite), so —
          like [workers] — it is excluded from checkpoint digests.
          Defaults to [Flip_delta], overridable via the
          [SBGP_FLIP_KERNEL] environment variable ([full] or
          [delta]). *)
  statics_kernel : Bgp.Route_static.kernel;
      (** how the per-destination statics store is maintained across
          topology churn (the Section 8.4 evolution epochs):
          [Full] rebuilds every destination each epoch, [Delta]
          migrates the warm store through
          {!Bgp.Route_static.rebase}, repairing only destinations the
          churn reaches. Bit-identical results (enforced by the churn
          differential in the parity suite), so — like [flip_kernel] —
          it is excluded from checkpoint digests. Defaults to [Delta],
          overridable via [SBGP_STATICS_KERNEL] ([full] or [delta])
          or [--statics-kernel]. *)
  task_timeout_ms : int;
      (** watchdog deadline for the supervised engine sweeps
          ({!Parallel.Pool.supervision}): a worker slice making no
          progress for this long is cancelled and re-executed. [0]
          (the default) disables the watchdog. Like [workers] and
          [retries], has no effect on results — only on whether a
          hung run recovers — so it is excluded from checkpoint
          digests. Defaults to [SBGP_TASK_TIMEOUT_MS] (milliseconds)
          when set. *)
  degrade : bool;
      (** graceful-degradation ladder (default off): on repeated
          supervision failure of the sweep, or on a CSR invariant
          violation in a statics record, the engine demotes the
          delta flip/statics kernels to their full counterparts for
          the affected destinations and continues — recording the
          demotions in {!Engine.result} — instead of crashing. Off,
          those conditions raise as before. Bit-identical results
          either way (the full kernels are the reference), so it is
          excluded from checkpoint digests. *)
}

val default : t
(** The Section 5 case-study parameters: θ = 5%, outgoing utility,
    stubs break ties, hashed tie break, x = 10%. *)

val incoming : t
(** [default] switched to the incoming-utility model with turn-off
    enabled. *)

val utility_model_to_string : utility_model -> string

val flip_kernel_to_string : flip_kernel -> string

val flip_kernel_of_string : string -> flip_kernel option
(** Case-insensitive ["full"] / ["delta"]; [None] otherwise. *)
