module Graph = Asgraph.Graph
module Route_static = Bgp.Route_static

type entry = {
  sec_path : Bytes.t;
  pairs : int array * float array;
  row : float array;
}

type t = {
  statics : Route_static.t;
  dirty : Route_static.Dirty.t;
  entries : entry option array;
  isp_index : int array;
  isp_count : int;
  mutable pending_churn : int list;
      (* destinations whose *static* info changed under a topology
         delta (same node count), to be force-marked dirty at the next
         [begin_round] on top of the state diff *)
}

let create statics =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let isp_index = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Graph.is_isp g i then begin
      isp_index.(i) <- !count;
      incr count
    end
  done;
  {
    statics;
    dirty = Route_static.Dirty.create statics;
    entries = Array.make n None;
    isp_index;
    isp_count = !count;
    pending_churn = [];
  }

let note_churn t ~changed =
  if Array.length t.entries <> Graph.n (Route_static.graph t.statics) then
    invalid_arg "Incremental.note_churn: cache does not match the store's graph";
  t.pending_churn <- List.rev_append changed t.pending_churn

let begin_round t state =
  if State.marked state then begin
    Route_static.Dirty.reset t.dirty;
    Route_static.Dirty.invalidate t.dirty
      ~changed:(State.changed_since_mark state)
      ~secure:(State.secure_bytes state)
  end;
  (* Topology churn marks unconditionally: the destination's statics
     changed, so its forest can change regardless of the state diff. *)
  if t.pending_churn <> [] then begin
    List.iter (fun d -> Route_static.Dirty.mark t.dirty d) t.pending_churn;
    t.pending_churn <- []
  end;
  State.mark state

let is_dirty t d = Route_static.Dirty.is_dirty t.dirty d
let dirty_count t = Route_static.Dirty.dirty_count t.dirty

let store t d ~sec_path ~pairs =
  (* [row] regroups the addend stream into one total per node so a
     candidate's base contribution is an O(1) lookup; contributions
     only ever land on ISPs (stubs and CPs have no customer edges), so
     the dense row is over compact ISP slots. *)
  let row = Array.make t.isp_count 0.0 in
  let idx, v = pairs in
  for k = 0 to Array.length idx - 1 do
    let s = t.isp_index.(idx.(k)) in
    if s >= 0 then row.(s) <- row.(s) +. v.(k)
  done;
  t.entries.(d) <- Some { sec_path = Bytes.copy sec_path; pairs; row }

let entry t d =
  match t.entries.(d) with
  | Some e -> e
  | None -> invalid_arg "Incremental.entry: destination never computed"

(* Checkpointing: the cache's only cross-round memory is the entries
   array (dirtiness is re-derived each round from the state's mark
   diff). Snapshotting it lets a resumed run replay exactly the cache
   hits the uninterrupted run would have had. *)
let snapshot t = Marshal.to_string t.entries []

let restore t s =
  let entries = (Marshal.from_string s 0 : entry option array) in
  if Array.length entries <> Array.length t.entries then
    invalid_arg "Incremental.restore: snapshot does not match the topology";
  Array.blit entries 0 t.entries 0 (Array.length entries)

let base_contribution t e nc =
  let s = t.isp_index.(nc) in
  if s < 0 then 0.0 else e.row.(s)

let isp_slot t nc = t.isp_index.(nc)

let row_value e s = if s < 0 then 0.0 else Array.unsafe_get e.row s
