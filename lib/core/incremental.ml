module Graph = Asgraph.Graph
module Route_static = Bgp.Route_static
module I32 = Nsutil.I32
module F64 = Nsutil.F64

(* Same-unit Bigarray accessors: [I32]/[F64] getters do not inline
   across modules on the non-flambda compiler, and [add_pairs] runs
   once per destination per round. *)
let[@inline] i32_get (a : I32.t) k = Int32.to_int (Bigarray.Array1.unsafe_get a k)
let[@inline] f64_get (a : F64.t) k = Bigarray.Array1.unsafe_get a k

(* At paper scale the cache dominates the run's footprint, so every
   per-destination field is stored compactly: the forest's secure
   flags bit-packed (n/8 bytes instead of n), the addend stream in
   unboxed off-heap vectors (12 bytes per addend instead of two boxed
   arrays the GC keeps rescanning), and the per-slot row sparse over
   the slots the stream actually touched. *)
type entry = {
  sec_bits : Bytes.t;  (* bit [i land 7] of byte [i lsr 3] = node i *)
  pairs_idx : I32.t;
  pairs_val : F64.t;
  row_idx : int array;  (* touched compact ISP slots, ascending *)
  row_val : float array;
}

(* Per-worker scratch for [store]: a dense accumulator over compact
   ISP slots plus a touched list, so building the sparse row performs
   exactly the dense additions (same slots, same stream order) the
   old dense row did — values are bit-identical, only the storage of
   the untouched zeros changes. *)
type scratch = {
  rs_row : float array;
  rs_mark : Bytes.t;
  rs_touched : int array;
  mutable rs_count : int;
}

type t = {
  statics : Route_static.t;
  dirty : Route_static.Dirty.t;
  entries : entry option array;
  isp_index : int array;
  isp_count : int;
  mutable pending_churn : int list;
      (* destinations whose *static* info changed under a topology
         delta (same node count), to be force-marked dirty at the next
         [begin_round] on top of the state diff *)
}

let create statics =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let isp_index = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Graph.is_isp g i then begin
      isp_index.(i) <- !count;
      incr count
    end
  done;
  {
    statics;
    dirty = Route_static.Dirty.create statics;
    entries = Array.make n None;
    isp_index;
    isp_count = !count;
    pending_churn = [];
  }

let make_scratch t =
  {
    rs_row = Array.make (max 1 t.isp_count) 0.0;
    rs_mark = Bytes.make (max 1 t.isp_count) '\000';
    rs_touched = Array.make (max 1 t.isp_count) 0;
    rs_count = 0;
  }

let note_churn t ~changed =
  if Array.length t.entries <> Graph.n (Route_static.graph t.statics) then
    invalid_arg "Incremental.note_churn: cache does not match the store's graph";
  t.pending_churn <- List.rev_append changed t.pending_churn

let begin_round t state =
  if State.marked state then begin
    Route_static.Dirty.reset t.dirty;
    Route_static.Dirty.invalidate t.dirty
      ~changed:(State.changed_since_mark state)
      ~secure:(State.secure_bytes state)
  end;
  (* Topology churn marks unconditionally: the destination's statics
     changed, so its forest can change regardless of the state diff. *)
  if t.pending_churn <> [] then begin
    List.iter (fun d -> Route_static.Dirty.mark t.dirty d) t.pending_churn;
    t.pending_churn <- []
  end;
  State.mark state

let is_dirty t d = Route_static.Dirty.is_dirty t.dirty d
let dirty_count t = Route_static.Dirty.dirty_count t.dirty

let pack_sec_path sec_path =
  let n = Bytes.length sec_path in
  let bits = Bytes.make ((n + 7) lsr 3) '\000' in
  for i = 0 to n - 1 do
    if Bytes.unsafe_get sec_path i = '\001' then begin
      let b = i lsr 3 in
      Bytes.unsafe_set bits b
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get bits b) lor (1 lsl (i land 7))))
    end
  done;
  bits

let store t ?scratch d ~sec_path ~pairs =
  let rs = match scratch with Some rs -> rs | None -> make_scratch t in
  let idx, v = pairs in
  (* Accumulate the stream into the dense scratch slots in stream
     order — float-for-float what the old dense row did — and record
     first-touches; the sparse row then reads the finished sums. *)
  for k = 0 to Array.length idx - 1 do
    let s = Array.unsafe_get t.isp_index (Array.unsafe_get idx k) in
    if s >= 0 then begin
      if Bytes.unsafe_get rs.rs_mark s = '\000' then begin
        Bytes.unsafe_set rs.rs_mark s '\001';
        rs.rs_touched.(rs.rs_count) <- s;
        rs.rs_count <- rs.rs_count + 1
      end;
      rs.rs_row.(s) <- rs.rs_row.(s) +. Array.unsafe_get v k
    end
  done;
  let row_idx = Array.sub rs.rs_touched 0 rs.rs_count in
  Array.sort Int.compare row_idx;
  let row_val = Array.map (fun s -> rs.rs_row.(s)) row_idx in
  for k = 0 to rs.rs_count - 1 do
    let s = rs.rs_touched.(k) in
    rs.rs_row.(s) <- 0.0;
    Bytes.unsafe_set rs.rs_mark s '\000'
  done;
  rs.rs_count <- 0;
  t.entries.(d) <-
    Some
      {
        sec_bits = pack_sec_path sec_path;
        pairs_idx = I32.of_array idx;
        pairs_val = F64.of_array v;
        row_idx;
        row_val;
      }

let entry t d =
  match t.entries.(d) with
  | Some e -> e
  | None -> invalid_arg "Incremental.entry: destination never computed"

let sec_bit e i =
  Char.code (Bytes.unsafe_get e.sec_bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add_pairs e ~into =
  let idx = e.pairs_idx and v = e.pairs_val in
  for k = 0 to I32.length idx - 1 do
    let i = i32_get idx k in
    into.(i) <- into.(i) +. f64_get v k
  done

(* Checkpointing: the cache's only cross-round memory is the entries
   array (dirtiness is re-derived each round from the state's mark
   diff). Snapshotting it lets a resumed run replay exactly the cache
   hits the uninterrupted run would have had. Bigarrays carry their
   own [Marshal] representation, so the unboxed vectors round-trip
   exactly. *)
let snapshot t = Marshal.to_string t.entries []

let restore t s =
  let entries = (Marshal.from_string s 0 : entry option array) in
  if Array.length entries <> Array.length t.entries then
    invalid_arg "Incremental.restore: snapshot does not match the topology";
  Array.blit entries 0 t.entries 0 (Array.length entries)

let row_value e s =
  if s < 0 then 0.0
  else begin
    let idx = e.row_idx in
    let lo = ref 0 and hi = ref (Array.length idx - 1) in
    let res = ref 0.0 in
    while !lo <= !hi do
      let mid = (!lo + !hi) lsr 1 in
      let v = Array.unsafe_get idx mid in
      if v = s then begin
        res := Array.unsafe_get e.row_val mid;
        lo := !hi + 1
      end
      else if v < s then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  end

let base_contribution t e nc = row_value e t.isp_index.(nc)

let isp_slot t nc = t.isp_index.(nc)
