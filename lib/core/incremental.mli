(** Cross-round per-destination cache for the deployment engine.

    Each engine round needs, for every destination [d], the routing
    forest under the current state: its secure-route flags (for the
    Appendix C.4 projection skips) and its utility contributions (for
    the round's utility vector). Observation behind the cache: a
    round's flips change the participation bytes of a handful of
    nodes, and [d]'s forest only depends on the bytes of nodes
    *reachable* in [d]'s static info — so most destinations are
    byte-for-byte unchanged from the previous round and need no
    recomputation ({!Bgp.Route_static.Dirty}).

    Protocol, per round: {!begin_round} (diffs the state against the
    previous round via {!State.mark}, marks the affected destinations
    dirty); for every dirty destination recompute the forest and
    {!store} its entry; read {!entry} for every destination. Entries
    of clean destinations replay bit-identically: the cached addend
    stream ({!Utility.contribution_pairs}) performs the same float
    additions the from-scratch sweep would.

    Safe to drive from {!Parallel.Pool} workers: [store] writes only
    slot [d], distinct destinations go to distinct workers, and reads
    of clean entries see values published before the round's fork. *)

type entry = private {
  sec_bits : Bytes.t;
      (** the forest's secure-route flag per node, bit-packed: bit
          [i land 7] of byte [i lsr 3] is node [i] (read via
          {!sec_bit}, or inline the shift locally on hot paths) *)
  pairs_idx : Nsutil.I32.t;
  pairs_val : Nsutil.F64.t;
      (** utility addend stream in {!Utility.contribution_pairs}
          order, unboxed — {!add_pairs} replays it bit-identically *)
  row_idx : int array;  (** touched compact ISP slots, ascending *)
  row_val : float array;  (** summed contribution per touched slot *)
}

type t

type scratch
(** Per-worker workspace for {!store}'s sparse-row construction. Any
    number of scratches may be live; one must not be shared between
    concurrent {!store} calls. *)

val create : Bgp.Route_static.t -> t
(** Empty cache; every destination starts dirty. *)

val make_scratch : t -> scratch

val begin_round : t -> State.t -> unit
(** Mark destinations whose forest can change given the state's byte
    diff since the previous call (plus any destinations queued by
    {!note_churn}), then re-mark the state. The first call leaves
    everything dirty. Call once per round, before the sweep, with the
    state at its round-start value. *)

val note_churn : t -> changed:int list -> unit
(** Queue destinations whose *static* info changed under a topology
    delta that preserved the node count — the
    {!Bgp.Route_static.rebase_changed} list after a
    {!Bgp.Route_static.rebase} of the cache's store. They are marked
    dirty unconditionally at the next {!begin_round}: their forests
    can change even when the deployment state did not. Destinations
    absent from the list keep physically identical statics, so their
    cached entries replay bit-identically across the churn. Raises
    [Invalid_argument] if the store's graph no longer matches the
    cache's node count (a growing delta requires a fresh {!create}). *)

val is_dirty : t -> int -> bool
val dirty_count : t -> int

val store :
  t ->
  ?scratch:scratch ->
  int ->
  sec_path:Bytes.t ->
  pairs:int array * float array ->
  unit
(** Record destination [d]'s freshly computed forest: [sec_path] is
    bit-packed, [pairs] copied into unboxed vectors and regrouped into
    the sparse per-slot row (same additions in the same order as the
    former dense row, so cached values are bit-identical). Call for
    every dirty destination each round; pass a per-worker [scratch]
    on hot paths to avoid an O(#ISP) allocation per call. *)

val entry : t -> int -> entry
(** The destination's entry. Raises [Invalid_argument] if it was never
    stored (protocol violation). *)

val sec_bit : entry -> int -> bool
(** Node [i]'s secure-route flag from the entry's packed forest —
    [sec_path.(i) = '\001'] of the forest that was stored. *)

val add_pairs : entry -> into:float array -> unit
(** Replay the entry's addend stream: float-for-float the additions
    {!Utility.add_pairs} would perform on the stream {!store} was
    given. *)

val snapshot : t -> string
(** Opaque serialization of the per-destination entries — the cache's
    only cross-round memory — for {!Checkpoint} snapshots. *)

val restore : t -> string -> unit
(** Refill a fresh cache from {!snapshot} output (same topology;
    raises [Invalid_argument] on a size mismatch). Together with the
    state's restored {!State.mark} snapshot, the next {!begin_round}
    computes exactly the dirty set the uninterrupted run would. *)

val base_contribution : t -> entry -> int -> float
(** The candidate's utility contribution under the entry's forest —
    the cached equivalent of {!Utility.contribution} on the base
    forest (bit-equal under [Outgoing]; equal up to addend regrouping
    under [Incoming]). *)

val isp_slot : t -> int -> int
(** The node's compact ISP slot, [-1] for non-ISPs. Pre-resolving the
    slot once per round lets the reduce loop read {!row_value}
    directly instead of paying the per-(destination, candidate)
    indirection of {!base_contribution}. *)

val row_value : entry -> int -> float
(** [row_value e s] is the summed contribution in slot [s] ([0.0] for
    [s < 0] or an untouched slot) — [base_contribution t e nc] with
    the slot lookup hoisted. A binary search over the entry's touched
    slots; the old dense row held [0.0] in untouched slots, so the
    result is unchanged. *)
