(** Checksummed, atomically-written snapshot files for restartable
    runs.

    The paper's cluster jobs restart after worker failure (Appendix
    C.3); our equivalent is a snapshot of engine progress written
    every K rounds. This module owns the *framing*: a magic/version
    header, a record {!kind} (an engine-round snapshot or a
    churn-epoch snapshot), the SHA-256 digest of the run's
    configuration and topology (so a snapshot can never be resumed
    against different inputs), the round number, an opaque payload,
    and a SHA-256 integrity footer over the whole frame. Files are
    written to [path ^ ".tmp"] and renamed into place, so a crash
    mid-write never clobbers the previous valid snapshot.

    Frames are written at version 3. Older frames still parse at this
    layer (version-1 frames predate the [kind] field and imply
    {!Engine}), but the version is reported in the decoded {!frame}
    and payload owners gate on it: the engine's progress payload
    changed layout at version 3, so {!Core.Engine.resume} rejects
    older frames with {!Unsupported_version} rather than unmarshal
    bytes laid out differently.

    The payload is a caller-owned [Marshal] blob. Unmarshaling
    untrusted bytes is unsafe, which is exactly why the checksum and
    digest are verified *before* the payload is handed back: a
    corrupt, truncated or mismatched file yields a typed {!error},
    never a crash or a silently wrong resume. *)

type kind =
  | Engine  (** mid-run engine progress ({!Core.Engine}) *)
  | Churn  (** churn-run epoch progress (statics store + epoch cursor) *)

val kind_to_string : kind -> string

type frame = {
  round : int;  (** engine round (or churn shot counter) at write time *)
  kind : kind;
  version : int;  (** frame version found on disk (1, 2 or 3) *)
  payload : string;
}

type error =
  | Io of string  (** open/read/write/rename failed *)
  | Bad_magic  (** not a checkpoint file *)
  | Unsupported_version of int
  | Unsupported_kind of int  (** v2+ frame with an unknown record kind *)
  | Truncated  (** shorter than its header declares *)
  | Corrupt  (** integrity footer does not match the contents *)
  | Config_mismatch of { expected : string; found : string }
      (** written under a different config/topology digest (hex) *)

exception Error of error

val error_to_string : error -> string

val write :
  ?faults:Nsutil.Faults.t ->
  ?kind:kind ->
  path:string ->
  digest:string ->
  round:int ->
  string ->
  unit
(** [write ~path ~digest ~round payload] frames and atomically
    replaces [path]; [kind] defaults to {!Engine}. [digest] must be 32
    raw bytes ({!Scrypto.Sha256} output). A fault plan firing at site
    ["checkpoint.corrupt"] flips one payload byte after checksumming —
    deliberate corruption for the fault-injection harness — and one
    firing at ["checkpoint.io"] makes the write itself raise {!Error}
    [(Io _)] before touching the filesystem (the previous snapshot
    survives). Raises {!Error} [(Io _)] on real I/O failure. *)

val load : path:string -> digest:string -> (frame, error) result
(** Validate [path] against [digest] and return the decoded frame.
    Checks run outside-in: magic, version, kind, framing length,
    integrity footer, then digest; the payload is only returned when
    all pass. *)

val load_exn : path:string -> digest:string -> frame
(** {!load}, raising {!Error}. *)
