module Graph = Asgraph.Graph
module I32 = Nsutil.I32
module Route_static = Bgp.Route_static
module Forest = Bgp.Forest

let c_cust = Bgp.Policy.class_to_char Bgp.Policy.Via_customer
let c_prov = Bgp.Policy.class_to_char Bgp.Policy.Via_provider

(* Same-unit Bigarray accessor: [I32.unsafe_get] does not inline
   across modules on the non-flambda compiler, and [contribution]'s
   Incoming case runs per admitted probe. *)
let[@inline] ba_get (a : I32.t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)

(* Runs once per admitted (destination, candidate) probe — the inner
   loop of the engine sweep — so the [Incoming] case walks the
   customers CSR by direct offset range (same order as
   [Graph.iter_customers], closure-free). Reads only [next]/[sub]:
   a {!Forest.repair}ed scratch is bit-identical to a recomputed one,
   so both flip kernels produce the same float here. *)
let contribution model g (info : Route_static.dest_info) (scratch : Forest.scratch)
    ~weight n =
  match model with
  | Config.Outgoing ->
      if Bytes.get info.cls n = c_cust then scratch.sub.(n) -. weight.(n) else 0.0
  | Config.Incoming ->
      let off = g.Graph.customers.Nsutil.Csr.offsets in
      let dat = g.Graph.customers.Nsutil.Csr.data in
      let next = scratch.Forest.next and sub = scratch.Forest.sub in
      let cls = info.cls in
      let acc = ref 0.0 in
      for k = ba_get off n to ba_get off (n + 1) - 1 do
        let c = ba_get dat k in
        if next.(c) = n && Bytes.unsafe_get cls c = c_prov then
          acc := !acc +. Array.unsafe_get sub c
      done;
      !acc

let accumulate model _g (info : Route_static.dest_info) (scratch : Forest.scratch)
    ~weight ~into =
  let order = info.Route_static.order in
  let nreach = I32.length order in
  match model with
  | Config.Outgoing ->
      for k = 0 to nreach - 1 do
        let i = I32.unsafe_get order k in
        if Bytes.unsafe_get info.cls i = c_cust then
          into.(i) <- into.(i) +. scratch.sub.(i) -. weight.(i)
      done
  | Config.Incoming ->
      for k = 0 to nreach - 1 do
        let i = I32.unsafe_get order k in
        if Bytes.unsafe_get info.cls i = c_prov then begin
          let p = scratch.next.(i) in
          if p >= 0 then into.(p) <- into.(p) +. scratch.sub.(i)
        end
      done

let contribution_pairs model _g (info : Route_static.dest_info)
    (scratch : Forest.scratch) ~weight =
  let order = info.Route_static.order in
  let nreach = I32.length order in
  let count = ref 0 in
  (match model with
  | Config.Outgoing ->
      for k = 0 to nreach - 1 do
        if Bytes.unsafe_get info.cls (I32.unsafe_get order k) = c_cust then
          incr count
      done
  | Config.Incoming ->
      for k = 0 to nreach - 1 do
        let i = I32.unsafe_get order k in
        if Bytes.unsafe_get info.cls i = c_prov && scratch.next.(i) >= 0 then
          incr count
      done);
  let idx = Array.make !count 0 in
  let v = Array.make !count 0.0 in
  let w = ref 0 in
  (match model with
  | Config.Outgoing ->
      for k = 0 to nreach - 1 do
        let i = I32.unsafe_get order k in
        if Bytes.unsafe_get info.cls i = c_cust then begin
          idx.(!w) <- i;
          v.(!w) <- scratch.sub.(i) -. weight.(i);
          incr w
        end
      done
  | Config.Incoming ->
      for k = 0 to nreach - 1 do
        let i = I32.unsafe_get order k in
        if Bytes.unsafe_get info.cls i = c_prov then begin
          let p = scratch.next.(i) in
          if p >= 0 then begin
            idx.(!w) <- p;
            v.(!w) <- scratch.sub.(i);
            incr w
          end
        end
      done);
  (idx, v)

let add_pairs (idx, v) ~into =
  for k = 0 to Array.length idx - 1 do
    let i = Array.unsafe_get idx k in
    into.(i) <- into.(i) +. Array.unsafe_get v k
  done

(* Provider→customer volumes, keyed by the int [p * n + c] in an
   int-specialized table: no per-lookup tuple allocation and no
   polymorphic hashing/compare on the hot path. *)
module Itbl = Hashtbl.Make (Int)

let customer_volumes config statics state ~weight =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let scratch = Forest.make_scratch n in
  let secure = State.secure_bytes state in
  let use_secp = State.use_secp_bytes state ~stub_tiebreak:config.Config.stub_tiebreak in
  let volumes = Itbl.create 256 in
  for d = 0 to n - 1 do
    let info = Route_static.get statics d in
    Forest.compute info ~tiebreak:config.Config.tiebreak ~secure ~use_secp ~weight scratch;
    let order = info.Route_static.order in
    for k = 0 to I32.length order - 1 do
      let c = I32.unsafe_get order k in
      if Bytes.unsafe_get info.cls c = c_prov then begin
        let p = scratch.next.(c) in
        if p >= 0 then begin
          let key = (p * n) + c in
          let prev = Option.value ~default:0.0 (Itbl.find_opt volumes key) in
          Itbl.replace volumes key (prev +. scratch.sub.(c))
        end
      end
    done
  done;
  let out = Array.make n [] in
  Itbl.iter (fun key v -> out.(key / n) <- ((key mod n), v) :: out.(key / n)) volumes;
  Array.map (List.sort (fun (c1, (_ : float)) (c2, _) -> Int.compare c1 c2)) out

let all config statics state ~weight =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let scratch = Forest.make_scratch n in
  let into = Array.make n 0.0 in
  let secure = State.secure_bytes state in
  let use_secp = State.use_secp_bytes state ~stub_tiebreak:config.Config.stub_tiebreak in
  for d = 0 to n - 1 do
    let info = Route_static.get statics d in
    Forest.compute info ~tiebreak:config.Config.tiebreak ~secure ~use_secp ~weight scratch;
    accumulate config.Config.model g info scratch ~weight ~into
  done;
  into
