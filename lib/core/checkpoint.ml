module Sha256 = Scrypto.Sha256

type kind = Engine | Churn

let kind_to_string = function Engine -> "engine" | Churn -> "churn"
let kind_code = function Engine -> 0 | Churn -> 1
let kind_of_code = function 0 -> Some Engine | 1 -> Some Churn | _ -> None

type frame = { round : int; kind : kind; version : int; payload : string }

type error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Unsupported_kind of int
  | Truncated
  | Corrupt
  | Config_mismatch of { expected : string; found : string }

exception Error of error

let error_to_string = function
  | Io m -> Printf.sprintf "checkpoint I/O error: %s" m
  | Bad_magic -> "not a checkpoint file (bad magic)"
  | Unsupported_version v -> Printf.sprintf "unsupported checkpoint version %d" v
  | Unsupported_kind k -> Printf.sprintf "unsupported checkpoint record kind %d" k
  | Truncated -> "truncated checkpoint file"
  | Corrupt -> "corrupt checkpoint file (checksum mismatch)"
  | Config_mismatch { expected; found } ->
      Printf.sprintf
        "checkpoint was written by a different configuration/topology (digest %s, \
         expected %s)"
        found expected

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Checkpoint.Error (%s)" (error_to_string e))
    | _ -> None)

(* On-disk layout, all integers big-endian:

     magic   "SBGPCKP1"                        8 bytes
     version u16 (= 3)                         2 bytes
     kind    u16 (0 = engine, 1 = churn)       2 bytes   (version >= 2)
     digest  config/topology SHA-256          32 bytes
     round   u32                               4 bytes
     length  payload bytes, u64                8 bytes
     payload                                   (length)
     footer  SHA-256 of everything above      32 bytes

   Version 3 shares version 2's header; the bump marks a payload
   layout change (the engine's progress record compacted its
   incremental-cache and oscillation-table serializations), which the
   framing layer cannot see — payload owners gate on [frame.version].
   Version 1 frames (no kind field) still parse at this layer,
   implying an engine record.

   The footer authenticates the frame against torn writes and bit
   rot; the digest ties the snapshot to the inputs that produced it.
   Only after both checks pass is the payload (a [Marshal] blob)
   handed back — unmarshaling untrusted bytes is never safe, so the
   checksum is the gate. *)

(* Observability: spans and duration/size metrics around the disk
   round-trips. Purely observational — framing and validation are
   untouched. *)
let m_writes =
  lazy (Nsobs.Metrics.counter ~help:"checkpoint frames written" "checkpoint_write_total")
let m_loads =
  lazy
    (Nsobs.Metrics.counter ~help:"checkpoint frames loaded successfully"
       "checkpoint_load_total")
let m_load_errors =
  lazy
    (Nsobs.Metrics.counter ~help:"checkpoint loads rejected (I/O or validation)"
       "checkpoint_load_error_total")
let m_bytes_written =
  lazy
    (Nsobs.Metrics.counter ~help:"checkpoint bytes written (framed)"
       "checkpoint_bytes_written_total")
let duration_buckets = [| 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000. |]
let m_write_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"checkpoint write duration (ms)"
       ~buckets:duration_buckets "checkpoint_write_ms")
let m_load_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"checkpoint load duration (ms)"
       ~buckets:duration_buckets "checkpoint_load_ms")

let timed hist f =
  if Nsobs.Metrics.enabled () then begin
    let t0 = Nsobs.Trace.now_us () in
    let finish () =
      Nsobs.Metrics.observe (Lazy.force hist) ((Nsobs.Trace.now_us () -. t0) /. 1000.0)
    in
    match f () with
    | v -> finish (); v
    | exception e -> finish (); raise e
  end
  else f ()

let magic = "SBGPCKP1"
let version = 3
let digest_len = 32

(* Header length per frame version: v1 has no kind field. *)
let header_len_v v = 8 + 2 + (if v >= 2 then 2 else 0) + digest_len + 4 + 8
let header_len = header_len_v version
let footer_len = digest_len

let frame_bytes ~kind ~digest ~round ~payload =
  if String.length digest <> digest_len then
    invalid_arg "Checkpoint.write: digest must be 32 raw bytes";
  let buf = Buffer.create (header_len + String.length payload + footer_len) in
  Buffer.add_string buf magic;
  Buffer.add_uint16_be buf version;
  Buffer.add_uint16_be buf (kind_code kind);
  Buffer.add_string buf digest;
  Buffer.add_int32_be buf (Int32.of_int round);
  Buffer.add_int64_be buf (Int64.of_int (String.length payload));
  Buffer.add_string buf payload;
  let body = Buffer.contents buf in
  body ^ Sha256.digest_string body

let write ?faults ?(kind = Engine) ~path ~digest ~round payload =
  Nsobs.Trace.span ~cat:"checkpoint" "checkpoint.write" @@ fun () ->
  timed m_write_ms @@ fun () ->
  (* Fault injection, site [checkpoint.io]: the write call itself
     fails — the typed error a caller's degradation path must absorb
     without losing the previous valid snapshot (which the tmp+rename
     protocol never touched). *)
  (match faults with
  | Some f when Nsutil.Faults.fires f "checkpoint.io" <> None ->
      raise (Error (Io "injected fault (site checkpoint.io)"))
  | _ -> ());
  let bytes = Bytes.of_string (frame_bytes ~kind ~digest ~round ~payload) in
  (* Fault injection, site [checkpoint.corrupt]: flip one payload byte
     *after* the checksum was computed — the canonical corruption a
     reader must reject. *)
  (match faults with
  | Some f when Nsutil.Faults.fires f "checkpoint.corrupt" <> None ->
      let i = header_len + (String.length payload / 2) in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x5a))
  | _ -> ());
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc bytes);
    Sys.rename tmp path
  with
  | () ->
      if Nsobs.Metrics.enabled () then begin
        Nsobs.Metrics.inc (Lazy.force m_writes);
        Nsobs.Metrics.add (Lazy.force m_bytes_written) (Bytes.length bytes)
      end;
      if Nsobs.Journal.enabled () then
        Nsobs.Journal.event "checkpoint_write"
          [
            ("kind", Nsobs.Journal.Str (kind_to_string kind));
            ("round", Nsobs.Journal.Int round);
            ("bytes", Nsobs.Journal.Int (Bytes.length bytes));
          ]
  | exception Sys_error m -> raise (Error (Io m))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hex = Sha256.hex

(* The [Error] exception shadows [result]'s constructor in this file;
   [err] builds the result explicitly. *)
let err e : (frame, error) result = Stdlib.Error e

let load_frame ~path ~digest =
  if String.length digest <> digest_len then
    invalid_arg "Checkpoint.load: digest must be 32 raw bytes";
  match read_file path with
  | exception Sys_error m -> err (Io m)
  | exception End_of_file -> err Truncated
  | s ->
      let len = String.length s in
      let prefix = min len (String.length magic) in
      if String.sub s 0 prefix <> String.sub magic 0 prefix then err Bad_magic
      else if len < 10 then err Truncated
      else begin
        let v = String.get_uint16_be s 8 in
        if v < 1 || v > version then err (Unsupported_version v)
        else begin
          let header_len = header_len_v v in
          (* Offset of the digest field; the kind (v2+) sits between
             the version and the digest. *)
          let kind_off = 10 in
          let digest_off = if v >= 2 then 12 else 10 in
          if len < header_len + footer_len then err Truncated
          else begin
            let kind_code = if v >= 2 then String.get_uint16_be s kind_off else 0 in
            match kind_of_code kind_code with
            | None -> err (Unsupported_kind kind_code)
            | Some kind ->
                let payload_len =
                  Int64.to_int (String.get_int64_be s (digest_off + digest_len + 4))
                in
                let total = header_len + payload_len + footer_len in
                if payload_len < 0 || len < total then err Truncated
                else if len > total then err Corrupt
                else begin
                  let body = String.sub s 0 (header_len + payload_len) in
                  let footer = String.sub s (header_len + payload_len) footer_len in
                  if not (String.equal (Sha256.digest_string body) footer) then
                    err Corrupt
                  else begin
                    let found = String.sub s digest_off digest_len in
                    if not (String.equal found digest) then
                      err (Config_mismatch { expected = hex digest; found = hex found })
                    else begin
                      let round =
                        Int32.to_int (String.get_int32_be s (digest_off + digest_len))
                      in
                      Ok
                        {
                          round;
                          kind;
                          version = v;
                          payload = String.sub s header_len payload_len;
                        }
                    end
                  end
                end
          end
        end
      end

let load ~path ~digest =
  Nsobs.Trace.span ~cat:"checkpoint" "checkpoint.load" @@ fun () ->
  timed m_load_ms @@ fun () ->
  let r = load_frame ~path ~digest in
  if Nsobs.Metrics.enabled () then
    (match r with
    | Ok _ -> Nsobs.Metrics.inc (Lazy.force m_loads)
    | Stdlib.Error _ -> Nsobs.Metrics.inc (Lazy.force m_load_errors));
  if Nsobs.Journal.enabled () then
    (match r with
    | Ok f ->
        Nsobs.Journal.event "checkpoint_load"
          [
            ("kind", Nsobs.Journal.Str (kind_to_string f.kind));
            ("round", Nsobs.Journal.Int f.round);
          ]
    | Stdlib.Error e ->
        Nsobs.Journal.event "checkpoint_load_error"
          [ ("error", Nsobs.Journal.Str (error_to_string e)) ]);
  r

let load_exn ~path ~digest =
  match load ~path ~digest with Ok v -> v | Stdlib.Error e -> raise (Error e)
