module Graph = Asgraph.Graph
module Bitset = Nsutil.Bitset

type t = {
  g : Graph.t;
  full_set : Bitset.t;
  simplex_set : Bitset.t;  (* sticky: stubs that were ever upgraded *)
  pinned_set : Bitset.t;
  secure : Bytes.t;  (* full || simplex *)
  use_secp : Bytes.t;
  mutable stub_tiebreak : bool;
  simplex_enabled : bool;
  secp_enabled : bool;
  mutable mark_snap : (Bytes.t * Bytes.t) option;
      (* secure/use_secp at the last [mark], for cross-round diffs *)
}

let graph t = t.g
let full t i = Bitset.mem t.full_set i
let pinned t i = Bitset.mem t.pinned_set i
let secure t i = Bytes.get t.secure i = '\001'
let simplex t i = Bitset.mem t.simplex_set i && not (full t i)

let applies_secp t i =
  t.secp_enabled && secure t i
  && ((not (Graph.is_stub t.g i)) || t.stub_tiebreak || full t i)

(* Re-derive the participation and SecP bytes of a single node. The
   order matters: [applies_secp] reads the secure byte we just set. *)
let refresh t i =
  let is_secure = full t i || Bitset.mem t.simplex_set i in
  Bytes.set t.secure i (if is_secure then '\001' else '\000');
  Bytes.set t.use_secp i (if is_secure && applies_secp t i then '\001' else '\000')

let check_unpinned t i ~op =
  if Bitset.mem t.pinned_set i then
    invalid_arg (Printf.sprintf "State.%s: pinned node %d" op i)

(* Simplex S*BGP at a stub is a *deployment*: once a secure ISP
   upgrades its stubs they keep signing even if the ISP later turns
   off (cf. Figure 13, where AS 4755's stubs stay simplex). *)
let upgrade_stubs t i =
  let added = ref [] in
  if t.simplex_enabled then
    Graph.iter_customers t.g i (fun c ->
        if Graph.is_stub t.g c && not (Bitset.mem t.simplex_set c) then begin
          Bitset.set t.simplex_set c;
          refresh t c;
          added := c :: !added
        end);
  !added

let enable t i =
  check_unpinned t i ~op:"enable";
  Bitset.set t.full_set i;
  refresh t i;
  upgrade_stubs t i

let undo_enable t i ~added =
  check_unpinned t i ~op:"undo_enable";
  Bitset.clear t.full_set i;
  refresh t i;
  List.iter
    (fun c ->
      Bitset.clear t.simplex_set c;
      refresh t c)
    added

let disable t i =
  check_unpinned t i ~op:"disable";
  Bitset.clear t.full_set i;
  refresh t i

let set_full t i v =
  if v then ignore (enable t i)
  else begin
    disable t i;
    (* Legacy semantics for symmetric flips in tests: stubs stay
       simplex (sticky), nothing else to do. *)
    ()
  end

let create ?(frozen = []) ?(simplex = true) ?(secp = true) g ~early =
  let n = Graph.n g in
  let t =
    {
      g;
      full_set = Bitset.create n;
      simplex_set = Bitset.create n;
      pinned_set = Bitset.create n;
      secure = Bytes.make n '\000';
      use_secp = Bytes.make n '\000';
      stub_tiebreak = true;
      simplex_enabled = simplex;
      secp_enabled = secp;
      mark_snap = None;
    }
  in
  List.iter
    (fun i ->
      Bitset.set t.full_set i;
      Bitset.set t.pinned_set i)
    early;
  List.iter (fun i -> Bitset.set t.pinned_set i) frozen;
  (* Early-adopter ISPs upgrade their stubs in the initial state. *)
  List.iter
    (fun i ->
      if simplex && Graph.is_isp g i then
        Graph.iter_customers g i (fun c ->
            if Graph.is_stub g c then Bitset.set t.simplex_set c))
    early;
  for i = 0 to n - 1 do
    refresh t i
  done;
  t

let secure_count t =
  let acc = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr acc) t.secure;
  !acc

let count_if t p =
  let acc = ref 0 in
  for i = 0 to Graph.n t.g - 1 do
    if p i then incr acc
  done;
  !acc

let secure_isp_count t = count_if t (fun i -> secure t i && Graph.is_isp t.g i)
let secure_stub_count t = count_if t (fun i -> secure t i && Graph.is_stub t.g i)

let copy t =
  {
    g = t.g;
    full_set = Bitset.copy t.full_set;
    simplex_set = Bitset.copy t.simplex_set;
    pinned_set = Bitset.copy t.pinned_set;
    secure = Bytes.copy t.secure;
    use_secp = Bytes.copy t.use_secp;
    stub_tiebreak = t.stub_tiebreak;
    simplex_enabled = t.simplex_enabled;
    secp_enabled = t.secp_enabled;
    mark_snap = Option.map (fun (s, u) -> (Bytes.copy s, Bytes.copy u)) t.mark_snap;
  }

let signature t =
  (Bitset.hash t.full_set * 31) + Bitset.hash t.simplex_set

let equal_full a b =
  Bitset.equal a.full_set b.full_set && Bitset.equal a.simplex_set b.simplex_set

(* Oscillation detection only ever compares the deployment sets
   ([equal_full]/[signature] above read nothing else), so the
   per-round table entry can be two bitsets — n/4 bytes — instead of
   a full [copy] with its participation bytes and mark snapshot
   (~4n bytes + boxing). At 36K nodes over a few hundred rounds the
   difference is the whole table fitting in cache vs. megabytes of
   dead copies. *)
type fingerprint = { fp_full : Bitset.t; fp_simplex : Bitset.t }

let fingerprint t =
  { fp_full = Bitset.copy t.full_set; fp_simplex = Bitset.copy t.simplex_set }

let fp_signature fp = (Bitset.hash fp.fp_full * 31) + Bitset.hash fp.fp_simplex

let fp_matches fp t =
  Bitset.equal fp.fp_full t.full_set && Bitset.equal fp.fp_simplex t.simplex_set

let fp_serialize fp = Marshal.to_string (fp.fp_full, fp.fp_simplex) []

let fp_restore s =
  let fp_full, fp_simplex = (Marshal.from_string s 0 : Bitset.t * Bitset.t) in
  { fp_full; fp_simplex }

let secure_bytes t = t.secure

let use_secp_bytes t ~stub_tiebreak =
  if t.stub_tiebreak <> stub_tiebreak then begin
    t.stub_tiebreak <- stub_tiebreak;
    for i = 0 to Graph.n t.g - 1 do
      refresh t i
    done
  end;
  t.use_secp

let mark t = t.mark_snap <- Some (Bytes.copy t.secure, Bytes.copy t.use_secp)

let marked t = t.mark_snap <> None

let changed_since_mark t =
  match t.mark_snap with
  | None -> invalid_arg "State.changed_since_mark: no mark"
  | Some (sec, usp) ->
      let acc = ref [] in
      for i = Graph.n t.g - 1 downto 0 do
        if
          Bytes.get t.secure i <> Bytes.get sec i
          || Bytes.get t.use_secp i <> Bytes.get usp i
        then acc := i :: !acc
      done;
      !acc

(* Checkpoint serialization: every field except the graph, which the
   resuming caller provides (and which the checkpoint digest pins).
   Marshal round-trips bytes, bitsets and the mark snapshot exactly,
   so a restored state is indistinguishable from the original. *)
let serialize t =
  Marshal.to_string
    ( t.full_set,
      t.simplex_set,
      t.pinned_set,
      t.secure,
      t.use_secp,
      t.stub_tiebreak,
      t.simplex_enabled,
      t.secp_enabled,
      t.mark_snap )
    []

let restore g s =
  let ( full_set,
        simplex_set,
        pinned_set,
        secure,
        use_secp,
        stub_tiebreak,
        simplex_enabled,
        secp_enabled,
        mark_snap ) =
    (Marshal.from_string s 0
      : Bitset.t
        * Bitset.t
        * Bitset.t
        * Bytes.t
        * Bytes.t
        * bool
        * bool
        * bool
        * (Bytes.t * Bytes.t) option)
  in
  if Bytes.length secure <> Graph.n g then
    invalid_arg "State.restore: serialized state does not match the graph";
  {
    g;
    full_set;
    simplex_set;
    pinned_set;
    secure;
    use_secp;
    stub_tiebreak;
    simplex_enabled;
    secp_enabled;
    mark_snap;
  }

let secure_list t =
  let acc = ref [] in
  for i = Graph.n t.g - 1 downto 0 do
    if secure t i then acc := i :: !acc
  done;
  !acc
