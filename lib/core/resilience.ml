module Graph = Asgraph.Graph
module Route_static = Bgp.Route_static
module Forest = Bgp.Forest

type attack_outcome = { attacker : int; victim : int; deceived : int; total : int }

(* The merged legitimate-vs-bogus routing is ordinary single-prefix
   routing to a virtual prefix node [d] that hangs (via one
   intermediate each) under both the victim and the attacker:

     victim --- t --- d --- f --- attacker

   [t] participates in S*BGP, [f] never does, so a route through the
   attacker can never be fully secure (the attacker cannot produce the
   victim's origination signature / ROA), while path lengths stay
   symmetric: dist + 2 on both sides. *)
(* Shared virtual-prefix construction (see the comment above). *)
let attack_graph statics state ~stub_tiebreak ~attacker ~victim =
  if attacker = victim then invalid_arg "Resilience.simulate_attack";
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let t = n and f = n + 1 and d = n + 2 in
  let cp_edges = ref [ (victim, t); (t, d); (attacker, f); (f, d) ] in
  let peer_edges = ref [] in
  List.iter
    (fun ((a, b), rel) ->
      match rel with
      | Graph.Customer -> cp_edges := (a, b) :: !cp_edges
      | Graph.Peer -> peer_edges := (a, b) :: !peer_edges
      | Graph.Provider -> assert false)
    (Graph.edges g);
  (* CP markers are irrelevant for this computation (they only label
     classes); drop them since the victim might be a CP and may not
     gain customers under Graph.build's invariant. *)
  let g' = Graph.build ~n:(n + 3) ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps:[] in
  let secure = Bytes.make (n + 3) '\000' in
  Bytes.blit (State.secure_bytes state) 0 secure 0 n;
  Bytes.set secure t '\001';
  Bytes.set secure d '\001';
  let use_secp = Bytes.make (n + 3) '\000' in
  Bytes.blit (State.use_secp_bytes state ~stub_tiebreak) 0 use_secp 0 n;
  (g', t, f, d, secure, use_secp)

let fresh_sides ~n ~t ~f ~d =
  let side = Bytes.make (n + 3) '?' in
  Bytes.set side d 'd';
  Bytes.set side t 'v';
  Bytes.set side f 'm';
  side

(* Tally the original nodes by which side of the virtual prefix their
   chosen route drains to. *)
let tally ~n ~attacker side =
  let deceived = ref 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    if i <> attacker then begin
      match Bytes.get side i with
      | 'v' -> incr total
      | 'm' ->
          incr total;
          incr deceived
      | _ -> ()
    end
  done;
  (!deceived, !total)

let simulate_attack statics state ~stub_tiebreak ~tiebreak ~attacker ~victim =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let g', t, f, d, secure, use_secp =
    attack_graph statics state ~stub_tiebreak ~attacker ~victim
  in
  let info = Route_static.compute ~tiebreak g' d in
  let weight = Array.make (n + 3) 1.0 in
  let scratch = Forest.make_scratch (n + 3) in
  Forest.compute info ~tiebreak ~secure ~use_secp ~weight scratch;
  (* Which side does each node drain to? Walk in ascending length, so
     a node's next hop is already classified. *)
  let side = fresh_sides ~n ~t ~f ~d in
  Route_static.iter_order info (fun i ->
      if i <> d && i <> t && i <> f then begin
        let nh = scratch.next.(i) in
        if nh >= 0 then Bytes.set side i (Bytes.get side nh)
      end);
  let deceived, total = tally ~n ~attacker side in
  { attacker; victim; deceived; total }

let simulate_attack_ranked statics state ~stub_tiebreak ~tiebreak ~position ~attacker
    ~victim =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let g', t, f, d, secure, use_secp =
    attack_graph statics state ~stub_tiebreak ~attacker ~victim
  in
  let outcome = Bgp.Flexsim.route_to g' ~dest:d ~secure ~use_secp ~tiebreak ~position in
  (* Classify sides by walking next pointers with a cycle guard (the
     fixed point may not have converged at aggressive positions). *)
  let side = fresh_sides ~n ~t ~f ~d in
  let rec classify i steps =
    if steps > n + 3 then '?'
    else begin
      match Bytes.get side i with
      | '?' ->
          let nh = outcome.next.(i) in
          if nh < 0 then '?'
          else begin
            let s = classify nh (steps + 1) in
            if s <> '?' then Bytes.set side i s;
            s
          end
      | s -> s
    end
  in
  for i = 0 to n + 2 do
    ignore (classify i 0)
  done;
  let deceived, total = tally ~n ~attacker side in
  { attacker; victim; deceived; total }

let mean_with simulate statics ~samples ~seed =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let rng = Nsutil.Prng.create ~seed in
  let acc = ref 0.0 in
  let counted = ref 0 in
  for _ = 1 to samples do
    let attacker = Nsutil.Prng.int rng n in
    let victim = Nsutil.Prng.int rng n in
    if attacker <> victim then begin
      let o : attack_outcome = simulate ~attacker ~victim in
      if o.total > 0 then begin
        acc := !acc +. (float_of_int o.deceived /. float_of_int o.total);
        incr counted
      end
    end
  done;
  if !counted = 0 then 0.0 else !acc /. float_of_int !counted

let mean_deceived_fraction_ranked statics state ~stub_tiebreak ~tiebreak ~position
    ~samples ~seed =
  mean_with
    (fun ~attacker ~victim ->
      simulate_attack_ranked statics state ~stub_tiebreak ~tiebreak ~position ~attacker
        ~victim)
    statics ~samples ~seed

let mean_deceived_fraction statics state ~stub_tiebreak ~tiebreak ~samples ~seed =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let rng = Nsutil.Prng.create ~seed in
  let acc = ref 0.0 in
  let counted = ref 0 in
  for _ = 1 to samples do
    let attacker = Nsutil.Prng.int rng n in
    let victim = Nsutil.Prng.int rng n in
    if attacker <> victim then begin
      let o = simulate_attack statics state ~stub_tiebreak ~tiebreak ~attacker ~victim in
      if o.total > 0 then begin
        acc := !acc +. (float_of_int o.deceived /. float_of_int o.total);
        incr counted
      end
    end
  done;
  if !counted = 0 then 0.0 else !acc /. float_of_int !counted
