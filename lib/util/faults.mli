(** Deterministic fault injection for the fault-tolerance layer.

    A fault plan decides, at named *sites* threaded through the worker
    pool, the statics repair path and the checkpoint writer, whether to
    inject a failure: a raised {!Injected} in a worker task, a hang, or
    a deliberate corruption of a checkpoint file or repaired CSR.
    Decisions are a pure function of the arming cell's seed, its shot
    counter and the site name, so a plan replays the same failure
    schedule on every (serial) run; the [budget] bounds the total
    number of injections so supervised retries always converge, and
    [after] arms the cell only from the given shot onward (letting
    tests kill a run at a chosen depth).

    A plan is one optional {e default} cell — consulted by every site
    without a dedicated cell, exactly the legacy single-spec behavior —
    plus any number of {e site-scoped} cells with their own seeds,
    rates, budgets and counters. Exception: the sites added after the
    single-spec grammar ([pool.hang], [checkpoint.io],
    [statics.repair], [evolve.delta]) inject {e only} when a plan
    names them — a hang or I/O failure is opted into explicitly, and
    a legacy spec's fault schedule stays bit-identical to what it
    always was.

    Counters are atomics: a single plan is shared by all worker
    domains of a run. Under parallel execution the *set* of shots that
    fire is schedule-dependent, but the per-cell budget bound — the
    property retries rely on — holds regardless.

    The [SBGP_FAULTS] environment variable holds a semicolon-separated
    plan of [[site=]seed:rate[:budget[:after]]] entries (a bare legacy
    spec is a one-entry plan); the test suite reruns the engine-parity
    suite under it. *)

exception Injected of { site : string; shot : int }

type t

type spec = { seed : int; rate : float; budget : int; after : int }

val known_sites : string list
(** Every site name threaded through the codebase ([pool.task],
    [pool.hang], [checkpoint.corrupt], [checkpoint.io],
    [statics.repair], [evolve.delta]). {!of_env} warns when a plan
    scopes a cell to a name outside this list. *)

val create : ?rate:float -> ?budget:int -> ?after:int -> seed:int -> unit -> t
(** A default-cell-only plan. [rate] is the per-shot firing
    probability in [0, 1] (default 1); [budget] the maximum number of
    injections (default 1); [after] the number of initial shots that
    never fire (default 0). *)

val of_spec : spec -> t

val of_plan : (string option * spec) list -> t
(** Build a plan from parsed entries; [None] keys the default cell.
    The first entry wins on duplicate sites. *)

val parse_spec : string -> (spec, string) result
(** Parse one ["seed:rate[:budget[:after]]"] entry; [Error] is a
    printable one-line reason. *)

val parse_plan : string -> ((string option * spec) list, string) result
(** Parse a semicolon-separated plan of [[site=]spec] entries. *)

val of_env : unit -> t option
(** Build a plan from [SBGP_FAULTS] if set; malformed plans print a
    one-line stderr warning and yield [None], and entries scoped to a
    site outside {!known_sites} warn (but are kept). *)

val fires : t -> string -> int option
(** Count one shot at the site (against its site cell, or the default
    cell when none — no cell at all counts nothing); [Some shot]
    (consuming that cell's budget) when the plan injects here — used
    by callers that corrupt data rather than raise. *)

val trip : t -> string -> unit
(** [trip t site] raises {!Injected} when {!fires} does. *)

val shots : t -> int
(** Total shots counted so far, over all cells. *)

val fired : t -> int
(** Injections delivered so far, over all cells (bounded by the sum of
    budgets). *)

val fired_at : t -> string -> int
(** Injections delivered by the cell serving the given site. *)
