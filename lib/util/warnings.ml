(* Warning sink for the utility layer. [Nsutil] sits below every other
   library, so it cannot call the leveled logger ([Nsobs.Log]) directly;
   instead warnings go through this replaceable handler. The default
   preserves the historical behavior (one line to stderr); binaries
   that initialize observability install the logger here, which makes
   [SBGP_LOG_LEVEL=quiet] silence these too. *)

let handler : (string -> unit) ref = ref prerr_endline

let emit s = !handler s

let set_handler f = handler := f
