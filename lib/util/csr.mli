(** Compressed sparse row storage for per-node integer lists.

    Used for adjacency lists and per-destination tiebreak sets, where
    millions of tiny lists would otherwise fragment the heap. *)

type t = private {
  offsets : I32.t;  (** length [n + 1]; row [i] is [data.(offsets.(i)) .. data.(offsets.(i+1) - 1)] *)
  data : I32.t;
}
(** Both arrays live in int32 Bigarrays: half the footprint of boxed
    [int array]s, invisible to the GC, and shareable across domains —
    at 100K nodes the adjacency alone is tens of MB. Packing raises
    [I32.Overflow] if the total element count exceeds 32 bits. *)

val of_lists : int list array -> t
(** Pack an array of lists; row order is preserved. *)

val of_rev_lists : int list array -> t
(** Pack an array of lists that were accumulated in reverse; each row
    is emitted reversed (i.e. in original insertion order). *)

val rows : t -> int
val row_length : t -> int -> int
val get : t -> int -> int -> int
(** [get t i k] is the [k]-th element of row [i]. *)

val iter_row : t -> int -> (int -> unit) -> unit
val fold_row : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val exists_row : t -> int -> (int -> bool) -> bool
val row_to_list : t -> int -> int list
val mem_row : t -> int -> int -> bool

val total : t -> int
(** Total number of stored elements. *)
