type t = {
  drain : int Queue.t array;  (* FIFO per key *)
  mutable cursor : int;
  mutable size : int;
}

let create ~max_key =
  { drain = Array.init (max_key + 1) (fun _ -> Queue.create ()); cursor = 0; size = 0 }

let push t ~key v =
  if key < 0 || key >= Array.length t.drain then invalid_arg "Bucketq.push";
  if key < t.cursor then invalid_arg "Bucketq.push: non-monotone key";
  Queue.add v t.drain.(key);
  t.size <- t.size + 1

let rec pop t =
  if t.size = 0 then None
  else if Queue.is_empty t.drain.(t.cursor) then begin
    t.cursor <- t.cursor + 1;
    pop t
  end
  else begin
    let v = Queue.take t.drain.(t.cursor) in
    t.size <- t.size - 1;
    Some (t.cursor, v)
  end

let is_empty t = t.size = 0

let reset t =
  if t.size > 0 then Array.iter Queue.clear t.drain
  else
    (* Drained queues are already empty; only the cursor moved. *)
    ();
  t.cursor <- 0;
  t.size <- 0
