(** Replaceable warning sink for the utility layer.

    [Nsutil] is the bottom of the library stack, so it cannot depend
    on the leveled logger; modules like {!Env} and {!Faults} emit
    their fallback warnings through {!emit} instead. By default a
    warning is one [prerr_endline] — exactly the pre-observability
    behavior. [Nsobs.Log.install_warning_hook] redirects the sink
    through the logger so warnings obey [SBGP_LOG_LEVEL]. *)

val emit : string -> unit
(** Hand one warning line to the current handler. *)

val set_handler : (string -> unit) -> unit
(** Replace the handler (the default is [prerr_endline]). *)
