type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows
let row_count t = List.length t.rows
let rows_in_order t = List.rev t.rows

let pad s width = s ^ String.make (max 0 (width - String.length s)) ' '

let to_string t =
  let all = t.header :: rows_in_order t in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let scan row = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row in
  List.iter scan all;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad c widths.(i)))
      row;
    (* Trim the padding of the final cell. *)
    let s = Buffer.contents buf in
    Buffer.clear buf;
    Buffer.add_string buf (String.trim s);
    Buffer.add_char buf '\n'
  in
  let out = Buffer.create 4096 in
  emit t.header;
  Buffer.add_buffer out buf;
  Buffer.clear buf;
  let rule = String.concat "" (Array.to_list (Array.map (fun w -> String.make w '-' ^ "  ") widths)) in
  Buffer.add_string out (String.trim rule);
  Buffer.add_char out '\n';
  List.iter
    (fun row ->
      emit row;
      Buffer.add_buffer out buf;
      Buffer.clear buf)
    (rows_in_order t);
  Buffer.contents out

let csv_cell c =
  let needs_quote = String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c in
  if needs_quote then begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else c

let to_csv t =
  let buf = Buffer.create 4096 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map csv_cell row));
    Buffer.add_char buf '\n'
  in
  emit t.header;
  List.iter emit (rows_in_order t);
  Buffer.contents buf

let print t = print_string (to_string t)

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_csv t))

let cell_f v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let cell_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
