(** Monotone bucket priority queue over small integer keys.

    Used by the provider-route stage of the Gao-Rexford BFS, where
    keys are path lengths (bounded by the graph diameter) and pops are
    monotone non-decreasing. All operations are O(1) amortized. *)

type t

val create : max_key:int -> t
val push : t -> key:int -> int -> unit
(** Keys pushed after a pop must be >= the last popped key. *)

val pop : t -> (int * int) option
(** Smallest-key element as [(key, value)], FIFO within a key. *)

val is_empty : t -> bool

val reset : t -> unit
(** Rewind to the freshly-created state (empty, cursor at 0) so the
    queue can be reused across computations without reallocating its
    per-key buckets. *)
