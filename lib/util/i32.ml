type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Overflow of { context : string; value : int }

let check ~context v =
  if v <> Int32.to_int (Int32.of_int v) then raise (Overflow { context; value = v })

let create n : t = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n

let[@inline] length (a : t) = Bigarray.Array1.dim a

let[@inline] get (a : t) i = Int32.to_int (Bigarray.Array1.get a i)
let[@inline] set (a : t) i v = Bigarray.Array1.set a i (Int32.of_int v)

let[@inline] unsafe_get (a : t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)
let[@inline] unsafe_set (a : t) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let fill (a : t) v = Bigarray.Array1.fill a (Int32.of_int v)

let of_array arr =
  let n = Array.length arr in
  let a = create n in
  for i = 0 to n - 1 do
    check ~context:"I32.of_array" arr.(i);
    set a i arr.(i)
  done;
  a

let to_array (a : t) = Array.init (length a) (get a)

let iter f (a : t) =
  for i = 0 to length a - 1 do
    f (get a i)
  done

let iteri f (a : t) =
  for i = 0 to length a - 1 do
    f i (get a i)
  done

let sub_to_array (a : t) ~pos ~len = Array.init len (fun k -> get a (pos + k))

let blit_array arr (a : t) ~pos =
  for k = 0 to Array.length arr - 1 do
    set a (pos + k) arr.(k)
  done

let byte_size (a : t) = 4 * length a

let equal (a : t) (b : t) =
  length a = length b
  &&
  let rec loop i = i >= length a || (get a i = get b i && loop (i + 1)) in
  loop 0

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len > 0 then begin
    if
      src_pos < 0 || dst_pos < 0
      || src_pos + len > length src
      || dst_pos + len > length dst
    then invalid_arg "I32.blit";
    (* [Array1.sub] allocates two custom blocks per call, each costing
       hundreds of ns in allocation and GC pacing; a plain element
       loop runs at ~1-2 ns/elem, so memcpy through subs only pays for
       itself from roughly a thousand elements up. *)
    if len < 1024 then
      for i = 0 to len - 1 do
        Bigarray.Array1.unsafe_set dst (dst_pos + i)
          (Bigarray.Array1.unsafe_get src (src_pos + i))
      done
    else
      Bigarray.Array1.blit
        (Bigarray.Array1.sub src src_pos len)
        (Bigarray.Array1.sub dst dst_pos len)
  end
