type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n

let length (a : t) = Bigarray.Array1.dim a

let get (a : t) i = Int32.to_int (Bigarray.Array1.get a i)
let set (a : t) i v = Bigarray.Array1.set a i (Int32.of_int v)

let unsafe_get (a : t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)
let unsafe_set (a : t) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let fill (a : t) v = Bigarray.Array1.fill a (Int32.of_int v)

let of_array arr =
  let n = Array.length arr in
  let a = create n in
  for i = 0 to n - 1 do
    set a i arr.(i)
  done;
  a

let to_array (a : t) = Array.init (length a) (get a)

let iter f (a : t) =
  for i = 0 to length a - 1 do
    f (get a i)
  done

let iteri f (a : t) =
  for i = 0 to length a - 1 do
    f i (get a i)
  done

let sub_to_array (a : t) ~pos ~len = Array.init len (fun k -> get a (pos + k))

let blit_array arr (a : t) ~pos =
  for k = 0 to Array.length arr - 1 do
    set a (pos + k) arr.(k)
  done

let byte_size (a : t) = 4 * length a

let equal (a : t) (b : t) =
  length a = length b
  &&
  let rec loop i = i >= length a || (get a i = get b i && loop (i + 1)) in
  loop 0
