let parse_int ~name ~min ~default = function
  | None -> Ok default
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some v when v >= min -> Ok v
      | Some v ->
          Error
            (Printf.sprintf "warning: ignoring %s=%S: %d is below the minimum %d; using %d"
               name raw v min default)
      | None ->
          Error
            (Printf.sprintf "warning: ignoring %s=%S: expected an integer >= %d; using %d"
               name raw min default))

let int_var ~name ?(min = 1) ~default () =
  match parse_int ~name ~min ~default (Sys.getenv_opt name) with
  | Ok v -> v
  | Error warning ->
      Warnings.emit warning;
      default
