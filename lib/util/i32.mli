(** Compact int32 vectors backed by [Bigarray].

    Half the footprint of an [int array] on 64-bit hosts, stored
    outside the OCaml heap: the GC never scans them, and domains can
    read them concurrently without copying — the backbone of the
    per-destination route statics at Internet scale. Values must fit
    in 31 bits (node ids and CSR offsets always do). *)

type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Overflow of { context : string; value : int }
(** Raised by [check] (and the checked builders that call it) when a
    value cannot be widened back out of 32 bits — an index or offset
    total past [Int32.max_int], as a 100K-node CSR row count can
    produce. Storing such a value via [set] would silently wrap. *)

val check : context:string -> int -> unit
(** [check ~context v] raises [Overflow] unless [v] survives the
    int -> int32 -> int round-trip. Call it on offset totals and row
    counts before they enter an [I32.t]; the hot per-element setters
    stay unchecked. *)

val create : int -> t
(** Uninitialized storage of the given length. *)

val length : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit
val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit

val fill : t -> int -> unit

val of_array : int array -> t
val to_array : t -> int array
val sub_to_array : t -> pos:int -> len:int -> int array
val blit_array : int array -> t -> pos:int -> unit
(** [blit_array src dst ~pos] writes [src] into [dst] starting at
    [pos]. *)

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit

val byte_size : t -> int
(** Payload bytes: [4 * length]. *)

val equal : t -> t -> bool

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies [len] elements;
    a memcpy under the hood. [len = 0] is a no-op. *)
