type t = { offsets : I32.t; data : I32.t }

(* The compiler is not flambda: [I32.get] does not inline across the
   module boundary, so the row loops below go through local Bigarray
   accessors. *)
let[@inline] ba_get (a : I32.t) i = Int32.to_int (Bigarray.Array1.unsafe_get a i)
let[@inline] ba_set (a : I32.t) i v = Bigarray.Array1.unsafe_set a i (Int32.of_int v)

let pack lists ~reversed =
  let n = Array.length lists in
  (* Totals accumulate in the native 63-bit int first; only the final
     value is width-checked, so a wrapped intermediate can never be
     stored. Node ids are bounded by the row count and need no per-
     element check. *)
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + List.length lists.(i)
  done;
  I32.check ~context:"Csr.pack: total element count" !total;
  let offsets = I32.create (n + 1) in
  ba_set offsets 0 0;
  let off = ref 0 in
  for i = 0 to n - 1 do
    off := !off + List.length lists.(i);
    ba_set offsets (i + 1) !off
  done;
  let data = I32.create !total in
  for i = 0 to n - 1 do
    if reversed then begin
      let k = ref (ba_get offsets (i + 1) - 1) in
      List.iter
        (fun v ->
          ba_set data !k v;
          decr k)
        lists.(i)
    end
    else begin
      let k = ref (ba_get offsets i) in
      List.iter
        (fun v ->
          ba_set data !k v;
          incr k)
        lists.(i)
    end
  done;
  { offsets; data }

let of_lists lists = pack lists ~reversed:false
let of_rev_lists lists = pack lists ~reversed:true

let rows t = I32.length t.offsets - 1
let row_length t i = I32.get t.offsets (i + 1) - I32.get t.offsets i
let get t i k = I32.get t.data (I32.get t.offsets i + k)

let iter_row t i f =
  let lo = I32.get t.offsets i and hi = I32.get t.offsets (i + 1) in
  for k = lo to hi - 1 do
    f (ba_get t.data k)
  done

let fold_row t i f init =
  let lo = I32.get t.offsets i and hi = I32.get t.offsets (i + 1) in
  let acc = ref init in
  for k = lo to hi - 1 do
    acc := f !acc (ba_get t.data k)
  done;
  !acc

let exists_row t i p =
  let lo = I32.get t.offsets i and hi = I32.get t.offsets (i + 1) in
  let rec loop k =
    if k >= hi then false
    else if p (ba_get t.data k) then true
    else loop (k + 1)
  in
  loop lo

let row_to_list t i =
  let lo = I32.get t.offsets i and hi = I32.get t.offsets (i + 1) in
  let acc = ref [] in
  for k = hi - 1 downto lo do
    acc := ba_get t.data k :: !acc
  done;
  !acc

let mem_row t i v = exists_row t i (fun x -> x = v)

let total t = I32.length t.data
