exception Injected of { site : string; shot : int }

type spec = { seed : int; rate : float; budget : int; after : int }

(* One arming: a seeded rate, a shot budget and a warm-up count, with
   its own atomic counters. A plan is one optional default cell (serving
   every site without a dedicated cell) plus site-scoped cells. *)
type cell = {
  c_seed : int;
  c_rate : float;
  c_after : int;
  c_remaining : int Atomic.t;
  c_shots : int Atomic.t;
  c_fired : int Atomic.t;
}

type t = { default : cell option; sites : (string * cell) list }

(* Every site name threaded through the codebase; [of_env] warns when
   a plan scopes a cell to a name outside this list (a typo would
   otherwise silently disable the injection). *)
let known_sites =
  [
    "pool.task";
    "pool.hang";
    "checkpoint.corrupt";
    "checkpoint.io";
    "statics.repair";
    "evolve.delta";
  ]

let cell_of_spec { seed; rate; budget; after } =
  {
    c_seed = seed;
    c_rate = rate;
    c_after = max 0 after;
    c_remaining = Atomic.make (max 0 budget);
    c_shots = Atomic.make 0;
    c_fired = Atomic.make 0;
  }

let create ?(rate = 1.0) ?(budget = 1) ?(after = 0) ~seed () =
  { default = Some (cell_of_spec { seed; rate; budget; after }); sites = [] }

let of_spec spec = { default = Some (cell_of_spec spec); sites = [] }

let of_plan entries =
  let default = ref None
  and sites = ref [] in
  List.iter
    (fun (site, spec) ->
      match site with
      | None -> if !default = None then default := Some (cell_of_spec spec)
      | Some name ->
          if not (List.mem_assoc name !sites) then
            sites := (name, cell_of_spec spec) :: !sites)
    entries;
  { default = !default; sites = List.rev !sites }

(* djb2: a stable cross-run string hash (Hashtbl.hash would also do,
   but its stability is an implementation detail). *)
let site_hash s =
  let h = ref 5381 in
  String.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land max_int) s;
  !h

(* The sites added after the legacy single-spec grammar never fall
   back to the default cell: letting them consume default-cell shots
   would silently reshuffle every pre-existing fault schedule (tests
   aim their [after] offsets at the pool.task shot sequence), and a
   hang or I/O failure is something a plan should opt into by name.
   Every other site — including ad-hoc names — keeps the legacy
   default-cell behavior. *)
let scoped_only_sites =
  [ "pool.hang"; "checkpoint.io"; "statics.repair"; "evolve.delta" ]

let cell_for t site =
  match List.assoc_opt site t.sites with
  | Some c -> Some c
  | None -> if List.mem site scoped_only_sites then None else t.default

let sum_cells t f =
  let d = match t.default with Some c -> f c | None -> 0 in
  List.fold_left (fun a (_, c) -> a + f c) d t.sites

let shots t = sum_cells t (fun c -> Atomic.get c.c_shots)
let fired t = sum_cells t (fun c -> Atomic.get c.c_fired)

let fired_at t site =
  match cell_for t site with Some c -> Atomic.get c.c_fired | None -> 0

(* Claim one unit of budget; never goes below zero under contention. *)
let rec claim c =
  let r = Atomic.get c.c_remaining in
  if r <= 0 then false
  else if Atomic.compare_and_set c.c_remaining r (r - 1) then true
  else claim c

let draw c ~shot ~site =
  let v = Prng.mix2 (Prng.mix2 c.c_seed shot) (site_hash site) in
  float_of_int v /. 4.611686018427387904e18 (* 2^62 *)

let fires t site =
  match cell_for t site with
  | None -> None
  | Some c ->
      let shot = Atomic.fetch_and_add c.c_shots 1 in
      if shot >= c.c_after && draw c ~shot ~site < c.c_rate && claim c then begin
        ignore (Atomic.fetch_and_add c.c_fired 1);
        Some shot
      end
      else None

let trip t site =
  match fires t site with
  | Some shot -> raise (Injected { site; shot })
  | None -> ()

let parse_spec s =
  let err () =
    Error
      (Printf.sprintf
         "bad fault spec %S: expected seed:rate[:budget[:after]] (e.g. \"7:0.05:2\")" s)
  in
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> err ()
  | seed :: rest -> (
      let parse_tail rate budget after =
        match (rate, budget, after) with
        | Some rate, Some budget, Some after
          when rate >= 0.0 && rate <= 1.0 && budget >= 0 && after >= 0 ->
            fun seed -> Ok { seed; rate; budget; after }
        | _ -> fun _ -> err ()
      in
      let k =
        match rest with
        | [] -> parse_tail (Some 1.0) (Some 1) (Some 0)
        | [ r ] -> parse_tail (float_of_string_opt r) (Some 1) (Some 0)
        | [ r; b ] -> parse_tail (float_of_string_opt r) (int_of_string_opt b) (Some 0)
        | [ r; b; a ] ->
            parse_tail (float_of_string_opt r) (int_of_string_opt b) (int_of_string_opt a)
        | _ -> fun _ -> err ()
      in
      match int_of_string_opt seed with Some seed -> k seed | None -> err ())

(* Plan grammar: semicolon-separated entries, each
   [site=]seed:rate[:budget[:after]]. An entry without [site=] is the
   default cell (the legacy single-spec grammar is thus a one-entry
   plan). *)
let parse_plan s =
  let entries =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  if entries = [] then
    Error (Printf.sprintf "bad fault plan %S: no entries" s)
  else
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
          let site, spec_str =
            match String.index_opt e '=' with
            | Some i ->
                ( Some (String.trim (String.sub e 0 i)),
                  String.sub e (i + 1) (String.length e - i - 1) )
            | None -> (None, e)
          in
          match site with
          | Some "" -> Error (Printf.sprintf "bad fault plan entry %S: empty site name" e)
          | _ -> (
              match parse_spec spec_str with
              | Ok spec -> parse ((site, spec) :: acc) rest
              | Error reason -> Error reason))
    in
    parse [] entries

let env_var = "SBGP_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some s -> (
      match parse_plan s with
      | Ok entries ->
          List.iter
            (function
              | Some site, _ when not (List.mem site known_sites) ->
                  Warnings.emit
                    (Printf.sprintf
                       "warning: %s: unknown fault site %S (known: %s)" env_var site
                       (String.concat ", " known_sites))
              | _ -> ())
            entries;
          Some (of_plan entries)
      | Error warning ->
          Warnings.emit (Printf.sprintf "warning: ignoring %s: %s" env_var warning);
          None)
