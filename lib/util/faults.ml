exception Injected of { site : string; shot : int }

type spec = { seed : int; rate : float; budget : int; after : int }

type t = {
  seed : int;
  rate : float;
  after : int;
  remaining : int Atomic.t;
  shots : int Atomic.t;
  fired : int Atomic.t;
}

let create ?(rate = 1.0) ?(budget = 1) ?(after = 0) ~seed () =
  {
    seed;
    rate;
    after = max 0 after;
    remaining = Atomic.make (max 0 budget);
    shots = Atomic.make 0;
    fired = Atomic.make 0;
  }

let of_spec { seed; rate; budget; after } = create ~rate ~budget ~after ~seed ()

(* djb2: a stable cross-run string hash (Hashtbl.hash would also do,
   but its stability is an implementation detail). *)
let site_hash s =
  let h = ref 5381 in
  String.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land max_int) s;
  !h

let shots t = Atomic.get t.shots
let fired t = Atomic.get t.fired

(* Claim one unit of budget; never goes below zero under contention. *)
let rec claim t =
  let r = Atomic.get t.remaining in
  if r <= 0 then false
  else if Atomic.compare_and_set t.remaining r (r - 1) then true
  else claim t

let draw t ~shot ~site =
  let v = Prng.mix2 (Prng.mix2 t.seed shot) (site_hash site) in
  float_of_int v /. 4.611686018427387904e18 (* 2^62 *)

let fires t site =
  let shot = Atomic.fetch_and_add t.shots 1 in
  if shot >= t.after && draw t ~shot ~site < t.rate && claim t then begin
    ignore (Atomic.fetch_and_add t.fired 1);
    Some shot
  end
  else None

let trip t site =
  match fires t site with
  | Some shot -> raise (Injected { site; shot })
  | None -> ()

let parse_spec s =
  let err () =
    Error
      (Printf.sprintf
         "bad fault spec %S: expected seed:rate[:budget[:after]] (e.g. \"7:0.05:2\")" s)
  in
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> err ()
  | seed :: rest -> (
      let parse_tail rate budget after =
        match (rate, budget, after) with
        | Some rate, Some budget, Some after
          when rate >= 0.0 && rate <= 1.0 && budget >= 0 && after >= 0 ->
            fun seed -> Ok { seed; rate; budget; after }
        | _ -> fun _ -> err ()
      in
      let k =
        match rest with
        | [] -> parse_tail (Some 1.0) (Some 1) (Some 0)
        | [ r ] -> parse_tail (float_of_string_opt r) (Some 1) (Some 0)
        | [ r; b ] -> parse_tail (float_of_string_opt r) (int_of_string_opt b) (Some 0)
        | [ r; b; a ] ->
            parse_tail (float_of_string_opt r) (int_of_string_opt b) (int_of_string_opt a)
        | _ -> fun _ -> err ()
      in
      match int_of_string_opt seed with Some seed -> k seed | None -> err ())

let env_var = "SBGP_FAULTS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some s -> (
      match parse_spec s with
      | Ok spec -> Some (of_spec spec)
      | Error warning ->
          Warnings.emit (Printf.sprintf "warning: ignoring %s: %s" env_var warning);
          None)
