type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
let length (t : t) = Bigarray.Array1.dim t
let get (t : t) i = Bigarray.Array1.get t i
let set (t : t) i v = Bigarray.Array1.set t i v
let unsafe_get (t : t) i = Bigarray.Array1.unsafe_get t i
let unsafe_set (t : t) i v = Bigarray.Array1.unsafe_set t i v

let of_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set t i v) a;
  t

let to_array t = Array.init (length t) (fun i -> unsafe_get t i)
let byte_size t = 8 * length t
