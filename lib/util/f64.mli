(** Unboxed float vectors backed by [Bigarray].

    Same footprint as a [float array] but stored outside the OCaml
    heap: the GC never scans or moves them, which matters when a run
    caches millions of utility addends across rounds ({!I32} is the
    int-side twin). Reads/writes do not box on the non-flambda
    compiler either — [Bigarray.Array1] float access is intrinsic. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Uninitialized storage of the given length. *)

val length : t -> int

val get : t -> int -> float
val set : t -> int -> float -> unit
val unsafe_get : t -> int -> float
val unsafe_set : t -> int -> float -> unit

val of_array : float array -> t
val to_array : t -> float array

val byte_size : t -> int
(** Payload bytes: [8 * length]. *)
