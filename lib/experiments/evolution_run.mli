(** Checkpointable churn runner: the Section 8.4 evolution epochs
    under one resumable umbrella.

    Each epoch runs the deployment engine on the current graph, grows
    the graph (new stubs multihome, preferentially to secure ISPs),
    migrates the warm statics store across the growth delta
    ({!Bgp.Route_static.rebase} under the [Delta] statics kernel;
    rebuilt under [Full]) and continues. With a checkpoint attached,
    progress persists as {!Core.Checkpoint.Churn} frames:

    - at every epoch boundary — the epoch cursor, the grown graph, the
      post-rebase warm statics store (via {!Bgp.Route_static.snapshot},
      hit/miss counters included) and every completed epoch summary;
    - every [every_rounds] engine rounds inside an epoch — the same
      context plus the engine's full serialized progress (which embeds
      its own store snapshot), through {!Core.Engine.snapshot_sink}.

    A run killed between or inside an epoch therefore resumes
    float-identical to the uninterrupted run — states, oscillation
    tables, round records and statics counters — at any worker count;
    only the wall-clock [e_seconds] diagnostics differ. *)

type params = {
  epochs : int;  (** growth events; [epochs + 1] engine runs happen *)
  growth_fraction : float;  (** new stubs per epoch, as a fraction of n *)
  secure_bias : float;  (** attachment bias towards secure ISPs *)
  growth_seed : int;  (** epoch [k] grows with seed [growth_seed + k] *)
}

val default_params : params
(** The Section 8.4 experiment defaults: 3 epochs, 15% growth,
    bias 2.0, seed 100. *)

type epoch_summary = {
  e_epoch : int;
  e_nodes : int;  (** graph size the epoch ran on *)
  e_secure_as : float;  (** {!Core.Engine.secure_fraction} [`As] at termination *)
  e_secure_isp : float;
  e_new_on_secure : (int * int) option;
      (** [(on_secure, added)]: of the stubs added {e after} this
          epoch, how many landed on at least one secure provider;
          [None] for the final epoch (nothing is added after it) *)
  e_rounds : int;
  e_statics_misses : int;  (** diagnostic (see {!Core.Engine.result}) *)
  e_demotions : int;  (** degradation-ladder demotions during the epoch *)
  e_seconds : float;  (** wall clock; NOT stable across resume *)
}

type outcome = {
  summaries : epoch_summary list;  (** epoch ascending, [epochs + 1] entries *)
  final : Core.State.t;  (** deployment state at the last epoch's termination *)
  final_graph : Asgraph.Graph.t;
}

type checkpoint_spec = {
  path : string;  (** snapshot file, atomically replaced *)
  every_rounds : int;
      (** mid-epoch cadence, in engine rounds ([<= 0] disables
          mid-epoch frames; boundary frames are always written) *)
}

val input_digest :
  params -> Core.Config.t -> Asgraph.Graph.t -> early:int list -> string
(** SHA-256 (32 raw bytes) over the engine's input digest for the
    epoch-0 inputs plus the evolution parameters. {!resume} accepts
    only snapshots written under an equal digest. *)

val run :
  ?checkpoint:checkpoint_spec ->
  ?faults:Nsutil.Faults.t ->
  params ->
  Core.Config.t ->
  Asgraph.Graph.t ->
  early:int list ->
  outcome
(** Run all epochs from the given initial graph and early-adopter
    list. [faults] (default: [SBGP_FAULTS]) is threaded into the
    engine sweeps, the rebase step (sites [statics.repair] and
    [evolve.delta] — the latter declares an epoch migration failed,
    exercising {!Bgp.Route_static.undo_rebase} plus a full rebuild,
    bit-identical by the kernel parity contract) and the checkpoint
    writer. With [Core.Config.degrade] set, failed checkpoint writes
    are skipped with a warning instead of raised, like the engine's
    ladder. *)

val resume :
  from:string ->
  ?checkpoint:checkpoint_spec ->
  ?faults:Nsutil.Faults.t ->
  params ->
  Core.Config.t ->
  Asgraph.Graph.t ->
  early:int list ->
  outcome
(** Continue a checkpointed churn run from the snapshot at [from],
    passing the same params, config, initial graph and early adopters
    as the original {!run}. The frame is validated against
    {!input_digest} before anything is trusted; an {!Core.Checkpoint.Engine}-kind
    snapshot is rejected with {!Core.Checkpoint.Error}
    [(Unsupported_kind _)] — resume those with {!Core.Engine.resume}. *)
