type experiment = {
  id : string;
  title : string;
  run : Scenario.t -> Nsutil.Table.t;
}

let make id title run = { id; title; run }

let all =
  [
    make Exp_tables.Table1.id Exp_tables.Table1.title Exp_tables.Table1.run;
    make Exp_tables.Table2.id Exp_tables.Table2.title Exp_tables.Table2.run;
    make Exp_tables.Table3.id Exp_tables.Table3.title Exp_tables.Table3.run;
    make Exp_tables.Table4.id Exp_tables.Table4.title Exp_tables.Table4.run;
    make Exp_case_study.Fig3.id Exp_case_study.Fig3.title Exp_case_study.Fig3.run;
    make Exp_case_study.Fig4.id Exp_case_study.Fig4.title Exp_case_study.Fig4.run;
    make Exp_case_study.Fig5.id Exp_case_study.Fig5.title Exp_case_study.Fig5.run;
    make Exp_case_study.Fig6.id Exp_case_study.Fig6.title Exp_case_study.Fig6.run;
    make Exp_case_study.Fig7.id Exp_case_study.Fig7.title Exp_case_study.Fig7.run;
    make Exp_sweeps.Fig8.id Exp_sweeps.Fig8.title Exp_sweeps.Fig8.run;
    make Exp_sweeps.Fig9.id Exp_sweeps.Fig9.title Exp_sweeps.Fig9.run;
    make Exp_sweeps.Fig10.id Exp_sweeps.Fig10.title Exp_sweeps.Fig10.run;
    make Exp_sweeps.Fig11.id Exp_sweeps.Fig11.title Exp_sweeps.Fig11.run;
    make Exp_cps.Fig12.id Exp_cps.Fig12.title Exp_cps.Fig12.run;
    make Exp_incoming.Fig13.id Exp_incoming.Fig13.title Exp_incoming.Fig13.run;
    make Exp_projection.Fig14.id Exp_projection.Fig14.title Exp_projection.Fig14.run;
    make Exp_incoming.Oscillation.id Exp_incoming.Oscillation.title
      Exp_incoming.Oscillation.run;
    make Exp_incoming.Selector.id Exp_incoming.Selector.title Exp_incoming.Selector.run;
    make Exp_hardness.Setcover.id Exp_hardness.Setcover.title Exp_hardness.Setcover.run;
    make Exp_attack.Attacks.id Exp_attack.Attacks.title Exp_attack.Attacks.run;
    make Exp_resilience.Resilience.id Exp_resilience.Resilience.title
      Exp_resilience.Resilience.run;
    make Exp_secpriority.Secpriority.id Exp_secpriority.Secpriority.title
      Exp_secpriority.Secpriority.run;
    make Exp_ablations.Ablations.id Exp_ablations.Ablations.title
      Exp_ablations.Ablations.run;
    make Exp_pricing.Pricing_exp.id Exp_pricing.Pricing_exp.title
      Exp_pricing.Pricing_exp.run;
    make Exp_jitter.Jitter.id Exp_jitter.Jitter.title Exp_jitter.Jitter.run;
    make Exp_evolution.Evolution.id Exp_evolution.Evolution.title
      Exp_evolution.Evolution.run;
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

let selected_of only =
  match only with
  | None -> all
  | Some ids -> List.filter (fun e -> List.mem e.id ids) all

let run_all ?only scenario =
  List.map
    (fun e ->
      let t0 = Unix.gettimeofday () in
      let table = e.run scenario in
      (e, table, Unix.gettimeofday () -. t0))
    (selected_of only)

let run_streaming ?only scenario emit =
  List.iter
    (fun e ->
      Nsobs.Log.info "experiment %s: %s" e.id e.title;
      let t0 = Unix.gettimeofday () in
      let table =
        Nsobs.Trace.span ~cat:"experiment" ("exp." ^ e.id) (fun () -> e.run scenario)
      in
      emit e table (Unix.gettimeofday () -. t0))
    (selected_of only)
