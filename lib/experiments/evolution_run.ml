(* Checkpointable churn runner: the Section 8.4 evolution epochs
   (engine run -> graph growth -> statics rebase -> next epoch) under
   one resumable umbrella. Progress persists as [Checkpoint.Churn]
   frames holding the epoch cursor, the current graph, the warm
   statics store and the completed-epoch summaries — plus, between
   snapshot rounds, the running epoch's full engine progress — so a
   run killed between or inside an epoch resumes float-identical to
   the uninterrupted run (including the statics hit/miss counters,
   which travel inside the store snapshot). *)

module Graph = Asgraph.Graph
module Graph_io = Asgraph.Graph_io
module Route_static = Bgp.Route_static
module Config = Core.Config
module State = Core.State
module Engine = Core.Engine
module Checkpoint = Core.Checkpoint
module Faults = Nsutil.Faults

(* Statics churn-repair timing lands here rather than in
   [Route_static] itself: lib/bgp deliberately has no nsobs
   dependency, and this call site is the only epoch-boundary rebase
   path. *)
let m_rebase_ms =
  lazy
    (Nsobs.Metrics.histogram ~help:"statics store churn rebase (ms)"
       ~buckets:[| 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]
       "statics_rebase_ms")

type params = {
  epochs : int;
  growth_fraction : float;
  secure_bias : float;
  growth_seed : int;
}

let default_params =
  { epochs = 3; growth_fraction = 0.15; secure_bias = 2.0; growth_seed = 100 }

type epoch_summary = {
  e_epoch : int;
  e_nodes : int;
  e_secure_as : float;
  e_secure_isp : float;
  e_new_on_secure : (int * int) option;
  e_rounds : int;
  e_statics_misses : int;
  e_demotions : int;
  e_seconds : float;
}

type outcome = {
  summaries : epoch_summary list;
  final : State.t;
  final_graph : Graph.t;
}

type checkpoint_spec = { path : string; every_rounds : int }

(* The churn-frame payload. [c_statics] is empty when [c_engine]
   carries a mid-epoch engine payload — the engine progress embeds its
   own store snapshot, and duplicating it would double the frame. *)
type progress = {
  c_epoch : int;
  c_graph : string;  (* [Graph_io] text of the epoch's graph *)
  c_statics : string;  (* [Route_static.snapshot], or "" (see above) *)
  c_full_isps : int list;  (* deployed-ISP carryover into [c_epoch] *)
  c_summaries_rev : epoch_summary list;
  c_engine : (int * string) option;  (* mid-epoch engine round + progress *)
}

(* The churn digest extends the engine's input digest (config minus
   the result-invisible knobs, epoch-0 topology, weights, initial
   state) with the evolution parameters: a snapshot resumes only
   against the run that wrote it. *)
let input_digest params (cfg : Config.t) g0 ~early =
  let statics = Route_static.create g0 in
  let weight = Traffic.Weights.assign g0 ~cp_fraction:cfg.cp_fraction in
  let state = State.create g0 ~early in
  let base = Engine.input_digest cfg statics ~weight ~state in
  Scrypto.Sha256.digest_string
    (Printf.sprintf "sbgp-churn-ckpt-v1\n%s;%d;%h;%h;%d" base params.epochs
       params.growth_fraction params.secure_bias params.growth_seed)

let write_frame ?faults ~degrade ~path ~digest ~round (p : progress) =
  try
    Checkpoint.write ?faults ~kind:Checkpoint.Churn ~path ~digest ~round
      (Marshal.to_string p [])
  with Checkpoint.Error (Checkpoint.Io m) when degrade ->
    (* Same ladder rung as the engine's: the tmp+rename protocol kept
       the previous frame, and losing one snapshot interval beats
       losing the run. *)
    Nsutil.Warnings.emit
      (Printf.sprintf
         "sbgp: churn: checkpoint write failed (%s); continuing on the previous \
          snapshot"
         m)

let run_epochs ~params ~(cfg : Config.t) ~faults ~checkpoint ~digest ~early ~start
    ~g ~statics ~full_isps ~summaries_rev ~engine_payload =
  let summaries_rev = ref summaries_rev in
  let rec epoch k g statics full_isps engine_payload =
    let t0 = Unix.gettimeofday () in
    if Nsobs.Journal.enabled () then
      Nsobs.Journal.event "epoch_start"
        [
          ("epoch", Nsobs.Journal.Int k);
          ("nodes", Nsobs.Journal.Int (Graph.n g));
        ];
    let weight = Traffic.Weights.assign g ~cp_fraction:cfg.cp_fraction in
    let state = State.create g ~early in
    List.iter
      (fun i ->
        if (not (State.pinned state i)) && i < Graph.n g && Graph.is_isp g i then
          ignore (State.enable state i))
      full_isps;
    (* Mid-epoch persistence: the engine hands its serialized progress
       to this sink every [every_rounds] completed rounds; each
       delivery becomes a churn frame that pins the epoch context
       around it. *)
    let sink =
      match checkpoint with
      | Some { path; every_rounds } when every_rounds > 0 ->
          let graph_str = Graph_io.to_string g in
          Some
            {
              Engine.s_every = every_rounds;
              s_save =
                (fun ~round ~payload ->
                  write_frame ?faults ~degrade:cfg.degrade ~path ~digest ~round
                    {
                      c_epoch = k;
                      c_graph = graph_str;
                      c_statics = "";
                      c_full_isps = full_isps;
                      c_summaries_rev = !summaries_rev;
                      c_engine = Some (round, payload);
                    });
            }
      | _ -> None
    in
    let result =
      match engine_payload with
      | Some payload ->
          Engine.resume_of_payload ~payload ?sink ?faults cfg statics ~weight ~state
      | None -> Engine.run ?sink ?faults cfg statics ~weight ~state
    in
    (* On a mid-epoch resume the engine rebuilt the warm store from
       its snapshot; every later epoch must carry THAT store. *)
    let statics = result.Engine.statics_store in
    let dt = Unix.gettimeofday () -. t0 in
    let n = Graph.n g in
    if Nsobs.Journal.enabled () then
      Nsobs.Journal.event "epoch_end"
        [
          ("epoch", Nsobs.Journal.Int k);
          ("nodes", Nsobs.Journal.Int n);
          ("rounds", Nsobs.Journal.Int (Engine.rounds_run result));
          ("seconds", Nsobs.Journal.Float dt);
          ("statics_misses", Nsobs.Journal.Int result.Engine.statics_misses);
          ("demotions", Nsobs.Journal.Int result.Engine.demotions);
        ];
    let summary ~new_on_secure =
      {
        e_epoch = k;
        e_nodes = n;
        e_secure_as = Engine.secure_fraction result `As;
        e_secure_isp = Engine.secure_fraction result `Isp;
        e_new_on_secure = new_on_secure;
        e_rounds = Engine.rounds_run result;
        e_statics_misses = result.Engine.statics_misses;
        e_demotions = result.Engine.demotions;
        e_seconds = dt;
      }
    in
    if k >= params.epochs then begin
      summaries_rev := summary ~new_on_secure:None :: !summaries_rev;
      {
        summaries = List.rev !summaries_rev;
        final = result.Engine.final;
        final_graph = g;
      }
    end
    else begin
      let full_after = ref [] in
      for i = 0 to n - 1 do
        if Graph.is_isp g i && State.full result.Engine.final i then
          full_after := i :: !full_after
      done;
      let grown, delta =
        Topology.Evolve.grow_delta g
          ~new_stubs:(max 1 (int_of_float (params.growth_fraction *. float_of_int n)))
          ~secure_bias:params.secure_bias
          ~is_secure:(fun i -> State.secure result.Engine.final i)
          ~seed:(params.growth_seed + k)
      in
      let statics =
        match cfg.statics_kernel with
        | Route_static.Delta -> (
            let j =
              (if Nsobs.Metrics.enabled () then
                 Nsobs.Metrics.timed (Lazy.force m_rebase_ms)
               else fun f -> f ())
                (fun () ->
                  Route_static.rebase ~kernel:Route_static.Delta
                    ~workers:cfg.workers ?faults statics ~delta grown)
            in
            (* Fault site evolve.delta: the epoch migration is declared
               failed after the fact. Recovery exercises the journal —
               undo the rebase (an O(1) restore to the pre-churn
               store), then fall back to the full statics kernel for
               this boundary: a cold store on the grown graph, which
               recomputes the same records lazily, so results stay
               bit-identical. *)
            match faults with
            | Some f when Faults.fires f "evolve.delta" <> None ->
                Route_static.undo_rebase statics j;
                Nsutil.Warnings.emit
                  (Printf.sprintf
                     "sbgp: churn: injected rebase failure at epoch %d; rebuilding \
                      the statics store from scratch"
                     k);
                Route_static.create grown
            | _ -> statics)
        | Route_static.Full -> Route_static.create grown
      in
      (* Count this epoch's new stubs that landed on >= 1 secure provider. *)
      let on_secure = ref 0 in
      let added = Graph.n grown - n in
      for stub = n to Graph.n grown - 1 do
        let hit = ref false in
        Graph.iter_providers grown stub (fun p ->
            if (not !hit) && State.secure result.Engine.final p then hit := true);
        if !hit then incr on_secure
      done;
      summaries_rev :=
        summary ~new_on_secure:(Some (!on_secure, added)) :: !summaries_rev;
      (* Epoch-boundary frame: the next epoch's full starting context —
         grown graph, post-rebase warm store, ISP carryover — plus
         every completed summary. *)
      (match checkpoint with
      | Some { path; _ } ->
          write_frame ?faults ~degrade:cfg.degrade ~path ~digest ~round:(k + 1)
            {
              c_epoch = k + 1;
              c_graph = Graph_io.to_string grown;
              c_statics = Route_static.snapshot statics;
              c_full_isps = !full_after;
              c_summaries_rev = !summaries_rev;
              c_engine = None;
            }
      | None -> ());
      epoch (k + 1) grown statics !full_after None
    end
  in
  epoch start g statics full_isps engine_payload

let resolve_faults = function Some _ as f -> f | None -> Faults.of_env ()

let null_digest = String.make 32 '\000'

let run ?checkpoint ?faults params (cfg : Config.t) g0 ~early =
  let faults = resolve_faults faults in
  let digest =
    match checkpoint with
    | None -> null_digest
    | Some _ -> input_digest params cfg g0 ~early
  in
  run_epochs ~params ~cfg ~faults ~checkpoint ~digest ~early ~start:0 ~g:g0
    ~statics:(Route_static.create g0) ~full_isps:[] ~summaries_rev:[]
    ~engine_payload:None

let resume ~from ?checkpoint ?faults params (cfg : Config.t) g0 ~early =
  let faults = resolve_faults faults in
  let digest = input_digest params cfg g0 ~early in
  let frame = Checkpoint.load_exn ~path:from ~digest in
  (match frame.Checkpoint.kind with
  | Checkpoint.Churn -> ()
  | Checkpoint.Engine ->
      (* An engine-run snapshot (kind code 0) belongs to
         [Engine.resume]. *)
      raise (Checkpoint.Error (Checkpoint.Unsupported_kind 0)));
  (* Churn payloads embed mid-epoch engine progress, whose layout
     changed at frame version 3 — older frames cannot be unmarshaled
     safely under the current types. *)
  if frame.Checkpoint.version < 3 then
    raise (Checkpoint.Error (Checkpoint.Unsupported_version frame.Checkpoint.version));
  let c = (Marshal.from_string frame.Checkpoint.payload 0 : progress) in
  let g = Graph_io.of_string c.c_graph in
  let statics, engine_payload =
    match c.c_engine with
    | Some (_, payload) ->
        (* The engine payload embeds the warm store; the placeholder
           is never consulted ([Engine.resume_of_payload] rebinds). *)
        (Route_static.create g, Some payload)
    | None -> (Route_static.of_snapshot g c.c_statics, None)
  in
  run_epochs ~params ~cfg ~faults ~checkpoint ~digest ~early ~start:c.c_epoch ~g
    ~statics ~full_isps:c.c_full_isps ~summaries_rev:c.c_summaries_rev
    ~engine_payload
