type t = {
  n : int;
  seed : int;
  built : Topology.Gen.built;
  statics : Bgp.Route_static.t;
  built_aug : Topology.Gen.built Lazy.t;
  statics_aug : Bgp.Route_static.t Lazy.t;
}

let default_n () = Nsutil.Env.int_var ~name:"SBGP_N" ~min:50 ~default:500 ()

let create ?n ?(seed = 42) () =
  let n = match n with Some v -> v | None -> default_n () in
  Nsobs.Log.info "scenario: generating synthetic topology (n=%d, seed=%d)" n seed;
  let params = { (Topology.Params.with_n Topology.Params.default n) with seed } in
  let built = Topology.Gen.generate params in
  let built_aug =
    lazy (Topology.Augment.augment_built built ~fraction:0.8 ~seed:(seed + 1))
  in
  (* Sort tie rows under the tiebreak the experiments actually run with
     (Config.default), so [Engine.run]'s [ensure_tiebreak] keeps the
     primed cache instead of dropping and re-sorting it. *)
  let tiebreak = Core.Config.default.tiebreak in
  {
    n;
    seed;
    built;
    statics = Bgp.Route_static.create ~tiebreak built.graph;
    built_aug;
    statics_aug =
      lazy (Bgp.Route_static.create ~tiebreak (Lazy.force built_aug).graph);
  }

let graph t = t.built.graph
let graph_aug t = (Lazy.force t.built_aug).graph
let cps t = t.built.cps
let top_isps t k = Asgraph.Metrics.top_by_degree (graph t) k
let case_study_adopters t = cps t @ top_isps t 5

let weights ?(augmented = false) t (cfg : Core.Config.t) =
  let g = if augmented then graph_aug t else graph t in
  Traffic.Weights.assign g ~cp_fraction:cfg.cp_fraction

type job_error = { job : int; error : string }

let run_many_outcomes ?(augmented = false) t jobs =
  let statics = if augmented then Lazy.force t.statics_aug else t.statics in
  let g = Bgp.Route_static.graph statics in
  let jobs = Array.of_list jobs in
  let workers = min (Parallel.Pool.default_workers ()) (max 1 (Array.length jobs)) in
  Nsobs.Log.info "scenario: running %d simulation job(s) on %d worker(s)"
    (Array.length jobs) workers;
  (* Prime the shared per-destination cache; engine runs below get
     [workers = 1], so parallelism is across jobs and a job's engine
     only ever reads the cache. *)
  Bgp.Route_static.ensure_all ~workers statics;
  Parallel.Pool.map_array ~workers ~tasks:(Array.length jobs) (fun i ->
      (* Crash containment per job: a failing simulation becomes an
         [Error] outcome instead of killing the other jobs' domains
         and losing the whole sweep. *)
      match
        let cfg, early = jobs.(i) in
        let cfg = { cfg with Core.Config.workers = 1 } in
        let weight = Traffic.Weights.assign g ~cp_fraction:cfg.Core.Config.cp_fraction in
        let state =
          Core.State.create g ~early ~simplex:(not cfg.disable_simplex)
            ~secp:(not cfg.disable_secp)
        in
        Core.Engine.run cfg statics ~weight ~state
      with
      | result -> Ok result
      | exception e ->
          let error = Printexc.to_string e in
          Nsobs.Log.warn "scenario: job %d failed: %s" i error;
          Error { job = i; error })
  |> Array.to_list

let run_many ?augmented t jobs =
  List.map
    (function
      | Ok r -> r
      | Error { job; error } ->
          failwith (Printf.sprintf "Scenario.run_many: job %d failed: %s" job error))
    (run_many_outcomes ?augmented t jobs)

let run ?(augmented = false) ?early t (cfg : Core.Config.t) =
  let g = if augmented then graph_aug t else graph t in
  let statics = if augmented then Lazy.force t.statics_aug else t.statics in
  let early = match early with Some e -> e | None -> case_study_adopters t in
  let weight = weights ~augmented t cfg in
  let state =
    Core.State.create g ~early ~simplex:(not cfg.disable_simplex)
      ~secp:(not cfg.disable_secp)
  in
  Core.Engine.run cfg statics ~weight ~state
