(* Section 8.4 extension: deployment on an evolving AS graph. After
   the case-study dynamics stabilize, the graph grows (new stubs
   multihome, preferentially to secure ISPs when the market rewards
   security), routing state is rebuilt, and the dynamics continue —
   epoch after epoch. *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph

module Evolution = struct
  let id = "evolution"
  let title =
    "Section 8.4: deployment across graph-growth epochs (new stubs prefer secure ISPs)"

  let epochs = 3
  let growth_fraction = 0.15
  let secure_bias = 2.0

  let run (s : Scenario.t) =
    (* Re-read the statics kernel here (not at module init) so
       [--statics-kernel], which exports SBGP_STATICS_KERNEL just
       before the experiments run, takes effect. *)
    let cfg =
      { Core.Config.default with statics_kernel = Bgp.Route_static.kernel_of_env () }
    in
    let t =
      Table.create
        ~header:
          [
            "epoch";
            "ASes";
            "secure ASes";
            "secure ISPs";
            "new stubs on secure ISPs";
            "rounds";
            "statics misses";
            "epoch s";
          ]
    in
    let early = Scenario.case_study_adopters s in
    (* One statics store lives across all epochs. Under the delta
       statics kernel (the default) each epoch boundary rebases it
       through the growth delta — only destinations the new stubs can
       reach are touched, the rest carry over — instead of rebuilding
       every destination from scratch; under [Full] the store is
       recreated each epoch. Results are bit-identical either way
       (parity suite, churn differential). *)
    let rec epoch k g statics full_isps =
      let t0 = Unix.gettimeofday () in
      let weight = Traffic.Weights.assign g ~cp_fraction:cfg.cp_fraction in
      let state = Core.State.create g ~early in
      List.iter
        (fun i ->
          if (not (Core.State.pinned state i)) && i < Graph.n g && Graph.is_isp g i then
            ignore (Core.State.enable state i))
        full_isps;
      let result = Core.Engine.run cfg statics ~weight ~state in
      let dt = Unix.gettimeofday () -. t0 in
      let n = Graph.n g in
      (* How many of this epoch's newly added stubs landed on a secure
         provider? (Epoch 0 has none.) *)
      let secure_frac_row new_on_secure =
        Table.add_row t
          [
            string_of_int k;
            string_of_int n;
            Table.cell_pct (Core.Engine.secure_fraction result `As);
            Table.cell_pct (Core.Engine.secure_fraction result `Isp);
            new_on_secure;
            string_of_int (Core.Engine.rounds_run result);
            string_of_int result.statics_misses;
            Printf.sprintf "%.3f" dt;
          ]
      in
      if k >= epochs then secure_frac_row "-"
      else begin
        let full_after = ref [] in
        for i = 0 to n - 1 do
          if Graph.is_isp g i && Core.State.full result.final i then
            full_after := i :: !full_after
        done;
        let grown, delta =
          Topology.Evolve.grow_delta g
            ~new_stubs:(max 1 (int_of_float (growth_fraction *. float_of_int n)))
            ~secure_bias
            ~is_secure:(fun i -> Core.State.secure result.final i)
            ~seed:(100 + k)
        in
        let statics =
          match cfg.statics_kernel with
          | Bgp.Route_static.Delta ->
              ignore
                (Bgp.Route_static.rebase ~kernel:Bgp.Route_static.Delta
                   ~workers:cfg.workers statics ~delta grown);
              statics
          | Bgp.Route_static.Full -> Bgp.Route_static.create grown
        in
        (* Count new stubs with at least one secure provider. *)
        let on_secure = ref 0 in
        let added = Graph.n grown - n in
        for stub = n to Graph.n grown - 1 do
          let hit = ref false in
          Graph.iter_providers grown stub (fun p ->
              if (not !hit) && Core.State.secure result.final p then hit := true);
          if !hit then incr on_secure
        done;
        secure_frac_row
          (Printf.sprintf "%d/%d (%s)" !on_secure added
             (Table.cell_pct (float_of_int !on_secure /. float_of_int (max 1 added))));
        epoch (k + 1) grown statics !full_after
      end
    in
    let g0 = Scenario.graph s in
    epoch 0 g0 (Bgp.Route_static.create g0) [];
    t
end
