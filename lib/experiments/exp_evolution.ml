(* Section 8.4 extension: deployment on an evolving AS graph. After
   the case-study dynamics stabilize, the graph grows (new stubs
   multihome, preferentially to secure ISPs when the market rewards
   security), routing state is rebuilt, and the dynamics continue —
   epoch after epoch. The mechanics live in {!Evolution_run} (the
   checkpointable churn runner); this experiment renders its epoch
   summaries. *)

module Table = Nsutil.Table

module Evolution = struct
  let id = "evolution"
  let title =
    "Section 8.4: deployment across graph-growth epochs (new stubs prefer secure ISPs)"

  let run (s : Scenario.t) =
    (* Re-read the statics kernel here (not at module init) so
       [--statics-kernel], which exports SBGP_STATICS_KERNEL just
       before the experiments run, takes effect. *)
    let cfg =
      { Core.Config.default with statics_kernel = Bgp.Route_static.kernel_of_env () }
    in
    let outcome =
      Evolution_run.run Evolution_run.default_params cfg (Scenario.graph s)
        ~early:(Scenario.case_study_adopters s)
    in
    let t =
      Table.create
        ~header:
          [
            "epoch";
            "ASes";
            "secure ASes";
            "secure ISPs";
            "new stubs on secure ISPs";
            "rounds";
            "statics misses";
            "epoch s";
          ]
    in
    List.iter
      (fun (e : Evolution_run.epoch_summary) ->
        Table.add_row t
          [
            string_of_int e.e_epoch;
            string_of_int e.e_nodes;
            Table.cell_pct e.e_secure_as;
            Table.cell_pct e.e_secure_isp;
            (match e.e_new_on_secure with
            | None -> "-"
            | Some (on_secure, added) ->
                Printf.sprintf "%d/%d (%s)" on_secure added
                  (Table.cell_pct (float_of_int on_secure /. float_of_int (max 1 added))));
            string_of_int e.e_rounds;
            string_of_int e.e_statics_misses;
            Printf.sprintf "%.3f" e.e_seconds;
          ])
      outcome.Evolution_run.summaries;
    t
end
