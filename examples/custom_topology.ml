(* Working with explicit topologies: build the paper's Figure-1 style
   graph by hand, serialize it, reload it, and run the deployment
   process on it.

   Run with: dune exec examples/custom_topology.exe *)

let () =
  (* A hand-built mini-Internet modeled on the paper's Figure 1:
     two competing ISPs under a Tier 1, a couple of stubs (one
     multi-homed) and a content provider peering with the Tier 1. *)
  let tier1 = 0 and isp_a = 1 and isp_b = 2 and cp = 3 in
  let stub_multi = 4 and stub_single = 5 in
  let graph =
    Asgraph.Graph.build ~n:6
      ~cp_edges:
        [
          (tier1, isp_a);
          (tier1, isp_b);
          (isp_a, stub_multi);
          (isp_b, stub_multi);
          (isp_b, stub_single);
        ]
      ~peer_edges:[ (tier1, cp) ]
      ~cps:[ cp ]
  in
  Printf.printf "built: %s"
    (Format.asprintf "%a@." Asgraph.Metrics.pp_summary (Asgraph.Metrics.summary graph));

  (* Round-trip through the CAIDA-style serialization. *)
  let path = Filename.temp_file "topology" ".asrel" in
  Asgraph.Graph_io.save graph path;
  let graph = Asgraph.Graph_io.load path in
  Sys.remove path;
  Printf.printf "round-tripped through %s format: %d nodes, %d + %d edges\n"
    (Filename.extension path) (Asgraph.Graph.n graph)
    (Asgraph.Graph.cp_edge_count graph)
    (Asgraph.Graph.peer_edge_count graph);

  (* Inspect the routing substrate: everyone's route to the
     multi-homed stub, with tiebreak sets. *)
  let statics = Bgp.Route_static.create graph in
  let info = Bgp.Route_static.get statics stub_multi in
  List.iter
    (fun node ->
      if node <> stub_multi && Bgp.Route_static.reachable info node then
        Printf.printf "  AS %d -> stub %d: %s route, %d hop(s), tiebreak set {%s}\n" node
          stub_multi
          (Bgp.Policy.class_to_string (Bgp.Route_static.class_of info node))
          (Bgp.Route_static.length_of info node)
          (String.concat ","
             (List.map string_of_int (Bgp.Route_static.tie_list info node))))
    [ tier1; isp_a; isp_b; cp; stub_single ];

  (* Run deployment with the Tier 1 and the CP as early adopters. *)
  let cfg =
    { Core.Config.default with tiebreak = Bgp.Policy.Lowest_id; cp_fraction = 0.5 }
  in
  let weight = Traffic.Weights.assign graph ~cp_fraction:cfg.cp_fraction in
  let state = Core.State.create graph ~early:[ tier1; cp ] in
  let result = Core.Engine.run cfg statics ~weight ~state in
  List.iter
    (fun (r : Core.Engine.round_record) ->
      Printf.printf "round %d: ISPs deploying: {%s}\n" r.round
        (String.concat "," (List.map string_of_int r.turned_on)))
    result.rounds;
  Printf.printf "final: ISP %d secure=%b, ISP %d secure=%b, multi-homed stub simplex=%b\n"
    isp_a
    (Core.State.secure result.final isp_a)
    isp_b
    (Core.State.secure result.final isp_b)
    (Core.State.simplex result.final stub_multi)
