(* The protocol, end to end: routers exchanging binary S-BGP updates
   over sessions, and what a hijacker can still reach at each level of
   security ambition.

   Run with: dune exec examples/wire_sessions.exe *)

module Graph = Asgraph.Graph
module Mode = Bgpsec.Mode

let () =
  let built = Topology.Gen.generate (Topology.Params.with_n Topology.Params.default 150) in
  let g = built.graph in
  let n = Graph.n g in

  Printf.printf "== Wire-level sessions ==\n";
  let modes =
    Array.init n (fun i -> if Graph.is_stub g i then Mode.Simplex else Mode.Full)
  in
  let session = Bgpsec.Session.create g ~modes in
  let origin = n - 1 in
  Bgpsec.Session.announce session ~origin;
  let reached = ref 0 and validated = ref 0 in
  for u = 0 to n - 1 do
    if u <> origin && Bgpsec.Session.selected_path session ~node:u ~origin <> [] then begin
      incr reached;
      if Bgpsec.Session.route_validated session ~node:u ~origin then incr validated
    end
  done;
  Printf.printf
    "  announced AS %d's prefix: %d updates decoded, %d bytes on the wire;\n\
    \  %d ASes installed a route, %d of them fully validated.\n"
    origin
    (Bgpsec.Session.messages_processed session)
    (Bgpsec.Session.bytes_on_wire session)
    !reached !validated;
  (match Bgpsec.Session.selected session ~node:0 ~origin with
  | Some ann ->
      Printf.printf "  AS 0's installed route: %s (prefix %s, %d signatures)\n"
        (String.concat " -> "
           (List.map string_of_int (Bgpsec.Session.selected_path session ~node:0 ~origin)))
        (Netaddr.Prefix.to_string ann.Bgpsec.Sbgp.prefix)
        (List.length ann.Bgpsec.Sbgp.sigs)
  | None -> ());

  Printf.printf "\n== What a hijacker still reaches (Section 2.2.2's trade-off) ==\n";
  let scenario = Experiments.Scenario.create ~n:300 () in
  let cfg = Core.Config.default in
  let final = (Experiments.Scenario.run scenario cfg).final in
  Printf.printf
    "  After the case-study deployment (%d%% of ASes secure), a random prefix\n\
    \  hijacker still deceives, on average:\n"
    (int_of_float
       (100.0
       *. float_of_int (Core.State.secure_count final)
       /. float_of_int (Graph.n (Experiments.Scenario.graph scenario))));
  List.iter
    (fun position ->
      let f =
        Core.Resilience.mean_deceived_fraction_ranked scenario.statics final
          ~stub_tiebreak:cfg.stub_tiebreak ~tiebreak:cfg.tiebreak ~position ~samples:80
          ~seed:9
      in
      Printf.printf "    %-14s : %4.1f%% of ASes\n"
        (Bgp.Flexsim.position_to_string position)
        (100.0 *. f))
    [ Bgp.Flexsim.Tiebreak_only; Bgp.Flexsim.Before_length; Bgp.Flexsim.Before_lp ];
  Printf.printf
    "  The paper's tie-break-only rule is what creates deployment incentives;\n\
    \  the residual reach above is the price, and why Section 9 calls for care\n\
    \  while S*BGP and BGP coexist.\n"
