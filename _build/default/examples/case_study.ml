(* The Section 5 case study, narrated: market pressure, the DIAMOND
   competition pattern, and who wins and loses utility.

   Run with: dune exec examples/case_study.exe
   (set SBGP_N to change the scale; default 500) *)

let () =
  let scenario = Experiments.Scenario.create () in
  let g = Experiments.Scenario.graph scenario in
  let cfg = Core.Config.default in
  Printf.printf "== The competition mechanism in miniature (Figure 2) ==\n";
  let d = Gadgets.Diamond.build () in
  let statics = Bgp.Route_static.create d.graph in
  let state = Core.State.create d.graph ~early:d.early in
  let result = Core.Engine.run Gadgets.Diamond.config statics ~weight:d.weight ~state in
  List.iter
    (fun (r : Core.Engine.round_record) ->
      List.iter
        (fun isp ->
          let who = if isp = d.isp_a then "the incumbent" else "the challenger" in
          Printf.printf "  round %d: ISP %d (%s) deploys S*BGP\n" r.round isp who)
        r.turned_on)
    result.rounds;
  Printf.printf
    "  the challenger deployed to steal the source's traffic; the incumbent\n\
    \  deployed one round later to win it back — both end up secure.\n\n";

  Printf.printf "== The full synthetic Internet (N = %d) ==\n" scenario.n;
  let result = Experiments.Scenario.run scenario cfg in
  let n_rounds = Core.Engine.rounds_run result in
  Printf.printf "  deployment ran %d rounds; %.0f%% of ASes and %.0f%% of ISPs end secure\n"
    n_rounds
    (100.0 *. Core.Engine.secure_fraction result `As)
    (100.0 *. Core.Engine.secure_fraction result `Isp);

  (* Winners and losers (Section 5.6). *)
  let deployed = Core.Analyses.mean_utility_change result ~among:(fun i ->
      Asgraph.Graph.is_isp g i && Core.State.secure result.final i
      && not (Core.State.pinned result.final i))
  in
  let holdouts = Core.Analyses.mean_utility_change result ~among:(fun i ->
      Asgraph.Graph.is_isp g i && not (Core.State.secure result.final i))
  in
  Printf.printf "  mean final/starting utility: deployers %.3f, holdouts %.3f\n"
    deployed holdouts;
  Printf.printf "  (the paper: holdouts lose ~13%% of their starting utility on average)\n\n";

  Printf.printf "== ISPs that never deploy (Section 5.3) ==\n";
  let never = Core.Analyses.never_secure_isps result in
  let degrees =
    Array.of_list (List.map (fun i -> float_of_int (Asgraph.Graph.degree g i)) never)
  in
  Printf.printf
    "  %d ISPs never deploy; mean degree %.1f (they face no competition —\n\
    \  typically providers of exclusively single-homed stubs)\n"
    (List.length never)
    (Nsutil.Stats.mean degrees)
