(* Quickstart: generate a small synthetic Internet, pick early
   adopters, run the deployment game, and look at what happened.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A 400-AS synthetic Internet: Tier-1 clique, transit ISPs,
     content providers, ~85% stubs. Deterministic given the seed. *)
  let params = Topology.Params.with_n Topology.Params.default 400 in
  let built = Topology.Gen.generate params in
  let graph = built.graph in
  Format.printf "topology: %a@." Asgraph.Metrics.pp_summary (Asgraph.Metrics.summary graph);

  (* 2. Early adopters: the five content providers plus the five
     highest-degree ISPs — the paper's Section 5 recipe. *)
  let early = built.cps @ Asgraph.Metrics.top_by_degree graph 5 in
  Printf.printf "early adopters: %s\n"
    (String.concat ", " (List.map string_of_int early));

  (* 3. Simulation parameters: theta = 5%% deployment threshold,
     outgoing utility, CPs originate 10%% of all traffic. *)
  let cfg = Core.Config.default in
  let weight = Traffic.Weights.assign graph ~cp_fraction:cfg.cp_fraction in

  (* 4. Run the myopic best-response dynamics to a stable state. *)
  let statics = Bgp.Route_static.create graph in
  let state = Core.State.create graph ~early in
  let result = Core.Engine.run cfg statics ~weight ~state in

  List.iter
    (fun (r : Core.Engine.round_record) ->
      Printf.printf "round %d: %d ISPs deployed, %d/%d ASes now secure\n" r.round
        (List.length r.turned_on) r.secure_as (Asgraph.Graph.n graph))
    result.rounds;

  (* 5. How much security did the Internet gain? *)
  let stats = Core.Analyses.secure_path_stats cfg statics state ~weight in
  Printf.printf
    "terminated (%s): %.0f%% of ASes secure; %.0f%% of all AS-to-AS routes fully secure\n"
    (match result.termination with
    | Core.Engine.Stable -> "stable"
    | Core.Engine.Oscillation _ -> "oscillation"
    | Core.Engine.Max_rounds -> "round cap")
    (100.0 *. Core.Engine.secure_fraction result `As)
    (100.0 *. stats.fraction)
