examples/secure_messages.ml: Array Asgraph Bgpsec Printf Result Rpki Topology
