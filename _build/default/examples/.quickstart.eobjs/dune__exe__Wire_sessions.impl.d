examples/wire_sessions.ml: Array Asgraph Bgp Bgpsec Core Experiments List Netaddr Printf String Topology
