examples/buyers_remorse.ml: Array Bgp Core Gadgets List Printf String
