examples/wire_sessions.mli:
