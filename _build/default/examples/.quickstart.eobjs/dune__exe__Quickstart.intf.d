examples/quickstart.mli:
