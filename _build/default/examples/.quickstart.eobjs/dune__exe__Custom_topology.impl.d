examples/custom_topology.ml: Asgraph Bgp Core Filename Format List Nsutil Printf String Sys Traffic
