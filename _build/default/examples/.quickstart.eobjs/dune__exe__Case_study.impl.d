examples/case_study.ml: Array Asgraph Bgp Core Experiments Gadgets List Nsutil Printf
