examples/buyers_remorse.mli:
