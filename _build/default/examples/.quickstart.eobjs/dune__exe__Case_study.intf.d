examples/case_study.mli:
