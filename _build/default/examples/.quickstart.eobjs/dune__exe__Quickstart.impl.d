examples/quickstart.ml: Asgraph Bgp Core Format List Printf String Topology Traffic
