examples/secure_messages.mli:
