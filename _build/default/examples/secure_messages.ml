(* The message layer: RPKI enrollment, signed S-BGP announcements,
   soBGP link certificates, simplex mode, and the attacks each
   mechanism stops.

   Run with: dune exec examples/secure_messages.exe *)

let check label ok = Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") label

let () =
  Printf.printf "== RPKI: certificates and ROAs ==\n";
  let registry = Rpki.Registry.create ~seed:7 in
  let enroll asn =
    match Rpki.Registry.enroll registry ~asn ~prefixes:[ Bgpsec.Netsim_prefix.of_as asn ] with
    | Ok cert -> cert
    | Error e -> failwith e
  in
  let origin = 64496 and transit = 64497 and customer = 64498 in
  let _ = enroll origin and _ = enroll transit and _ = enroll customer in
  check "origin's certificate chain validates"
    (Result.is_ok (Rpki.Registry.verify_as_chain registry ~asn:origin));
  let prefix = Bgpsec.Netsim_prefix.of_as origin in
  check "ROA says the origin may announce its prefix"
    (Rpki.Registry.origin_validity registry ~prefix ~origin_asn:origin = Rpki.Roa.Valid);
  check "ROA rejects anyone else announcing it"
    (Rpki.Registry.origin_validity registry ~prefix ~origin_asn:transit
    = Rpki.Roa.Invalid_origin);

  Printf.printf "\n== S-BGP: nested route attestations ==\n";
  let ann =
    match Bgpsec.Sbgp.originate registry ~origin ~prefix ~target:transit ~signed:true with
    | Ok a -> a
    | Error e -> failwith (Bgpsec.Sbgp.error_to_string e)
  in
  let forwarded =
    match Bgpsec.Sbgp.forward registry ~sender:transit ~target:customer ~signed:true ann with
    | Ok a -> a
    | Error e -> failwith (Bgpsec.Sbgp.error_to_string e)
  in
  check "two-hop signed path validates at the customer"
    (Result.is_ok (Bgpsec.Sbgp.validate registry ~receiver:customer forwarded));
  check "replaying the copy meant for the transit elsewhere fails"
    (Result.is_error (Bgpsec.Sbgp.validate registry ~receiver:customer ann));

  Printf.printf "\n== Simplex mode: what stubs do and don't ==\n";
  check "simplex stubs sign their own prefixes"
    (Bgpsec.Mode.signs_origination Bgpsec.Mode.Simplex);
  check "simplex stubs do not validate" (not (Bgpsec.Mode.validates Bgpsec.Mode.Simplex));
  check "simplex stubs do not sign transit routes"
    (not (Bgpsec.Mode.signs_transit Bgpsec.Mode.Simplex));

  Printf.printf "\n== soBGP: link certificates ==\n";
  let db = Bgpsec.Sobgp.create_db () in
  (match Bgpsec.Sobgp.certify_link registry db origin transit with
  | Ok _ -> ()
  | Error e -> failwith e);
  check "certified link passes topology validation"
    (Bgpsec.Sobgp.path_valid registry db [ transit; origin ]);
  check "uncertified link fails topology validation"
    (not (Bgpsec.Sobgp.path_valid registry db [ customer; origin ]));

  Printf.printf "\n== Attacks (Appendix B and friends) ==\n";
  check "prefix origin hijack detected" (Bgpsec.Attack.origin_hijack_detected ());
  check "path splice / shortening detected" (Bgpsec.Attack.path_forgery_detected ());
  check "replay to the wrong neighbor detected"
    (Bgpsec.Attack.replay_to_wrong_neighbor_detected ());
  let sound = Bgpsec.Attack.appendix_b ~prefer_partial:false in
  let unsound = Bgpsec.Attack.appendix_b ~prefer_partial:true in
  check "fully-secure-only preference keeps the true route" (not sound.chose_false_path);
  Printf.printf
    "  [!!] preferring partially-secure paths routes to the attacker: %b\n\
    \       (this is why the paper forbids it, Section 2.2.2)\n"
    unsound.chose_false_path;

  Printf.printf "\n== Message-level vs abstract model ==\n";
  (* A small graph routed both by real signed messages (Netsim) and by
     the abstract routing-tree computation: chosen paths agree. *)
  let params = Topology.Params.with_n Topology.Params.default 120 in
  let built = Topology.Gen.generate params in
  let g = built.graph in
  let n = Asgraph.Graph.n g in
  let modes =
    Array.init n (fun i ->
        if i mod 3 = 0 then Bgpsec.Mode.Full
        else if Asgraph.Graph.is_stub g i then Bgpsec.Mode.Simplex
        else Bgpsec.Mode.Off)
  in
  let setup = Bgpsec.Netsim.prepare g ~modes in
  let dest = n - 1 in
  let outcome = Bgpsec.Netsim.route_to setup ~dest in
  let secured = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 outcome.secure in
  Printf.printf "  routed %d ASes to AS %d in %d iterations; %d hold validated routes\n"
    n dest outcome.iterations secured
