(* The dark side of the incoming-utility model (Section 7): an ISP
   with an incentive to switch S*BGP off, and two ISPs that oscillate
   forever.

   Run with: dune exec examples/buyers_remorse.exe *)

let () =
  Printf.printf "== Buyer's remorse (Figure 13) ==\n";
  let r = Gadgets.Remorse.build () in
  Printf.printf
    "  A content provider (weight %.0f) reaches ISP %d's %d stub customers either\n\
    \  through the ISP's provider %d (fully secure while the ISP runs S*BGP) or\n\
    \  through the ISP's customer %d (tie-break preferred, insecure).\n"
    r.weight.(r.cp) r.isp (List.length r.stubs) r.upstream r.downstream;
  let statics = Bgp.Route_static.create r.graph in
  let state = Gadgets.Remorse.initial_state r in
  let u0 =
    Core.Utility.all Gadgets.Remorse.config statics state ~weight:r.weight
  in
  let result = Core.Engine.run Gadgets.Remorse.config statics ~weight:r.weight ~state in
  let proj =
    match result.rounds with first :: _ -> first.projected.(r.isp) | [] -> 0.0
  in
  Printf.printf
    "  While secure, the CP's traffic arrives over a provider edge and earns the\n\
    \  ISP %.0f. Disabling S*BGP reroutes it over a customer edge: projected %.0f.\n"
    u0.(r.isp) proj;
  Printf.printf "  => the ISP turns S*BGP off; secure at termination: %b\n\n"
    (Core.State.secure result.final r.isp);

  Printf.printf "== Oscillation (Section 7.2, CHICKEN gadget) ==\n";
  let c = Gadgets.Chicken.build () in
  let statics = Bgp.Route_static.create c.graph in
  let state = Core.State.create c.graph ~early:c.early ~frozen:c.frozen in
  let result = Core.Engine.run Gadgets.Chicken.config statics ~weight:c.weight ~state in
  List.iter
    (fun (rr : Core.Engine.round_record) ->
      Printf.printf "  round %d: turned on {%s}, turned off {%s}\n" rr.round
        (String.concat "," (List.map string_of_int rr.turned_on))
        (String.concat "," (List.map string_of_int rr.turned_off)))
    result.rounds;
  (match result.termination with
  | Core.Engine.Oscillation { first_round } ->
      Printf.printf
        "  => the deployment state of round %d recurs: ISPs %d and %d flip forever.\n"
        first_round c.player10 c.player20
  | _ -> Printf.printf "  => unexpected termination\n");
  Printf.printf
    "  Deciding whether such dynamics ever stabilize is PSPACE-complete\n\
    \  (Theorem 7.1); the game below is why — the only stable outcomes are\n\
    \  the asymmetric ones, which simultaneous best response never reaches:\n";
  List.iter
    (fun (on10, on20) ->
      let u10, u20 = Gadgets.Chicken.payoff c ~on10 ~on20 in
      Printf.printf "    10=%-3s 20=%-3s -> utilities (%.0f, %.0f)\n"
        (if on10 then "ON" else "OFF")
        (if on20 then "ON" else "OFF")
        u10 u20)
    [ (true, true); (true, false); (false, true); (false, false) ]
