(* Tests for the synthetic topology generator and augmentation: the
   generated graphs must have the structural properties the deployment
   dynamics rely on (DESIGN.md section 3). *)

module Graph = Asgraph.Graph
module Gen = Topology.Gen
module Params = Topology.Params
module Augment = Topology.Augment
module Validate = Asgraph.Validate
module Metrics = Asgraph.Metrics

let check = Alcotest.check

let built_cache = Hashtbl.create 4

let build ?(n = 400) ?(seed = 42) () =
  match Hashtbl.find_opt built_cache (n, seed) with
  | Some b -> b
  | None ->
      let b = Gen.generate { (Params.with_n Params.default n) with seed } in
      Hashtbl.replace built_cache (n, seed) b;
      b

let test_valid_structure () =
  let b = build () in
  let r = Validate.run b.graph in
  check Alcotest.bool "gr1 acyclic" true r.gr1_acyclic;
  check Alcotest.bool "connected" true r.connected;
  check Alcotest.int "no orphans" 0 r.orphan_count;
  check Alcotest.int "tier1 clique intact" (List.length b.tier1) r.tier1_count

let test_stub_fraction () =
  let b = build () in
  let f = Metrics.stub_fraction b.graph in
  check Alcotest.bool "around 85% stubs" true (f > 0.78 && f < 0.92)

let test_cp_properties () =
  let b = build () in
  List.iter
    (fun cp ->
      check Alcotest.bool "cp class" true (Graph.is_cp b.graph cp);
      check Alcotest.int "cp has no customers" 0 (Graph.customer_degree b.graph cp);
      check Alcotest.bool "cp has providers" true (Graph.provider_degree b.graph cp > 0))
    b.cps;
  check Alcotest.int "five cps" 5 (List.length b.cps)

let test_tier1_clique () =
  let b = build () in
  List.iter
    (fun a ->
      check Alcotest.int "tier1 has no providers" 0 (Graph.provider_degree b.graph a);
      List.iter
        (fun b' ->
          if a <> b' then
            check Alcotest.(option string) "tier1s peer" (Some "peer")
              (Option.map Graph.rel_to_string (Graph.rel b.graph a b')))
        b.tier1)
    b.tier1

let test_degree_skew () =
  let b = build () in
  let degrees = Metrics.degree_array b.graph in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 degrees) /. float_of_int (Array.length degrees)
  in
  let maxdeg = Array.fold_left max 0 degrees in
  check Alcotest.bool "heavy tail: max >> mean" true (float_of_int maxdeg > 8.0 *. mean)

let test_multihoming_distribution () =
  let b = build () in
  let g = b.graph in
  let single = ref 0 and multi = ref 0 in
  for i = 0 to Graph.n g - 1 do
    if Graph.is_stub g i then
      if Graph.provider_degree g i = 1 then incr single else incr multi
  done;
  let frac_single = float_of_int !single /. float_of_int (!single + !multi) in
  check Alcotest.bool "roughly half the stubs single-homed" true
    (frac_single > 0.35 && frac_single < 0.75);
  check Alcotest.bool "multi-homed stubs exist (the competition locus)" true (!multi > 20)

let test_deterministic () =
  let a = Gen.generate { (Params.with_n Params.default 200) with seed = 9 } in
  let b = Gen.generate { (Params.with_n Params.default 200) with seed = 9 } in
  check Alcotest.bool "same seed, same graph" true (Graph.edges a.graph = Graph.edges b.graph);
  let c = Gen.generate { (Params.with_n Params.default 200) with seed = 10 } in
  check Alcotest.bool "different seed, different graph" true
    (Graph.edges a.graph <> Graph.edges c.graph)

let test_rejects_bad_params () =
  Alcotest.check_raises "no tier1" (Invalid_argument "Gen.generate: need at least one Tier 1")
    (fun () -> ignore (Gen.generate { Params.default with tier1 = 0 }));
  Alcotest.check_raises "no stubs" (Invalid_argument "Gen.generate: no room for stubs")
    (fun () -> ignore (Gen.generate { Params.default with n = 20; cps = 18 }))

let test_scaling () =
  List.iter
    (fun n ->
      let b = build ~n () in
      check Alcotest.int (Printf.sprintf "n=%d" n) n (Graph.n b.graph);
      check Alcotest.bool "valid" true (Validate.gr1_acyclic b.graph))
    [ 100; 250; 800 ]

(* ------------------------------------------------------------------ *)
(* Augmentation *)

let test_augment_adds_cp_peering () =
  let b = build () in
  let aug = Augment.augment_built b ~fraction:0.8 ~seed:1 in
  check Alcotest.int "same node count" (Graph.n b.graph) (Graph.n aug.graph);
  check Alcotest.int "same cp edges" (Graph.cp_edge_count b.graph)
    (Graph.cp_edge_count aug.graph);
  check Alcotest.bool "more peering" true
    (Graph.peer_edge_count aug.graph > Graph.peer_edge_count b.graph);
  List.iter
    (fun cp ->
      check Alcotest.bool "cp degree grew" true
        (Graph.degree aug.graph cp > Graph.degree b.graph cp))
    b.cps;
  check Alcotest.bool "still valid" true (Validate.gr1_acyclic aug.graph)

let test_augment_shortens_cp_paths () =
  let b = build () in
  let aug = Augment.augment_built b ~fraction:0.9 ~seed:1 in
  let statics = Bgp.Route_static.create b.graph in
  let statics_aug = Bgp.Route_static.create aug.graph in
  let mean stats =
    Nsutil.Stats.mean
      (Array.of_list
         (List.map (fun cp -> Bgp.Route_static.mean_path_length stats ~from:cp) b.cps))
  in
  check Alcotest.bool "augmentation shortens CP paths" true
    (mean statics_aug < mean statics)

let test_augment_zero_fraction_noop () =
  let b = build () in
  let aug = Augment.augment b.graph ~targets:b.ixp_present ~fraction:0.0 ~seed:3 in
  check Alcotest.bool "identical edges" true
    (List.sort compare (Graph.edges b.graph) = List.sort compare (Graph.edges aug))

let test_augment_preserves_classes () =
  let b = build () in
  let aug = Augment.augment_built b ~fraction:0.8 ~seed:2 in
  for i = 0 to Graph.n b.graph - 1 do
    check Alcotest.string "class preserved"
      (Asgraph.As_class.to_string (Graph.klass b.graph i))
      (Asgraph.As_class.to_string (Graph.klass aug.graph i))
  done

(* ------------------------------------------------------------------ *)
(* Evolution (Section 8.4 extension) *)

let test_evolve_grows_stubs () =
  let b = build () in
  let g = Topology.Evolve.grow b.graph ~new_stubs:40 ~secure_bias:0.0
      ~is_secure:(fun _ -> false) ~seed:5
  in
  check Alcotest.int "node count" (Graph.n b.graph + 40) (Graph.n g);
  check Alcotest.bool "still valid" true (Validate.gr1_acyclic g);
  for s = Graph.n b.graph to Graph.n g - 1 do
    check Alcotest.bool "new node is a stub" true (Graph.is_stub g s);
    check Alcotest.bool "has a provider" true (Graph.provider_degree g s >= 1)
  done

let test_evolve_preserves_existing () =
  let b = build () in
  let g = Topology.Evolve.grow b.graph ~new_stubs:10 ~secure_bias:1.0
      ~is_secure:(fun i -> i mod 2 = 0) ~seed:6
  in
  let old_edges = List.sort compare (Graph.edges b.graph) in
  let kept =
    List.sort compare
      (List.filter
         (fun ((a, bb), _) -> a < Graph.n b.graph && bb < Graph.n b.graph)
         (Graph.edges g))
  in
  check Alcotest.bool "old edges intact" true (old_edges = kept);
  List.iter
    (fun cp -> check Alcotest.bool "cp classes preserved" true (Graph.is_cp g cp))
    b.cps

let test_evolve_bias_attracts () =
  let b = build () in
  let secure = fun i -> List.mem i (Asgraph.Metrics.top_by_degree b.graph 3) in
  let count_on_secure g n0 =
    let hits = ref 0 and total = ref 0 in
    for s = n0 to Graph.n g - 1 do
      incr total;
      let hit = ref false in
      Graph.iter_providers g s (fun p -> if secure p then hit := true);
      if !hit then incr hits
    done;
    float_of_int !hits /. float_of_int (max 1 !total)
  in
  let n0 = Graph.n b.graph in
  let biased =
    count_on_secure
      (Topology.Evolve.grow b.graph ~new_stubs:150 ~secure_bias:8.0 ~is_secure:secure
         ~seed:7)
      n0
  in
  let unbiased =
    count_on_secure
      (Topology.Evolve.grow b.graph ~new_stubs:150 ~secure_bias:0.0 ~is_secure:secure
         ~seed:7)
      n0
  in
  check Alcotest.bool "bias increases attachment to secure ISPs" true (biased > unbiased)

let test_evolve_rejects_bad_args () =
  let b = build () in
  Alcotest.check_raises "negative bias" (Invalid_argument "Evolve.grow: negative bias")
    (fun () ->
      ignore
        (Topology.Evolve.grow b.graph ~new_stubs:1 ~secure_bias:(-1.0)
           ~is_secure:(fun _ -> false) ~seed:1))

let () =
  Alcotest.run "topology"
    [
      ( "generator",
        [
          Alcotest.test_case "valid structure" `Quick test_valid_structure;
          Alcotest.test_case "stub fraction ~85%" `Quick test_stub_fraction;
          Alcotest.test_case "content providers" `Quick test_cp_properties;
          Alcotest.test_case "tier1 clique" `Quick test_tier1_clique;
          Alcotest.test_case "degree skew" `Quick test_degree_skew;
          Alcotest.test_case "stub multihoming" `Quick test_multihoming_distribution;
          Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
          Alcotest.test_case "rejects bad params" `Quick test_rejects_bad_params;
          Alcotest.test_case "scales" `Quick test_scaling;
        ] );
      ( "evolve",
        [
          Alcotest.test_case "grows stubs" `Quick test_evolve_grows_stubs;
          Alcotest.test_case "preserves existing graph" `Quick test_evolve_preserves_existing;
          Alcotest.test_case "bias attracts to secure ISPs" `Quick test_evolve_bias_attracts;
          Alcotest.test_case "rejects bad args" `Quick test_evolve_rejects_bad_args;
        ] );
      ( "augment",
        [
          Alcotest.test_case "adds CP peering" `Quick test_augment_adds_cp_peering;
          Alcotest.test_case "shortens CP paths" `Quick test_augment_shortens_cp_paths;
          Alcotest.test_case "zero fraction is a no-op" `Quick test_augment_zero_fraction_noop;
          Alcotest.test_case "preserves classes" `Quick test_augment_preserves_classes;
        ] );
    ]
