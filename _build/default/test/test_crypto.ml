(* Tests for the crypto substrate: SHA-256 against FIPS/NIST vectors,
   HMAC against RFC 4231, and the simulated signature scheme. *)

module Sha256 = Scrypto.Sha256
module Hmac = Scrypto.Hmac
module Sig_scheme = Scrypto.Sig_scheme

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-4 / NIST CAVP vectors. *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ("The quick brown fox jumps over the lazy dog",
     "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
  ]

let test_sha_vectors () =
  List.iter
    (fun (msg, expected) -> check Alcotest.string msg expected (Sha256.digest_hex msg))
    sha_vectors

let test_sha_million_a () =
  (* The classic FIPS "one million a's" vector, fed incrementally. *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed ctx chunk
  done;
  check Alcotest.string "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Sha256.finalize ctx))

let test_sha_block_boundaries () =
  (* Lengths around the 56/64-byte padding boundaries are where
     padding bugs live. *)
  List.iter
    (fun len ->
      let msg = String.make len 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) msg;
      check Alcotest.string
        (Printf.sprintf "len %d incremental = one-shot" len)
        (Sha256.digest_hex msg)
        (Sha256.hex (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 127; 128; 1000 ]

let test_sha_incremental_qcheck =
  qtest "incremental feeding at arbitrary splits matches one-shot"
    QCheck2.Gen.(pair (string_size (int_range 0 300)) (int_bound 299))
    (fun (s, split) ->
      let split = min split (String.length s) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub s 0 split);
      Sha256.feed ctx (String.sub s split (String.length s - split));
      Sha256.finalize ctx = Sha256.digest_string s)

let test_sha_distinct_qcheck =
  qtest "distinct inputs give distinct digests"
    QCheck2.Gen.(pair (string_size (int_range 0 64)) (string_size (int_range 0 64)))
    (fun (a, b) -> a = b || Sha256.digest_string a <> Sha256.digest_string b)

let test_sha_digest_length () =
  check Alcotest.int "raw digest is 32 bytes" 32 (String.length (Sha256.digest_string "x"));
  check Alcotest.int "hex digest is 64 chars" 64 (String.length (Sha256.digest_hex "x"))

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256: RFC 4231 test cases. *)

let test_hmac_rfc4231 () =
  let cases =
    [
      ( String.make 20 '\x0b',
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( String.make 20 '\xaa',
        String.make 50 '\xdd',
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" );
    ]
  in
  List.iter
    (fun (key, msg, expected) ->
      check Alcotest.string "rfc4231" expected (Hmac.mac_hex ~key msg))
    cases

let test_hmac_verify () =
  let key = "secret" and msg = "message" in
  let tag = Hmac.mac ~key msg in
  check Alcotest.bool "verifies" true (Hmac.verify ~key ~msg ~tag);
  check Alcotest.bool "wrong key" false (Hmac.verify ~key:"other" ~msg ~tag);
  check Alcotest.bool "wrong msg" false (Hmac.verify ~key ~msg:"tampered" ~tag);
  check Alcotest.bool "wrong length tag" false (Hmac.verify ~key ~msg ~tag:"short")

let test_hmac_tamper_qcheck =
  qtest "flipping any tag bit breaks verification"
    QCheck2.Gen.(pair (string_size (int_range 0 40)) (int_bound 255))
    (fun (msg, pos) ->
      let key = "k" in
      let tag = Hmac.mac ~key msg in
      let pos = pos mod (String.length tag * 8) in
      let tampered = Bytes.of_string tag in
      let byte = pos / 8 in
      Bytes.set tampered byte
        (Char.chr (Char.code (Bytes.get tampered byte) lxor (1 lsl (pos mod 8))));
      not (Hmac.verify ~key ~msg ~tag:(Bytes.to_string tampered)))

(* ------------------------------------------------------------------ *)
(* Simulated signatures. *)

let test_sig_roundtrip () =
  let rng = Nsutil.Prng.create ~seed:3 in
  let kp = Sig_scheme.generate rng in
  let s = Sig_scheme.sign kp "hello" in
  check Alcotest.bool "verifies" true
    (Sig_scheme.verify ~verification_key:kp ~msg:"hello" s);
  check Alcotest.bool "wrong message" false
    (Sig_scheme.verify ~verification_key:kp ~msg:"hellO" s);
  let other = Sig_scheme.generate rng in
  check Alcotest.bool "wrong key" false
    (Sig_scheme.verify ~verification_key:other ~msg:"hello" s)

let test_sig_deterministic_from_secret () =
  let a = Sig_scheme.of_secret "material" and b = Sig_scheme.of_secret "material" in
  check Alcotest.string "same key id" a.key_id b.key_id

let test_sig_wire_roundtrip () =
  let kp = Sig_scheme.of_secret "k" in
  let s = Sig_scheme.sign kp "m" in
  match Sig_scheme.signature_of_string (Sig_scheme.signature_to_string s) with
  | None -> Alcotest.fail "did not parse"
  | Some s' ->
      check Alcotest.bool "parsed signature verifies" true
        (Sig_scheme.verify ~verification_key:kp ~msg:"m" s')

let test_sig_wire_rejects_garbage () =
  List.iter
    (fun s ->
      check Alcotest.bool s true (Sig_scheme.signature_of_string s = None))
    [ ""; "nocolon"; "zz:zz"; "abc:12"; "0g00:1234" ]

let test_sig_qcheck =
  qtest "sign/verify round-trips arbitrary messages"
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun msg ->
      let kp = Sig_scheme.of_secret "fixed" in
      Sig_scheme.verify ~verification_key:kp ~msg (Sig_scheme.sign kp msg))

let () =
  Alcotest.run "scrypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
          Alcotest.test_case "million a's (incremental)" `Quick test_sha_million_a;
          Alcotest.test_case "padding boundaries" `Quick test_sha_block_boundaries;
          Alcotest.test_case "digest lengths" `Quick test_sha_digest_length;
          test_sha_incremental_qcheck;
          test_sha_distinct_qcheck;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify semantics" `Quick test_hmac_verify;
          test_hmac_tamper_qcheck;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "roundtrip" `Quick test_sig_roundtrip;
          Alcotest.test_case "deterministic from secret" `Quick
            test_sig_deterministic_from_secret;
          Alcotest.test_case "wire roundtrip" `Quick test_sig_wire_roundtrip;
          Alcotest.test_case "wire rejects garbage" `Quick test_sig_wire_rejects_garbage;
          test_sig_qcheck;
        ] );
    ]
