test/test_adopters.mli:
