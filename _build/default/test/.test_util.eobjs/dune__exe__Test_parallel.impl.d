test/test_parallel.ml: Alcotest Array Asgraph Bgp Core List Parallel Printf Topology Traffic
