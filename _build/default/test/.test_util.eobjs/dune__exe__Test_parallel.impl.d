test/test_parallel.ml: Alcotest Array Asgraph Bgp Core List Nsutil Parallel Printf String Topology Traffic
