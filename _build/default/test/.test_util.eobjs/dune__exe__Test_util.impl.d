test/test_util.ml: Alcotest Array Fun Hashtbl List Nsutil Option Printf QCheck2 QCheck_alcotest String Unix
