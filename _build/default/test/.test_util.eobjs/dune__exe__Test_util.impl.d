test/test_util.ml: Alcotest Array Hashtbl List Nsutil QCheck2 QCheck_alcotest String
