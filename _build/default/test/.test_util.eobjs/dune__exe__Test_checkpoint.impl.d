test/test_checkpoint.ml: Alcotest Array Asgraph Bgp Bytes Char Core Filename Fun List Nsutil Parallel Printf Scrypto String Sys Topology Traffic
