test/test_traffic.ml: Alcotest Array Asgraph Bgp Core Float List Printf QCheck2 QCheck_alcotest Traffic
