test/test_gadgets.mli:
