test/test_checkpoint.mli:
