test/test_asgraph.mli:
