test/test_core.ml: Alcotest Array Asgraph Bgp Bytes Core Gadgets List QCheck2 QCheck_alcotest String Testkit Traffic
