test/test_bgp.ml: Alcotest Array Asgraph Bgp Bytes List Nsutil QCheck2 QCheck_alcotest String Testkit
