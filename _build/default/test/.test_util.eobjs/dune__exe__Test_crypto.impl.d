test/test_crypto.ml: Alcotest Bytes Char List Nsutil Printf QCheck2 QCheck_alcotest Scrypto String
