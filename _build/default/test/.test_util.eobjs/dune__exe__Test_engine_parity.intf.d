test/test_engine_parity.mli:
