test/test_bgpsec.mli:
