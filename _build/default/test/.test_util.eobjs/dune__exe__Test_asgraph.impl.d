test/test_asgraph.ml: Alcotest Array Asgraph Buffer Filename Fun Hashtbl List Option Printf QCheck2 QCheck_alcotest String Sys Topology
