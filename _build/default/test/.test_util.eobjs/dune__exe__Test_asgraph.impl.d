test/test_asgraph.ml: Alcotest Array Asgraph Buffer Hashtbl List Option Printf QCheck2 QCheck_alcotest String Topology
