test/test_rpki.ml: Alcotest Format List Netaddr Nsutil Result Rpki Scrypto
