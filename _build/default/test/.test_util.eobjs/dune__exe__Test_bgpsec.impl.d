test/test_bgpsec.ml: Alcotest Array Asgraph Bgp Bgpsec Bytes Char List Netaddr Printf QCheck2 QCheck_alcotest Result Rpki String Testkit Topology
