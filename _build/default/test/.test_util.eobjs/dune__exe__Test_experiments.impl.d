test/test_experiments.ml: Alcotest Asgraph Core Experiments Lazy List Nsutil String
