test/test_netaddr.ml: Alcotest List Netaddr QCheck2 QCheck_alcotest
