test/test_engine_parity.ml: Alcotest Array Asgraph Bgp Core Format Gadgets List Nsutil Printf Topology Traffic
