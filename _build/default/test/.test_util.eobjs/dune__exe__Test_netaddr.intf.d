test/test_netaddr.mli:
