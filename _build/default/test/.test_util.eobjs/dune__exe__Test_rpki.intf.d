test/test_rpki.mli:
