test/test_adopters.ml: Adopters Alcotest Array Asgraph Bgp Gadgets List
