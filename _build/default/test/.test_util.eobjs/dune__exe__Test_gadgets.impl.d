test/test_gadgets.ml: Adopters Alcotest Array Asgraph Bgp Core Gadgets Hashtbl List Printf String
