test/test_topology.ml: Alcotest Array Asgraph Bgp Hashtbl List Nsutil Option Printf Topology
