(* Tests for the traffic model: CP weight assignment (Section 3.1) and
   the Section 8.4 pricing schemes. *)

module Graph = Asgraph.Graph
module Weights = Traffic.Weights
module Pricing = Traffic.Pricing

let check = Alcotest.check
let feq = Alcotest.float 1e-9
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let graph_with_cps ~n ~cps =
  (* node 0 provides everyone; the first [cps] non-zero nodes are CPs *)
  let cp_nodes = List.init cps (fun i -> i + 1) in
  Graph.build ~n
    ~cp_edges:(List.init (n - 1) (fun i -> (0, i + 1)))
    ~peer_edges:[] ~cps:cp_nodes

(* ------------------------------------------------------------------ *)
(* Weights *)

let test_weights_cp_fraction () =
  let g = graph_with_cps ~n:100 ~cps:5 in
  let w = Weights.assign g ~cp_fraction:0.2 in
  check feq "cps originate exactly x" 0.2 (Weights.originated_fraction g w);
  check feq "others unit weight" 1.0 w.(50);
  check Alcotest.bool "cp heavier" true (w.(1) > 1.0)

let test_weights_formula () =
  (* w_CP = x (n - cps) / ((1 - x) cps) *)
  check feq "hand-computed" (0.1 *. 95.0 /. (0.9 *. 5.0))
    (Weights.cp_weight ~n:100 ~cps:5 ~cp_fraction:0.1)

let test_weights_no_cps () =
  let g = graph_with_cps ~n:20 ~cps:0 in
  let w = Weights.assign g ~cp_fraction:0.3 in
  check feq "all ones" 20.0 (Weights.total w)

let test_weights_invalid () =
  let g = graph_with_cps ~n:10 ~cps:1 in
  Alcotest.check_raises "x = 1 rejected" (Invalid_argument "Weights.assign") (fun () ->
      ignore (Weights.assign g ~cp_fraction:1.0));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Weights.assign") (fun () ->
      ignore (Weights.assign g ~cp_fraction:(-0.1)))

let test_weights_fraction_qcheck =
  qtest "assigned weights hit the requested CP fraction"
    QCheck2.Gen.(pair (int_range 10 200) (int_range 1 5))
    (fun (n, cps) ->
      let g = graph_with_cps ~n ~cps in
      List.for_all
        (fun x ->
          let w = Weights.assign g ~cp_fraction:x in
          Float.abs (Weights.originated_fraction g w -. x) < 1e-9)
        [ 0.1; 0.33; 0.5; 0.9 ])

let test_weights_uniform () =
  let g = graph_with_cps ~n:7 ~cps:2 in
  check Alcotest.(array (float 0.)) "uniform ignores classes" (Array.make 7 1.0)
    (Weights.uniform g)

(* ------------------------------------------------------------------ *)
(* Pricing *)

let test_pricing_linear () =
  check feq "identity" 42.5 (Pricing.revenue_of_customer Pricing.Linear 42.5);
  check feq "sums" 10.0 (Pricing.revenue Pricing.Linear [ 4.0; 6.0 ])

let test_pricing_tiered () =
  let s = Pricing.Tiered { step = 10.0 } in
  check feq "rounds up" 1.0 (Pricing.revenue_of_customer s 0.5);
  check feq "exact boundary" 1.0 (Pricing.revenue_of_customer s 10.0);
  check feq "next tier" 2.0 (Pricing.revenue_of_customer s 10.1);
  check feq "zero volume is free" 0.0 (Pricing.revenue_of_customer s 0.0)

let test_pricing_concave () =
  let s = Pricing.Concave { exponent = 0.5 } in
  check feq "sqrt" 3.0 (Pricing.revenue_of_customer s 9.0);
  check Alcotest.bool "subadditive across customers is false (per-customer!)" true
    (Pricing.revenue s [ 4.0; 4.0 ] > Pricing.revenue_of_customer s 8.0)

let test_pricing_invalid () =
  Alcotest.check_raises "bad step" (Invalid_argument "Pricing: step must be positive")
    (fun () -> ignore (Pricing.revenue_of_customer (Pricing.Tiered { step = 0.0 }) 1.0));
  Alcotest.check_raises "bad exponent"
    (Invalid_argument "Pricing: exponent must be in (0, 1]") (fun () ->
      ignore (Pricing.revenue_of_customer (Pricing.Concave { exponent = 1.5 }) 1.0))

let test_pricing_monotone_qcheck =
  qtest "every scheme is monotone in volume"
    QCheck2.Gen.(pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      List.for_all
        (fun s -> Pricing.revenue_of_customer s lo <= Pricing.revenue_of_customer s hi +. 1e-9)
        [ Pricing.Linear; Pricing.Tiered { step = 7.0 }; Pricing.Concave { exponent = 0.6 } ])

let test_rank_agreement () =
  check feq "identical" 1.0 (Pricing.rank_agreement [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  check feq "reversed" 0.0 (Pricing.rank_agreement [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  check feq "ties ignored" 1.0 (Pricing.rank_agreement [| 1.; 1.; 2. |] [| 5.; 9.; 10. |])

(* ------------------------------------------------------------------ *)
(* Customer volumes (the bridge from routing to pricing) *)

let test_customer_volumes_match_incoming_utility () =
  let g =
    Graph.build ~n:6
      ~cp_edges:[ (0, 1); (0, 2); (1, 4); (2, 4); (2, 5) ]
      ~peer_edges:[ (0, 3); (1, 2) ]
      ~cps:[ 3 ]
  in
  let statics = Bgp.Route_static.create g in
  let cfg =
    { Core.Config.incoming with tiebreak = Bgp.Policy.Lowest_id }
  in
  let state = Core.State.create g ~early:[ 0 ] in
  let weight = [| 1.0; 1.0; 1.0; 10.0; 1.0; 1.0 |] in
  let volumes = Core.Utility.customer_volumes cfg statics state ~weight in
  let u = Core.Utility.all cfg statics state ~weight in
  Array.iteri
    (fun i per_customer ->
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 per_customer in
      check feq (Printf.sprintf "node %d" i) u.(i) total;
      List.iter
        (fun (c, _) ->
          check Alcotest.bool "volume only over customer edges" true
            (Graph.rel g i c = Some Graph.Customer))
        per_customer)
    volumes

let () =
  Alcotest.run "traffic"
    [
      ( "weights",
        [
          Alcotest.test_case "cp fraction" `Quick test_weights_cp_fraction;
          Alcotest.test_case "formula" `Quick test_weights_formula;
          Alcotest.test_case "no cps" `Quick test_weights_no_cps;
          Alcotest.test_case "invalid fractions" `Quick test_weights_invalid;
          Alcotest.test_case "uniform" `Quick test_weights_uniform;
          test_weights_fraction_qcheck;
        ] );
      ( "pricing",
        [
          Alcotest.test_case "linear" `Quick test_pricing_linear;
          Alcotest.test_case "tiered" `Quick test_pricing_tiered;
          Alcotest.test_case "concave" `Quick test_pricing_concave;
          Alcotest.test_case "invalid parameters" `Quick test_pricing_invalid;
          Alcotest.test_case "rank agreement" `Quick test_rank_agreement;
          test_pricing_monotone_qcheck;
        ] );
      ( "volumes",
        [
          Alcotest.test_case "per-customer volumes sum to incoming utility" `Quick
            test_customer_volumes_match_incoming_utility;
        ] );
    ]
