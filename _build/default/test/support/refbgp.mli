(** Reference BGP route computation for differential testing.

    A deliberately naive fixed-point iteration of the Appendix-A
    policies (LP > SP > SecP > TB, GR2 export), sharing no code with
    the optimized {!Bgp.Route_static}/{!Bgp.Forest} pipeline. Tests
    compare the two on random graphs and states. *)

type route = {
  next : int;
  path : int list;  (** self first, destination last *)
  lp : int;  (** 0 customer, 1 peer, 2 provider *)
  secure : bool;  (** every AS on [path] participates *)
}

val route_to :
  Asgraph.Graph.t ->
  dest:int ->
  secure:Bytes.t ->
  use_secp:Bytes.t ->
  tiebreak:Bgp.Policy.tiebreak ->
  route option array
(** Per-node selected route ([None] for the destination itself and
    unreachable nodes). *)
