(** QCheck generators for random valid AS graphs and deployment
    inputs, shared across test suites. *)

val graph : ?max_n:int -> unit -> Asgraph.Graph.t QCheck2.Gen.t
(** Random GR1-valid annotated graph: customer-provider edges point
    from lower to higher index (providers first), a sprinkle of peer
    edges, and optionally a couple of CPs. Always includes at least
    two nodes. *)

val secure_state :
  Asgraph.Graph.t -> (Bytes.t * Bytes.t) QCheck2.Gen.t
(** Random (secure, use_secp) byte vectors consistent with the model:
    [use_secp] is [secure] restricted to non-stubs (i.e. the
    stubs-don't-break-ties setting), matching what transited nodes do
    in every configuration. *)

val small_int_graph : Asgraph.Graph.t QCheck2.Gen.t
(** Alias for [graph ~max_n:25 ()]. *)
