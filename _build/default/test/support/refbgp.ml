module Graph = Asgraph.Graph

type route = { next : int; path : int list; lp : int; secure : bool }

let route_to g ~dest ~secure ~use_secp ~tiebreak =
  let n = Graph.n g in
  let rib : route option array = Array.make n None in
  let sec i = Bytes.get secure i = '\001' in
  (* GR2: export anything to customers; export to peers/providers only
     own prefixes or customer routes. [neighbor_is_customer] says
     whether the neighbor being exported to is v's customer. *)
  let exports v ~neighbor_is_customer =
    v = dest
    || neighbor_is_customer
    || match rib.(v) with Some r -> r.lp = 0 | None -> false
  in
  let candidate u v lp =
    if v = dest then
      Some { next = v; path = [ u; dest ]; lp; secure = sec u && sec dest }
    else begin
      match rib.(v) with
      | None -> None
      | Some r ->
          if List.mem u r.path then None
          else Some { next = v; path = u :: r.path; lp; secure = sec u && r.secure }
    end
  in
  (* Ranking at u: LP, then path length, then (for SecP appliers) the
     security of the learned route — the path *excluding* u — then the
     tie-break hash on the next hop. *)
  let key u (r : route) =
    let learned_secure =
      match r.path with _me :: rest -> List.for_all sec rest | [] -> true
    in
    let sec_rank =
      if Bytes.get use_secp u = '\001' && learned_secure then 0
      else if Bytes.get use_secp u = '\001' then 1
      else 0
    in
    (r.lp, List.length r.path, sec_rank, Bgp.Policy.tiebreak_key tiebreak u r.next)
  in
  let better u a b = match b with None -> true | Some b -> key u a < key u b in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < (2 * n) + 4 do
    incr rounds;
    changed := false;
    for u = 0 to n - 1 do
      if u <> dest then begin
        let best = ref None in
        let consider v lp neighbor_is_customer =
          if exports v ~neighbor_is_customer then begin
            match candidate u v lp with
            | Some c -> if better u c !best then best := Some c
            | None -> ()
          end
        in
        Graph.iter_customers g u (fun v -> consider v 0 false);
        Graph.iter_peers g u (fun v -> consider v 1 false);
        Graph.iter_providers g u (fun v -> consider v 2 true);
        if !best <> rib.(u) then begin
          rib.(u) <- !best;
          changed := true
        end
      end
    done
  done;
  rib
