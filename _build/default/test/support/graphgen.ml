module Graph = Asgraph.Graph
module Gen = QCheck2.Gen

let graph ?(max_n = 40) () =
  let open Gen in
  let* n = int_range 2 max_n in
  let* cp_raw = list_size (int_range 0 (4 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
  let* peer_raw = list_size (int_range 0 n) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
  let* cp_count = int_bound 2 in
  let taken = Hashtbl.create 64 in
  let cp_edges =
    List.filter_map
      (fun (a, b) ->
        let lo, hi = (min a b, max a b) in
        if lo = hi || Hashtbl.mem taken (lo, hi) then None
        else begin
          Hashtbl.add taken (lo, hi) ();
          Some (lo, hi) (* provider = lower index: GR1 by construction *)
        end)
      cp_raw
  in
  let peer_edges =
    List.filter_map
      (fun (a, b) ->
        let lo, hi = (min a b, max a b) in
        if lo = hi || Hashtbl.mem taken (lo, hi) then None
        else begin
          Hashtbl.add taken (lo, hi) ();
          Some (lo, hi)
        end)
      peer_raw
  in
  (* CPs must have no customers: pick customer-free nodes. *)
  let has_customer = Array.make n false in
  List.iter (fun (p, _) -> has_customer.(p) <- true) cp_edges;
  let candidates =
    List.filter (fun i -> not has_customer.(i)) (List.init n (fun i -> i))
  in
  let cps = List.filteri (fun i _ -> i < cp_count) candidates in
  return (Graph.build ~n ~cp_edges ~peer_edges ~cps)

let small_int_graph = graph ~max_n:25 ()

let secure_state g =
  let open Gen in
  let n = Graph.n g in
  let* bits = list_repeat n bool in
  let secure = Bytes.make n '\000' in
  let use_secp = Bytes.make n '\000' in
  List.iteri
    (fun i b ->
      if b then begin
        Bytes.set secure i '\001';
        if not (Graph.is_stub g i) then Bytes.set use_secp i '\001'
      end)
    bits;
  return (secure, use_secp)
