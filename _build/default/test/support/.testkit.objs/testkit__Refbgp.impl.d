test/support/refbgp.ml: Array Asgraph Bgp Bytes List
