test/support/graphgen.ml: Array Asgraph Bytes Hashtbl List QCheck2
