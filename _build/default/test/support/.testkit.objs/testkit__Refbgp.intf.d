test/support/refbgp.mli: Asgraph Bgp Bytes
