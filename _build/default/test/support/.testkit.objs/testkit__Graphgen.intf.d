test/support/graphgen.mli: Asgraph Bytes QCheck2
