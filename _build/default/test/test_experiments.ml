(* Tests for the experiment registry: every table/figure driver runs
   on a small scenario and produces rows; scenario setup is
   deterministic. *)

module Registry = Experiments.Registry
module Scenario = Experiments.Scenario

let check = Alcotest.check

let scenario = lazy (Scenario.create ~n:150 ~seed:3 ())

let test_ids_unique () =
  let ids = Registry.ids () in
  check Alcotest.int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_find () =
  check Alcotest.bool "finds fig8" true (Registry.find "fig8" <> None);
  check Alcotest.bool "rejects unknown" true (Registry.find "fig99" = None)

let test_expected_ids_present () =
  let ids = Registry.ids () in
  List.iter
    (fun id -> check Alcotest.bool id true (List.mem id ids))
    [
      "table1"; "table2"; "table3"; "table4"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
      "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "oscillation";
      "setcover"; "attacks"; "ablations"; "resilience"; "pricing"; "jitter";
      "evolution"; "selector"; "secpriority";
    ]

let test_every_experiment_produces_rows () =
  let s = Lazy.force scenario in
  List.iter
    (fun (e : Registry.experiment) ->
      let table = e.run s in
      check Alcotest.bool (e.id ^ " non-empty") true (Nsutil.Table.row_count table > 0))
    Registry.all

let test_scenario_deterministic () =
  let a = Scenario.create ~n:120 ~seed:5 () in
  let b = Scenario.create ~n:120 ~seed:5 () in
  check Alcotest.bool "same graphs" true
    (Asgraph.Graph.edges (Scenario.graph a) = Asgraph.Graph.edges (Scenario.graph b));
  let ra = Scenario.run a Core.Config.default in
  let rb = Scenario.run b Core.Config.default in
  check Alcotest.int "same dynamics" (Core.Engine.rounds_run ra) (Core.Engine.rounds_run rb);
  check Alcotest.int "same outcome" (Core.State.secure_count ra.final)
    (Core.State.secure_count rb.final)

let test_run_all_filter () =
  let s = Lazy.force scenario in
  let results = Registry.run_all ~only:[ "table2"; "attacks" ] s in
  check Alcotest.(list string) "filtered ids" [ "table2"; "attacks" ]
    (List.map (fun ((e : Registry.experiment), _, _) -> e.id) results)

let test_case_study_shape () =
  (* The headline result at miniature scale: with CPs + top-5 as early
     adopters and theta = 5%, a majority of ASes end up secure. *)
  let s = Lazy.force scenario in
  let r = Scenario.run s Core.Config.default in
  check Alcotest.bool "majority secure" true (Core.Engine.secure_fraction r `As > 0.5);
  check Alcotest.bool "stable" true (r.termination = Core.Engine.Stable)

let test_high_theta_weakens_deployment () =
  let s = Lazy.force scenario in
  let low = Scenario.run s { Core.Config.default with theta = 0.02; theta_off = 0.02 } in
  let high = Scenario.run s { Core.Config.default with theta = 0.6; theta_off = 0.6 } in
  check Alcotest.bool "higher cost, less deployment" true
    (Core.Engine.secure_fraction high `As <= Core.Engine.secure_fraction low `As)

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "all paper artifacts covered" `Quick test_expected_ids_present;
          Alcotest.test_case "run_all filter" `Quick test_run_all_filter;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "case-study shape" `Quick test_case_study_shape;
          Alcotest.test_case "theta monotonicity" `Quick test_high_theta_weakens_deployment;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "every experiment produces rows" `Slow
            test_every_experiment_produces_rows;
        ] );
    ]
