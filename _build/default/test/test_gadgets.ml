(* Tests for the appendix constructions: DIAMOND, buyer's remorse,
   CHICKEN (oscillation), the AND gadget, and the SET-COVER
   reduction. *)

module Graph = Asgraph.Graph
module State = Core.State
module Engine = Core.Engine
module Route_static = Bgp.Route_static

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Diamond (Figure 2) *)

let test_diamond_valid () =
  let d = Gadgets.Diamond.build () in
  let r = Asgraph.Validate.run d.graph in
  check Alcotest.bool "gr1" true r.gr1_acyclic;
  check Alcotest.bool "connected" true r.connected;
  check Alcotest.bool "stub is a stub" true (Graph.is_stub d.graph d.stub);
  check Alcotest.bool "competitors are ISPs" true
    (Graph.is_isp d.graph d.isp_a && Graph.is_isp d.graph d.isp_b)

let test_diamond_dynamics () =
  let d = Gadgets.Diamond.build () in
  let statics = Route_static.create d.graph in
  let state = State.create d.graph ~early:d.early in
  let result = Engine.run Gadgets.Diamond.config statics ~weight:d.weight ~state in
  (match result.rounds with
  | r1 :: r2 :: _ ->
      check Alcotest.(list int) "challenger deploys first" [ d.isp_b ] r1.turned_on;
      check Alcotest.(list int) "incumbent catches up" [ d.isp_a ] r2.turned_on
  | _ -> Alcotest.fail "expected two rounds");
  check Alcotest.bool "stable" true (result.termination = Engine.Stable);
  check Alcotest.bool "stub simplex" true (State.simplex result.final d.stub)

let test_diamond_challenger_steals_then_loses_back () =
  let d = Gadgets.Diamond.build () in
  let statics = Route_static.create d.graph in
  let state = State.create d.graph ~early:d.early in
  let result = Engine.run Gadgets.Diamond.config statics ~weight:d.weight ~state in
  match result.rounds with
  | _ :: r2 :: r3 :: _ ->
      (* Between rounds 2 and 3 the incumbent regains the source's
         traffic: the challenger's round-3 utility is back below its
         round-2 peak. *)
      check Alcotest.bool "challenger peaked in round 2" true
        (r2.utilities.(d.isp_b) > r3.utilities.(d.isp_b))
  | _ -> Alcotest.fail "expected three rounds"

(* ------------------------------------------------------------------ *)
(* Buyer's remorse (Figure 13) *)

let test_remorse_turns_off () =
  let r = Gadgets.Remorse.build () in
  let statics = Route_static.create r.graph in
  let state = Gadgets.Remorse.initial_state r in
  check Alcotest.bool "starts secure" true (State.full state r.isp);
  let result = Engine.run Gadgets.Remorse.config statics ~weight:r.weight ~state in
  check Alcotest.bool "turned off" false (State.secure result.final r.isp);
  check Alcotest.bool "stable after" true (result.termination = Engine.Stable);
  (match result.rounds with
  | r1 :: _ ->
      check Alcotest.(list int) "the isp disabled in round 1" [ r.isp ] r1.turned_off;
      check Alcotest.bool "projection strictly better" true
        (r1.projected.(r.isp) > r1.utilities.(r.isp))
  | [] -> Alcotest.fail "expected rounds");
  (* Sticky simplex: the stubs keep signing after the ISP quits. *)
  List.iter
    (fun s -> check Alcotest.bool "stub keeps simplex" true (State.secure result.final s))
    r.stubs

let test_remorse_gain_scales_with_stubs () =
  let small = Gadgets.Remorse.build ~stub_count:4 () in
  let large = Gadgets.Remorse.build ~stub_count:24 () in
  let gain (r : Gadgets.Remorse.t) =
    let statics = Route_static.create r.graph in
    let state = Gadgets.Remorse.initial_state r in
    let result = Engine.run Gadgets.Remorse.config statics ~weight:r.weight ~state in
    match result.rounds with
    | r1 :: _ -> r1.projected.(r.isp) -. r1.utilities.(r.isp)
    | [] -> 0.0
  in
  check Alcotest.bool "more stubs, bigger incentive" true (gain large > gain small)

let test_remorse_outgoing_model_stays () =
  (* Under the outgoing model the same ISP has no reason to disable
     (Theorem 6.2): the engine must keep it secure. *)
  let r = Gadgets.Remorse.build () in
  let statics = Route_static.create r.graph in
  let state = Gadgets.Remorse.initial_state r in
  let cfg =
    { Gadgets.Remorse.config with model = Core.Config.Outgoing; allow_turn_off = false }
  in
  let result = Engine.run cfg statics ~weight:r.weight ~state in
  check Alcotest.bool "stays secure" true (State.secure result.final r.isp)

(* ------------------------------------------------------------------ *)
(* Chicken (Appendix K.5) *)

let test_chicken_valid () =
  let c = Gadgets.Chicken.build () in
  let r = Asgraph.Validate.run c.graph in
  check Alcotest.bool "gr1" true r.gr1_acyclic;
  check Alcotest.bool "connected" true r.connected

let test_chicken_best_response_structure () =
  let c = Gadgets.Chicken.build () in
  let u = Gadgets.Chicken.payoff c in
  let u_on_on = u ~on10:true ~on20:true in
  let u_on_off = u ~on10:true ~on20:false in
  let u_off_on = u ~on10:false ~on20:true in
  let u_off_off = u ~on10:false ~on20:false in
  (* From (ON, ON) both strictly prefer to flip. *)
  check Alcotest.bool "10 flees ON,ON" true (fst u_off_on > fst u_on_on);
  check Alcotest.bool "20 flees ON,ON" true (snd u_on_off > snd u_on_on);
  (* From (OFF, OFF) both strictly prefer to flip. *)
  check Alcotest.bool "10 enters at OFF,OFF" true (fst u_on_off > fst u_off_off);
  check Alcotest.bool "20 enters at OFF,OFF" true (snd u_off_on > snd u_off_off);
  (* The asymmetric profiles are stable. *)
  check Alcotest.bool "ON,OFF stable for 10" true (fst u_on_off >= fst u_off_off);
  check Alcotest.bool "ON,OFF stable for 20" true (snd u_on_off >= snd u_on_on);
  check Alcotest.bool "OFF,ON stable for 10" true (fst u_off_on >= fst u_on_on);
  check Alcotest.bool "OFF,ON stable for 20" true (snd u_off_on >= snd u_off_off)

let test_chicken_oscillates () =
  let c = Gadgets.Chicken.build () in
  let statics = Route_static.create c.graph in
  let state = State.create c.graph ~early:c.early ~frozen:c.frozen in
  let result = Engine.run Gadgets.Chicken.config statics ~weight:c.weight ~state in
  (match result.termination with
  | Engine.Oscillation { first_round } -> check Alcotest.int "period-2 cycle" 0 first_round
  | Engine.Stable -> Alcotest.fail "unexpectedly stable"
  | Engine.Max_rounds -> Alcotest.fail "hit round cap");
  match result.rounds with
  | r1 :: r2 :: _ ->
      check Alcotest.(list int) "both on in round 1" [ c.player10; c.player20 ]
        (List.sort compare r1.turned_on);
      check Alcotest.(list int) "both off in round 2" [ c.player10; c.player20 ]
        (List.sort compare r2.turned_off)
  | _ -> Alcotest.fail "expected two rounds"

(* ------------------------------------------------------------------ *)
(* AND gadget *)

let test_and_gadget_truth_table () =
  let t = Gadgets.And_gadget.build () in
  List.iter
    (fun (ins, expected) ->
      check Alcotest.bool
        (Printf.sprintf "inputs %s"
           (String.concat "" (List.map (fun b -> if b then "1" else "0") ins)))
        expected
        (Gadgets.And_gadget.run t ~inputs_on:(Array.of_list ins)))
    [
      ([ true; true; true ], true);
      ([ true; true; false ], false);
      ([ true; false; true ], false);
      ([ false; true; true ], false);
      ([ true; false; false ], false);
      ([ false; false; false ], false);
    ]

let test_and_gadget_valid () =
  let t = Gadgets.And_gadget.build () in
  let r = Asgraph.Validate.run t.graph in
  check Alcotest.bool "gr1" true r.gr1_acyclic;
  check Alcotest.bool "connected" true r.connected

(* ------------------------------------------------------------------ *)
(* k-Selector (Appendix K.6, Lemma K.5) *)

let selector_cache = Hashtbl.create 4

let selector k =
  match Hashtbl.find_opt selector_cache k with
  | Some t -> t
  | None ->
      let t = Gadgets.Selector.build ~k () in
      Hashtbl.replace selector_cache k t;
      t

let first_round_moves t ~on =
  match (Gadgets.Selector.run_from t ~on).rounds with
  | (rr : Engine.round_record) :: _ -> (rr.turned_on, rr.turned_off)
  | [] -> ([], [])

let test_selector_valid () =
  List.iter
    (fun k ->
      let t = selector k in
      let r = Asgraph.Validate.run t.graph in
      check Alcotest.bool "gr1" true r.gr1_acyclic;
      check Alcotest.bool "connected" true r.connected)
    [ 2; 3; 4 ]

let test_selector_single_on_stable () =
  List.iter
    (fun k ->
      let t = selector k in
      Array.iter
        (fun p ->
          check
            Alcotest.(pair (list int) (list int))
            (Printf.sprintf "k=%d, only %d ON is stable" k p)
            ([], [])
            (first_round_moves t ~on:[ p ]))
        t.players)
    [ 2; 3; 4 ]

let test_selector_all_off_everyone_enters () =
  List.iter
    (fun k ->
      let t = selector k in
      let on, off = first_round_moves t ~on:[] in
      check Alcotest.(list int) (Printf.sprintf "k=%d all enter" k)
        (Array.to_list t.players) (List.sort compare on);
      check Alcotest.(list int) "none leave" [] off)
    [ 2; 3; 4 ]

let test_selector_multi_on_all_flee () =
  let t = selector 3 in
  List.iter
    (fun on ->
      let turned_on, turned_off = first_round_moves t ~on in
      check Alcotest.(list int) "every ON player flees" (List.sort compare on)
        (List.sort compare turned_off);
      check Alcotest.(list int) "nobody enters" [] turned_on)
    [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ];
  let t4 = selector 4 in
  List.iter
    (fun on ->
      let _, turned_off = first_round_moves t4 ~on in
      check Alcotest.(list int) "k=4 flee" (List.sort compare on)
        (List.sort compare turned_off))
    [ [ 0; 3 ]; [ 1; 2; 3 ]; [ 0; 1; 2; 3 ] ]

let test_selector_rejects_k1 () =
  Alcotest.check_raises "k >= 2" (Invalid_argument "Selector.build: k >= 2") (fun () ->
      ignore (Gadgets.Selector.build ~k:1 ()))

(* ------------------------------------------------------------------ *)
(* Set cover (Theorem 6.1) *)

let instance =
  Gadgets.Setcover.
    { universe = 6; subsets = [ [| 0; 1; 2 |]; [| 2; 3 |]; [| 3; 4; 5 |]; [| 0; 5 |] ] }

let test_setcover_secure_tracks_coverage () =
  let t = Gadgets.Setcover.build instance in
  let r = Asgraph.Validate.run t.graph in
  check Alcotest.bool "gr1" true r.gr1_acyclic;
  (* secure = 2 * chosen + 1 (for d) + covered elements. *)
  List.iter
    (fun chosen ->
      let early = List.map (fun i -> t.s1.(i)) chosen in
      let secure = Gadgets.Setcover.secure_after t ~early in
      let covered = Gadgets.Setcover.covered instance ~chosen in
      let expected = if chosen = [] then 0 else (2 * List.length chosen) + 1 + covered in
      check Alcotest.int
        (Printf.sprintf "chosen %s" (String.concat "," (List.map string_of_int chosen)))
        expected secure)
    [ []; [ 0 ]; [ 1 ]; [ 0; 2 ]; [ 0; 1 ]; [ 1; 3 ]; [ 0; 1; 2; 3 ] ]

let test_setcover_optimum_is_cover () =
  let t = Gadgets.Setcover.build instance in
  let statics = Route_static.create t.graph in
  let best, secure =
    Adopters.Strategy.brute_force_optimum Gadgets.Setcover.config statics
      ~weight:t.weight ~k:2 ~candidates:(Array.to_list t.s1)
  in
  (* {0, 2} is the unique full cover of size 2. *)
  let chosen =
    List.map
      (fun e ->
        let idx = ref (-1) in
        Array.iteri (fun i v -> if v = e then idx := i) t.s1;
        !idx)
      best
    |> List.sort compare
  in
  check Alcotest.(list int) "optimal adopters = optimal cover" [ 0; 2 ] chosen;
  check Alcotest.int "covers the whole universe" (4 + 1 + 6) secure

let () =
  Alcotest.run "gadgets"
    [
      ( "diamond",
        [
          Alcotest.test_case "valid graph" `Quick test_diamond_valid;
          Alcotest.test_case "two-round catch-up dynamics" `Quick test_diamond_dynamics;
          Alcotest.test_case "steal then lose back" `Quick
            test_diamond_challenger_steals_then_loses_back;
        ] );
      ( "remorse",
        [
          Alcotest.test_case "turns S*BGP off" `Quick test_remorse_turns_off;
          Alcotest.test_case "incentive scales with stubs" `Quick
            test_remorse_gain_scales_with_stubs;
          Alcotest.test_case "no remorse under outgoing model" `Quick
            test_remorse_outgoing_model_stays;
        ] );
      ( "chicken",
        [
          Alcotest.test_case "valid graph" `Quick test_chicken_valid;
          Alcotest.test_case "best-response structure" `Quick
            test_chicken_best_response_structure;
          Alcotest.test_case "oscillates forever" `Quick test_chicken_oscillates;
        ] );
      ( "and-gadget",
        [
          Alcotest.test_case "truth table" `Quick test_and_gadget_truth_table;
          Alcotest.test_case "valid graph" `Quick test_and_gadget_valid;
        ] );
      ( "selector",
        [
          Alcotest.test_case "valid graphs" `Quick test_selector_valid;
          Alcotest.test_case "single-ON states are stable" `Quick
            test_selector_single_on_stable;
          Alcotest.test_case "all-OFF: everyone enters" `Quick
            test_selector_all_off_everyone_enters;
          Alcotest.test_case "multi-ON: all flee" `Quick test_selector_multi_on_all_flee;
          Alcotest.test_case "rejects k=1" `Quick test_selector_rejects_k1;
        ] );
      ( "setcover",
        [
          Alcotest.test_case "secure count tracks coverage" `Quick
            test_setcover_secure_tracks_coverage;
          Alcotest.test_case "optimal adopters solve set cover" `Quick
            test_setcover_optimum_is_cover;
        ] );
    ]
