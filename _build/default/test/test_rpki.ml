(* Tests for the RPKI substrate: certificates, ROAs, the registry. *)

module Prefix = Netaddr.Prefix
module Cert = Rpki.Cert
module Roa = Rpki.Roa
module Registry = Rpki.Registry
module Sig_scheme = Scrypto.Sig_scheme

let check = Alcotest.check
let p = Prefix.of_string_exn

let validity =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Roa.validity_to_string v))
    ( = )

(* ------------------------------------------------------------------ *)
(* Certificates *)

let root_with keypair = Cert.self_signed_root ~keypair ~resources:[ p "0.0.0.0/0" ]

let test_cert_issue_and_verify () =
  let rng = Nsutil.Prng.create ~seed:1 in
  let root_kp = Sig_scheme.generate rng in
  let root = root_with root_kp in
  let subject_kp = Sig_scheme.generate rng in
  match
    Cert.issue ~issuer_keypair:root_kp ~issuer:root ~subject_asn:65000
      ~subject_keypair:subject_kp ~resources:[ p "10.0.0.0/8" ]
  with
  | Error e -> Alcotest.fail e
  | Ok cert ->
      let lookup id =
        if id = root_kp.Sig_scheme.key_id then Some root_kp
        else if id = subject_kp.Sig_scheme.key_id then Some subject_kp
        else None
      in
      check Alcotest.bool "chain verifies" true
        (Result.is_ok (Cert.verify_chain ~root ~lookup_keypair:lookup [ root; cert ]));
      check Alcotest.bool "covers its prefix" true (Cert.covers cert (p "10.1.0.0/16"));
      check Alcotest.bool "does not cover others" false (Cert.covers cert (p "11.0.0.0/8"))

let test_cert_resources_must_nest () =
  let rng = Nsutil.Prng.create ~seed:2 in
  let root_kp = Sig_scheme.generate rng in
  (* A root holding only 10/8 cannot issue 11/8. *)
  let root = Cert.self_signed_root ~keypair:root_kp ~resources:[ p "10.0.0.0/8" ] in
  let subject_kp = Sig_scheme.generate rng in
  match
    Cert.issue ~issuer_keypair:root_kp ~issuer:root ~subject_asn:65001
      ~subject_keypair:subject_kp ~resources:[ p "11.0.0.0/8" ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected resource violation"

let test_cert_wrong_issuer_key () =
  let rng = Nsutil.Prng.create ~seed:3 in
  let root_kp = Sig_scheme.generate rng in
  let imposter_kp = Sig_scheme.generate rng in
  let root = root_with root_kp in
  match
    Cert.issue ~issuer_keypair:imposter_kp ~issuer:root ~subject_asn:65002
      ~subject_keypair:(Sig_scheme.generate rng) ~resources:[ p "10.0.0.0/8" ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected issuer mismatch"

let test_cert_chain_rejects_forgery () =
  let rng = Nsutil.Prng.create ~seed:4 in
  let root_kp = Sig_scheme.generate rng in
  let root = root_with root_kp in
  let a_kp = Sig_scheme.generate rng in
  let b_kp = Sig_scheme.generate rng in
  let a =
    Result.get_ok
      (Cert.issue ~issuer_keypair:root_kp ~issuer:root ~subject_asn:1 ~subject_keypair:a_kp
         ~resources:[ p "10.0.0.0/8" ])
  in
  (* b issued by a (not root), but we verify it as if issued by root:
     the chain check must fail. *)
  let b =
    Result.get_ok
      (Cert.issue ~issuer_keypair:a_kp ~issuer:a ~subject_asn:2 ~subject_keypair:b_kp
         ~resources:[ p "10.1.0.0/16" ])
  in
  let lookup id =
    List.find_opt (fun (kp : Sig_scheme.keypair) -> kp.key_id = id) [ root_kp; a_kp; b_kp ]
  in
  check Alcotest.bool "full chain ok" true
    (Result.is_ok (Cert.verify_chain ~root ~lookup_keypair:lookup [ root; a; b ]));
  check Alcotest.bool "skipping a link fails" true
    (Result.is_error (Cert.verify_chain ~root ~lookup_keypair:lookup [ root; b ]));
  check Alcotest.bool "must start at the anchor" true
    (Result.is_error (Cert.verify_chain ~root:a ~lookup_keypair:lookup [ root; a ]))

(* ------------------------------------------------------------------ *)
(* ROAs *)

let test_roa_validation_matrix () =
  let holder = Sig_scheme.of_secret "holder" in
  let roas =
    [
      Roa.make ~holder_keypair:holder ~prefix:(p "10.0.0.0/16") ~origin_asn:65000
        ~max_length:20 ();
      Roa.make ~holder_keypair:holder ~prefix:(p "192.168.0.0/16") ~origin_asn:65001 ();
    ]
  in
  check validity "exact valid" Roa.Valid
    (Roa.validate ~roas ~prefix:(p "10.0.0.0/16") ~origin_asn:65000);
  check validity "more specific within max_length" Roa.Valid
    (Roa.validate ~roas ~prefix:(p "10.0.128.0/20") ~origin_asn:65000);
  check validity "too specific" Roa.Invalid_length
    (Roa.validate ~roas ~prefix:(p "10.0.0.0/24") ~origin_asn:65000);
  check validity "wrong origin" Roa.Invalid_origin
    (Roa.validate ~roas ~prefix:(p "10.0.0.0/16") ~origin_asn:65009);
  check validity "uncovered prefix" Roa.Unknown
    (Roa.validate ~roas ~prefix:(p "172.16.0.0/12") ~origin_asn:65000);
  check validity "default max_length is the prefix length" Roa.Invalid_length
    (Roa.validate ~roas ~prefix:(p "192.168.1.0/24") ~origin_asn:65001)

let test_roa_signature () =
  let holder = Sig_scheme.of_secret "holder" in
  let roa = Roa.make ~holder_keypair:holder ~prefix:(p "10.0.0.0/8") ~origin_asn:1 () in
  check Alcotest.bool "verifies" true (Roa.verify ~verification_key:holder roa);
  let other = Sig_scheme.of_secret "other" in
  check Alcotest.bool "wrong key fails" false (Roa.verify ~verification_key:other roa)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_enroll_and_validate () =
  let reg = Registry.create ~seed:5 in
  (match Registry.enroll reg ~asn:65010 ~prefixes:[ p "10.10.0.0/16" ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "enrolled" true (Registry.enrolled reg ~asn:65010);
  check Alcotest.bool "not enrolled" false (Registry.enrolled reg ~asn:65011);
  check validity "origin valid" Roa.Valid
    (Registry.origin_validity reg ~prefix:(p "10.10.0.0/16") ~origin_asn:65010);
  check validity "hijack invalid" Roa.Invalid_origin
    (Registry.origin_validity reg ~prefix:(p "10.10.0.0/16") ~origin_asn:65011);
  check Alcotest.bool "chain verifies" true
    (Result.is_ok (Registry.verify_as_chain reg ~asn:65010));
  check Alcotest.bool "unknown chain fails" true
    (Result.is_error (Registry.verify_as_chain reg ~asn:65011))

let test_registry_double_enroll () =
  let reg = Registry.create ~seed:6 in
  ignore (Registry.enroll reg ~asn:1 ~prefixes:[ p "10.0.0.0/24" ]);
  match Registry.enroll reg ~asn:1 ~prefixes:[ p "10.0.1.0/24" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double enrollment should fail"

let test_registry_key_lookup () =
  let reg = Registry.create ~seed:7 in
  ignore (Registry.enroll reg ~asn:9 ~prefixes:[ p "10.0.0.0/24" ]);
  match Registry.keypair_of reg ~asn:9 with
  | None -> Alcotest.fail "missing keypair"
  | Some kp ->
      (match Registry.lookup_key reg kp.Sig_scheme.key_id with
      | Some kp' -> check Alcotest.string "same key" kp.Sig_scheme.key_id kp'.Sig_scheme.key_id
      | None -> Alcotest.fail "lookup by id failed");
      check Alcotest.int "roa published" 1 (List.length (Registry.roas reg))

let () =
  Alcotest.run "rpki"
    [
      ( "certificates",
        [
          Alcotest.test_case "issue and verify" `Quick test_cert_issue_and_verify;
          Alcotest.test_case "resources must nest" `Quick test_cert_resources_must_nest;
          Alcotest.test_case "wrong issuer key" `Quick test_cert_wrong_issuer_key;
          Alcotest.test_case "chain rejects forgery" `Quick test_cert_chain_rejects_forgery;
        ] );
      ( "roa",
        [
          Alcotest.test_case "validation matrix" `Quick test_roa_validation_matrix;
          Alcotest.test_case "signatures" `Quick test_roa_signature;
        ] );
      ( "registry",
        [
          Alcotest.test_case "enroll and validate" `Quick test_registry_enroll_and_validate;
          Alcotest.test_case "double enroll rejected" `Quick test_registry_double_enroll;
          Alcotest.test_case "key lookup and roas" `Quick test_registry_key_lookup;
        ] );
    ]
