(* Tests for the deployment game: state bookkeeping, the two utility
   models, the round engine and the analyses. *)

module Graph = Asgraph.Graph
module State = Core.State
module Config = Core.Config
module Utility = Core.Utility
module Engine = Core.Engine
module Analyses = Core.Analyses
module Route_static = Bgp.Route_static

let check = Alcotest.check
let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* tier1 (0), ISPs 1 and 2, CP 3 peering with 0, stubs 4 (multi) and
   5 (single-homed to 2). *)
let small () =
  Graph.build ~n:6
    ~cp_edges:[ (0, 1); (0, 2); (1, 4); (2, 4); (2, 5) ]
    ~peer_edges:[ (0, 3); (1, 2) ]
    ~cps:[ 3 ]

let lowest_id_cfg = { Config.default with tiebreak = Bgp.Policy.Lowest_id }

(* ------------------------------------------------------------------ *)
(* State *)

let test_state_initial () =
  let g = small () in
  let s = State.create g ~early:[ 0; 3 ] in
  check Alcotest.bool "early full" true (State.full s 0);
  check Alcotest.bool "early pinned" true (State.pinned s 0);
  check Alcotest.bool "cp full" true (State.full s 3);
  check Alcotest.bool "others off" false (State.secure s 1);
  (* 0 has no stub customers, so no simplex yet. *)
  check Alcotest.int "secure count" 2 (State.secure_count s)

let test_state_simplex_on_enable () =
  let g = small () in
  let s = State.create g ~early:[] in
  let added = State.enable s 2 in
  check Alcotest.(list int) "stubs upgraded" [ 4; 5 ] (List.sort compare added);
  check Alcotest.bool "stub simplex" true (State.simplex s 4);
  check Alcotest.bool "stub secure" true (State.secure s 4);
  check Alcotest.bool "stub not full" false (State.full s 4);
  check Alcotest.int "isp count" 1 (State.secure_isp_count s);
  check Alcotest.int "stub count" 2 (State.secure_stub_count s)

let test_state_simplex_sticky_on_disable () =
  let g = small () in
  let s = State.create g ~early:[] in
  ignore (State.enable s 2);
  State.disable s 2;
  check Alcotest.bool "isp off" false (State.secure s 2);
  check Alcotest.bool "stub keeps simplex (sticky)" true (State.secure s 4);
  check Alcotest.bool "stub 5 too" true (State.secure s 5)

let test_state_undo_enable_exact () =
  let g = small () in
  let s = State.create g ~early:[ 0 ] in
  ignore (State.enable s 1);
  (* 4 is now simplex via 1. *)
  let sig_before = State.signature s in
  let added = State.enable s 2 in
  check Alcotest.(list int) "only 5 newly upgraded" [ 5 ] added;
  State.undo_enable s 2 ~added;
  check Alcotest.int "signature restored" sig_before (State.signature s);
  check Alcotest.bool "4 still simplex" true (State.secure s 4);
  check Alcotest.bool "5 back to insecure" false (State.secure s 5)

let test_state_pinned_protected () =
  let g = small () in
  let s = State.create g ~early:[ 0 ] ~frozen:[ 1 ] in
  Alcotest.check_raises "early protected" (Invalid_argument "State.disable: pinned node 0")
    (fun () -> State.disable s 0);
  Alcotest.check_raises "frozen protected" (Invalid_argument "State.enable: pinned node 1")
    (fun () -> ignore (State.enable s 1))

let test_state_ablation_flags () =
  let g = small () in
  let s = State.create g ~early:[ 2 ] ~simplex:false in
  check Alcotest.bool "no simplex when disabled" false (State.secure s 4);
  let s2 = State.create g ~early:[ 0; 2 ] ~secp:false in
  let u = State.use_secp_bytes s2 ~stub_tiebreak:true in
  check Alcotest.bool "secp bytes all zero" true
    (Bytes.for_all (fun c -> c = '\000') u)

let test_state_stub_tiebreak_toggle () =
  let g = small () in
  let s = State.create g ~early:[ 2 ] in
  let u = State.use_secp_bytes s ~stub_tiebreak:true in
  check Alcotest.string "stub applies secp when on" "\001" (String.make 1 (Bytes.get u 4));
  let u = State.use_secp_bytes s ~stub_tiebreak:false in
  check Alcotest.string "stub ignores security when off" "\000"
    (String.make 1 (Bytes.get u 4));
  check Alcotest.string "isp always applies" "\001" (String.make 1 (Bytes.get u 2))

let test_state_copy_independent () =
  let g = small () in
  let s = State.create g ~early:[] in
  let s2 = State.copy s in
  ignore (State.enable s2 1);
  check Alcotest.bool "original unchanged" false (State.secure s 1);
  check Alcotest.bool "copy changed" true (State.secure s2 1)

(* ------------------------------------------------------------------ *)
(* Utility *)

(* Hand-computed example in the spirit of Figure 1. State: everyone
   insecure (security does not matter for utility itself, only via
   route choices). Weights: CP 3 has weight 10, everyone else 1.
   Lowest-id tiebreak: tier1 0 routes to stub 4 via ISP 1. *)
let utilities model =
  let g = small () in
  let statics = Route_static.create g in
  let state = State.create g ~early:[] in
  let weight = [| 1.0; 1.0; 1.0; 10.0; 1.0; 1.0 |] in
  Utility.all { lowest_id_cfg with model } statics state ~weight

let test_outgoing_utilities_hand_checked () =
  let u = utilities Config.Outgoing in
  (* ISP 1: destination 4 via customer edge; subtree through it:
     0 (1) + 3 (10) = 11. No other customer destinations carry
     transit (dest 4 is its only customer). *)
  check (Alcotest.float 1e-9) "isp1" 11.0 u.(1);
  (* ISP 2: dest 4: carries 5's unit. dest 5: carries 0 (1), 3 (10),
     1 (1), 4 (1) = 13. Total 14. *)
  check (Alcotest.float 1e-9) "isp2" 14.0 u.(2);
  (* Tier 1: dests 1, 2, 4, 5 are reached via customer edges; it
     transits cp traffic (10) to each of the four, and peer/sibling
     traffic: to 1: 10; to 2: 10; to 4: 10; to 5: 10. Plus nothing
     else (1 and 2 route to each other via their peer edge). *)
  check (Alcotest.float 1e-9) "tier1" 40.0 u.(0);
  (* Stubs and the CP transit nothing. *)
  check (Alcotest.float 1e-9) "stub" 0.0 u.(4);
  check (Alcotest.float 1e-9) "cp" 0.0 u.(3)

let test_incoming_utilities_hand_checked () =
  let u = utilities Config.Incoming in
  (* ISP 1: receives over customer edges: traffic from stub 4 to every
     destination 4 reaches via 1. Stub 4's tie to everything beyond
     its providers: lowest-id picks 1 for dests 0, 1, 3 (via 1), and
     for dest 2, 5? Stub 4 routes to 2 via provider 2 directly, to 5
     via 2. So 4 sends through 1 its traffic to 0, 1, 3: 3 units.
     Nothing else enters 1 via a customer edge. *)
  check (Alcotest.float 1e-9) "isp1" 3.0 u.(1);
  (* Tier 1 receives from customers 1 and 2. Traffic entering via 1:
     1's traffic to dests 0, 3 (2 units; note dest 2 goes over the
     peer edge 1-2) plus 4's traffic to 0, 3 relayed through 1 (2
     units). Via 2: 2's traffic to 0, 3 (2) plus 5's to 0, 3 (2).
     Total 8. *)
  check (Alcotest.float 1e-9) "tier1" 8.0 u.(0);
  check (Alcotest.float 1e-9) "stub" 0.0 u.(5)

let test_utility_all_equals_sum_of_contributions () =
  let g = small () in
  let statics = Route_static.create g in
  let state = State.create g ~early:[ 0 ] in
  let weight = [| 1.0; 1.0; 1.0; 10.0; 1.0; 1.0 |] in
  List.iter
    (fun model ->
      let cfg = { lowest_id_cfg with model } in
      let all = Utility.all cfg statics state ~weight in
      let scratch = Bgp.Forest.make_scratch (Graph.n g) in
      let secure = State.secure_bytes state in
      let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
      for node = 0 to Graph.n g - 1 do
        let total = ref 0.0 in
        for d = 0 to Graph.n g - 1 do
          let info = Route_static.get statics d in
          Bgp.Forest.compute info ~tiebreak:cfg.tiebreak ~secure ~use_secp ~weight scratch;
          total := !total +. Utility.contribution model g info scratch ~weight node
        done;
        check (Alcotest.float 1e-9) "per-node sum" all.(node) !total
      done)
    [ Config.Outgoing; Config.Incoming ]

let test_stub_and_cp_utility_zero =
  qtest "stubs and CPs never earn transit utility"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:25 () in
      let* secure, _ = Testkit.Graphgen.secure_state g in
      return (g, secure))
    (fun (g, secure) ->
      let statics = Route_static.create g in
      let state = State.create g ~early:[] in
      (* Mirror the random secure set through enable (ISPs only). *)
      for i = 0 to Graph.n g - 1 do
        if Bytes.get secure i = '\001' && Graph.is_isp g i then ignore (State.enable state i)
      done;
      let weight = Array.make (Graph.n g) 1.0 in
      List.for_all
        (fun model ->
          let u = Utility.all { lowest_id_cfg with model } statics state ~weight in
          let ok = ref true in
          for i = 0 to Graph.n g - 1 do
            if (not (Graph.is_isp g i)) && u.(i) > 1e-9 then ok := false
          done;
          !ok)
        [ Config.Outgoing; Config.Incoming ])

(* Theorem 6.2: in the outgoing model a secure node never gains by
   turning off. *)
let test_theorem_6_2 =
  qtest ~count:200 "outgoing utility never increases by disabling (Thm 6.2)"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:22 () in
      let* bits = list_repeat (Graph.n g) bool in
      let* pick = int_bound (Graph.n g - 1) in
      return (g, bits, pick))
    (fun (g, bits, pick) ->
      let isps =
        List.filteri (fun i b -> b && Graph.is_isp g i) (List.mapi (fun i b -> (i, b)) bits |> List.map snd)
      in
      ignore isps;
      let statics = Route_static.create g in
      let state = State.create g ~early:[] in
      List.iteri
        (fun i b -> if b && Graph.is_isp g i then ignore (State.enable state i))
        bits;
      (* Choose a full ISP to flip (if any). *)
      let candidates = ref [] in
      for i = 0 to Graph.n g - 1 do
        if State.full state i then candidates := i :: !candidates
      done;
      match !candidates with
      | [] -> true
      | l ->
          let n = List.nth l (pick mod List.length l) in
          let weight = Array.make (Graph.n g) 1.0 in
          let cfg = { lowest_id_cfg with model = Config.Outgoing } in
          let u_on = (Utility.all cfg statics state ~weight).(n) in
          State.disable state n;
          let u_off = (Utility.all cfg statics state ~weight).(n) in
          u_on >= u_off -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_trivial_stable () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = Traffic.Weights.assign g ~cp_fraction:0.1 in
  let state = State.create g ~early:[] in
  let result = Engine.run lowest_id_cfg statics ~weight ~state in
  check Alcotest.int "one quiet round" 1 (Engine.rounds_run result);
  check Alcotest.bool "stable" true (result.termination = Engine.Stable)

let test_engine_outgoing_never_turns_off =
  qtest ~count:60 "outgoing-model runs never disable"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:25 () in
      let* early_bits = list_repeat (Graph.n g) bool in
      return (g, early_bits))
    (fun (g, early_bits) ->
      let early =
        List.filteri (fun i _ -> Graph.is_isp g i)
          (List.mapi (fun i b -> if b then i else -1) early_bits)
        |> List.filter (fun i -> i >= 0 && Graph.is_isp g i)
      in
      let statics = Route_static.create g in
      let weight = Array.make (Graph.n g) 1.0 in
      let state = State.create g ~early in
      let result = Engine.run lowest_id_cfg statics ~weight ~state in
      List.for_all (fun (r : Engine.round_record) -> r.turned_off = []) result.rounds)

let test_engine_secure_monotone_outgoing =
  qtest ~count:60 "secure count is monotone under the outgoing model"
    (Testkit.Graphgen.graph ~max_n:25 ())
    (fun g ->
      let early = Asgraph.Metrics.top_by_degree g 2 in
      let statics = Route_static.create g in
      let weight = Array.make (Graph.n g) 1.0 in
      let state = State.create g ~early in
      let result = Engine.run lowest_id_cfg statics ~weight ~state in
      let rec monotone last = function
        | [] -> true
        | (r : Engine.round_record) :: rest -> r.secure_as >= last && monotone r.secure_as rest
      in
      monotone result.initial_secure_as result.rounds)

let test_engine_projection_exact_for_lone_flipper () =
  (* In the diamond gadget exactly one ISP flips in each round, so the
     myopic projection must equal the realized utility next round. *)
  let d = Gadgets.Diamond.build () in
  let statics = Route_static.create d.graph in
  let state = State.create d.graph ~early:d.early in
  let result = Engine.run Gadgets.Diamond.config statics ~weight:d.weight ~state in
  match result.rounds with
  | r1 :: r2 :: _ ->
      check Alcotest.(list int) "round1 lone flipper" [ d.isp_b ] r1.turned_on;
      check (Alcotest.float 1e-9) "projection realized exactly"
        r1.projected.(d.isp_b) r2.utilities.(d.isp_b)
  | _ -> Alcotest.fail "expected at least two rounds"

let test_engine_respects_frozen () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = [| 1.0; 1.0; 1.0; 50.0; 1.0; 1.0 |] in
  let state = State.create g ~early:[ 0; 3 ] ~frozen:[ 1; 2 ] in
  let result = Engine.run lowest_id_cfg statics ~weight ~state in
  check Alcotest.bool "frozen 1 stays off" false (State.secure result.final 1);
  check Alcotest.bool "frozen 2 stays off" false (State.secure result.final 2)

let test_engine_baseline_state_independent () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = [| 1.0; 1.0; 1.0; 10.0; 1.0; 1.0 |] in
  let r1 =
    Engine.run lowest_id_cfg statics ~weight ~state:(State.create g ~early:[ 0 ])
  in
  let r2 =
    Engine.run lowest_id_cfg statics ~weight ~state:(State.create g ~early:[ 0; 3 ])
  in
  check Alcotest.(array (float 1e-9)) "baselines equal" r1.baseline r2.baseline

let test_engine_max_rounds () =
  let c = Gadgets.Chicken.build () in
  let statics = Route_static.create c.graph in
  let cfg = { Gadgets.Chicken.config with max_rounds = 1 } in
  let state = State.create c.graph ~early:c.early ~frozen:c.frozen in
  let result = Engine.run cfg statics ~weight:c.weight ~state in
  check Alcotest.bool "hit the cap" true (result.termination = Engine.Max_rounds)

(* ------------------------------------------------------------------ *)
(* Analyses *)

let test_analyses_diamonds () =
  let g = small () in
  let statics = Route_static.create g in
  (* Early adopter 0's tiebreak set towards stub 4 is {1, 2}: one
     diamond. Stub 5 is single-homed: none. *)
  check Alcotest.(list (pair int int)) "diamond count" [ (0, 1) ]
    (Analyses.diamonds statics ~early:[ 0 ])

let test_analyses_tiebreak_distribution () =
  let g = small () in
  let statics = Route_static.create g in
  let dist = Analyses.tiebreak_distribution statics ~among:(fun _ -> true) in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 dist in
  (* Reachable ordered pairs, self excluded: n * (n-1) = 30 in this
     fully-reachable graph. *)
  check Alcotest.int "pairs counted" 30 total;
  check Alcotest.bool "has singleton sets" true (List.mem_assoc 1 dist);
  check Alcotest.bool "has the diamond set" true (List.mem_assoc 2 dist)

let test_analyses_secure_path_stats () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = Array.make 6 1.0 in
  (* Everything secure: every reachable pair is secure. *)
  let state = State.create g ~early:[ 0; 1; 2; 3 ] in
  let stats = Analyses.secure_path_stats lowest_id_cfg statics state ~weight in
  check Alcotest.int "all pairs secure" stats.reachable_pairs stats.secure_pairs;
  check (Alcotest.float 1e-9) "f = 1" 1.0 stats.f_squared;
  (* Nothing secure: zero. *)
  let state0 = State.create g ~early:[] in
  let stats0 = Analyses.secure_path_stats lowest_id_cfg statics state0 ~weight in
  check Alcotest.int "no pairs secure" 0 stats0.secure_pairs

let test_analyses_remorse_turnoff () =
  let r = Gadgets.Remorse.build () in
  let statics = Route_static.create r.graph in
  let state = Gadgets.Remorse.initial_state r in
  let incentives =
    Analyses.turnoff_incentives Gadgets.Remorse.config statics state ~weight:r.weight
  in
  match incentives with
  | [ (isp, dests) ] ->
      check Alcotest.int "the remorse isp" r.isp isp;
      check Alcotest.bool "many destinations" true (dests >= List.length r.stubs)
  | _ -> Alcotest.fail "expected exactly the remorse ISP"

let test_analyses_never_secure () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = Array.make 6 1.0 in
  let state = State.create g ~early:[] in
  let result = Engine.run lowest_id_cfg statics ~weight ~state in
  check Alcotest.(list int) "all ISPs insecure without adopters" [ 0; 1; 2 ]
    (Analyses.never_secure_isps result)

let test_secure_path_stats_matches_reference =
  qtest ~count:60 "secure-path count agrees with the reference routes"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:18 () in
      let* secure, use_secp = Testkit.Graphgen.secure_state g in
      return (g, secure, use_secp))
    (fun (g, secure, use_secp) ->
      (* Build a State mirroring the random secure set exactly (ISPs
         as full deployers; simplex off so stub security matches). *)
      ignore use_secp;
      let statics = Route_static.create g in
      let state = State.create g ~early:[] ~simplex:false in
      for i = 0 to Graph.n g - 1 do
        if Bytes.get secure i = '\001' then ignore (State.enable state i)
      done;
      let cfg = { lowest_id_cfg with stub_tiebreak = false } in
      let weight = Array.make (Graph.n g) 1.0 in
      let stats = Analyses.secure_path_stats cfg statics state ~weight in
      (* Reference count via the independent fixed point. *)
      let sec = State.secure_bytes state in
      let usp = State.use_secp_bytes state ~stub_tiebreak:false in
      let expected = ref 0 in
      for d = 0 to Graph.n g - 1 do
        let rib =
          Testkit.Refbgp.route_to g ~dest:d ~secure:sec ~use_secp:usp
            ~tiebreak:Bgp.Policy.Lowest_id
        in
        Array.iteri
          (fun i r ->
            if i <> d then begin
              match r with
              | Some rr -> if rr.Testkit.Refbgp.secure then incr expected
              | None -> ()
            end)
          rib
      done;
      stats.secure_pairs = !expected)

let test_engine_deterministic =
  qtest ~count:25 "engine runs are deterministic"
    (Testkit.Graphgen.graph ~max_n:25 ())
    (fun g ->
      let run () =
        let statics = Route_static.create g in
        let weight = Array.make (Graph.n g) 1.0 in
        let state = State.create g ~early:(Asgraph.Metrics.top_by_degree g 2) in
        let r = Engine.run Config.default statics ~weight ~state in
        List.map (fun (rr : Engine.round_record) -> (rr.turned_on, rr.turned_off)) r.rounds
      in
      run () = run ())

let test_engine_incoming_always_terminates =
  qtest ~count:40 "incoming-model runs end in stable, oscillation or cap"
    (Testkit.Graphgen.graph ~max_n:20 ())
    (fun g ->
      let statics = Route_static.create g in
      let weight = Array.make (Graph.n g) 1.0 in
      let state = State.create g ~early:(Asgraph.Metrics.top_by_degree g 2) in
      let cfg = { Config.incoming with tiebreak = Bgp.Policy.Lowest_id; max_rounds = 40 } in
      let r = Engine.run cfg statics ~weight ~state in
      Engine.rounds_run r <= 40
      &&
      match r.termination with
      | Engine.Stable | Engine.Oscillation _ | Engine.Max_rounds -> true)

(* ------------------------------------------------------------------ *)
(* Resilience *)

let test_resilience_nobody_secure_attacker_competes () =
  let g = small () in
  let statics = Route_static.create g in
  let state = State.create g ~early:[] in
  (* Attacker ISP 1 hijacks stub 5 (homed only on ISP 2): ISP 1's own
     branch (stub 4 splits) is contested; tier1 picks by id. *)
  let o =
    Core.Resilience.simulate_attack statics state ~stub_tiebreak:true
      ~tiebreak:Bgp.Policy.Lowest_id ~attacker:1 ~victim:5
  in
  check Alcotest.int "total counts all other ASes" 5 o.total;
  check Alcotest.bool "someone is deceived" true (o.deceived > 0);
  check Alcotest.bool "not everyone is deceived" true (o.deceived < o.total)

let test_resilience_full_deployment_protects_ties () =
  let g = small () in
  let statics = Route_static.create g in
  (* Everyone secure: any AS with a fully secure legitimate route of
     equal preference is immune; the deceived count cannot grow when
     moving from nobody-secure to everybody-secure. *)
  let deceived state =
    (Core.Resilience.simulate_attack statics state ~stub_tiebreak:true
       ~tiebreak:Bgp.Policy.Lowest_id ~attacker:1 ~victim:5)
      .deceived
  in
  let none = deceived (State.create g ~early:[]) in
  let full = deceived (State.create g ~early:[ 0; 1; 2; 3 ]) in
  check Alcotest.bool "security does not increase deception" true (full <= none)

let test_resilience_self_attack_rejected () =
  let g = small () in
  let statics = Route_static.create g in
  let state = State.create g ~early:[] in
  Alcotest.check_raises "attacker = victim"
    (Invalid_argument "Resilience.simulate_attack") (fun () ->
      ignore
        (Core.Resilience.simulate_attack statics state ~stub_tiebreak:true
           ~tiebreak:Bgp.Policy.Lowest_id ~attacker:2 ~victim:2))

let test_resilience_mean_fraction_bounds =
  qtest ~count:20 "mean deceived fraction lies in [0, 1]"
    (Testkit.Graphgen.graph ~max_n:25 ())
    (fun g ->
      let statics = Route_static.create g in
      let state = State.create g ~early:[] in
      let f =
        Core.Resilience.mean_deceived_fraction statics state ~stub_tiebreak:true
          ~tiebreak:Bgp.Policy.Lowest_id ~samples:10 ~seed:3
      in
      f >= 0.0 && f <= 1.0)

let test_resilience_ranked_tiebreak_agrees =
  qtest ~count:40 "ranked attack at tiebreak-only equals the forest-based one"
    QCheck2.Gen.(
      let* g = Testkit.Graphgen.graph ~max_n:20 () in
      let* a = int_bound (Graph.n g - 1) in
      let* v = int_bound (Graph.n g - 1) in
      return (g, a, v))
    (fun (g, attacker, victim) ->
      attacker = victim
      ||
      let statics = Route_static.create g in
      let state = State.create g ~early:[] in
      for i = 0 to Graph.n g - 1 do
        if Graph.is_isp g i && i mod 2 = 0 then ignore (State.enable state i)
      done;
      let plain =
        Core.Resilience.simulate_attack statics state ~stub_tiebreak:true
          ~tiebreak:Bgp.Policy.Lowest_id ~attacker ~victim
      in
      let ranked =
        Core.Resilience.simulate_attack_ranked statics state ~stub_tiebreak:true
          ~tiebreak:Bgp.Policy.Lowest_id ~position:Bgp.Flexsim.Tiebreak_only ~attacker
          ~victim
      in
      plain.deceived = ranked.deceived && plain.total = ranked.total)

let test_resilience_security_first_never_worse () =
  let g = small () in
  let statics = Route_static.create g in
  let state = State.create g ~early:[ 0; 1; 2; 3 ] in
  let mean position =
    Core.Resilience.mean_deceived_fraction_ranked statics state ~stub_tiebreak:true
      ~tiebreak:Bgp.Policy.Lowest_id ~position ~samples:30 ~seed:5
  in
  check Alcotest.bool "security-first <= tiebreak-only" true
    (mean Bgp.Flexsim.Before_lp <= mean Bgp.Flexsim.Tiebreak_only +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Threshold jitter (Section 8.2 extension) *)

let test_jitter_zero_matches_default () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = [| 1.0; 1.0; 1.0; 10.0; 1.0; 1.0 |] in
  let run cfg =
    let state = State.create g ~early:[ 0; 3 ] in
    let r = Engine.run cfg statics ~weight ~state in
    (Engine.rounds_run r, State.secure_count r.final)
  in
  check
    Alcotest.(pair int int)
    "jitter 0 is the identity" (run lowest_id_cfg)
    (run { lowest_id_cfg with theta_jitter = 0.0; jitter_seed = 99 })

let test_jitter_deterministic_by_seed () =
  let g = small () in
  let statics = Route_static.create g in
  let weight = [| 1.0; 1.0; 1.0; 50.0; 1.0; 1.0 |] in
  let run seed =
    let state = State.create g ~early:[ 0; 3 ] in
    let cfg = { lowest_id_cfg with theta_jitter = 1.0; jitter_seed = seed } in
    let r = Engine.run cfg statics ~weight ~state in
    List.map (fun (rr : Engine.round_record) -> rr.turned_on) r.rounds
  in
  check
    Alcotest.(list (list int))
    "same seed, same dynamics" (run 7) (run 7)

let () =
  Alcotest.run "core"
    [
      ( "state",
        [
          Alcotest.test_case "initial state" `Quick test_state_initial;
          Alcotest.test_case "enable upgrades stubs" `Quick test_state_simplex_on_enable;
          Alcotest.test_case "simplex is sticky" `Quick test_state_simplex_sticky_on_disable;
          Alcotest.test_case "undo_enable is exact" `Quick test_state_undo_enable_exact;
          Alcotest.test_case "pinned protected" `Quick test_state_pinned_protected;
          Alcotest.test_case "ablation flags" `Quick test_state_ablation_flags;
          Alcotest.test_case "stub tiebreak toggle" `Quick test_state_stub_tiebreak_toggle;
          Alcotest.test_case "copy independent" `Quick test_state_copy_independent;
        ] );
      ( "utility",
        [
          Alcotest.test_case "outgoing hand-checked" `Quick
            test_outgoing_utilities_hand_checked;
          Alcotest.test_case "incoming hand-checked" `Quick
            test_incoming_utilities_hand_checked;
          Alcotest.test_case "all = sum of contributions" `Quick
            test_utility_all_equals_sum_of_contributions;
          test_stub_and_cp_utility_zero;
          test_theorem_6_2;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no adopters, no deployment" `Quick test_engine_trivial_stable;
          test_engine_outgoing_never_turns_off;
          test_engine_secure_monotone_outgoing;
          Alcotest.test_case "lone flipper projection exact" `Quick
            test_engine_projection_exact_for_lone_flipper;
          Alcotest.test_case "respects frozen nodes" `Quick test_engine_respects_frozen;
          Alcotest.test_case "baseline is state independent" `Quick
            test_engine_baseline_state_independent;
          Alcotest.test_case "round cap" `Quick test_engine_max_rounds;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "attacker competes" `Quick
            test_resilience_nobody_secure_attacker_competes;
          Alcotest.test_case "security never helps the attacker" `Quick
            test_resilience_full_deployment_protects_ties;
          Alcotest.test_case "self attack rejected" `Quick test_resilience_self_attack_rejected;
          test_resilience_mean_fraction_bounds;
          test_resilience_ranked_tiebreak_agrees;
          Alcotest.test_case "security-first never worse" `Quick
            test_resilience_security_first_never_worse;
        ] );
      ( "jitter",
        [
          Alcotest.test_case "zero jitter is the identity" `Quick
            test_jitter_zero_matches_default;
          Alcotest.test_case "deterministic by seed" `Quick test_jitter_deterministic_by_seed;
        ] );
      ( "analyses",
        [
          test_secure_path_stats_matches_reference;
          test_engine_deterministic;
          test_engine_incoming_always_terminates;
          Alcotest.test_case "diamonds" `Quick test_analyses_diamonds;
          Alcotest.test_case "tiebreak distribution" `Quick
            test_analyses_tiebreak_distribution;
          Alcotest.test_case "secure path stats" `Quick test_analyses_secure_path_stats;
          Alcotest.test_case "remorse turn-off incentive" `Quick
            test_analyses_remorse_turnoff;
          Alcotest.test_case "never-secure ISPs" `Quick test_analyses_never_secure;
        ] );
    ]
