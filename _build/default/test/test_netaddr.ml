(* Tests for IPv4 addresses and prefixes. *)

module Ipv4 = Netaddr.Ipv4
module Prefix = Netaddr.Prefix

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Ipv4 *)

let test_ipv4_parse_valid () =
  List.iter
    (fun (s, expected) ->
      match Ipv4.of_string s with
      | Some v -> check Alcotest.int s expected (Ipv4.to_int v)
      | None -> Alcotest.fail ("failed to parse " ^ s))
    [
      ("0.0.0.0", 0);
      ("255.255.255.255", 0xFFFFFFFF);
      ("10.0.0.1", 0x0A000001);
      ("192.168.1.1", 0xC0A80101);
      ("1.2.3.4", 0x01020304);
    ]

let test_ipv4_parse_invalid () =
  List.iter
    (fun s -> check Alcotest.bool s true (Ipv4.of_string s = None))
    [
      ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "1.2.3.999"; "a.b.c.d"; "1..2.3";
      "1.2.3.4 "; " 1.2.3.4"; "+1.2.3.4"; "1.2.3.4x"; "1.2.3.-4"; "1234.1.1.1";
    ]

let test_ipv4_roundtrip_qcheck =
  qtest "print/parse roundtrip" QCheck2.Gen.(int_bound 0xFFFFFFF)
    (fun raw ->
      let v = Ipv4.of_int (raw * 16) in
      Ipv4.of_string (Ipv4.to_string v) = Some v)

let test_ipv4_of_octets () =
  check Alcotest.string "octets" "1.2.3.4" (Ipv4.to_string (Ipv4.of_octets 1 2 3 4));
  Alcotest.check_raises "bad octet" (Invalid_argument "Ipv4.of_octets") (fun () ->
      ignore (Ipv4.of_octets 256 0 0 0))

let test_ipv4_compare () =
  let a = Ipv4.of_string_exn "10.0.0.1" and b = Ipv4.of_string_exn "10.0.0.2" in
  check Alcotest.bool "ordering" true (Ipv4.compare a b < 0);
  check Alcotest.bool "equal" true (Ipv4.equal a a)

(* ------------------------------------------------------------------ *)
(* Prefix *)

let p = Prefix.of_string_exn

let test_prefix_parse () =
  let pr = p "10.1.0.0/16" in
  check Alcotest.string "roundtrip" "10.1.0.0/16" (Prefix.to_string pr);
  check Alcotest.int "length" 16 pr.Prefix.length

let test_prefix_parse_invalid () =
  List.iter
    (fun s -> check Alcotest.bool s true (Prefix.of_string s = None))
    [ ""; "10.0.0.0"; "10.0.0.0/33"; "10.0.0.0/-1"; "10.0.0.1/24"; "300.0.0.0/8"; "10.0.0.0/"; "10.0.0.0/8/9" ]

let test_prefix_make_masks_host_bits () =
  let pr = Prefix.make (Ipv4.of_string_exn "10.1.2.3") 16 in
  check Alcotest.string "masked" "10.1.0.0/16" (Prefix.to_string pr)

let test_prefix_contains () =
  let pr = p "192.168.0.0/16" in
  check Alcotest.bool "contains inside" true
    (Prefix.contains pr (Ipv4.of_string_exn "192.168.42.7"));
  check Alcotest.bool "excludes outside" false
    (Prefix.contains pr (Ipv4.of_string_exn "192.169.0.1"));
  check Alcotest.bool "slash zero contains all" true
    (Prefix.contains (p "0.0.0.0/0") (Ipv4.of_string_exn "8.8.8.8"))

let test_prefix_subsumes () =
  check Alcotest.bool "wider subsumes narrower" true
    (Prefix.subsumes (p "10.0.0.0/8") (p "10.5.0.0/16"));
  check Alcotest.bool "narrower does not subsume wider" false
    (Prefix.subsumes (p "10.5.0.0/16") (p "10.0.0.0/8"));
  check Alcotest.bool "disjoint" false (Prefix.subsumes (p "10.0.0.0/8") (p "11.0.0.0/8"));
  check Alcotest.bool "reflexive" true (Prefix.subsumes (p "10.0.0.0/8") (p "10.0.0.0/8"))

let test_prefix_overlap () =
  check Alcotest.bool "nested overlap" true (Prefix.overlap (p "10.0.0.0/8") (p "10.1.0.0/16"));
  check Alcotest.bool "disjoint no overlap" false
    (Prefix.overlap (p "10.0.0.0/16") (p "10.1.0.0/16"))

let test_prefix_split () =
  match Prefix.split (p "10.0.0.0/8") with
  | None -> Alcotest.fail "should split"
  | Some (lo, hi) ->
      check Alcotest.string "lo" "10.0.0.0/9" (Prefix.to_string lo);
      check Alcotest.string "hi" "10.128.0.0/9" (Prefix.to_string hi);
      check Alcotest.bool "host cannot split" true (Prefix.split (p "1.2.3.4/32") = None)

let gen_prefix =
  QCheck2.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int addr) len)
      (int_bound 0xFFFFFFF) (int_bound 32))

let test_prefix_roundtrip_qcheck =
  qtest "prefix print/parse roundtrip" gen_prefix (fun pr ->
      Prefix.of_string (Prefix.to_string pr) = Some pr)

let test_prefix_split_partition_qcheck =
  qtest "split halves partition the parent"
    QCheck2.Gen.(pair gen_prefix (int_bound 0xFFFFFFF))
    (fun (pr, raw) ->
      match Prefix.split pr with
      | None -> pr.Prefix.length = 32
      | Some (lo, hi) ->
          Prefix.subsumes pr lo && Prefix.subsumes pr hi
          && (not (Prefix.overlap lo hi))
          &&
          let addr = Ipv4.of_int raw in
          if Prefix.contains pr addr then
            Prefix.contains lo addr <> Prefix.contains hi addr
          else (not (Prefix.contains lo addr)) && not (Prefix.contains hi addr))

let test_prefix_subsumes_transitive_qcheck =
  qtest "subsumption is transitive"
    QCheck2.Gen.(triple gen_prefix gen_prefix gen_prefix)
    (fun (a, b, c) ->
      (not (Prefix.subsumes a b && Prefix.subsumes b c)) || Prefix.subsumes a c)

let () =
  Alcotest.run "netaddr"
    [
      ( "ipv4",
        [
          Alcotest.test_case "parse valid" `Quick test_ipv4_parse_valid;
          Alcotest.test_case "parse invalid" `Quick test_ipv4_parse_invalid;
          Alcotest.test_case "of_octets" `Quick test_ipv4_of_octets;
          Alcotest.test_case "compare" `Quick test_ipv4_compare;
          test_ipv4_roundtrip_qcheck;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "parse invalid" `Quick test_prefix_parse_invalid;
          Alcotest.test_case "make masks host bits" `Quick test_prefix_make_masks_host_bits;
          Alcotest.test_case "contains" `Quick test_prefix_contains;
          Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
          Alcotest.test_case "overlap" `Quick test_prefix_overlap;
          Alcotest.test_case "split" `Quick test_prefix_split;
          test_prefix_roundtrip_qcheck;
          test_prefix_split_partition_qcheck;
          test_prefix_subsumes_transitive_qcheck;
        ] );
    ]
