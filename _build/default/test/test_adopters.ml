(* Tests for early-adopter selection strategies. *)

module Graph = Asgraph.Graph
module Strategy = Adopters.Strategy

let check = Alcotest.check

let small () =
  Graph.build ~n:6
    ~cp_edges:[ (0, 1); (0, 2); (1, 4); (2, 4); (2, 5) ]
    ~peer_edges:[ (0, 3); (1, 2) ]
    ~cps:[ 3 ]

let test_none () = check Alcotest.(list int) "empty" [] (Strategy.select (small ()) Strategy.None_)

let test_top_degree () =
  let g = small () in
  check Alcotest.(list int) "top 2 by degree, isps only" [ 2; 0 ]
    (Strategy.select g (Strategy.Top_degree 2));
  check Alcotest.int "asking for more than exists" 3
    (List.length (Strategy.select g (Strategy.Top_degree 50)))

let test_content_providers () =
  check Alcotest.(list int) "the cps" [ 3 ] (Strategy.select (small ()) Strategy.Content_providers)

let test_cps_and_top_dedup () =
  let g = small () in
  let sel = Strategy.select g (Strategy.Cps_and_top 3) in
  check Alcotest.int "no duplicates" (List.length (List.sort_uniq compare sel))
    (List.length sel);
  check Alcotest.bool "contains cp" true (List.mem 3 sel);
  check Alcotest.bool "contains top isp" true (List.mem 2 sel)

let test_random_deterministic () =
  let g = small () in
  let a = Strategy.select g (Strategy.Random_isps (2, 5)) in
  let b = Strategy.select g (Strategy.Random_isps (2, 5)) in
  check Alcotest.(list int) "same seed same set" a b;
  List.iter (fun i -> check Alcotest.bool "isp only" true (Graph.is_isp g i)) a;
  check Alcotest.int "count" 2 (List.length a)

let test_explicit_dedup () =
  check Alcotest.(list int) "dedup preserves order" [ 5; 1; 2 ]
    (Strategy.select (small ()) (Strategy.Explicit [ 5; 1; 5; 2; 1 ]))

let test_all_paper_sets () =
  let g = small () in
  let sets = Strategy.all_paper_sets g in
  check Alcotest.bool "has none" true (List.mem_assoc "none" sets);
  check Alcotest.bool "has cps" true (List.mem_assoc "5cps" sets);
  check Alcotest.bool "has cps+top5" true (List.mem_assoc "cps+top5" sets);
  List.iter
    (fun (_, sel) ->
      check Alcotest.int "all sets deduped" (List.length (List.sort_uniq compare sel))
        (List.length sel))
    sets

let test_to_string () =
  check Alcotest.string "top" "top7" (Strategy.to_string (Strategy.Top_degree 7));
  check Alcotest.string "random" "random3" (Strategy.to_string (Strategy.Random_isps (3, 1)));
  check Alcotest.string "explicit" "explicit(2)" (Strategy.to_string (Strategy.Explicit [ 1; 2 ]))

let test_greedy_matches_bruteforce_on_modular_instance () =
  (* On the set-cover reduction with disjoint subsets, greedy must
     find the same optimum as brute force. *)
  let inst =
    Gadgets.Setcover.{ universe = 6; subsets = [ [| 0; 1 |]; [| 2; 3; 4 |]; [| 5 |] ] }
  in
  let t = Gadgets.Setcover.build inst in
  let statics = Bgp.Route_static.create t.graph in
  let candidates = Array.to_list t.s1 in
  let cfg = Gadgets.Setcover.config in
  let best, best_count =
    Strategy.brute_force_optimum cfg statics ~weight:t.weight ~k:2 ~candidates
  in
  let greedy = Strategy.greedy cfg statics ~weight:t.weight ~k:2 ~candidates in
  let score early = Gadgets.Setcover.secure_after t ~early in
  check Alcotest.int "greedy achieves the optimum" best_count (score greedy);
  check Alcotest.int "brute force is consistent" best_count (score best)

let () =
  Alcotest.run "adopters"
    [
      ( "select",
        [
          Alcotest.test_case "none" `Quick test_none;
          Alcotest.test_case "top degree" `Quick test_top_degree;
          Alcotest.test_case "content providers" `Quick test_content_providers;
          Alcotest.test_case "cps+top dedup" `Quick test_cps_and_top_dedup;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "explicit dedup" `Quick test_explicit_dedup;
          Alcotest.test_case "paper sets" `Quick test_all_paper_sets;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "greedy matches brute force (modular)" `Quick
            test_greedy_matches_bruteforce_on_modular_instance;
        ] );
    ]
