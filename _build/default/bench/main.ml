(* The benchmark harness, in two parts:

   1. Regenerate every table and figure of the paper's evaluation on
      the synthetic Internet (scale with SBGP_N; default 500) —
      rows/series in paper order, recorded against the paper in
      EXPERIMENTS.md.

   2. Bechamel microbenchmarks: one [Test.make] per table/figure,
      timing that artifact's computational kernel at a small fixed
      scale so regressions in the routing/engine hot paths are
      visible.

   Flags: --bench-only skips part 1, --no-bench skips part 2,
   --workers N pins the engine sweep's worker-domain count (default:
   Parallel.Pool.default_workers, i.e. SBGP_WORKERS or one per spare
   core). The engine kernels additionally time a fixed workers=1 run
   so the parallel overhead/speedup at the chosen count is visible. *)

let flag name = Array.exists (String.equal name) Sys.argv

let int_flag name default =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then
      Option.value ~default (int_of_string_opt Sys.argv.(i + 1))
    else scan (i + 1)
  in
  scan 1

let workers = max 1 (int_flag "--workers" (Parallel.Pool.default_workers ()))

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures. *)

let run_experiments () =
  let n = Experiments.Scenario.default_n () in
  Printf.printf
    "=== Reproducing the paper's evaluation (synthetic Internet, N = %d; set SBGP_N to \
     rescale) ===\n\n%!"
    n;
  let scenario = Experiments.Scenario.create ~n () in
  Experiments.Registry.run_streaming scenario (fun e table dt ->
      Printf.printf "== %s: %s  [%.1fs]\n%s\n%!" e.id e.title dt
        (Nsutil.Table.to_string table))

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel kernels. *)

let kernels () =
  let open Bechamel in
  (* Small fixed-scale setup shared by the kernels (prepared outside
     the staged functions; per-destination caches are primed so the
     kernels measure steady-state work). *)
  let scenario = Experiments.Scenario.create ~n:120 ~seed:3 () in
  let g = Experiments.Scenario.graph scenario in
  let statics = scenario.statics in
  let n = Asgraph.Graph.n g in
  for d = 0 to n - 1 do
    ignore (Bgp.Route_static.get statics d)
  done;
  let aug_statics = Lazy.force scenario.statics_aug in
  for d = 0 to n - 1 do
    ignore (Bgp.Route_static.get aug_statics d)
  done;
  let early = Experiments.Scenario.case_study_adopters scenario in
  let cfg_case = { Core.Config.default with workers } in
  let weight = Experiments.Scenario.weights scenario cfg_case in
  let engine_run ?(augmented = false) cfg early =
    let stats = if augmented then aug_statics else statics in
    let graph = Bgp.Route_static.graph stats in
    let state =
      Core.State.create graph ~early ~simplex:(not cfg.Core.Config.disable_simplex)
        ~secp:(not cfg.Core.Config.disable_secp)
    in
    Core.Engine.run cfg stats ~weight ~state
  in
  let remorse = Gadgets.Remorse.build () in
  let remorse_statics = Bgp.Route_static.create remorse.graph in
  let chicken = Gadgets.Chicken.build () in
  let chicken_statics = Bgp.Route_static.create chicken.graph in
  let setcover =
    Gadgets.Setcover.build
      Gadgets.Setcover.
        { universe = 6; subsets = [ [| 0; 1; 2 |]; [| 2; 3 |]; [| 3; 4; 5 |] ] }
  in
  let scratch = Bgp.Forest.make_scratch n in
  let zeros = Bytes.make n '\000' in
  [
    Test.make ~name:"table1/diamond-scan"
      (Staged.stage (fun () -> Core.Analyses.diamonds statics ~early));
    Test.make ~name:"table2/graph-summary"
      (Staged.stage (fun () -> Asgraph.Metrics.summary g));
    Test.make ~name:"table3/cp-path-lengths"
      (Staged.stage (fun () ->
           List.map
             (fun cp -> Bgp.Route_static.mean_path_length statics ~from:cp)
             (Experiments.Scenario.cps scenario)));
    Test.make ~name:"table4/degrees"
      (Staged.stage (fun () -> Asgraph.Metrics.degree_array g));
    Test.make ~name:"fig3-7/case-study-run"
      (Staged.stage (fun () -> engine_run cfg_case early));
    (* The same run pinned to one worker: the gap against the row
       above is the sweep's parallel speedup (or overhead). *)
    Test.make ~name:"engine/sweep-workers-1"
      (Staged.stage (fun () -> engine_run { cfg_case with workers = 1 } early));
    Test.make
      ~name:(Printf.sprintf "engine/sweep-workers-%d" workers)
      (Staged.stage (fun () -> engine_run cfg_case early));
    Test.make ~name:"fig8/theta-30pc-run"
      (Staged.stage (fun () ->
           engine_run { cfg_case with theta = 0.3; theta_off = 0.3 } early));
    Test.make ~name:"fig9/secure-path-count"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Analyses.secure_path_stats cfg_case statics state ~weight));
    Test.make ~name:"fig10/tiebreak-distribution"
      (Staged.stage (fun () ->
           Core.Analyses.tiebreak_distribution statics ~among:(fun _ -> true)));
    Test.make ~name:"fig11/no-stub-tiebreak-run"
      (Staged.stage (fun () -> engine_run { cfg_case with stub_tiebreak = false } early));
    Test.make ~name:"fig12/augmented-graph-run"
      (Staged.stage (fun () -> engine_run ~augmented:true cfg_case early));
    Test.make ~name:"fig13/remorse-dynamics"
      (Staged.stage (fun () ->
           let state = Gadgets.Remorse.initial_state remorse in
           Core.Engine.run Gadgets.Remorse.config remorse_statics ~weight:remorse.weight
             ~state));
    Test.make ~name:"fig14/theta-0-run"
      (Staged.stage (fun () -> engine_run { cfg_case with theta = 0.0 } early));
    Test.make ~name:"oscillation/chicken-dynamics"
      (Staged.stage (fun () ->
           let state =
             Core.State.create chicken.graph ~early:chicken.early ~frozen:chicken.frozen
           in
           Core.Engine.run Gadgets.Chicken.config chicken_statics ~weight:chicken.weight
             ~state));
    Test.make ~name:"setcover/reduction-run"
      (Staged.stage (fun () ->
           Gadgets.Setcover.secure_after setcover ~early:[ setcover.s1.(0) ]));
    Test.make ~name:"attacks/appendix-b"
      (Staged.stage (fun () ->
           ( Bgpsec.Attack.appendix_b ~prefer_partial:false,
             Bgpsec.Attack.appendix_b ~prefer_partial:true )));
    Test.make ~name:"ablations/no-secp-run"
      (Staged.stage (fun () -> engine_run { cfg_case with disable_secp = true } early));
    Test.make ~name:"resilience/one-hijack"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Resilience.simulate_attack statics state ~stub_tiebreak:true
             ~tiebreak:cfg_case.tiebreak ~attacker:0 ~victim:(n - 1)));
    Test.make ~name:"secpriority/security-first-hijack"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Resilience.simulate_attack_ranked statics state ~stub_tiebreak:true
             ~tiebreak:cfg_case.tiebreak ~position:Bgp.Flexsim.Before_lp ~attacker:0
             ~victim:(n - 1)));
    Test.make ~name:"pricing/customer-volumes"
      (Staged.stage (fun () ->
           let state = Core.State.create g ~early in
           Core.Utility.customer_volumes
             { cfg_case with model = Core.Config.Incoming }
             statics state ~weight));
    Test.make ~name:"jitter/jittered-run"
      (Staged.stage (fun () -> engine_run { cfg_case with theta_jitter = 1.0 } early));
    Test.make ~name:"evolution/grow-15pc"
      (Staged.stage (fun () ->
           Topology.Evolve.grow g ~new_stubs:(n / 7) ~secure_bias:2.0
             ~is_secure:(fun i -> i mod 2 = 0)
             ~seed:3));
    Test.make ~name:"selector/k3-single-on"
      (Staged.stage
         (let sel = Gadgets.Selector.build ~k:3 () in
          fun () -> Gadgets.Selector.run_from sel ~on:[ 0 ]));
    (* Kernel primitives under everything above. *)
    Test.make ~name:"kernel/route-static-one-dest"
      (Staged.stage (fun () -> Bgp.Route_static.compute g (n - 1)));
    Test.make ~name:"kernel/forest-one-dest"
      (Staged.stage (fun () ->
           Bgp.Forest.compute
             (Bgp.Route_static.get statics (n - 1))
             ~tiebreak:cfg_case.tiebreak ~secure:zeros ~use_secp:zeros ~weight scratch));
    Test.make ~name:"kernel/sha256-1KiB"
      (Staged.stage
         (let buf = String.make 1024 'x' in
          fun () -> Scrypto.Sha256.digest_string buf));
    Test.make ~name:"kernel/checkpoint-write-load-32KiB"
      (Staged.stage
         (let digest = Scrypto.Sha256.digest_string "bench" in
          let payload = String.make 32768 'p' in
          fun () ->
            Core.Checkpoint.write ~path:"ckpt.bench" ~digest ~round:1 payload;
            Core.Checkpoint.load_exn ~path:"ckpt.bench" ~digest));
  ]

let run_bechamel () =
  let open Bechamel in
  Printf.printf "=== Bechamel kernels (one per table/figure; N = 120) ===\n\n%!";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let table = Nsutil.Table.create ~header:[ "kernel"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          let time_ns =
            match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
          in
          let pretty =
            if Float.is_nan time_ns then "-"
            else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
            else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.0f ns" time_ns
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Nsutil.Table.add_row table [ name; pretty; r2 ])
        ols)
    (kernels ());
  Nsutil.Table.print table

(* One case-study run per worker count, with the incremental sweep's
   cache effectiveness — complements the Bechamel rows with the stats
   the timing numbers depend on. *)
let report_engine_sweep () =
  let scenario = Experiments.Scenario.create ~n:120 ~seed:3 () in
  let g = Experiments.Scenario.graph scenario in
  let early = Experiments.Scenario.case_study_adopters scenario in
  let weight = Experiments.Scenario.weights scenario Core.Config.default in
  Printf.printf "=== Engine sweep: workers x incremental cache (N = 120) ===\n\n%!";
  List.iter
    (fun theta ->
      List.iter
        (fun w ->
          let cfg = { Core.Config.default with workers = w; theta; theta_off = theta } in
          let state = Core.State.create g ~early in
          let t0 = Unix.gettimeofday () in
          let result = Core.Engine.run cfg scenario.statics ~weight ~state in
          let dt = Unix.gettimeofday () -. t0 in
          Printf.printf
            "theta=%.2f workers=%d: %.3fs, %d rounds; %d dest recomputes, %d cache \
             hits (%.1f%% hit rate)\n%!"
            theta w dt
            (Core.Engine.rounds_run result)
            result.dest_recomputed result.dest_reused
            (100.0 *. Core.Engine.cache_hit_rate result))
        (if workers = 1 then [ 1 ] else [ 1; workers ]))
    [ 0.05; 0.30 ];
  print_newline ()

(* Fault tolerance: the case-study run with injected worker faults and
   the default retry budget, against the clean run — the supervision
   layer must absorb the faults without changing a single float. *)
let report_fault_tolerance () =
  let scenario = Experiments.Scenario.create ~n:120 ~seed:3 () in
  let g = Experiments.Scenario.graph scenario in
  let early = Experiments.Scenario.case_study_adopters scenario in
  let weight = Experiments.Scenario.weights scenario Core.Config.default in
  let cfg = { Core.Config.default with workers } in
  let run ?faults () =
    let state = Core.State.create g ~early in
    let t0 = Unix.gettimeofday () in
    let r = Core.Engine.run ?faults cfg scenario.statics ~weight ~state in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "=== Fault tolerance: injected worker faults vs clean run (N = 120) ===\n\n%!";
  let clean, dt_clean = run () in
  let faults = Nsutil.Faults.create ~rate:0.02 ~budget:cfg.retries ~seed:11 () in
  let faulted, dt_faulted = run ~faults () in
  let identical =
    clean.Core.Engine.rounds = faulted.Core.Engine.rounds
    && clean.baseline = faulted.baseline
    && clean.termination = faulted.termination
    && clean.dest_recomputed = faulted.dest_recomputed
    && clean.dest_reused = faulted.dest_reused
  in
  Printf.printf
    "clean: %.3fs; faulted: %.3fs (%d of %d shots fired, retry budget %d); identical \
     results: %b\n\n%!"
    dt_clean dt_faulted
    (Nsutil.Faults.fired faults)
    (Nsutil.Faults.shots faults)
    cfg.retries identical;
  if not identical then begin
    prerr_endline "bench: faulted run diverged from clean run";
    exit 1
  end

let () =
  let t0 = Unix.gettimeofday () in
  if not (flag "--bench-only") then run_experiments ();
  if not (flag "--no-bench") then begin
    report_engine_sweep ();
    report_fault_tolerance ();
    run_bechamel ()
  end;
  Printf.printf "\ntotal wall clock: %.1fs\n" (Unix.gettimeofday () -. t0)
