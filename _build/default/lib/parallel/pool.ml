let workers_of_domain_count c = max 1 (c - 1)

let recommended_workers () = workers_of_domain_count (Domain.recommended_domain_count ())

let default_workers () =
  match Sys.getenv_opt "SBGP_WORKERS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> v
      | _ -> recommended_workers ())
  | None -> recommended_workers ()

let slice ~workers ~tasks w =
  let base = tasks / workers in
  let extra = tasks mod workers in
  let lo = (w * base) + min w extra in
  let hi = lo + base + (if w < extra then 1 else 0) in
  (lo, hi)

let run_slice ~init ~task lo hi =
  let acc = init () in
  for i = lo to hi - 1 do
    task acc i
  done;
  acc

let map_reduce ~workers ~tasks ~init ~task ~combine =
  if workers <= 1 || tasks <= 1 then run_slice ~init ~task 0 tasks
  else begin
    let workers = min workers tasks in
    let spawned =
      Array.init (workers - 1) (fun w ->
          let lo, hi = slice ~workers ~tasks (w + 1) in
          Domain.spawn (fun () -> run_slice ~init ~task lo hi))
    in
    let lo, hi = slice ~workers ~tasks 0 in
    let first = run_slice ~init ~task lo hi in
    Array.fold_left (fun acc d -> combine acc (Domain.join d)) first spawned
  end

let map_reduce_chunked ~workers ~tasks ~grain ~init ~task ~combine =
  let grain = max 1 grain in
  (* Cap the worker count so every worker gets at least [grain]
     contiguous tasks; slices stay contiguous, so the left-fold
     reduction visits tasks in index order exactly as [map_reduce]. *)
  let workers = max 1 (min workers (tasks / grain)) in
  map_reduce ~workers ~tasks ~init ~task ~combine

let map_array ~workers ~tasks f =
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    let acc =
      map_reduce ~workers ~tasks
        ~init:(fun () -> [])
        ~task:(fun _ i -> results.(i) <- Some (f i))
        ~combine:(fun a _ -> a)
    in
    ignore acc;
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map_array: missing result")
      results
  end
