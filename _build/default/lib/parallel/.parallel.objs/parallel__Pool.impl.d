lib/parallel/pool.ml: Array Domain Float List Nsutil Printexc Printf String Thread
