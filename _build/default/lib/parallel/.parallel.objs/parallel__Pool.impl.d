lib/parallel/pool.ml: Array Domain Sys
