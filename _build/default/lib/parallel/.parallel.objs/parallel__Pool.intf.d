lib/parallel/pool.mli:
