lib/parallel/pool.mli: Nsutil
