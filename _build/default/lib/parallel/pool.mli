(** Multicore map/reduce over integer task indices.

    This is the stand-in for the paper's 200-node DryadLINQ cluster
    (Appendix C.3): simulations parallelize by mapping per-destination
    computations across workers, each with worker-local scratch, and
    reducing the partial utility vectors. Workers are OCaml 5 domains;
    with [workers = 1] (the default on a single-core host) everything
    runs in the calling domain and results are bit-identical to the
    parallel runs, because the reduction is a deterministic left
    fold over worker index. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val map_reduce :
  workers:int ->
  tasks:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** [map_reduce ~workers ~tasks ~init ~task ~combine] partitions task
    indices [0 .. tasks-1] into [workers] contiguous slices; each
    worker folds [task] over its slice using its own accumulator from
    [init]; accumulators are combined left-to-right by worker index.
    [task] must only mutate its own accumulator. *)

val map_array : workers:int -> tasks:int -> (int -> 'a) -> 'a array
(** Pure per-task map collected into an array ([map_array f] is
    equivalent to [Array.init tasks f]). The closure must be safe to
    call from any domain. *)
