(** Multicore map/reduce over integer task indices.

    This is the stand-in for the paper's 200-node DryadLINQ cluster
    (Appendix C.3): simulations parallelize by mapping per-destination
    computations across workers, each with worker-local scratch, and
    reducing the partial utility vectors. Workers are OCaml 5 domains;
    with [workers = 1] (the default on a single-core host) everything
    runs in the calling domain and results are bit-identical to the
    parallel runs, because the reduction is a deterministic left
    fold over worker index. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 (clamped so a
    single-core host still gets one worker). *)

val workers_of_domain_count : int -> int
(** The clamp behind {!recommended_workers}: [max 1 (count - 1)].
    Exposed so the "at least 1" guarantee is testable without
    depending on the host's core count. *)

val default_workers : unit -> int
(** Worker count for components that take no explicit setting: the
    [SBGP_WORKERS] environment variable when it parses as a positive
    integer, else {!recommended_workers}. *)

val map_reduce :
  workers:int ->
  tasks:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** [map_reduce ~workers ~tasks ~init ~task ~combine] partitions task
    indices [0 .. tasks-1] into [workers] contiguous slices; each
    worker folds [task] over its slice using its own accumulator from
    [init]; accumulators are combined left-to-right by worker index.
    [task] must only mutate its own accumulator. *)

val map_reduce_chunked :
  workers:int ->
  tasks:int ->
  grain:int ->
  init:(unit -> 'acc) ->
  task:('acc -> int -> unit) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** {!map_reduce} with a scheduling grain: the worker count is capped
    at [tasks / grain] (at least 1) so no domain is spawned for fewer
    than [grain] tasks — tiny task sets run sequentially instead of
    drowning in spawn overhead. Slices remain contiguous and the
    reduction remains a left fold by worker index, so results are
    identical to [map_reduce] (and to [workers = 1]) for any grain. *)

val map_array : workers:int -> tasks:int -> (int -> 'a) -> 'a array
(** Pure per-task map collected into an array ([map_array f] is
    equivalent to [Array.init tasks f]). The closure must be safe to
    call from any domain. *)
