module Graph = Asgraph.Graph
module Prng = Nsutil.Prng

let augment g ~targets ~fraction ~seed =
  let rng = Prng.create ~seed in
  let cps = Graph.nodes_of_class g Asgraph.As_class.Cp in
  let existing = Hashtbl.create 4096 in
  let key a b = if a < b then (a, b) else (b, a) in
  let cp_edges = ref [] in
  let peer_edges = ref [] in
  List.iter
    (fun ((a, b), rel) ->
      Hashtbl.replace existing (key a b) ();
      match rel with
      | Graph.Customer -> cp_edges := (a, b) :: !cp_edges
      | Graph.Peer -> peer_edges := (a, b) :: !peer_edges
      | Graph.Provider -> assert false)
    (Graph.edges g);
  List.iter
    (fun cp ->
      List.iter
        (fun t ->
          if t <> cp && (not (Hashtbl.mem existing (key cp t))) && Prng.float rng 1.0 < fraction
          then begin
            Hashtbl.add existing (key cp t) ();
            peer_edges := (cp, t) :: !peer_edges
          end)
        targets)
    cps;
  Graph.build ~n:(Graph.n g) ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps

let augment_built (built : Gen.built) ~fraction ~seed =
  let graph = augment built.graph ~targets:built.ixp_present ~fraction ~seed in
  { built with graph }
