lib/topology/gen.ml: Array Asgraph Hashtbl List Nsutil Option Params
