lib/topology/evolve.ml: Array Asgraph List Nsutil
