lib/topology/gen.mli: Asgraph Params
