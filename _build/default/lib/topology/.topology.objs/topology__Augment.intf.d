lib/topology/augment.mli: Asgraph Gen
