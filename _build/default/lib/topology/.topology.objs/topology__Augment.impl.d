lib/topology/augment.ml: Asgraph Gen Hashtbl List Nsutil
