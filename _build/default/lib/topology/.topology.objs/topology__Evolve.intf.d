lib/topology/evolve.mli: Asgraph
