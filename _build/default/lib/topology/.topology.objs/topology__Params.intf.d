lib/topology/params.mli:
