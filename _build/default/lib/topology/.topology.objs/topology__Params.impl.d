lib/topology/params.ml:
