(** Synthetic Internet-like AS topology generator.

    Construction (deterministic given [Params.seed]):
    + Tier-1 ASes form a full peer clique and have no providers;
    + transit ISPs arrive in order and multihome to 1..k providers
      among earlier ISPs, chosen by preferential attachment on
      customer degree (this produces the heavy-tailed degree
      distribution);
    + ISPs additionally peer: a sparse random "private peering" layer
      plus dense IXP meshes among co-located members;
    + content providers attach to a few transit providers and peer
      lightly (heavier peering comes from {!Augment});
    + stubs multihome to ISPs per the configured distribution, again
      with preferential attachment. *)

type built = {
  graph : Asgraph.Graph.t;
  tier1 : int list;
  cps : int list;
  ixp_present : int list;  (** ISPs present at some IXP (augmentation targets) *)
}

val generate : Params.t -> built
(** Raises [Invalid_argument] on inconsistent parameters (e.g. more
    Tier 1s than ISPs). The result always satisfies GR1 by
    construction: providers have smaller generation index than their
    customers. *)
