(** The "augmented AS graph" of Section 6.8.1 / Appendix D.

    Published topologies underestimate content-provider peering; the
    paper compensates by peering each CP with a large fraction of the
    ASes present at IXPs until CP path lengths drop to ~2 hops. This
    module reproduces that pass on our synthetic graphs. *)

val augment :
  Asgraph.Graph.t ->
  targets:int list ->
  fraction:float ->
  seed:int ->
  Asgraph.Graph.t
(** [augment g ~targets ~fraction ~seed] returns a new graph where
    every CP gains peer edges to a random [fraction] of [targets]
    (typically the IXP-present ISPs). Existing edges are preserved;
    conflicting additions are skipped. *)

val augment_built : Gen.built -> fraction:float -> seed:int -> Gen.built
(** Convenience wrapper keeping the [Gen.built] metadata. *)
