lib/crypto/sig_scheme.ml: Buffer Bytes Char Hmac Nsutil Sha256 String
