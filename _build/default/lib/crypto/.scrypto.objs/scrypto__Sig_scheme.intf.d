lib/crypto/sig_scheme.mli: Nsutil
