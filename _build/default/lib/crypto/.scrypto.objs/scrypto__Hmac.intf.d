lib/crypto/hmac.mli:
