type keypair = { secret : string; key_id : string }
type signature = { key_id : string; tag : string }

let of_secret secret = { secret; key_id = Sha256.digest_string secret }

let generate rng =
  let buf = Buffer.create 32 in
  for _ = 1 to 4 do
    Buffer.add_int64_be buf (Nsutil.Prng.int64 rng)
  done;
  of_secret (Buffer.contents buf)

let sign (kp : keypair) msg =
  { key_id = kp.key_id; tag = Hmac.mac ~key:kp.secret msg }

let verify ~(verification_key : keypair) ~msg (s : signature) =
  String.equal s.key_id verification_key.key_id
  && Hmac.verify ~key:verification_key.secret ~msg ~tag:s.tag

let of_raw_signature ~key_id ~tag = { key_id; tag }

let signature_to_string s = Sha256.hex s.key_id ^ ":" ^ Sha256.hex s.tag

let unhex str =
  let len = String.length str in
  if len mod 2 <> 0 then None
  else begin
    let value c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let out = Bytes.create (len / 2) in
    let ok = ref true in
    for i = 0 to (len / 2) - 1 do
      match (value str.[2 * i], value str.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string out) else None
  end

let signature_of_string str =
  match String.index_opt str ':' with
  | None -> None
  | Some i -> begin
      let key_hex = String.sub str 0 i in
      let tag_hex = String.sub str (i + 1) (String.length str - i - 1) in
      match (unhex key_hex, unhex tag_hex) with
      | Some key_id, Some tag -> Some { key_id; tag }
      | _ -> None
    end
