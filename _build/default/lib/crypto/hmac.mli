(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val mac_hex : key:string -> string -> string
(** Hexadecimal rendering of [mac]. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)
