(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used by the S*BGP message layer ([bgpsec]) for digests, by the
    simulated signature scheme and for content-addressed certificate
    identifiers in [rpki]. *)

type digest = string
(** 32 raw bytes. *)

val digest_string : string -> digest
val digest_bytes : bytes -> digest

val hex : digest -> string
(** Lowercase hexadecimal rendering (64 chars). *)

val digest_hex : string -> string
(** [hex (digest_string s)]. *)

(** Incremental interface. *)
type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> digest
(** The context must not be reused after [finalize]. *)
