(** Simulated signature scheme for the S*BGP message layer.

    The deployment study is indifferent to the concrete cipher, so we
    do not implement RSA. Instead each principal holds a secret MAC
    key; "signing" is HMAC-SHA256 and "verification keys" are the same
    MAC keys distributed by a trusted registry that stands in for the
    RPKI's key-distribution role (a symmetric-key simulation in the
    spirit of TESLA). This exercises exactly the code paths the paper
    cares about — who signs what, what can be validated when, and
    tamper detection — without a bignum dependency.

    Limitation (documented, accepted): because verification keys equal
    signing keys, a verifier could forge; the simulation therefore
    models *honest-verifier* security only, which suffices for every
    experiment and attack demo in this repository. *)

type keypair = private { secret : string; key_id : string }
(** [key_id] is the SHA-256 of the secret and acts as the public
    identifier published in certificates. *)

type signature = private { key_id : string; tag : string }

val generate : Nsutil.Prng.t -> keypair
(** Fresh random keypair. *)

val of_secret : string -> keypair
(** Deterministic keypair from explicit secret material (tests). *)

val sign : keypair -> string -> signature

val verify : verification_key:keypair -> msg:string -> signature -> bool
(** True iff the signature was produced over [msg] by the keypair with
    the same [key_id]. *)

val of_raw_signature : key_id:string -> tag:string -> signature
(** Reassemble a signature parsed off the wire; no validation beyond
    structure (verification happens in {!verify}). *)

val signature_to_string : signature -> string
(** Stable wire rendering (hex fields, ':'-separated). *)

val signature_of_string : string -> signature option
