(* SHA-256 per FIPS 180-4. 32-bit words are kept in native ints
   masked to 32 bits (the host is 64-bit). *)

type digest = string

let mask = 0xFFFFFFFF

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array;  (* 8 words of running state *)
  block : Bytes.t;  (* 64-byte block buffer *)
  mutable fill : int;  (* bytes currently in [block] *)
  mutable total : int;  (* total message bytes fed so far *)
  w : int array;  (* 64-word message schedule scratch *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
        0x1f83d9ab; 0x5be0cd19;
      |];
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx =
  let w = ctx.w in
  let b = ctx.block in
  for t = 0 to 15 do
    w.(t) <-
      (Char.code (Bytes.unsafe_get b (4 * t)) lsl 24)
      lor (Char.code (Bytes.unsafe_get b ((4 * t) + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b ((4 * t) + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get b ((4 * t) + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask
  done;
  let a = ref ctx.h.(0)
  and bb = ref ctx.h.(1)
  and c = ref ctx.h.(2)
  and d = ref ctx.h.(3)
  and e = ref ctx.h.(4)
  and f = ref ctx.h.(5)
  and g = ref ctx.h.(6)
  and hh = ref ctx.h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !bb lxor (!a land !c) lxor (!bb land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !bb;
    bb := !a;
    a := (t1 + t2) land mask
  done;
  ctx.h.(0) <- (ctx.h.(0) + !a) land mask;
  ctx.h.(1) <- (ctx.h.(1) + !bb) land mask;
  ctx.h.(2) <- (ctx.h.(2) + !c) land mask;
  ctx.h.(3) <- (ctx.h.(3) + !d) land mask;
  ctx.h.(4) <- (ctx.h.(4) + !e) land mask;
  ctx.h.(5) <- (ctx.h.(5) + !f) land mask;
  ctx.h.(6) <- (ctx.h.(6) + !g) land mask;
  ctx.h.(7) <- (ctx.h.(7) + !hh) land mask

let feed ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  while !pos < len do
    let take = min (64 - ctx.fill) (len - !pos) in
    Bytes.blit_string s !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

let finalize ctx =
  let bit_len = ctx.total * 8 in
  (* Append 0x80, zero-pad to 56 mod 64, then the 64-bit length. *)
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then begin
    Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\000';
    compress ctx;
    ctx.fill <- 0
  end;
  Bytes.fill ctx.block ctx.fill (64 - ctx.fill) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.block (56 + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  compress ctx;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.to_string out

let digest_string s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest_bytes b = digest_string (Bytes.to_string b)

let hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let digest_hex s = hex (digest_string s)
