let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest_string key else key in
  key ^ String.make (block_size - String.length key) '\000'

let xor_pad key byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_string (xor_pad key 0x36 ^ msg) in
  Sha256.digest_string (xor_pad key 0x5c ^ inner)

let mac_hex ~key msg = Sha256.hex (mac ~key msg)

let verify ~key ~msg ~tag =
  let expected = mac ~key msg in
  if String.length tag <> String.length expected then false
  else begin
    let diff = ref 0 in
    String.iteri
      (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i]))
      tag;
    !diff = 0
  end
