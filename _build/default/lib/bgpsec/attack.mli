(** Attack demonstrations on the message layer.

    These back the paper's security arguments: RPKI origin validation
    stops prefix hijacks, S-BGP path validation stops path forgery,
    and — Appendix B — preferring *partially* secure paths over
    insecure ones introduces an attack that does not exist without
    S*BGP at all. *)

val origin_hijack_detected : unit -> bool
(** Attacker originates a victim's prefix as its own; the ROA check
    flags it. *)

val path_forgery_detected : unit -> bool
(** Attacker splices itself into a signed path / shortens it; path
    validation flags it. *)

val replay_to_wrong_neighbor_detected : unit -> bool
(** A signed announcement sent to neighbor A is replayed verbatim to
    neighbor B; the per-target attestation flags it. *)

val delegation_risk : unit -> bool * bool
(** The Section 2.2.1 footnote: a stub that delegates its signing key
    to its provider cedes security. Returns
    [(forgery_validates_with_delegation,
      forgery_validates_without_delegation)] — expected [(true,
    false)]: with the stub's key a malicious provider fabricates
    perfectly-valid announcements in the stub's name; without it the
    forgery is caught. *)

type appendix_b_outcome = { chose_false_path : bool; next_hop : int }

val appendix_b : prefer_partial:bool -> appendix_b_outcome
(** The Appendix-B network: victim [v], honest chain [r, s], secure
    ASes [p, q], attacker [m] forging the link (m, v). With
    [prefer_partial:false] (the paper's rule: only *fully* secure
    paths are preferred) [p] keeps the true route through [r]; with
    [prefer_partial:true] the forged route through [q] looks "more
    secure" and [p] is fooled. *)
