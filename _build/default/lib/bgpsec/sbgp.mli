(** Message-level Secure BGP (S-BGP, [24]): route attestations.

    An announcement carries the AS path (sender first, origin last)
    and one nested signature per path element: AS [v_j] signs the
    prefix, the path from the origin up to itself, and the AS it is
    sending to — so a signature cannot be cut and pasted onto another
    path or replayed to a different neighbor.

    Path validation (what a *full* deployer does on receipt) checks
    every signature; it succeeds only when every AS on the path
    participates (full, or simplex at the origin), which is exactly
    the paper's "a path is secure iff every AS on it is secure". *)

type announcement = private {
  prefix : Netaddr.Prefix.t;
  path : int list;  (** [sender; ...; origin] *)
  target : int;  (** the neighbor this copy was sent to *)
  sigs : Scrypto.Sig_scheme.signature list;  (** aligned with [path]; may be shorter for partially-signed paths *)
}

type error =
  | Not_enrolled of int
  | Unsigned_hop of int
  | Bad_signature of int
  | Wrong_target of { signer : int; expected : int }
  | Misdirected of { target : int; receiver : int }
      (** the announcement was addressed to another AS *)
  | Origin_invalid of Rpki.Roa.validity
  | Empty_path

val error_to_string : error -> string

val originate :
  Rpki.Registry.t ->
  origin:int ->
  prefix:Netaddr.Prefix.t ->
  target:int ->
  signed:bool ->
  (announcement, error) result
(** A fresh announcement of the origin's own prefix. With
    [signed:false] (an AS running plain BGP) no attestation is
    attached. *)

val forward :
  Rpki.Registry.t ->
  sender:int ->
  target:int ->
  signed:bool ->
  announcement ->
  (announcement, error) result
(** Re-announce a received announcement one hop further. A signing
    sender appends its attestation *only when the announcement is
    fully signed so far* — signing a partially-signed path would
    fabricate security (cf. Section 2.2.2 on partially secure
    paths). *)

val validate : Rpki.Registry.t -> receiver:int -> announcement -> (unit, error) result
(** Full S-BGP path + origin validation as performed by [receiver]. *)

val fully_signed : announcement -> bool
(** All path hops carry a signature (cheap syntactic check; does not
    verify them). *)

val forge :
  prefix:Netaddr.Prefix.t -> path:int list -> target:int -> announcement
(** An attacker-controlled announcement with an arbitrary unsigned
    path (for the attack demos). *)

val of_wire_parts :
  prefix:Netaddr.Prefix.t ->
  path:int list ->
  target:int ->
  sigs:Scrypto.Sig_scheme.signature list ->
  announcement
(** Reassemble a decoded announcement ({!Wire.decode}); structural
    only — nothing is verified until {!validate}. *)

val enrolled_hops : Rpki.Registry.t -> announcement -> int
(** Number of path hops enrolled in the RPKI — the naive
    "how secure does this path look" score that a
    partially-secure-path preference would use. Appendix B shows why
    ranking on it is dangerous; see {!Attack}. *)
