(** Deterministic per-AS prefixes used across the message-level
    simulations and attack demos. *)

val of_as : int -> Netaddr.Prefix.t
(** [10.(asn lsr 8 land 0xff).(asn land 0xff).0/24]. *)
