module Prefix = Netaddr.Prefix
module Sig_scheme = Scrypto.Sig_scheme

type error = Truncated | Bad_magic | Bad_prefix | Too_long of string

let error_to_string = function
  | Truncated -> "truncated message"
  | Bad_magic -> "bad magic"
  | Bad_prefix -> "malformed prefix"
  | Too_long field -> Printf.sprintf "field %s exceeds its width" field

let magic = "SBG1"
let digest_len = 32

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  if v < 0 || v > 0xffff then invalid_arg "Wire: u16 overflow";
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  if v < 0 || v > 0xffffffff then invalid_arg "Wire: u32 overflow";
  put_u8 buf (v lsr 24);
  put_u8 buf (v lsr 16);
  put_u8 buf (v lsr 8);
  put_u8 buf v

let encode (ann : Sbgp.announcement) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf magic;
  put_u32 buf (Netaddr.Ipv4.to_int ann.prefix.Prefix.network);
  put_u8 buf ann.prefix.Prefix.length;
  put_u32 buf ann.target;
  put_u16 buf (List.length ann.path);
  List.iter (fun asn -> put_u32 buf asn) ann.path;
  put_u16 buf (List.length ann.sigs);
  List.iter
    (fun (s : Sig_scheme.signature) ->
      if String.length s.key_id <> digest_len || String.length s.tag <> digest_len then
        invalid_arg "Wire: signature fields must be 32 bytes";
      Buffer.add_string buf s.key_id;
      Buffer.add_string buf s.tag)
    ann.sigs;
  Buffer.contents buf

(* Decoding: a cursor over the string with explicit bounds checks. *)
let ( let* ) = Result.bind

let need s pos len = if pos + len > String.length s then Error Truncated else Ok ()

let get_u8 s pos =
  let* () = need s pos 1 in
  Ok (Char.code s.[pos], pos + 1)

let get_u16 s pos =
  let* () = need s pos 2 in
  Ok ((Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1], pos + 2)

let get_u32 s pos =
  let* () = need s pos 4 in
  Ok
    ( (Char.code s.[pos] lsl 24)
      lor (Char.code s.[pos + 1] lsl 16)
      lor (Char.code s.[pos + 2] lsl 8)
      lor Char.code s.[pos + 3],
      pos + 4 )

let get_bytes s pos len =
  let* () = need s pos len in
  Ok (String.sub s pos len, pos + len)

let decode_prefix s ~pos =
  let* addr, pos = get_u32 s pos in
  let* len, pos = get_u8 s pos in
  if len > 32 then Error Bad_prefix
  else begin
    let network = Netaddr.Ipv4.of_int addr in
    let prefix = Prefix.make network len in
    (* Reject prefixes with host bits set: the sender was confused or
       malicious either way. *)
    if Netaddr.Ipv4.to_int prefix.Prefix.network <> addr then Error Bad_prefix
    else Ok (prefix, pos)
  end

let rec get_list s pos count get acc =
  if count = 0 then Ok (List.rev acc, pos)
  else begin
    let* v, pos = get s pos in
    get_list s pos (count - 1) get (v :: acc)
  end

let decode s =
  let* m, pos = get_bytes s 0 4 in
  if m <> magic then Error Bad_magic
  else begin
    let* prefix, pos = decode_prefix s ~pos in
    let* target, pos = get_u32 s pos in
    let* path_count, pos = get_u16 s pos in
    let* path, pos = get_list s pos path_count get_u32 [] in
    let* sig_count, pos = get_u16 s pos in
    let get_sig s pos =
      let* key_id, pos = get_bytes s pos digest_len in
      let* tag, pos = get_bytes s pos digest_len in
      Ok (Sig_scheme.of_raw_signature ~key_id ~tag, pos)
    in
    let* sigs, pos = get_list s pos sig_count get_sig [] in
    if pos <> String.length s then Error Truncated
    else Ok (Sbgp.of_wire_parts ~prefix ~path ~target ~sigs)
  end
