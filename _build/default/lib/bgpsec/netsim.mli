(** Message-level BGP/S*BGP propagation over an AS graph.

    This is the "ground truth" simulator: announcements are real
    signed messages ({!Sbgp}) or soBGP-validated paths ({!Sobgp}),
    propagated hop by hop under the Appendix-A export and ranking
    rules until a fixed point. Tests cross-validate its chosen paths
    and security bits against the abstract {!Bgp.Forest} computation —
    the two must agree on every graph. *)

type protocol = S_bgp | So_bgp

type setup = {
  graph : Asgraph.Graph.t;
  registry : Rpki.Registry.t;
  modes : Mode.t array;  (** per-AS participation *)
  link_db : Sobgp.db;  (** used by [So_bgp] *)
  protocol : protocol;
  tiebreak : Bgp.Policy.tiebreak;
}

val prepare :
  ?protocol:protocol ->
  ?tiebreak:Bgp.Policy.tiebreak ->
  ?seed:int ->
  Asgraph.Graph.t ->
  modes:Mode.t array ->
  setup
(** Enroll every participating AS in a fresh RPKI (prefix
    [10.a.b.0/24] derived from its number), and for [So_bgp] certify
    every link whose two endpoints participate. *)

type outcome = {
  chosen : Sbgp.announcement option array;  (** per-AS selected route to the destination *)
  secure : bool array;  (** the selected route validated end-to-end *)
  iterations : int;
}

val validated : setup -> receiver:int -> Sbgp.announcement -> bool
(** End-to-end validation of an announcement as received, under the
    setup's protocol (S-BGP signature chain + ROA, or soBGP link
    certificates + ROA), independent of the receiver's own mode. *)

val route_to : setup -> dest:int -> outcome
(** Propagate the destination's prefix announcement to a fixed point.
    Deterministic; terminates because the ranking improves
    monotonically under the Appendix-A policies (Appendix G). *)

val prefix_of_as : int -> Netaddr.Prefix.t
(** The deterministic prefix assigned to an AS by [prepare]. *)
