module Graph = Asgraph.Graph
module Prefix = Netaddr.Prefix

type protocol = S_bgp | So_bgp

type setup = {
  graph : Graph.t;
  registry : Rpki.Registry.t;
  modes : Mode.t array;
  link_db : Sobgp.db;
  protocol : protocol;
  tiebreak : Bgp.Policy.tiebreak;
}

let prefix_of_as = Netsim_prefix.of_as

let prepare ?(protocol = S_bgp) ?(tiebreak = Bgp.Policy.Lowest_id) ?(seed = 1) g ~modes =
  if Array.length modes <> Graph.n g then invalid_arg "Netsim.prepare: modes length";
  let registry = Rpki.Registry.create ~seed in
  Array.iteri
    (fun i mode ->
      if not (Mode.equal mode Mode.Off) then begin
        match Rpki.Registry.enroll registry ~asn:i ~prefixes:[ prefix_of_as i ] with
        | Ok _ -> ()
        | Error e -> invalid_arg ("Netsim.prepare: " ^ e)
      end)
    modes;
  let link_db = Sobgp.create_db () in
  if protocol = So_bgp then
    List.iter
      (fun ((a, b), _) ->
        if (not (Mode.equal modes.(a) Mode.Off)) && not (Mode.equal modes.(b) Mode.Off)
        then ignore (Sobgp.certify_link registry link_db a b))
      (Graph.edges g);
  { graph = g; registry; modes; link_db; protocol; tiebreak }

type selection = {
  ann : Sbgp.announcement;
  from : int;
  lp : int;  (* 0 customer, 1 peer, 2 provider *)
  len : int;
  sec : bool;
}

type outcome = {
  chosen : Sbgp.announcement option array;
  secure : bool array;
  iterations : int;
}

(* End-to-end validation of an announcement as received, independent
   of the receiver's own mode (used both for the SecP step when the
   receiver validates, and for reporting). *)
let validated setup ~receiver ann =
  match setup.protocol with
  | S_bgp -> Result.is_ok (Sbgp.validate setup.registry ~receiver ann)
  | So_bgp -> begin
      match List.rev ann.Sbgp.path with
      | [] -> false
      | origin :: _ ->
          Rpki.Registry.origin_validity setup.registry ~prefix:ann.Sbgp.prefix
            ~origin_asn:origin
          = Rpki.Roa.Valid
          && Sobgp.path_valid setup.registry setup.link_db (receiver :: ann.Sbgp.path)
    end

let route_to setup ~dest =
  let g = setup.graph in
  let n = Graph.n g in
  let rib : selection option array = Array.make n None in
  let prefix = prefix_of_as dest in
  (* GR2: may [v] export its current route to neighbor [u]?
     [v_is_provider_of_u] means u is v's customer, to whom v exports
     everything; otherwise only customer routes (and own prefixes)
     cross the edge. *)
  let exports v ~v_is_provider_of_u =
    if v = dest then true
    else begin
      match rib.(v) with
      | None -> false
      | Some sel -> v_is_provider_of_u || sel.lp = 0
    end
  in
  let candidate u v rel =
    let lp =
      match rel with Graph.Customer -> 0 | Graph.Peer -> 1 | Graph.Provider -> 2
    in
    let make ann =
      let len = List.length ann.Sbgp.path in
      let sec =
        Mode.validates setup.modes.(u) && validated setup ~receiver:u ann
      in
      Some { ann; from = v; lp; len; sec }
    in
    if v = dest then begin
      match
        Sbgp.originate setup.registry ~origin:dest ~prefix ~target:u
          ~signed:(Mode.signs_origination setup.modes.(dest))
      with
      | Ok ann -> make ann
      | Error _ -> begin
          match
            Sbgp.originate setup.registry ~origin:dest ~prefix ~target:u ~signed:false
          with
          | Ok ann -> make ann
          | Error _ -> None
        end
    end
    else begin
      match rib.(v) with
      | None -> None
      | Some sel -> begin
          match
            Sbgp.forward setup.registry ~sender:v ~target:u
              ~signed:(Mode.signs_transit setup.modes.(v))
              sel.ann
          with
          | Ok ann -> make ann
          | Error _ -> None
        end
    end
  in
  let better u a b =
    (* true when a beats b *)
    match b with
    | None -> true
    | Some b ->
        let key (s : selection) =
          ( s.lp,
            s.len,
            (if s.sec then 0 else 1),
            Bgp.Policy.tiebreak_key setup.tiebreak u s.from )
        in
        key a < key b
  in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < (2 * n) + 4 do
    incr iterations;
    changed := false;
    for u = 0 to n - 1 do
      if u <> dest then begin
        let best = ref None in
        let consider v rel =
          (* The path must not already contain u (loop detection). *)
          if exports v ~v_is_provider_of_u:(rel = Graph.Provider) then begin
            match candidate u v rel with
            | Some sel when not (List.mem u sel.ann.Sbgp.path) ->
                if better u sel !best then best := Some sel
            | Some _ | None -> ()
          end
        in
        Graph.iter_customers g u (fun v -> consider v Graph.Customer);
        Graph.iter_peers g u (fun v -> consider v Graph.Peer);
        Graph.iter_providers g u (fun v -> consider v Graph.Provider);
        let same =
          match (rib.(u), !best) with
          | None, None -> true
          | Some a, Some b -> a.from = b.from && a.ann.Sbgp.path = b.ann.Sbgp.path
          | None, Some _ | Some _, None -> false
        in
        if not same then begin
          rib.(u) <- !best;
          changed := true
        end
      end
    done
  done;
  let chosen = Array.map (Option.map (fun s -> s.ann)) rib in
  let secure =
    Array.mapi
      (fun u sel ->
        match sel with
        | None -> false
        | Some s ->
            (not (Mode.equal setup.modes.(u) Mode.Off))
            && validated setup ~receiver:u s.ann)
      rib
  in
  { chosen; secure; iterations = !iterations }
