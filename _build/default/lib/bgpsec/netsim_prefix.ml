let of_as asn =
  let b = (asn lsr 8) land 0xff and c = asn land 0xff in
  Netaddr.Prefix.make (Netaddr.Ipv4.of_octets 10 b c 0) 24
