(** Event-driven BGP sessions over the wire format.

    Where {!Netsim} computes the routing fixed point by synchronous
    sweeps, this module actually runs the protocol: every adjacency is
    a pair of unidirectional byte channels carrying {!Wire}-encoded
    announcements; each router keeps an Adj-RIB-In per (peer, prefix)
    and re-runs best-route selection (LP > SP > SecP > TB, GR2 export)
    whenever an update arrives, emitting further updates on change.
    Processing continues until all channels drain.

    Tests cross-validate the converged routes against {!Netsim} (and
    hence, transitively, against the abstract {!Bgp.Forest} model).
    Multiple prefixes may be announced on the same network; their
    state is independent, as in BGP. *)

type t

val create :
  ?protocol:Netsim.protocol ->
  ?tiebreak:Bgp.Policy.tiebreak ->
  ?seed:int ->
  Asgraph.Graph.t ->
  modes:Mode.t array ->
  t
(** Enrolls participants exactly like {!Netsim.prepare}. *)

val announce : t -> origin:int -> unit
(** The origin announces its deterministic prefix
    ({!Netsim_prefix.of_as}) to its neighbors and the event loop runs
    to quiescence. Announcing the same origin twice is idempotent.
    Raises [Invalid_argument] if the node is out of range. *)

val selected : t -> node:int -> origin:int -> Sbgp.announcement option
(** The node's current best route to the origin's prefix (as the
    announcement it accepted), or [None]. *)

val selected_path : t -> node:int -> origin:int -> int list
(** Convenience: [node :: path] of the selected route, or [[]]. *)

val route_validated : t -> node:int -> origin:int -> bool
(** The selected route validates end-to-end and the node
    participates. *)

val messages_processed : t -> int
(** Total wire messages decoded so far (diagnostics). *)

val bytes_on_wire : t -> int
(** Total encoded bytes transported so far. *)
